// fleet-scenario serves one Poisson stream through a 3-node fleet and
// shows the router rebalancing around a node outage: every board on
// node 1 fails mid-run, the node's health collapses to down (probe
// backoff later re-admits it as suspect), and the router shifts its
// share of the arrivals onto the two survivors while the conservation
// law (injected == placed + shed) keeps holding.
//
// The same stream runs twice — healthy fleet, then with the scripted
// node-1 outage — so the output shows exactly what the outage moves.
// Both runs are deterministic: rerunning reproduces them bit for bit.
package main

import (
	"fmt"
	"log"

	"poly"
	"poly/internal/cluster"
	"poly/internal/fault"
	"poly/internal/fleet"
	"poly/internal/runtime"
	"poly/internal/sim"
)

func main() {
	fw, err := poly.Benchmark("ASR")
	if err != nil {
		log.Fatal(err)
	}
	bench, err := poly.NewBench(fw, poly.HeterPoly, poly.SettingI())
	if err != nil {
		log.Fatal(err)
	}

	const (
		nodes      = 3
		rps        = 120.0
		durationMS = 16_000.0
		seed       = 11
	)

	// Board names inside a fleet carry the owning node's prefix, so a
	// scripted window can take out exactly one shard. Node 1 loses its
	// GPU and every FPGA from t=3s to the end of the run; the board
	// list comes from the same provisioning plan the fleet builds from.
	script := []fault.Window{{Board: "n1/gpu0", Kind: fault.Failure, Start: 3_000, End: 1e9}}
	plan, err := cluster.Provision(cluster.Config{Arch: bench.Arch, Setting: bench.Setting, PowerCapW: 500})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < plan.NumFPGA; i++ {
		script = append(script, fault.Window{
			Board: fmt.Sprintf("n1/fpga%d", i), Kind: fault.Failure, Start: 3_000, End: 1e9,
		})
	}
	outage := fault.Config{Seed: seed, Script: script}

	run := func(cfg *fault.Config) fleet.Result {
		f, err := fleet.New(bench, fleet.Options{
			Nodes:   nodes,
			Policy:  fleet.Spread,
			Runtime: runtime.Options{WarmupMS: 0.2 * durationMS, Faults: cfg},
		})
		if err != nil {
			log.Fatal(err)
		}
		runtime.NewWorkload(seed).InjectPoisson(f, rps, 0, sim.Time(durationMS))
		return f.Collect()
	}

	fmt.Println("=== healthy fleet ===")
	base := run(nil)
	fmt.Println(base)

	fmt.Println()
	fmt.Println("=== node 1 loses every board at t=3s ===")
	faulty := run(&outage)
	fmt.Println(faulty)

	fmt.Println()
	fmt.Printf("rebalance: node-1 share %.1f%% -> %.1f%%, node-down events %d, shed %d\n",
		100*float64(base.PerNode[1].Placements)/float64(base.Injected),
		100*float64(faulty.PerNode[1].Placements)/float64(faulty.Injected),
		faulty.NodeDownEvents, faulty.Shed)
	placed := faulty.Shed
	for _, n := range faulty.PerNode {
		placed += n.Placements
	}
	if placed == faulty.Injected {
		fmt.Println("conservation holds: every injected request was placed or shed")
	}
}
