// fault-scenario stages a mid-run board outage and shows the runtime
// degrading gracefully: the monitor marks the failed board down, lost
// kernels are re-placed on the survivors, and admission control sheds
// the requests the degraded node can no longer serve within the bound —
// trading a few fast rejections for an intact tail.
//
// The same scenario runs twice — fault layer off, then on — so the
// output shows exactly what the outage costs. Both runs are
// deterministic: rerunning this program reproduces them bit for bit.
package main

import (
	"fmt"
	"log"

	"poly"
	"poly/internal/fault"
	"poly/internal/runtime"
	"poly/internal/sim"
)

func main() {
	fw, err := poly.Benchmark("ASR")
	if err != nil {
		log.Fatal(err)
	}
	bench, err := poly.NewBench(fw, poly.HeterPoly, poly.SettingI())
	if err != nil {
		log.Fatal(err)
	}

	const (
		rps        = 40.0
		durationMS = 20_000.0
		seed       = 7
	)

	// gpu0 drops out for four seconds in the middle of the run; on top of
	// that, a low rate of transient slowdowns keeps the deviation monitor
	// honest on the surviving boards.
	scenario := fault.Config{
		Seed:               seed,
		SlowdownRatePerSec: 0.01,
		SlowdownFactor:     4,
		SlowdownMeanMS:     500,
		Script: []fault.Window{
			{Board: "gpu0", Kind: fault.Failure, Start: 6_000, End: 10_000},
		},
	}

	run := func(cfg *fault.Config) poly.Result {
		sv, _, err := bench.NewSession(runtime.Options{WarmupMS: 0.2 * durationMS, Faults: cfg})
		if err != nil {
			log.Fatal(err)
		}
		if inj := sv.FaultInjector(); inj != nil {
			fmt.Println(inj.Summary())
		}
		runtime.NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
		return sv.Collect()
	}

	fmt.Println("=== baseline (no faults) ===")
	base := run(nil)
	fmt.Println(base)

	fmt.Println()
	fmt.Println("=== gpu0 outage at t=6s for 4s ===")
	faulty := run(&scenario)
	fmt.Println(faulty)

	fmt.Println()
	fmt.Printf("outage cost: p99 %.1f -> %.1f ms, violations %d -> %d, shed %d, retries %d, dropped %d\n",
		base.P99MS, faulty.P99MS, base.Violations, faulty.Violations,
		faulty.Shed, faulty.Retries, faulty.FailedRequests)
	if faulty.ViolationRatio() <= 0.01 {
		fmt.Println("tail intact: the admitted population still meets the QoS criterion")
	}
}
