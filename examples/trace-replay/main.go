// trace-replay reproduces the Section VI-C datacenter study: a 24-hour
// Google-cluster-shaped utilization trace is replayed (time-compressed)
// against the three node architectures, comparing power draw, energy, and
// QoS violations — the paper's Fig. 12 and the trace QoS discussion.
package main

import (
	"fmt"
	"log"

	"poly"
	"poly/internal/runtime"
	"poly/internal/sim"
)

func main() {
	tr := poly.SynthesizeTrace(5)
	fmt.Printf("trace: 24 h, mean utilization %.0f%%, peak %.0f%%\n",
		100*tr.Mean(), 100*tr.Peak())

	fw, err := poly.Benchmark("ASR")
	if err != nil {
		log.Fatal(err)
	}

	// Compress 24 h of trace shape into 10 min of simulated time, scaled
	// to 80 % of the Heter-Poly node's maximum throughput.
	const compressedMS = 600_000.0
	heter, err := poly.NewBench(fw, poly.HeterPoly, poly.SettingI())
	if err != nil {
		log.Fatal(err)
	}
	maxRPS, err := heter.MaxThroughputRPS(128, 10_000, 5)
	if err != nil {
		log.Fatal(err)
	}
	compress := tr.DurationMS() / compressedMS
	fmt.Printf("replaying at up to %.0f RPS (80%% of Poly max %.0f), 24 h → 10 min\n\n",
		0.8*maxRPS, maxRPS)

	for _, arch := range []poly.Architecture{poly.HomoGPU, poly.HomoFPGA, poly.HeterPoly} {
		bench, err := poly.NewBench(fw, arch, poly.SettingI())
		if err != nil {
			log.Fatal(err)
		}
		sv, _, err := bench.NewSession(runtime.Options{WarmupMS: 5_000})
		if err != nil {
			log.Fatal(err)
		}
		w := runtime.NewWorkload(5)
		w.InjectRate(sv, func(at sim.Time) float64 {
			return 0.8 * maxRPS * tr.At(float64(at)*compress)
		}, compressedMS, 5_000)
		res := sv.Collect()
		fmt.Printf("%-10s served %6d requests  avg power %6.1f W  energy %7.0f J  p99 %6.1f ms  violations %5.2f%%\n",
			arch, res.Completed, res.AvgPowerW, res.EnergyMJ/1000, res.P99MS, 100*res.ViolationRatio())
	}
}
