// Quickstart: compile the ASR benchmark, inspect its design spaces, plan
// one request with the two-step runtime scheduler, and serve a short
// burst of load on a Heter-Poly node.
package main

import (
	"fmt"
	"log"

	"poly"
)

func main() {
	// 1. Compile (offline kernel analysis + design-space exploration).
	fw, err := poly.Benchmark("ASR")
	if err != nil {
		log.Fatal(err)
	}
	prog := fw.Program()
	fmt.Printf("compiled %s: %d kernels, %.0f ms QoS bound\n",
		prog.Name, len(prog.Kernels()), prog.LatencyBoundMS)

	ks, err := fw.Explore(poly.SettingI())
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range prog.Kernels() {
		g, f := ks.GPU[k.Name], ks.FPGA[k.Name]
		fmt.Printf("  %-14s GPU frontier %2d points (fastest %6.1f ms) | FPGA frontier %2d points (fastest %6.1f ms)\n",
			k.Name, len(g.Pareto), g.MinLatency().LatencyMS,
			len(f.Pareto), f.MinLatency().LatencyMS)
	}

	// 2. Serve load on the three node architectures and compare.
	fmt.Println("\nserving 20 s of 40 RPS Poisson load:")
	for _, arch := range []poly.Architecture{poly.HomoGPU, poly.HomoFPGA, poly.HeterPoly} {
		bench, err := poly.NewBench(fw, arch, poly.SettingI())
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.ServeConstantLoad(40, 20_000, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s p50 %6.1f ms  p99 %6.1f ms  violations %4.1f%%  avg power %5.1f W\n",
			arch, res.P50MS, res.P99MS, 100*res.ViolationRatio(), res.AvgPowerW)
	}
}
