// custom-app shows how to bring a NEW application to Poly: write its
// kernel DAG in the annotation language, compile it, inspect the explored
// design spaces, and serve it on a heterogeneous node — everything a
// deployment would do for a workload the library does not ship.
//
// The example models a video-analytics service: a decode kernel (custom
// IP-style bitstream parsing), a detector backbone (dense convolutions),
// and a tracker update (irregular gathers).
package main

import (
	"fmt"
	"log"

	"poly"
)

const videoAnalytics = `
program video-analytics
latency_bound 150

# Bitstream parsing: serial-ish custom decoding, FPGA-friendly.
kernel decode
  repeat 120
  const tables u8[65536]
  in bitstream u8[262144]
  gather  syms(bitstream, elems=262144 elem=u8)
  map     entropy(syms tables, func=cabac ops=12 custom elems=262144 elem=u8)
  pipeline dequant(entropy, funcs=[mul:1 add:1] elem=u8)
  out dequant

# Detector backbone: dense stencil compute, batches well on GPUs.
kernel detect
  repeat 16
  const wts f32[32x3x7x7]
  in frame f32[3x112x112]
  tiling  tiles(frame, size=[16 16 3] count=[7 7 1])
  stencil conv(tiles wts, func=conv ops=147 taps=49 elems=37632)
  map     relu(conv, func=max ops=1)
  pipeline norm(relu, funcs=[mul:1 add:1])
  out norm

# Tracker update: sparse association, latency-critical.
kernel track
  repeat 60
  const state f32[4096x16]
  in detections f32[4096]
  gather  assoc(detections state, irregular elems=4096)
  map     kalman(assoc, func=mac ops=64 elems=4096)
  reduce  confirm(kalman, func=add assoc elems=256)
  out confirm

edge decode -> detect bytes=262144
edge detect -> track bytes=16384
`

func main() {
	fw, err := poly.Compile(videoAnalytics)
	if err != nil {
		log.Fatal(err)
	}
	prog := fw.Program()
	fmt.Printf("compiled %q: %d kernels, %.0f ms bound\n",
		prog.Name, len(prog.Kernels()), prog.LatencyBoundMS)

	ks, err := fw.Explore(poly.SettingI())
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range prog.Kernels() {
		g, f := ks.GPU[k.Name], ks.FPGA[k.Name]
		fmt.Printf("  %-8s GPU %3d feasible → %2d Pareto (fastest %6.1f ms @ %5.1f W)\n",
			k.Name, len(g.Feasible), len(g.Pareto), g.MinLatency().LatencyMS, g.MinLatency().PowerW)
		fmt.Printf("  %-8s FPGA %3d feasible → %2d Pareto (fastest %6.1f ms @ %5.1f W)\n",
			"", len(f.Feasible), len(f.Pareto), f.MinLatency().LatencyMS, f.MinLatency().PowerW)
	}

	fmt.Println("\nserving 20 RPS for 15 s on each architecture:")
	for _, arch := range []poly.Architecture{poly.HomoGPU, poly.HomoFPGA, poly.HeterPoly} {
		bench, err := poly.NewBench(fw, arch, poly.SettingI())
		if err != nil {
			log.Fatal(err)
		}
		res, err := bench.ServeConstantLoad(20, 15_000, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s p99 %6.1f ms  violations %4.1f%%  avg power %6.1f W  (GPU tasks %d, FPGA tasks %d)\n",
			arch, res.P99MS, 100*res.ViolationRatio(), res.AvgPowerW, res.GPUTasks, res.FPGATasks)
	}
}
