// asr-service reproduces the motivation study of the paper's Fig. 1(a):
// an automatic-speech-recognition service under rising request load on
// the three node architectures, reporting the tail-latency curve and the
// maximum QoS-compliant throughput of each.
//
// The ASR computation itself is real: this example also runs the
// reference LSTM + fully-connected pipeline from internal/apps on a
// synthetic utterance, so the kernels being scheduled correspond to
// actual math.
package main

import (
	"fmt"
	"log"
	"math"

	"poly"
	"poly/internal/apps"
	"poly/internal/exec"
)

func main() {
	// The reference computation: a 64-wide LSTM over 40 frames feeding a
	// softmax classifier — the math the k1/k4 kernels stand for.
	cell := apps.NewLSTMCell(64)
	cx := exec.DefaultCtx
	frames := make([]*exec.Tensor, 40)
	for i := range frames {
		frames[i] = exec.NewTensor(64)
		for j := range frames[i].Data {
			frames[i].Data[j] = math.Sin(float64(i*64+j) / 17)
		}
	}
	h := cell.Forward(cx, frames)
	w := exec.NewTensor(32, 64)
	for i := range w.Data {
		w.Data[i] = math.Cos(float64(i) / 9)
	}
	probs := apps.FullyConnected(cx, w, h)
	best, arg := -1.0, 0
	for i, p := range probs.Data {
		if p > best {
			best, arg = p, i
		}
	}
	fmt.Printf("reference LSTM→FC pipeline: class %d (p=%.3f) over %d frames\n\n", arg, best, len(frames))

	// The serving study.
	fw, err := poly.Benchmark("ASR")
	if err != nil {
		log.Fatal(err)
	}
	loads := []float64{10, 25, 40, 55, 70, 85}
	fmt.Printf("%-10s", "RPS")
	for _, arch := range []poly.Architecture{poly.HomoGPU, poly.HomoFPGA, poly.HeterPoly} {
		fmt.Printf("  %16s", arch)
	}
	fmt.Println("  (p99 ms / violation %)")
	for _, rps := range loads {
		fmt.Printf("%-10.0f", rps)
		for _, arch := range []poly.Architecture{poly.HomoGPU, poly.HomoFPGA, poly.HeterPoly} {
			bench, err := poly.NewBench(fw, arch, poly.SettingI())
			if err != nil {
				log.Fatal(err)
			}
			res, err := bench.ServeConstantLoad(rps, 15_000, 7)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %8.0f / %4.1f%%", res.P99MS, 100*res.ViolationRatio())
		}
		fmt.Println()
	}

	fmt.Println("\nmaximum QoS-compliant throughput (p99 ≤ 200 ms):")
	for _, arch := range []poly.Architecture{poly.HomoGPU, poly.HomoFPGA, poly.HeterPoly} {
		bench, err := poly.NewBench(fw, arch, poly.SettingI())
		if err != nil {
			log.Fatal(err)
		}
		m, err := bench.MaxThroughputRPS(128, 10_000, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %6.1f RPS\n", arch, m)
	}
}
