module poly

go 1.22
