package cdfg

import (
	"testing"
	"testing/quick"

	"poly/internal/pattern"
)

func inst(kind pattern.Kind, elems int, funcs ...pattern.Func) *pattern.Instance {
	in := &pattern.Instance{Name: "x", Kind: kind, Elems: elems, ElemBytes: 4, Funcs: funcs}
	if kind == pattern.Stencil {
		in.StencilTaps = 9
	}
	return in
}

func TestBuildMapShape(t *testing.T) {
	g, err := Build(inst(pattern.Map, 128, pattern.Func{Name: "mac", Ops: 2}))
	if err != nil {
		t.Fatal(err)
	}
	// load + mac unit (2 cycles, temporal) + store
	if g.Len() != 3 {
		t.Fatalf("nodes = %d, want 3", g.Len())
	}
	if g.Replication != 128 {
		t.Fatalf("replication = %d", g.Replication)
	}
	// depth = 2 (load) + 2 (mac busy) + 2 (store) = 6 cycles
	if got := g.DepthCycles(); got != 6 {
		t.Fatalf("depth = %d, want 6", got)
	}
	if g.OpCount() != 3 {
		t.Fatalf("op count = %d", g.OpCount())
	}
	if g.TotalOps() != 128*3 {
		t.Fatalf("total ops = %d", g.TotalOps())
	}
	if g.MaxNodeCycles() != 2 {
		t.Fatalf("II floor = %d, want 2", g.MaxNodeCycles())
	}
}

func TestTemporalOpsBecomeOneBusyUnit(t *testing.T) {
	// A 2048-long dot product is one MAC unit busy 2048 cycles, not a
	// 2048-node spatial chain.
	g, err := Build(inst(pattern.Map, 1024, pattern.Func{Name: "mac", Ops: 2048}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("nodes = %d, want 3", g.Len())
	}
	if g.MaxNodeCycles() != 2048 {
		t.Fatalf("II floor = %d, want 2048", g.MaxNodeCycles())
	}
	if g.DepthCycles() != 2048+4 {
		t.Fatalf("depth = %d, want 2052", g.DepthCycles())
	}
}

func TestBuildMapSpecialFunc(t *testing.T) {
	g, err := Build(inst(pattern.Map, 16, pattern.Func{Name: "sigmoid", Ops: 4}))
	if err != nil {
		t.Fatal(err)
	}
	// Special functions collapse to one function unit: load+sigmoid+store.
	if g.Len() != 3 {
		t.Fatalf("nodes = %d, want 3", g.Len())
	}
	var found bool
	for _, n := range g.Nodes() {
		if n.Kind == Special && n.Cycles == 8 {
			found = true
		}
	}
	if !found {
		t.Fatal("sigmoid not lowered to a Special unit")
	}
}

func TestBuildCustomFunc(t *testing.T) {
	g, err := Build(inst(pattern.Map, 8, pattern.Func{Name: "rs_core", Ops: 100, Custom: true}))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasCustom() {
		t.Fatal("custom IP not detected")
	}
	gm, _ := Build(inst(pattern.Map, 8, pattern.Func{Name: "add", Ops: 1}))
	if gm.HasCustom() {
		t.Fatal("plain map misreported as custom")
	}
}

func TestBuildStencilWidth(t *testing.T) {
	g, err := Build(inst(pattern.Stencil, 64, pattern.Func{Name: "conv", Ops: 2}))
	if err != nil {
		t.Fatal(err)
	}
	// 9 independent tap loads → width ≥ 9.
	if g.Width() < 9 {
		t.Fatalf("width = %d, want ≥9 (taps)", g.Width())
	}
	if g.ComputeParallelism() < 64*9 {
		t.Fatalf("compute parallelism = %d", g.ComputeParallelism())
	}
}

func TestBuildPipelineStages(t *testing.T) {
	g, err := Build(inst(pattern.Pipeline, 32,
		pattern.Func{Name: "mul", Ops: 1},
		pattern.Func{Name: "add", Ops: 1},
		pattern.Func{Name: "tanh", Ops: 4},
	))
	if err != nil {
		t.Fatal(err)
	}
	// Inter-stage buffers appear between stages (2 for 3 stages).
	bufs := 0
	for _, n := range g.Nodes() {
		if n.Kind == BufferNode {
			bufs++
		}
	}
	if bufs != 2 {
		t.Fatalf("stage buffers = %d, want 2", bufs)
	}
	// tanh becomes a Special unit: depth = 2+1+1+1+1+8+2 = 16
	if got := g.DepthCycles(); got != 16 {
		t.Fatalf("depth = %d, want 16", got)
	}
}

func TestBuildGatherScatter(t *testing.T) {
	for _, k := range []pattern.Kind{pattern.Gather, pattern.Scatter} {
		g, err := Build(inst(k, 16))
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != 3 {
			t.Fatalf("%v nodes = %d, want 3", k, g.Len())
		}
		if g.OpCount() != 2 {
			t.Fatalf("%v op count = %d (buffer must not count)", k, g.OpCount())
		}
	}
}

func TestBuildReduceScanMove(t *testing.T) {
	r, err := Build(inst(pattern.Reduce, 256, pattern.Func{Name: "add", Ops: 1, Associative: true}))
	if err != nil {
		t.Fatal(err)
	}
	if r.Replication != 256 {
		t.Fatalf("reduce replication = %d", r.Replication)
	}
	s, err := Build(inst(pattern.Scan, 64, pattern.Func{Name: "add", Ops: 1}))
	if err != nil {
		t.Fatal(err)
	}
	// Scan must store every intermediate: has both buffer and store.
	var hasStore bool
	for _, n := range s.Nodes() {
		if n.Kind == Store {
			hasStore = true
		}
	}
	if !hasStore {
		t.Fatal("scan missing store of intermediates")
	}
	for _, k := range []pattern.Kind{pattern.Tiling, pattern.Pack} {
		g, err := Build(inst(k, 32))
		if err != nil {
			t.Fatal(err)
		}
		if g.DepthCycles() != 5 { // load(2)+buffer(1)+store(2)
			t.Fatalf("%v depth = %d, want 5", k, g.DepthCycles())
		}
	}
}

func TestBuildRejectsInvalidInstance(t *testing.T) {
	if _, err := Build(&pattern.Instance{Name: "bad", Kind: pattern.Map, Elems: 0}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestNodeKindString(t *testing.T) {
	if Load.String() != "load" || BufferNode.String() != "buffer" {
		t.Fatal("node kind names wrong")
	}
	if NodeKind(99).String() == "" {
		t.Fatal("unknown kind should still format")
	}
}

// Property: for any valid instance, depth ≥ every single node latency,
// width ≥ 1, and ComputeParallelism = Replication × Width.
func TestCDFGInvariantsProperty(t *testing.T) {
	kinds := []pattern.Kind{
		pattern.Map, pattern.Reduce, pattern.Scan, pattern.Stencil,
		pattern.Pipeline, pattern.Gather, pattern.Scatter, pattern.Tiling, pattern.Pack,
	}
	f := func(kindSel, elems, ops uint8) bool {
		kind := kinds[int(kindSel)%len(kinds)]
		e := int(elems)%1000 + 1
		o := int(ops)%6 + 1
		funcs := []pattern.Func{{Name: "f", Ops: o}}
		if kind == pattern.Pipeline {
			funcs = append(funcs, pattern.Func{Name: "g", Ops: o})
		}
		in := &pattern.Instance{Name: "p", Kind: kind, Elems: e, ElemBytes: 4, Funcs: funcs}
		if kind == pattern.Stencil {
			in.StencilTaps = int(ops)%8 + 1
		}
		g, err := Build(in)
		if err != nil {
			return false
		}
		if g.Width() < 1 || g.DepthCycles() < 1 {
			return false
		}
		for _, n := range g.Nodes() {
			if g.DepthCycles() < n.Cycles {
				return false
			}
		}
		return g.ComputeParallelism() == int64(g.Replication)*int64(g.Width())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: node creation order is topological (edges go old→new), which
// DepthCycles relies on.
func TestTopologicalCreationOrder(t *testing.T) {
	gs := []*Graph{}
	for _, k := range []pattern.Kind{pattern.Map, pattern.Stencil, pattern.Pipeline, pattern.Gather} {
		fns := []pattern.Func{{Name: "f", Ops: 2}}
		if k == pattern.Pipeline {
			fns = append(fns, pattern.Func{Name: "g", Ops: 1})
		}
		in := &pattern.Instance{Name: "p", Kind: k, Elems: 4, Funcs: fns, StencilTaps: 5}
		g, err := Build(in)
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	for _, g := range gs {
		for id := range g.Nodes() {
			for _, s := range g.Succ(id) {
				if s <= id {
					t.Fatalf("edge %d->%d violates creation-order topology", id, s)
				}
			}
		}
	}
}
