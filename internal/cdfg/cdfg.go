// Package cdfg lowers parallel patterns to control-data-flow graphs.
//
// Following Section IV-A, each pattern instance is transformed into a CDFG
// whose nodes are operators (arithmetic, special functions, custom IP
// cores, loads/stores, on-chip buffers) and whose edges are data
// dependencies. The CDFG of one element's worth of work, together with a
// replication factor, characterizes the pattern's compute parallelism
// (independent operators) and its datapath depth — the two quantities the
// analytical models consume.
package cdfg

import (
	"fmt"

	"poly/internal/pattern"
)

// NodeKind classifies a CDFG operator node.
type NodeKind int

// CDFG node kinds. BufferNode models the gray on-chip data buffers of
// Fig. 4(b); the rest are operators.
const (
	Load NodeKind = iota
	Store
	Arith   // single-cycle ALU op: add, mul, mac, cmp, xor …
	Special // multi-cycle function unit: sigmoid, tanh, exp, div, sqrt
	Custom  // opaque IP core / library call
	BufferNode
)

var nodeKindNames = [...]string{"load", "store", "arith", "special", "custom", "buffer"}

func (k NodeKind) String() string {
	if k < 0 || int(k) >= len(nodeKindNames) {
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
	return nodeKindNames[k]
}

// latencyCycles is the nominal pipelined-initiation latency of each
// operator class on a customized datapath, in cycles. Special functions
// use piecewise-linear units; custom IP cores get a conservative default.
func (k NodeKind) latencyCycles() int {
	switch k {
	case Load, Store:
		return 2
	case Arith:
		return 1
	case Special:
		return 8
	case Custom:
		return 16
	case BufferNode:
		return 1
	}
	return 1
}

// specialOps names operators lowered to multi-cycle function units.
var specialOps = map[string]bool{
	"sigmoid": true, "tanh": true, "exp": true, "log": true,
	"div": true, "sqrt": true, "rcp": true, "softmax": true,
}

// Node is one operator in a CDFG.
type Node struct {
	ID   int
	Kind NodeKind
	// Op is the operator mnemonic ("mac", "sigmoid", "rs_core", …).
	Op string
	// Cycles is the operator latency in datapath cycles.
	Cycles int
}

// Graph is the CDFG of one element's worth of a pattern, plus the number
// of independent replicas (the pattern's data parallelism).
type Graph struct {
	// Pattern is the lowered instance's name.
	Pattern string
	// Kind is the lowered instance's pattern kind.
	Kind pattern.Kind
	// Replication is how many independent copies of this subgraph the
	// pattern instantiates (≈ element count, or element/taps groupings).
	Replication int
	nodes       []*Node
	succ        [][]int
	pred        [][]int
}

func newGraph(name string, kind pattern.Kind, replication int) *Graph {
	return &Graph{Pattern: name, Kind: kind, Replication: replication}
}

// addNode appends an operator node and returns its ID.
func (g *Graph) addNode(kind NodeKind, op string) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, &Node{ID: id, Kind: kind, Op: op, Cycles: kind.latencyCycles()})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// addEdge links from → to.
func (g *Graph) addEdge(from, to int) {
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
}

// Nodes returns the operator nodes in creation order.
func (g *Graph) Nodes() []*Node { return append([]*Node(nil), g.nodes...) }

// Len returns the node count of one replica.
func (g *Graph) Len() int { return len(g.nodes) }

// Succ returns the successor IDs of node id.
func (g *Graph) Succ(id int) []int { return g.succ[id] }

// OpCount returns the number of operator nodes (excluding buffers) in one
// replica.
func (g *Graph) OpCount() int {
	n := 0
	for _, nd := range g.nodes {
		if nd.Kind != BufferNode {
			n++
		}
	}
	return n
}

// DepthCycles returns the critical-path latency of one replica in cycles —
// the pipeline depth a fully-pipelined FPGA datapath would need.
func (g *Graph) DepthCycles() int {
	// Nodes are created in topological order by construction (builders
	// only add edges from earlier to later nodes), so one forward pass
	// computes longest paths.
	longest := make([]int, len(g.nodes))
	max := 0
	for id, nd := range g.nodes {
		best := 0
		for _, p := range g.pred[id] {
			if longest[p] > best {
				best = longest[p]
			}
		}
		longest[id] = best + nd.Cycles
		if longest[id] > max {
			max = longest[id]
		}
	}
	return max
}

// customIPWidth is the internal parallelism of a pipelined custom IP
// core: a generated RS/coding/PRNG block processes ~16 scalar operations
// per cycle once its pipeline fills.
const customIPWidth = 16

// MaxNodeCycles returns the busiest single unit's per-element latency —
// the initiation-interval floor of a pipelined datapath: a new element
// cannot enter a stage before its function unit frees up. Special
// function units (dividers, exp/log CORDIC blocks) are internally
// pipelined — deep latency, one new element per cycle — so they do not
// raise the II. Custom IP cores are pipelined too but bounded by their
// internal width; temporally-shared arithmetic (an accumulator looping
// over a dot product) throttles initiation fully.
func (g *Graph) MaxNodeCycles() int {
	max := 1
	for _, nd := range g.nodes {
		var ii int
		switch nd.Kind {
		case Arith, Load, Store:
			ii = nd.Cycles
		case Custom:
			ii = (nd.Cycles + customIPWidth - 1) / customIPWidth
		default:
			continue
		}
		if ii > max {
			max = ii
		}
	}
	return max
}

// Width returns the maximum number of operator nodes at the same
// longest-path level — the instruction-level parallelism inside one
// replica.
func (g *Graph) Width() int {
	level := make([]int, len(g.nodes))
	counts := map[int]int{}
	max := 0
	for id := range g.nodes {
		best := 0
		for _, p := range g.pred[id] {
			if level[p]+1 > best {
				best = level[p] + 1
			}
		}
		level[id] = best
		if g.nodes[id].Kind == BufferNode {
			continue
		}
		counts[best]++
		if counts[best] > max {
			max = counts[best]
		}
	}
	return max
}

// ComputeParallelism returns the total independent operator slots the
// pattern exposes: replication × per-replica width (Section IV-A:
// "compute-parallelism is estimated ... based on the independent
// operators").
func (g *Graph) ComputeParallelism() int64 {
	return int64(g.Replication) * int64(g.Width())
}

// TotalOps returns operator executions across all replicas.
func (g *Graph) TotalOps() int64 {
	return int64(g.Replication) * int64(g.OpCount())
}

// HasCustom reports whether the datapath embeds an opaque IP core.
func (g *Graph) HasCustom() bool {
	for _, nd := range g.nodes {
		if nd.Kind == Custom {
			return true
		}
	}
	return false
}

func opKind(f pattern.Func) NodeKind {
	switch {
	case f.Custom:
		return Custom
	case specialOps[f.Name]:
		return Special
	default:
		return Arith
	}
}

// appendFunc lowers one operator function into a single function unit
// whose latency covers the per-element scalar op count *temporally*: an
// f.Ops-long dot product becomes one MAC unit busy for f.Ops cycles, the
// way HLS schedules reduction loops onto a shared accumulator rather than
// unrolling them spatially. (Spatial replication is the Unroll/CU knob of
// the optimizer, not a CDFG property.)
func (g *Graph) appendFunc(from int, f pattern.Func) int {
	kind := opKind(f)
	ops := f.Ops
	if ops < 1 {
		ops = 1
	}
	n := g.addNode(kind, f.Name)
	node := g.nodes[n]
	if ops > node.Cycles {
		node.Cycles = ops
	}
	g.addEdge(from, n)
	return n
}

// Build lowers a pattern instance into its CDFG.
func Build(in *pattern.Instance) (*Graph, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	switch in.Kind {
	case pattern.Map:
		return buildMap(in), nil
	case pattern.Reduce:
		return buildReduce(in), nil
	case pattern.Scan:
		return buildScan(in), nil
	case pattern.Stencil:
		return buildStencil(in), nil
	case pattern.Pipeline:
		return buildPipeline(in), nil
	case pattern.Gather, pattern.Scatter:
		return buildGatherScatter(in), nil
	case pattern.Tiling, pattern.Pack:
		return buildMove(in), nil
	}
	return nil, fmt.Errorf("cdfg: unsupported pattern kind %v", in.Kind)
}

// buildMap: load → func chain → store, replicated per element.
func buildMap(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	ld := g.addNode(Load, "load")
	cur := ld
	for _, f := range in.Funcs {
		cur = g.appendFunc(cur, f)
	}
	st := g.addNode(Store, "store")
	g.addEdge(cur, st)
	return g
}

// buildReduce: a combiner applied along a tree. One replica covers one
// leaf-to-root path: load → log2-ish chain of combiners → buffer. The
// replication is the leaf count; the serial-vs-tree choice is a local
// optimization knob, so the CDFG records the associative combiner once and
// lets the optimizer pick the schedule.
func buildReduce(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	ld := g.addNode(Load, "load")
	cur := ld
	for _, f := range in.Funcs {
		cur = g.appendFunc(cur, f)
	}
	buf := g.addNode(BufferNode, "acc")
	g.addEdge(cur, buf)
	return g
}

// buildScan: like reduce, but every intermediate is also stored.
func buildScan(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	ld := g.addNode(Load, "load")
	cur := ld
	for _, f := range in.Funcs {
		cur = g.appendFunc(cur, f)
	}
	buf := g.addNode(BufferNode, "prefix")
	g.addEdge(cur, buf)
	st := g.addNode(Store, "store")
	g.addEdge(buf, st)
	return g
}

// buildStencil: taps independent loads feeding the combiner tree, then a
// store; replication per output element.
func buildStencil(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	taps := in.StencilTaps
	if taps < 1 {
		taps = 1
	}
	// Tap loads are independent (width = taps at level 0), all feeding one
	// combiner before the operator chain.
	loads := make([]int, taps)
	for i := 0; i < taps; i++ {
		loads[i] = g.addNode(Load, "load")
	}
	cur := g.addNode(Arith, "combine")
	for _, ld := range loads {
		g.addEdge(ld, cur)
	}
	for _, f := range in.Funcs {
		cur = g.appendFunc(cur, f)
	}
	st := g.addNode(Store, "store")
	g.addEdge(cur, st)
	return g
}

// buildPipeline: stage functions connected producer→consumer with
// inter-stage buffers; all stages active at once, so replication counts
// elements streaming through.
func buildPipeline(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	cur := g.addNode(Load, "load")
	for i, f := range in.Funcs {
		cur = g.appendFunc(cur, f)
		if i != len(in.Funcs)-1 {
			buf := g.addNode(BufferNode, "stage")
			g.addEdge(cur, buf)
			cur = buf
		}
	}
	st := g.addNode(Store, "store")
	g.addEdge(cur, st)
	return g
}

// buildGatherScatter: index load → data load/store through a buffer.
func buildGatherScatter(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	idx := g.addNode(Load, "index")
	var data int
	if in.Kind == pattern.Gather {
		data = g.addNode(Load, "load")
	} else {
		data = g.addNode(Store, "store")
	}
	g.addEdge(idx, data)
	buf := g.addNode(BufferNode, "stage")
	g.addEdge(data, buf)
	return g
}

// buildMove: Tiling and Pack are layout transforms: load → buffer → store.
func buildMove(in *pattern.Instance) *Graph {
	g := newGraph(in.Name, in.Kind, in.Elems)
	ld := g.addNode(Load, "load")
	buf := g.addNode(BufferNode, "tile")
	g.addEdge(ld, buf)
	st := g.addNode(Store, "store")
	g.addEdge(buf, st)
	return g
}
