package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	const n = 200
	out, err := MapN(8, n, func(i int) (int, error) {
		if i%7 == 0 {
			time.Sleep(time.Millisecond) // shuffle completion order
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	err := ForEachN(workers, 60, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent calls, bound is %d", m, workers)
	}
}

func TestCancellationOnFirstError(t *testing.T) {
	const n = 10000
	boom := errors.New("boom")
	var started atomic.Int32
	err := ForEachN(4, n, func(i int) error {
		started.Add(1)
		if i >= 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// After the first error no new indices are dispatched: far fewer than
	// n calls may start (at most the handful already pulled by workers).
	if s := started.Load(); s >= n/2 {
		t.Fatalf("%d of %d tasks started after early error", s, n)
	}
}

func TestSerialPoolMatchesSerialLoop(t *testing.T) {
	var order []int
	err := ForEachN(1, 10, func(i int) error {
		order = append(order, i)
		if i == 6 {
			return fmt.Errorf("stop at %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "stop at 6" {
		t.Fatalf("err = %v", err)
	}
	if len(order) != 7 {
		t.Fatalf("executed %d calls, want exactly 7 (0..6)", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d: workers=1 must be strictly sequential", i, v)
		}
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	// Every index fails; the returned error must carry the lowest index
	// among the recorded failures, which with a gate releasing all workers
	// at once is deterministic enough to assert it is a small index.
	err := ForEachN(4, 4, func(i int) error {
		return fmt.Errorf("err-%d", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	// All four indices are dispatched before any error is recorded is not
	// guaranteed, but the recorded minimum can never exceed the first
	// dispatched batch.
	if err.Error() != "err-0" && err.Error() != "err-1" && err.Error() != "err-2" && err.Error() != "err-3" {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestForEachDegenerateInputs(t *testing.T) {
	if err := ForEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("n=0 must be a no-op")
	}
	if err := ForEachN(99, 2, func(int) error { return nil }); err != nil {
		t.Fatal("workers > n must clamp, not fail")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	m := NewMemo[int]()
	var calls atomic.Int32
	var wg sync.WaitGroup
	const waiters = 32
	results := make([]int, waiters)
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond) // let duplicates pile up
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}()
	}
	wg.Wait()
	if c := calls.Load(); c != 1 {
		t.Fatalf("fn ran %d times, want 1", c)
	}
	for g, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", g, v)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("memo holds %d keys, want 1", m.Len())
	}
}

func TestMemoCachesAcrossCalls(t *testing.T) {
	m := NewMemo[string]()
	var calls int
	for i := 0; i < 3; i++ {
		v, err := m.Do("key", func() (string, error) {
			calls++
			return "value", nil
		})
		if err != nil || v != "value" {
			t.Fatalf("Do = %q, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
}

func TestMemoErrorsNotCached(t *testing.T) {
	m := NewMemo[int]()
	fail := true
	do := func() (int, error) {
		if fail {
			return 0, errors.New("transient")
		}
		return 7, nil
	}
	if _, err := m.Do("k", do); err == nil {
		t.Fatal("first call must fail")
	}
	fail = false
	v, err := m.Do("k", do)
	if err != nil || v != 7 {
		t.Fatalf("retry = %d, %v; errors must not be cached", v, err)
	}
}

func TestWorkersKnob(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(0)
	t.Setenv("POLY_WORKERS", "5")
	if Workers() != 5 {
		t.Fatalf("Workers = %d with POLY_WORKERS=5", Workers())
	}
	t.Setenv("POLY_WORKERS", "bogus")
	if Workers() < 1 {
		t.Fatal("Workers must fall back to NumCPU on a bad env value")
	}
	SetWorkers(2)
	if Workers() != 2 {
		t.Fatal("SetWorkers must take precedence over the environment")
	}
}
