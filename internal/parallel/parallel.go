// Package parallel is Poly's shared worker-pool execution engine. Both
// halves of the system fan out through it: design-space exploration
// (internal/dse) evaluates candidate configurations and per-kernel×board
// spaces concurrently, and the experiment harness (internal/exp) runs
// independent simulations — maxRPS searches, per-app sweeps, power-cap
// points — across workers.
//
// The engine is built for determinism: Map collects results by index, so
// the assembled output of a parallel run is bit-identical to the serial
// one, and a pool of size 1 *is* the serial engine (same loop, same
// early-exit semantics). The pool size comes from SetWorkers, the
// POLY_WORKERS environment variable, or runtime.NumCPU(), in that order.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// workerOverride holds the SetWorkers value; 0 means "use the default".
var workerOverride atomic.Int32

// Workers returns the pool size used when ForEach/Map are called without
// an explicit worker count: the last SetWorkers value if positive, else
// the POLY_WORKERS environment variable if set to a positive integer,
// else runtime.NumCPU().
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	if s := os.Getenv("POLY_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.NumCPU()
}

// SetWorkers fixes the default pool size process-wide. n = 1 reproduces
// the serial engine exactly; n <= 0 restores the environment/NumCPU
// default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int32(n))
}

// ForEach runs fn(0..n-1) on Workers() workers. See ForEachN.
func ForEach(n int, fn func(i int) error) error {
	return ForEachN(0, n, fn)
}

// ForEachN runs fn(i) for i in [0, n) on at most `workers` goroutines
// (Workers() when workers <= 0). Indices are dispatched in ascending
// order. On the first error no new indices are dispatched; in-flight
// calls finish, and the error with the lowest index among those recorded
// is returned. With workers == 1 the loop is strictly sequential and
// stops at the first error — exactly the serial engine.
func ForEachN(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					stop.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map runs fn(0..n-1) on Workers() workers and returns the results in
// index order. See MapN.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN[T](0, n, fn)
}

// MapN is ForEachN with ordered result collection: out[i] is fn(i)'s
// value regardless of completion order, which is what makes parallel
// experiment sweeps render identically to serial ones. On error the
// partial slice is discarded.
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachN(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Memo is a concurrency-safe, singleflight-style memo table: the first
// goroutine to ask for a key computes it while duplicates block on the
// same entry and share the result, so concurrent sweeps share work
// (e.g. maxRPS binary searches, kernel design spaces) instead of
// duplicating it. Successful results are cached forever; errors are
// returned to every waiter of that flight but not cached, so a later
// call retries.
type Memo[V any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[V]
}

type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewMemo returns an empty memo table.
func NewMemo[V any]() *Memo[V] {
	return &Memo[V]{m: make(map[string]*memoEntry[V])}
}

// Do returns the cached value for key, or runs fn exactly once per
// flight to compute it. fn must not call Do on the same memo with the
// same key (it would deadlock on itself).
func (m *Memo[V]) Do(key string, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if e, ok := m.m[key]; ok {
		m.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.m[key] = e
	m.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		m.mu.Lock()
		delete(m.m, key)
		m.mu.Unlock()
	}
	close(e.done)
	return e.val, e.err
}

// Len reports the number of completed-or-in-flight keys.
func (m *Memo[V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Reset drops every cached entry. In-flight computations are unaffected
// (their waiters still receive the shared result); the next Do for any
// key recomputes. Intended for tests and benchmarks that compare a cold
// serial run against a cold parallel run.
func (m *Memo[V]) Reset() {
	m.mu.Lock()
	m.m = make(map[string]*memoEntry[V])
	m.mu.Unlock()
}
