// Package opt implements Poly's parallel pattern optimization
// (Section IV-B): it turns a kernel analysis into the set of candidate
// implementation configurations on each platform.
//
// Local optimization picks per-pattern directives out of Table I's
// option suites — work-group size, loop unrolling, memory coalescing,
// scratchpad use, and software pipelining on GPUs; loop unrolling, compute
// units, BRAM-port partitioning, hardware pipelining, double buffering and
// pipes on FPGAs. Global optimization layers cross-pattern decisions on
// top: fusing adjacent patterns so intermediates stay on chip, which
// resolves the pending scratchpad sizings local optimization could not
// settle alone.
//
// The enumerated configurations are evaluated by internal/model and
// Pareto-filtered by internal/dse.
package opt

import (
	"fmt"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/pattern"
)

// Config is one candidate implementation of a kernel on one platform:
// the complete directive assignment the HLS/OpenCL compiler would receive.
type Config struct {
	Platform device.Class

	// WorkGroup is the OpenCL work-group size (both platforms; Table I
	// lists it for Map, Stencil, and Tiling on GPU and FPGA alike).
	WorkGroup int
	// Unroll is the loop-unrolling factor.
	Unroll int

	// GPU-side directives.
	Coalesce   bool // remap Gather/Scatter indices to be physically contiguous
	Scratchpad bool // stage hot data in __local memory
	RegReuse   bool // register-file reuse for Pipeline stages
	SWPipe     bool // software pipelining / persistent-kernel structure
	Batch      int  // requests fused into one launch (GPU only)

	// FPGA-side directives.
	ComputeUnits int  // replicated compute units
	BRAMPorts    int  // BRAM partition factor (simultaneous ports)
	HWPipe       bool // #pragma pipeline on the datapath
	DoubleBuf    bool // double buffers on Gather/Scatter streams
	Pipes        bool // coarse-grained FIFO pipes between patterns
	// ClockScale derates the synthesized clock (1 = device nominal).
	// Slower clocks cut dynamic power superlinearly (≈ f^2.5 with the
	// voltage margin), giving the genuine energy-vs-latency trade-off of
	// Fig. 1(c): the most energy-efficient design is NOT the fastest.
	ClockScale float64

	// FuseMask selects which fusion candidates from the kernel analysis
	// are applied: bit i fuses analysis.Fusible[i]. Fusion is the global
	// optimization of Section IV-B.
	FuseMask uint64
}

// Lanes returns the spatial parallelism the config asks for: unroll
// replicated across compute units (FPGA) or unroll within the work-group
// schedule (GPU, where the work-group size sets occupancy separately).
func (c Config) Lanes() int {
	u := c.Unroll
	if u < 1 {
		u = 1
	}
	if c.Platform == device.FPGA {
		cu := c.ComputeUnits
		if cu < 1 {
			cu = 1
		}
		return u * cu
	}
	return u
}

// FusedSaving returns the off-chip traffic (bytes) the config's fusion
// mask eliminates, and the on-chip buffer bytes it requires.
func (c Config) FusedSaving(ka *analysis.Kernel) (saving, buffers int64) {
	for i, f := range ka.Fusible {
		if i >= 64 {
			break
		}
		if c.FuseMask&(1<<uint(i)) != 0 {
			saving += f.Saving
			buffers += f.BufferBytes
		}
	}
	return saving, buffers
}

// EdgeFused reports whether the PPG edge from→to is fused under the mask.
func (c Config) EdgeFused(ka *analysis.Kernel, from, to string) bool {
	for i, f := range ka.Fusible {
		if i >= 64 {
			break
		}
		if f.From == from && f.To == to && c.FuseMask&(1<<uint(i)) != 0 {
			return true
		}
	}
	return false
}

// String renders the directive assignment compactly, e.g.
// "GPU wg=256 u=4 b=8 coal scratch fuse=0x3".
func (c Config) String() string {
	s := fmt.Sprintf("%s wg=%d u=%d", c.Platform, c.WorkGroup, c.Unroll)
	if c.Platform == device.GPU {
		s += fmt.Sprintf(" b=%d", c.Batch)
		if c.Coalesce {
			s += " coal"
		}
		if c.Scratchpad {
			s += " scratch"
		}
		if c.SWPipe {
			s += " swpipe"
		}
		if c.RegReuse {
			s += " reg"
		}
	} else {
		s += fmt.Sprintf(" cu=%d ports=%d", c.ComputeUnits, c.BRAMPorts)
		if c.ClockScale != 0 && c.ClockScale != 1 {
			s += fmt.Sprintf(" clk=%.2g", c.ClockScale)
		}
		if c.HWPipe {
			s += " hwpipe"
		}
		if c.DoubleBuf {
			s += " dbuf"
		}
		if c.Pipes {
			s += " pipes"
		}
	}
	if c.FuseMask != 0 {
		s += fmt.Sprintf(" fuse=%#x", c.FuseMask)
	}
	return s
}

// kernelTraits summarizes which directive families apply to a kernel,
// derived from the patterns it contains (the "Optimization on Hardware
// Platforms" columns of Table I).
type kernelTraits struct {
	hasMemMove  bool // Gather/Scatter/Pack present → coalescing, double buffers
	hasDataPar  bool // Map/Reduce/Stencil/Scan present → unroll, CUs
	hasPipeline bool // Pipeline present → sw/hw pipelining, pipes, register reuse
	hasStencil  bool // Stencil present → scratchpad/double-buffer tiles
	hasCustom   bool // opaque IP core present → restructuring suppressed
	maxDP       int64
}

func traitsOf(ka *analysis.Kernel) kernelTraits {
	var t kernelTraits
	for _, name := range ka.Order {
		info := ka.Infos[name]
		switch info.Inst.Kind {
		case pattern.Gather, pattern.Scatter, pattern.Pack:
			t.hasMemMove = true
		case pattern.Map, pattern.Reduce, pattern.Scan:
			t.hasDataPar = true
		case pattern.Pipeline:
			t.hasPipeline = true
		case pattern.Stencil:
			t.hasDataPar = true
			t.hasStencil = true
		}
		if info.Inst.HasCustomFunc() {
			t.hasCustom = true
		}
		if info.DataParallelism > t.maxDP {
			t.maxDP = info.DataParallelism
		}
	}
	return t
}

// Space enumerates the candidate configurations of a kernel on one
// platform. The space is the cross product of the applicable local
// directives with the global fusion choices, matching the per-kernel
// design-space sizes reported in Table II (16–256 points).
func Space(ka *analysis.Kernel, platform device.Class) []Config {
	t := traitsOf(ka)
	var out []Config
	if platform == device.GPU {
		out = gpuSpace(t)
	} else {
		out = fpgaSpace(t)
	}
	// Global optimization: layer fusion masks over the local configs.
	// Fusing is ordered by saving, so mask (1<<k)-1 fuses the k most
	// valuable edges; exploring only these prefixes keeps the space
	// polynomial while covering the useful frontier.
	nf := len(ka.Fusible)
	if nf > 4 {
		nf = 4 // explore up to the four most valuable fusions
	}
	if nf == 0 {
		return out
	}
	withFusion := make([]Config, 0, len(out)*(nf+1))
	for _, c := range out {
		for k := 0; k <= nf; k++ {
			fc := c
			fc.FuseMask = (1 << uint(k)) - 1
			withFusion = append(withFusion, fc)
		}
	}
	return withFusion
}

func gpuSpace(t kernelTraits) []Config {
	workGroups := []int{64, 128, 256}
	unrolls := []int{1, 2, 4}
	batches := []int{1, 2, 4, 8}
	if !t.hasDataPar {
		unrolls = []int{1}
	}
	if t.hasCustom {
		// IP-core kernels keep their internal structure; only placement
		// and batching remain.
		unrolls = []int{1}
		workGroups = []int{256}
	}
	coalesceOpts := []bool{false}
	if t.hasMemMove {
		coalesceOpts = []bool{false, true}
	}
	scratchOpts := []bool{false}
	if t.hasStencil || t.hasMemMove {
		scratchOpts = []bool{false, true}
	}
	var out []Config
	for _, wg := range workGroups {
		for _, u := range unrolls {
			for _, b := range batches {
				for _, co := range coalesceOpts {
					for _, sc := range scratchOpts {
						out = append(out, Config{
							Platform:   device.GPU,
							WorkGroup:  wg,
							Unroll:     u,
							Batch:      b,
							Coalesce:   co,
							Scratchpad: sc,
							SWPipe:     t.hasPipeline,
							RegReuse:   t.hasPipeline,
						})
					}
				}
			}
		}
	}
	return out
}

func fpgaSpace(t kernelTraits) []Config {
	unrolls := []int{1, 4, 16, 64}
	cus := []int{1, 2, 4, 8}
	ports := []int{1, 4, 16}
	if !t.hasDataPar {
		unrolls = []int{1, 4}
	}
	if t.hasCustom {
		// IP cores cannot be internally restructured, but replicating
		// them spatially is exactly how FPGAs scale custom datapaths.
		unrolls = []int{1, 4, 16, 64}
	}
	pipeOpts := []bool{true, false}
	dbufOpts := []bool{false}
	if t.hasMemMove || t.hasStencil {
		dbufOpts = []bool{false, true}
	}
	clocks := []float64{1.0, 0.7, 0.5}
	var out []Config
	for _, u := range unrolls {
		for _, cu := range cus {
			for _, p := range ports {
				for _, hw := range pipeOpts {
					for _, db := range dbufOpts {
						for _, ck := range clocks {
							out = append(out, Config{
								Platform:     device.FPGA,
								WorkGroup:    256,
								Unroll:       u,
								ComputeUnits: cu,
								BRAMPorts:    p,
								HWPipe:       hw,
								DoubleBuf:    db,
								Pipes:        t.hasPipeline,
								Batch:        1,
								ClockScale:   ck,
							})
						}
					}
				}
			}
		}
	}
	return out
}
