package opt

import (
	"strings"
	"testing"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/opencl"
)

func analyzed(t *testing.T, src string) *analysis.Kernel {
	t.Helper()
	prog := opencl.MustParse(src)
	ka, err := analysis.AnalyzeKernel(prog.Kernels()[0], analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ka
}

const mixedSrc = `
program p
kernel k
  in x f32[4096]
  gather  g(x, irregular)
  map     m(g, func=mac ops=2)
  reduce  r(m, func=add assoc elems=64)
  pipeline pl(r, funcs=[mul:1 tanh:4])
  out pl
`

func TestSpaceNonEmptyAndPlatformTagged(t *testing.T) {
	ka := analyzed(t, mixedSrc)
	for _, platform := range []device.Class{device.GPU, device.FPGA} {
		cfgs := Space(ka, platform)
		if len(cfgs) == 0 {
			t.Fatalf("%v space empty", platform)
		}
		for _, c := range cfgs {
			if c.Platform != platform {
				t.Fatalf("config tagged %v in %v space", c.Platform, platform)
			}
			if c.Lanes() < 1 {
				t.Fatalf("lanes < 1: %+v", c)
			}
		}
	}
}

func TestSpaceSizesInPaperRange(t *testing.T) {
	// Table II reports 16–256 designs per kernel; our enumerated spaces
	// should be in that order of magnitude (before feasibility filtering).
	ka := analyzed(t, mixedSrc)
	for _, platform := range []device.Class{device.GPU, device.FPGA} {
		n := len(Space(ka, platform))
		if n < 16 || n > 4608 {
			t.Fatalf("%v space size %d outside sane range", platform, n)
		}
	}
}

func TestGPUSpaceUsesBatchingFPGADoesNot(t *testing.T) {
	ka := analyzed(t, mixedSrc)
	maxBatch := 0
	for _, c := range Space(ka, device.GPU) {
		if c.Batch > maxBatch {
			maxBatch = c.Batch
		}
	}
	if maxBatch < 8 {
		t.Fatalf("GPU space max batch = %d, want ≥8", maxBatch)
	}
	for _, c := range Space(ka, device.FPGA) {
		if c.Batch > 1 {
			t.Fatalf("FPGA config batches: %+v", c)
		}
	}
}

func TestMemMoveKernelsGetCoalescingAndDoubleBuffers(t *testing.T) {
	ka := analyzed(t, mixedSrc)
	var sawCoal, sawDbuf bool
	for _, c := range Space(ka, device.GPU) {
		if c.Coalesce {
			sawCoal = true
		}
	}
	for _, c := range Space(ka, device.FPGA) {
		if c.DoubleBuf {
			sawDbuf = true
		}
	}
	if !sawCoal || !sawDbuf {
		t.Fatalf("memory-move directives missing: coal=%v dbuf=%v", sawCoal, sawDbuf)
	}
	// A pure-map kernel must not waste space on coalescing variants.
	pure := analyzed(t, "program p\nkernel k\nin x f32[64]\nmap m(x, func=f ops=1)\n")
	for _, c := range Space(pure, device.GPU) {
		if c.Coalesce || c.Scratchpad {
			t.Fatalf("pure map got memory-move directives: %+v", c)
		}
	}
}

func TestCustomIPKernelRestrictsRestructuring(t *testing.T) {
	src := `
program p
kernel k
  in x u8[4096]
  map m(x, func=rs_core ops=64 custom elem=u8)
`
	ka := analyzed(t, src)
	for _, c := range Space(ka, device.GPU) {
		if c.Unroll != 1 {
			t.Fatalf("custom kernel unrolled on GPU: %+v", c)
		}
	}
	// On FPGAs, custom IP cores still replicate spatially (unroll/CU are
	// how a datapath scales), so the space must keep those knobs.
	sawWide := false
	for _, c := range Space(ka, device.FPGA) {
		if c.Lanes() > 1 {
			sawWide = true
		}
	}
	if !sawWide {
		t.Fatal("FPGA custom space lost spatial replication")
	}
}

func TestFusionPrefixMasks(t *testing.T) {
	ka := analyzed(t, mixedSrc)
	if len(ka.Fusible) == 0 {
		t.Fatal("test kernel should have fusible edges")
	}
	masks := map[uint64]bool{}
	for _, c := range Space(ka, device.FPGA) {
		masks[c.FuseMask] = true
	}
	if !masks[0] {
		t.Fatal("unfused variant missing")
	}
	if !masks[1] {
		t.Fatal("top-1 fusion variant missing")
	}
}

func TestFusedSavingAndEdgeFused(t *testing.T) {
	ka := analyzed(t, mixedSrc)
	c := Config{Platform: device.FPGA, FuseMask: 1}
	saving, buffers := c.FusedSaving(ka)
	if saving != ka.Fusible[0].Saving || buffers != ka.Fusible[0].BufferBytes {
		t.Fatalf("saving/buffers = %d/%d, want %d/%d", saving, buffers, ka.Fusible[0].Saving, ka.Fusible[0].BufferBytes)
	}
	if !c.EdgeFused(ka, ka.Fusible[0].From, ka.Fusible[0].To) {
		t.Fatal("EdgeFused misses fused edge")
	}
	if c.EdgeFused(ka, "nope", "nada") {
		t.Fatal("EdgeFused reports unknown edge as fused")
	}
	var zero Config
	if s, b := zero.FusedSaving(ka); s != 0 || b != 0 {
		t.Fatal("zero mask must save nothing")
	}
}

func TestConfigString(t *testing.T) {
	g := Config{Platform: device.GPU, WorkGroup: 256, Unroll: 4, Batch: 8, Coalesce: true, FuseMask: 3}
	s := g.String()
	for _, want := range []string{"GPU", "wg=256", "u=4", "b=8", "coal", "fuse=0x3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("GPU config string %q missing %q", s, want)
		}
	}
	f := Config{Platform: device.FPGA, WorkGroup: 256, Unroll: 16, ComputeUnits: 4, BRAMPorts: 2, HWPipe: true}
	s = f.String()
	for _, want := range []string{"FPGA", "cu=4", "ports=2", "hwpipe"} {
		if !strings.Contains(s, want) {
			t.Fatalf("FPGA config string %q missing %q", s, want)
		}
	}
}

func TestLanes(t *testing.T) {
	c := Config{Platform: device.FPGA, Unroll: 8, ComputeUnits: 4}
	if c.Lanes() != 32 {
		t.Fatalf("FPGA lanes = %d, want 32", c.Lanes())
	}
	g := Config{Platform: device.GPU, Unroll: 4}
	if g.Lanes() != 4 {
		t.Fatalf("GPU lanes = %d, want 4", g.Lanes())
	}
	var zero Config
	if zero.Lanes() != 1 {
		t.Fatalf("zero config lanes = %d, want 1", zero.Lanes())
	}
}

func TestFPGAClockKnobInSpace(t *testing.T) {
	ka := analyzed(t, mixedSrc)
	clocks := map[float64]bool{}
	for _, c := range Space(ka, device.FPGA) {
		clocks[c.ClockScale] = true
	}
	for _, want := range []float64{1.0, 0.7, 0.5} {
		if !clocks[want] {
			t.Fatalf("clock scale %v missing from FPGA space", want)
		}
	}
	c := Config{Platform: device.FPGA, WorkGroup: 256, Unroll: 4,
		ComputeUnits: 2, BRAMPorts: 4, ClockScale: 0.5, HWPipe: true}
	if !strings.Contains(c.String(), "clk=0.5") {
		t.Fatalf("clock tag missing from %q", c.String())
	}
}
