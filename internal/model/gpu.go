package model

import (
	"math"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/opt"
)

// EvaluateGPU runs the GPU analytical model for one kernel configuration
// on one board.
//
// The model computes, per batch of cfg.Batch requests:
//
//	compute time: Σ_patterns ops / (effective lanes × clock)
//	memory time:  (const bytes + B × per-request bytes) / (BW × efficiency)
//	latency:      launch + max(compute, memory) under software pipelining,
//	              launch + compute + memory otherwise
//
// Const (weight) traffic is charged once per batch — the fundamental
// reason batching raises GPU throughput on weight-bound kernels — while
// per-request traffic and compute scale with B.
func EvaluateGPU(ka *analysis.Kernel, cfg opt.Config, spec device.GPUSpec) (*Impl, error) {
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if spec.Cores <= 0 || spec.FreqMHz <= 0 || spec.MemBWGBs <= 0 {
		return nil, &ErrInfeasible{Reason: "GPU spec with non-positive capacity"}
	}
	b := float64(cfg.Batch)
	occ := occupancy(cfg.WorkGroup)
	coresEff := float64(spec.Cores) * occ
	cyclesPerMS := spec.FreqMHz * 1e3
	repeat := float64(ka.Repeat)
	if repeat < 1 {
		repeat = 1
	}

	// Compute time: each pattern's operator count over the lanes it can
	// actually fill. Unrolling adds a mild ILP boost until the schedule
	// saturates (registers/issue width), following [49]. Custom IP-style
	// operators (PRNG bit mixing, Galois-field tables, coding contexts)
	// are branch- and lookup-heavy: SIMD divergence and serialized
	// table accesses cut the achieved throughput hard — the reason such
	// kernels are "naturally amenable to a customized pipeline on FPGAs"
	// (Section VI-B).
	ilp := 1 + 0.15*math.Log2(math.Max(1, float64(cfg.Unroll)))
	var computeMS float64
	for _, name := range ka.Order {
		info := ka.Infos[name]
		ops := float64(info.Inst.TotalOps())
		lanes := math.Min(float64(info.DataParallelism)*b, coresEff)
		if lanes < 1 {
			lanes = 1
		}
		eff := gpuSIMDEfficiency
		if info.Inst.HasCustomFunc() {
			eff *= gpuCustomPenalty
		}
		perLane := lanes * ilp * cyclesPerMS * eff
		computeMS += b * ops * repeat / perLane
	}

	// Memory time: const traffic is batch-shared, request traffic is not.
	constB, reqB := trafficBytes(ka, cfg)
	eff := memEfficiency(ka, cfg)
	bwPerMS := spec.MemBWGBs * 1e6 // bytes per ms
	memMS := repeat * (float64(constB) + b*float64(reqB)) / (bwPerMS * eff)

	// Dispatch overhead: one launch per invocation without the
	// persistent-kernel structure [47], one per batch with it.
	launches := repeat
	if cfg.SWPipe {
		launches = 1
	}
	overheadMS := launches*launchOverheadMS + b*gpuBatchMarshalMS

	var batchMS float64
	if cfg.SWPipe {
		// Persistent kernels overlap compute with memory streams.
		batchMS = overheadMS + math.Max(computeMS, memMS) + 0.1*math.Min(computeMS, memMS)
	} else {
		batchMS = overheadMS + computeMS + memMS
	}

	// Utilization for the power model: how full the SIMD array is, and
	// how much of the time the memory system toggles.
	var laneFill float64
	for _, name := range ka.Order {
		info := ka.Infos[name]
		laneFill += clamp01(float64(info.DataParallelism) * b / coresEff)
	}
	laneFill /= float64(len(ka.Order))
	memFrac := clamp01(memMS / batchMS)
	util := clamp01(0.25 + 0.55*laneFill*occ + 0.2*memFrac)
	powerW := spec.IdlePowerW + (spec.PeakPowerW-spec.IdlePowerW)*util

	im := &Impl{
		Kernel:        ka.Name,
		Platform:      device.GPU,
		Board:         spec.Name,
		Config:        cfg,
		LatencyMS:     batchMS,
		IntervalMS:    batchMS,
		ThroughputRPS: b / batchMS * 1000,
		PowerW:        powerW,
		ResourceFrac:  clamp01(laneFill * occ),
	}
	im.EnergyMJ = powerW * batchMS / b
	im.EnsureID()
	return im, nil
}
