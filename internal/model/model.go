// Package model implements the analytical performance and power models
// Poly uses to navigate design-space exploration (Section IV-C).
//
// For GPUs the model follows the structure of Hong & Kim's integrated
// power/performance model [49] and Harmonia [18]: occupancy-limited
// compute throughput, bandwidth-limited memory throughput, their overlap
// under persistent-kernel software pipelining, and utilization-scaled
// power. For FPGAs it follows FlexCL [48, 50]: initiation-interval
// pipeline timing, unroll/compute-unit spatial parallelism capped by BRAM
// port partitioning, a shell+datapath resource model, and power roughly
// proportional to resource utilization [51].
//
// The model's output for one (kernel, config, board) triple is an Impl:
// the latency/throughput/power tuple the runtime scheduler trades between.
package model

import (
	"fmt"
	"math"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/opt"
)

// Impl is one evaluated kernel implementation: a point in the design
// space. Impls are what the DSE Pareto-filters and what the runtime
// scheduler assigns to devices (the k_i^r of Section V).
type Impl struct {
	// Kernel is the kernel name this implements.
	Kernel string
	// Platform is the accelerator class the config targets.
	Platform device.Class
	// Board is the spec name the evaluation assumed.
	Board string
	// Config is the directive assignment that produced this point.
	Config opt.Config

	// ID is the interned canonical identity "kernel|board|config",
	// assigned once when a model evaluation builds the Impl. Every
	// consumer that needs the identity (batching, reconfiguration,
	// residency keys) reads this field instead of re-rendering the
	// config, which keeps the scheduler's inner loops format-free.
	// Impls shared through cached design spaces are immutable, so the
	// field is never written after Evaluate returns.
	ID string

	// LatencyMS is the end-to-end single-request execution latency
	// (for GPU batched configs: the full batch completes together, so
	// every request in the batch observes this latency).
	LatencyMS float64
	// IntervalMS is the steady-state initiation interval between
	// consecutive batches/requests — LatencyMS for unpipelined designs,
	// smaller for pipelined FPGA datapaths.
	IntervalMS float64
	// ThroughputRPS is the board's sustained request rate for this impl.
	ThroughputRPS float64
	// PowerW is the board's active power while executing this impl.
	PowerW float64
	// EnergyMJ is the energy per request in millijoules.
	EnergyMJ float64
	// ResourceFrac is FPGA resource utilization (max over logic, DSP,
	// BRAM) or GPU occupancy — used by the power model and by Table II
	// style reporting.
	ResourceFrac float64
}

// EnsureID assigns the canonical interned identity if it is unset and
// returns it. The model evaluators call this at construction; tests that
// build Impls by hand may call it to opt into interning. It must not be
// called on Impls that are already shared across goroutines.
func (im *Impl) EnsureID() string {
	if im.ID == "" {
		im.ID = im.Kernel + "|" + im.Board + "|" + im.Config.String()
	}
	return im.ID
}

// EfficiencyRPSPerW is throughput per watt, the energy-efficiency axis of
// Fig. 1(c).
func (im *Impl) EfficiencyRPSPerW() float64 {
	if im.PowerW <= 0 {
		return 0
	}
	return im.ThroughputRPS / im.PowerW
}

func (im *Impl) String() string {
	return fmt.Sprintf("%s/%s[%s] lat=%.1fms rps=%.2f pow=%.1fW",
		im.Kernel, im.Platform, im.Config, im.LatencyMS, im.ThroughputRPS, im.PowerW)
}

// ErrInfeasible is returned when a configuration does not fit the board.
type ErrInfeasible struct {
	Reason string
}

func (e *ErrInfeasible) Error() string { return "model: infeasible config: " + e.Reason }

// Evaluate dispatches to the platform model. spec must be a
// device.GPUSpec or device.FPGASpec matching the config's platform.
func Evaluate(ka *analysis.Kernel, cfg opt.Config, spec any) (*Impl, error) {
	switch s := spec.(type) {
	case device.GPUSpec:
		if cfg.Platform != device.GPU {
			return nil, fmt.Errorf("model: FPGA config evaluated on GPU spec")
		}
		return EvaluateGPU(ka, cfg, s)
	case device.FPGASpec:
		if cfg.Platform != device.FPGA {
			return nil, fmt.Errorf("model: GPU config evaluated on FPGA spec")
		}
		return EvaluateFPGA(ka, cfg, s)
	}
	return nil, fmt.Errorf("model: unknown spec type %T", spec)
}

// launchOverheadMS is the fixed host-side cost of one kernel dispatch.
const launchOverheadMS = 0.02

// gpuSIMDEfficiency is the fraction of peak scalar throughput real
// kernels achieve on the SIMD array (divergence, bank conflicts, issue
// stalls). Calibrated so kernel latencies land in the range of Fig. 1(f).
const gpuSIMDEfficiency = 0.5

// gpuCustomPenalty further derates GPU compute for patterns built on
// custom/IP-core operators: divergent branching and serialized table
// lookups defeat the SIMD front end.
const gpuCustomPenalty = 0.2

// gpuBatchMarshalMS is the per-request host-side marshalling cost of a
// batched launch (argument setup, buffer packing).
const gpuBatchMarshalMS = 0.25

// clamp01 bounds x into [0,1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// occupancy maps a work-group size to achieved GPU occupancy. Small
// groups under-fill the SIMD front end; very large ones hit register
// pressure. The shape follows the occupancy tables of [49].
func occupancy(wg int) float64 {
	switch {
	case wg <= 0:
		return 0.5
	case wg < 128:
		return 0.55
	case wg < 256:
		return 0.8
	case wg <= 512:
		return 1.0
	default:
		return 0.85
	}
}

// memEfficiency returns the fraction of peak bandwidth a kernel achieves,
// given its access regularity and the config's memory directives.
func memEfficiency(ka *analysis.Kernel, cfg opt.Config) float64 {
	eff := 1.0
	for _, name := range ka.Order {
		if ka.Infos[name].Inst.Irregular {
			// Data-dependent index streams: coalescing remaps them
			// (Fig. 5(a) lines 2-3); without it, DRAM bursts shatter.
			if cfg.Platform == device.GPU && !cfg.Coalesce {
				eff = 0.35
			} else if cfg.Platform == device.FPGA && !cfg.DoubleBuf {
				eff = 0.5
			} else {
				eff = 0.85
			}
			break
		}
	}
	if cfg.Platform == device.GPU && cfg.Scratchpad {
		// Staging through __local memory captures short-distance reuse.
		eff = math.Min(1, eff*1.25)
	}
	return eff
}

// trafficBytes returns the kernel's off-chip traffic per invocation split
// into batch-invariant (const/weight) and per-request parts, after the
// config's fusion mask removes intermediate round-trips.
func trafficBytes(ka *analysis.Kernel, cfg opt.Config) (constB, reqB int64) {
	saving, _ := cfg.FusedSaving(ka)
	perReq := ka.GlobalBytes - ka.ConstBytes - saving
	if perReq < ka.RequestBytes {
		perReq = ka.RequestBytes // inputs and outputs can never be fused away
	}
	return ka.ConstBytes, perReq
}
