package model

import (
	"math"

	"poly/internal/analysis"
	"poly/internal/cdfg"
	"poly/internal/device"
	"poly/internal/opt"
	"poly/internal/pattern"
)

// fpgaResources is the resource budget accounting of one configuration.
type fpgaResources struct {
	logicK  float64 // thousand cells
	dsp     float64
	bramMB  float64
	maxFrac float64
}

// Per-operator resource costs for the FPGA datapath estimator, following
// the linear resource models of FlexCL [48].
const (
	shellLogicK   = 60.0 // static shell: PCIe/DDR controllers
	arithLogicK   = 0.12 // one ALU lane, thousand cells
	specialLogicK = 0.9  // piecewise function unit
	customLogicK  = 3.5  // opaque IP core instance
	loadLogicK    = 0.06 // load/store unit
	dspPerMul     = 1.0  // DSP slices per multiplying lane
	dbufOverhead  = 2.0  // double buffering doubles stream storage
)

// bramConstShare caps how much BRAM may pin const (weight) data; the
// rest of the capacity serves pipeline FIFOs and fused buffers.
const bramConstShare = 0.75

// constSplit divides a kernel's const data into the part pinned in BRAM
// and the part streamed from DDR every invocation — outsized weight
// matrices (e.g. a fully-connected classifier) do not fit on chip and
// must stream, which is exactly why such kernels favour GPUs.
func constSplit(ka *analysis.Kernel, spec device.FPGASpec) (residentB, streamedB int64) {
	budget := int64(bramConstShare * spec.BRAMMB * 1e6)
	if ka.ConstBytes <= budget {
		return ka.ConstBytes, 0
	}
	return budget, ka.ConstBytes - budget
}

// EvaluateFPGA runs the FPGA analytical model for one kernel
// configuration on one board.
//
// Timing follows the initiation-interval pipeline model of FlexCL: a
// pattern with datapath depth D, E elements, L = unroll × CU lanes
// (capped by BRAM ports and data parallelism) and initiation interval II
// takes D + (E/L)·II cycles when pipelined (II = 1) and E/L·D cycles
// otherwise. Const data is pinned in BRAM, so only per-request traffic
// pays off-chip bandwidth. Power scales with resource utilization [51].
func EvaluateFPGA(ka *analysis.Kernel, cfg opt.Config, spec device.FPGASpec) (*Impl, error) {
	if spec.FreqMHz <= 0 || spec.LogicCells <= 0 {
		return nil, &ErrInfeasible{Reason: "FPGA spec with non-positive capacity"}
	}
	res, err := fpgaResourceUsage(ka, cfg, spec)
	if err != nil {
		return nil, err
	}

	clock := cfg.ClockScale
	if clock <= 0 {
		clock = 1
	}
	cyclesPerMS := spec.FreqMHz * 1e3 * clock
	repeat := float64(ka.Repeat)
	if repeat < 1 {
		repeat = 1
	}
	portCap := float64(cfg.BRAMPorts)
	if portCap < 1 {
		portCap = 1
	}

	lanes := laneAllocation(ka, cfg)
	var latencyMS, maxStageMS float64
	for _, name := range ka.Order {
		info := ka.Infos[name]
		stageMS := fpgaPatternMS(info, cfg, lanes[name], portCap, cyclesPerMS)
		latencyMS += stageMS
		if stageMS > maxStageMS {
			maxStageMS = stageMS
		}
	}

	// Off-chip streaming: per-request data plus any const data that does
	// not fit the BRAM budget (streamed weights).
	_, reqB := trafficBytes(ka, cfg)
	_, streamedB := constSplit(ka, spec)
	eff := memEfficiency(ka, cfg)
	memMS := float64(reqB+streamedB) / (spec.MemBWGBs * 1e6 * eff)
	if cfg.DoubleBuf {
		// Double buffering overlaps loads/stores with the datapath.
		latencyMS = math.Max(latencyMS, memMS) + 0.1*math.Min(latencyMS, memMS)
	} else {
		latencyMS += memMS
	}
	latencyMS *= repeat
	maxStageMS *= repeat

	// Coarse pipes let consecutive requests overlap stage-wise, so the
	// sustained interval shrinks to the slowest stage (plus streaming).
	intervalMS := latencyMS
	if cfg.Pipes || cfg.HWPipe {
		intervalMS = math.Max(maxStageMS, memMS*repeat)
		if intervalMS <= 0 {
			intervalMS = latencyMS
		}
	}

	// Dynamic power scales with resource toggle activity and
	// superlinearly with the clock (voltage margin shrinks with f).
	util := res.maxFrac
	powerW := spec.IdlePowerW + (spec.PeakPowerW-spec.IdlePowerW)*(0.15+0.85*util)*math.Pow(clock, 2.5)

	im := &Impl{
		Kernel:        ka.Name,
		Platform:      device.FPGA,
		Board:         spec.Name,
		Config:        cfg,
		LatencyMS:     latencyMS,
		IntervalMS:    intervalMS,
		ThroughputRPS: 1000 / intervalMS,
		PowerW:        powerW,
		ResourceFrac:  util,
	}
	im.EnergyMJ = powerW * math.Max(latencyMS, intervalMS)
	if intervalMS < latencyMS {
		// Pipelined: steady-state energy per request is power × interval.
		im.EnergyMJ = powerW * intervalMS
	}
	im.EnsureID()
	return im, nil
}

// fpgaPatternMS returns the per-invocation time of one pattern stage.
//
// A pipelined stage with L lanes, per-element initiation interval II
// (the busiest function unit's busy time) and datapath depth D processes
// E elements in D + (E/L)·II cycles. Without the pipeline pragma the
// loads, compute, and stores of one element do not overlap, so each
// element costs the full depth.
func fpgaPatternMS(info *analysis.PatternInfo, cfg opt.Config, lanes, portCap, cyclesPerMS float64) float64 {
	depth := float64(info.CDFG.DepthCycles())
	elems := float64(info.Inst.Elems)
	// BRAM partitioning feeds the lanes: each increment of the partition
	// factor unlocks another group of independently addressable banks
	// (dual-ported 36Kb blocks, ~32 usable lanes per factor step).
	memLanes := portCap * 32
	if lanes > memLanes {
		lanes = memLanes
	}
	if lanes < 1 {
		lanes = 1
	}
	var cycles float64
	if cfg.HWPipe {
		ii := float64(info.CDFG.MaxNodeCycles())
		cycles = depth + (elems/lanes-1)*ii
	} else {
		cycles = (elems / lanes) * depth
	}
	if cycles < depth {
		cycles = depth
	}
	return cycles / cyclesPerMS
}

// laneAllocation splits the config's total spatial parallelism across the
// kernel's stages in proportion to their operation counts — the way a
// designer budgets area: the dominant matvec gets the wide datapath, the
// small activation stage gets a single unit. Every stage gets at least
// one lane and never more than its data parallelism.
// fpgaMaxLanes caps the spatial parallelism one OpenCL kernel reaches in
// practice: SDAccel/Intel-OpenCL era toolchains sustain on the order of a
// hundred effective MAC lanes before routing and memory-port pressure
// flatten returns, well short of the raw DSP count.
const fpgaMaxLanes = 256

func laneAllocation(ka *analysis.Kernel, cfg opt.Config) map[string]float64 {
	total := float64(ka.TotalOps)
	budget := float64(cfg.Lanes())
	if budget > fpgaMaxLanes {
		budget = fpgaMaxLanes
	}
	out := make(map[string]float64, len(ka.Order))
	ports := float64(cfg.BRAMPorts)
	if ports < 1 {
		ports = 1
	}
	for _, name := range ka.Order {
		info := ka.Infos[name]
		var l float64
		perElem := float64(info.Inst.TotalOps()) / float64(info.Inst.Elems)
		if info.Inst.Kind.MemoryBound() {
			// Gather/Scatter/Tiling/Pack are wide shallow movers: their
			// width is set by the memory banking, not by ALU area, and
			// their logic cost is negligible.
			l = ports * 32
		} else if perElem <= 4 {
			// Shallow arithmetic (xor folds, scale/offset stages) is also
			// nearly free to widen: banking, not area, limits it.
			l = ports * 8
		} else {
			share := 1.0
			if total > 0 {
				share = float64(info.Inst.TotalOps()) / total
			}
			l = math.Round(budget * share)
		}
		if l < 1 {
			l = 1
		}
		if dp := float64(info.DataParallelism); l > dp {
			l = dp
		}
		out[name] = l
	}
	return out
}

// fpgaResourceUsage sizes the datapath and rejects configs that do not
// fit the board.
func fpgaResourceUsage(ka *analysis.Kernel, cfg opt.Config, spec device.FPGASpec) (fpgaResources, error) {
	var res fpgaResources
	res.logicK = shellLogicK
	lanes := laneAllocation(ka, cfg)

	for _, name := range ka.Order {
		info := ka.Infos[name]
		stageLanes := lanes[name]
		for _, n := range info.CDFG.Nodes() {
			switch n.Kind {
			case cdfg.Arith:
				res.logicK += arithLogicK * stageLanes
				if n.Op == "mul" || n.Op == "mac" || n.Op == "conv" {
					res.dsp += dspPerMul * stageLanes
				}
			case cdfg.Special:
				res.logicK += specialLogicK * stageLanes
				res.dsp += 2 * stageLanes
			case cdfg.Custom:
				res.logicK += customLogicK * stageLanes
				res.dsp += 4 * stageLanes
			case cdfg.Load, cdfg.Store:
				res.logicK += loadLogicK * stageLanes
			}
		}
		if info.Inst.Kind == pattern.Pipeline {
			// Inter-stage FIFOs.
			res.bramMB += float64(info.Inst.OutputBytes()) / 1e6
		}
	}

	// BRAM: pinned const data (up to the const share; the remainder
	// streams from DDR), fused intermediates, partition overhead, and
	// double buffers.
	residentB, _ := constSplit(ka, spec)
	_, fusedBuf := cfg.FusedSaving(ka)
	bram := float64(residentB+fusedBuf) / 1e6
	if cfg.BRAMPorts > 1 {
		// Cyclic partitioning fragments blocks slightly.
		bram *= 1 + 0.02*float64(cfg.BRAMPorts-1)
	}
	if cfg.DoubleBuf {
		bram += float64(ka.RequestBytes) / 1e6 * dbufOverhead
	}
	res.bramMB += bram

	logicFrac := res.logicK / float64(spec.LogicCells)
	dspFrac := res.dsp / float64(spec.DSPSlices)
	bramFrac := res.bramMB / spec.BRAMMB
	res.maxFrac = math.Max(logicFrac, math.Max(dspFrac, bramFrac))

	switch {
	case logicFrac > 1:
		return res, &ErrInfeasible{Reason: "logic cells exceeded"}
	case dspFrac > 1:
		return res, &ErrInfeasible{Reason: "DSP slices exceeded"}
	case bramFrac > 1:
		return res, &ErrInfeasible{Reason: "BRAM capacity exceeded"}
	}
	return res, nil
}
