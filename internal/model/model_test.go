package model

import (
	"math"
	"strings"
	"testing"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/opencl"
	"poly/internal/opt"
)

// lstmSrc is a weight-bound LSTM-style kernel: a 1024×1024 matvec per
// frame, 1500 frames per request.
const lstmSrc = `
program asr
kernel lstm
  repeat 1500
  const w f32[1024x1024]
  in x f32[1024]
  map      m1(x w, func=mac ops=2048 elems=1024)
  reduce   r1(m1, func=add assoc elems=1024)
  map      m2(r1, func=sigmoid ops=4)
  pipeline p1(m2, funcs=[mul:1 add:1 tanh:4])
  out p1
`

const gatherSrc = `
program p
kernel g
  in idx i32[65536]
  in data f32[65536]
  gather  gt(idx data, irregular elems=65536)
  map     m(gt, func=add ops=1)
  out m
`

func analyze(t *testing.T, src string) *analysis.Kernel {
	t.Helper()
	prog := opencl.MustParse(src)
	ka, err := analysis.AnalyzeKernel(prog.Kernels()[0], analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ka
}

func gpuCfg(batch int) opt.Config {
	return opt.Config{Platform: device.GPU, WorkGroup: 256, Unroll: 1, Batch: batch, SWPipe: true}
}

func fpgaCfg(unroll, cu, ports int) opt.Config {
	return opt.Config{Platform: device.FPGA, WorkGroup: 256, Unroll: unroll,
		ComputeUnits: cu, BRAMPorts: ports, HWPipe: true, Pipes: true, Batch: 1}
}

func TestGPUBatchingRaisesThroughputOnWeightBoundKernels(t *testing.T) {
	ka := analyze(t, lstmSrc)
	b1, err := EvaluateGPU(ka, gpuCfg(1), device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	b16, err := EvaluateGPU(ka, gpuCfg(16), device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	if b16.ThroughputRPS < 3*b1.ThroughputRPS {
		t.Fatalf("batching gain too small: b1=%.1f b16=%.1f RPS", b1.ThroughputRPS, b16.ThroughputRPS)
	}
	if b16.LatencyMS < b1.LatencyMS {
		t.Fatalf("larger batch cannot be faster per batch: %.1f vs %.1f", b16.LatencyMS, b1.LatencyMS)
	}
	if b16.EnergyMJ >= b1.EnergyMJ {
		t.Fatalf("batching must amortize energy: b1=%.1f b16=%.1f mJ", b1.EnergyMJ, b16.EnergyMJ)
	}
}

func TestGPUCoalescingHelpsIrregularKernels(t *testing.T) {
	ka := analyze(t, gatherSrc)
	plain := opt.Config{Platform: device.GPU, WorkGroup: 256, Unroll: 1, Batch: 1}
	coal := plain
	coal.Coalesce = true
	a, err := EvaluateGPU(ka, plain, device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateGPU(ka, coal, device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	if b.LatencyMS >= a.LatencyMS {
		t.Fatalf("coalescing did not help: %.3f vs %.3f ms", b.LatencyMS, a.LatencyMS)
	}
}

func TestGPUFusionReducesLatency(t *testing.T) {
	ka := analyze(t, lstmSrc)
	if len(ka.Fusible) == 0 {
		t.Fatal("kernel must have fusible edges")
	}
	plain := gpuCfg(4)
	fused := plain
	fused.FuseMask = (1 << uint(len(ka.Fusible))) - 1
	a, _ := EvaluateGPU(ka, plain, device.AMDW9100)
	b, _ := EvaluateGPU(ka, fused, device.AMDW9100)
	if b.LatencyMS > a.LatencyMS {
		t.Fatalf("fusion increased latency: %.3f vs %.3f", b.LatencyMS, a.LatencyMS)
	}
}

func TestFPGAUnrollScalesLatencyDown(t *testing.T) {
	ka := analyze(t, lstmSrc)
	small, err := EvaluateFPGA(ka, fpgaCfg(1, 1, 1), device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := EvaluateFPGA(ka, fpgaCfg(64, 8, 16), device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if big.LatencyMS >= small.LatencyMS/10 {
		t.Fatalf("unrolling gain too small: %.1f vs %.1f ms", big.LatencyMS, small.LatencyMS)
	}
	if big.PowerW <= small.PowerW {
		t.Fatalf("wider datapath must draw more power: %.1f vs %.1f W", big.PowerW, small.PowerW)
	}
	if big.ResourceFrac <= small.ResourceFrac {
		t.Fatalf("wider datapath must use more resources")
	}
}

func TestFPGAPipelineBeatsUnpipelined(t *testing.T) {
	ka := analyze(t, lstmSrc)
	piped := fpgaCfg(16, 4, 16)
	flat := piped
	flat.HWPipe = false
	flat.Pipes = false
	a, err := EvaluateFPGA(ka, piped, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateFPGA(ka, flat, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyMS >= b.LatencyMS {
		t.Fatalf("pipelining did not help: %.1f vs %.1f ms", a.LatencyMS, b.LatencyMS)
	}
	// Pipes also shrink the initiation interval below latency.
	if a.IntervalMS > a.LatencyMS {
		t.Fatalf("interval %.1f > latency %.1f", a.IntervalMS, a.LatencyMS)
	}
}

func TestFPGAOversizedWeightsStreamFromDDR(t *testing.T) {
	// 64 MB of const data cannot pin in 6.5 MB of BRAM: the model must
	// stream the overflow from DDR every invocation, making the kernel
	// dramatically slower than an on-chip-resident equivalent — the
	// mechanism that pushes big fully-connected layers onto GPUs.
	bigSrc := `
program p
kernel k
  repeat 10
  const w f32[16777216]
  in x f32[1024]
  map m(x w, func=mac ops=2048 elems=16384)
`
	smallSrc := `
program p
kernel k
  repeat 10
  const w f32[262144]
  in x f32[1024]
  map m(x w, func=mac ops=2048 elems=16384)
`
	big := analyze(t, bigSrc)
	small := analyze(t, smallSrc)
	cfg := fpgaCfg(16, 4, 16)
	bi, err := EvaluateFPGA(big, cfg, device.Xilinx7V3)
	if err != nil {
		t.Fatalf("streaming config must stay feasible: %v", err)
	}
	si, err := EvaluateFPGA(small, cfg, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if bi.LatencyMS < 3*si.LatencyMS {
		t.Fatalf("weight streaming too cheap: %.1f vs resident %.1f ms", bi.LatencyMS, si.LatencyMS)
	}
}

func TestFPGAInfeasibleConfigsRejected(t *testing.T) {
	// Exhausting logic is still a hard infeasibility: enormous lane
	// counts on a small board must be rejected.
	src := `
program p
kernel k
  in x f32[1048576]
  stencil s(x, func=conv ops=9 taps=25 elems=1048576)
`
	ka := analyze(t, src)
	cfg := opt.Config{Platform: device.FPGA, WorkGroup: 256, Unroll: 64,
		ComputeUnits: 8, BRAMPorts: 16, HWPipe: true, Batch: 1}
	_, err := EvaluateFPGA(ka, cfg, device.FPGASpec{
		Name: "tiny", FreqMHz: 100, LogicCells: 70, BRAMMB: 1, DSPSlices: 64, MemBWGBs: 2,
		PeakPowerW: 10, IdlePowerW: 2,
	})
	if err == nil {
		t.Fatal("512 lanes must not fit a 70K-cell board")
	}
	if _, ok := err.(*ErrInfeasible); !ok {
		t.Fatalf("error type = %T, want *ErrInfeasible", err)
	}
}

func TestFPGAEnergyBeatsGPUAtSingleRequest(t *testing.T) {
	// The motivation study (Fig. 1c): at batch 1, FPGA implementations are
	// far more energy-efficient; GPUs need batching to compete.
	ka := analyze(t, lstmSrc)
	g, err := EvaluateGPU(ka, gpuCfg(1), device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EvaluateFPGA(ka, fpgaCfg(64, 8, 16), device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if f.EnergyMJ >= g.EnergyMJ {
		t.Fatalf("FPGA energy %.1f ≥ GPU energy %.1f at batch 1", f.EnergyMJ, g.EnergyMJ)
	}
}

func TestEvaluateDispatch(t *testing.T) {
	ka := analyze(t, lstmSrc)
	if _, err := Evaluate(ka, gpuCfg(1), device.AMDW9100); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(ka, fpgaCfg(4, 2, 4), device.Xilinx7V3); err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(ka, gpuCfg(1), device.Xilinx7V3); err == nil {
		t.Fatal("GPU config on FPGA spec accepted")
	}
	if _, err := Evaluate(ka, fpgaCfg(1, 1, 1), device.AMDW9100); err == nil {
		t.Fatal("FPGA config on GPU spec accepted")
	}
	if _, err := Evaluate(ka, gpuCfg(1), 42); err == nil {
		t.Fatal("unknown spec type accepted")
	}
}

func TestImplDerivedMetrics(t *testing.T) {
	ka := analyze(t, lstmSrc)
	im, err := EvaluateGPU(ka, gpuCfg(8), device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(im.ThroughputRPS-8/im.LatencyMS*1000) > 1e-9 {
		t.Fatalf("throughput inconsistent with latency: %+v", im)
	}
	wantEff := im.ThroughputRPS / im.PowerW
	if math.Abs(im.EfficiencyRPSPerW()-wantEff) > 1e-12 {
		t.Fatal("efficiency metric inconsistent")
	}
	if im.String() == "" {
		t.Fatal("String must render")
	}
	var zero Impl
	if zero.EfficiencyRPSPerW() != 0 {
		t.Fatal("zero-power efficiency must be 0")
	}
}

func TestPowerWithinDeviceEnvelope(t *testing.T) {
	ka := analyze(t, lstmSrc)
	for _, b := range []int{1, 2, 4, 8, 16} {
		im, err := EvaluateGPU(ka, gpuCfg(b), device.AMDW9100)
		if err != nil {
			t.Fatal(err)
		}
		if im.PowerW < device.AMDW9100.IdlePowerW || im.PowerW > device.AMDW9100.PeakPowerW {
			t.Fatalf("GPU power %.1f outside [%v,%v]", im.PowerW, device.AMDW9100.IdlePowerW, device.AMDW9100.PeakPowerW)
		}
	}
	for _, u := range []int{1, 4, 16, 64} {
		im, err := EvaluateFPGA(ka, fpgaCfg(u, 2, 4), device.Xilinx7V3)
		if err != nil {
			t.Fatal(err)
		}
		if im.PowerW < device.Xilinx7V3.IdlePowerW || im.PowerW > device.Xilinx7V3.PeakPowerW {
			t.Fatalf("FPGA power %.1f outside envelope", im.PowerW)
		}
	}
}

func TestBadSpecsRejected(t *testing.T) {
	ka := analyze(t, lstmSrc)
	if _, err := EvaluateGPU(ka, gpuCfg(1), device.GPUSpec{}); err == nil {
		t.Fatal("zero GPU spec accepted")
	}
	if _, err := EvaluateFPGA(ka, fpgaCfg(1, 1, 1), device.FPGASpec{}); err == nil {
		t.Fatal("zero FPGA spec accepted")
	}
}

func TestPCIeTransferModel(t *testing.T) {
	p := device.DefaultPCIe
	zero := p.TransferMS(0)
	if zero <= 0 {
		t.Fatal("zero-byte transfer must still pay setup latency")
	}
	if p.TransferMS(-5) != zero {
		t.Fatal("negative sizes clamp to zero bytes")
	}
	mb := p.TransferMS(1 << 20)
	if mb <= zero {
		t.Fatal("1 MiB must cost more than setup")
	}
	// 8 GB/s → 1 GiB ≈ 134 ms.
	gb := p.TransferMS(1 << 30)
	if gb < 100 || gb > 200 {
		t.Fatalf("1 GiB transfer = %.1f ms, want ≈134", gb)
	}
}

func TestDeviceClassString(t *testing.T) {
	if device.GPU.String() != "GPU" || device.FPGA.String() != "FPGA" {
		t.Fatal("class names wrong")
	}
	if device.Class(9).String() == "" {
		t.Fatal("unknown class must format")
	}
}

func TestOccupancyShape(t *testing.T) {
	// Occupancy grows to a plateau at mid work-group sizes and dips for
	// oversized groups (register pressure), per the tables of [49].
	if occupancy(0) != 0.5 {
		t.Fatal("degenerate work-group occupancy wrong")
	}
	if !(occupancy(64) < occupancy(128) && occupancy(128) < occupancy(256)) {
		t.Fatal("occupancy must grow with work-group size below the plateau")
	}
	if occupancy(1024) >= occupancy(256) {
		t.Fatal("oversized work-groups must lose occupancy")
	}
}

func TestErrInfeasibleMessage(t *testing.T) {
	e := &ErrInfeasible{Reason: "BRAM capacity exceeded"}
	if !strings.Contains(e.Error(), "BRAM") {
		t.Fatalf("error message lost the reason: %q", e.Error())
	}
}

func TestFPGAClockScalingTradeoff(t *testing.T) {
	// A half-clock design must be slower but cheaper per the f^2.5 rule —
	// the interior energy optimum behind the Fig. 1(c) frontier.
	ka := analyze(t, lstmSrc)
	fast := fpgaCfg(16, 4, 16)
	slow := fast
	slow.ClockScale = 0.5
	a, err := EvaluateFPGA(ka, fast, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateFPGA(ka, slow, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if b.LatencyMS <= a.LatencyMS {
		t.Fatal("half clock must be slower")
	}
	if b.PowerW >= a.PowerW {
		t.Fatal("half clock must draw less power")
	}
	if b.PowerW > 0.6*a.PowerW {
		t.Fatalf("f^2.5 scaling too weak: %.1f vs %.1f W", b.PowerW, a.PowerW)
	}
}
