package telemetry

import (
	"testing"

	"poly/internal/sim"
)

// TestSpanLifecycle drives one request span through the recorder the way
// the runtime does — admit, two kernels, finish — and checks the derived
// quantities and outcome accounting.
func TestSpanLifecycle(t *testing.T) {
	r := New()
	r.BeginSession("test")

	sp := r.StartSpan(100, 50) // arrived t=100 ms, bound 50 ms
	if sp.ID == 0 {
		t.Fatal("span id must be assigned")
	}
	k1 := sp.AddKernel("mfcc", "gpu0", "mfcc/gpu/b8", 100)
	k2 := sp.AddKernel("hmm", "fpga0", "hmm/fpga/v1", 100)
	k1.StartMS, k1.EndMS = 104, 110
	k2.StartMS, k2.EndMS = 112, 130
	if got := k1.QueueMS(); got != 4 {
		t.Fatalf("k1 queue = %v, want 4", got)
	}
	if got := k2.ServiceMS(); got != 18 {
		t.Fatalf("k2 service = %v, want 18", got)
	}
	if got := sp.AdmitWaitMS(); got != 4 {
		t.Fatalf("admit wait = %v, want 4 (earliest kernel start - arrival)", got)
	}

	sp.LatencyMS, sp.Measured, sp.Violation = 30, true, false
	r.FinishSpan(sp, 130)
	if got := r.Registry().Counter("poly_requests_total", "", "outcome", "ok").Value(); got != 1 {
		t.Fatalf("ok outcome count = %v, want 1", got)
	}
	if got := r.Registry().Histogram("poly_request_latency_ms", "").HistCount(); got != 1 {
		t.Fatalf("latency observations = %v, want 1", got)
	}
	if got := r.Registry().Counter("poly_kernel_execs_total", "",
		"device", "gpu0", "kernel", "mfcc").Value(); got != 1 {
		t.Fatalf("kernel exec count = %v, want 1", got)
	}

	// A violating span: counted under its own outcome and marked on the
	// trace as a violation instant.
	sp2 := r.StartSpan(200, 50)
	sp2.LatencyMS, sp2.Measured, sp2.Violation = 80, true, true
	r.FinishSpan(sp2, 280)
	if got := r.Registry().Counter("poly_requests_total", "", "outcome", "violation").Value(); got != 1 {
		t.Fatalf("violation outcome count = %v, want 1", got)
	}

	// A dropped span: its own outcome, no latency observation, and its
	// kernels stay out of the per-device histograms.
	sp3 := r.StartSpan(300, 50)
	sp3.AddKernel("mfcc", "ghost0", "mfcc/gpu/b8", 300)
	sp3.Dropped = true
	r.FinishSpan(sp3, 300)
	if got := r.Registry().Counter("poly_requests_total", "", "outcome", "dropped").Value(); got != 1 {
		t.Fatalf("dropped outcome count = %v, want 1", got)
	}
	if got := r.Registry().Histogram("poly_request_latency_ms", "").HistCount(); got != 2 {
		t.Fatalf("latency observations = %v, want 2 (dropped span excluded)", got)
	}
	if got := r.Registry().Histogram("poly_kernel_queue_ms", "", "device", "ghost0").HistCount(); got != 0 {
		t.Fatalf("dropped span's kernels leaked into histograms (%v observations)", got)
	}

	if got := r.SpanTotal(); got != 3 {
		t.Fatalf("span total = %d, want 3", got)
	}
	spans := r.Spans()
	if len(spans) != 3 || spans[0].ID != sp.ID || spans[2].ID != sp3.ID {
		t.Fatalf("ring snapshot out of order: %v", spans)
	}
}

// TestSpanRingBounded checks the ring keeps only the newest cap spans,
// oldest first in snapshots, while Total still counts everything.
func TestSpanRingBounded(t *testing.T) {
	ring := NewSpanRing(4)
	for i := 1; i <= 10; i++ {
		ring.Push(&Span{ID: uint64(i)})
	}
	if ring.Total() != 10 {
		t.Fatalf("total = %d, want 10", ring.Total())
	}
	got := ring.Snapshot()
	if len(got) != 4 {
		t.Fatalf("retained %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if want := uint64(7 + i); sp.ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
}

// TestRecorderSpanRingCap checks the recorder honors Options.SpanRingCap.
func TestRecorderSpanRingCap(t *testing.T) {
	r := NewWithOptions(Options{SpanRingCap: 2})
	for i := 0; i < 5; i++ {
		sp := r.StartSpan(sim.Time(i), 10)
		sp.Measured = true
		r.FinishSpan(sp, sim.Time(i+1))
	}
	if got := len(r.Spans()); got != 2 {
		t.Fatalf("retained %d spans, want 2", got)
	}
	if r.SpanTotal() != 5 {
		t.Fatalf("total = %d, want 5", r.SpanTotal())
	}
}
