package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"poly/internal/sim"
)

// Labels is an ordered list of key/value pairs ("key", "value", ...).
// Series identity canonicalizes by key, so label order never matters.
type Labels []string

// Registry is a label-keyed metric store: counters, gauges, and
// fixed-bucket histograms, grouped into families for Prometheus text
// exposition. All methods are safe for concurrent use — the simulation
// loop records while the /metrics listener snapshots.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // family names in first-registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*Metric
	keys   []string // series keys in first-registration order
}

// Metric is one series of a family: a counter, gauge, or histogram,
// depending on how it was registered. Histogram series reuse the
// sim.HistogramBoundsMS bucket layout, so a `le` bound here means the
// same interval as a sim.Sample bucket.
type Metric struct {
	reg       *Registry
	kind      metricKind
	labelsStr string // rendered {k="v",...}, sorted by key; "" when unlabeled

	val float64 // counter / gauge value

	// histogram state (kindHistogram only)
	buckets []uint64
	count   uint64
	sum     float64
}

// labelsKey renders labels sorted by key for series identity and output.
func labelsKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd label list")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the series for (name, labels), creating family and series
// as needed. Kind and help are fixed by the first registration.
func (r *Registry) get(name, help string, kind metricKind, labels Labels) *Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*Metric)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	key := labelsKey(labels)
	m := f.series[key]
	if m == nil {
		m = &Metric{reg: r, kind: f.kind, labelsStr: key}
		if f.kind == kindHistogram {
			m.buckets = make([]uint64, sim.NumHistogramBuckets)
		}
		f.series[key] = m
		f.keys = append(f.keys, key)
	}
	return m
}

// Counter returns the counter series for (name, labels), creating it at
// zero on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Metric {
	return r.get(name, help, kindCounter, Labels(labels))
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Metric {
	return r.get(name, help, kindGauge, Labels(labels))
}

// Histogram returns the histogram series for (name, labels), with the
// shared sim.HistogramBoundsMS bucket layout.
func (r *Registry) Histogram(name, help string, labels ...string) *Metric {
	return r.get(name, help, kindHistogram, Labels(labels))
}

// Add increments a counter (or gauge) by v.
func (m *Metric) Add(v float64) {
	m.reg.mu.Lock()
	m.val += v
	m.reg.mu.Unlock()
}

// Inc increments a counter by one.
func (m *Metric) Inc() { m.Add(1) }

// Set sets a gauge's value.
func (m *Metric) Set(v float64) {
	m.reg.mu.Lock()
	m.val = v
	m.reg.mu.Unlock()
}

// Value reads the current counter/gauge value.
func (m *Metric) Value() float64 {
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	return m.val
}

// Observe records one observation into a histogram series.
func (m *Metric) Observe(v float64) {
	m.reg.mu.Lock()
	m.buckets[sim.BucketIndex(v)]++
	m.count++
	m.sum += v
	m.reg.mu.Unlock()
}

// HistCount returns a histogram series' observation count.
func (m *Metric) HistCount() uint64 {
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	return m.count
}

// Quantile estimates the q-th quantile (0 < q < 1) of a histogram series
// by linear interpolation inside the bucket holding the target rank —
// the summary the registry reports as p50/p95/p99. Exact percentiles
// stay with sim.Sample; this is a monitoring estimate.
func (m *Metric) Quantile(q float64) float64 {
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	rank := q * float64(m.count)
	var cum float64
	for i, c := range m.buckets {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = sim.HistogramBoundsMS[i-1]
			}
			hi := lo
			if i < len(sim.HistogramBoundsMS) {
				hi = sim.HistogramBoundsMS[i]
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return sim.HistogramBoundsMS[len(sim.HistogramBoundsMS)-1]
}

// formatValue renders a sample value the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order and
// series in first-use order, so output is deterministic for a
// deterministic run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.keys {
			m := f.series[key]
			if f.kind != kindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, m.labelsStr, formatValue(m.val)); err != nil {
					return err
				}
				continue
			}
			var cum uint64
			for i, c := range m.buckets {
				cum += c
				le := "+Inf"
				if i < len(sim.HistogramBoundsMS) {
					le = formatValue(sim.HistogramBoundsMS[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(m.labelsStr, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, m.labelsStr, formatValue(m.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, m.labelsStr, m.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLabel appends one label pair to an already-rendered label set.
func withLabel(rendered, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}
