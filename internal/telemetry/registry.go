package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"poly/internal/sim"
)

// Labels is an ordered list of key/value pairs ("key", "value", ...).
// Series identity canonicalizes by key, so label order never matters.
type Labels []string

// Registry is a label-keyed metric store: counters, gauges, and
// fixed-bucket histograms, grouped into families for Prometheus text
// exposition. All methods are safe for concurrent use — the simulation
// loop records while the /metrics listener snapshots.
type Registry struct {
	mu       *sync.Mutex
	families map[string]*family
	names    []string // family names in first-registration order
	keyBuf   []byte   // scratch for allocation-free series lookups
}

// NewRegistry returns an empty registry guarded by its own mutex.
func NewRegistry() *Registry {
	return newSharedRegistry(&sync.Mutex{})
}

// newSharedRegistry returns a registry guarded by an external mutex, so
// an owner (the Recorder) can update many series under one acquisition
// via the *Locked entry points. Callers of the public Metric methods
// must not already hold mu.
func newSharedRegistry(mu *sync.Mutex) *Registry {
	return &Registry{mu: mu, families: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*Metric
	keys   []string // series keys in first-registration order
}

// Metric is one series of a family: a counter, gauge, or histogram,
// depending on how it was registered. Histogram series reuse the
// sim.HistogramBoundsMS bucket layout, so a `le` bound here means the
// same interval as a sim.Sample bucket.
type Metric struct {
	reg       *Registry
	kind      metricKind
	labelsStr string // rendered {k="v",...}, sorted by key; "" when unlabeled

	val float64 // counter / gauge value

	// histogram state (kindHistogram only)
	buckets []uint64
	count   uint64
	sum     float64
}

// appendLabelsKey renders labels sorted by key into dst for series
// identity and output. It allocates nothing beyond dst growth: the sort
// is an insertion sort over a small index array (label sets here are
// one to three pairs), so lazy per-event series lookups stay free.
func appendLabelsKey(dst []byte, labels Labels) []byte {
	if len(labels) == 0 {
		return dst
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd label list")
	}
	n := len(labels) / 2
	var idxBuf [8]int
	idx := idxBuf[:0]
	if n > len(idxBuf) {
		idx = make([]int, 0, n)
	}
	for i := 0; i < n; i++ {
		idx = append(idx, i*2)
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && labels[idx[j]] < labels[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	dst = append(dst, '{')
	for i, k := range idx {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, labels[k]...)
		dst = append(dst, '=', '"')
		dst = append(dst, escapeLabel(labels[k+1])...)
		dst = append(dst, '"')
	}
	return append(dst, '}')
}

// labelsKey renders labels sorted by key as a string.
func labelsKey(labels Labels) string {
	return string(appendLabelsKey(nil, labels))
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the series for (name, labels), creating family and series
// as needed. Kind and help are fixed by the first registration.
func (r *Registry) get(name, help string, kind metricKind, labels Labels) *Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.getLocked(name, help, kind, labels)
}

// getLocked is get for callers already holding r.mu. A lookup that hits
// an existing series allocates nothing: the rendered label key lives in
// the registry's scratch buffer and only becomes a string on first
// registration.
func (r *Registry) getLocked(name, help string, kind metricKind, labels Labels) *Metric {
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*Metric)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	r.keyBuf = appendLabelsKey(r.keyBuf[:0], labels)
	m := f.series[string(r.keyBuf)]
	if m == nil {
		key := string(r.keyBuf)
		m = &Metric{reg: r, kind: f.kind, labelsStr: key}
		if f.kind == kindHistogram {
			m.buckets = make([]uint64, sim.NumHistogramBuckets)
		}
		f.series[key] = m
		f.keys = append(f.keys, key)
	}
	return m
}

// Counter returns the counter series for (name, labels), creating it at
// zero on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Metric {
	return r.get(name, help, kindCounter, Labels(labels))
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...string) *Metric {
	return r.get(name, help, kindGauge, Labels(labels))
}

// Histogram returns the histogram series for (name, labels), with the
// shared sim.HistogramBoundsMS bucket layout.
func (r *Registry) Histogram(name, help string, labels ...string) *Metric {
	return r.get(name, help, kindHistogram, Labels(labels))
}

// Add increments a counter (or gauge) by v.
func (m *Metric) Add(v float64) {
	m.reg.mu.Lock()
	m.val += v
	m.reg.mu.Unlock()
}

// Inc increments a counter by one.
func (m *Metric) Inc() { m.Add(1) }

// Set sets a gauge's value.
func (m *Metric) Set(v float64) {
	m.reg.mu.Lock()
	m.val = v
	m.reg.mu.Unlock()
}

// Value reads the current counter/gauge value.
func (m *Metric) Value() float64 {
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	return m.val
}

// Observe records one observation into a histogram series.
func (m *Metric) Observe(v float64) {
	m.reg.mu.Lock()
	m.buckets[sim.BucketIndex(v)]++
	m.count++
	m.sum += v
	m.reg.mu.Unlock()
}

// addLocked / setLocked / observeLocked are the raw series updates for
// an owner already holding the registry mutex (the Recorder batches a
// whole runtime event under one acquisition). Calling the public
// Add/Set/Observe while holding the shared mutex would deadlock.
func (m *Metric) addLocked(v float64) { m.val += v }
func (m *Metric) incLocked()          { m.val++ }
func (m *Metric) setLocked(v float64) { m.val = v }
func (m *Metric) observeLocked(v float64) {
	m.buckets[sim.BucketIndex(v)]++
	m.count++
	m.sum += v
}

// HistCount returns a histogram series' observation count.
func (m *Metric) HistCount() uint64 {
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	return m.count
}

// Quantile estimates the q-th quantile (0 < q < 1) of a histogram series
// by linear interpolation inside the bucket holding the target rank —
// the summary the registry reports as p50/p95/p99. Exact percentiles
// stay with sim.Sample; this is a monitoring estimate.
func (m *Metric) Quantile(q float64) float64 {
	m.reg.mu.Lock()
	defer m.reg.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	rank := q * float64(m.count)
	var cum float64
	for i, c := range m.buckets {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = sim.HistogramBoundsMS[i-1]
			}
			hi := lo
			if i < len(sim.HistogramBoundsMS) {
				hi = sim.HistogramBoundsMS[i]
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return sim.HistogramBoundsMS[len(sim.HistogramBoundsMS)-1]
}

// formatValue renders a sample value the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Families appear in registration order and
// series in first-use order, so output is deterministic for a
// deterministic run.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writeLocked(w)
}

// writeLocked renders the exposition for callers already holding r.mu.
func (r *Registry) writeLocked(w io.Writer) error {
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.keys {
			m := f.series[key]
			if f.kind != kindHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, m.labelsStr, formatValue(m.val)); err != nil {
					return err
				}
				continue
			}
			var cum uint64
			for i, c := range m.buckets {
				cum += c
				le := "+Inf"
				if i < len(sim.HistogramBoundsMS) {
					le = formatValue(sim.HistogramBoundsMS[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLabel(m.labelsStr, "le", le), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, m.labelsStr, formatValue(m.sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, m.labelsStr, m.count); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLabel appends one label pair to an already-rendered label set.
func withLabel(rendered, k, v string) string {
	extra := k + `="` + escapeLabel(v) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}
