package telemetry

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// gaugeVal reads a gauge series after forcing the scrape-time sync that
// refreshes derived values (ratios are only pushed on exposition).
func gaugeVal(t *testing.T, r *Recorder, name string, labels ...string) float64 {
	t.Helper()
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return r.Registry().Gauge(name, "", labels...).Value()
}

// TestResourceAccounting drives the allocated/allocatable gauge triples
// through the ResourceObserver events and checks the two load-bearing
// properties: busy counts clamp to 0/1 slot occupancy, and the node
// aggregate tracks the boards incrementally.
func TestResourceAccounting(t *testing.T) {
	r := New()
	r.BeginSession("test")
	r.RegisterNodeResource(ResComputeSlots, 2)
	r.RegisterNodeResource(ResPowerW, 300)
	r.RegisterNodeResource(ResFPGARegions, 1)
	r.RegisterBoardResource("gpu0", ResComputeSlots, 1)
	r.RegisterBoardResource("gpu0", ResPowerW, 200)
	r.RegisterBoardResource("fpga0", ResComputeSlots, 1)
	r.RegisterBoardResource("fpga0", ResPowerW, 100)
	r.RegisterBoardResource("fpga0", ResFPGARegions, 1)

	if got := gaugeVal(t, r, "poly_node_allocatable", "resource", ResComputeSlots); got != 2 {
		t.Fatalf("node allocatable slots = %v, want 2", got)
	}
	if got := gaugeVal(t, r, "poly_board_allocatable", "board", "gpu0", "resource", ResPowerW); got != 200 {
		t.Fatalf("gpu0 allocatable watts = %v, want 200", got)
	}

	// An FPGA pipelining three in-flight tasks still occupies one slot.
	r.BusyChanged("fpga0", 3, 10)
	if got := gaugeVal(t, r, "poly_board_allocated", "board", "fpga0", "resource", ResComputeSlots); got != 1 {
		t.Fatalf("fpga0 allocated slots with busy=3 = %v, want 1 (clamped)", got)
	}
	r.BusyChanged("gpu0", 1, 11)
	if got := gaugeVal(t, r, "poly_node_allocated", "resource", ResComputeSlots); got != 2 {
		t.Fatalf("node allocated slots = %v, want 2", got)
	}
	if got := gaugeVal(t, r, "poly_node_utilization_ratio", "resource", ResComputeSlots); got != 1 {
		t.Fatalf("node slot utilization = %v, want 1", got)
	}
	r.BusyChanged("fpga0", 0, 12)
	r.BusyChanged("gpu0", 0, 12)
	if got := gaugeVal(t, r, "poly_node_allocated", "resource", ResComputeSlots); got != 0 {
		t.Fatalf("node allocated slots after drain = %v, want 0", got)
	}

	r.PowerChanged("gpu0", 150, 13)
	r.PowerChanged("fpga0", 30, 13)
	if got := gaugeVal(t, r, "poly_node_allocated", "resource", ResPowerW); got != 180 {
		t.Fatalf("node allocated watts = %v, want 180", got)
	}
	if got := gaugeVal(t, r, "poly_board_utilization_ratio", "board", "gpu0", "resource", ResPowerW); got != 0.75 {
		t.Fatalf("gpu0 power utilization = %v, want 0.75", got)
	}
	if got := gaugeVal(t, r, "poly_node_utilization_ratio", "resource", ResPowerW); got != 180.0/300.0 {
		t.Fatalf("node power utilization = %v, want 0.6", got)
	}

	r.BitstreamResident("fpga0", "fft.v2", 14)
	if got := gaugeVal(t, r, "poly_board_allocated", "board", "fpga0", "resource", ResFPGARegions); got != 1 {
		t.Fatalf("fpga0 regions with resident bitstream = %v, want 1", got)
	}
	r.BitstreamResident("fpga0", "", 15)
	if got := gaugeVal(t, r, "poly_node_allocated", "resource", ResFPGARegions); got != 0 {
		t.Fatalf("node regions after blank = %v, want 0", got)
	}
}

// TestResourceAccountingEdges pins the defensive paths: unknown resource
// names are ignored rather than corrupting a known slot, a zero
// allocatable reports ratio 0 instead of dividing by zero, and repeated
// identical occupancy updates don't drift the node aggregate.
func TestResourceAccountingEdges(t *testing.T) {
	r := New()
	r.RegisterNodeResource("petaflops", 1) // silently ignored
	r.RegisterBoardResource("gpu0", "petaflops", 1)
	r.RegisterNodeResource(ResComputeSlots, 0)
	r.RegisterBoardResource("gpu0", ResComputeSlots, 1)

	r.BusyChanged("gpu0", 1, 1)
	r.BusyChanged("gpu0", 2, 2) // still one slot; aggregate must not double-count
	r.BusyChanged("gpu0", 1, 3)
	if got := gaugeVal(t, r, "poly_node_allocated", "resource", ResComputeSlots); got != 1 {
		t.Fatalf("node allocated after repeated busy updates = %v, want 1", got)
	}
	if got := gaugeVal(t, r, "poly_node_utilization_ratio", "resource", ResComputeSlots); got != 0 {
		t.Fatalf("ratio with zero allocatable = %v, want 0", got)
	}
	// The bogus resource must not have minted any series.
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "petaflops") {
		t.Fatal("unknown resource name leaked into the exposition")
	}
}
