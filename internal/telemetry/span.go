package telemetry

// KernelSpan is one kernel execution inside a request span: where it was
// placed and how its time split between queueing and service.
type KernelSpan struct {
	Kernel string
	Device string
	ImplID string
	// QueuedMS is when the runtime submitted the task to its device.
	QueuedMS float64
	// StartMS is when the device began executing it (its launch/initiation
	// instant); EndMS is its completion.
	StartMS float64
	EndMS   float64
}

// QueueMS is the time the task waited behind the device queue (including
// batching windows and foreground reconfiguration).
func (k *KernelSpan) QueueMS() float64 { return k.StartMS - k.QueuedMS }

// ServiceMS is the pure execution span.
func (k *KernelSpan) ServiceMS() float64 { return k.EndMS - k.StartMS }

// Span follows one request from admission through its kernel DAG to
// completion. The runtime owns and fills it; FinishSpan hands it to the
// recorder's bounded ring.
type Span struct {
	ID uint64
	// ArrivedMS is the admission instant; BoundMS the QoS bound the
	// request was planned against.
	ArrivedMS float64
	BoundMS   float64
	// PlanMakespanMS is the planner's predicted end-to-end latency;
	// CacheHit records whether the plan came from the plan cache, and
	// EnergySwaps how many Step-2 implementation swaps it carries.
	PlanMakespanMS float64
	CacheHit       bool
	EnergySwaps    int
	// LatencyMS is the observed end-to-end latency; Violation whether it
	// exceeded the bound; Measured whether the request is post-warmup
	// (part of the QoS population); Dropped whether the request was
	// abandoned mid-flight (e.g. a plan referenced an unknown device).
	LatencyMS float64
	Violation bool
	Measured  bool
	Dropped   bool
	// Retries counts kernel re-placements the request survived after
	// device task failures; a dropped request with Retries > 0 exhausted
	// its retry budget.
	Retries int
	// Batched marks a request that was planned and submitted as part of
	// an admission-batch group; BatchSize is that group's size and HoldMS
	// how long this request was staged before the group flushed. A
	// disbanded group member is admitted individually (Batched false)
	// but still carries its HoldMS.
	Batched   bool
	BatchSize int
	HoldMS    float64
	// Kernels are the per-kernel placements, in submission order. Entries
	// are pointers so a record handed out by AddKernel stays valid while
	// later submissions grow the slice.
	Kernels []*KernelSpan
}

// AddKernel appends a kernel record and returns it for the runtime to
// fill in start/end as the device reports them.
func (s *Span) AddKernel(kernel, device, implID string, queuedMS float64) *KernelSpan {
	k := &KernelSpan{Kernel: kernel, Device: device, ImplID: implID, QueuedMS: queuedMS}
	s.Kernels = append(s.Kernels, k)
	return k
}

// AdmitWaitMS is the time from admission until the first kernel started
// executing — how long the request sat before any device picked it up.
func (s *Span) AdmitWaitMS() float64 {
	first := -1.0
	for _, k := range s.Kernels {
		if first < 0 || k.StartMS < first {
			first = k.StartMS
		}
	}
	if first < 0 {
		return 0
	}
	return first - s.ArrivedMS
}

// SpanRing is a bounded ring of finished spans: the newest cap spans are
// retained, older ones overwritten. It gives an operator the tail of the
// request history without unbounded memory.
type SpanRing struct {
	buf   []*Span
	next  int
	total int
}

// NewSpanRing returns a ring holding up to cap spans (minimum 1).
func NewSpanRing(cap int) *SpanRing {
	if cap < 1 {
		cap = 1
	}
	return &SpanRing{buf: make([]*Span, 0, cap)}
}

// Push records a finished span, evicting the oldest when full.
func (r *SpanRing) Push(s *Span) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.next] = s
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many spans were ever pushed.
func (r *SpanRing) Total() int { return r.total }

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []*Span {
	out := make([]*Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
