package telemetry

import "math"

// KernelSpan is one kernel execution inside a request span: where it was
// placed and how its time split between queueing and service.
type KernelSpan struct {
	Kernel string
	Device string
	ImplID string
	// QueuedMS is when the runtime submitted the task to its device.
	QueuedMS float64
	// StartMS is when the device began executing it (its launch/initiation
	// instant); EndMS is its completion. A record whose EndMS never passed
	// StartMS is a failed attempt (the board lost the task) and is excluded
	// from histograms and stage attribution.
	StartMS float64
	EndMS   float64
	// Retried marks a record created by a kernel re-placement after a
	// device task failure; RetryFromMS is the failure instant, so
	// [RetryFromMS, StartMS] is the backoff-and-requeue window the retry
	// stage attributes.
	Retried     bool
	RetryFromMS float64
}

// QueueMS is the time the task waited behind the device queue (including
// batching windows and foreground reconfiguration).
func (k *KernelSpan) QueueMS() float64 { return k.StartMS - k.QueuedMS }

// ServiceMS is the pure execution span.
func (k *KernelSpan) ServiceMS() float64 { return k.EndMS - k.StartMS }

// Interval is a half-open [StartMS, EndMS) slice of simulated time.
type Interval struct{ StartMS, EndMS float64 }

// Stage indices of the fixed latency breakdown. Order is the canonical
// summation order of StageBreakdown.SumMS.
const (
	StageHold = iota
	StagePlan
	StageExec
	StageTransfer
	StageRetry
	StageQueue
	NumStages
)

// StageNames maps stage indices to their metric label values.
var StageNames = [NumStages]string{"hold", "plan", "exec", "transfer", "retry", "queue"}

// StageBreakdown is a request's end-to-end latency split into fixed
// stages. The invariant — enforced by ComputeStages and tested — is that
// SumMS() equals Span.LatencyMS bit-exactly.
//
//   - HoldMS: admission-batch staging (copied from Span.HoldMS).
//   - PlanMS: planning time. The simulator plans instantaneously, so this
//     is 0 today; it is part of the fixed shape so the exposition and the
//     fleet router never change schema when planning gains a cost model.
//   - ExecMS: union of the kernels' device execution intervals.
//   - TransferMS: union of inter-device PCIe transfer intervals not
//     already covered by execution (a transfer overlapping a concurrent
//     kernel is attributed to exec).
//   - RetryMS: union of failure→restart windows not covered by exec or
//     transfer.
//   - QueueMS: the remainder — device queueing and DAG dependency stalls.
//     Computed as LatencyMS minus the other stages and then nudged by
//     ULPs so the canonical sum reproduces LatencyMS exactly.
type StageBreakdown struct {
	HoldMS     float64
	PlanMS     float64
	ExecMS     float64
	TransferMS float64
	RetryMS    float64
	QueueMS    float64
}

// SumMS adds the stages in the canonical order the QueueMS remainder was
// solved against: ((((hold+plan)+exec)+transfer)+retry)+queue.
func (b *StageBreakdown) SumMS() float64 {
	return ((((b.HoldMS + b.PlanMS) + b.ExecMS) + b.TransferMS) + b.RetryMS) + b.QueueMS
}

// Get returns the stage value at a StageNames index.
func (b *StageBreakdown) Get(stage int) float64 {
	switch stage {
	case StageHold:
		return b.HoldMS
	case StagePlan:
		return b.PlanMS
	case StageExec:
		return b.ExecMS
	case StageTransfer:
		return b.TransferMS
	case StageRetry:
		return b.RetryMS
	default:
		return b.QueueMS
	}
}

// Span follows one request from admission through its kernel DAG to
// completion. The runtime owns and fills it; FinishSpan hands it to the
// recorder's bounded ring. Spans evicted from the ring are recycled, so
// a Spans() snapshot is only valid until enough newer requests finish to
// wrap the ring.
type Span struct {
	ID uint64
	// ArrivedMS is the admission instant; BoundMS the QoS bound the
	// request was planned against.
	ArrivedMS float64
	BoundMS   float64
	// PlanMakespanMS is the planner's predicted end-to-end latency;
	// CacheHit records whether the plan came from the plan cache, and
	// EnergySwaps how many Step-2 implementation swaps it carries.
	PlanMakespanMS float64
	CacheHit       bool
	EnergySwaps    int
	// LatencyMS is the observed end-to-end latency; Violation whether it
	// exceeded the bound; Measured whether the request is post-warmup
	// (part of the QoS population); Dropped whether the request was
	// abandoned mid-flight (e.g. a plan referenced an unknown device).
	LatencyMS float64
	Violation bool
	Measured  bool
	Dropped   bool
	// Retries counts kernel re-placements the request survived after
	// device task failures; a dropped request with Retries > 0 exhausted
	// its retry budget.
	Retries int
	// Batched marks a request that was planned and submitted as part of
	// an admission-batch group; BatchSize is that group's size and HoldMS
	// how long this request was staged before the group flushed. A
	// disbanded group member is admitted individually (Batched false)
	// but still carries its HoldMS.
	Batched   bool
	BatchSize int
	HoldMS    float64
	// Stages is the fixed latency breakdown, filled by ComputeStages when
	// the span finishes (zero for dropped spans).
	Stages StageBreakdown
	// Transfers are the inter-device PCIe transfer windows the request's
	// DAG edges crossed, in completion order.
	Transfers []Interval
	// Kernels are the per-kernel placements, in submission order. Entries
	// are pointers so a record handed out by AddKernel stays valid while
	// later submissions grow the slice.
	Kernels []*KernelSpan

	sweep []stagePoint // scratch for ComputeStages, reused across recycles
}

// AddKernel appends a kernel record and returns it for the runtime to
// fill in start/end as the device reports them. Recycled spans reuse the
// KernelSpan allocations left in the backing array by earlier requests.
func (s *Span) AddKernel(kernel, device, implID string, queuedMS float64) *KernelSpan {
	n := len(s.Kernels)
	if n < cap(s.Kernels) {
		s.Kernels = s.Kernels[:n+1]
		if k := s.Kernels[n]; k != nil {
			*k = KernelSpan{Kernel: kernel, Device: device, ImplID: implID, QueuedMS: queuedMS}
			return k
		}
	} else {
		s.Kernels = append(s.Kernels, nil)
	}
	k := &KernelSpan{Kernel: kernel, Device: device, ImplID: implID, QueuedMS: queuedMS}
	s.Kernels[n] = k
	return k
}

// AddTransfer records one inter-device transfer window.
func (s *Span) AddTransfer(startMS, endMS float64) {
	s.Transfers = append(s.Transfers, Interval{StartMS: startMS, EndMS: endMS})
}

// AdmitWaitMS is the time from admission until the first kernel started
// executing — how long the request sat before any device picked it up.
func (s *Span) AdmitWaitMS() float64 {
	first := -1.0
	for _, k := range s.Kernels {
		if first < 0 || k.StartMS < first {
			first = k.StartMS
		}
	}
	if first < 0 {
		return 0
	}
	return first - s.ArrivedMS
}

// reset re-initializes a recycled span, keeping the kernel, transfer,
// and sweep backing arrays.
func (s *Span) reset(id uint64, arrivedMS, boundMS float64) {
	*s = Span{
		ID: id, ArrivedMS: arrivedMS, BoundMS: boundMS,
		Kernels:   s.Kernels[:0],
		Transfers: s.Transfers[:0],
		sweep:     s.sweep[:0],
	}
}

// stagePoint is one interval boundary for the ComputeStages sweep.
type stagePoint struct {
	t     float64
	class int8 // 0 exec, 1 transfer, 2 retry — lower wins overlaps
	delta int8 // +1 open, -1 close
}

// ComputeStages fills s.Stages from the span's kernel, transfer, and
// retry records. Overlapping intervals are attributed once, to the
// highest-priority active stage (exec > transfer > retry), via a
// boundary sweep; QueueMS is the remainder, ULP-corrected so that
// Stages.SumMS() == s.LatencyMS bit-exactly.
func (s *Span) ComputeStages() {
	pts := s.sweep[:0]
	for _, k := range s.Kernels {
		if k.EndMS > k.StartMS {
			pts = append(pts,
				stagePoint{t: k.StartMS, class: 0, delta: 1},
				stagePoint{t: k.EndMS, class: 0, delta: -1})
		}
		if k.Retried && k.StartMS > k.RetryFromMS && k.EndMS > k.StartMS {
			pts = append(pts,
				stagePoint{t: k.RetryFromMS, class: 2, delta: 1},
				stagePoint{t: k.StartMS, class: 2, delta: -1})
		}
	}
	for _, tr := range s.Transfers {
		if tr.EndMS > tr.StartMS {
			pts = append(pts,
				stagePoint{t: tr.StartMS, class: 1, delta: 1},
				stagePoint{t: tr.EndMS, class: 1, delta: -1})
		}
	}
	s.sweep = pts
	// Insertion sort by time: point counts are small (2 per interval) and
	// this keeps the hot path allocation-free.
	for i := 1; i < len(pts); i++ {
		p := pts[i]
		j := i - 1
		for j >= 0 && pts[j].t > p.t {
			pts[j+1] = pts[j]
			j--
		}
		pts[j+1] = p
	}
	var exec, transfer, retry float64
	var active [3]int
	prev := 0.0
	for i := 0; i < len(pts); {
		t := pts[i].t
		if i > 0 {
			seg := t - prev
			switch {
			case active[0] > 0:
				exec += seg
			case active[1] > 0:
				transfer += seg
			case active[2] > 0:
				retry += seg
			}
		}
		for i < len(pts) && pts[i].t == t {
			active[pts[i].class] += int(pts[i].delta)
			i++
		}
		prev = t
	}
	b := StageBreakdown{HoldMS: s.HoldMS, PlanMS: 0,
		ExecMS: exec, TransferMS: transfer, RetryMS: retry}
	// Solve QueueMS as the remainder, then correct by result error until
	// the canonical sum reproduces LatencyMS bit-exactly. The correction
	// usually converges in a step or two: partial and target are within a
	// factor of two once q is added, so the error subtraction is exact
	// (Sterbenz) and each iteration cancels the remaining rounding. The
	// one unreachable case is a round-to-even tie: when every candidate
	// sum lands exactly half a ULP from LatencyMS, stepping q oscillates
	// around the target forever. Shifting the largest measured stage by
	// one ULP (invisible at millisecond scale) moves the sum lattice off
	// the tie and the remainder becomes solvable.
	q, ok := solveQueueRemainder(&b, s.LatencyMS)
	for tries := 0; !ok && tries < 4; tries++ {
		largest := &b.HoldMS
		for _, v := range []*float64{&b.ExecMS, &b.TransferMS, &b.RetryMS} {
			if *v > *largest {
				largest = v
			}
		}
		if *largest <= 0 {
			break // partial is zero: q = LatencyMS is exact, cannot get here
		}
		*largest = math.Nextafter(*largest, math.Inf(-1))
		q, ok = solveQueueRemainder(&b, s.LatencyMS)
	}
	b.QueueMS = q
	s.Stages = b
}

// solveQueueRemainder finds q so the canonical stage sum reproduces
// latency bit-exactly, reporting false if the iteration cannot land (a
// rounding tie — see ComputeStages).
func solveQueueRemainder(b *StageBreakdown, latency float64) (float64, bool) {
	partial := (((b.HoldMS + b.PlanMS) + b.ExecMS) + b.TransferMS) + b.RetryMS
	q := latency - partial
	for i := 0; i < 16; i++ {
		got := partial + q
		if got == latency {
			return q, true
		}
		nq := q + (latency - got)
		if nq == q {
			// The residual is below q's ULP (the subtraction was exact but
			// too small to land, or rounded to zero): step one ULP instead.
			if got > latency {
				nq = math.Nextafter(q, math.Inf(-1))
			} else {
				nq = math.Nextafter(q, math.Inf(1))
			}
		}
		q = nq
	}
	return q, false
}

// SpanRing is a bounded ring of finished spans: the newest cap spans are
// retained, older ones overwritten. It gives an operator the tail of the
// request history without unbounded memory.
type SpanRing struct {
	buf   []*Span
	next  int
	total int
}

// NewSpanRing returns a ring holding up to cap spans (minimum 1).
func NewSpanRing(cap int) *SpanRing {
	if cap < 1 {
		cap = 1
	}
	return &SpanRing{buf: make([]*Span, 0, cap)}
}

// Push records a finished span, evicting the oldest when full.
func (r *SpanRing) Push(s *Span) { r.PushEvict(s) }

// PushEvict records a finished span and returns the span it displaced
// (nil while the ring is filling) so the owner can recycle it.
func (r *SpanRing) PushEvict(s *Span) *Span {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		return nil
	}
	old := r.buf[r.next]
	r.buf[r.next] = s
	r.next = (r.next + 1) % cap(r.buf)
	return old
}

// Total returns how many spans were ever pushed.
func (r *SpanRing) Total() int { return r.total }

// Snapshot returns the retained spans, oldest first.
func (r *SpanRing) Snapshot() []*Span {
	out := make([]*Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
