package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"poly/internal/sim"
)

// TestFlightRingOverwritesOldest pins the ring's retention policy — the
// opposite of traceBuf's: full means the *oldest* entry goes, because a
// post-incident dump wants the most recent past.
func TestFlightRingOverwritesOldest(t *testing.T) {
	fr := newFlightRing(4)
	for i := 1; i <= 10; i++ {
		fr.add(traceEv{ts: float64(i)})
	}
	snap := fr.snapshot(0)
	if len(snap) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap))
	}
	for i, want := range []float64{7, 8, 9, 10} {
		if snap[i].ts != want {
			t.Fatalf("snapshot[%d].ts = %v, want %v (oldest-first order)", i, snap[i].ts, want)
		}
	}
	if got := fr.snapshot(9); len(got) != 2 || got[0].ts != 9 || got[1].ts != 10 {
		t.Fatalf("snapshot(since=9) = %v events, want ts 9,10", len(got))
	}
}

// decodeTrace parses a Chrome trace JSON dump back into events.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []TraceEvent {
	t.Helper()
	var out struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("flight dump is not valid trace JSON: %v", err)
	}
	return out.TraceEvents
}

// finishViolation pushes one measured span through the recorder with the
// given verdict at time at (ms).
func finishViolation(r *Recorder, at float64, violation bool) {
	sp := r.StartSpan(sim.Time(at-1), 10)
	sp.Measured = true
	sp.Violation = violation
	sp.LatencyMS = 1
	r.FinishSpan(sp, sim.Time(at))
}

// ms converts a test's millisecond literal to simulated time.
func ms(v float64) sim.Time { return sim.Time(v) }

// TestFlightFreezeAtFirstTrigger drives the whole incident protocol: the
// first *measured* violation freezes a snapshot of the preceding
// FlightWindowMS; later triggers only count; warmup violations never
// trip; and the dump carries admit events that the main trace omits.
func TestFlightFreezeAtFirstTrigger(t *testing.T) {
	r := NewWithOptions(Options{FlightWindowMS: 100})
	r.BeginSession("incident")
	r.RegisterBoard("gpu0", "GPU")

	// A warmup (unmeasured) violation is trace-visible but must not trip.
	sp := r.StartSpan(ms(5), 10)
	sp.Violation = true
	sp.LatencyMS = 50
	r.FinishSpan(sp, ms(6))
	if _, _, ok := r.FlightTriggered(); ok {
		t.Fatal("warmup violation tripped the flight recorder")
	}

	// Old activity that must age out of the frozen window.
	r.Launched("gpu0", "oldkernel", "impl", 1, ms(10), ms(20))
	// Activity inside the window.
	r.Launched("gpu0", "prelude", "impl", 1, ms(460), ms(470))
	finishViolation(r, 480, false)

	finishViolation(r, 500, true) // first measured violation: freeze [400, 500]
	cause, atMS, ok := r.FlightTriggered()
	if !ok || cause != "violation" || atMS != 500 {
		t.Fatalf("FlightTriggered = (%q, %v, %v), want (violation, 500, true)", cause, atMS, ok)
	}

	// Later triggers — another violation, a board going down — count but
	// must not move the frozen snapshot.
	finishViolation(r, 600, true)
	r.BoardHealthChanged("gpu0", "suspect", "down", ms(700))
	if cause, atMS, _ := r.FlightTriggered(); cause != "violation" || atMS != 500 {
		t.Fatalf("snapshot moved to (%q, %v); first trigger must win", cause, atMS)
	}
	trips := r.Registry().Counter("poly_flight_triggers_total", "", "cause", "violation").Value()
	if trips != 2 {
		t.Fatalf("violation trips = %v, want 2", trips)
	}
	if down := r.Registry().Counter("poly_flight_triggers_total", "", "cause", "board_down").Value(); down != 1 {
		t.Fatalf("board_down trips = %v, want 1", down)
	}

	var buf bytes.Buffer
	if err := r.WriteFlight(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)
	var sawPrelude, sawOld, sawAdmit, sawTrigger, sawLate bool
	for _, e := range evs {
		switch {
		case e.Name == "oldkernel":
			sawOld = true
		case e.Name == "prelude":
			sawPrelude = true
		case e.Name == "admit":
			sawAdmit = true
		case e.Name == "flight_trigger":
			sawTrigger = true
		case e.Phase != "M" && e.TS > 500*1000:
			sawLate = true
		}
	}
	if !sawPrelude || !sawAdmit || !sawTrigger {
		t.Fatalf("frozen window missing events: prelude=%v admit=%v trigger=%v", sawPrelude, sawAdmit, sawTrigger)
	}
	if sawOld {
		t.Fatal("event 480 ms before the trigger survived a 100 ms window")
	}
	if sawLate {
		t.Fatal("post-trigger event leaked into the frozen snapshot")
	}

	// Admissions are flight-only: the main trace must not carry them.
	buf.Reset()
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	for _, e := range decodeTrace(t, &buf) {
		if e.Name == "admit" {
			t.Fatal("admit event leaked into the main trace buffer")
		}
	}
}

// TestFlightLiveTailAndMetricsOnly covers the two non-incident dumps: a
// run with no trigger writes the ring's live tail, and a MetricsOnly
// recorder (no ring at all) writes a valid empty trace.
func TestFlightLiveTailAndMetricsOnly(t *testing.T) {
	r := NewWithOptions(Options{FlightRingCap: 8})
	r.BeginSession("quiet")
	r.RegisterBoard("gpu0", "GPU")
	for i := 0; i < 20; i++ {
		r.Launched("gpu0", "k", "impl", 1, ms(float64(i)), ms(float64(i)+0.5))
	}
	var buf bytes.Buffer
	if err := r.WriteFlight(&buf); err != nil {
		t.Fatal(err)
	}
	kernels := 0
	for _, e := range decodeTrace(t, &buf) {
		if e.Name == "k" {
			kernels++
		}
	}
	if kernels != 8 {
		t.Fatalf("live tail kept %d kernel events, want the ring cap 8", kernels)
	}

	mo := NewWithOptions(Options{MetricsOnly: true})
	mo.BeginSession("pooled")
	finishViolation(mo, 100, true)
	if _, _, ok := mo.FlightTriggered(); ok {
		t.Fatal("MetricsOnly recorder claims a flight trigger")
	}
	buf.Reset()
	if err := mo.WriteFlight(&buf); err != nil {
		t.Fatal(err)
	}
	if evs := decodeTrace(t, &buf); len(evs) != 0 {
		t.Fatalf("MetricsOnly flight dump has %d events, want 0", len(evs))
	}
}
