package telemetry

// sloTracker measures the QoS-violation burn rate over two sliding
// windows of simulated time — the multiwindow alerting shape: the long
// window establishes that real error budget is gone, the short window
// that it is still burning, so a trip is both significant and current.
// Burn rate is the windowed violation ratio over the SLO target (a
// target of 0.01 means a 2% violation ratio burns at 2.0).
//
// The clock is the deterministic simulated timeline, so trips land on
// the same request at any worker-pool size. One append-only deque holds
// (timestamp, bad) points; two head indices trail it, one per window,
// and the buffer compacts in place when the long head passes half the
// slice — O(1) amortized per observation, no per-window copies.
type sloTracker struct {
	target    float64
	shortMS   float64
	longMS    float64
	threshold float64

	points    []sloPoint
	shortHead int // first point inside the short window
	longHead  int // first point inside the long window

	shortBad, shortTot int
	longBad, longTot   int

	alerting bool
}

type sloPoint struct {
	ts  float64
	bad bool
}

func newSLOTracker(target, shortMS, longMS, threshold float64) *sloTracker {
	return &sloTracker{target: target, shortMS: shortMS, longMS: longMS, threshold: threshold}
}

// observe records one measured request at ts and reports whether the
// burn alert tripped on this observation (false while already alerting;
// the alert clears with 2:1 hysteresis on the short window). The
// returned rates are the post-observation short and long burn rates.
func (t *sloTracker) observe(ts float64, bad bool) (trip bool, shortBurn, longBurn float64) {
	t.points = append(t.points, sloPoint{ts: ts, bad: bad})
	t.shortTot++
	t.longTot++
	if bad {
		t.shortBad++
		t.longBad++
	}
	t.advance(ts)
	shortBurn = t.burn(t.shortBad, t.shortTot)
	longBurn = t.burn(t.longBad, t.longTot)
	switch {
	case !t.alerting && shortBurn >= t.threshold && longBurn >= t.threshold:
		t.alerting = true
		trip = true
	case t.alerting && shortBurn < t.threshold/2:
		t.alerting = false
	}
	return trip, shortBurn, longBurn
}

// advance expires points older than each window and compacts the deque
// once the long head passes half the buffer.
func (t *sloTracker) advance(now float64) {
	for t.shortHead < len(t.points) && t.points[t.shortHead].ts < now-t.shortMS {
		if t.points[t.shortHead].bad {
			t.shortBad--
		}
		t.shortTot--
		t.shortHead++
	}
	for t.longHead < len(t.points) && t.points[t.longHead].ts < now-t.longMS {
		if t.points[t.longHead].bad {
			t.longBad--
		}
		t.longTot--
		t.longHead++
	}
	if t.longHead > len(t.points)/2 && t.longHead > 0 {
		n := copy(t.points, t.points[t.longHead:])
		t.points = t.points[:n]
		t.shortHead -= t.longHead
		t.longHead = 0
	}
}

// reset drops all windowed state, keeping the configuration and the
// points buffer's backing array. Called when a new session restarts the
// simulated clock at zero — stale points from the previous timeline
// would never expire against the younger timestamps.
func (t *sloTracker) reset() {
	t.points = t.points[:0]
	t.shortHead, t.longHead = 0, 0
	t.shortBad, t.shortTot = 0, 0
	t.longBad, t.longTot = 0, 0
	t.alerting = false
}

func (t *sloTracker) burn(bad, tot int) float64 {
	if tot == 0 || t.target <= 0 {
		return 0
	}
	return float64(bad) / float64(tot) / t.target
}

// rates returns the current burn rates and raw violation ratios for
// both windows (short, long), for scrape-time gauge sync.
func (t *sloTracker) rates() (shortBurn, longBurn, shortVio, longVio float64) {
	shortBurn = t.burn(t.shortBad, t.shortTot)
	longBurn = t.burn(t.longBad, t.longTot)
	if t.shortTot > 0 {
		shortVio = float64(t.shortBad) / float64(t.shortTot)
	}
	if t.longTot > 0 {
		longVio = float64(t.longBad) / float64(t.longTot)
	}
	return
}
