package telemetry

import "poly/internal/sim"

// Resource names, in the allocated/allocatable/utilization_ratio gauge
// shape a fleet router bin-packs against (the kube-binpacking-exporter
// convention): one gauge triple per resource per node, plus per-board
// variants.
const (
	// ResComputeSlots counts busy execution slots: a GPU or FPGA board
	// contributes one allocatable slot, allocated while it has work in
	// flight.
	ResComputeSlots = "compute_slots"
	// ResPowerW is instantaneous power draw against the board's peak (or
	// the node's provisioned cap).
	ResPowerW = "power_watts"
	// ResFPGARegions counts FPGA reconfigurable regions occupied by a
	// resident bitstream.
	ResFPGARegions = "fpga_regions"
)

const numResources = 3

var resourceNames = [numResources]string{ResComputeSlots, ResPowerW, ResFPGARegions}

// resourceIndex maps a resource name to its fixed slot; unknown names
// return -1 (the event is ignored rather than corrupting a known slot).
func resourceIndex(resource string) int {
	switch resource {
	case ResComputeSlots:
		return 0
	case ResPowerW:
		return 1
	case ResFPGARegions:
		return 2
	default:
		return -1
	}
}

// resVals is the raw occupancy of one resource on one owner. The hot
// path updates these floats; gauges are synced at scrape time.
type resVals struct {
	allocated   float64
	allocatable float64
}

// resGauges are the exported triple for one resource on one owner.
type resGauges struct {
	allocated   *Metric
	allocatable *Metric
	ratio       *Metric
}

// RegisterNodeResource implements Sink.
func (r *Recorder) RegisterNodeResource(resource string, allocatable float64) {
	i := resourceIndex(resource)
	if i < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodeRes[i] = resVals{allocatable: allocatable}
	if !r.nodeResOn[i] {
		r.nodeResOn[i] = true
		r.nodeGauges[i] = resGauges{
			allocated: r.reg.getLocked("poly_node_allocated",
				"Node resource currently in use.", kindGauge, Labels{"resource", resource}),
			allocatable: r.reg.getLocked("poly_node_allocatable",
				"Node resource capacity.", kindGauge, Labels{"resource", resource}),
			ratio: r.reg.getLocked("poly_node_utilization_ratio",
				"Node allocated over allocatable per resource.", kindGauge, Labels{"resource", resource}),
		}
	}
}

// RegisterBoardResource implements Sink.
func (r *Recorder) RegisterBoardResource(board, resource string, allocatable float64) {
	i := resourceIndex(resource)
	if i < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bs := r.boardLocked(board)
	bs.res[i] = resVals{allocatable: allocatable}
	if !bs.resOn[i] {
		bs.resOn[i] = true
		bs.gauges[i] = resGauges{
			allocated: r.reg.getLocked("poly_board_allocated",
				"Board resource currently in use.", kindGauge,
				Labels{"board", board, "resource", resource}),
			allocatable: r.reg.getLocked("poly_board_allocatable",
				"Board resource capacity.", kindGauge,
				Labels{"board", board, "resource", resource}),
			ratio: r.reg.getLocked("poly_board_utilization_ratio",
				"Board allocated over allocatable per resource.", kindGauge,
				Labels{"board", board, "resource", resource}),
		}
	}
}

// setBoardResLocked moves one board's raw occupancy and keeps the node
// aggregate incremental, so scrape-time sync never walks event history.
func (r *Recorder) setBoardResLocked(bs *boardState, i int, allocated float64) {
	old := bs.res[i].allocated
	if allocated == old {
		return
	}
	bs.res[i].allocated = allocated
	r.nodeRes[i].allocated += allocated - old
}

// BusyChanged implements Sink (the device.ResourceObserver subset). A
// board's compute slot is allocated while any task is in flight — FPGA
// pipelining above one in-flight task does not over-allocate the slot.
func (r *Recorder) BusyChanged(device string, busy int, at sim.Time) {
	occ := 0.0
	if busy > 0 {
		occ = 1
	}
	r.mu.Lock()
	r.setBoardResLocked(r.boardLocked(device), 0, occ)
	r.mu.Unlock()
}

// PowerChanged implements Sink (the device.ResourceObserver subset).
func (r *Recorder) PowerChanged(device string, watts float64, at sim.Time) {
	r.mu.Lock()
	r.setBoardResLocked(r.boardLocked(device), 1, watts)
	r.mu.Unlock()
}

// BitstreamResident implements Sink (the device.ResourceObserver subset).
func (r *Recorder) BitstreamResident(device, implID string, at sim.Time) {
	occ := 0.0
	if implID != "" {
		occ = 1
	}
	r.mu.Lock()
	r.setBoardResLocked(r.boardLocked(device), 2, occ)
	r.mu.Unlock()
}

func syncResGauges(g resGauges, v resVals) {
	g.allocated.setLocked(v.allocated)
	g.allocatable.setLocked(v.allocatable)
	if v.allocatable > 0 {
		g.ratio.setLocked(v.allocated / v.allocatable)
	} else {
		g.ratio.setLocked(0)
	}
}

// NodeResource returns the recorder's live node-level occupancy for one
// resource: allocated, allocatable, and whether the resource was ever
// registered. This is the read side a fleet rollup aggregates across
// per-shard recorders without going through text exposition.
func (r *Recorder) NodeResource(resource string) (allocated, allocatable float64, ok bool) {
	i := resourceIndex(resource)
	if i < 0 {
		return 0, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodeResOn[i] {
		return 0, 0, false
	}
	return r.nodeRes[i].allocated, r.nodeRes[i].allocatable, true
}

// syncResourcesLocked pushes the raw occupancy floats into the exported
// gauges; called once per scrape.
func (r *Recorder) syncResourcesLocked() {
	for i := 0; i < numResources; i++ {
		if r.nodeResOn[i] {
			syncResGauges(r.nodeGauges[i], r.nodeRes[i])
		}
	}
	for _, bs := range r.boardList {
		for i := 0; i < numResources; i++ {
			if bs.resOn[i] {
				syncResGauges(bs.gauges[i], bs.res[i])
			}
		}
	}
}
