package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestTraceStructure drives the recorder through one synthetic session —
// boards, kernel launches, a reconfiguration, a DVFS change, a governor
// transition, power samples, and a violation — then decodes the Chrome
// trace JSON and checks the shape Perfetto needs: named per-board
// threads and at least four distinct event categories.
func TestTraceStructure(t *testing.T) {
	r := New()
	r.BeginSession("ASR (bound 50 ms)")
	r.RegisterBoard("gpu0", "GPU")
	r.RegisterBoard("fpga0", "FPGA")

	r.PowerSample(0, 120)
	r.Launched("gpu0", "mfcc", "mfcc/gpu/b8", 8, 10, 16)
	r.ReconfigStart("fpga0", "hmm/fpga/v1", 12, 80, false)
	r.Launched("fpga0", "hmm", "hmm/fpga/v1", 1, 92, 110)
	r.DVFSChanged("gpu0", 2, 500)
	r.GovernorTransition(500, "nominal", "lowpower", "idle")
	sp := r.StartSpan(600, 50)
	sp.LatencyMS, sp.Measured, sp.Violation = 90, true, true
	r.FinishSpan(sp, 690)

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}

	cats := map[string]bool{}
	threadNames := map[string]bool{}
	var sawKernelSlice, sawCounter bool
	for _, e := range doc.TraceEvents {
		if e.Cat != "" {
			cats[e.Cat] = true
		}
		if e.Name == "thread_name" && e.Phase == "M" {
			threadNames[e.Args["name"].(string)] = true
		}
		if e.Cat == "kernel" && e.Phase == "X" {
			sawKernelSlice = true
			if e.TS != 10_000 || e.Dur != 6_000 {
				// 10 ms → 10_000 µs: trace timestamps are µs of sim time.
				if e.TS != 92_000 {
					t.Fatalf("kernel slice at ts=%v dur=%v, want µs-scaled sim times", e.TS, e.Dur)
				}
			}
		}
		if e.Phase == "C" {
			sawCounter = true
		}
	}
	for _, want := range []string{"governor", "requests", "gpu0 (GPU)", "fpga0 (FPGA)"} {
		if !threadNames[want] {
			t.Fatalf("missing thread_name %q (have %v)", want, threadNames)
		}
	}
	for _, want := range []string{"kernel", "reconfig", "governor", "violation", "dvfs", "power"} {
		if !cats[want] {
			t.Fatalf("missing event category %q (have %v)", want, cats)
		}
	}
	if !sawKernelSlice || !sawCounter {
		t.Fatalf("missing slice (%v) or counter (%v) events", sawKernelSlice, sawCounter)
	}
}

// TestTraceBufferCap checks the buffer drops past its cap and counts the
// overflow instead of growing without bound.
func TestTraceBufferCap(t *testing.T) {
	r := NewWithOptions(Options{TraceEventCap: 3})
	r.BeginSession("s") // 3 metadata events fill the buffer
	r.PowerSample(0, 100)
	r.PowerSample(1, 101)
	if got := r.TraceEventCount(); got != 3 {
		t.Fatalf("buffered %d events, want 3", got)
	}
	if got := r.TraceDropped(); got != 2 {
		t.Fatalf("dropped %d events, want 2", got)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if got := r.Registry().Counter("poly_trace_events_dropped_total", "").Value(); got != 2 {
		t.Fatalf("dropped counter = %v, want 2", got)
	}
}

// TestMetricsHandlerContentType checks the /metrics endpoint speaks the
// Prometheus text content type.
func TestMetricsHandlerContentType(t *testing.T) {
	r := New()
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte("# TYPE poly_requests_total counter")) {
		t.Fatal("metrics body missing poly_requests_total family")
	}
}
