package telemetry

import (
	"io"

	"poly/internal/sim"
)

// flightRing is the flight recorder's event store: a bounded ring of
// compact trace events that overwrites its oldest entry when full — the
// opposite policy from traceBuf, which keeps the oldest and drops the
// newest. The trace buffer answers "what happened from the start?"; the
// flight ring answers "what just happened?", which is what a
// post-incident dump needs. Steady-state recording is allocation-free
// once the ring has grown to its cap.
type flightRing struct {
	buf  []traceEv
	cap  int
	next int // overwrite cursor, valid once len(buf) == cap
}

func newFlightRing(cap int) *flightRing {
	if cap < 1 {
		cap = 1
	}
	return &flightRing{cap: cap}
}

func (fr *flightRing) add(e traceEv) {
	if len(fr.buf) < fr.cap {
		fr.buf = append(fr.buf, e)
		return
	}
	fr.buf[fr.next] = e
	fr.next++
	if fr.next == fr.cap {
		fr.next = 0
	}
}

// snapshot copies the retained events, oldest first, keeping only those
// at or after sinceUS (trace-microsecond timestamps).
func (fr *flightRing) snapshot(sinceUS float64) []traceEv {
	out := make([]traceEv, 0, len(fr.buf))
	appendFrom := func(evs []traceEv) {
		for i := range evs {
			if evs[i].ts >= sinceUS {
				out = append(out, evs[i])
			}
		}
	}
	if len(fr.buf) == fr.cap {
		appendFrom(fr.buf[fr.next:])
		appendFrom(fr.buf[:fr.next])
	} else {
		appendFrom(fr.buf)
	}
	return out
}

// flightSnapshot is the frozen dump captured at the first trigger.
type flightSnapshot struct {
	cause  string
	atMS   float64
	events []traceEv
}

// flightTripLocked fires the flight recorder: counts the trigger, drops
// a trace instant, and — on the first trigger only — freezes the last
// FlightWindowMS of ring events as the incident snapshot. Later
// triggers only count; the first incident is the one worth the dump,
// and freezing keeps its prelude from being overwritten while the run
// continues. Callers hold r.mu.
func (r *Recorder) flightTripLocked(cause string, at sim.Time) {
	if r.flight == nil {
		return
	}
	r.reg.getLocked("poly_flight_triggers_total", "Flight-recorder triggers by cause.",
		kindCounter, Labels{"cause", cause}).incLocked()
	r.emitLocked(traceEv{kind: evFlightTrigger, name: r.in.flightTrigger, ts: us(at),
		pid: int32(r.session), tid: tidRequests, s1: r.tab.id(cause)})
	if r.flightSnap != nil {
		return
	}
	since := us(at) - r.opts.FlightWindowMS*1000
	r.flightSnap = &flightSnapshot{cause: cause, atMS: float64(at),
		events: r.flight.snapshot(since)}
}

// FlightTriggered reports the first flight-recorder trigger, if any.
func (r *Recorder) FlightTriggered() (cause string, atMS float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flightSnap == nil {
		return "", 0, false
	}
	return r.flightSnap.cause, r.flightSnap.atMS, true
}

// flightMetaLocked builds the Perfetto process/thread metadata prologue
// for a flight dump from the current session's boards.
func (r *Recorder) flightMetaLocked() []traceEv {
	meta := make([]traceEv, 0, 3+len(r.boardList))
	meta = append(meta,
		traceEv{kind: evMetaProcess, name: r.in.processName, pid: int32(r.session), s1: r.in.flightProcess},
		traceEv{kind: evMetaThread, name: r.in.threadName, pid: int32(r.session), tid: tidGovernor, s1: r.in.governor},
		traceEv{kind: evMetaThread, name: r.in.threadName, pid: int32(r.session), tid: tidRequests, s1: r.in.requests},
	)
	for _, bs := range r.boardList {
		meta = append(meta, traceEv{kind: evMetaThread, name: r.in.threadName,
			pid: int32(r.session), tid: bs.tid, s1: bs.label})
	}
	return meta
}

// WriteFlight renders the flight recorder as Chrome trace-event JSON:
// the frozen incident snapshot if a trigger fired, otherwise the live
// tail of the ring. Returns an empty trace in MetricsOnly mode.
func (r *Recorder) WriteFlight(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.flight == nil {
		return writeTraceEvents(w, r.tab)
	}
	meta := r.flightMetaLocked()
	if r.flightSnap != nil {
		return writeTraceEvents(w, r.tab, meta, r.flightSnap.events)
	}
	return writeTraceEvents(w, r.tab, meta, r.flight.snapshot(0))
}
