package telemetry

import (
	"encoding/json"
	"io"
)

// TraceEvent is one Chrome trace-event (the JSON format Perfetto and
// chrome://tracing load). Timestamps are microseconds of *simulated*
// time — the trace is a rendering of the deterministic event timeline,
// never of wall clock.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// Reserved per-session track ids; board tracks start at tidFirstBoard.
const (
	tidGovernor   = 0
	tidRequests   = 1
	tidFirstBoard = 2
)

// strtab interns event strings to dense ids so stored events carry no
// pointers: the garbage collector never scans a trace buffer or flight
// ring of pointer-free structs, no matter how many million events they
// hold. Id 0 is always the empty string.
type strtab struct {
	ids  map[string]int32
	strs []string
}

func newStrtab() *strtab {
	t := &strtab{ids: make(map[string]int32, 64)}
	t.id("")
	return t
}

// id interns s. A hit is one map probe with no allocation — the hot
// paths pass either fixed names or strings that were interned at
// registration, so steady-state recording never grows the table.
func (t *strtab) id(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := int32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

func (t *strtab) str(id int32) string { return t.strs[id] }

// traceEv is the compact in-memory form of a trace event: fixed fields
// plus a kind tag, strings as strtab ids, no per-event Args map. The
// hot recording path stores these; materialize builds the exported
// TraceEvent (and its Args map) only when a trace is written.
type traceEv struct {
	ts, dur    float64
	f1, f2     float64
	i1         int64
	name       int32
	s1, s2, s3 int32
	pid, tid   int32
	kind       uint8
}

// traceEv kinds.
const (
	evMetaProcess uint8 = iota
	evMetaThread
	evKernel
	evReconfig
	evViolation
	evPlanError
	evBatch
	evShed
	evRetry
	evHealth
	evGovernor
	evPower
	evDVFS
	evSLOBurn
	evFlightTrigger
	evAdmit
)

// materialize expands a compact event into the exported JSON shape.
func (e *traceEv) materialize(tab *strtab) TraceEvent {
	out := TraceEvent{Name: tab.str(e.name), TS: e.ts, Dur: e.dur, PID: int(e.pid), TID: int(e.tid)}
	switch e.kind {
	case evMetaProcess, evMetaThread:
		out.Phase = "M"
		out.Args = map[string]any{"name": tab.str(e.s1)}
	case evKernel:
		out.Cat, out.Phase = "kernel", "X"
		out.Args = map[string]any{"impl": tab.str(e.s1), "batch": e.i1}
	case evReconfig:
		out.Cat, out.Phase = "reconfig", "X"
		out.Args = map[string]any{"impl": tab.str(e.s1), "mode": tab.str(e.s2)}
	case evViolation:
		out.Cat, out.Phase, out.Scope = "violation", "i", "t"
		out.Args = map[string]any{"latency_ms": e.f1, "bound_ms": e.f2, "span": e.i1}
	case evPlanError:
		out.Cat, out.Phase, out.Scope = "violation", "i", "t"
	case evBatch:
		out.Cat, out.Phase, out.Scope = "batch", "i", "t"
		out.Args = map[string]any{"size": e.i1, "hold_ms": e.f1}
	case evShed:
		out.Cat, out.Phase, out.Scope = "fault", "i", "t"
	case evRetry:
		out.Cat, out.Phase, out.Scope = "fault", "i", "t"
		out.Args = map[string]any{"kernel": tab.str(e.s1)}
	case evHealth:
		out.Cat, out.Phase, out.Scope = "fault", "i", "t"
		out.Args = map[string]any{"from": tab.str(e.s1), "to": tab.str(e.s2)}
	case evGovernor:
		out.Cat, out.Phase, out.Scope = "governor", "i", "p"
		out.Args = map[string]any{"from": tab.str(e.s1), "to": tab.str(e.s2), "cause": tab.str(e.s3)}
	case evPower:
		out.Cat, out.Phase = "power", "C"
		out.Args = map[string]any{"watts": e.f1}
	case evDVFS:
		out.Cat, out.Phase, out.Scope = "dvfs", "i", "t"
		out.Args = map[string]any{"level": e.i1}
	case evSLOBurn:
		out.Cat, out.Phase, out.Scope = "slo", "i", "p"
		out.Args = map[string]any{"short_burn": e.f1, "long_burn": e.f2, "state": tab.str(e.s1)}
	case evFlightTrigger:
		out.Cat, out.Phase, out.Scope = "flight", "i", "p"
		out.Args = map[string]any{"cause": tab.str(e.s1)}
	case evAdmit:
		out.Cat, out.Phase, out.Scope = "request", "i", "t"
		out.Args = map[string]any{"span": e.i1, "bound_ms": e.f1}
	}
	return out
}

// batchEventName interns the trace names for the known flush reasons so
// the hot path never concatenates.
func batchEventName(reason string) string {
	switch reason {
	case "full":
		return "batch:full"
	case "maxwait":
		return "batch:maxwait"
	case "disband":
		return "batch:disband"
	default:
		return "batch:" + reason
	}
}

func governorEventName(to string) string {
	switch to {
	case "nominal":
		return "governor:nominal"
	case "lowpower":
		return "governor:lowpower"
	case "boost":
		return "governor:boost"
	case "calm":
		return "governor:calm"
	default:
		return "governor:" + to
	}
}

func healthEventName(to string) string {
	switch to {
	case "healthy":
		return "health:healthy"
	case "suspect":
		return "health:suspect"
	case "down":
		return "health:down"
	default:
		return "health:" + to
	}
}

// traceChunk is how many events each trace-buffer chunk holds. Chunked
// growth means reaching a million-event cap never copies what is
// already recorded (append-doubling would move the whole buffer a
// dozen times on the way up).
const traceChunk = 1 << 14

// traceBuf accumulates trace events up to a cap; overflow is counted,
// not stored, so a runaway sweep cannot exhaust memory.
type traceBuf struct {
	chunks  [][]traceEv
	n       int
	cap     int
	dropped int
}

func newTraceBuf(cap int) *traceBuf {
	if cap < 1 {
		cap = 1
	}
	return &traceBuf{cap: cap}
}

func (b *traceBuf) add(e traceEv) {
	if b.n >= b.cap {
		b.dropped++
		return
	}
	last := len(b.chunks) - 1
	if last < 0 || len(b.chunks[last]) == cap(b.chunks[last]) {
		size := traceChunk
		if rem := b.cap - b.n; rem < size {
			size = rem
		}
		b.chunks = append(b.chunks, make([]traceEv, 0, size))
		last++
	}
	b.chunks[last] = append(b.chunks[last], e)
	b.n++
}

// writeTraceEvents renders compact event slices (e.g. a metadata
// prologue plus a body) as a Chrome trace JSON object.
func writeTraceEvents(w io.Writer, tab *strtab, groups ...[]traceEv) error {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	out := make([]TraceEvent, 0, n)
	for _, g := range groups {
		for i := range g {
			out = append(out, g[i].materialize(tab))
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     out,
	})
}

// writeTrace renders the buffer as a Chrome trace JSON object.
func (b *traceBuf) writeTrace(w io.Writer, tab *strtab) error {
	return writeTraceEvents(w, tab, b.chunks...)
}
