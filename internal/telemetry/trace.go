package telemetry

import (
	"encoding/json"
	"io"
)

// TraceEvent is one Chrome trace-event (the JSON format Perfetto and
// chrome://tracing load). Timestamps are microseconds of *simulated*
// time — the trace is a rendering of the deterministic event timeline,
// never of wall clock.
type TraceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// Reserved per-session track ids; board tracks start at tidFirstBoard.
const (
	tidGovernor   = 0
	tidRequests   = 1
	tidFirstBoard = 2
)

// traceBuf accumulates trace events up to a cap; overflow is counted,
// not stored, so a runaway sweep cannot exhaust memory.
type traceBuf struct {
	events  []TraceEvent
	cap     int
	dropped int
}

func newTraceBuf(cap int) *traceBuf {
	if cap < 1 {
		cap = 1
	}
	return &traceBuf{cap: cap}
}

func (b *traceBuf) add(e TraceEvent) {
	if len(b.events) >= b.cap {
		b.dropped++
		return
	}
	b.events = append(b.events, e)
}

// writeTrace renders the buffer as a Chrome trace JSON object.
func (b *traceBuf) writeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     b.events,
	})
}
