package telemetry

import (
	"io"
	"net/http"
	"sync"
)

// FleetRollup aggregates per-shard Recorders into fleet-level gauges —
// the cluster view a router or autoscaler scrapes, in the same
// allocated/allocatable/utilization_ratio shape as the per-node
// poly_node_* gauges:
//
//	poly_fleet_allocated{resource}          sum over nodes
//	poly_fleet_allocatable{resource}        sum over nodes
//	poly_fleet_utilization_ratio{resource}  fleet allocated / allocatable
//	poly_fleet_nodes                        registered node count
//	poly_fleet_node_health{node,state}      1 for the node's current state
//
// A shared Recorder across shards would corrupt the node gauges (each
// shard re-registers allocatable and the board maps collide), so every
// shard keeps its own Recorder and the rollup reads them at sync time.
//
// The rollup tolerates concurrent scrape: Sync, SetNodeHealth, AddNode,
// and WritePrometheus serialize on an internal mutex, so an HTTP
// /metrics scrape racing a fleet's health refresh (or a parallel
// fleet's coordinator) sees a consistent gauge set.
type FleetRollup struct {
	mu    sync.Mutex
	reg   *Registry
	nodes []fleetNode

	nodesG *Metric
	res    [numResources]resGauges
	resOn  [numResources]bool
}

type fleetNode struct {
	name string
	rec  *Recorder
	// health holds the state-labeled 0/1 gauges, indexed like
	// healthStateNames.
	health []*Metric
	state  int
}

// fleetHealthStates are the exported node-health states, matching
// fleet.NodeHealth.String() values.
var fleetHealthStates = [...]string{"healthy", "suspect", "down", "draining"}

// NewFleetRollup returns an empty rollup with its own registry.
func NewFleetRollup() *FleetRollup {
	f := &FleetRollup{reg: NewRegistry()}
	f.nodesG = f.reg.Gauge("poly_fleet_nodes", "Nodes registered in the fleet.")
	return f
}

// Registry exposes the rollup's registry for scraping or embedding.
func (f *FleetRollup) Registry() *Registry { return f.reg }

// AddNode registers one shard's recorder under a node name.
func (f *FleetRollup) AddNode(name string, rec *Recorder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := fleetNode{name: name, rec: rec}
	for _, st := range fleetHealthStates {
		n.health = append(n.health, f.reg.Gauge("poly_fleet_node_health",
			"1 when the node is in the labeled state.", "node", name, "state", st))
	}
	n.health[0].Set(1)
	f.nodes = append(f.nodes, n)
	f.nodesG.Set(float64(len(f.nodes)))
}

// SetNodeHealth flips the node's state-labeled health gauges. Unknown
// node names and states are ignored.
func (f *FleetRollup) SetNodeHealth(name, state string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	si := -1
	for i, st := range fleetHealthStates {
		if st == state {
			si = i
			break
		}
	}
	if si < 0 {
		return
	}
	for i := range f.nodes {
		n := &f.nodes[i]
		if n.name != name {
			continue
		}
		n.health[n.state].Set(0)
		n.health[si].Set(1)
		n.state = si
		return
	}
}

// Sync pulls every shard recorder's live node occupancy and refreshes
// the fleet aggregate gauges.
func (f *FleetRollup) Sync() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for ri, resource := range resourceNames {
		var alloc, allocatable float64
		any := false
		for _, n := range f.nodes {
			a, cap, ok := n.rec.NodeResource(resource)
			if !ok {
				continue
			}
			any = true
			alloc += a
			allocatable += cap
		}
		if !any {
			continue
		}
		if !f.resOn[ri] {
			f.resOn[ri] = true
			f.res[ri] = resGauges{
				allocated: f.reg.Gauge("poly_fleet_allocated",
					"Fleet resource currently in use (sum over nodes).", "resource", resource),
				allocatable: f.reg.Gauge("poly_fleet_allocatable",
					"Fleet resource capacity (sum over nodes).", "resource", resource),
				ratio: f.reg.Gauge("poly_fleet_utilization_ratio",
					"Fleet allocated over allocatable per resource.", "resource", resource),
			}
		}
		g := f.res[ri]
		g.allocated.Set(alloc)
		g.allocatable.Set(allocatable)
		if allocatable > 0 {
			g.ratio.Set(alloc / allocatable)
		} else {
			g.ratio.Set(0)
		}
	}
}

// WritePrometheus syncs the aggregates and writes the rollup's registry
// in Prometheus text exposition format.
func (f *FleetRollup) WritePrometheus(w io.Writer) error {
	f.Sync()
	return f.reg.WritePrometheus(w)
}

// MetricsHandler serves WritePrometheus over HTTP — the fleet-level
// /metrics endpoint, mirroring Recorder.MetricsHandler.
func (f *FleetRollup) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = f.WritePrometheus(w)
	})
}
