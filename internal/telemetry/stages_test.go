package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// checkStageSum asserts the package invariant: the canonical stage sum
// reproduces LatencyMS bit-exactly (not approximately — the exposition
// promises an operator that the breakdown accounts for every last ULP
// of the end-to-end latency).
func checkStageSum(t *testing.T, sp *Span) {
	t.Helper()
	if got, want := sp.Stages.SumMS(), sp.LatencyMS; math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("stage sum %v (bits %x) != latency %v (bits %x); breakdown %+v",
			got, math.Float64bits(got), want, math.Float64bits(want), sp.Stages)
	}
}

// TestComputeStagesTable covers the attribution rules case by case:
// overlap priority (exec > transfer > retry), failed-attempt exclusion,
// hold passthrough, and the bit-exact remainder — including awkward
// non-representable float layouts.
func TestComputeStagesTable(t *testing.T) {
	type kern struct {
		queued, start, end float64
		retried            bool
		retryFrom          float64
	}
	// Runtime float64 arithmetic (not Go's exact constant arithmetic), so
	// the expectations carry the same rounding the sweep sees.
	awkStart := 0.1
	awkEnd := awkStart + 0.2
	cases := []struct {
		name      string
		latency   float64
		hold      float64
		kernels   []kern
		transfers []Interval
		exec      float64
		transfer  float64
		retry     float64
	}{
		{
			name:    "empty span is all queue",
			latency: 10.5,
		},
		{
			name:    "single kernel",
			latency: 12,
			kernels: []kern{{queued: 0, start: 2, end: 7}},
			exec:    5,
		},
		{
			name:    "overlapping kernels count the union once",
			latency: 20,
			kernels: []kern{
				{queued: 0, start: 2, end: 8},
				{queued: 0, start: 5, end: 11},
			},
			exec: 9, // [2,11), not 6+6
		},
		{
			name:    "disjoint kernels add",
			latency: 20,
			kernels: []kern{
				{queued: 0, start: 1, end: 3},
				{queued: 3, start: 6, end: 10},
			},
			exec: 6,
		},
		{
			name:      "transfer fully inside exec attributes to exec",
			latency:   15,
			kernels:   []kern{{queued: 0, start: 2, end: 10}},
			transfers: []Interval{{StartMS: 4, EndMS: 6}},
			exec:      8,
			transfer:  0,
		},
		{
			name:      "transfer partially overlapping exec keeps its tail",
			latency:   15,
			kernels:   []kern{{queued: 0, start: 2, end: 6}},
			transfers: []Interval{{StartMS: 5, EndMS: 9}},
			exec:      4,
			transfer:  3, // [6,9)
		},
		{
			name:      "pure transfer",
			latency:   8,
			transfers: []Interval{{StartMS: 1, EndMS: 4}},
			transfer:  3,
		},
		{
			name:    "retry window between failure and restart",
			latency: 30,
			kernels: []kern{
				{queued: 0, start: 2, end: 5},
				{queued: 5, start: 12, end: 18, retried: true, retryFrom: 5}, // failed at 5, restarted at 12
			},
			exec:  9, // [2,5) + [12,18)
			retry: 7, // [5,12)
		},
		{
			name:    "retry window under concurrent exec attributes to exec",
			latency: 30,
			kernels: []kern{
				{queued: 0, start: 2, end: 14},
				{queued: 5, start: 12, end: 18, retried: true, retryFrom: 5},
			},
			exec:  16, // union [2,18)
			retry: 0,  // [5,12) covered by the first kernel
		},
		{
			name:    "failed attempt (end<=start) is excluded",
			latency: 10,
			kernels: []kern{
				{queued: 0, start: 4, end: 4}, // board lost the task
				{queued: 4, start: 6, end: 9},
			},
			exec: 3,
		},
		{
			name:    "hold passes through",
			latency: 25,
			hold:    3.5,
			kernels: []kern{{queued: 3.5, start: 5, end: 9}},
			exec:    4,
		},
		{
			name:    "awkward floats still sum bit-exactly",
			latency: awkEnd + 0.30000000000000004,
			kernels: []kern{{queued: 0, start: awkStart, end: awkEnd}},
			exec:    awkEnd - awkStart,
		},
		{
			name:    "latency smaller than coverage yields negative queue remainder",
			latency: 3,
			kernels: []kern{{queued: 0, start: 0, end: 5}},
			exec:    5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := &Span{LatencyMS: tc.latency, HoldMS: tc.hold}
			for _, k := range tc.kernels {
				rec := sp.AddKernel("k", "dev", "impl", k.queued)
				rec.StartMS, rec.EndMS = k.start, k.end
				rec.Retried, rec.RetryFromMS = k.retried, k.retryFrom
			}
			for _, tr := range tc.transfers {
				sp.AddTransfer(tr.StartMS, tr.EndMS)
			}
			sp.ComputeStages()
			if sp.Stages.HoldMS != tc.hold {
				t.Fatalf("hold = %v, want %v", sp.Stages.HoldMS, tc.hold)
			}
			if sp.Stages.ExecMS != tc.exec {
				t.Fatalf("exec = %v, want %v", sp.Stages.ExecMS, tc.exec)
			}
			if sp.Stages.TransferMS != tc.transfer {
				t.Fatalf("transfer = %v, want %v", sp.Stages.TransferMS, tc.transfer)
			}
			if sp.Stages.RetryMS != tc.retry {
				t.Fatalf("retry = %v, want %v", sp.Stages.RetryMS, tc.retry)
			}
			checkStageSum(t, sp)
		})
	}
}

// TestComputeStagesRandomized hammers the ULP-correction path: random
// interval soups with hostile float values must still satisfy the
// bit-exact sum invariant, and recycled spans (reset + recompute) must
// behave identically to fresh ones.
func TestComputeStagesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sp := &Span{} // reused across iterations, like the recorder's free list
	for iter := 0; iter < 5000; iter++ {
		sp.reset(uint64(iter), 0, 100)
		// Physically-shaped spans — the contract the runtime provides: all
		// stage intervals lie inside the request's [0, latency] window, so
		// coverage never dwarfs the latency the remainder is solved
		// against. Latencies span decades (~0.02 ms to ~3 s) to stress the
		// ULP correction at every magnitude.
		latency := math.Exp(rng.Float64()*12 - 4)
		if rng.Intn(50) == 0 {
			latency = 0 // instantaneously-completed request
		}
		sp.LatencyMS = latency
		sp.HoldMS = rng.Float64() * 0.1 * latency
		within := func() (float64, float64) {
			a, b := rng.Float64()*latency, rng.Float64()*latency
			if a > b {
				a, b = b, a
			}
			return a, b
		}
		for i := rng.Intn(6); i > 0; i-- {
			s, e := within()
			if rng.Intn(10) == 0 {
				e = s // failed attempt: the board lost the task
			}
			k := sp.AddKernel("k", "dev", "impl", s*rng.Float64())
			k.StartMS, k.EndMS = s, e
			if rng.Intn(3) == 0 {
				k.Retried = true
				k.RetryFromMS = s * rng.Float64()
			}
		}
		for i := rng.Intn(3); i > 0; i-- {
			s, e := within()
			sp.AddTransfer(s, e)
		}
		sp.ComputeStages()
		checkStageSum(t, sp)
		for i := 0; i < NumStages; i++ {
			if i == StageQueue {
				continue // queue is a signed remainder by design
			}
			if v := sp.Stages.Get(i); v < 0 || math.IsNaN(v) {
				t.Fatalf("iter %d: stage %s = %v", iter, StageNames[i], v)
			}
		}
	}
}
