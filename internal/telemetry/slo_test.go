package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// TestSLOTrackerTripAndHysteresis walks the multiwindow alert through a
// full incident: quiet baseline, burn past the threshold in both
// windows (one trip, not one per observation), then recovery with the
// 2:1 hysteresis — the alert holds until the short burn falls below
// half the trip threshold, so a flapping tail can't strobe it.
func TestSLOTrackerTripAndHysteresis(t *testing.T) {
	// target 10%: a violation ratio of 0.2 burns at 2.0 (the threshold).
	tr := newSLOTracker(0.10, 100, 1000, 2.0)

	ts := 0.0
	emit := func(n int, bad bool) (trips int) {
		for i := 0; i < n; i++ {
			ts += 1
			if trip, _, _ := tr.observe(ts, bad); trip {
				trips++
			}
		}
		return trips
	}

	if got := emit(200, false); got != 0 {
		t.Fatalf("healthy baseline tripped %d times", got)
	}
	// All-bad traffic pushes both windows to burn 10 >= 2: exactly one
	// trip no matter how long the incident runs.
	if got := emit(300, true); got != 1 {
		t.Fatalf("incident tripped %d times, want exactly 1", got)
	}
	if !tr.alerting {
		t.Fatal("tracker not alerting mid-incident")
	}

	// Recovery: good traffic dilutes the short window first. The alert
	// must clear only once shortBurn < threshold/2 (ratio < 0.1), and a
	// renewed incident must be able to trip again.
	emit(95, false) // short window now 5 bad / 100 → burn 0.5 < 1.0
	if tr.alerting {
		sb, _, _, _ := tr.rates()
		t.Fatalf("alert should have cleared, short burn %v", sb)
	}
	// But not earlier: rebuild and check the boundary.
	tr2 := newSLOTracker(0.10, 100, 1000, 2.0)
	ts2 := 0.0
	for i := 0; i < 100; i++ {
		ts2++
		tr2.observe(ts2, true)
	}
	for i := 0; i < 80; i++ { // short window: 20 bad / 100 → burn 2.0, still >= 1.0
		ts2++
		tr2.observe(ts2, false)
	}
	if !tr2.alerting {
		t.Fatal("alert cleared above the hysteresis floor")
	}

	if got := emit(300, true); got != 1 {
		t.Fatalf("second incident tripped %d times, want 1", got)
	}
}

// TestSLOTrackerLongWindowGuard checks the "significant AND current"
// property: a short bad burst inside an otherwise healthy long window
// must not trip, because the long window hasn't lost real budget yet.
func TestSLOTrackerLongWindowGuard(t *testing.T) {
	tr := newSLOTracker(0.10, 100, 1000, 2.0)
	ts := 0.0
	for i := 0; i < 900; i++ {
		ts++
		if trip, _, _ := tr.observe(ts, false); trip {
			t.Fatal("tripped on healthy traffic")
		}
	}
	// 30 bad in a row: short burn 30/100/0.1 = 3.0 >= 2, but long burn
	// 30/930/0.1 ≈ 0.32 < 2 — no trip.
	for i := 0; i < 30; i++ {
		ts++
		if trip, short, long := tr.observe(ts, true); trip {
			t.Fatalf("short burst tripped (short %v long %v)", short, long)
		}
	}
}

// TestSLOTrackerReset pins the new-session contract: reset drops every
// windowed point and the alert latch, so a fresh timeline starting at
// t=0 never sees ghosts from the previous session's larger clock.
func TestSLOTrackerReset(t *testing.T) {
	tr := newSLOTracker(0.10, 100, 1000, 2.0)
	for i := 0; i < 500; i++ {
		tr.observe(float64(i)*10, true)
	}
	if !tr.alerting {
		t.Fatal("setup: tracker should be alerting")
	}
	tr.reset()
	if tr.alerting || len(tr.points) != 0 || tr.shortHead != 0 || tr.longHead != 0 {
		t.Fatalf("reset left state behind: %+v", tr)
	}
	sb, lb, sv, lv := tr.rates()
	if sb != 0 || lb != 0 || sv != 0 || lv != 0 {
		t.Fatalf("rates after reset = %v %v %v %v, want zeros", sb, lb, sv, lv)
	}
	// The fresh timeline behaves like a fresh tracker.
	if trip, short, _ := tr.observe(1, false); trip || short != 0 {
		t.Fatalf("first post-reset observation: trip=%v short=%v", trip, short)
	}
}

// TestSLOTrackerMatchesBruteForce shadows the incremental deque (head
// advancement, in-place compaction) with a from-scratch recomputation
// over the full history at every step. Any expiry or compaction bug
// shows up as a rate mismatch.
func TestSLOTrackerMatchesBruteForce(t *testing.T) {
	const (
		target    = 0.01
		shortMS   = 50.0
		longMS    = 400.0
		threshold = 2.0
	)
	tr := newSLOTracker(target, shortMS, longMS, threshold)
	rng := rand.New(rand.NewSource(9))

	type pt struct {
		ts  float64
		bad bool
	}
	var hist []pt
	ts := 0.0
	for i := 0; i < 5000; i++ {
		ts += rng.Float64() * 5
		bad := rng.Float64() < 0.03
		hist = append(hist, pt{ts, bad})
		_, gotShort, gotLong := tr.observe(ts, bad)

		var sBad, sTot, lBad, lTot int
		for _, p := range hist {
			if p.ts >= ts-longMS {
				lTot++
				if p.bad {
					lBad++
				}
			}
			if p.ts >= ts-shortMS {
				sTot++
				if p.bad {
					sBad++
				}
			}
		}
		wantShort := float64(sBad) / float64(sTot) / target
		wantLong := float64(lBad) / float64(lTot) / target
		if math.Float64bits(gotShort) != math.Float64bits(wantShort) ||
			math.Float64bits(gotLong) != math.Float64bits(wantLong) {
			t.Fatalf("step %d: burn (%v, %v), brute force (%v, %v)",
				i, gotShort, gotLong, wantShort, wantLong)
		}
	}
	inWindow := 0
	for _, p := range hist {
		if p.ts >= ts-longMS {
			inWindow++
		}
	}
	if len(tr.points) > 2*inWindow+2 {
		t.Fatalf("compaction never ran: %d points retained for a %d-point window",
			len(tr.points), inWindow)
	}
}
