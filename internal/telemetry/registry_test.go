package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the text exposition format byte for
// byte against testdata/registry_golden.txt: HELP/TYPE lines, label
// rendering, cumulative histogram buckets with the shared `le` bounds,
// and registration-order determinism.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("poly_requests_total", "Finished requests by outcome.", "outcome", "ok").Add(12)
	r.Counter("poly_requests_total", "", "outcome", "violation").Inc()
	r.Gauge("poly_power_watts", "Node accelerator power at the last sample.").Set(137.5)
	h := r.Histogram("poly_request_latency_ms", "End-to-end request latency.")
	for _, v := range []float64{0.4, 3, 3, 18, 42, 6000} {
		h.Observe(v)
	}
	// A labeled histogram and out-of-order label keys (must canonicalize).
	r.Histogram("poly_kernel_queue_ms", "Per-kernel device queue wait.", "device", "gpu0").Observe(2.5)
	r.Counter("poly_kernel_execs_total", "Kernel executions by placement.",
		"kernel", "mfcc", "device", "gpu0").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "registry_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestLabelOrderCanonical checks that label order never splits a series.
func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "b", "2", "a", "1")
	b := r.Counter("x_total", "", "a", "1", "b", "2")
	if a != b {
		t.Fatal("same labels in different order produced distinct series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("value = %v, want 1", b.Value())
	}
}

// TestQuantileEstimate checks the histogram quantile stays inside the
// bucket that holds the target rank.
func TestQuantileEstimate(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_ms", "")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i)) // 0..99 ms
	}
	q := h.Quantile(0.5)
	if q < 40 || q > 75 {
		t.Fatalf("Quantile(0.5) = %v, want inside the median's bucket range", q)
	}
	if h.HistCount() != 100 {
		t.Fatalf("count = %d", h.HistCount())
	}
}
