// Package telemetry is Poly's runtime observability layer: a label-keyed
// metric registry (counters, gauges, fixed-bucket latency histograms), a
// bounded ring of per-request spans, and two exporters — Prometheus text
// exposition for a live /metrics endpoint and a Chrome trace-event JSON
// dump (Perfetto-loadable) of the simulated timeline.
//
// Determinism rule: every timestamp that enters this package is a
// sim.Time from the single-threaded discrete-event simulator, never wall
// clock, so a run's metrics and trace are bit-identical at any
// POLY_WORKERS pool size. The whole layer hangs off the nil-able Sink
// interface: a disabled sink costs the emitting layers only nil-checks,
// which is what keeps the telemetry-off serving path within noise of the
// un-instrumented one (BenchmarkServeSteadyState).
package telemetry

import (
	"io"
	"net/http"
	"sync"

	"poly/internal/sim"
)

// Sink receives runtime events. *Recorder implements it; emitting layers
// hold a nil Sink when telemetry is disabled. The device-facing subset
// (Launched, ReconfigStart, DVFSChanged) structurally satisfies
// device.Observer, so one sink serves every layer.
type Sink interface {
	// BeginSession opens a new serving session (one server run). Each
	// session becomes one Perfetto process with its own board tracks.
	BeginSession(label string)
	// RegisterBoard declares a board of the current session; class is
	// "GPU" or "FPGA".
	RegisterBoard(name, class string)

	// StartSpan opens a per-request span at admission; the runtime fills
	// plan fields and kernel records, then hands it back via FinishSpan.
	StartSpan(at sim.Time, boundMS float64) *Span
	// FinishSpan records a completed request: ring, latency histograms,
	// outcome counters, and a violation instant on the trace.
	FinishSpan(sp *Span, at sim.Time)
	// PlanError counts a request dropped at planning time.
	PlanError(at sim.Time)
	// PlanUpdate records one planning outcome: plan-cache hit/miss and
	// the plan's Step-2 energy swap count.
	PlanUpdate(cacheHit bool, energySwaps int)

	// BatchFlush records one admission-batch group leaving the staging
	// stage: its size, the mean time its members were held, and why it
	// flushed ("full", "maxwait") or dissolved ("disband").
	BatchFlush(at sim.Time, size int, holdMS float64, reason string)

	// RequestShed counts a request rejected by admission control because
	// the degraded node could not meet the latency bound.
	RequestShed(at sim.Time)
	// TaskRetry records one kernel-level retry after a device task
	// failure: the board that lost the task and the kernel re-placed.
	TaskRetry(device, kernel string, at sim.Time)
	// BoardHealthChanged records a board health-state transition
	// (healthy, suspect, down) made by the runtime's monitor.
	BoardHealthChanged(device, from, to string, at sim.Time)

	// GovernorTransition records a governor mode change and its cause.
	GovernorTransition(at sim.Time, from, to, cause string)
	// PowerSample records the node's instantaneous power draw.
	PowerSample(at sim.Time, watts float64)

	// Launched records one physical execution on a board: a (possibly
	// batched) GPU launch or one FPGA task.
	Launched(device, kernel, implID string, batch int, start, end sim.Time)
	// ReconfigStart records an FPGA bitstream load and its stall span.
	ReconfigStart(device, implID string, at sim.Time, stallMS float64, background bool)
	// DVFSChanged records a GPU operating-point change.
	DVFSChanged(device string, level int, at sim.Time)
}

// Options tunes a Recorder.
type Options struct {
	// SpanRingCap bounds the retained finished spans (default 1024).
	SpanRingCap int
	// TraceEventCap bounds the trace buffer (default 1<<20 events);
	// overflow increments poly_trace_events_dropped_total.
	TraceEventCap int
}

// Recorder is the standard Sink: it feeds the registry, the span ring,
// and the trace buffer. Safe for concurrent use (the /metrics listener
// reads while the simulation records), though a single simulation is
// itself single-threaded.
type Recorder struct {
	mu    sync.Mutex
	reg   *Registry
	spans *SpanRing
	trace *traceBuf

	session  int            // current Perfetto pid; 0 before BeginSession
	boards   map[string]int // board name → tid within current session
	nextTID  int
	nextSpan uint64

	// cached hot-path series
	cOK, cViolation, cWarmup, cPlanErr *Metric
	cCacheHit, cCacheMiss, cSwaps      *Metric
	hLatency, hAdmitWait               *Metric
	gPower, gInflightSpans             *Metric
	cDropped                           *Metric
}

// New returns a Recorder with default options.
func New() *Recorder { return NewWithOptions(Options{}) }

// NewWithOptions returns a Recorder with explicit bounds.
func NewWithOptions(o Options) *Recorder {
	if o.SpanRingCap <= 0 {
		o.SpanRingCap = 1024
	}
	if o.TraceEventCap <= 0 {
		o.TraceEventCap = 1 << 20
	}
	r := &Recorder{
		reg:    NewRegistry(),
		spans:  NewSpanRing(o.SpanRingCap),
		trace:  newTraceBuf(o.TraceEventCap),
		boards: make(map[string]int),
	}
	r.cOK = r.reg.Counter("poly_requests_total", "Finished requests by outcome.", "outcome", "ok")
	r.cViolation = r.reg.Counter("poly_requests_total", "", "outcome", "violation")
	r.cWarmup = r.reg.Counter("poly_requests_total", "", "outcome", "warmup")
	r.cPlanErr = r.reg.Counter("poly_plan_errors_total", "Requests dropped because planning failed.")
	r.cCacheHit = r.reg.Counter("poly_plan_cache_hits_total", "Plans served from the plan cache.")
	r.cCacheMiss = r.reg.Counter("poly_plan_cache_misses_total", "Plans computed cold.")
	r.cSwaps = r.reg.Counter("poly_energy_swaps_total", "Step-2 energy implementation swaps across plans.")
	r.hLatency = r.reg.Histogram("poly_request_latency_ms", "End-to-end request latency (post-warmup).")
	r.hAdmitWait = r.reg.Histogram("poly_admit_wait_ms", "Admission to first kernel start.")
	r.gPower = r.reg.Gauge("poly_power_watts", "Node accelerator power at the last sample.")
	r.gInflightSpans = r.reg.Gauge("poly_spans_inflight", "Spans started but not finished.")
	r.cDropped = r.reg.Counter("poly_trace_events_dropped_total", "Trace events over the buffer cap.")
	return r
}

// Registry exposes the metric registry (for exporters and tests).
func (r *Recorder) Registry() *Registry { return r.reg }

// Spans returns the retained finished spans, oldest first.
func (r *Recorder) Spans() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.Snapshot()
}

// SpanTotal returns how many spans finished over the recorder's lifetime.
func (r *Recorder) SpanTotal() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.Total()
}

// BeginSession implements Sink.
func (r *Recorder) BeginSession(label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.session++
	r.nextTID = tidFirstBoard
	clear(r.boards)
	r.trace.add(TraceEvent{Name: "process_name", Phase: "M", PID: r.session,
		Args: map[string]any{"name": label}})
	r.trace.add(TraceEvent{Name: "thread_name", Phase: "M", PID: r.session, TID: tidGovernor,
		Args: map[string]any{"name": "governor"}})
	r.trace.add(TraceEvent{Name: "thread_name", Phase: "M", PID: r.session, TID: tidRequests,
		Args: map[string]any{"name": "requests"}})
}

// RegisterBoard implements Sink.
func (r *Recorder) RegisterBoard(name, class string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.session == 0 {
		r.session = 1 // boards registered without an explicit session
	}
	if _, ok := r.boards[name]; ok {
		return
	}
	tid := r.nextTID
	if tid < tidFirstBoard {
		tid = tidFirstBoard
	}
	r.nextTID = tid + 1
	r.boards[name] = tid
	r.trace.add(TraceEvent{Name: "thread_name", Phase: "M", PID: r.session, TID: tid,
		Args: map[string]any{"name": name + " (" + class + ")"}})
	r.reg.Gauge("poly_device_dvfs_level", "Current GPU DVFS ladder index.", "device", name)
}

// boardTID resolves a board's track, registering lazily if needed.
// Callers hold r.mu.
func (r *Recorder) boardTID(name string) int {
	tid, ok := r.boards[name]
	if !ok {
		tid = r.nextTID
		if tid < tidFirstBoard {
			tid = tidFirstBoard
		}
		r.nextTID = tid + 1
		r.boards[name] = tid
	}
	return tid
}

// us converts simulated milliseconds to trace microseconds.
func us(t sim.Time) float64 { return float64(t) * 1000 }

// StartSpan implements Sink.
func (r *Recorder) StartSpan(at sim.Time, boundMS float64) *Span {
	r.mu.Lock()
	r.nextSpan++
	id := r.nextSpan
	r.mu.Unlock()
	r.gInflightSpans.Add(1)
	return &Span{ID: id, ArrivedMS: float64(at), BoundMS: boundMS}
}

// FinishSpan implements Sink.
func (r *Recorder) FinishSpan(sp *Span, at sim.Time) {
	r.gInflightSpans.Add(-1)
	switch {
	case sp.Dropped:
		r.reg.Counter("poly_requests_total", "", "outcome", "dropped").Inc()
	case !sp.Measured:
		r.cWarmup.Inc()
	case sp.Violation:
		r.cViolation.Inc()
	default:
		r.cOK.Inc()
	}
	if sp.Measured {
		r.hLatency.Observe(sp.LatencyMS)
		r.hAdmitWait.Observe(sp.AdmitWaitMS())
	}
	if !sp.Dropped {
		for _, k := range sp.Kernels {
			r.reg.Histogram("poly_kernel_queue_ms", "Per-kernel device queue wait.", "device", k.Device).Observe(k.QueueMS())
			r.reg.Histogram("poly_kernel_service_ms", "Per-kernel execution span.", "device", k.Device).Observe(k.ServiceMS())
			r.reg.Counter("poly_kernel_execs_total", "Kernel executions by placement.",
				"device", k.Device, "kernel", k.Kernel).Inc()
		}
	}
	r.mu.Lock()
	r.spans.Push(sp)
	if sp.Violation {
		r.trace.add(TraceEvent{Name: "violation", Cat: "violation", Phase: "i", Scope: "t",
			TS: us(at), PID: r.session, TID: tidRequests,
			Args: map[string]any{"latency_ms": sp.LatencyMS, "bound_ms": sp.BoundMS, "span": sp.ID}})
	}
	r.mu.Unlock()
}

// PlanError implements Sink.
func (r *Recorder) PlanError(at sim.Time) {
	r.cPlanErr.Inc()
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "plan_error", Cat: "violation", Phase: "i", Scope: "t",
		TS: us(at), PID: r.session, TID: tidRequests})
	r.mu.Unlock()
}

// PlanUpdate implements Sink.
func (r *Recorder) PlanUpdate(cacheHit bool, energySwaps int) {
	if cacheHit {
		r.cCacheHit.Inc()
	} else {
		r.cCacheMiss.Inc()
	}
	if energySwaps > 0 {
		r.cSwaps.Add(float64(energySwaps))
	}
}

// BatchFlush implements Sink.
func (r *Recorder) BatchFlush(at sim.Time, size int, holdMS float64, reason string) {
	r.reg.Counter("poly_batch_groups_total", "Admission-batch groups by flush reason.",
		"reason", reason).Inc()
	r.reg.Histogram("poly_batch_size", "Admission-batch group sizes.").Observe(float64(size))
	r.reg.Histogram("poly_batch_hold_ms", "Mean staging hold per admission-batch group.").Observe(holdMS)
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "batch:" + reason, Cat: "batch", Phase: "i", Scope: "t",
		TS: us(at), PID: r.session, TID: tidRequests,
		Args: map[string]any{"size": size, "hold_ms": holdMS}})
	r.mu.Unlock()
}

// RequestShed implements Sink.
func (r *Recorder) RequestShed(at sim.Time) {
	r.reg.Counter("poly_requests_total", "", "outcome", "shed").Inc()
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "shed", Cat: "fault", Phase: "i", Scope: "t",
		TS: us(at), PID: r.session, TID: tidRequests})
	r.mu.Unlock()
}

// TaskRetry implements Sink.
func (r *Recorder) TaskRetry(device, kernel string, at sim.Time) {
	r.reg.Counter("poly_task_retries_total", "Kernel retries after device task failures.",
		"device", device).Inc()
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "retry:" + kernel, Cat: "fault", Phase: "i", Scope: "t",
		TS: us(at), PID: r.session, TID: r.boardTID(device),
		Args: map[string]any{"kernel": kernel}})
	r.mu.Unlock()
}

// BoardHealthChanged implements Sink.
func (r *Recorder) BoardHealthChanged(device, from, to string, at sim.Time) {
	r.reg.Counter("poly_board_health_transitions_total", "Board health-state transitions.",
		"device", device, "to", to).Inc()
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "health:" + to, Cat: "fault", Phase: "i", Scope: "t",
		TS: us(at), PID: r.session, TID: r.boardTID(device),
		Args: map[string]any{"from": from, "to": to}})
	r.mu.Unlock()
}

// GovernorTransition implements Sink.
func (r *Recorder) GovernorTransition(at sim.Time, from, to, cause string) {
	r.reg.Counter("poly_governor_transitions_total", "Governor mode changes by cause.",
		"from", from, "to", to, "cause", cause).Inc()
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "governor:" + to, Cat: "governor", Phase: "i", Scope: "p",
		TS: us(at), PID: r.session, TID: tidGovernor,
		Args: map[string]any{"from": from, "to": to, "cause": cause}})
	r.mu.Unlock()
}

// PowerSample implements Sink.
func (r *Recorder) PowerSample(at sim.Time, watts float64) {
	r.gPower.Set(watts)
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "power", Cat: "power", Phase: "C",
		TS: us(at), PID: r.session, TID: tidGovernor,
		Args: map[string]any{"watts": watts}})
	r.mu.Unlock()
}

// Launched implements Sink (the device.Observer subset).
func (r *Recorder) Launched(device, kernel, implID string, batch int, start, end sim.Time) {
	r.reg.Counter("poly_device_launches_total", "Physical launches per board.", "device", device).Inc()
	r.reg.Counter("poly_device_busy_ms_total", "Execution-busy milliseconds per board.", "device", device).
		Add(float64(end - start))
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: kernel, Cat: "kernel", Phase: "X",
		TS: us(start), Dur: us(end - start), PID: r.session, TID: r.boardTID(device),
		Args: map[string]any{"impl": implID, "batch": batch}})
	r.mu.Unlock()
}

// ReconfigStart implements Sink (the device.Observer subset).
func (r *Recorder) ReconfigStart(device, implID string, at sim.Time, stallMS float64, background bool) {
	mode := "foreground"
	if background {
		mode = "background"
	}
	r.reg.Counter("poly_device_reconfigs_total", "FPGA bitstream loads per board.",
		"device", device, "mode", mode).Inc()
	r.reg.Counter("poly_device_reconfig_stall_ms_total", "Milliseconds boards spent reconfiguring.",
		"device", device).Add(stallMS)
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "reconfig", Cat: "reconfig", Phase: "X",
		TS: us(at), Dur: stallMS * 1000, PID: r.session, TID: r.boardTID(device),
		Args: map[string]any{"impl": implID, "mode": mode}})
	r.mu.Unlock()
}

// DVFSChanged implements Sink (the device.Observer subset).
func (r *Recorder) DVFSChanged(device string, level int, at sim.Time) {
	r.reg.Gauge("poly_device_dvfs_level", "Current GPU DVFS ladder index.", "device", device).
		Set(float64(level))
	r.mu.Lock()
	r.trace.add(TraceEvent{Name: "dvfs", Cat: "dvfs", Phase: "i", Scope: "t",
		TS: us(at), PID: r.session, TID: r.boardTID(device),
		Args: map[string]any{"level": level}})
	r.mu.Unlock()
}

// TraceDropped reports how many trace events exceeded the buffer cap.
func (r *Recorder) TraceDropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace.dropped
}

// TraceEventCount reports the buffered trace event count.
func (r *Recorder) TraceEventCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.trace.events)
}

// WriteTrace renders the buffered timeline as Chrome trace-event JSON
// (load it at https://ui.perfetto.dev or chrome://tracing).
func (r *Recorder) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.trace.dropped; d > 0 {
		r.cDropped.Set(float64(d))
	}
	return r.trace.writeTrace(w)
}

// WritePrometheus renders the metric registry in the Prometheus text
// exposition format.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	return r.reg.WritePrometheus(w)
}

// MetricsHandler serves WritePrometheus over HTTP — mount it at /metrics
// on the pprof listener.
func (r *Recorder) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

var _ Sink = (*Recorder)(nil)
