// Package telemetry is Poly's runtime observability layer: a label-keyed
// metric registry (counters, gauges, fixed-bucket latency histograms), a
// bounded ring of per-request spans with a fixed stage-latency breakdown,
// per-resource allocated/allocatable accounting, an SLO burn-rate
// tracker, a QoS flight recorder, and exporters — Prometheus text
// exposition for a live /metrics endpoint and Chrome trace-event JSON
// dumps (Perfetto-loadable) of the simulated timeline.
//
// Determinism rule: every timestamp that enters this package is a
// sim.Time from the single-threaded discrete-event simulator, never wall
// clock, so a run's metrics and trace are bit-identical at any
// POLY_WORKERS pool size. The whole layer hangs off the nil-able Sink
// interface: a disabled sink costs the emitting layers only nil-checks,
// which is what keeps the telemetry-off serving path within noise of the
// un-instrumented one (BenchmarkServeSteadyState).
//
// The enabled path is budgeted too: one mutex acquisition per runtime
// event, per-board series pointers cached at registration, compact
// (map-free) trace events, and recycled spans keep
// BenchmarkServeTelemetryOn within 10% of telemetry-off (CI-gated).
// Derived series — utilization ratios, stage percentiles, SLO burn
// gauges — are synced lazily at scrape time, not per event.
package telemetry

import (
	"io"
	"net/http"
	"sync"

	"poly/internal/sim"
)

// Sink receives runtime events. *Recorder implements it; emitting layers
// hold a nil Sink when telemetry is disabled. The device-facing subsets
// (Launched/ReconfigStart/DVFSChanged, and BusyChanged/PowerChanged/
// BitstreamResident) structurally satisfy device.Observer and
// device.ResourceObserver, so one sink serves every layer.
type Sink interface {
	// BeginSession opens a new serving session (one server run). Each
	// session becomes one Perfetto process with its own board tracks.
	BeginSession(label string)
	// RegisterBoard declares a board of the current session; class is
	// "GPU" or "FPGA".
	RegisterBoard(name, class string)

	// RegisterNodeResource declares a node-level resource envelope
	// (ResComputeSlots, ResPowerW, ResFPGARegions) and its allocatable
	// capacity, creating the poly_node_{allocated,allocatable,
	// utilization_ratio} gauge set.
	RegisterNodeResource(resource string, allocatable float64)
	// RegisterBoardResource declares one board's share of a resource,
	// creating the per-board gauge variants.
	RegisterBoardResource(board, resource string, allocatable float64)

	// StartSpan opens a per-request span at admission; the runtime fills
	// plan fields and kernel records, then hands it back via FinishSpan.
	StartSpan(at sim.Time, boundMS float64) *Span
	// FinishSpan records a completed request: ring, latency and stage
	// histograms, outcome counters, SLO burn tracking, and a violation
	// instant on the trace (a measured violation also trips the flight
	// recorder).
	FinishSpan(sp *Span, at sim.Time)
	// PlanError counts a request dropped at planning time.
	PlanError(at sim.Time)
	// PlanUpdate records one planning outcome: plan-cache hit/miss and
	// the plan's Step-2 energy swap count.
	PlanUpdate(cacheHit bool, energySwaps int)

	// BatchFlush records one admission-batch group leaving the staging
	// stage: its size, the mean time its members were held, and why it
	// flushed ("full", "maxwait") or dissolved ("disband").
	BatchFlush(at sim.Time, size int, holdMS float64, reason string)

	// RequestShed counts a request rejected by admission control because
	// the degraded node could not meet the latency bound.
	RequestShed(at sim.Time)
	// TaskRetry records one kernel-level retry after a device task
	// failure: the board that lost the task and the kernel re-placed.
	TaskRetry(device, kernel string, at sim.Time)
	// BoardHealthChanged records a board health-state transition
	// (healthy, suspect, down) made by the runtime's monitor. A
	// transition to down trips the flight recorder.
	BoardHealthChanged(device, from, to string, at sim.Time)

	// GovernorTransition records a governor mode change and its cause.
	GovernorTransition(at sim.Time, from, to, cause string)
	// PowerSample records the node's instantaneous power draw.
	PowerSample(at sim.Time, watts float64)

	// Launched records one physical execution on a board: a (possibly
	// batched) GPU launch or one FPGA task.
	Launched(device, kernel, implID string, batch int, start, end sim.Time)
	// ReconfigStart records an FPGA bitstream load and its stall span.
	ReconfigStart(device, implID string, at sim.Time, stallMS float64, background bool)
	// DVFSChanged records a GPU operating-point change.
	DVFSChanged(device string, level int, at sim.Time)

	// BusyChanged records a board's in-flight task count (compute-slot
	// occupancy); PowerChanged its instantaneous draw; BitstreamResident
	// the bitstream occupying an FPGA's region ("" = blank). Together
	// these drive the resource-accounting gauges.
	BusyChanged(device string, busy int, at sim.Time)
	PowerChanged(device string, watts float64, at sim.Time)
	BitstreamResident(device, implID string, at sim.Time)
}

// Options tunes a Recorder.
type Options struct {
	// SpanRingCap bounds the retained finished spans (default 1024).
	// Evicted spans are recycled, so snapshots from Spans() are only
	// valid until the ring wraps past them.
	SpanRingCap int
	// TraceEventCap bounds the trace buffer (default 1<<20 events);
	// overflow increments poly_trace_events_dropped_total.
	TraceEventCap int
	// MetricsOnly disables the trace buffer, flight recorder, and
	// per-session Perfetto tracks, leaving only the metric registry and
	// span ring. In this mode the recorder is safe to share across
	// concurrently-running sessions (a parallel polybench sweep):
	// counters and histograms accumulate correctly from any worker;
	// gauges are last-writer-wins.
	MetricsOnly bool
	// FlightRingCap bounds the flight-recorder ring (default 8192
	// events, oldest overwritten).
	FlightRingCap int
	// FlightWindowMS is how much trailing simulated time a flight dump
	// keeps before the trigger (default 2000 ms).
	FlightWindowMS float64
	// SLOTarget is the violation budget the burn rate is measured
	// against (default 0.01 — a 1% violation ratio burns at rate 1.0).
	SLOTarget float64
	// SLOShortWindowMS / SLOLongWindowMS are the two sliding windows
	// (defaults 5000 ms and 60000 ms).
	SLOShortWindowMS float64
	SLOLongWindowMS  float64
	// SLOBurnThreshold trips the burn alert when both windows exceed it
	// (default 2.0); the alert clears with 2:1 hysteresis.
	SLOBurnThreshold float64
}

func (o *Options) withDefaults() {
	if o.SpanRingCap <= 0 {
		o.SpanRingCap = 1024
	}
	if o.TraceEventCap <= 0 {
		o.TraceEventCap = 1 << 20
	}
	if o.FlightRingCap <= 0 {
		o.FlightRingCap = 8192
	}
	if o.FlightWindowMS <= 0 {
		o.FlightWindowMS = 2000
	}
	if o.SLOTarget <= 0 {
		o.SLOTarget = 0.01
	}
	if o.SLOShortWindowMS <= 0 {
		o.SLOShortWindowMS = 5000
	}
	if o.SLOLongWindowMS <= 0 {
		o.SLOLongWindowMS = 60000
	}
	if o.SLOBurnThreshold <= 0 {
		o.SLOBurnThreshold = 2.0
	}
}

// boardState caches everything the hot path needs for one board: its
// Perfetto track, its metric series pointers (resolved once at
// registration instead of per event), and its raw resource occupancy.
type boardState struct {
	name  string
	class string
	tid   int32

	label int32 // interned "name (class)" track label

	launches, busyMS       *Metric
	queueHist, serviceHist *Metric
	dvfs                   *Metric
	reconfigFG, reconfigBG *Metric
	reconfigStall          *Metric
	execs                  map[string]*Metric // kernel → exec counter

	res    [numResources]resVals
	resOn  [numResources]bool
	gauges [numResources]resGauges
}

// Recorder is the standard Sink: it feeds the registry, the span ring,
// the trace buffer, the flight recorder, and the SLO tracker. Safe for
// concurrent use (the /metrics listener reads while the simulation
// records); each runtime event takes the recorder mutex exactly once.
type Recorder struct {
	mu    sync.Mutex
	reg   *Registry
	spans *SpanRing
	trace *traceBuf
	tab   *strtab
	in    fixedIDs
	opts  Options

	session   int // current Perfetto pid; 0 before BeginSession
	boards    map[string]*boardState
	boardList []*boardState // registration order, for deterministic output
	nextTID   int
	nextSpan  uint64
	spanFree  []*Span // recycled ring evictions

	slo        *sloTracker
	flight     *flightRing
	flightSnap *flightSnapshot

	nodeRes    [numResources]resVals
	nodeResOn  [numResources]bool
	nodeGauges [numResources]resGauges

	stageSamples [NumStages]sim.Sample
	stageHists   [NumStages]*Metric
	stageP50     [NumStages]*Metric
	stageP95     [NumStages]*Metric
	stageP99     [NumStages]*Metric

	// cached hot-path series
	cOK, cViolation, cWarmup, cDroppedReq, cShed *Metric
	cPlanErr                                     *Metric
	cCacheHit, cCacheMiss, cSwaps                *Metric
	hLatency, hAdmitWait                         *Metric
	gPower, gInflightSpans                       *Metric
	cDropped                                     *Metric
	cBatchFull, cBatchMaxwait, cBatchDisband     *Metric
	hBatchSize, hBatchHold                       *Metric
	gBurnShort, gBurnLong                        *Metric
	gVioShort, gVioLong                          *Metric
	gBurnAlert, cBurnTrips                       *Metric
}

// fixedIDs caches the strtab ids of every constant event string, so
// hot-path emission is pure field assembly — no map probes for names
// that never change.
type fixedIDs struct {
	processName, threadName int32
	governor, requests      int32
	violation, planError    int32
	shed, power, dvfs       int32
	reconfig, admit         int32
	sloBurn, flightTrigger  int32
	trip, flightProcess     int32
	modeFG, modeBG          int32
}

// New returns a Recorder with default options.
func New() *Recorder { return NewWithOptions(Options{}) }

// NewWithOptions returns a Recorder with explicit bounds.
func NewWithOptions(o Options) *Recorder {
	o.withDefaults()
	r := &Recorder{
		spans:  NewSpanRing(o.SpanRingCap),
		boards: make(map[string]*boardState),
		opts:   o,
		slo: newSLOTracker(o.SLOTarget, o.SLOShortWindowMS, o.SLOLongWindowMS,
			o.SLOBurnThreshold),
	}
	r.reg = newSharedRegistry(&r.mu)
	r.tab = newStrtab()
	r.in = fixedIDs{
		processName:   r.tab.id("process_name"),
		threadName:    r.tab.id("thread_name"),
		governor:      r.tab.id("governor"),
		requests:      r.tab.id("requests"),
		violation:     r.tab.id("violation"),
		planError:     r.tab.id("plan_error"),
		shed:          r.tab.id("shed"),
		power:         r.tab.id("power"),
		dvfs:          r.tab.id("dvfs"),
		reconfig:      r.tab.id("reconfig"),
		admit:         r.tab.id("admit"),
		sloBurn:       r.tab.id("slo_burn"),
		flightTrigger: r.tab.id("flight_trigger"),
		trip:          r.tab.id("trip"),
		flightProcess: r.tab.id("flight recorder"),
		modeFG:        r.tab.id(modeForeground),
		modeBG:        r.tab.id(modeBackground),
	}
	if !o.MetricsOnly {
		r.trace = newTraceBuf(o.TraceEventCap)
		r.flight = newFlightRing(o.FlightRingCap)
	}
	r.cOK = r.reg.Counter("poly_requests_total", "Finished requests by outcome.", "outcome", "ok")
	r.cViolation = r.reg.Counter("poly_requests_total", "", "outcome", "violation")
	r.cWarmup = r.reg.Counter("poly_requests_total", "", "outcome", "warmup")
	r.cDroppedReq = r.reg.Counter("poly_requests_total", "", "outcome", "dropped")
	r.cShed = r.reg.Counter("poly_requests_total", "", "outcome", "shed")
	r.cPlanErr = r.reg.Counter("poly_plan_errors_total", "Requests dropped because planning failed.")
	r.cCacheHit = r.reg.Counter("poly_plan_cache_hits_total", "Plans served from the plan cache.")
	r.cCacheMiss = r.reg.Counter("poly_plan_cache_misses_total", "Plans computed cold.")
	r.cSwaps = r.reg.Counter("poly_energy_swaps_total", "Step-2 energy implementation swaps across plans.")
	r.hLatency = r.reg.Histogram("poly_request_latency_ms", "End-to-end request latency (post-warmup).")
	r.hAdmitWait = r.reg.Histogram("poly_admit_wait_ms", "Admission to first kernel start.")
	for i := 0; i < NumStages; i++ {
		r.stageHists[i] = r.reg.Histogram("poly_stage_latency_ms",
			"Per-stage request latency breakdown (stages sum to end-to-end latency).",
			"stage", StageNames[i])
	}
	for i := 0; i < NumStages; i++ {
		r.stageP50[i] = r.reg.Gauge("poly_stage_latency_pctl_ms",
			"Exact per-stage latency percentiles over the measured population.",
			"stage", StageNames[i], "q", "p50")
		r.stageP95[i] = r.reg.Gauge("poly_stage_latency_pctl_ms", "",
			"stage", StageNames[i], "q", "p95")
		r.stageP99[i] = r.reg.Gauge("poly_stage_latency_pctl_ms", "",
			"stage", StageNames[i], "q", "p99")
	}
	r.gPower = r.reg.Gauge("poly_power_watts", "Node accelerator power at the last sample.")
	r.gInflightSpans = r.reg.Gauge("poly_spans_inflight", "Spans started but not finished.")
	r.cDropped = r.reg.Counter("poly_trace_events_dropped_total", "Trace events over the buffer cap.")
	r.cBatchFull = r.reg.Counter("poly_batch_groups_total", "Admission-batch groups by flush reason.", "reason", "full")
	r.cBatchMaxwait = r.reg.Counter("poly_batch_groups_total", "", "reason", "maxwait")
	r.cBatchDisband = r.reg.Counter("poly_batch_groups_total", "", "reason", "disband")
	r.hBatchSize = r.reg.Histogram("poly_batch_size", "Admission-batch group sizes.")
	r.hBatchHold = r.reg.Histogram("poly_batch_hold_ms", "Mean staging hold per admission-batch group.")
	r.gBurnShort = r.reg.Gauge("poly_slo_burn_rate", "QoS-violation burn rate (violation ratio over target) per sliding window.", "window", "short")
	r.gBurnLong = r.reg.Gauge("poly_slo_burn_rate", "", "window", "long")
	r.gVioShort = r.reg.Gauge("poly_slo_violation_ratio", "QoS-violation ratio per sliding window.", "window", "short")
	r.gVioLong = r.reg.Gauge("poly_slo_violation_ratio", "", "window", "long")
	r.gBurnAlert = r.reg.Gauge("poly_slo_burn_alert", "1 while both burn-rate windows exceed the trip threshold.")
	r.cBurnTrips = r.reg.Counter("poly_slo_burn_trips_total", "Burn-rate alert activations.")
	return r
}

// Registry exposes the metric registry (for exporters and tests).
func (r *Recorder) Registry() *Registry { return r.reg }

// Spans returns the retained finished spans, oldest first. The snapshot
// aliases live ring entries: it is only valid until enough newer
// requests finish to wrap the ring and recycle its spans.
func (r *Recorder) Spans() []*Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.Snapshot()
}

// SpanTotal returns how many spans finished over the recorder's lifetime.
func (r *Recorder) SpanTotal() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans.Total()
}

// BeginSession implements Sink.
func (r *Recorder) BeginSession(label string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.session++
	if r.opts.MetricsOnly {
		// Sessions may run concurrently against one recorder here; board
		// state persists (same names resolve to the same series) and no
		// per-session tracks exist.
		return
	}
	r.nextTID = tidFirstBoard
	clear(r.boards)
	r.boardList = r.boardList[:0]
	// A new session restarts the simulated clock; burn-rate windows and
	// stage-percentile populations from the previous timeline must not
	// bleed into it. (MetricsOnly mode never resets: concurrent sessions
	// there share one recorder, and the SLO windows assume whatever
	// coherent clock the caller provides.)
	r.slo.reset()
	for i := range r.stageSamples {
		r.stageSamples[i].Reset()
	}
	r.trace.add(traceEv{kind: evMetaProcess, name: r.in.processName, pid: int32(r.session), s1: r.tab.id(label)})
	r.trace.add(traceEv{kind: evMetaThread, name: r.in.threadName, pid: int32(r.session), tid: tidGovernor, s1: r.in.governor})
	r.trace.add(traceEv{kind: evMetaThread, name: r.in.threadName, pid: int32(r.session), tid: tidRequests, s1: r.in.requests})
}

// ensureBoardLocked resolves (or creates) a board's cached state.
func (r *Recorder) ensureBoardLocked(name, class string) *boardState {
	if bs, ok := r.boards[name]; ok {
		if bs.class == "" && class != "" {
			bs.class = class
			bs.label = r.tab.id(name + " (" + class + ")")
		}
		return bs
	}
	tid := r.nextTID
	if tid < tidFirstBoard {
		tid = tidFirstBoard
	}
	r.nextTID = tid + 1
	bs := &boardState{name: name, class: class, tid: int32(tid),
		label: r.tab.id(name + " (" + class + ")"),
		execs: make(map[string]*Metric)}
	bs.launches = r.reg.getLocked("poly_device_launches_total", "Physical launches per board.",
		kindCounter, Labels{"device", name})
	bs.busyMS = r.reg.getLocked("poly_device_busy_ms_total", "Execution-busy milliseconds per board.",
		kindCounter, Labels{"device", name})
	bs.queueHist = r.reg.getLocked("poly_kernel_queue_ms", "Per-kernel device queue wait.",
		kindHistogram, Labels{"device", name})
	bs.serviceHist = r.reg.getLocked("poly_kernel_service_ms", "Per-kernel execution span.",
		kindHistogram, Labels{"device", name})
	bs.dvfs = r.reg.getLocked("poly_device_dvfs_level", "Current GPU DVFS ladder index.",
		kindGauge, Labels{"device", name})
	r.boards[name] = bs
	r.boardList = append(r.boardList, bs)
	return bs
}

// boardLocked is ensureBoardLocked for event paths that may see a board
// the runtime never registered.
func (r *Recorder) boardLocked(name string) *boardState {
	return r.ensureBoardLocked(name, "")
}

// RegisterBoard implements Sink.
func (r *Recorder) RegisterBoard(name, class string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.session == 0 {
		r.session = 1 // boards registered without an explicit session
	}
	known := r.boards[name] != nil
	bs := r.ensureBoardLocked(name, class)
	if class == "FPGA" && bs.reconfigFG == nil {
		bs.reconfigFG = r.reg.getLocked("poly_device_reconfigs_total", "FPGA bitstream loads per board.",
			kindCounter, Labels{"device", name, "mode", "foreground"})
		bs.reconfigBG = r.reg.getLocked("poly_device_reconfigs_total", "",
			kindCounter, Labels{"device", name, "mode", "background"})
		bs.reconfigStall = r.reg.getLocked("poly_device_reconfig_stall_ms_total",
			"Milliseconds boards spent reconfiguring.", kindCounter, Labels{"device", name})
	}
	if known || r.opts.MetricsOnly {
		return
	}
	r.trace.add(traceEv{kind: evMetaThread, name: r.in.threadName, pid: int32(r.session),
		tid: bs.tid, s1: bs.label})
}

// us converts simulated milliseconds to trace microseconds.
func us(t sim.Time) float64 { return float64(t) * 1000 }

// emitLocked appends a compact event to the trace buffer and the flight
// ring. Callers hold r.mu.
func (r *Recorder) emitLocked(e traceEv) {
	if r.trace == nil {
		return
	}
	r.trace.add(e)
	r.flight.add(e)
}

// StartSpan implements Sink.
func (r *Recorder) StartSpan(at sim.Time, boundMS float64) *Span {
	r.mu.Lock()
	r.nextSpan++
	var sp *Span
	if n := len(r.spanFree); n > 0 {
		sp = r.spanFree[n-1]
		r.spanFree = r.spanFree[:n-1]
		sp.reset(r.nextSpan, float64(at), boundMS)
	} else {
		sp = &Span{ID: r.nextSpan, ArrivedMS: float64(at), BoundMS: boundMS}
	}
	r.gInflightSpans.val++
	if r.flight != nil {
		// Admissions are flight-only: too hot for the main trace buffer,
		// exactly what a post-incident dump needs.
		r.flight.add(traceEv{kind: evAdmit, name: r.in.admit, ts: us(at),
			pid: int32(r.session), tid: tidRequests, i1: int64(sp.ID), f1: boundMS})
	}
	r.mu.Unlock()
	return sp
}

// FinishSpan implements Sink.
func (r *Recorder) FinishSpan(sp *Span, at sim.Time) {
	if !sp.Dropped {
		sp.ComputeStages()
	}
	r.mu.Lock()
	r.gInflightSpans.val--
	switch {
	case sp.Dropped:
		r.cDroppedReq.incLocked()
	case !sp.Measured:
		r.cWarmup.incLocked()
	case sp.Violation:
		r.cViolation.incLocked()
	default:
		r.cOK.incLocked()
	}
	if sp.Measured {
		r.hLatency.observeLocked(sp.LatencyMS)
		r.hAdmitWait.observeLocked(sp.AdmitWaitMS())
		for i := 0; i < NumStages; i++ {
			v := sp.Stages.Get(i)
			r.stageHists[i].observeLocked(v)
			r.stageSamples[i].Add(v)
		}
	}
	if !sp.Dropped {
		for _, k := range sp.Kernels {
			if k.EndMS <= k.StartMS {
				continue // failed attempt; its retry record carries the stats
			}
			bs := r.boardLocked(k.Device)
			bs.queueHist.observeLocked(k.QueueMS())
			bs.serviceHist.observeLocked(k.ServiceMS())
			c := bs.execs[k.Kernel]
			if c == nil {
				c = r.reg.getLocked("poly_kernel_execs_total", "Kernel executions by placement.",
					kindCounter, Labels{"device", k.Device, "kernel", k.Kernel})
				bs.execs[k.Kernel] = c
			}
			c.incLocked()
		}
	}
	if sp.Measured {
		if trip, short, long := r.slo.observe(float64(at), sp.Violation); trip {
			r.cBurnTrips.incLocked()
			r.emitLocked(traceEv{kind: evSLOBurn, name: r.in.sloBurn, ts: us(at),
				pid: int32(r.session), tid: tidGovernor, f1: short, f2: long, s1: r.in.trip})
		}
	}
	if sp.Violation {
		r.emitLocked(traceEv{kind: evViolation, name: r.in.violation, ts: us(at),
			pid: int32(r.session), tid: tidRequests,
			f1: sp.LatencyMS, f2: sp.BoundMS, i1: int64(sp.ID)})
		if sp.Measured {
			r.flightTripLocked("violation", at)
		}
	}
	if old := r.spans.PushEvict(sp); old != nil {
		r.spanFree = append(r.spanFree, old)
	}
	r.mu.Unlock()
}

// PlanError implements Sink.
func (r *Recorder) PlanError(at sim.Time) {
	r.mu.Lock()
	r.cPlanErr.incLocked()
	r.emitLocked(traceEv{kind: evPlanError, name: r.in.planError, ts: us(at),
		pid: int32(r.session), tid: tidRequests})
	r.mu.Unlock()
}

// PlanUpdate implements Sink.
func (r *Recorder) PlanUpdate(cacheHit bool, energySwaps int) {
	r.mu.Lock()
	if cacheHit {
		r.cCacheHit.incLocked()
	} else {
		r.cCacheMiss.incLocked()
	}
	if energySwaps > 0 {
		r.cSwaps.addLocked(float64(energySwaps))
	}
	r.mu.Unlock()
}

// BatchFlush implements Sink.
func (r *Recorder) BatchFlush(at sim.Time, size int, holdMS float64, reason string) {
	r.mu.Lock()
	switch reason {
	case "full":
		r.cBatchFull.incLocked()
	case "maxwait":
		r.cBatchMaxwait.incLocked()
	case "disband":
		r.cBatchDisband.incLocked()
	default:
		r.reg.getLocked("poly_batch_groups_total", "", kindCounter,
			Labels{"reason", reason}).incLocked()
	}
	r.hBatchSize.observeLocked(float64(size))
	r.hBatchHold.observeLocked(holdMS)
	r.emitLocked(traceEv{kind: evBatch, name: r.tab.id(batchEventName(reason)), ts: us(at),
		pid: int32(r.session), tid: tidRequests, i1: int64(size), f1: holdMS})
	r.mu.Unlock()
}

// RequestShed implements Sink.
func (r *Recorder) RequestShed(at sim.Time) {
	r.mu.Lock()
	r.cShed.incLocked()
	r.emitLocked(traceEv{kind: evShed, name: r.in.shed, ts: us(at),
		pid: int32(r.session), tid: tidRequests})
	r.mu.Unlock()
}

// TaskRetry implements Sink.
func (r *Recorder) TaskRetry(device, kernel string, at sim.Time) {
	r.mu.Lock()
	bs := r.boardLocked(device)
	r.reg.getLocked("poly_task_retries_total", "Kernel retries after device task failures.",
		kindCounter, Labels{"device", device}).incLocked()
	r.emitLocked(traceEv{kind: evRetry, name: r.tab.id("retry:" + kernel), ts: us(at),
		pid: int32(r.session), tid: bs.tid, s1: r.tab.id(kernel)})
	r.mu.Unlock()
}

// BoardHealthChanged implements Sink.
func (r *Recorder) BoardHealthChanged(device, from, to string, at sim.Time) {
	r.mu.Lock()
	bs := r.boardLocked(device)
	r.reg.getLocked("poly_board_health_transitions_total", "Board health-state transitions.",
		kindCounter, Labels{"device", device, "to", to}).incLocked()
	r.emitLocked(traceEv{kind: evHealth, name: r.tab.id(healthEventName(to)), ts: us(at),
		pid: int32(r.session), tid: bs.tid, s1: r.tab.id(from), s2: r.tab.id(to)})
	if to == "down" {
		r.flightTripLocked("board_down", at)
	}
	r.mu.Unlock()
}

// GovernorTransition implements Sink.
func (r *Recorder) GovernorTransition(at sim.Time, from, to, cause string) {
	r.mu.Lock()
	r.reg.getLocked("poly_governor_transitions_total", "Governor mode changes by cause.",
		kindCounter, Labels{"from", from, "to", to, "cause", cause}).incLocked()
	r.emitLocked(traceEv{kind: evGovernor, name: r.tab.id(governorEventName(to)), ts: us(at),
		pid: int32(r.session), tid: tidGovernor,
		s1: r.tab.id(from), s2: r.tab.id(to), s3: r.tab.id(cause)})
	r.mu.Unlock()
}

// PowerSample implements Sink.
func (r *Recorder) PowerSample(at sim.Time, watts float64) {
	r.mu.Lock()
	r.gPower.setLocked(watts)
	r.emitLocked(traceEv{kind: evPower, name: r.in.power, ts: us(at),
		pid: int32(r.session), tid: tidGovernor, f1: watts})
	r.mu.Unlock()
}

// Launched implements Sink (the device.Observer subset).
func (r *Recorder) Launched(device, kernel, implID string, batch int, start, end sim.Time) {
	r.mu.Lock()
	bs := r.boardLocked(device)
	bs.launches.incLocked()
	bs.busyMS.addLocked(float64(end - start))
	r.emitLocked(traceEv{kind: evKernel, name: r.tab.id(kernel), s1: r.tab.id(implID),
		i1: int64(batch), ts: us(start), dur: us(end - start), pid: int32(r.session), tid: bs.tid})
	r.mu.Unlock()
}

const (
	modeForeground = "foreground"
	modeBackground = "background"
)

// ReconfigStart implements Sink (the device.Observer subset).
func (r *Recorder) ReconfigStart(device, implID string, at sim.Time, stallMS float64, background bool) {
	r.mu.Lock()
	bs := r.boardLocked(device)
	if bs.reconfigFG == nil {
		bs.reconfigFG = r.reg.getLocked("poly_device_reconfigs_total", "FPGA bitstream loads per board.",
			kindCounter, Labels{"device", device, "mode", modeForeground})
		bs.reconfigBG = r.reg.getLocked("poly_device_reconfigs_total", "",
			kindCounter, Labels{"device", device, "mode", modeBackground})
		bs.reconfigStall = r.reg.getLocked("poly_device_reconfig_stall_ms_total",
			"Milliseconds boards spent reconfiguring.", kindCounter, Labels{"device", device})
	}
	mode := r.in.modeFG
	if background {
		mode = r.in.modeBG
		bs.reconfigBG.incLocked()
	} else {
		bs.reconfigFG.incLocked()
	}
	bs.reconfigStall.addLocked(stallMS)
	r.emitLocked(traceEv{kind: evReconfig, name: r.in.reconfig, ts: us(at), dur: stallMS * 1000,
		pid: int32(r.session), tid: bs.tid, s1: r.tab.id(implID), s2: mode})
	r.mu.Unlock()
}

// DVFSChanged implements Sink (the device.Observer subset).
func (r *Recorder) DVFSChanged(device string, level int, at sim.Time) {
	r.mu.Lock()
	bs := r.boardLocked(device)
	bs.dvfs.setLocked(float64(level))
	r.emitLocked(traceEv{kind: evDVFS, name: r.in.dvfs, ts: us(at),
		pid: int32(r.session), tid: bs.tid, i1: int64(level)})
	r.mu.Unlock()
}

// TraceDropped reports how many trace events exceeded the buffer cap.
func (r *Recorder) TraceDropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		return 0
	}
	return r.trace.dropped
}

// TraceEventCount reports the buffered trace event count.
func (r *Recorder) TraceEventCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		return 0
	}
	return r.trace.n
}

// WriteTrace renders the buffered timeline as Chrome trace-event JSON
// (load it at https://ui.perfetto.dev or chrome://tracing).
func (r *Recorder) WriteTrace(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.trace == nil {
		return writeTraceEvents(w, r.tab)
	}
	if d := r.trace.dropped; d > 0 {
		r.cDropped.setLocked(float64(d))
	}
	return r.trace.writeTrace(w, r.tab)
}

// syncDerivedLocked refreshes every scrape-time series: resource
// utilization gauges, stage percentile gauges, SLO burn gauges, and the
// trace-drop counter. Doing this once per scrape keeps the per-event
// recording path flat.
func (r *Recorder) syncDerivedLocked() {
	r.syncResourcesLocked()
	for i := 0; i < NumStages; i++ {
		s := &r.stageSamples[i]
		if s.Count() == 0 {
			continue
		}
		r.stageP50[i].setLocked(s.Percentile(50))
		r.stageP95[i].setLocked(s.Percentile(95))
		r.stageP99[i].setLocked(s.Percentile(99))
	}
	shortBurn, longBurn, shortVio, longVio := r.slo.rates()
	r.gBurnShort.setLocked(shortBurn)
	r.gBurnLong.setLocked(longBurn)
	r.gVioShort.setLocked(shortVio)
	r.gVioLong.setLocked(longVio)
	if r.slo.alerting {
		r.gBurnAlert.setLocked(1)
	} else {
		r.gBurnAlert.setLocked(0)
	}
	if r.trace != nil && r.trace.dropped > 0 {
		r.cDropped.setLocked(float64(r.trace.dropped))
	}
}

// WritePrometheus renders the metric registry in the Prometheus text
// exposition format, refreshing derived gauges first.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncDerivedLocked()
	return r.reg.writeLocked(w)
}

// MetricsHandler serves WritePrometheus over HTTP — mount it at /metrics
// on the pprof listener.
func (r *Recorder) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

var _ Sink = (*Recorder)(nil)
