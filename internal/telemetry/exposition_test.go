package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildExpositionRecorder drives one deterministic event of every kind
// through a full Recorder, so the exposition exercises every family the
// package exports: request outcomes, stage breakdowns, resource triples,
// SLO burn gauges, flight triggers, and the per-board device series.
func buildExpositionRecorder() *Recorder {
	r := NewWithOptions(Options{SLOTarget: 0.1, SLOShortWindowMS: 100, SLOLongWindowMS: 1000})
	r.BeginSession("golden")
	r.RegisterBoard("gpu0", "GPU")
	r.RegisterBoard("fpga0", "FPGA")
	r.RegisterNodeResource(ResComputeSlots, 2)
	r.RegisterNodeResource(ResPowerW, 300)
	r.RegisterNodeResource(ResFPGARegions, 1)
	r.RegisterBoardResource("gpu0", ResComputeSlots, 1)
	r.RegisterBoardResource("gpu0", ResPowerW, 200)
	r.RegisterBoardResource("fpga0", ResComputeSlots, 1)
	r.RegisterBoardResource("fpga0", ResPowerW, 100)
	r.RegisterBoardResource("fpga0", ResFPGARegions, 1)

	r.BusyChanged("gpu0", 1, 1)
	r.PowerChanged("gpu0", 150, 1)
	r.PowerChanged("fpga0", 30, 1)
	r.BitstreamResident("fpga0", "fft.v1", 2)
	r.PowerSample(2, 180)
	r.Launched("gpu0", "mfcc", "mfcc.cuda", 2, 3, 5)
	r.Launched("fpga0", "fft", "fft.v1", 1, 4, 9)
	r.ReconfigStart("fpga0", "fft.v1", 4, 10, false)
	r.DVFSChanged("gpu0", 2, 5)
	r.GovernorTransition(6, "nominal", "boost", "latency_pressure")
	r.TaskRetry("gpu0", "mfcc", 7)
	r.BoardHealthChanged("gpu0", "healthy", "suspect", 8)
	r.PlanUpdate(true, 0)
	r.PlanUpdate(false, 2)
	r.PlanError(9)
	r.RequestShed(9)
	r.BatchFlush(10, 3, 1.5, "full")

	finish := func(arrive, latency float64, measured, violation bool) {
		sp := r.StartSpan(ms(arrive), 50)
		k := sp.AddKernel("mfcc", "gpu0", "mfcc.cuda", arrive)
		k.StartMS, k.EndMS = arrive+1, arrive+4
		sp.AddTransfer(arrive+4, arrive+5)
		sp.Measured = measured
		sp.Violation = violation
		sp.LatencyMS = latency
		r.FinishSpan(sp, ms(arrive+latency))
	}
	finish(10, 15, false, false) // warmup
	finish(30, 20, true, false)  // ok
	finish(50, 60, true, true)   // measured violation: trips the flight recorder
	return r
}

// TestExpositionGolden pins the full recorder's /metrics output byte for
// byte — including the resource gauge triples, the SLO burn families,
// and the stage breakdown — against testdata/exposition_golden.txt.
// Regenerate with `go test ./internal/telemetry -run ExpositionGolden -update`.
func TestExpositionGolden(t *testing.T) {
	r := buildExpositionRecorder()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition_golden.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	for _, fam := range []string{
		"poly_node_allocated", "poly_node_allocatable", "poly_node_utilization_ratio",
		"poly_board_allocated", "poly_board_allocatable", "poly_board_utilization_ratio",
		"poly_slo_burn_rate", "poly_slo_violation_ratio", "poly_slo_burn_alert",
		"poly_slo_burn_trips_total", "poly_flight_triggers_total",
		"poly_stage_latency_ms", "poly_stage_latency_pctl_ms",
	} {
		if !strings.Contains(buf.String(), "# TYPE "+fam+" ") {
			t.Errorf("exposition is missing family %s", fam)
		}
	}
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z_0-9:]*$`)

// TestExpositionFormat is a promlint-style validation of the text
// exposition (format 0.0.4): it parses the output structurally rather
// than byte-comparing, so it holds for any event mix — naming rules,
// HELP/TYPE placement, histogram bucket monotonicity, series uniqueness,
// and [0,1] bounds on the ratio gauges.
func TestExpositionFormat(t *testing.T) {
	r := buildExpositionRecorder()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	type histState struct {
		lastCum  float64
		lastLe   float64
		sawInf   bool
		infCum   float64
		count    float64
		sawCount bool
	}
	var (
		curFamily   string
		curKind     string
		pendingHelp string
		families    = map[string]bool{}
		series      = map[string]bool{}
		hists       = map[string]*histState{}
	)
	lineNo := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		fatal := func(format string, args ...any) {
			t.Helper()
			t.Fatalf("line %d: %s\n  %s", lineNo, fmt.Sprintf(format, args...), line)
		}
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			fam, _, _ := strings.Cut(name, " ")
			if pendingHelp != "" {
				fatal("HELP %s not followed by its TYPE", pendingHelp)
			}
			pendingHelp = fam
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam, kind, found := strings.Cut(rest, " ")
			if !found {
				fatal("TYPE line without a kind")
			}
			if pendingHelp != "" && pendingHelp != fam {
				fatal("HELP %s followed by TYPE %s", pendingHelp, fam)
			}
			pendingHelp = ""
			if families[fam] {
				fatal("family %s declared twice", fam)
			}
			families[fam] = true
			if !metricNameRe.MatchString(fam) {
				fatal("invalid metric name %q", fam)
			}
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				fatal("unknown TYPE kind %q", kind)
			}
			if kind == "counter" && !strings.HasSuffix(fam, "_total") {
				fatal("counter family %s does not end in _total", fam)
			}
			if kind != "counter" && strings.HasSuffix(fam, "_total") {
				fatal("non-counter family %s ends in _total", fam)
			}
			curFamily, curKind = fam, kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			fatal("unknown comment form")
		}
		if pendingHelp != "" {
			fatal("sample before the TYPE of %s", pendingHelp)
		}

		// Sample line: name{labels} value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			fatal("malformed sample")
		}
		name := line[:nameEnd]
		rest := line[nameEnd:]
		labels := ""
		if rest[0] == '{' {
			end := strings.IndexByte(rest, '}')
			if end < 0 {
				fatal("unterminated label set")
			}
			labels = rest[:end+1]
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			fatal("unparseable value %q: %v", valStr, err)
		}
		if !metricNameRe.MatchString(name) {
			fatal("invalid sample name %q", name)
		}
		if curFamily == "" {
			fatal("sample before any TYPE declaration")
		}
		key := name + labels
		if series[key] {
			fatal("duplicate series %s", key)
		}
		series[key] = true

		switch curKind {
		case "counter", "gauge":
			if name != curFamily {
				fatal("sample %s under family %s", name, curFamily)
			}
			if curKind == "counter" && val < 0 {
				fatal("negative counter value %v", val)
			}
			if strings.HasSuffix(name, "_ratio") && (val < 0 || val > 1) {
				fatal("ratio gauge out of [0,1]: %v", val)
			}
		case "histogram":
			base, suffix := name, ""
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				if b, ok := strings.CutSuffix(name, s); ok {
					base, suffix = b, s
					break
				}
			}
			if base != curFamily || suffix == "" {
				fatal("sample %s under histogram family %s", name, curFamily)
			}
			// Histogram series identity is the label set minus `le`.
			id := base + stripLe(t, labels)
			h := hists[id]
			if h == nil {
				h = &histState{lastLe: -1}
				hists[id] = h
			}
			switch suffix {
			case "_bucket":
				leStr := extractLe(t, labels)
				if leStr == "" {
					fatal("bucket without le label")
				}
				le := parseLe(t, leStr)
				if h.sawInf {
					fatal("bucket after +Inf")
				}
				if le <= h.lastLe {
					fatal("le bounds not increasing (%v after %v)", le, h.lastLe)
				}
				if val < h.lastCum {
					fatal("bucket counts not cumulative (%v after %v)", val, h.lastCum)
				}
				h.lastLe, h.lastCum = le, val
				if leStr == "+Inf" {
					h.sawInf = true
					h.infCum = val
				}
			case "_count":
				h.count = val
				h.sawCount = true
			}
		}
	}
	for id, h := range hists {
		if !h.sawInf {
			t.Errorf("histogram %s has no +Inf bucket", id)
		}
		if !h.sawCount {
			t.Errorf("histogram %s has no _count", id)
		} else if h.count != h.infCum {
			t.Errorf("histogram %s: _count %v != +Inf bucket %v", id, h.count, h.infCum)
		}
	}
}

// stripLe removes the le pair from a rendered label set, leaving the
// series identity shared by a histogram's buckets, sum, and count.
func stripLe(t *testing.T, labels string) string {
	t.Helper()
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, pair := range strings.Split(inner, ",") {
		if !strings.HasPrefix(pair, `le="`) {
			kept = append(kept, pair)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

func extractLe(t *testing.T, labels string) string {
	t.Helper()
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	for _, pair := range strings.Split(inner, ",") {
		if v, ok := strings.CutPrefix(pair, `le="`); ok {
			return strings.TrimSuffix(v, `"`)
		}
	}
	return ""
}

func parseLe(t *testing.T, s string) float64 {
	t.Helper()
	if s == "+Inf" {
		return math.Inf(1)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparseable le bound %q", s)
	}
	return v
}
