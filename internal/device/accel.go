package device

import (
	"fmt"

	"poly/internal/sim"
)

// Task is one kernel execution submitted to an accelerator. The latency,
// interval, and power numbers come from the implementation the runtime
// scheduler selected (a model.Impl); the device simulator adds the
// effects the analytical model cannot see: queueing, batch formation,
// DVFS state, and FPGA reconfiguration.
type Task struct {
	// Kernel is the kernel name (for accounting).
	Kernel string
	// ImplID identifies the implementation (kernel + config). The GPU
	// batches only same-impl tasks; the FPGA reconfigures when it changes.
	ImplID string
	// LatencyMS is the batch execution latency at nominal frequency.
	LatencyMS float64
	// IntervalMS is the pipelined initiation interval (FPGA); ≥ LatencyMS
	// means no request-level pipelining.
	IntervalMS float64
	// Batch is the launch's batch capacity (GPU; 1 on FPGA).
	Batch int
	// WindowMS bounds how long the GPU may hold this task to accumulate
	// a fuller batch (DjiNN-style deadline-aware batching). Zero launches
	// immediately.
	WindowMS float64
	// enqueuedAt is stamped by the device on Submit.
	enqueuedAt sim.Time
	// PowerW is the board's active power while executing this impl.
	PowerW float64
	// OnStart is called when the device begins executing the task (the
	// launch or pipeline-initiation instant). May be nil; telemetry uses
	// it to split queue time from service time per request.
	OnStart func(at sim.Time)
	// OnDone is called when the task completes. May be nil.
	OnDone func(at sim.Time)
	// OnFail is called instead of OnDone when the board loses the task —
	// a submission rejected or a queue flushed by an injected board
	// failure, or a bitstream that repeatedly refuses to load. May be
	// nil, in which case the task silently disappears (the runtime always
	// sets it when fault injection is active).
	OnFail func(at sim.Time)

	// Owner, when set, receives the lifecycle callbacks instead of the
	// OnStart/OnDone/OnFail fields. Pooled owners (the runtime's request
	// objects) use it to avoid allocating three closures per task; the
	// func fields remain for ad-hoc callers.
	Owner TaskOwner
	// Device is the board name the task was submitted to; owner-based
	// callers set it so the Owner callbacks can attribute the task
	// without a captured closure.
	Device string
	// KernelIdx is the owner's dense kernel index for Kernel (see
	// runtime's program interning); opaque to the device layer.
	KernelIdx int32
	// PredictedEndMS carries the plan's predicted completion time for
	// fault-monitor comparison at fire time.
	PredictedEndMS float64

	// fpga backlinks the board while an FPGA completion event for this
	// task is in flight (closure-free completion dispatch).
	fpga *FPGADevice
}

// TaskOwner receives a task's lifecycle callbacks. It is the
// allocation-free alternative to the OnStart/OnDone/OnFail fields: one
// long-lived owner serves every task it submits, with the task itself
// carrying the per-task context (Device, KernelIdx, PredictedEndMS).
type TaskOwner interface {
	// TaskStarted fires when the device begins executing the task.
	TaskStarted(t *Task, at sim.Time)
	// TaskDone fires when the task completes.
	TaskDone(t *Task, at sim.Time)
	// TaskFailed fires instead of TaskDone when the board loses the task.
	TaskFailed(t *Task, at sim.Time)
}

// started/done/fail dispatch a lifecycle callback, preferring Owner.

func (t *Task) started(at sim.Time) {
	if t.Owner != nil {
		t.Owner.TaskStarted(t, at)
		return
	}
	if t.OnStart != nil {
		t.OnStart(at)
	}
}

func (t *Task) done(at sim.Time) {
	if t.Owner != nil {
		t.Owner.TaskDone(t, at)
		return
	}
	if t.OnDone != nil {
		t.OnDone(at)
	}
}

func (t *Task) fail(at sim.Time) {
	if t.Owner != nil {
		t.Owner.TaskFailed(t, at)
		return
	}
	if t.OnFail != nil {
		t.OnFail(at)
	}
}

// FaultHook lets a fault-injection layer perturb a board's behavior.
// *fault.Injector implements it structurally; a nil hook (the default)
// costs the devices only nil-checks and leaves execution bit-identical
// to a build without fault injection.
type FaultHook interface {
	// ExecScale returns the service-time multiplier for one execution
	// starting at `at` (1 = unperturbed).
	ExecScale(board, implID string, at sim.Time) float64
	// BoardDown reports whether the board is inside a failure window.
	BoardDown(board string, at sim.Time) bool
	// ReconfigAborts decides whether one FPGA bitstream-load attempt
	// fails: the penalty is paid but the bitstream is not resident.
	ReconfigAborts(board, implID string, at sim.Time) bool
}

// Observer receives board-level telemetry events. The runtime attaches
// one (telemetry.Sink satisfies it structurally); a nil observer costs a
// device only nil-checks.
type Observer interface {
	// Launched reports one physical execution: a (possibly batched) GPU
	// launch or one FPGA task, with its execution window.
	Launched(device, kernel, implID string, batch int, start, end sim.Time)
	// ReconfigStart reports an FPGA bitstream load beginning at `at` and
	// stalling the board for stallMS; background loads are governor
	// preloads, foreground ones are paid by a request.
	ReconfigStart(device, implID string, at sim.Time, stallMS float64, background bool)
	// DVFSChanged reports a GPU operating-point change.
	DVFSChanged(device string, level int, at sim.Time)
}

// ResourceObserver receives board occupancy events for resource
// accounting (telemetry.Sink satisfies it structurally). It is separate
// from Observer because it fires on state *transitions* rather than on
// work items: busy flips, power-level changes, bitstream residency. A
// nil observer costs a device only nil-checks and never perturbs the
// simulated timeline.
type ResourceObserver interface {
	// BusyChanged reports the board's in-flight task count. Boards elide
	// interior changes: only idle↔busy transitions are guaranteed.
	BusyChanged(device string, busy int, at sim.Time)
	// PowerChanged reports a change of instantaneous draw.
	PowerChanged(device string, watts float64, at sim.Time)
	// BitstreamResident reports the bitstream occupying an FPGA's
	// reconfigurable region ("" after an aborted load leaves it blank).
	BitstreamResident(device, implID string, at sim.Time)
}

// Accelerator is a simulated board: it accepts tasks, reports occupancy
// for the scheduler's EST table (Eq. 4), and accounts energy.
type Accelerator interface {
	// Name is the board instance name, unique within a node.
	Name() string
	// Class is GPU or FPGA.
	Class() Class
	// Submit enqueues a task.
	Submit(t *Task)
	// NextFreeAt estimates when a newly submitted task could start —
	// the T_queue(d_n) term of the scheduler's EST computation.
	NextFreeAt() sim.Time
	// QueueLen is the number of tasks waiting or running.
	QueueLen() int
	// PowerW is the instantaneous power draw.
	PowerW() float64
	// EnergyMJ is the accumulated energy in millijoules since creation.
	EnergyMJ() float64
	// Perturb returns the device's deterministic execution-time noise
	// factor for an impl — the gap between analytical model and
	// "hardware" the paper reports as ≤6 % (Section VI-C).
	Perturb(implID string) float64
}

// accelBase carries the bookkeeping shared by both device families.
type accelBase struct {
	name   string
	sim    *sim.Simulator
	power  float64 // instantaneous watts
	energy float64 // accumulated mJ
	lastAt sim.Time
	obs    Observer         // nil when telemetry is disabled
	res    ResourceObserver // nil when resource accounting is disabled
	fault  FaultHook        // nil when fault injection is disabled
}

func (b *accelBase) Name() string { return b.name }

// SetObserver attaches (or detaches, with nil) a telemetry observer.
func (b *accelBase) SetObserver(o Observer) { b.obs = o }

// SetResourceObserver attaches (or detaches, with nil) a resource
// accounting observer.
func (b *accelBase) SetResourceObserver(o ResourceObserver) { b.res = o }

// notifyBusy reports an idle↔busy transition.
func (b *accelBase) notifyBusy(n int) {
	if b.res != nil {
		b.res.BusyChanged(b.name, n, b.sim.Now())
	}
}

// SetFaultHook attaches (or detaches, with nil) a fault injector.
func (b *accelBase) SetFaultHook(h FaultHook) { b.fault = h }

// down reports whether the injected fault plan has the board failed now.
func (b *accelBase) down() bool {
	return b.fault != nil && b.fault.BoardDown(b.name, b.sim.Now())
}

// failTask reports a lost task to its owner at the next event boundary —
// deferring keeps the failure callback (which typically re-submits the
// task elsewhere) out of the device's own queue manipulation.
func (b *accelBase) failTask(t *Task) {
	if t.Owner != nil || t.OnFail != nil {
		b.sim.AfterCall(0, fireTaskFail, t)
	}
}

func fireTaskFail(at sim.Time, a any) { a.(*Task).fail(at) }

// execScale returns the fault layer's duration multiplier (1 when off).
func (b *accelBase) execScale(implID string) float64 {
	if b.fault == nil {
		return 1
	}
	return b.fault.ExecScale(b.name, implID, b.sim.Now())
}

// setPower integrates energy up to now and switches the draw level.
func (b *accelBase) setPower(w float64) {
	now := b.sim.Now()
	b.energy += b.power * float64(now-b.lastAt)
	b.lastAt = now
	if b.res != nil && w != b.power {
		b.res.PowerChanged(b.name, w, now)
	}
	b.power = w
}

func (b *accelBase) PowerW() float64 { return b.power }

func (b *accelBase) EnergyMJ() float64 {
	// Include the span since the last state change.
	return b.energy + b.power*float64(b.sim.Now()-b.lastAt)
}

// perturb derives a deterministic per-impl execution noise in
// [1-amp, 1+amp] from a string hash, standing in for the measurement
// noise of real hardware. The paper's model-accuracy claim (≤6 % error)
// is validated against this (BenchmarkModelAccuracy). The two parts are
// hashed as if concatenated with '/' — FNV is a streaming hash, so this
// matches hashing dev+"/"+impl without building the string (Perturb runs
// once per task execution; the concat was a top allocation site under
// load).
func perturb(dev, impl string, amp float64) float64 {
	var h uint32 = 2166136261
	for i := 0; i < len(dev); i++ {
		h ^= uint32(dev[i])
		h *= 16777619
	}
	h ^= uint32('/')
	h *= 16777619
	for i := 0; i < len(impl); i++ {
		h ^= uint32(impl[i])
		h *= 16777619
	}
	u := float64(h%2048)/1023.5 - 1 // [-1, 1]
	return 1 + amp*u
}

// LaunchTrace, when non-nil, receives one callback per GPU launch
// (device, kernel, batch size, cap, queue remainder, duration) — a
// diagnostics hook for tests.
var LaunchTrace func(dev, kernel string, batch, cap, left int, durMS float64)

// GPUDevice simulates one GPU board: a FIFO queue whose head batch (up to
// the impl's batch capacity, same impl only) executes as one launch, with
// a DVFS ladder that scales both speed and power.
type GPUDevice struct {
	accelBase
	spec     GPUSpec
	level    int // index into spec.DVFS
	queue    []*Task
	running  bool
	pending  bool // a launch event is scheduled
	freeAt   sim.Time
	launches int
	tasks    int
	busyMS   float64

	// batchBuf holds the in-flight launch's batch until its completion
	// event fires; only one launch runs at a time, so one buffer
	// suffices. keepBuf is launch's scratch for the queue remainder and
	// nfaGroups is NextFreeAt's batch-compression scratch — all reused
	// across calls so the steady-state hot path allocates nothing.
	batchBuf  []*Task
	keepBuf   []*Task
	nfaGroups []gpuGroup
}

// gpuGroup accumulates NextFreeAt's per-kernel queue compression.
type gpuGroup struct {
	kernel string
	n, cap int
	lat    float64
}

// NewGPU attaches a simulated GPU board to a simulator.
func NewGPU(s *sim.Simulator, name string, spec GPUSpec) *GPUDevice {
	g := &GPUDevice{accelBase: accelBase{name: name, sim: s}, spec: spec}
	if len(g.spec.DVFS) == 0 {
		g.spec.DVFS = []DVFSLevel{{FreqScale: 1, PowerScale: 1}}
	}
	g.setPower(g.idlePower())
	return g
}

// Class returns GPU.
func (g *GPUDevice) Class() Class { return GPU }

// SetDVFS selects an operating point; out-of-range levels clamp. Lower
// levels (higher index) slow execution but cut both active and idle power
// — the runtime's knob for light-load energy proportionality.
func (g *GPUDevice) SetDVFS(level int) {
	if level < 0 {
		level = 0
	}
	if level >= len(g.spec.DVFS) {
		level = len(g.spec.DVFS) - 1
	}
	if g.obs != nil && level != g.level {
		g.obs.DVFSChanged(g.name, level, g.sim.Now())
	}
	g.level = level
	if !g.running {
		g.setPower(g.idlePower())
	}
}

// DVFSLevel returns the current ladder index.
func (g *GPUDevice) DVFSLevel() int { return g.level }

// FreqScale returns the current operating point's clock multiplier.
func (g *GPUDevice) FreqScale() float64 { return g.spec.DVFS[g.level].FreqScale }

// Launches and ExecutedTasks report launch statistics for diagnostics.
func (g *GPUDevice) Launches() (launches, tasks int, busyMS float64) {
	return g.launches, g.tasks, g.busyMS
}

func (g *GPUDevice) idlePower() float64 {
	// Idle draw shrinks with the ladder: clock gating plus memory
	// downclocking, floored by board static power.
	ps := g.spec.DVFS[g.level].PowerScale
	return g.spec.IdlePowerW * (0.4 + 0.6*ps)
}

// Submit enqueues a task. The launch fires at the next event boundary so
// that same-instant submissions can form one batch. A board inside an
// injected failure window rejects the submission outright.
func (g *GPUDevice) Submit(t *Task) {
	if g.down() {
		g.failTask(t)
		return
	}
	t.enqueuedAt = g.sim.Now()
	g.queue = append(g.queue, t)
	if !g.running {
		// (Re-)evaluate at the next event boundary: a new arrival may
		// complete a batch that was waiting on its window.
		g.pending = true
		g.sim.AfterCall(0, fireGPULaunch, g)
	}
}

func fireGPULaunch(_ sim.Time, a any) { a.(*GPUDevice).launch() }

func fireGPUDone(now sim.Time, a any) {
	g := a.(*GPUDevice)
	g.running = false
	g.notifyBusy(0)
	for _, t := range g.batchBuf {
		t.done(now)
	}
	g.launch()
}

// launch forms a batch from the queue head and executes it. When the head
// batch is not yet full and its accumulation window has not expired, the
// launch is deferred — trading a bounded wait for the amortization that
// makes GPUs throughput-efficient.
func (g *GPUDevice) launch() {
	g.pending = false
	if g.running {
		return
	}
	if g.down() {
		// The board failed while work was queued: flush everything. The
		// owners' OnFail callbacks re-place the tasks on healthy boards.
		q := g.queue
		g.queue = nil
		g.setPower(g.idlePower())
		for _, t := range q {
			g.failTask(t)
		}
		return
	}
	if len(g.queue) == 0 {
		g.running = false
		g.setPower(g.idlePower())
		return
	}
	head := g.queue[0]
	// Use the widest batch capacity any queued same-kernel variant
	// offers: a batch-1 variant at the head must not cap a launch that
	// batched variants behind it could share. The launch executes as that
	// widest variant, so the task carrying it must be IN the launch — a
	// capacity justified by a task the batch cannot reach (more narrow
	// work queued ahead than the launch can carry) would overfill a
	// narrow variant past its physical batch limit. wi remembers the
	// first task providing the cap so the gather below reserves it a slot.
	cap := 1
	wi := -1
	for i, t := range g.queue {
		if t.Kernel == head.Kernel && t.Batch > cap {
			cap = t.Batch
			wi = i
		}
	}
	// Gather up to cap tasks of the head's KERNEL from anywhere in the
	// queue — a per-kernel batch queue, the way serving systems coalesce
	// same-model launches. Tasks planned with different implementation
	// variants of the same kernel still share one launch (the widest
	// variant): fragmenting batches by directive variant would collapse
	// the GPU's throughput exactly when the scheduler is load-balancing
	// variants under pressure. One slot stays reserved for the
	// cap-justifying task until it is taken.
	batch := g.batchBuf[:0]
	keep := g.keepBuf[:0]
	capTaken := wi < 0
	for i, t := range g.queue {
		if t.Kernel != head.Kernel {
			keep = append(keep, t)
			continue
		}
		slots := cap - len(batch)
		if i == wi {
			batch = append(batch, t)
			capTaken = true
			continue
		}
		if !capTaken {
			slots--
		}
		if slots > 0 {
			batch = append(batch, t)
		} else {
			keep = append(keep, t)
		}
	}
	g.batchBuf, g.keepBuf = batch, keep
	if len(batch) < cap && head.WindowMS > 0 {
		deadline := head.enqueuedAt + sim.Time(head.WindowMS)
		if g.sim.Now() < deadline {
			// Re-assemble the original queue order and wait out the window.
			q := g.queue[:0]
			q = append(q, batch...)
			q = append(q, keep...)
			g.queue = q
			g.pending = true
			g.sim.AtCall(deadline, fireGPULaunch, g)
			return
		}
	}
	g.queue = append(g.queue[:0], keep...)

	lvl := g.spec.DVFS[g.level]
	latMS := head.LatencyMS
	powerRef := head
	for _, t := range batch {
		if t.LatencyMS > latMS {
			latMS = t.LatencyMS
			powerRef = t
		}
	}
	dur := sim.Time(latMS / lvl.FreqScale * g.Perturb(powerRef.ImplID))
	if s := g.execScale(powerRef.ImplID); s != 1 {
		dur = sim.Time(float64(dur) * s)
	}
	g.launches++
	g.tasks += len(batch)
	g.busyMS += float64(dur)
	if LaunchTrace != nil {
		LaunchTrace(g.name, head.Kernel, len(batch), cap, len(keep), float64(dur))
	}
	start := g.sim.Now()
	if g.obs != nil {
		g.obs.Launched(g.name, head.Kernel, powerRef.ImplID, len(batch), start, start+dur)
	}
	for _, t := range batch {
		t.started(start)
	}
	g.running = true
	g.notifyBusy(1)
	active := g.spec.IdlePowerW + (powerRef.PowerW-g.spec.IdlePowerW)*lvl.PowerScale
	g.setPower(active)
	g.freeAt = g.sim.Now() + dur
	// The batch stays parked in g.batchBuf until fireGPUDone walks it;
	// g.running guarantees no second launch reuses the buffer meanwhile.
	g.sim.AfterCall(dur, fireGPUDone, g)
}

// NextFreeAt reports when the board could start another launch, counting
// the queue's accumulated work at the current DVFS point.
func (g *GPUDevice) NextFreeAt() sim.Time {
	at := g.sim.Now()
	if g.running && g.freeAt > at {
		at = g.freeAt
	}
	lvl := g.spec.DVFS[g.level]
	// Pending queue work, batch-compressed: each implementation's queued
	// tasks coalesce into ceil(n/batch) launches. Groups accumulate in
	// first-seen order in a reusable scratch slice (a handful of kernels
	// at most, so the linear lookup beats a map and allocates nothing).
	groups := g.nfaGroups[:0]
	for _, t := range g.queue {
		gi := -1
		for i := range groups {
			if groups[i].kernel == t.Kernel {
				gi = i
				break
			}
		}
		if gi < 0 {
			groups = append(groups, gpuGroup{kernel: t.Kernel, cap: 1})
			gi = len(groups) - 1
		}
		gr := &groups[gi]
		if t.Batch > gr.cap {
			gr.cap = t.Batch
		}
		if t.LatencyMS > gr.lat {
			gr.lat = t.LatencyMS
		}
		gr.n++
	}
	g.nfaGroups = groups
	for i := range groups {
		gr := &groups[i]
		launches := (gr.n + gr.cap - 1) / gr.cap
		at += sim.Time(float64(launches) * gr.lat / lvl.FreqScale)
	}
	return at
}

// QueueLen returns waiting plus running launches.
func (g *GPUDevice) QueueLen() int {
	n := len(g.queue)
	if g.running {
		n++
	}
	return n
}

// Perturb implements Accelerator with a ±4 % deterministic noise band.
func (g *GPUDevice) Perturb(implID string) float64 { return perturb(g.name, implID, 0.04) }

// FPGADevice simulates one FPGA board: a request pipeline for the loaded
// bitstream, with reconfiguration when the implementation changes and a
// low-power shell state for idle periods.
type FPGADevice struct {
	accelBase
	spec      FPGASpec
	loaded    string // ImplID of the resident bitstream; "" = blank shell
	lowPower  bool
	queue     []*Task
	inflight  int
	nextInit  sim.Time
	draining  bool
	reconfigs int
	// abortStreak counts consecutive injected bitstream-load aborts; the
	// third in a row fails the head task instead of burning the board on
	// reconfiguration retries forever.
	abortStreak int
}

// NewFPGA attaches a simulated FPGA board to a simulator.
func NewFPGA(s *sim.Simulator, name string, spec FPGASpec) *FPGADevice {
	f := &FPGADevice{accelBase: accelBase{name: name, sim: s}, spec: spec}
	f.setPower(spec.IdlePowerW)
	return f
}

// Class returns FPGA.
func (f *FPGADevice) Class() Class { return FPGA }

// Loaded returns the resident implementation ID ("" when blank).
func (f *FPGADevice) Loaded() string { return f.loaded }

// EnterLowPower clock-gates the idle fabric, cutting idle draw by 40 %
// while keeping the resident bitstream (so the next request pays no
// reconfiguration). No-op while work is queued or in flight.
func (f *FPGADevice) EnterLowPower() {
	if f.inflight > 0 || len(f.queue) > 0 {
		return
	}
	f.lowPower = true
	f.setPower(f.spec.IdlePowerW * 0.6)
}

// Reconfigs returns how many bitstream loads the board performed
// (including background preloads).
func (f *FPGADevice) Reconfigs() int { return f.reconfigs }

// Idle reports whether the board has no queued or in-flight work.
func (f *FPGADevice) Idle() bool { return f.inflight == 0 && len(f.queue) == 0 && !f.draining }

// Preload flashes a bitstream onto an idle board in the background, so
// the implementation is resident before any request needs it. No-op if
// the board has work, is mid-reconfiguration, or already holds implID.
func (f *FPGADevice) Preload(implID string) {
	if !f.Idle() || f.loaded == implID || implID == "" {
		return
	}
	f.reconfigs++
	if f.obs != nil {
		f.obs.ReconfigStart(f.name, implID, f.sim.Now(), f.spec.ReconfigMS, true)
	}
	f.lowPower = false
	f.draining = true // block submissions from racing the flash
	f.setPower(f.spec.IdlePowerW + 0.3*(f.spec.PeakPowerW-f.spec.IdlePowerW))
	prev := f.loaded
	if f.fault != nil && f.fault.ReconfigAborts(f.name, implID, f.sim.Now()) {
		// Aborted background flash: the stall is paid, the fabric comes
		// up blank, and the governor's next provisioning pass retries.
		f.loaded = ""
	} else {
		f.loaded = implID
	}
	if f.res != nil && f.loaded != prev {
		f.res.BitstreamResident(f.name, f.loaded, f.sim.Now())
	}
	f.nextInit = f.sim.Now() + sim.Time(f.spec.ReconfigMS)
	f.sim.At(f.nextInit, func() {
		f.draining = false
		if f.inflight == 0 && len(f.queue) == 0 {
			f.setPower(f.spec.IdlePowerW)
		} else {
			f.drain()
		}
	})
}

// Submit enqueues a task; it starts as soon as the pipeline's initiation
// interval and any needed reconfiguration allow. A board inside an
// injected failure window rejects the submission outright.
func (f *FPGADevice) Submit(t *Task) {
	if f.down() {
		f.failTask(t)
		return
	}
	f.queue = append(f.queue, t)
	if !f.draining {
		f.drain()
	}
}

// drain starts queued tasks respecting reconfiguration and the II.
func (f *FPGADevice) drain() {
	if f.down() {
		// The board failed while work was queued: flush everything. The
		// owners' OnFail callbacks re-place the tasks on healthy boards.
		q := f.queue
		f.queue = nil
		f.draining = false
		if f.inflight == 0 {
			f.setPower(f.spec.IdlePowerW)
		}
		for _, t := range q {
			f.failTask(t)
		}
		return
	}
	if len(f.queue) == 0 {
		f.draining = false
		if f.inflight == 0 {
			f.setPower(f.spec.IdlePowerW)
		}
		return
	}
	f.draining = true
	t := f.queue[0]

	if f.loaded != t.ImplID {
		// Reconfigure, then retry the drain. The fault layer may abort
		// the load: the stall is paid but the fabric comes up blank, and
		// the next drain retries — a third consecutive abort fails the
		// head task instead of reconfiguring forever.
		aborted := f.fault != nil && f.fault.ReconfigAborts(f.name, t.ImplID, f.sim.Now())
		if aborted && f.abortStreak >= 2 {
			f.queue = f.queue[1:]
			f.abortStreak = 0
			f.failTask(t)
			f.drain()
			return
		}
		f.reconfigs++
		if f.obs != nil {
			f.obs.ReconfigStart(f.name, t.ImplID, f.sim.Now(), f.spec.ReconfigMS, false)
		}
		f.lowPower = false
		f.setPower(f.spec.IdlePowerW + 0.3*(f.spec.PeakPowerW-f.spec.IdlePowerW))
		prev := f.loaded
		if aborted {
			f.abortStreak++
			f.loaded = ""
		} else {
			f.abortStreak = 0
			f.loaded = t.ImplID
		}
		if f.res != nil && f.loaded != prev {
			f.res.BitstreamResident(f.name, f.loaded, f.sim.Now())
		}
		f.nextInit = f.sim.Now() + sim.Time(f.spec.ReconfigMS)
		f.sim.AtCall(f.nextInit, fireFPGADrain, f)
		return
	}
	now := f.sim.Now()
	if now < f.nextInit {
		f.sim.AtCall(f.nextInit, fireFPGADrain, f)
		return
	}
	f.queue = f.queue[1:]
	noise := f.Perturb(t.ImplID)
	if s := f.execScale(t.ImplID); s != 1 {
		noise *= s
	}
	lat := sim.Time(t.LatencyMS * noise)
	ii := sim.Time(t.IntervalMS * noise)
	if ii <= 0 || ii > lat {
		ii = lat
	}
	f.inflight++
	if f.inflight == 1 {
		f.notifyBusy(1)
	}
	f.setPower(t.PowerW)
	f.nextInit = now + ii
	if f.obs != nil {
		f.obs.Launched(f.name, t.Kernel, t.ImplID, 1, now, now+lat)
	}
	t.started(now)
	t.fpga = f
	f.sim.AfterCall(lat, fireFPGATaskDone, t)
	if len(f.queue) > 0 {
		f.sim.AtCall(f.nextInit, fireFPGADrain, f)
	} else {
		f.draining = false
	}
}

func fireFPGADrain(_ sim.Time, a any) { a.(*FPGADevice).drain() }

func fireFPGATaskDone(now sim.Time, a any) {
	t := a.(*Task)
	f := t.fpga
	t.fpga = nil
	f.inflight--
	if f.inflight == 0 {
		f.notifyBusy(0)
	}
	t.done(now)
	if f.inflight == 0 && len(f.queue) == 0 {
		f.setPower(f.spec.IdlePowerW)
	}
}

// NextFreeAt reports when a new task could initiate, including pending
// reconfiguration and queued initiations.
func (f *FPGADevice) NextFreeAt() sim.Time {
	at := f.sim.Now()
	if f.nextInit > at {
		at = f.nextInit
	}
	for _, t := range f.queue {
		ii := t.IntervalMS
		if ii <= 0 || ii > t.LatencyMS {
			ii = t.LatencyMS
		}
		at += sim.Time(ii)
	}
	return at
}

// QueueLen returns waiting plus in-flight tasks.
func (f *FPGADevice) QueueLen() int { return len(f.queue) + f.inflight }

// Perturb implements Accelerator with a ±5 % deterministic noise band.
func (f *FPGADevice) Perturb(implID string) float64 { return perturb(f.name, implID, 0.05) }

var (
	_ Accelerator = (*GPUDevice)(nil)
	_ Accelerator = (*FPGADevice)(nil)
)

// String describes the board for logs.
func (g *GPUDevice) String() string {
	return fmt.Sprintf("%s(%s)", g.name, g.spec.Name)
}

// String describes the board for logs.
func (f *FPGADevice) String() string {
	return fmt.Sprintf("%s(%s)", f.name, f.spec.Name)
}
