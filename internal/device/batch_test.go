package device

import (
	"reflect"
	"testing"

	"poly/internal/sim"
)

// traceLaunches installs a LaunchTrace hook recording (size, cap) per
// launch and returns the log plus a restore function.
func traceLaunches(t *testing.T) *[][2]int {
	t.Helper()
	var log [][2]int
	prev := LaunchTrace
	LaunchTrace = func(dev, kernel string, batch, cap, left int, durMS float64) {
		log = append(log, [2]int{batch, cap})
	}
	t.Cleanup(func() { LaunchTrace = prev })
	return &log
}

// TestGPUWidestCapMergesBatchOneHead: a batch-1 variant at the head must
// not cap the launch when a batched variant of the same kernel is queued
// behind it — both share one launch at the wider capacity.
func TestGPUWidestCapMergesBatchOneHead(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	log := traceLaunches(t)
	g.Submit(gpuTask("narrow", 10, 1, nil))
	g.Submit(gpuTask("wide", 10, 8, nil))
	s.Run()
	if want := [][2]int{{2, 8}}; !reflect.DeepEqual(*log, want) {
		t.Fatalf("launches = %v, want %v", *log, want)
	}
	l, tasks, _ := g.Launches()
	if l != 1 || tasks != 2 {
		t.Fatalf("launch accounting = %d launches / %d tasks, want 1/2", l, tasks)
	}
}

// TestGPUWidestCapReservesJustifier: with more batch-1 work queued ahead
// than the launch can carry, the task justifying the wide capacity must
// still be IN the launch — otherwise eight batch-1 tasks would ship as an
// 8-wide launch of a variant whose physical limit is one. The expected
// shape is one 8-wide launch containing the wide task plus seven narrow
// ones, then the two leftover narrows as capacity-1 singles.
func TestGPUWidestCapReservesJustifier(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	log := traceLaunches(t)
	var wideDone sim.Time
	var firstDone sim.Time
	for i := 0; i < 9; i++ {
		g.Submit(gpuTask("narrow", 10, 1, func(at sim.Time) {
			if firstDone == 0 {
				firstDone = at
			}
		}))
	}
	g.Submit(gpuTask("wide", 10, 8, func(at sim.Time) { wideDone = at }))
	s.Run()
	if want := [][2]int{{8, 8}, {1, 1}, {1, 1}}; !reflect.DeepEqual(*log, want) {
		t.Fatalf("launches = %v, want %v", *log, want)
	}
	// Membership proof: the wide task completed with the first launch, not
	// after the narrow backlog drained.
	if wideDone != firstDone {
		t.Fatalf("cap-justifying task finished at %v, first launch at %v — it was not in the launch it justified",
			wideDone, firstDone)
	}
}

// TestGPUBatchOneOnlyStaysSingle: without any batched variant queued, the
// widest-cap scan must not invent capacity — batch-1 tasks serialize as
// singles.
func TestGPUBatchOneOnlyStaysSingle(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	log := traceLaunches(t)
	for i := 0; i < 3; i++ {
		g.Submit(gpuTask("narrow", 10, 1, nil))
	}
	s.Run()
	if want := [][2]int{{1, 1}, {1, 1}, {1, 1}}; !reflect.DeepEqual(*log, want) {
		t.Fatalf("launches = %v, want %v", *log, want)
	}
}

// TestGPUWidestCapInterleaved: alternating batch-1-head / batched-tail
// submissions across several queue generations — each drain must justify
// its capacity with an in-launch member.
func TestGPUWidestCapInterleaved(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	log := traceLaunches(t)
	g.Submit(gpuTask("narrow", 10, 1, nil))
	g.Submit(gpuTask("wide", 10, 4, nil))
	g.Submit(gpuTask("narrow", 10, 1, nil))
	g.Submit(gpuTask("narrow", 10, 1, nil))
	s.Run()
	// One 4-wide launch: narrow head + wide justifier + two more narrows.
	if want := [][2]int{{4, 4}}; !reflect.DeepEqual(*log, want) {
		t.Fatalf("launches = %v, want %v", *log, want)
	}
	for _, l := range *log {
		if l[0] > l[1] {
			t.Fatalf("launch of %d exceeded its capacity %d", l[0], l[1])
		}
	}
}
