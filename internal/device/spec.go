// Package device models the hardware substrate of a Poly leaf node: GPU
// and FPGA accelerator boards attached over PCIe, with event-level
// execution, queueing, batching, DVFS, FPGA reconfiguration, and power
// accounting.
//
// The paper evaluates on real boards (Tables IV and V). We transcribe
// those specifications here and drive them with a discrete-event simulator
// (see gpu.go, fpga.go); the simulator plays the role of "real hardware"
// that the analytical models in internal/model are validated against.
package device

import "fmt"

// Class distinguishes the two accelerator families.
type Class int

// Accelerator classes.
const (
	GPU Class = iota
	FPGA
)

// String returns "GPU" or "FPGA".
func (c Class) String() string {
	switch c {
	case GPU:
		return "GPU"
	case FPGA:
		return "FPGA"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// DVFSLevel is one operating point of a device's frequency/voltage ladder.
type DVFSLevel struct {
	// FreqScale multiplies the nominal clock (1.0 = nominal).
	FreqScale float64
	// PowerScale multiplies the dynamic power (≈ V²f; sub-cubic in
	// practice because voltage floors).
	PowerScale float64
}

// GPUSpec describes one GPU board (Table IV).
type GPUSpec struct {
	Name     string
	Cores    int
	FreqMHz  float64
	MemGB    int
	MemBWGBs float64 // global-memory bandwidth
	// PeakPowerW is the board TDP; IdlePowerW is the powered-on idle
	// draw — GPUs idle high, which drives the paper's energy-
	// proportionality gap (Section VI-C).
	PeakPowerW float64
	IdlePowerW float64
	// ProvisionPowerW is the per-board power budget the node provisioner
	// charges against the power cap; chosen to reproduce the accelerator
	// counts of Table III.
	ProvisionPowerW float64
	PriceUSD        float64
	// DVFS is the frequency ladder, fastest first.
	DVFS []DVFSLevel
}

// FPGASpec describes one FPGA board (Table V).
type FPGASpec struct {
	Name       string
	FreqMHz    float64
	LogicCells int // in thousands (K cells)
	BRAMMB     float64
	DSPSlices  int
	MemBWGBs   float64
	PeakPowerW float64
	// IdlePowerW is static power with a blank/idle shell loaded.
	IdlePowerW      float64
	ProvisionPowerW float64
	PriceUSD        float64
	// ReconfigMS is the time to load a different kernel bitstream.
	ReconfigMS float64
}

// defaultDVFS is a three-step ladder used by both GPU families: boost,
// nominal, and a deep power-save state for idle tails.
var defaultDVFS = []DVFSLevel{
	{FreqScale: 1.0, PowerScale: 1.0},
	{FreqScale: 0.7, PowerScale: 0.45},
	{FreqScale: 0.4, PowerScale: 0.2},
}

// The GPU boards of Table IV.
var (
	// AMDW9100 is the AMD FirePro W9100 (Setting-I).
	AMDW9100 = GPUSpec{
		Name:            "AMD FirePro W9100",
		Cores:           2816,
		FreqMHz:         930,
		MemGB:           32,
		MemBWGBs:        320,
		PeakPowerW:      270,
		IdlePowerW:      42,
		ProvisionPowerW: 250,
		PriceUSD:        4999,
		DVFS:            defaultDVFS,
	}
	// NvidiaK20 is the NVIDIA Tesla K20 (Settings II and III).
	NvidiaK20 = GPUSpec{
		Name:            "NVIDIA Tesla K20",
		Cores:           2496,
		FreqMHz:         706,
		MemGB:           5,
		MemBWGBs:        208,
		PeakPowerW:      225,
		IdlePowerW:      25,
		ProvisionPowerW: 250,
		PriceUSD:        2999,
		DVFS:            defaultDVFS,
	}
)

// The FPGA boards of Table V.
var (
	// Xilinx7V3 is the Virtex7-690t ADM-PCIE-7V3 (Setting-I).
	Xilinx7V3 = FPGASpec{
		Name:            "Xilinx Virtex7-690t ADM-PCIE-7V3",
		FreqMHz:         470,
		LogicCells:      693,
		BRAMMB:          6.5,
		DSPSlices:       3600,
		MemBWGBs:        12,
		PeakPowerW:      45,
		IdlePowerW:      8,
		ProvisionPowerW: 50,
		PriceUSD:        3200,
		ReconfigMS:      80,
	}
	// XilinxZCU102 is the Zynq UltraScale+ ZCU102 (Setting-II).
	XilinxZCU102 = FPGASpec{
		Name:            "Xilinx Zynq UltraScale+ ZCU102",
		FreqMHz:         333,
		LogicCells:      600,
		BRAMMB:          4.0,
		DSPSlices:       2520,
		MemBWGBs:        19,
		PeakPowerW:      30,
		IdlePowerW:      5,
		ProvisionPowerW: 31,
		PriceUSD:        2495,
		ReconfigMS:      60,
	}
	// IntelArria10 is the Arria 10 GX115 (Setting-III). Table V prints its
	// logic capacity as 43K cells, which is a typo for the part's ~427K
	// ALMs; we use 430K so the resource model is not artificially starved.
	IntelArria10 = FPGASpec{
		Name:            "Intel Arria 10 GX115",
		FreqMHz:         800,
		LogicCells:      430,
		BRAMMB:          8.2,
		DSPSlices:       1518,
		MemBWGBs:        17,
		PeakPowerW:      65,
		IdlePowerW:      12,
		ProvisionPowerW: 62,
		PriceUSD:        4495,
		ReconfigMS:      70,
	}
)

// PCIeSpec models the host↔accelerator interconnect shared by every board
// in the prototype server (PCIe 3.0 x8 per slot).
type PCIeSpec struct {
	BandwidthGBs float64
	// LatencyUS is the fixed per-transfer setup latency in microseconds.
	LatencyUS float64
}

// DefaultPCIe is the interconnect used by all three settings.
var DefaultPCIe = PCIeSpec{BandwidthGBs: 8, LatencyUS: 20}

// TransferMS returns the time to move n bytes over the link, in
// milliseconds. Zero-byte transfers still pay the setup latency.
func (p PCIeSpec) TransferMS(n int64) float64 {
	if n < 0 {
		n = 0
	}
	return p.LatencyUS/1000 + float64(n)/(p.BandwidthGBs*1e9)*1000
}
