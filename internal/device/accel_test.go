package device

import (
	"math"
	"testing"

	"poly/internal/sim"
)

func gpuTask(impl string, lat float64, batch int, done func(sim.Time)) *Task {
	return &Task{Kernel: "k", ImplID: impl, LatencyMS: lat, IntervalMS: lat,
		Batch: batch, PowerW: 200, OnDone: done}
}

func TestGPUExecutesAndAccountsEnergy(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	var doneAt sim.Time
	g.Submit(gpuTask("a", 100, 1, func(at sim.Time) { doneAt = at }))
	s.Run()
	want := 100 * g.Perturb("a")
	if math.Abs(float64(doneAt)-want) > 1e-9 {
		t.Fatalf("done at %v, want %v", doneAt, want)
	}
	// Energy: ~200 W for ~100 ms ≈ 20000 mJ.
	e := g.EnergyMJ()
	if e < 15000 || e > 25000 {
		t.Fatalf("energy = %.0f mJ, want ≈20000", e)
	}
	if g.PowerW() != g.idlePower() {
		t.Fatalf("idle power = %v after completion", g.PowerW())
	}
}

func TestGPUBatchesSameImplOnly(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	var order []string
	mk := func(impl string, batch int) *Task {
		return gpuTask(impl, 10, batch, func(sim.Time) { order = append(order, impl) })
	}
	// Three 'a' tasks (batch cap 4) and one 'b': a,a,a run in ONE launch,
	// then b separately.
	g.Submit(mk("a", 4))
	g.Submit(mk("a", 4))
	g.Submit(mk("a", 4))
	g.Submit(mk("b", 4))
	s.Run()
	if len(order) != 4 {
		t.Fatalf("completions = %v", order)
	}
	// a-batch completes together, so total time ≈ one a-launch + one
	// b-launch ≈ 20 ms (with noise), not 40.
	if now := float64(s.Now()); now > 25 {
		t.Fatalf("batching did not merge same-impl tasks: finished at %v", now)
	}
}

func TestGPUQueueingDelaysDifferentImpls(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	var last sim.Time
	g.Submit(gpuTask("a", 10, 1, nil))
	g.Submit(gpuTask("b", 10, 1, func(at sim.Time) { last = at }))
	if g.QueueLen() != 2 {
		t.Fatalf("queue len = %d", g.QueueLen())
	}
	s.Run()
	if float64(last) < 19 {
		t.Fatalf("second task finished at %v, want ≥ ~20 (serialized)", last)
	}
}

func TestGPUDVFSSlowsAndSaves(t *testing.T) {
	fast := sim.New()
	gf := NewGPU(fast, "gpu0", AMDW9100)
	gf.Submit(gpuTask("a", 100, 1, nil))
	fast.Run()

	slow := sim.New()
	gs := NewGPU(slow, "gpu0", AMDW9100)
	gs.SetDVFS(2)
	if gs.DVFSLevel() != 2 {
		t.Fatal("DVFS level not applied")
	}
	gs.Submit(gpuTask("a", 100, 1, nil))
	slow.Run()

	if slow.Now() <= fast.Now() {
		t.Fatalf("low DVFS not slower: %v vs %v", slow.Now(), fast.Now())
	}
	if gs.EnergyMJ() >= gf.EnergyMJ() {
		t.Fatalf("low DVFS not cheaper: %.0f vs %.0f mJ", gs.EnergyMJ(), gf.EnergyMJ())
	}
	// Idle power also drops with the ladder.
	idleHigh := NewGPU(sim.New(), "x", AMDW9100)
	idleLow := NewGPU(sim.New(), "x", AMDW9100)
	idleLow.SetDVFS(2)
	if idleLow.PowerW() >= idleHigh.PowerW() {
		t.Fatal("idle power must drop at low DVFS")
	}
}

func TestGPUSetDVFSClamps(t *testing.T) {
	g := NewGPU(sim.New(), "gpu0", AMDW9100)
	g.SetDVFS(-3)
	if g.DVFSLevel() != 0 {
		t.Fatal("negative level must clamp to 0")
	}
	g.SetDVFS(99)
	if g.DVFSLevel() != len(AMDW9100.DVFS)-1 {
		t.Fatal("oversized level must clamp")
	}
}

func TestGPUNextFreeAtGrowsWithQueue(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	empty := g.NextFreeAt()
	g.Submit(gpuTask("a", 50, 1, nil))
	g.Submit(gpuTask("b", 50, 1, nil))
	if g.NextFreeAt() <= empty {
		t.Fatal("NextFreeAt must grow with queued work")
	}
}

func fpgaTask(impl string, lat, ii float64, done func(sim.Time)) *Task {
	return &Task{Kernel: "k", ImplID: impl, LatencyMS: lat, IntervalMS: ii,
		Batch: 1, PowerW: 30, OnDone: done}
}

func TestFPGAPaysReconfigurationOnImplChange(t *testing.T) {
	s := sim.New()
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	var first sim.Time
	f.Submit(fpgaTask("a", 10, 10, func(at sim.Time) { first = at }))
	s.Run()
	// Blank shell → must reconfigure (80 ms) before the first task.
	if float64(first) < Xilinx7V3.ReconfigMS {
		t.Fatalf("first completion at %v, want ≥ reconfig %v", first, Xilinx7V3.ReconfigMS)
	}
	if f.Loaded() != "a" {
		t.Fatalf("loaded = %q", f.Loaded())
	}
	// Same impl again: no reconfig.
	start := s.Now()
	var second sim.Time
	f.Submit(fpgaTask("a", 10, 10, func(at sim.Time) { second = at }))
	s.Run()
	if d := float64(second - start); d > 15 {
		t.Fatalf("same-impl task took %v ms, reconfig charged twice?", d)
	}
	// Different impl: reconfig again.
	start = s.Now()
	var third sim.Time
	f.Submit(fpgaTask("b", 10, 10, func(at sim.Time) { third = at }))
	s.Run()
	if d := float64(third - start); d < Xilinx7V3.ReconfigMS {
		t.Fatalf("impl change took %v ms, want ≥ reconfig", d)
	}
}

func TestFPGAPipelinesRequests(t *testing.T) {
	s := sim.New()
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	n := 10
	var lastDone sim.Time
	for i := 0; i < n; i++ {
		f.Submit(fpgaTask("a", 100, 10, func(at sim.Time) { lastDone = at }))
	}
	s.Run()
	// Pipelined: ≈ reconfig + latency + (n-1)×II ≈ 80+100+90 = 270, far
	// below serialized n×100+80 = 1080.
	if got := float64(lastDone); got > 400 {
		t.Fatalf("pipeline did not overlap requests: finished at %v", got)
	}
	if f.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", f.QueueLen())
	}
}

func TestFPGALowPowerClockGating(t *testing.T) {
	s := sim.New()
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	f.Preload("bit")
	s.Run()
	idle := f.PowerW()
	f.EnterLowPower()
	if f.PowerW() >= idle {
		t.Fatalf("clock-gated fabric draws %v ≥ idle %v", f.PowerW(), idle)
	}
	if f.Loaded() != "bit" {
		t.Fatal("clock gating must keep the resident bitstream")
	}
	// A resident-bitstream task after gating pays no reconfiguration.
	var done sim.Time
	start := s.Now()
	f.Submit(fpgaTask("bit", 10, 10, func(at sim.Time) { done = at }))
	s.Run()
	if d := float64(done - start); d > 15 {
		t.Fatalf("wake from clock gating cost %v ms", d)
	}
	// Low-power refuses while busy.
	f.Submit(fpgaTask("bit", 50, 50, nil))
	f.EnterLowPower()
	if f.PowerW() < idle {
		t.Fatal("EnterLowPower must be a no-op while work is pending")
	}
	s.Run()
}

func TestFPGANextFreeAt(t *testing.T) {
	s := sim.New()
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	base := f.NextFreeAt()
	f.Submit(fpgaTask("a", 100, 10, nil))
	f.Submit(fpgaTask("a", 100, 10, nil))
	if f.NextFreeAt() <= base {
		t.Fatal("NextFreeAt must grow with queued work")
	}
	s.Run()
}

func TestPerturbDeterministicAndBounded(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	for _, id := range []string{"a", "b", "lstm/GPU wg=256", "x/y/z"} {
		pg, pf := g.Perturb(id), f.Perturb(id)
		if pg != g.Perturb(id) || pf != f.Perturb(id) {
			t.Fatal("perturbation must be deterministic")
		}
		if pg < 0.96 || pg > 1.04 {
			t.Fatalf("GPU perturb %v outside ±4%%", pg)
		}
		if pf < 0.95 || pf > 1.05 {
			t.Fatalf("FPGA perturb %v outside ±5%%", pf)
		}
	}
}

func TestAccelStringers(t *testing.T) {
	s := sim.New()
	if NewGPU(s, "g", AMDW9100).String() == "" || NewFPGA(s, "f", Xilinx7V3).String() == "" {
		t.Fatal("String must render")
	}
}

func TestAccessors(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	if g.Name() != "gpu0" || f.Name() != "fpga0" {
		t.Fatal("names wrong")
	}
	if g.Class() != GPU || f.Class() != FPGA {
		t.Fatal("classes wrong")
	}
	if g.FreqScale() != 1.0 {
		t.Fatalf("nominal freq scale = %v", g.FreqScale())
	}
	g.SetDVFS(2)
	if g.FreqScale() != 0.4 {
		t.Fatalf("deep DVFS freq scale = %v", g.FreqScale())
	}
	if l, tk, busy := g.Launches(); l != 0 || tk != 0 || busy != 0 {
		t.Fatal("fresh board must report zero launch stats")
	}
	if f.Reconfigs() != 0 || !f.Idle() {
		t.Fatal("fresh FPGA state wrong")
	}
}

func TestLaunchStatsAccumulate(t *testing.T) {
	s := sim.New()
	g := NewGPU(s, "gpu0", AMDW9100)
	g.Submit(gpuTask("a", 10, 4, nil))
	g.Submit(gpuTask("a", 10, 4, nil))
	s.Run()
	l, tk, busy := g.Launches()
	if l != 1 || tk != 2 || busy <= 0 {
		t.Fatalf("launch stats = %d launches, %d tasks, %.1f ms", l, tk, busy)
	}
}

func TestPreloadBehaviour(t *testing.T) {
	s := sim.New()
	f := NewFPGA(s, "fpga0", Xilinx7V3)
	f.Preload("bitA")
	if f.Idle() {
		t.Fatal("board must be busy while flashing")
	}
	s.Run()
	if f.Loaded() != "bitA" || !f.Idle() {
		t.Fatalf("preload failed: loaded=%q idle=%v", f.Loaded(), f.Idle())
	}
	if f.Reconfigs() != 1 {
		t.Fatalf("reconfigs = %d", f.Reconfigs())
	}
	// Re-preloading the same bitstream is a no-op.
	f.Preload("bitA")
	if f.Reconfigs() != 1 {
		t.Fatal("same-bitstream preload must be free")
	}
	// Preload with an empty ID is a no-op.
	f.Preload("")
	if f.Loaded() != "bitA" {
		t.Fatal("empty preload must not blank the board")
	}
	// Tasks submitted mid-flash wait for it and then run without another
	// reconfiguration when the IDs match.
	f.Preload("bitB")
	done := false
	f.Submit(fpgaTask("bitB", 10, 10, func(sim.Time) { done = true }))
	s.Run()
	if !done || f.Reconfigs() != 2 {
		t.Fatalf("mid-flash submit broke: done=%v reconfigs=%d", done, f.Reconfigs())
	}
	// Preload refuses while work is queued.
	f.Submit(fpgaTask("bitB", 50, 50, nil))
	f.Preload("bitC")
	if f.Loaded() == "bitC" {
		t.Fatal("preload must not evict under load")
	}
	s.Run()
}

func TestSpecStringsAndTransfer(t *testing.T) {
	if GPU.String() != "GPU" || FPGA.String() != "FPGA" || Class(7).String() == "" {
		t.Fatal("class strings wrong")
	}
	p := PCIeSpec{BandwidthGBs: 8, LatencyUS: 20}
	if p.TransferMS(0) <= 0 || p.TransferMS(1<<30) < p.TransferMS(1<<20) {
		t.Fatal("transfer model wrong")
	}
}
