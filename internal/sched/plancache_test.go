package sched

import (
	"math"
	"testing"

	"poly/internal/device"
)

// scheduleOnce plans against devs and reports whether the call hit the
// plan cache, by differencing the scheduler's counters around the call.
func scheduleOnce(t *testing.T, s *Scheduler, devs []DeviceState, boundMS float64) (*Plan, bool) {
	t.Helper()
	h0, _ := s.PlanCacheStats()
	p, err := s.Schedule(devs, boundMS)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := s.PlanCacheStats()
	return p, h1 > h0
}

// TestPlanCacheKeying drives every signature dimension the cache keys on:
// identical state must hit, and each mode/state mutation must miss (a new
// key) without corrupting earlier entries — mode changes are folded into
// the key, never flushed.
func TestPlanCacheKeying(t *testing.T) {
	cases := []struct {
		name string
		// mutate perturbs the scheduler or the device vector after the
		// cache is primed with the base state.
		mutate  func(s *Scheduler, devs []DeviceState)
		wantHit bool
	}{
		{"identical state hits", func(s *Scheduler, devs []DeviceState) {}, true},
		{"throughput mode keys", func(s *Scheduler, devs []DeviceState) {
			s.SetThroughputMode(true)
		}, false},
		{"slack factor keys", func(s *Scheduler, devs []DeviceState) {
			s.SetSlackFactor(0.3)
		}, false},
		{"load hint keys", func(s *Scheduler, devs []DeviceState) {
			s.SetLoadHint(80)
		}, false},
		{"load hint quantizes to whole RPS", func(s *Scheduler, devs []DeviceState) {
			s.SetLoadHint(40.2) // same bucket as the primed hint of 40
		}, true},
		{"device backlog keys", func(s *Scheduler, devs []DeviceState) {
			devs[0].FreeAtMS += 0.25
		}, false},
		{"DVFS scale keys", func(s *Scheduler, devs []DeviceState) {
			devs[0].FreqScale = 0.75
		}, false},
		{"bitstream residency keys", func(s *Scheduler, devs []DeviceState) {
			devs[1].LoadedImpl = ""
		}, false},
		{"reconfig penalty keys", func(s *Scheduler, devs []DeviceState) {
			devs[1].ReconfigMS *= 2
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _, _ := buildSched(t)
			s.SetLoadHint(40)
			devs := steadyDevices(s)
			if _, hit := scheduleOnce(t, s, devs, 0); hit {
				t.Fatal("first call against an empty cache must miss")
			}
			tc.mutate(s, devs)
			if _, hit := scheduleOnce(t, s, devs, 0); hit != tc.wantHit {
				t.Fatalf("after mutation: hit=%v, want %v", hit, tc.wantHit)
			}
			// The primed base entry must survive the mutation: restore the
			// base state and require a hit (keyed, not flushed).
			s2, _, _ := buildSched(t)
			s2.SetLoadHint(40)
			base := steadyDevices(s2)
			if _, hit := scheduleOnce(t, s, base, 0); !hit {
				t.Fatal("base-state entry was lost after an unrelated mutation")
			}
		})
	}
}

// TestPlanCacheBoundKeying checks the latency bound participates in the
// key, including the ≤0 → program-default normalization happening before
// keying (so 0 and the explicit default share one entry).
func TestPlanCacheBoundKeying(t *testing.T) {
	s, prog, _ := buildSched(t)
	devs := steadyDevices(s)
	if _, hit := scheduleOnce(t, s, devs, 0); hit {
		t.Fatal("first call must miss")
	}
	if _, hit := scheduleOnce(t, s, devs, prog.LatencyBoundMS); !hit {
		t.Fatal("explicit default bound must share the normalized-0 entry")
	}
	if _, hit := scheduleOnce(t, s, devs, prog.LatencyBoundMS/2); hit {
		t.Fatal("a different bound must be a different key")
	}
}

// TestPlanCacheLRUEviction fills a capacity-2 cache with three distinct
// signatures and checks the oldest untouched entry is the one evicted.
func TestPlanCacheLRUEviction(t *testing.T) {
	s, _, _ := buildSched(t)
	s.SetPlanCacheCapacity(2)
	devs := steadyDevices(s)

	states := []float64{0, 1, 2}
	for _, f := range states[:2] {
		devs[0].FreeAtMS = f
		if _, hit := scheduleOnce(t, s, devs, 0); hit {
			t.Fatalf("priming FreeAtMS=%v must miss", f)
		}
	}
	// Touch state 0 so state 1 becomes least recently used.
	devs[0].FreeAtMS = states[0]
	if _, hit := scheduleOnce(t, s, devs, 0); !hit {
		t.Fatal("state 0 should be cached")
	}
	// Insert state 2: evicts state 1, keeps state 0.
	devs[0].FreeAtMS = states[2]
	if _, hit := scheduleOnce(t, s, devs, 0); hit {
		t.Fatal("state 2 was never planned")
	}
	if n := s.PlanCacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, capacity is 2", n)
	}
	devs[0].FreeAtMS = states[0]
	if _, hit := scheduleOnce(t, s, devs, 0); !hit {
		t.Fatal("state 0 was recently used and must survive the eviction")
	}
	devs[0].FreeAtMS = states[1]
	if _, hit := scheduleOnce(t, s, devs, 0); hit {
		t.Fatal("state 1 was least recently used and must have been evicted")
	}
}

// TestPlanCacheDisabled checks capacity ≤ 0 turns the cache off entirely.
func TestPlanCacheDisabled(t *testing.T) {
	s, _, _ := buildSched(t)
	s.SetPlanCacheCapacity(0)
	devs := steadyDevices(s)
	for i := 0; i < 3; i++ {
		if _, err := s.Schedule(devs, 0); err != nil {
			t.Fatal(err)
		}
	}
	if h, m := s.PlanCacheStats(); h != 0 || m != 0 {
		t.Fatalf("disabled cache recorded hits=%d misses=%d", h, m)
	}
	if n := s.PlanCacheLen(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
}

// TestPlanCacheHitIsSharedImmutable checks the zero-copy contract: every
// hit aliases the single sealed plan, with the pre-sorted order pointing
// into the plan's own assignments, and a PlanView rebases per-request
// deviations without touching the shared plan.
func TestPlanCacheHitIsSharedImmutable(t *testing.T) {
	s, _, _ := buildSched(t)
	devs := steadyDevices(s)
	first, _ := scheduleOnce(t, s, devs, 0)
	second, hit := scheduleOnce(t, s, devs, 0)
	if !hit {
		t.Fatal("second call must hit")
	}
	if first != second {
		t.Fatal("hits must be zero-copy: same *Plan for the same signature")
	}
	if !second.Sealed() {
		t.Fatal("cached plan must be sealed")
	}
	// The sealed plan carries its pre-sorted order, consistent with its
	// own assignment structs.
	ord := second.Order()
	if len(ord) != len(second.Assignments) {
		t.Fatalf("order has %d entries, want %d", len(ord), len(second.Assignments))
	}
	for _, a := range ord {
		if second.Assignments[a.Kernel] != a {
			t.Fatalf("order entry %q does not point at the plan's own assignment", a.Kernel)
		}
	}
	// Per-request deviations go into a caller-owned PlanView, leaving the
	// shared plan untouched.
	var v PlanView
	v.Reset(first, len(ord))
	for i, a := range ord {
		v.Assign[i] = a
	}
	retry := *ord[0]
	retry.StartMS = -1
	v.Assign[0] = &retry
	third, hit := scheduleOnce(t, s, devs, 0)
	if !hit {
		t.Fatal("third call must hit")
	}
	for k, a := range third.Assignments {
		if a.StartMS < 0 {
			t.Fatalf("view rebase leaked into the shared plan (kernel %q)", k)
		}
	}
	// Reset recycles the view's slot array for the next request.
	prev := &v.Assign[0]
	v.Reset(third, len(ord))
	if &v.Assign[0] != prev {
		t.Fatal("Reset must reuse the view's assignment slots")
	}
	for i := range v.Assign {
		if v.Assign[i] != nil {
			t.Fatalf("Reset left slot %d populated", i)
		}
	}
}

// plansBitIdentical fails the test unless a and b agree in every field the
// runtime reads, bit for bit.
func plansBitIdentical(t *testing.T, label string, a, b *Plan) {
	t.Helper()
	f64 := math.Float64bits
	if f64(a.MakespanMS) != f64(b.MakespanMS) || f64(a.EnergyMJ) != f64(b.EnergyMJ) ||
		f64(a.BoundMS) != f64(b.BoundMS) || a.EnergySwaps != b.EnergySwaps {
		t.Fatalf("%s: plan summaries differ:\n  %+v\n  %+v", label, a, b)
	}
	if len(a.Assignments) != len(b.Assignments) {
		t.Fatalf("%s: %d vs %d assignments", label, len(a.Assignments), len(b.Assignments))
	}
	for k, x := range a.Assignments {
		y := b.Assignments[k]
		if y == nil {
			t.Fatalf("%s: kernel %q missing from second plan", label, k)
		}
		if x.Impl != y.Impl || x.Device != y.Device ||
			f64(x.StartMS) != f64(y.StartMS) || f64(x.EndMS) != f64(y.EndMS) ||
			f64(x.ExecMS) != f64(y.ExecMS) || f64(x.CommitMS) != f64(y.CommitMS) {
			t.Fatalf("%s: kernel %q differs:\n  %+v\n  %+v", label, k, x, y)
		}
	}
	ao, bo := a.Order(), b.Order()
	for i := range ao {
		if ao[i].Kernel != bo[i].Kernel {
			t.Fatalf("%s: order diverges at %d: %q vs %q", label, i, ao[i].Kernel, bo[i].Kernel)
		}
	}
}

// TestScheduleCachedMatchesUncached replays a deterministic series of
// device states — with backlog drift, mode toggles, slack retuning, DVFS
// changes, and residency churn — through a cached and an uncached
// scheduler, requiring bit-identical plans at every step. This is the
// memoization soundness contract: a hit must be indistinguishable from a
// cold planning run.
func TestScheduleCachedMatchesUncached(t *testing.T) {
	cached, _, _ := buildSched(t)
	cold, _, _ := buildSched(t)
	cold.SetPlanCacheCapacity(0)

	devsA := steadyDevices(cached)
	devsB := steadyDevices(cold)

	for step := 0; step < 400; step++ {
		// Deterministic, repeating perturbations. The periods share
		// factors (the composite state cycles every 16 steps), so the
		// cache sees each signature many times — like a governor settling
		// into a small set of operating points.
		backlog := float64(step%8) * 0.5
		devsA[0].FreeAtMS, devsB[0].FreeAtMS = backlog, backlog
		if step == 200 {
			devsA[1].LoadedImpl, devsB[1].LoadedImpl = "", ""
		}
		tp := step%16 >= 12
		cached.SetThroughputMode(tp)
		cold.SetThroughputMode(tp)
		slack := 0.6 - float64(step%4)*0.1
		cached.SetSlackFactor(slack)
		cold.SetSlackFactor(slack)
		load := float64(20 + step%2*40)
		cached.SetLoadHint(load)
		cold.SetLoadHint(load)
		scale := 1.0
		if step%16 >= 8 {
			scale = 0.8
		}
		devsA[0].FreqScale, devsB[0].FreqScale = scale, scale

		pa, err := cached.Schedule(devsA, 0)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := cold.Schedule(devsB, 0)
		if err != nil {
			t.Fatal(err)
		}
		plansBitIdentical(t, "step", pa, pb)
	}
	h, m := cached.PlanCacheStats()
	if h == 0 {
		t.Fatal("the repeating series never hit the cache")
	}
	if float64(h)/float64(h+m) < 0.5 {
		t.Fatalf("hit rate %.2f below 0.5 on a repeating series (hits=%d misses=%d)",
			float64(h)/float64(h+m), h, m)
	}
}

// TestStaticCachedMatchesUncached is the same soundness contract for the
// baseline planner, whose key is just (bound, devices).
func TestStaticCachedMatchesUncached(t *testing.T) {
	_, prog, ks := buildSched(t)
	mk := func() *StaticPlanner {
		sp, err := NewStatic(prog, ks, device.FPGA, StaticAuto)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	cachedSP, coldSP := mk(), mk()
	coldSP.SetPlanCacheCapacity(0)
	devs := settingIDevices()
	for step := 0; step < 100; step++ {
		for i := 1; i < len(devs); i++ {
			devs[i].FreeAtMS = float64((step + i) % 4)
		}
		pa, err := cachedSP.Schedule(devs, 0)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := coldSP.Schedule(devs, 0)
		if err != nil {
			t.Fatal(err)
		}
		plansBitIdentical(t, "static step", pa, pb)
	}
	if h, _ := cachedSP.PlanCacheStats(); h == 0 {
		t.Fatal("static planner never hit its cache on a repeating series")
	}
}

// TestImplIDsInterned asserts interning coverage: every implementation the
// DSE publishes carries a precomputed ID equal to the canonical rendering,
// so ImplID on the planning hot path is a pure field read.
func TestImplIDsInterned(t *testing.T) {
	s, prog, ks := buildSched(t)
	seen := 0
	for _, k := range prog.Kernels() {
		for _, class := range []device.Class{device.GPU, device.FPGA} {
			sp := ks.Space(k.Name, class)
			if sp == nil {
				continue
			}
			for _, im := range sp.Feasible {
				seen++
				want := im.Kernel + "|" + im.Board + "|" + im.Config.String()
				if im.ID == "" {
					t.Fatalf("%s %s impl %s not interned", k.Name, class, want)
				}
				if im.ID != want {
					t.Fatalf("interned ID %q != canonical %q", im.ID, want)
				}
				if got := ImplID(im); got != want {
					t.Fatalf("ImplID returned %q, want %q", got, want)
				}
			}
		}
	}
	if seen == 0 {
		t.Fatal("no implementations inspected")
	}
	// The scheduler's identity index must round-trip every frontier impl.
	for id, im := range s.implByID {
		if ImplID(im) != id {
			t.Fatalf("implByID key %q does not match its impl's ID %q", id, ImplID(im))
		}
	}
}
