//go:build plancheck

package sched

// planCheckEnabled turns on the plan-immutability guard: sealed plans are
// fingerprinted at insertion and re-verified on every cache touch, so any
// mutation of a shared zero-copy plan panics at the next lookup instead of
// silently corrupting other requests. Build with `-tags plancheck` (CI runs
// the sched tests this way); the default build compiles the checks out.
const planCheckEnabled = true
