// Package sched implements Poly's runtime kernel scheduler (Section V).
//
// Given an application's kernel DAG G = (K, E), the per-kernel design
// spaces from DSE, and the node's current device states, the scheduler
// plans one request in two steps:
//
//	Step 1 — latency optimization: kernels are ranked by the latency
//	priority W_L (Eq. 2-3, a HEFT-style upward rank) and placed one by
//	one on the (implementation, device) pair with the earliest finish
//	time, using per-device earliest-start-time bookkeeping (Eq. 4).
//
//	Step 2 — energy optimization: the latency slack LB − L is spent by
//	re-ranking kernels with the energy priority W_E (Eq. 5) and greedily
//	swapping in more energy-efficient implementations (possibly on the
//	other accelerator family) as long as the bound still holds.
//
// The package also provides the static baseline planner used by the
// Homo-GPU/Homo-FPGA systems of Sirius [4]: a fixed hard mapping of all
// kernels onto one accelerator family with a single implementation.
package sched

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"

	"poly/internal/device"
	"poly/internal/dse"
	"poly/internal/model"
	"poly/internal/opencl"
)

// DeviceState is the scheduler's view of one accelerator at planning time.
type DeviceState struct {
	// Name identifies the board within the node.
	Name string
	// Class is GPU or FPGA.
	Class device.Class
	// FreeAtMS is when the board can start new work, relative to the
	// planning instant (the T_queue(d_n) of Eq. 4).
	FreeAtMS float64
	// LoadedImpl is the FPGA's resident bitstream ID ("" if blank or GPU).
	LoadedImpl string
	// ReconfigMS is the FPGA reconfiguration penalty when LoadedImpl
	// differs from the impl being placed (0 for GPUs).
	ReconfigMS float64
	// FreqScale scales execution time for the board's current DVFS point
	// (1 for nominal; 0 is treated as 1).
	FreqScale float64
	// lastEndMS is planner-internal: the finish time of the last kernel
	// this plan placed on the board. A different implementation cannot
	// start before it (no cross-bitstream pipelining, no cross-kernel
	// batching); the same implementation may share from FreeAtMS.
	lastEndMS float64
}

// availableAt returns when a task of the given implementation could start
// on the device, given what this plan already booked.
func (d *DeviceState) availableAt(implID string) float64 {
	if implID == d.LoadedImpl {
		return d.FreeAtMS
	}
	if d.lastEndMS > d.FreeAtMS {
		return d.lastEndMS
	}
	return d.FreeAtMS
}

// sameImpl reports whether im is the device's resident implementation,
// comparing interned IDs without rendering anything.
func (d *DeviceState) sameImpl(im *model.Impl) bool {
	return d.LoadedImpl != "" && d.LoadedImpl == ImplID(im)
}

func (d *DeviceState) freq() float64 {
	if d.FreqScale <= 0 {
		return 1
	}
	return d.FreqScale
}

// execMS returns the planning-time execution estimate of im on d,
// including a reconfiguration penalty when the resident bitstream differs.
func (d *DeviceState) execMS(im *model.Impl) float64 {
	t := im.LatencyMS / d.freq()
	if d.Class == device.FPGA && !d.sameImpl(im) {
		t += d.ReconfigMS
	}
	return t
}

// groupExecMS prices an admission group of n requests all executing this
// kernel under im on d — the completion estimate of the LAST member.
// Batched GPU variants absorb the group in ceil(n/cap) shared launches,
// so co-executing there is near-free; FPGA members pipeline behind each
// other at one initiation interval each. n == 1 is exactly execMS, so
// single-request planning is untouched.
func (d *DeviceState) groupExecMS(im *model.Impl, n int) float64 {
	t := d.execMS(im)
	if n <= 1 {
		return t
	}
	if d.Class == device.GPU {
		cap := int(batchCap(im))
		launches := (n + cap - 1) / cap
		return t + float64(launches-1)*im.LatencyMS/d.freq()
	}
	lat := im.LatencyMS / d.freq()
	ii := im.IntervalMS / d.freq()
	if ii <= 0 || ii > lat {
		ii = lat
	}
	return t + float64(n-1)*ii
}

// commitMS returns the marginal device occupancy of one request under im:
// latency/fill on a GPU (the launch is shared by the requests expected to
// batch with it), reconfiguration plus one initiation interval on a
// pipelined FPGA.
func (d *DeviceState) commitMS(im *model.Impl, fill float64) float64 {
	if d.Class == device.GPU {
		if fill < 1 {
			fill = 1
		}
		return im.LatencyMS / d.freq() / fill
	}
	lat := im.LatencyMS / d.freq()
	ii := im.IntervalMS / d.freq()
	if ii <= 0 || ii > lat {
		ii = lat
	}
	if !d.sameImpl(im) {
		ii += d.ReconfigMS
	}
	return ii
}

// ImplID is the canonical identity of an implementation, shared with the
// device simulators (batching and reconfiguration key). It is a thin
// accessor over the interned model.Impl.ID — every Impl built by the
// model evaluators carries its identity precomputed, so this is a field
// read on the hot path. Hand-constructed Impls (tests) fall back to
// rendering the identity without interning it.
func ImplID(im *model.Impl) string {
	if im.ID != "" {
		return im.ID
	}
	return im.Kernel + "|" + im.Board + "|" + im.Config.String()
}

// Assignment is one kernel's placement in a plan.
type Assignment struct {
	Kernel  string
	Impl    *model.Impl
	Device  string
	StartMS float64
	EndMS   float64
	// ExecMS is the pure execution span; EndMS − StartMS − ExecMS is the
	// FPGA reconfiguration the placement paid, if any.
	ExecMS float64
	// CommitMS is the marginal device-time this request consumes: a
	// batched GPU launch shares its latency across the batch, and a
	// pipelined FPGA admits a new request every initiation interval, so
	// queue bookkeeping advances by less than the request's own span.
	CommitMS float64
}

// Plan is a complete placement of one request's kernel DAG.
type Plan struct {
	// Assignments maps kernel name → placement.
	Assignments map[string]*Assignment
	// MakespanMS is the planned end-to-end latency L.
	MakespanMS float64
	// EnergyMJ is Σ power × busy-time over the assignments.
	EnergyMJ float64
	// BoundMS is the latency bound LB the plan was built against.
	BoundMS float64
	// EnergySwaps counts Step-2 implementation replacements applied.
	EnergySwaps int
	// order caches Order()'s result. The planners replace the whole Plan
	// value when they revise a plan (which resets the cache to nil), and
	// finished plans are immutable, so the cache can never go stale.
	// Callers must treat the returned slice as read-only.
	order []*Assignment
	// sealed marks the plan frozen for zero-copy sharing via the plan
	// cache; sum is its plancheck fingerprint (see plancache.go).
	sealed bool
	sum    uint64
}

// SlackMS returns LB − L (negative when the bound is missed).
func (p *Plan) SlackMS() float64 { return p.BoundMS - p.MakespanMS }

// Order returns the kernels sorted by planned start time. The sorted
// slice is computed once and cached: the serving loop walks every
// admitted request's plan in start order, and re-sorting per admit was
// measurable at trace-replay scale. Callers must not mutate the result.
func (p *Plan) Order() []*Assignment {
	if p.order != nil && len(p.order) == len(p.Assignments) {
		return p.order
	}
	out := make([]*Assignment, 0, len(p.Assignments))
	for _, a := range p.Assignments {
		out = append(out, a)
	}
	// slices.SortFunc, not sort.Slice: the reflection-based swapper
	// allocates, and Order runs once per freshly built plan.
	slices.SortFunc(out, func(a, b *Assignment) int {
		if a.StartMS != b.StartMS {
			return cmp.Compare(a.StartMS, b.StartMS)
		}
		return strings.Compare(a.Kernel, b.Kernel)
	})
	p.order = out
	return out
}

// Scheduler plans requests of one program over a node's devices.
type Scheduler struct {
	prog   *opencl.Program
	spaces *dse.KernelSpaces
	pcie   device.PCIeSpec
	// loadRPS is the monitor's recent arrival-rate estimate, used to
	// predict how full GPU batches will run: at λ RPS a launch of
	// latency T accumulates ≈ λ·T requests, so a batched variant's
	// per-request cost is its batch latency divided by that fill.
	loadRPS float64
	// tpMode switches placement scoring to sustained-throughput terms
	// (marginal occupancy weighted over single-request finish) and mutes
	// the energy step — the "boost to higher performance mode" reaction
	// of Section VI-C when load spikes.
	tpMode bool
	// slack is the fraction of the latency bound Step 2 may plan into.
	// The paper "conservatively relax[es] the latency slack": planning a
	// request to finish exactly at LB leaves no headroom for queueing
	// jitter or model error, so energy swaps target slack × LB instead.
	slack float64
	// batchN is the admission batcher's group size hint: when the runtime
	// plans a staged group of n compatible requests as one unit, batched
	// GPU variants are guaranteed at least n requests per launch, so the
	// fill floor rises from the stochastic λ·T estimate to the known group
	// size. 1 (the default) is single-request planning and leaves every
	// prediction exactly as before.
	batchN int
	// maxGPUBatch caches the widest GPU batch capacity across the Step-1
	// candidate lists, computed once at construction — the natural upper
	// bound for admission-side group sizes.
	maxGPUBatch int
	// order caches the W_L-descending kernel order.
	order []string
	// wl caches the latency priorities.
	wl map[string]float64
	// implByID resolves implementation identities, used to recognize the
	// bitstream already resident on an FPGA (stickiness).
	implByID map[string]*model.Impl
	// gpuCands precomputes the Step-1 GPU candidate list per kernel
	// (min-latency variant plus, when distinct, the max-throughput
	// batched variant) so placement loops never allocate or rescan the
	// frontier.
	gpuCands map[string][]*model.Impl

	// healthEpoch is the runtime's board-health generation counter,
	// folded into the plan-cache key: any health transition (a board
	// marked suspect, down, or recovered) bumps it, so plans memoized
	// under the old health view can never place work on a dead board
	// even if the visible device vector happens to match.
	healthEpoch uint64

	// cache memoizes full plans by exact device-state + mode signature;
	// nil when disabled. keyBuf is the reused key scratch buffer.
	cache  *PlanCache
	keyBuf []byte
	// scratchBase/scratchWork are the per-call device working copies,
	// reused across Schedule calls so steady serving allocates nothing
	// for device bookkeeping.
	scratchBase, scratchWork []DeviceState
	// resimDevs is resimulate's reusable device scratch; swapsBuf backs
	// rankedSwaps' candidate list.
	resimDevs []DeviceState
	swapsBuf  []rankedSwap

	// knames/kidx intern the program's kernel names to dense indices in
	// declaration order; orderIdx is the W_L-descending priority order
	// expressed in those indices. All planning inner loops are keyed by
	// index so a cold plan touches no maps and allocates nothing until
	// the final published Plan is built.
	knames   []string
	kidx     map[string]int32
	orderIdx []int32
	// predsIdx precomputes each kernel's predecessor edges — with the
	// PCIe transfer time already priced — in declaration-edge order,
	// matching Program.Preds exactly.
	predsIdx [][]predEdge
	// paretoGPU/paretoFPGA/gpuCandsIdx are the per-kernel candidate
	// implementation lists resolved to indices once at construction.
	paretoGPU   [][]*model.Impl
	paretoFPGA  [][]*model.Impl
	gpuCandsIdx [][]*model.Impl
	// states are the current/trial/best placement slabs the two-step
	// planner double-buffers between; emptySlab is a permanently
	// unplaced slab for single-kernel placement (PlaceKernel).
	states    [3]planState
	emptySlab []Assignment
}

// predEdge is one interned predecessor edge.
type predEdge struct {
	from       int32
	transferMS float64
}

// planState is one in-progress placement: a flat per-kernel-index slab of
// assignment values (Impl == nil while unplaced) plus the running totals.
// The planner owns three and double-buffers trial placements between
// them, so repair and energy rounds allocate nothing.
type planState struct {
	slab       []Assignment
	makespanMS float64
	energyMJ   float64
}

func (st *planState) reset(nk int) {
	if cap(st.slab) < nk {
		st.slab = make([]Assignment, nk)
	} else {
		st.slab = st.slab[:nk]
		for i := range st.slab {
			st.slab[i] = Assignment{}
		}
	}
	st.makespanMS, st.energyMJ = 0, 0
}

func (st *planState) copyFrom(src *planState) {
	st.slab = append(st.slab[:0], src.slab...)
	st.makespanMS, st.energyMJ = src.makespanMS, src.energyMJ
}

// New builds a scheduler for a program and its explored design spaces.
func New(prog *opencl.Program, spaces *dse.KernelSpaces) (*Scheduler, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	for _, k := range prog.Kernels() {
		if spaces.Space(k.Name, device.GPU) == nil && spaces.Space(k.Name, device.FPGA) == nil {
			return nil, fmt.Errorf("sched: kernel %q has no design space", k.Name)
		}
	}
	s := &Scheduler{prog: prog, spaces: spaces, pcie: device.DefaultPCIe, slack: defaultSlackFactor,
		batchN:   1,
		implByID: make(map[string]*model.Impl),
		gpuCands: make(map[string][]*model.Impl),
		cache:    newPlanCache(defaultPlanCacheCapacity)}
	for _, k := range prog.Kernels() {
		for _, class := range []device.Class{device.GPU, device.FPGA} {
			if sp := spaces.Space(k.Name, class); sp != nil {
				for _, im := range sp.Pareto {
					s.implByID[ImplID(im)] = im
				}
			}
		}
		if sp := spaces.Space(k.Name, device.GPU); sp != nil && len(sp.Pareto) > 0 {
			cands := sp.Pareto[:1]
			if thr := sp.MaxThroughput(); thr != nil && thr != sp.Pareto[0] {
				cands = []*model.Impl{sp.Pareto[0], thr}
			}
			s.gpuCands[k.Name] = cands
			for _, im := range cands {
				if im.Config.Batch > s.maxGPUBatch {
					s.maxGPUBatch = im.Config.Batch
				}
			}
		}
	}
	s.computePriorities()
	s.buildIndex()
	return s, nil
}

// buildIndex interns the program's kernels and resolves every per-kernel
// lookup (priority order, predecessor edges, candidate lists) to dense
// indices, so the planning inner loops never consult a map.
func (s *Scheduler) buildIndex() {
	ks := s.prog.Kernels()
	nk := len(ks)
	s.knames = make([]string, nk)
	s.kidx = make(map[string]int32, nk)
	for i, k := range ks {
		s.knames[i] = k.Name
		s.kidx[k.Name] = int32(i)
	}
	s.orderIdx = make([]int32, len(s.order))
	for i, name := range s.order {
		s.orderIdx[i] = s.kidx[name]
	}
	s.predsIdx = make([][]predEdge, nk)
	s.paretoGPU = make([][]*model.Impl, nk)
	s.paretoFPGA = make([][]*model.Impl, nk)
	s.gpuCandsIdx = make([][]*model.Impl, nk)
	for i, name := range s.knames {
		for _, e := range s.prog.Preds(name) {
			s.predsIdx[i] = append(s.predsIdx[i],
				predEdge{from: s.kidx[e.From], transferMS: s.transferMS(e)})
		}
		if sp := s.spaces.Space(name, device.GPU); sp != nil {
			s.paretoGPU[i] = sp.Pareto
		}
		if sp := s.spaces.Space(name, device.FPGA); sp != nil {
			s.paretoFPGA[i] = sp.Pareto
		}
		s.gpuCandsIdx[i] = s.gpuCands[name]
	}
	s.emptySlab = make([]Assignment, nk)
}

// candidatesIdx returns the Pareto implementations for a kernel index on
// a device class.
func (s *Scheduler) candidatesIdx(ki int32, class device.Class) []*model.Impl {
	if class == device.GPU {
		return s.paretoGPU[ki]
	}
	if class == device.FPGA {
		return s.paretoFPGA[ki]
	}
	return nil
}

// SetPlanCacheCapacity resizes the plan cache to hold up to n memoized
// plans (dropping all current entries and counters); n <= 0 disables
// caching entirely, which is useful for equivalence testing and for
// callers that present never-repeating device states.
func (s *Scheduler) SetPlanCacheCapacity(n int) { s.cache = newPlanCache(n) }

// PlanCacheStats reports the plan cache's hit/miss counters (zeros when
// the cache is disabled).
func (s *Scheduler) PlanCacheStats() (hits, misses int) { return s.cache.Stats() }

// PlanCacheLen reports how many distinct device-state signatures are
// currently memoized.
func (s *Scheduler) PlanCacheLen() int { return s.cache.Len() }

// SetHealthEpoch folds the runtime's board-health generation into the
// plan-cache key. Planning itself never reads it — the runtime already
// excludes unhealthy boards from the device vector — but keying on it
// guarantees a health transition invalidates every memoized plan.
func (s *Scheduler) SetHealthEpoch(e uint64) { s.healthEpoch = e }

// defaultSlackFactor leaves 30 % of the bound as queueing headroom.
const defaultSlackFactor = 0.6

// SetSlackFactor adjusts how much of the latency bound Step 2 may plan
// into, clamped to [0.1, 1]. The runtime's monitor feedback tightens it
// when observed tails approach the bound and restores it when load
// subsides (Section VI-C's self-correction loop).
func (s *Scheduler) SetSlackFactor(f float64) {
	if f < 0.1 {
		f = 0.1
	}
	if f > 1 {
		f = 1
	}
	s.slack = f
}

// SlackFactor returns the current Step-2 planning headroom.
func (s *Scheduler) SlackFactor() float64 { return s.slack }

// SetThroughputMode toggles high-load placement scoring: under pressure
// the scheduler values a device's marginal occupancy (batch/pipeline
// sharing) three times as much as the individual request's finish time,
// and stops spending slack on energy swaps.
func (s *Scheduler) SetThroughputMode(on bool) { s.tpMode = on }

// ThroughputMode reports the current mode.
func (s *Scheduler) ThroughputMode() bool { return s.tpMode }

// SetLoadHint feeds the monitor's arrival-rate estimate (requests per
// second) into the scheduler's batch-fill predictions. The hint is
// quantized to whole RPS: the monitor's estimate is integral arrivals
// over a fixed window (so quantization is exact for the governor), and
// bucketing keeps float jitter in ad-hoc hints from fragmenting the
// plan-cache key space.
func (s *Scheduler) SetLoadHint(rps float64) {
	if rps < 0 {
		rps = 0
	}
	s.loadRPS = math.Round(rps)
}

// SetBatchSize feeds the admission batcher's group size into fill
// predictions: a staged group of n compatible requests submits together,
// so batched GPU variants are known — not just expected — to share each
// launch among at least n requests (up to the implementation's cap).
// Values below 1 clamp to 1, which restores single-request planning.
// Like the load hint, the value is folded into the plan-cache key, so
// group plans and single-request plans never alias.
func (s *Scheduler) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	s.batchN = n
}

// BatchSize reports the current group-size hint.
func (s *Scheduler) BatchSize() int { return s.batchN }

// MaxGPUBatch returns the widest GPU batch capacity across the program's
// Step-1 candidate implementations — the point past which a larger
// admission group cannot amortize further launches. At least 1, even for
// FPGA-only programs.
func (s *Scheduler) MaxGPUBatch() int {
	if s.maxGPUBatch < 1 {
		return 1
	}
	return s.maxGPUBatch
}

// batchCap returns the implementation's full batch capacity as a float.
// Queue bookkeeping uses the optimistic full-batch marginal cost: under
// the loads where queues matter, batches do fill.
func batchCap(im *model.Impl) float64 {
	if im.Config.Batch < 1 {
		return 1
	}
	return float64(im.Config.Batch)
}

// expectedFill predicts how many requests share one launch of im: the
// arrivals during one batch latency, at least 1, at most the batch cap.
// When planning for an admission group (batchN > 1) the group size is a
// guaranteed floor — those requests submit at the same instant — so the
// fill is at least min(batchN, cap) regardless of the load estimate.
func (s *Scheduler) expectedFill(im *model.Impl) float64 {
	b := im.Config.Batch
	if b <= 1 {
		return 1
	}
	fill := s.loadRPS * im.LatencyMS / 1000
	if g := float64(s.batchN); g > fill {
		fill = g
	}
	if fill < 1 {
		return 1
	}
	if fill > float64(b) {
		return float64(b)
	}
	return fill
}

// perRequestEnergyMJ is the energy one request is charged under im: the
// launch energy shared by the expected batch fill.
func (s *Scheduler) perRequestEnergyMJ(im *model.Impl, execMS float64) float64 {
	return im.PowerW * execMS / s.expectedFill(im)
}

// Program returns the scheduled program.
func (s *Scheduler) Program() *opencl.Program { return s.prog }

// LatencyPriority returns W_L(kernel) (Eq. 2), for inspection and tests.
func (s *Scheduler) LatencyPriority(kernel string) float64 { return s.wl[kernel] }

// minLatencyMS returns T_min(k_i) (Eq. 3): the minimum execution latency
// across every implementation on every platform.
func (s *Scheduler) minLatencyMS(kernel string) float64 {
	best := math.Inf(1)
	for _, class := range []device.Class{device.GPU, device.FPGA} {
		sp := s.spaces.Space(kernel, class)
		if sp == nil {
			continue
		}
		if im := sp.MinLatency(); im != nil && im.LatencyMS < best {
			best = im.LatencyMS
		}
	}
	return best
}

// transferMS returns T(e_ij): the PCIe time for the edge's bytes.
func (s *Scheduler) transferMS(e opencl.KernelEdge) float64 {
	return s.pcie.TransferMS(e.Bytes)
}

// computePriorities fills wl (Eq. 2) bottom-up and sorts kernels in
// descending priority; an upward rank guarantees predecessors come first.
func (s *Scheduler) computePriorities() {
	topo, err := s.prog.TopoSort()
	if err != nil {
		// New validated the program; a cycle here is a programming error.
		panic("sched: validated program failed toposort: " + err.Error())
	}
	s.wl = make(map[string]float64, len(topo))
	for i := len(topo) - 1; i >= 0; i-- {
		k := topo[i]
		var succMax float64
		for _, e := range s.prog.Succs(k) {
			if v := s.transferMS(e) + s.wl[e.To]; v > succMax {
				succMax = v
			}
		}
		s.wl[k] = s.minLatencyMS(k) + succMax
	}
	s.order = append([]string(nil), topo...)
	sort.SliceStable(s.order, func(i, j int) bool {
		return s.wl[s.order[i]] > s.wl[s.order[j]]
	})
}

// ImplByID resolves an implementation identity from this scheduler's
// design spaces, or nil.
func (s *Scheduler) ImplByID(id string) *model.Impl { return s.implByID[id] }

// PreferredFPGAImpl returns the implementation the runtime should keep
// resident for a kernel on otherwise-idle FPGAs: the most energy-
// efficient frontier point. Background provisioning with it means a
// request never pays a foreground reconfiguration for this kernel.
func (s *Scheduler) PreferredFPGAImpl(kernel string) *model.Impl {
	sp := s.spaces.Space(kernel, device.FPGA)
	if sp == nil {
		return nil
	}
	fast := sp.MinLatency()
	if fast == nil {
		return nil
	}
	// The most efficient design that stays within 1.4× of the fastest:
	// residency locks the board to one bitstream, so a deeply-derated
	// variant would cost QoS whenever load returns.
	best := fast
	for _, im := range sp.Pareto {
		if im.LatencyMS <= 1.4*fast.LatencyMS &&
			im.EfficiencyRPSPerW() > best.EfficiencyRPSPerW() {
			best = im
		}
	}
	return best
}

// resident returns the implementation loaded on an FPGA if it implements
// the given kernel, else nil.
func (s *Scheduler) resident(kernel string, d *DeviceState) *model.Impl {
	if d.Class != device.FPGA || d.LoadedImpl == "" {
		return nil
	}
	im := s.implByID[d.LoadedImpl]
	if im == nil || im.Kernel != kernel {
		return nil
	}
	return im
}

// Schedule runs both optimization steps for one request. devices is the
// node's current state; boundMS is the application's latency bound LB
// (≤0 uses the program's bound). The returned plan never violates a bound
// that Step 1 alone could meet.
//
// Plans are memoized: when the node presents a device-state signature the
// scheduler has planned before — under the same bound, load hint, slack,
// and throughput mode — the cached plan itself is returned, zero-copy,
// and is bit-identical to what a cold planning run would produce, because
// planning is a pure function of exactly those inputs and all times are
// relative to the planning instant. Returned plans are immutable (sealed
// at insertion; the plancheck build tag turns mutation into a panic):
// callers needing per-request deviations rebase into their own PlanView.
func (s *Scheduler) Schedule(devices []DeviceState, boundMS float64) (*Plan, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("sched: no devices")
	}
	if boundMS <= 0 {
		boundMS = s.prog.LatencyBoundMS
	}
	if s.cache == nil {
		return s.scheduleCold(devices, boundMS)
	}
	key := s.planKey(devices, boundMS)
	if hit := s.cache.get(key); hit != nil {
		return hit, nil
	}
	plan, err := s.scheduleCold(devices, boundMS)
	if err != nil {
		return nil, err
	}
	// Pre-sort before sealing so every hit carries the start order and
	// the serving loop never re-sorts.
	plan.Order()
	plan.seal()
	s.cache.put(key, plan)
	return plan, nil
}

// PlaceKernel plans a single kernel in isolation against the given device
// states — the runtime's retry path after a task failure, where only the
// lost kernel needs a new home and the rest of the request's DAG keeps
// its placements. It reuses Step 1's placement scoring (EFT plus marginal
// occupancy, resident-bitstream stickiness, eviction as a last resort)
// with no predecessor constraints: the failed kernel's inputs are already
// materialized, so it is ready now.
func (s *Scheduler) PlaceKernel(kernel string, devices []DeviceState) (*Assignment, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("sched: no devices")
	}
	ki, ok := s.kidx[kernel]
	var out Assignment
	found := false
	if ok {
		work := append([]DeviceState(nil), devices...)
		found = s.findPlacement(ki, work, s.emptySlab, false, &out) ||
			s.findPlacement(ki, work, s.emptySlab, true, &out)
	}
	if !found {
		return nil, fmt.Errorf("sched: kernel %q has no implementation on any available device", kernel)
	}
	a := out
	return &a, nil
}

// planKey renders the exact planning signature into the reused key
// buffer: mode fields first, then the device vector.
func (s *Scheduler) planKey(devices []DeviceState, boundMS float64) []byte {
	b := s.keyBuf[:0]
	b = binary.LittleEndian.AppendUint64(b, s.healthEpoch)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(boundMS))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.loadRPS))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.slack))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.batchN))
	if s.tpMode {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendPlanKeyDevices(b, devices)
	s.keyBuf = b
	return b
}

// scheduleCold runs the real two-step planner. All intermediate state
// lives in the scheduler's reusable slabs; the only retained allocations
// are the published Plan (one struct, one map, one backing array).
func (s *Scheduler) scheduleCold(devices []DeviceState, boundMS float64) (*Plan, error) {
	// Work on copies: planning must not mutate the caller's device view,
	// and Step 2 replays placements from the same initial state. The
	// copies live in reusable scratch buffers — nothing below retains
	// them past the call.
	base := append(s.scratchBase[:0], devices...)
	work := append(s.scratchWork[:0], devices...)
	s.scratchBase, s.scratchWork = base, work

	cur, trial, best := &s.states[0], &s.states[1], &s.states[2]
	cur.reset(len(s.knames))

	// Step 1 — latency optimization.
	for _, ki := range s.orderIdx {
		if err := s.placeEFT(ki, work, cur.slab); err != nil {
			return nil, err
		}
	}
	s.tally(cur)

	// Step 1.5 — latency repair: greedy per-kernel EFT can strand a DAG
	// behind one backlogged board. When the planned makespan misses the
	// bound, retry alternative (device, implementation) placements that
	// shorten it — the optimizer "mak[ing] an adjustment using the latest
	// feedback" when the plan is predicted to violate QoS.
	s.repairLatency(cur, trial, best, base, boundMS)

	// Step 2 — energy-efficiency optimization on the slack.
	swaps := s.optimizeEnergy(cur, trial, base, boundMS)
	return s.buildPlan(cur, boundMS, swaps), nil
}

// buildPlan publishes the finished placement as a Plan: one backing array
// of assignments, one name-keyed map over it.
func (s *Scheduler) buildPlan(st *planState, boundMS float64, swaps int) *Plan {
	nk := len(s.knames)
	backing := make([]Assignment, nk)
	p := &Plan{Assignments: make(map[string]*Assignment, nk), BoundMS: boundMS,
		MakespanMS: st.makespanMS, EnergyMJ: st.energyMJ, EnergySwaps: swaps}
	for ki := 0; ki < nk; ki++ {
		if st.slab[ki].Impl == nil {
			continue
		}
		backing[ki] = st.slab[ki]
		p.Assignments[s.knames[ki]] = &backing[ki]
	}
	return p
}

// repairLatency iteratively moves kernels to the placement that most
// reduces the planned makespan while it exceeds the bound. Each round
// resimulates candidate moves into the trial slab and keeps the winner in
// the best slab; nothing allocates.
func (s *Scheduler) repairLatency(cur, trial, best *planState, base []DeviceState, boundMS float64) {
	for round := 0; round < 16 && cur.makespanMS > boundMS; round++ {
		bestFound := false
		bestScore := math.Inf(1)
		for _, ki := range s.orderIdx {
			a := &cur.slab[ki]
			if a.Impl == nil {
				continue
			}
			kernel := s.knames[ki]
			for di := range base {
				d := &base[di]
				all := s.candidatesIdx(ki, d.Class)
				if len(all) == 0 {
					continue
				}
				// Same candidate policy as placement: fastest variant,
				// plus the batched throughput variant on GPUs (a repair
				// under load must not flood the GPU with unbatchable
				// single-request launches), and only the resident
				// bitstream on FPGAs already serving this kernel.
				var candBuf [1]*model.Impl
				cands := all[:1]
				if d.Class == device.GPU {
					cands = s.gpuCandsIdx[ki]
				}
				if res := s.resident(kernel, d); res != nil {
					candBuf[0] = res
					cands = candBuf[:1]
				} else if d.Class == device.FPGA && d.LoadedImpl != "" {
					if other := s.implByID[d.LoadedImpl]; other != nil && other.Kernel != kernel {
						continue // repair must not evict live bitstreams either
					}
				}
				for _, im := range cands {
					if im == a.Impl && d.Name == a.Device {
						continue
					}
					if !s.resimulate(cur, trial, base, ki, swapCandidate{impl: im, device: d.Name}) {
						continue
					}
					// Score repairs like placements: makespan plus the
					// marginal occupancy the move leaves behind, so a
					// batched variant is not beaten by a batch-1 variant
					// that finishes 2 ms sooner but hogs the device.
					score := trial.makespanMS + d.commitMS(im, batchCap(im))
					if !bestFound || score < bestScore {
						bestFound = true
						bestScore = score
						best.copyFrom(trial)
					}
				}
			}
		}
		if !bestFound || best.makespanMS >= cur.makespanMS {
			return
		}
		cur.copyFrom(best)
	}
}

// placeEFT assigns one kernel to the (impl, device) pair with the best
// finish-time score, respecting device queues and predecessors. The first
// pass never evicts another kernel's live FPGA bitstream (evictions under
// load cause reconfiguration storms); if no placement exists without an
// eviction, a second pass allows it.
func (s *Scheduler) placeEFT(ki int32, devices []DeviceState, slab []Assignment) error {
	if !s.findPlacement(ki, devices, slab, false, &slab[ki]) &&
		!s.findPlacement(ki, devices, slab, true, &slab[ki]) {
		return fmt.Errorf("sched: kernel %q has no implementation on any available device", s.knames[ki])
	}
	s.commit(&slab[ki], devices)
	return nil
}

// findPlacement scores every (device, candidate) pair for one kernel and
// writes the winner into out, returning false when no placement exists.
func (s *Scheduler) findPlacement(ki int32, devices []DeviceState, slab []Assignment, allowEvict bool, out *Assignment) bool {
	kernel := s.knames[ki]
	// Track the best placement in locals and write the Assignment once at
	// the end: the inner loop runs per (device, candidate) for every
	// kernel of every request.
	var (
		found                bool
		bestScore            = math.Inf(1)
		bestImpl             *model.Impl
		bestDev              string
		bestEst, bestEnd     float64
		bestExec, bestCommit float64
	)
	for di := range devices {
		d := &devices[di]
		impls := s.candidatesIdx(ki, d.Class)
		if len(impls) == 0 {
			continue
		}
		// Step 1 considers the min-latency implementation per device (the
		// paper picks "the kernel implementation with shorter latency on
		// the corresponding accelerator"). GPUs also offer their
		// max-throughput (batched) variant — batching is how a GPU keeps
		// its queue short under load. On an FPGA whose resident bitstream
		// already implements this kernel, the resident implementation is
		// used as-is: replacing a working bitstream with a marginally
		// different one would pay an 80 ms reconfiguration every time two
		// variants alternate.
		var candBuf [1]*model.Impl
		cands := impls[:1]
		if d.Class == device.GPU {
			cands = s.gpuCandsIdx[ki]
		}
		if res := s.resident(kernel, d); res != nil {
			candBuf[0] = res
			cands = candBuf[:1]
		} else if d.Class == device.FPGA && !allowEvict && d.LoadedImpl != "" {
			if other := s.implByID[d.LoadedImpl]; other != nil && other.Kernel != kernel {
				continue // never evict a live bitstream in the first pass
			}
		}
		ready := s.estMS(ki, d, slab)
		for _, im := range cands {
			est := ready
			if avail := d.availableAt(ImplID(im)); avail > est {
				est = avail
			}
			end := est + d.groupExecMS(im, s.batchN)
			// Score = completion + marginal occupancy: between two
			// placements finishing alike, prefer the one that leaves the
			// device freer (batched/pipelined variants). Eviction adds
			// the displaced kernel's future reconfiguration.
			commitWeight := 1.0
			if s.tpMode {
				commitWeight = 2
			}
			commit := d.commitMS(im, batchCap(im))
			score := end + commitWeight*commit
			if d.Class == device.FPGA && d.LoadedImpl != "" {
				if other := s.implByID[d.LoadedImpl]; other != nil && other.Kernel != kernel {
					score += d.ReconfigMS
				}
			}
			if !found || score < bestScore {
				found = true
				bestScore = score
				bestImpl, bestDev = im, d.Name
				bestEst, bestEnd = est, end
				bestExec, bestCommit = im.LatencyMS/d.freq(), commit
			}
		}
	}
	if !found {
		return false
	}
	*out = Assignment{Kernel: kernel, Impl: bestImpl, Device: bestDev,
		StartMS: bestEst, EndMS: bestEnd, ExecMS: bestExec, CommitMS: bestCommit}
	return true
}

// estMS computes the predecessor-readiness part of EST(k_i, d_n)
// (Eq. 4): finish times plus PCIe transfers when crossing boards. The
// device-queue part is implementation-specific (availableAt).
func (s *Scheduler) estMS(ki int32, d *DeviceState, slab []Assignment) float64 {
	est := 0.0
	for _, e := range s.predsIdx[ki] {
		pa := &slab[e.from]
		if pa.Impl == nil {
			continue // unplaced predecessor: upward rank order prevents this
		}
		ready := pa.EndMS
		if pa.Device != d.Name {
			ready += e.transferMS
		}
		if ready > est {
			est = ready
		}
	}
	return est
}

// commit books the assignment on its device, advancing the queue estimate
// by the request's marginal occupancy.
func (s *Scheduler) commit(a *Assignment, devices []DeviceState) {
	for di := range devices {
		d := &devices[di]
		if d.Name != a.Device {
			continue
		}
		free := a.StartMS + a.CommitMS
		if free > d.FreeAtMS {
			d.FreeAtMS = free
		}
		if a.EndMS > d.lastEndMS {
			d.lastEndMS = a.EndMS
		}
		d.LoadedImpl = ImplID(a.Impl)
		return
	}
}

// tally recomputes a placement's makespan and energy totals. Sums run in
// the scheduler's fixed kernel order so identical placements produce
// bit-identical totals.
func (s *Scheduler) tally(st *planState) {
	st.makespanMS, st.energyMJ = 0, 0
	for _, ki := range s.orderIdx {
		a := &st.slab[ki]
		if a.Impl == nil {
			continue
		}
		if a.EndMS > st.makespanMS {
			st.makespanMS = a.EndMS
		}
		// Energy charges pure execution: reconfiguration is a one-time
		// cost amortized across the requests that reuse the bitstream,
		// so it shapes latency (EndMS) but not the steady-state energy
		// objective. Batched launches split their energy over the
		// expected fill.
		st.energyMJ += s.perRequestEnergyMJ(a.Impl, a.ExecMS)
	}
}

// optimizeEnergy is Step 2: iterate rounds of W_E-ranked implementation
// swaps, accepting the highest-ranked swap that keeps the plan within the
// bound and strictly reduces energy, until no swap survives — "Poly
// iteratively updates the kernels' implementations until the latency
// slack cannot be further reduced." Returns the number of swaps applied.
func (s *Scheduler) optimizeEnergy(cur, trial *planState, base []DeviceState, boundMS float64) int {
	if boundMS-cur.makespanMS <= 0 || s.tpMode {
		return 0
	}
	swaps := 0
	for round := 0; round < 64; round++ { // bound defends against cycling
		ranked := s.rankedSwaps(cur, base, boundMS)
		accepted := false
		effBound := boundMS * s.slack
		if effBound < cur.makespanMS {
			effBound = cur.makespanMS // never tighter than Step 1 achieved
		}
		for _, sw := range ranked {
			if !s.resimulate(cur, trial, base, sw.ki, sw.swapCandidate) ||
				trial.makespanMS > effBound || trial.energyMJ >= cur.energyMJ {
				continue
			}
			cur.copyFrom(trial)
			swaps++
			accepted = true
			break
		}
		if !accepted {
			return swaps
		}
	}
	return swaps
}

// swapCandidate is a prospective replacement implementation.
type swapCandidate struct {
	impl   *model.Impl
	device string
}

type rankedSwap struct {
	ki     int32
	kernel string
	we     float64
	swapCandidate
}

// rankedSwaps enumerates per-kernel replacement candidates and sorts them
// by descending W_E (Eq. 5): the (ΔP × ΔT) potential of trading latency
// for power. Only genuinely energy-saving replacements qualify. The
// returned slice is scratch owned by the scheduler: it is only read
// within one optimizeEnergy round and reused by the next call.
func (s *Scheduler) rankedSwaps(st *planState, devices []DeviceState, boundMS float64) []rankedSwap {
	out := s.swapsBuf[:0]
	for _, ki := range s.orderIdx {
		a := &st.slab[ki]
		if a.Impl == nil {
			continue
		}
		kernel := s.knames[ki]
		cur := a.Impl
		curT := a.ExecMS
		for di := range devices {
			d := &devices[di]
			if d.FreeAtMS > 0.2*boundMS {
				// Trading latency for energy is a light-load move; piling
				// energy-preferred work onto an already-backlogged board
				// converts slack into queueing collapse.
				continue
			}
			var candBuf [1]*model.Impl
			cands := s.candidatesIdx(ki, d.Class)
			if d.Class == device.FPGA && d.LoadedImpl != "" {
				res := s.implByID[d.LoadedImpl]
				switch {
				case res != nil && res.Kernel == kernel:
					// Sticky: a board already serving this kernel offers
					// only its resident bitstream.
					candBuf[0] = res
					cands = candBuf[:1]
				case res != nil:
					// Never evict another kernel's live bitstream just to
					// save energy; blank boards are the swap targets.
					continue
				}
			}
			var best rankedSwap
			found := false
			for _, im := range cands {
				if im == cur {
					continue
				}
				newT := im.LatencyMS / d.freq()
				curE := s.perRequestEnergyMJ(cur, curT)
				newE := s.perRequestEnergyMJ(im, newT)
				if curE-newE <= 0 {
					continue // no actual energy saving
				}
				we := (cur.PowerW - im.PowerW) * (newT - curT)
				if !found || we > best.we {
					found = true
					best = rankedSwap{ki: ki, kernel: kernel, we: we,
						swapCandidate: swapCandidate{impl: im, device: d.Name}}
				}
			}
			if found {
				out = append(out, best)
			}
		}
	}
	slices.SortFunc(out, func(a, b rankedSwap) int {
		if a.we != b.we {
			if a.we > b.we {
				return -1
			}
			return 1
		}
		if a.kernel != b.kernel {
			return strings.Compare(a.kernel, b.kernel)
		}
		return strings.Compare(a.device, b.device)
	})
	s.swapsBuf = out
	return out
}

// resimulate rebuilds the placement with the kernel at pinKi moved to
// cand, re-running list scheduling for start/end bookkeeping on a fresh
// copy of the initial device states. The result lands in dst; src is
// untouched. Returns false when the pinned device does not exist.
func (s *Scheduler) resimulate(src, dst *planState, base []DeviceState, pinKi int32, cand swapCandidate) bool {
	// devs is scheduler-owned scratch: resimulate runs inside tight
	// repair/energy loops and nothing retains it past the call.
	devs := append(s.resimDevs[:0], base...)
	s.resimDevs = devs
	dst.reset(len(s.knames))
	for _, ki := range s.orderIdx {
		im, devName := src.slab[ki].Impl, src.slab[ki].Device
		if ki == pinKi {
			im, devName = cand.impl, cand.device
		}
		if im == nil {
			continue
		}
		var dev *DeviceState
		for di := range devs {
			if devs[di].Name == devName {
				dev = &devs[di]
				break
			}
		}
		if dev == nil {
			return false
		}
		est := s.estMS(ki, dev, dst.slab)
		if avail := dev.availableAt(ImplID(im)); avail > est {
			est = avail
		}
		dst.slab[ki] = Assignment{Kernel: s.knames[ki], Impl: im, Device: devName,
			StartMS: est, EndMS: est + dev.groupExecMS(im, s.batchN),
			ExecMS:   im.LatencyMS / dev.freq(),
			CommitMS: dev.commitMS(im, batchCap(im))}
		s.commit(&dst.slab[ki], devs)
	}
	s.tally(dst)
	return true
}
