package sched

import (
	"testing"

	"poly/internal/device"
	"poly/internal/model"
)

func TestSetBatchSizeClamps(t *testing.T) {
	s, _, _ := buildSched(t)
	if s.BatchSize() != 1 {
		t.Fatalf("default batch size = %d, want 1", s.BatchSize())
	}
	s.SetBatchSize(0)
	if s.BatchSize() != 1 {
		t.Fatalf("batch size must clamp to 1, got %d", s.BatchSize())
	}
	s.SetBatchSize(4)
	if s.BatchSize() != 4 {
		t.Fatalf("batch size = %d, want 4", s.BatchSize())
	}
	s.SetBatchSize(1)
}

func TestMaxGPUBatchFromFrontier(t *testing.T) {
	s, _, _ := buildSched(t)
	got := s.MaxGPUBatch()
	if got < 1 {
		t.Fatalf("MaxGPUBatch = %d, want >= 1", got)
	}
	// It must equal the widest batch across every kernel's GPU frontier.
	want := 1
	for _, k := range s.prog.Kernels() {
		for _, im := range s.candidatesIdx(s.kidx[k.Name], device.GPU) {
			if im.Config.Batch > want {
				want = im.Config.Batch
			}
		}
	}
	if got != want {
		t.Fatalf("MaxGPUBatch = %d, want frontier-wide %d", got, want)
	}
}

// TestBatchSizeFloorsExpectedFill: an admission group of n requests
// guarantees n same-kernel tasks per launch regardless of the load
// estimate, so the fill floor is min(n, cap) even at zero load.
func TestBatchSizeFloorsExpectedFill(t *testing.T) {
	s, _, _ := buildSched(t)
	var batched *model.Impl
	for _, im := range s.candidatesIdx(s.kidx["k1"], device.GPU) {
		if batched == nil || im.Config.Batch > batched.Config.Batch {
			batched = im
		}
	}
	if batched == nil || batched.Config.Batch <= 1 {
		t.Skip("no batched frontier point")
	}
	cap := batched.Config.Batch
	s.SetLoadHint(0)
	if got := s.expectedFill(batched); got != 1 {
		t.Fatalf("zero-load single fill = %v, want 1", got)
	}
	s.SetBatchSize(cap)
	if got := s.expectedFill(batched); got != float64(cap) {
		t.Fatalf("group-of-%d fill = %v, want %d", cap, got, cap)
	}
	s.SetBatchSize(2 * batched.Config.Batch)
	if got := s.expectedFill(batched); got != float64(batched.Config.Batch) {
		t.Fatalf("oversize group fill = %v, want cap %d", got, batched.Config.Batch)
	}
	s.SetBatchSize(1)
}

// TestBatchSizeKeysPlanCache: the admission group size participates in the
// plan-cache key, so group plans and single-request plans never alias.
func TestBatchSizeKeysPlanCache(t *testing.T) {
	s, _, _ := buildSched(t)
	devs := steadyDevices(s)
	if _, hit := scheduleOnce(t, s, devs, 0); hit {
		t.Fatal("first call against an empty cache must miss")
	}
	s.SetBatchSize(4)
	if _, hit := scheduleOnce(t, s, devs, 0); hit {
		t.Fatal("a different batch size must be a different key")
	}
	s.SetBatchSize(1)
	if _, hit := scheduleOnce(t, s, devs, 0); !hit {
		t.Fatal("restoring batch size 1 must hit the primed entry")
	}
}
