package sched

import (
	"testing"
	"testing/quick"

	"poly/internal/device"
)

// TestSchedulePropertyRandomDeviceStates: for arbitrary (bounded) device
// backlogs, DVFS points, and resident bitstreams, every plan the
// scheduler emits must be structurally valid — dependencies respected, no
// same-board time overlap beyond pipelining rules, makespan = max end,
// non-negative energy — and deterministic for identical inputs.
func TestSchedulePropertyRandomDeviceStates(t *testing.T) {
	s, prog, ks := buildSched(t)
	k1impl := ks.FPGA["k1"].MinLatency()
	f := func(backlog [6]uint16, freqSel uint8, loadK1 bool, bound uint16) bool {
		devs := settingIDevices()
		for i := range devs {
			devs[i].FreeAtMS = float64(backlog[i] % 500)
		}
		if freqSel%2 == 1 {
			devs[0].FreqScale = 0.7
		}
		if loadK1 {
			devs[1].LoadedImpl = ImplID(k1impl)
		}
		b := float64(bound%400) + 50
		p1, err := s.Schedule(devs, b)
		if err != nil {
			return false
		}
		p2, err := s.Schedule(devs, b)
		if err != nil {
			return false
		}
		// Determinism.
		for k, a1 := range p1.Assignments {
			a2 := p2.Assignments[k]
			if a1.Device != a2.Device || a1.Impl != a2.Impl || a1.StartMS != a2.StartMS {
				return false
			}
		}
		// Structural validity.
		for _, e := range prog.Edges() {
			if p1.Assignments[e.To].StartMS < p1.Assignments[e.From].EndMS-1e-9 {
				return false
			}
		}
		var max float64
		for _, a := range p1.Assignments {
			if a.EndMS < a.StartMS || a.ExecMS < 0 || a.CommitMS < 0 {
				return false
			}
			if a.EndMS > max {
				max = a.EndMS
			}
		}
		return p1.MakespanMS == max && p1.EnergyMJ >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleOnlyGPUsOrOnlyFPGAs: degenerate nodes still plan.
func TestScheduleOnlyGPUsOrOnlyFPGAs(t *testing.T) {
	s, prog, _ := buildSched(t)
	gpusOnly := []DeviceState{
		{Name: "gpu0", Class: device.GPU, FreqScale: 1},
		{Name: "gpu1", Class: device.GPU, FreqScale: 1},
	}
	p, err := s.Schedule(gpusOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != len(prog.Kernels()) {
		t.Fatal("incomplete plan on GPU-only node")
	}
	fpgasOnly := []DeviceState{
		{Name: "fpga0", Class: device.FPGA, ReconfigMS: 80, FreqScale: 1},
	}
	p, err = s.Schedule(fpgasOnly, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Assignments {
		if a.Impl.Platform != device.FPGA {
			t.Fatal("non-FPGA impl on FPGA-only node")
		}
	}
}

// TestScheduleExtremeBacklogDegradesGracefully: absurd backlogs produce
// late but valid plans, never panics or negative spans.
func TestScheduleExtremeBacklogDegradesGracefully(t *testing.T) {
	s, _, _ := buildSched(t)
	devs := settingIDevices()
	for i := range devs {
		devs[i].FreeAtMS = 1e7
	}
	p, err := s.Schedule(devs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.MakespanMS < 1e7 {
		t.Fatal("backlog ignored")
	}
	if p.SlackMS() > 0 {
		t.Fatal("slack cannot be positive under a 10,000 s backlog")
	}
}
