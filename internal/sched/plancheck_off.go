//go:build !plancheck

package sched

// planCheckEnabled is false in default builds: the immutability guard in
// the plan cache compiles away entirely. See plancheck_on.go.
const planCheckEnabled = false
