//go:build plancheck

package sched

import "testing"

// TestPlanCheckPanicsOnMutatedCachedPlan verifies the debug guard: under
// the plancheck build tag, mutating a plan after it was sealed into the
// cache panics on the next cache touch instead of silently corrupting
// every other request sharing it.
func TestPlanCheckPanicsOnMutatedCachedPlan(t *testing.T) {
	s, _, _ := buildSched(t)
	devs := steadyDevices(s)
	plan, err := s.Schedule(devs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Sealed() {
		t.Fatal("cached plan must be sealed")
	}
	plan.Order()[0].StartMS += 1 // illegal: the plan is shared zero-copy
	defer func() {
		if recover() == nil {
			t.Fatal("mutated sealed plan must panic on the next cache hit")
		}
	}()
	_, _ = s.Schedule(devs, 0)
}
