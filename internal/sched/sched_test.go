package sched

import (
	"sort"
	"testing"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/dse"
	"poly/internal/model"
	"poly/internal/opencl"
	"poly/internal/opt"
)

// asrSrc mirrors the ASR DAG of Fig. 6: K1 ⇒ K4 and K2 ⇒ K3 ⇒ K4, with
// K1 a large dense (GPU-friendly) kernel and K2/K3 pipeline-heavy
// (FPGA-friendly) ones.
const asrSrc = `
program asr
latency_bound 200

kernel k1
  repeat 4000
  const w f32[1024x1024]
  in x f32[1024]
  map    m(x w, func=mac ops=2048 elems=1024)
  reduce r(m, func=add assoc elems=1024)
  out r

kernel k2
  repeat 2000
  const w f32[512x512]
  in x f32[512]
  map      m(x w, func=mac ops=1024 elems=512)
  pipeline p(m, funcs=[mul:1 tanh:4])
  out p

kernel k3
  repeat 2000
  in x f32[512]
  pipeline p(x, funcs=[mul:1 add:1 sigmoid:4])
  reduce   r(p, func=add assoc elems=128)
  out r

kernel k4
  repeat 2500
  const w f32[512x256]
  in x f32[512]
  map m(x w, func=mac ops=1024 elems=256)
  out m

edge k1 -> k4 bytes=4096
edge k2 -> k3 bytes=2048
edge k3 -> k4 bytes=512
`

func buildSched(t testing.TB) (*Scheduler, *opencl.Program, *dse.KernelSpaces) {
	t.Helper()
	prog := opencl.MustParse(asrSrc)
	pa, err := analysis.AnalyzeProgram(prog, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := dse.ExploreProgram(pa, device.AMDW9100, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(prog, ks)
	if err != nil {
		t.Fatal(err)
	}
	return s, prog, ks
}

func settingIDevices() []DeviceState {
	devs := []DeviceState{{Name: "gpu0", Class: device.GPU, FreqScale: 1}}
	for _, n := range []string{"fpga0", "fpga1", "fpga2", "fpga3", "fpga4"} {
		devs = append(devs, DeviceState{Name: n, Class: device.FPGA,
			ReconfigMS: device.Xilinx7V3.ReconfigMS, FreqScale: 1})
	}
	return devs
}

func TestLatencyPriorityMonotoneAlongEdges(t *testing.T) {
	s, prog, _ := buildSched(t)
	for _, e := range prog.Edges() {
		if s.LatencyPriority(e.From) <= s.LatencyPriority(e.To) {
			t.Fatalf("W_L(%s)=%v not greater than W_L(%s)=%v",
				e.From, s.LatencyPriority(e.From), e.To, s.LatencyPriority(e.To))
		}
	}
	// The sink's priority equals its own minimum latency plus nothing.
	if s.LatencyPriority("k4") <= 0 {
		t.Fatal("sink priority must be positive")
	}
}

func validatePlan(t *testing.T, p *Plan, prog *opencl.Program) {
	t.Helper()
	if len(p.Assignments) != len(prog.Kernels()) {
		t.Fatalf("plan has %d assignments, want %d", len(p.Assignments), len(prog.Kernels()))
	}
	// Dependencies respected.
	for _, e := range prog.Edges() {
		from, to := p.Assignments[e.From], p.Assignments[e.To]
		if to.StartMS < from.EndMS {
			t.Fatalf("edge %s->%s violated: %v < %v", e.From, e.To, to.StartMS, from.EndMS)
		}
	}
	// No overlap per device.
	byDev := map[string][]*Assignment{}
	for _, a := range p.Assignments {
		byDev[a.Device] = append(byDev[a.Device], a)
	}
	for dev, as := range byDev {
		sort.Slice(as, func(i, j int) bool { return as[i].StartMS < as[j].StartMS })
		for i := 1; i < len(as); i++ {
			if as[i].StartMS < as[i-1].EndMS-1e-9 {
				t.Fatalf("device %s overlaps: %s and %s", dev, as[i-1].Kernel, as[i].Kernel)
			}
		}
	}
	// Makespan = max end.
	var max float64
	for _, a := range p.Assignments {
		if a.EndMS > max {
			max = a.EndMS
		}
	}
	if p.MakespanMS != max {
		t.Fatalf("makespan %v != max end %v", p.MakespanMS, max)
	}
}

func TestScheduleProducesValidPlan(t *testing.T) {
	s, prog, _ := buildSched(t)
	p, err := s.Schedule(settingIDevices(), 0)
	if err != nil {
		t.Fatal(err)
	}
	validatePlan(t, p, prog)
	if p.BoundMS != 200 {
		t.Fatalf("bound = %v, want program default 200", p.BoundMS)
	}
	if len(p.Order()) != 4 {
		t.Fatal("Order must list all kernels")
	}
}

func TestScheduleUsesBothFamilies(t *testing.T) {
	s, _, _ := buildSched(t)

	// With a loose bound, Step 2 must move at least one kernel to the
	// energy-friendly FPGAs (Fig. 6's energy-optimization narrative).
	loose, err := s.Schedule(settingIDevices(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	fpga := 0
	for _, a := range loose.Assignments {
		if a.Impl.Platform == device.FPGA {
			fpga++
		}
	}
	if fpga == 0 {
		t.Fatal("energy step never used the FPGAs")
	}

	// With the GPU deeply backlogged, Step 1 itself must route around it.
	busy := settingIDevices()
	busy[0].FreeAtMS = 5000 // gpu0
	rerouted, err := s.Schedule(busy, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	fpga = 0
	for _, a := range rerouted.Assignments {
		if a.Impl.Platform == device.FPGA {
			fpga++
		}
	}
	if fpga == 0 {
		t.Fatal("latency step ignored GPU backlog")
	}
}

func TestEnergyStepNeverViolatesBoundAndSavesEnergy(t *testing.T) {
	s, prog, _ := buildSched(t)
	devs := settingIDevices()

	// A latency-only plan (tiny bound forces step 2 to be a no-op).
	tight, err := s.Schedule(devs, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if tight.EnergySwaps != 0 {
		t.Fatal("no slack must mean no swaps")
	}
	// A loose bound lets step 2 trade slack for energy.
	loose, err := s.Schedule(devs, 10*tight.MakespanMS)
	if err != nil {
		t.Fatal(err)
	}
	validatePlan(t, loose, prog)
	if loose.MakespanMS > loose.BoundMS {
		t.Fatalf("step 2 violated the bound: %v > %v", loose.MakespanMS, loose.BoundMS)
	}
	if loose.EnergyMJ > tight.EnergyMJ {
		t.Fatalf("step 2 increased energy: %v > %v", loose.EnergyMJ, tight.EnergyMJ)
	}
	if loose.EnergySwaps == 0 {
		t.Fatal("generous slack produced no energy swaps")
	}
	if loose.SlackMS() < 0 {
		t.Fatal("slack must stay non-negative")
	}
}

func TestScheduleAccountsDeviceBacklog(t *testing.T) {
	s, _, _ := buildSched(t)
	idle, err := s.Schedule(settingIDevices(), 0)
	if err != nil {
		t.Fatal(err)
	}
	busy := settingIDevices()
	for i := range busy {
		busy[i].FreeAtMS = 500
	}
	delayed, err := s.Schedule(busy, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.MakespanMS <= idle.MakespanMS {
		t.Fatalf("backlog ignored: %v <= %v", delayed.MakespanMS, idle.MakespanMS)
	}
}

func TestScheduleDoesNotMutateCallerDevices(t *testing.T) {
	s, _, _ := buildSched(t)
	devs := settingIDevices()
	if _, err := s.Schedule(devs, 0); err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if d.FreeAtMS != 0 || d.LoadedImpl != "" {
			t.Fatalf("caller state mutated: %+v", d)
		}
	}
}

func TestFPGAReconfigPenaltyInPlanning(t *testing.T) {
	s, _, _ := buildSched(t)
	// One FPGA only, blank: plan must include reconfiguration time
	// relative to a pre-loaded device.
	blank := []DeviceState{{Name: "fpga0", Class: device.FPGA, ReconfigMS: 80}}
	p1, err := s.Schedule(blank, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	k := p1.Order()[0].Kernel
	loaded := []DeviceState{{Name: "fpga0", Class: device.FPGA, ReconfigMS: 80,
		LoadedImpl: ImplID(p1.Assignments[k].Impl)}}
	p2, err := s.Schedule(loaded, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Assignments[k].EndMS-p2.Assignments[k].StartMS >=
		p1.Assignments[k].EndMS-p1.Assignments[k].StartMS {
		t.Fatal("pre-loaded bitstream did not avoid the reconfiguration penalty")
	}
}

func TestScheduleErrors(t *testing.T) {
	s, prog, ks := buildSched(t)
	if _, err := s.Schedule(nil, 0); err == nil {
		t.Fatal("no devices accepted")
	}
	// A program whose kernels lack spaces is rejected at construction.
	if _, err := New(prog, &dse.KernelSpaces{GPU: map[string]*dse.Space{}, FPGA: map[string]*dse.Space{}}); err == nil {
		t.Fatal("missing design spaces accepted")
	}
	_ = ks
}

func TestStaticPlannerFixedMapping(t *testing.T) {
	_, prog, ks := buildSched(t)
	for _, class := range []device.Class{device.GPU, device.FPGA} {
		sp, err := NewStatic(prog, ks, class, StaticAuto)
		if err != nil {
			t.Fatal(err)
		}
		devs := settingIDevices()
		p, err := sp.Schedule(devs, 0)
		if err != nil {
			t.Fatal(err)
		}
		validatePlan(t, p, prog)
		for _, a := range p.Assignments {
			if a.Impl.Platform != class {
				t.Fatalf("static %s plan placed %s on %s", class, a.Kernel, a.Impl.Platform)
			}
			if a.Impl != sp.Impl(a.Kernel) {
				t.Fatal("static plan deviated from its fixed mapping")
			}
		}
		// Fixed across repeated calls.
		p2, err := sp.Schedule(devs, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := range p.Assignments {
			if p.Assignments[k].Impl != p2.Assignments[k].Impl {
				t.Fatal("static mapping changed between requests")
			}
		}
	}
}

func TestStaticModesDiffer(t *testing.T) {
	_, prog, ks := buildSched(t)
	fast, err := NewStatic(prog, ks, device.GPU, StaticMinLatency)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := NewStatic(prog, ks, device.GPU, StaticMaxEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	devs := settingIDevices()
	pf, err := fast.Schedule(devs, 0)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := eff.Schedule(devs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pf.MakespanMS > pe.MakespanMS {
		t.Fatalf("min-latency mapping slower than max-efficiency: %v > %v", pf.MakespanMS, pe.MakespanMS)
	}
	if _, err := NewStatic(prog, ks, device.GPU, StaticMode(42)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestStaticPlannerNeedsItsClass(t *testing.T) {
	_, prog, ks := buildSched(t)
	sp, err := NewStatic(prog, ks, device.GPU, StaticAuto)
	if err != nil {
		t.Fatal(err)
	}
	fpgasOnly := []DeviceState{{Name: "fpga0", Class: device.FPGA, ReconfigMS: 80}}
	if _, err := sp.Schedule(fpgasOnly, 0); err == nil {
		t.Fatal("GPU baseline scheduled without GPUs")
	}
}

func TestImplIDStable(t *testing.T) {
	_, _, ks := buildSched(t)
	im := ks.GPU["k1"].MinLatency()
	if ImplID(im) != ImplID(im) || ImplID(im) == "" {
		t.Fatal("ImplID must be stable and non-empty")
	}
}

func TestSchedulerKnobs(t *testing.T) {
	s, prog, _ := buildSched(t)
	if s.Program() != prog {
		t.Fatal("Program accessor wrong")
	}
	if s.SlackFactor() != 0.6 {
		t.Fatalf("default slack = %v", s.SlackFactor())
	}
	s.SetSlackFactor(0.05)
	if s.SlackFactor() != 0.1 {
		t.Fatal("slack must clamp to 0.1")
	}
	s.SetSlackFactor(5)
	if s.SlackFactor() != 1 {
		t.Fatal("slack must clamp to 1")
	}
	if s.ThroughputMode() {
		t.Fatal("throughput mode must default off")
	}
	s.SetThroughputMode(true)
	if !s.ThroughputMode() {
		t.Fatal("throughput mode not set")
	}
	s.SetThroughputMode(false)
	s.SetLoadHint(-5) // clamps to 0
	s.SetLoadHint(40)
}

func TestThroughputModeMutesEnergyStep(t *testing.T) {
	s, _, _ := buildSched(t)
	devs := settingIDevices()
	s.SetThroughputMode(true)
	p, err := s.Schedule(devs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if p.EnergySwaps != 0 {
		t.Fatal("throughput mode must not spend slack on energy")
	}
	s.SetThroughputMode(false)
}

func TestLoadHintChangesBatchFill(t *testing.T) {
	s, _, _ := buildSched(t)
	var batched *model.Impl
	for _, im := range s.candidatesIdx(s.kidx["k1"], device.GPU) {
		if im.Config.Batch > 1 {
			batched = im
			break
		}
	}
	if batched == nil {
		t.Skip("no batched frontier point")
	}
	s.SetLoadHint(0)
	low := s.expectedFill(batched)
	s.SetLoadHint(1000)
	high := s.expectedFill(batched)
	if low != 1 {
		t.Fatalf("zero-load fill = %v, want 1", low)
	}
	if high != float64(batched.Config.Batch) {
		t.Fatalf("saturated fill = %v, want batch %d", high, batched.Config.Batch)
	}
}

func TestImplByIDAndPreferred(t *testing.T) {
	s, _, ks := buildSched(t)
	im := ks.FPGA["k1"].MinLatency()
	if s.ImplByID(ImplID(im)) != im {
		t.Fatal("ImplByID lookup failed")
	}
	if s.ImplByID("nope") != nil {
		t.Fatal("unknown ID must return nil")
	}
	pref := s.PreferredFPGAImpl("k1")
	if pref == nil {
		t.Fatal("no preferred impl")
	}
	fast := ks.FPGA["k1"].MinLatency()
	if pref.LatencyMS > 1.4*fast.LatencyMS {
		t.Fatalf("preferred impl too slow: %.1f vs fastest %.1f", pref.LatencyMS, fast.LatencyMS)
	}
	if pref.EfficiencyRPSPerW() < fast.EfficiencyRPSPerW() {
		t.Fatal("preferred impl must not be less efficient than the fastest")
	}
	if s.PreferredFPGAImpl("unknown-kernel") != nil {
		t.Fatal("unknown kernel must return nil")
	}
}

func TestBatchCap(t *testing.T) {
	if batchCap(&model.Impl{}) != 1 {
		t.Fatal("zero batch caps at 1")
	}
	if batchCap(&model.Impl{Config: opt.Config{Batch: 8}}) != 8 {
		t.Fatal("batch cap wrong")
	}
}
