package sched

import (
	"encoding/binary"
	"sync"
	"testing"
)

// cacheHitKeys synthesizes n device-signature-shaped keys (~200 bytes,
// the size appendPlanKeyDevices produces for a Setting-I node) and
// populates the cache with one sealed plan per key.
func cacheHitKeys(c *PlanCache, n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 0, 200)
		k = append(k, "gpu0\x00heter-asr-steady-signature"...)
		for w := 0; w < 20; w++ {
			k = binary.LittleEndian.AppendUint64(k, uint64(i*31+w))
		}
		keys[i] = k
		p := &Plan{MakespanMS: float64(i)}
		p.seal()
		c.put(k, p)
	}
	return keys
}

// BenchmarkPlanCacheHit is the uncontended hit path: one goroutine
// cycling through a warm working set, the per-request cost a single
// serving session pays.
func BenchmarkPlanCacheHit(b *testing.B) {
	c := newPlanCache(1024)
	keys := cacheHitKeys(c, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.get(keys[i&63]) == nil {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkPlanCacheContendedHits hammers the hit path from 8 goroutines
// over a shared warm cache — the fleet shape, where concurrent shard
// event loops plan against their node states at once. Each op is one get
// per goroutine (8 gets of total work), so ns/op is the latency a shard
// observes under full contention.
func BenchmarkPlanCacheContendedHits(b *testing.B) {
	c := newPlanCache(1024)
	keys := cacheHitKeys(c, 64)
	const goroutines = 8
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				if c.get(keys[(i+g*7)&63]) == nil {
					b.Error("unexpected miss")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
