package sched

import (
	"container/list"
	"encoding/binary"
	"math"
)

// PlanCache memoizes complete request plans keyed by an exact signature
// of everything that determines the planner's output: the device-state
// vector (name, class, FreeAtMS bits, resident bitstream, reconfiguration
// penalty, DVFS scale, in-plan booking) plus the scheduler's mode fields
// (latency bound, quantized load hint, slack factor, throughput mode).
//
// Because the planners are pure functions of that signature — Schedule
// mutates only scratch state — a hit is semantically identical to a cold
// plan: the cached entry was produced by the real planner on the same
// inputs, and both FreeAtMS and plan times are expressed relative to the
// planning instant, so re-using it at a later wall-clock time needs no
// rebasing beyond returning it as-is. Under steady or idle load the node
// presents the same relative state over and over, which is what makes
// millions of per-request planning calls collapse into lookups.
//
// Mode changes (throughput mode, slack, load hint, DVFS, residency) are
// folded into the key rather than flushing entries: when the governor
// oscillates between operating points, the plans for both points stay
// warm. Entries evict in LRU order once the capacity is hit.
//
// A PlanCache belongs to one planner and, like the planner itself, is not
// safe for concurrent use. Parallel sweeps give every session its own
// scheduler, so nothing is shared across goroutines.
type PlanCache struct {
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	hits     int
	misses   int
}

// planCacheEntry is one memoized plan; the cached *Plan is private to the
// cache and deep-copied on every hit.
type planCacheEntry struct {
	key  string
	plan *Plan
}

// defaultPlanCacheCapacity bounds the key space one planner retains.
// A steady serving run touches a few dozen distinct signatures (idle
// state, a handful of recurring backlogs, × governor operating points);
// 4096 leaves two orders of magnitude of headroom before eviction while
// capping worst-case memory at a few MB per session.
const defaultPlanCacheCapacity = 4096

// newPlanCache builds a cache bounded to capacity entries; capacity <= 0
// returns nil (cache disabled).
func newPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity/4),
		lru:      list.New(),
	}
}

// get returns the cached plan for the key, or nil. The caller must clone
// the result before handing it out.
func (c *PlanCache) get(key []byte) *Plan {
	// map[string([]byte)] compiles to an allocation-free lookup.
	el, ok := c.entries[string(key)]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*planCacheEntry).plan
}

// put stores a plan under the key, evicting the least-recently-used entry
// when full. The plan must be a private copy the caller will not mutate.
func (c *PlanCache) put(key []byte, p *Plan) {
	if el, ok := c.entries[string(key)]; ok {
		// Same signature planned twice (e.g. after a stats reset): the
		// planner is deterministic, so the plans are interchangeable.
		el.Value.(*planCacheEntry).plan = p
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*planCacheEntry).key)
	}
	k := string(key)
	c.entries[k] = c.lru.PushFront(&planCacheEntry{key: k, plan: p})
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	return c.lru.Len()
}

// Stats returns the hit/miss counters accumulated since creation.
func (c *PlanCache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	return c.hits, c.misses
}

// appendPlanKeyDevices appends the exact device-state signature to b.
// Strings are NUL-terminated (device names and impl IDs never contain
// NUL) and floats are written as raw IEEE-754 bits, so two states map to
// the same key iff the planner would see bit-identical inputs.
func appendPlanKeyDevices(b []byte, devices []DeviceState) []byte {
	for i := range devices {
		d := &devices[i]
		b = append(b, d.Name...)
		b = append(b, 0, byte(d.Class))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.FreeAtMS))
		b = append(b, d.LoadedImpl...)
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.ReconfigMS))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.FreqScale))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.lastEndMS))
	}
	return b
}

// clone deep-copies a plan: fresh assignment structs and map, shared
// (immutable) Impl pointers, and a remapped cached order. Clones are
// bit-identical to the original in every value the runtime reads.
func (p *Plan) clone() *Plan {
	q := &Plan{
		MakespanMS:  p.MakespanMS,
		EnergyMJ:    p.EnergyMJ,
		BoundMS:     p.BoundMS,
		EnergySwaps: p.EnergySwaps,
		Assignments: make(map[string]*Assignment, len(p.Assignments)),
	}
	for k, a := range p.Assignments {
		cp := *a
		q.Assignments[k] = &cp
	}
	if p.order != nil {
		q.order = make([]*Assignment, len(p.order))
		for i, a := range p.order {
			q.order[i] = q.Assignments[a.Kernel]
		}
	}
	return q
}
