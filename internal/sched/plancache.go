package sched

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// PlanCache memoizes complete request plans keyed by an exact signature
// of everything that determines the planner's output: the device-state
// vector (name, class, FreeAtMS bits, resident bitstream, reconfiguration
// penalty, DVFS scale, in-plan booking) plus the scheduler's mode fields
// (latency bound, quantized load hint, slack factor, throughput mode).
//
// Because the planners are pure functions of that signature — Schedule
// mutates only scratch state — a hit is semantically identical to a cold
// plan: the cached entry was produced by the real planner on the same
// inputs, and both FreeAtMS and plan times are expressed relative to the
// planning instant, so re-using it at a later wall-clock time needs no
// rebasing beyond returning it as-is. Under steady or idle load the node
// presents the same relative state over and over, which is what makes
// millions of per-request planning calls collapse into lookups.
//
// Hits are zero-copy: the cached *Plan itself is returned, shared by
// every requester. That is sound because plans are sealed at insertion —
// immutable thereafter (the plancheck build tag turns any mutation into a
// panic on the next hit) — and callers rebase per-request deviations into
// their own PlanView instead of editing the plan.
//
// Mode changes (throughput mode, slack, load hint, DVFS, residency) are
// folded into the key rather than flushing entries: when the governor
// oscillates between operating points, the plans for both points stay
// warm.
//
// The cache is sharded 16 ways by key hash with a per-shard RWMutex, so
// parallel sweep sessions sharing one planner stop contending on a single
// lock; recency is tracked with atomic stamps from a global clock.
// Eviction is batched approximate-LRU: overflow evicts the globally
// oldest-stamped entries (the exact LRU victim in sequential use), plus
// capacity/8 more so the scan amortizes to O(1) per insert.
type PlanCache struct {
	capacity int
	clock    atomic.Uint64
	size     atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	shards   [planCacheShards]planShard
}

const planCacheShards = 16

type planShard struct {
	mu      sync.RWMutex
	entries map[string]*planEntry
}

// planEntry is one memoized plan; the stamp is its last-touched tick.
type planEntry struct {
	key   string
	plan  *Plan
	stamp atomic.Uint64
}

// defaultPlanCacheCapacity bounds the key space one planner retains.
// A steady serving run touches a few dozen distinct signatures (idle
// state, a handful of recurring backlogs, × governor operating points);
// 4096 leaves two orders of magnitude of headroom before eviction while
// capping worst-case memory at a few MB per session.
const defaultPlanCacheCapacity = 4096

// newPlanCache builds a cache bounded to capacity entries; capacity <= 0
// returns nil (cache disabled).
func newPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	c := &PlanCache{capacity: capacity}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*planEntry, capacity/(planCacheShards*4)+1)
	}
	return c
}

// shardOf hashes the key (FNV-1a, folded) to a shard index.
func shardOf(key []byte) int {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int((h ^ h>>32) & (planCacheShards - 1))
}

// get returns the cached plan for the key, or nil. The result is the
// shared sealed plan — callers must not mutate it.
func (c *PlanCache) get(key []byte) *Plan {
	sh := &c.shards[shardOf(key)]
	sh.mu.RLock()
	// map[string([]byte)] compiles to an allocation-free lookup.
	e := sh.entries[string(key)]
	var p *Plan
	if e != nil {
		p = e.plan
	}
	sh.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	e.stamp.Store(c.clock.Add(1))
	if planCheckEnabled {
		p.verifySeal()
	}
	return p
}

// put stores a sealed plan under the key, evicting the oldest-stamped
// entries when over capacity.
func (c *PlanCache) put(key []byte, p *Plan) {
	if planCheckEnabled {
		p.verifySeal()
	}
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	if e, ok := sh.entries[string(key)]; ok {
		// Same signature planned twice (e.g. after a stats reset): the
		// planner is deterministic, so the plans are interchangeable.
		e.plan = p
		e.stamp.Store(c.clock.Add(1))
		sh.mu.Unlock()
		return
	}
	k := string(key)
	e := &planEntry{key: k, plan: p}
	e.stamp.Store(c.clock.Add(1))
	sh.entries[k] = e
	sh.mu.Unlock()
	if int(c.size.Add(1)) > c.capacity {
		c.evictOverflow()
	}
}

// evictOverflow drops the oldest-stamped entries until the cache is
// capacity/8 under capacity. Batching keeps the full scan amortized: at
// sustained-miss insert rates the scan runs once per capacity/8 inserts.
func (c *PlanCache) evictOverflow() {
	need := int(c.size.Load()) - c.capacity
	if need <= 0 {
		return
	}
	need += c.capacity / 8
	type victim struct {
		stamp uint64
		shard int
		key   string
	}
	var cands []victim
	for si := range c.shards {
		sh := &c.shards[si]
		sh.mu.RLock()
		for k, e := range sh.entries {
			cands = append(cands, victim{stamp: e.stamp.Load(), shard: si, key: k})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].stamp < cands[j].stamp })
	if need > len(cands) {
		need = len(cands)
	}
	for _, v := range cands[:need] {
		sh := &c.shards[v.shard]
		sh.mu.Lock()
		if e, ok := sh.entries[v.key]; ok && e.stamp.Load() == v.stamp {
			delete(sh.entries, v.key)
			c.size.Add(-1)
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.size.Load())
}

// Stats returns the hit/miss counters accumulated since creation.
func (c *PlanCache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	return int(c.hits.Load()), int(c.misses.Load())
}

// appendPlanKeyDevices appends the exact device-state signature to b.
// Strings are NUL-terminated (device names and impl IDs never contain
// NUL) and floats are written as raw IEEE-754 bits, so two states map to
// the same key iff the planner would see bit-identical inputs.
func appendPlanKeyDevices(b []byte, devices []DeviceState) []byte {
	for i := range devices {
		d := &devices[i]
		b = append(b, d.Name...)
		b = append(b, 0, byte(d.Class))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.FreeAtMS))
		b = append(b, d.LoadedImpl...)
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.ReconfigMS))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.FreqScale))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.lastEndMS))
	}
	return b
}

// seal marks a plan immutable before it enters a cache. Under the
// plancheck build tag it also fingerprints every value the runtime reads,
// so any later mutation panics on the next cache touch.
func (p *Plan) seal() {
	p.sealed = true
	if planCheckEnabled {
		p.sum = p.fingerprint()
	}
}

// Sealed reports whether the plan has been frozen for shared use.
func (p *Plan) Sealed() bool { return p.sealed }

// verifySeal panics if a sealed plan's contents changed since seal time.
// Only called under the plancheck build tag.
func (p *Plan) verifySeal() {
	if !p.sealed {
		panic("sched: unsealed plan in cache")
	}
	if p.fingerprint() != p.sum {
		panic("sched: cached plan mutated after seal — plans are shared zero-copy and immutable; rebase per-request changes into a PlanView")
	}
}

// fingerprint hashes every plan field the runtime reads (FNV-1a over the
// ordered assignments and summary scalars).
func (p *Plan) fingerprint() uint64 {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	mix(math.Float64bits(p.MakespanMS))
	mix(math.Float64bits(p.EnergyMJ))
	mix(math.Float64bits(p.BoundMS))
	mix(uint64(p.EnergySwaps))
	for _, a := range p.Order() {
		mixStr(a.Kernel)
		mixStr(a.Device)
		mixStr(ImplID(a.Impl))
		mix(math.Float64bits(a.StartMS))
		mix(math.Float64bits(a.EndMS))
		mix(math.Float64bits(a.ExecMS))
		mix(math.Float64bits(a.CommitMS))
	}
	return h
}

// PlanView is a caller-owned, reusable view over a shared immutable Plan:
// the per-kernel-index assignment pointers start out aliasing the plan's
// own assignments and may be repointed per request (e.g. a failure-retry
// re-placement) without touching the plan itself. Reset prepares the view
// for a new request in O(n) with no allocation after first use.
type PlanView struct {
	// Plan is the shared sealed plan this view rebases.
	Plan *Plan
	// Assign maps dense kernel index → effective assignment for this
	// request. Entries may be repointed to request-private Assignments.
	Assign []*Assignment
}

// Reset points the view at a plan and clears n assignment slots.
func (v *PlanView) Reset(p *Plan, n int) {
	v.Plan = p
	if cap(v.Assign) < n {
		v.Assign = make([]*Assignment, n)
		return
	}
	v.Assign = v.Assign[:n]
	for i := range v.Assign {
		v.Assign[i] = nil
	}
}
