package sched

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// PlanCache memoizes complete request plans keyed by an exact signature
// of everything that determines the planner's output: the device-state
// vector (name, class, FreeAtMS bits, resident bitstream, reconfiguration
// penalty, DVFS scale, in-plan booking) plus the scheduler's mode fields
// (latency bound, quantized load hint, slack factor, throughput mode).
//
// Because the planners are pure functions of that signature — Schedule
// mutates only scratch state — a hit is semantically identical to a cold
// plan: the cached entry was produced by the real planner on the same
// inputs, and both FreeAtMS and plan times are expressed relative to the
// planning instant, so re-using it at a later wall-clock time needs no
// rebasing beyond returning it as-is. Under steady or idle load the node
// presents the same relative state over and over, which is what makes
// millions of per-request planning calls collapse into lookups.
//
// Hits are zero-copy: the cached *Plan itself is returned, shared by
// every requester. That is sound because plans are sealed at insertion —
// immutable thereafter (the plancheck build tag turns any mutation into a
// panic on the next hit) — and callers rebase per-request deviations into
// their own PlanView instead of editing the plan.
//
// Mode changes (throughput mode, slack, load hint, DVFS, residency) are
// folded into the key rather than flushing entries: when the governor
// oscillates between operating points, the plans for both points stay
// warm.
//
// The cache is sharded 16 ways by key hash, and the hit path is
// lock-free: each shard publishes an immutable read map through an
// atomic.Pointer, so steady-state readers load one pointer and index —
// no RWMutex, no read-side cache-line writes beyond the recency stamp —
// and concurrent fleet shards plan without contention. Writes use the
// sync.Map discipline: inserts go to a mutable dirty map under a
// per-shard mutex (copied from the read map once per promotion cycle,
// not per insert), read-misses consult the dirty map under the same
// mutex, and once dirty lookups outnumber the dirty map's size the
// dirty map is promoted — published as the new immutable read map. A
// read-miss is about to run the full planner anyway, so the slow path's
// mutex is noise; the hot path (a key already promoted) never blocks.
// The ordering contract is seal-then-publish: a plan is sealed (frozen,
// fingerprinted under plancheck) before put is called, and the mutex
// (dirty hits) or the atomic promotion store (read hits) is the release
// barrier that makes the sealed plan visible to readers. Recency is
// tracked with atomic stamps from a global clock. Eviction is batched
// approximate-LRU: overflow evicts the globally oldest-stamped entries
// (the exact LRU victim in sequential use), plus capacity/8 more so the
// scan amortizes to O(1) per insert.
type PlanCache struct {
	capacity int
	clock    atomic.Uint64
	size     atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
	shards   [planCacheShards]planShard
}

const planCacheShards = 16

// planMap is one shard's published generation: readers treat it as
// immutable; once a map has been stored in planShard.read it is never
// written again.
type planMap = map[string]*planEntry

type planShard struct {
	// mu guards dirty and missed, and serializes put/evict/promotion.
	// The read-hit path never takes it.
	mu sync.Mutex
	// read is the shard's immutable published map; never nil.
	read atomic.Pointer[planMap]
	// dirty, when non-nil, is a superset of *read plus unpromoted
	// inserts. It is mutable only until promotion publishes it as the
	// new read map, after which the next insert copies it afresh.
	dirty planMap
	// missed counts read-misses that hit dirty; reaching len(dirty)
	// triggers promotion, so the amortized promotion cost is O(1).
	missed int
}

// planEntry is one memoized plan; the stamp is its last-touched tick.
type planEntry struct {
	key   string
	plan  *Plan
	stamp atomic.Uint64
}

// defaultPlanCacheCapacity bounds the key space one planner retains.
// A steady serving run touches a few dozen distinct signatures (idle
// state, a handful of recurring backlogs, × governor operating points);
// 4096 leaves two orders of magnitude of headroom before eviction while
// capping worst-case memory at a few MB per session.
const defaultPlanCacheCapacity = 4096

// newPlanCache builds a cache bounded to capacity entries; capacity <= 0
// returns nil (cache disabled).
func newPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	c := &PlanCache{capacity: capacity}
	for i := range c.shards {
		m := make(planMap)
		c.shards[i].read.Store(&m)
	}
	return c
}

// shardOf hashes the key (FNV-1a, folded) to a shard index.
func shardOf(key []byte) int {
	var h uint64 = 14695981039346656037
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return int((h ^ h>>32) & (planCacheShards - 1))
}

// get returns the cached plan for the key, or nil. The result is the
// shared sealed plan — callers must not mutate it. The hot path is
// lock-free: one atomic pointer load, one map index, and an atomic
// recency stamp; the acquire on the pointer load pairs with promotion's
// publishing store, so a visible entry always carries a fully sealed
// plan. Keys not yet promoted fall through to the dirty map under the
// shard mutex — a miss there proceeds to the full planner, so the lock
// never sits on the steady-state path.
func (c *PlanCache) get(key []byte) *Plan {
	sh := &c.shards[shardOf(key)]
	m := *sh.read.Load()
	// map[string([]byte)] compiles to an allocation-free lookup.
	e := m[string(key)]
	if e == nil {
		e = sh.dirtyLookup(key)
	}
	if e == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	e.stamp.Store(c.clock.Add(1))
	p := e.plan
	if planCheckEnabled {
		p.verifySeal()
	}
	return p
}

// dirtyLookup is get's slow path: consult the unpromoted inserts, and
// promote the dirty map once it has absorbed as many read-misses as it
// holds entries (the sync.Map policy — promotion cost amortizes to O(1)
// per insert).
func (sh *planShard) dirtyLookup(key []byte) *planEntry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.dirty == nil {
		return nil
	}
	e := sh.dirty[string(key)]
	if e == nil {
		return nil
	}
	sh.missed++
	if sh.missed >= len(sh.dirty) {
		m := sh.dirty
		sh.read.Store(&m)
		sh.dirty = nil
		sh.missed = 0
	}
	return e
}

// put stores a sealed plan under the key, evicting the oldest-stamped
// entries when over capacity. The insert lands in the shard's dirty
// map; the read map is copied into a fresh dirty map only when none
// exists (once per promotion cycle, not per insert), so sustained-miss
// workloads do not rebuild the map on every plan.
func (c *PlanCache) put(key []byte, p *Plan) {
	if planCheckEnabled {
		p.verifySeal()
	}
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	k := string(key)
	fresh := true
	if sh.dirty == nil {
		read := *sh.read.Load()
		sh.dirty = make(planMap, len(read)+1)
		for ok, ov := range read {
			sh.dirty[ok] = ov
		}
		sh.missed = 0
	}
	if _, ok := sh.dirty[k]; ok {
		// Same signature planned twice (e.g. after a stats reset): the
		// planner is deterministic, so the plans are interchangeable.
		// Concurrent readers may still hold the old entry — publish a
		// new one instead of mutating in place.
		fresh = false
	}
	e := &planEntry{key: k, plan: p}
	e.stamp.Store(c.clock.Add(1))
	sh.dirty[k] = e
	sh.mu.Unlock()
	if fresh && int(c.size.Add(1)) > c.capacity {
		c.evictOverflow()
	}
}

// evictOverflow drops the oldest-stamped entries until the cache is
// capacity/8 under capacity. Batching keeps the full scan amortized: at
// sustained-miss insert rates the scan runs once per capacity/8 inserts.
func (c *PlanCache) evictOverflow() {
	need := int(c.size.Load()) - c.capacity
	if need <= 0 {
		return
	}
	need += c.capacity / 8
	type victim struct {
		stamp uint64
		shard int
		key   string
	}
	var cands []victim
	for si := range c.shards {
		// The dirty map (when present) is a superset of the read map;
		// scanning it under the shard mutex sees every live entry.
		sh := &c.shards[si]
		sh.mu.Lock()
		m := sh.dirty
		if m == nil {
			m = *sh.read.Load()
		}
		for k, e := range m {
			cands = append(cands, victim{stamp: e.stamp.Load(), shard: si, key: k})
		}
		sh.mu.Unlock()
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].stamp < cands[j].stamp })
	if need > len(cands) {
		need = len(cands)
	}
	// One rebuild per shard, dropping that shard's victims in a batch
	// and publishing the survivors as the new read map. The stamp
	// recheck keeps entries that were touched (or replaced) since the
	// scan.
	var drop [planCacheShards]map[string]uint64
	for _, v := range cands[:need] {
		if drop[v.shard] == nil {
			drop[v.shard] = make(map[string]uint64)
		}
		drop[v.shard][v.key] = v.stamp
	}
	for si := range drop {
		if len(drop[si]) == 0 {
			continue
		}
		sh := &c.shards[si]
		sh.mu.Lock()
		old := sh.dirty
		if old == nil {
			old = *sh.read.Load()
		}
		next := make(planMap, len(old))
		removed := 0
		for k, e := range old {
			if st, ok := drop[si][k]; ok && e.stamp.Load() == st {
				removed++
				continue
			}
			next[k] = e
		}
		sh.read.Store(&next)
		sh.dirty = nil
		sh.missed = 0
		sh.mu.Unlock()
		c.size.Add(int64(-removed))
	}
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.size.Load())
}

// Stats returns the hit/miss counters accumulated since creation.
func (c *PlanCache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	return int(c.hits.Load()), int(c.misses.Load())
}

// appendPlanKeyDevices appends the exact device-state signature to b.
// Strings are NUL-terminated (device names and impl IDs never contain
// NUL) and floats are written as raw IEEE-754 bits, so two states map to
// the same key iff the planner would see bit-identical inputs.
func appendPlanKeyDevices(b []byte, devices []DeviceState) []byte {
	for i := range devices {
		d := &devices[i]
		b = append(b, d.Name...)
		b = append(b, 0, byte(d.Class))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.FreeAtMS))
		b = append(b, d.LoadedImpl...)
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.ReconfigMS))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.FreqScale))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(d.lastEndMS))
	}
	return b
}

// seal marks a plan immutable before it enters a cache. Under the
// plancheck build tag it also fingerprints every value the runtime reads,
// so any later mutation panics on the next cache touch.
func (p *Plan) seal() {
	p.sealed = true
	if planCheckEnabled {
		p.sum = p.fingerprint()
	}
}

// Sealed reports whether the plan has been frozen for shared use.
func (p *Plan) Sealed() bool { return p.sealed }

// verifySeal panics if a sealed plan's contents changed since seal time.
// Only called under the plancheck build tag.
func (p *Plan) verifySeal() {
	if !p.sealed {
		panic("sched: unsealed plan in cache")
	}
	if p.fingerprint() != p.sum {
		panic("sched: cached plan mutated after seal — plans are shared zero-copy and immutable; rebase per-request changes into a PlanView")
	}
}

// fingerprint hashes every plan field the runtime reads (FNV-1a over the
// ordered assignments and summary scalars).
func (p *Plan) fingerprint() uint64 {
	var h uint64 = 14695981039346656037
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	mix(math.Float64bits(p.MakespanMS))
	mix(math.Float64bits(p.EnergyMJ))
	mix(math.Float64bits(p.BoundMS))
	mix(uint64(p.EnergySwaps))
	for _, a := range p.Order() {
		mixStr(a.Kernel)
		mixStr(a.Device)
		mixStr(ImplID(a.Impl))
		mix(math.Float64bits(a.StartMS))
		mix(math.Float64bits(a.EndMS))
		mix(math.Float64bits(a.ExecMS))
		mix(math.Float64bits(a.CommitMS))
	}
	return h
}

// PlanView is a caller-owned, reusable view over a shared immutable Plan:
// the per-kernel-index assignment pointers start out aliasing the plan's
// own assignments and may be repointed per request (e.g. a failure-retry
// re-placement) without touching the plan itself. Reset prepares the view
// for a new request in O(n) with no allocation after first use.
type PlanView struct {
	// Plan is the shared sealed plan this view rebases.
	Plan *Plan
	// Assign maps dense kernel index → effective assignment for this
	// request. Entries may be repointed to request-private Assignments.
	Assign []*Assignment
}

// Reset points the view at a plan and clears n assignment slots.
func (v *PlanView) Reset(p *Plan, n int) {
	v.Plan = p
	if cap(v.Assign) < n {
		v.Assign = make([]*Assignment, n)
		return
	}
	v.Assign = v.Assign[:n]
	for i := range v.Assign {
		v.Assign[i] = nil
	}
}
