package sched

import (
	"testing"

	"poly/internal/device"
)

// steadyDevices models the node state a mid-load steady phase presents
// over and over: one warm GPU and five FPGAs holding provisioned
// bitstreams, with a small repeating backlog on the GPU.
func steadyDevices(s *Scheduler) []DeviceState {
	devs := settingIDevices()
	kernels := s.Program().Kernels()
	for i := 1; i < len(devs) && i-1 < len(kernels); i++ {
		if im := s.PreferredFPGAImpl(kernels[i-1].Name); im != nil {
			devs[i].LoadedImpl = ImplID(im)
		}
	}
	devs[0].FreeAtMS = 3.5
	return devs
}

// BenchmarkSchedule measures one full two-step planning call against a
// repeating steady-state node — the exact shape the plan cache fast-paths.
func BenchmarkSchedule(b *testing.B) {
	s, _, _ := buildSched(b)
	s.SetLoadHint(40)
	devs := steadyDevices(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(devs, 0); err != nil {
			b.Fatal(err)
		}
	}
	h, m := s.PlanCacheStats()
	if h+m > 0 {
		b.ReportMetric(float64(h)/float64(h+m), "hitRate")
	}
}

// BenchmarkScheduleUncached is the same call with the plan cache disabled:
// the planner's raw two-step cost, tracking the scratch-buffer reuse and
// impl-ID interning wins independently of memoization.
func BenchmarkScheduleUncached(b *testing.B) {
	s, _, _ := buildSched(b)
	s.SetLoadHint(40)
	s.SetPlanCacheCapacity(0)
	devs := steadyDevices(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(devs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleChurn drives the planner with a device state that never
// repeats (worst case for the cache): every iteration is a miss, so this
// bounds the overhead the cache layer adds to cold planning.
func BenchmarkScheduleChurn(b *testing.B) {
	s, _, _ := buildSched(b)
	s.SetLoadHint(40)
	devs := steadyDevices(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		devs[0].FreeAtMS = float64(i%100000) * 1e-3
		if _, err := s.Schedule(devs, 0); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = device.GPU
