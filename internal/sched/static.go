package sched

import (
	"encoding/binary"
	"fmt"
	"math"

	"poly/internal/device"
	"poly/internal/dse"
	"poly/internal/model"
	"poly/internal/opencl"
)

// StaticMode selects which fixed implementation the baseline deploys.
type StaticMode int

// The two baseline deployment policies of Section VI-A: the Homo-GPU and
// Homo-FPGA systems fix one implementation per kernel — maximum energy
// efficiency if it meets the latency constraint, minimum latency
// otherwise — and never change it with load.
const (
	// StaticAuto picks max-efficiency if the bound holds, else min-latency.
	StaticAuto StaticMode = iota
	// StaticMinLatency always uses the fastest implementation.
	StaticMinLatency
	// StaticMaxEfficiency always uses the most energy-efficient one.
	StaticMaxEfficiency
)

// StaticPlanner is the Sirius-style [4] hard-mapping baseline: every
// kernel is pinned to one accelerator family with one implementation,
// chosen offline and fixed across load intensities.
type StaticPlanner struct {
	prog  *opencl.Program
	class device.Class
	// impls is the fixed kernel → implementation mapping.
	impls map[string]*model.Impl
	order []string

	// healthEpoch mirrors the dynamic scheduler's board-health
	// generation: folded into the cache key so health transitions
	// invalidate memoized plans.
	healthEpoch uint64

	// cache memoizes plans by exact device-state signature — the static
	// planner has no mode knobs, so the key is just (epoch, bound,
	// devices).
	cache  *PlanCache
	keyBuf []byte
	// scratchWork is the reusable per-call device working copy.
	scratchWork []DeviceState
}

// NewStatic builds the baseline planner for one accelerator family.
func NewStatic(prog *opencl.Program, spaces *dse.KernelSpaces, class device.Class, mode StaticMode) (*StaticPlanner, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	topo, err := prog.TopoSort()
	if err != nil {
		return nil, err
	}
	sp := &StaticPlanner{prog: prog, class: class, impls: make(map[string]*model.Impl), order: topo,
		cache: newPlanCache(defaultPlanCacheCapacity)}

	pick := func(mode StaticMode) (map[string]*model.Impl, error) {
		out := make(map[string]*model.Impl, len(topo))
		for _, k := range topo {
			space := spaces.Space(k, class)
			if space == nil {
				return nil, fmt.Errorf("sched: kernel %q has no %s design space", k, class)
			}
			var im *model.Impl
			if mode == StaticMinLatency {
				im = space.MinLatency()
			} else {
				im = space.MaxEfficiency()
			}
			if im == nil {
				return nil, fmt.Errorf("sched: kernel %q has an empty %s frontier", k, class)
			}
			out[k] = im
		}
		return out, nil
	}

	switch mode {
	case StaticMinLatency, StaticMaxEfficiency:
		sp.impls, err = pick(mode)
		if err != nil {
			return nil, err
		}
	case StaticAuto:
		// Prefer the efficient mapping; fall back to min-latency when the
		// unloaded critical path eats more than half the bound — a fixed
		// deployment needs queueing headroom it can never adapt to regain.
		eff, err := pick(StaticMaxEfficiency)
		if err != nil {
			return nil, err
		}
		sp.impls = eff
		if sp.criticalPathMS() > 0.5*prog.LatencyBoundMS {
			fast, err := pick(StaticMinLatency)
			if err != nil {
				return nil, err
			}
			sp.impls = fast
		}
	default:
		return nil, fmt.Errorf("sched: unknown static mode %d", int(mode))
	}
	return sp, nil
}

// Impl returns the fixed implementation for a kernel.
func (sp *StaticPlanner) Impl(kernel string) *model.Impl { return sp.impls[kernel] }

// criticalPathMS is the unloaded DAG latency under the fixed mapping,
// ignoring device contention (single in-flight request).
func (sp *StaticPlanner) criticalPathMS() float64 {
	finish := make(map[string]float64, len(sp.order))
	var max float64
	for _, k := range sp.order {
		var ready float64
		for _, e := range sp.prog.Preds(k) {
			if finish[e.From] > ready {
				ready = finish[e.From]
			}
		}
		finish[k] = ready + sp.impls[k].LatencyMS
		if finish[k] > max {
			max = finish[k]
		}
	}
	return max
}

// partition statically assigns each kernel a dedicated subset of the
// class's boards, proportional to the kernel's share of total execution
// time (at least one board each). This is the baseline's "hard mapping":
// a board only ever hosts one kernel, so FPGAs never reconfigure after
// the first load — exactly how a fixed Sirius-style deployment pins
// bitstreams.
func (sp *StaticPlanner) partition(devices []DeviceState) map[string]map[string]bool {
	var boards []string
	for _, d := range devices {
		if d.Class == sp.class {
			boards = append(boards, d.Name)
		}
	}
	out := make(map[string]map[string]bool, len(sp.order))
	if len(boards) == 0 {
		return out
	}
	var total float64
	for _, k := range sp.order {
		total += sp.impls[k].LatencyMS
	}
	// First pass: proportional share, at least one board per kernel when
	// enough boards exist; boards assigned contiguously in name order.
	n := len(boards)
	next := 0
	for i, k := range sp.order {
		share := 1
		if total > 0 && len(sp.order) <= n {
			share = int(float64(n) * sp.impls[k].LatencyMS / total)
			if share < 1 {
				share = 1
			}
		}
		remainingKernels := len(sp.order) - i - 1
		if next+share > n-remainingKernels {
			share = n - remainingKernels - next
			if share < 1 {
				share = 1
			}
		}
		set := make(map[string]bool, share)
		for j := 0; j < share && next < n; j++ {
			set[boards[next]] = true
			next++
		}
		if len(set) == 0 {
			// More kernels than boards: share boards round-robin.
			set[boards[i%n]] = true
		}
		out[k] = set
	}
	// Leftover boards go to the heaviest kernel.
	if next < n {
		heaviest := sp.order[0]
		for _, k := range sp.order {
			if sp.impls[k].LatencyMS > sp.impls[heaviest].LatencyMS {
				heaviest = k
			}
		}
		for ; next < n; next++ {
			out[heaviest][boards[next]] = true
		}
	}
	return out
}

// SetPlanCacheCapacity resizes the plan cache (n <= 0 disables it).
func (sp *StaticPlanner) SetPlanCacheCapacity(n int) { sp.cache = newPlanCache(n) }

// SetHealthEpoch folds the runtime's board-health generation into the
// plan-cache key (see Scheduler.SetHealthEpoch).
func (sp *StaticPlanner) SetHealthEpoch(e uint64) { sp.healthEpoch = e }

// PlaceKernel re-places one kernel after a task failure: the fixed
// implementation goes to the least-loaded surviving device of the
// baseline's accelerator family. The hard partition is ignored — a fixed
// deployment that just lost a board has no better option than sharing
// the survivors.
func (sp *StaticPlanner) PlaceKernel(kernel string, devices []DeviceState) (*Assignment, error) {
	im := sp.impls[kernel]
	if im == nil {
		return nil, fmt.Errorf("sched: unknown kernel %q", kernel)
	}
	var best *Assignment
	for di := range devices {
		d := &devices[di]
		if d.Class != sp.class {
			continue
		}
		est := d.availableAt(ImplID(im))
		end := est + d.execMS(im)
		if best == nil || end < best.EndMS {
			best = &Assignment{Kernel: kernel, Impl: im, Device: d.Name,
				StartMS: est, EndMS: end, ExecMS: im.LatencyMS / d.freq(),
				CommitMS: d.commitMS(im, float64(max(1, im.Config.Batch)))}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("sched: no %s device available for kernel %q", sp.class, kernel)
	}
	return best, nil
}

// PlanCacheStats reports the plan cache's hit/miss counters.
func (sp *StaticPlanner) PlanCacheStats() (hits, misses int) { return sp.cache.Stats() }

// Schedule produces the baseline's plan: each kernel goes to the
// least-loaded device of its dedicated partition with its fixed impl.
// Like the dynamic scheduler, plans are memoized by exact device-state
// signature; the static planner is a pure function of (devices, bound).
func (sp *StaticPlanner) Schedule(devices []DeviceState, boundMS float64) (*Plan, error) {
	if boundMS <= 0 {
		boundMS = sp.prog.LatencyBoundMS
	}
	if sp.cache == nil {
		return sp.scheduleCold(devices, boundMS)
	}
	key := binary.LittleEndian.AppendUint64(sp.keyBuf[:0], sp.healthEpoch)
	key = binary.LittleEndian.AppendUint64(key, math.Float64bits(boundMS))
	key = appendPlanKeyDevices(key, devices)
	sp.keyBuf = key
	if hit := sp.cache.get(key); hit != nil {
		return hit, nil
	}
	plan, err := sp.scheduleCold(devices, boundMS)
	if err != nil {
		return nil, err
	}
	plan.Order()
	plan.seal()
	sp.cache.put(key, plan)
	return plan, nil
}

func (sp *StaticPlanner) scheduleCold(devices []DeviceState, boundMS float64) (*Plan, error) {
	part := sp.partition(devices)
	work := append(sp.scratchWork[:0], devices...)
	sp.scratchWork = work
	choice := make(map[string]*Assignment, len(sp.order))
	for _, k := range sp.order {
		im := sp.impls[k]
		var best *Assignment
		for di := range work {
			d := &work[di]
			if d.Class != sp.class || !part[k][d.Name] {
				continue
			}
			est := d.availableAt(ImplID(im))
			for _, e := range sp.prog.Preds(k) {
				pa := choice[e.From]
				if pa == nil {
					continue
				}
				ready := pa.EndMS
				if pa.Device != d.Name {
					ready += device.DefaultPCIe.TransferMS(e.Bytes)
				}
				if ready > est {
					est = ready
				}
			}
			end := est + d.execMS(im)
			if best == nil || end < best.EndMS {
				best = &Assignment{Kernel: k, Impl: im, Device: d.Name,
					StartMS: est, EndMS: end, ExecMS: im.LatencyMS / d.freq(),
					CommitMS: d.commitMS(im, float64(max(1, im.Config.Batch)))}
			}
		}
		if best == nil {
			return nil, fmt.Errorf("sched: no %s device available for kernel %q", sp.class, k)
		}
		choice[k] = best
		for di := range work {
			if work[di].Name == best.Device {
				if free := best.StartMS + best.CommitMS; free > work[di].FreeAtMS {
					work[di].FreeAtMS = free
				}
				if best.EndMS > work[di].lastEndMS {
					work[di].lastEndMS = best.EndMS
				}
				work[di].LoadedImpl = ImplID(best.Impl)
			}
		}
	}
	p := &Plan{Assignments: choice, BoundMS: boundMS, MakespanMS: 0}
	for _, k := range sp.order {
		a := choice[k]
		p.MakespanMS = math.Max(p.MakespanMS, a.EndMS)
		b := a.Impl.Config.Batch
		if b < 1 {
			b = 1
		}
		p.EnergyMJ += a.Impl.PowerW * a.ExecMS / float64(b)
	}
	return p, nil
}
