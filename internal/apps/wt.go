package apps

import (
	"fmt"

	"poly/internal/exec"
	"poly/internal/opencl"
)

// wtSrc is the WebP Transcoding service [55] (Table II): re-encoding
// uploaded images. Intra-prediction removes spatial redundancy,
// probability counting builds the symbol statistics, and an adaptive
// arithmetic coder emits the bitstream. The coder stage is serial-ish
// (Scatter + custom context mixing), which makes WT the least
// GPU-friendly benchmark.
const wtSrc = `
program WT
latency_bound 200

kernel intra_predict
  repeat 85
  in img u8[1024x1024]
  tiling  blocks(img, size=[16 16 1] count=[64 64 1] elem=u8)
  gather  edges(blocks, elems=1048576 elem=u8)
  map     modes(edges, func=sad ops=48 elems=1048576 elem=u8)
  pipeline resid(modes, funcs=[mac:2 max:1] elem=u8)
  out resid

kernel prob_count
  repeat 85
  in resid u8[1048576]
  map    ctx(resid, func=ctxmap ops=6 elems=1048576 elem=u8)
  reduce hist(ctx, func=add assoc elems=4096)
  pipeline norm(hist, funcs=[div:8 mul:1])
  pack   tbl(norm)
  out tbl

kernel arith_code
  repeat 85
  const cdf f32[4096]
  in resid u8[1048576]
  scatter ranges(resid cdf, irregular elems=1048576 elem=u8)
  map     renorm(ranges, func=accum ops=10 custom elems=1048576 elem=u8)
  pipeline emit(renorm, funcs=[mul:1 add:1 xor:1] elem=u8)
  stencil carry(emit, func=carryfix ops=2 taps=3 elems=1048576 elem=u8)
  out carry

edge intra_predict -> prob_count bytes=1048576
edge prob_count -> arith_code bytes=16384
`

// WTProgram returns the annotated WT service.
func WTProgram() *opencl.Program { return opencl.MustParse(wtSrc) }

// IntraPredictDC computes per-block DC-mode intra prediction residuals:
// each bs×bs block is predicted by the mean of its top and left
// neighbouring pixels, and the residual replaces the block. It returns
// the residual image — the reference computation of intra_predict.
func IntraPredictDC(cx exec.Ctx, img *exec.Tensor, bs int) *exec.Tensor {
	if len(img.Shape) != 2 {
		panic("apps: intra prediction requires a 2-D image")
	}
	h, w := img.Shape[0], img.Shape[1]
	if bs <= 0 || h%bs != 0 || w%bs != 0 {
		panic("apps: block size must divide the image")
	}
	out := img.Clone()
	for by := 0; by < h; by += bs {
		for bx := 0; bx < w; bx += bs {
			var sum float64
			var n int
			if by > 0 {
				for x := 0; x < bs; x++ {
					sum += img.Data[(by-1)*w+bx+x]
					n++
				}
			}
			if bx > 0 {
				for y := 0; y < bs; y++ {
					sum += img.Data[(by+y)*w+bx-1]
					n++
				}
			}
			pred := 128.0 // DC default at the top-left corner
			if n > 0 {
				pred = sum / float64(n)
			}
			for y := 0; y < bs; y++ {
				for x := 0; x < bs; x++ {
					out.Data[(by+y)*w+bx+x] = img.Data[(by+y)*w+bx+x] - pred
				}
			}
		}
	}
	return out
}

// CountProbabilities builds a normalized 256-bin histogram over byte
// symbols — the prob_count kernel's reference computation.
func CountProbabilities(symbols []byte) []float64 {
	counts := make([]float64, 256)
	for _, s := range symbols {
		counts[s]++
	}
	total := float64(len(symbols))
	if total == 0 {
		return counts
	}
	for i := range counts {
		counts[i] /= total
	}
	return counts
}

// ArithmeticCoder is an adaptive binary-partition arithmetic coder over
// byte symbols with a frequency model that updates as it codes — the
// arith_code kernel's reference computation. 32-bit range coder with
// carry-less renormalization.
type ArithmeticCoder struct {
	freq [256]uint32
	tot  uint32
}

// NewArithmeticCoder starts from a uniform adaptive model.
func NewArithmeticCoder() *ArithmeticCoder {
	c := &ArithmeticCoder{}
	for i := range c.freq {
		c.freq[i] = 1
	}
	c.tot = 256
	return c
}

func (c *ArithmeticCoder) cumBefore(s byte) uint32 {
	var cum uint32
	for i := 0; i < int(s); i++ {
		cum += c.freq[i]
	}
	return cum
}

func (c *ArithmeticCoder) update(s byte) {
	c.freq[s]++
	c.tot++
	if c.tot >= 1<<16 {
		// Halve the model to keep range precision.
		c.tot = 0
		for i := range c.freq {
			c.freq[i] = (c.freq[i] + 1) / 2
			if c.freq[i] == 0 {
				c.freq[i] = 1
			}
			c.tot += c.freq[i]
		}
	}
}

// acTop is the renormalization threshold of the 32-bit range coder.
const acTop = uint32(1) << 24

// Encode compresses data; Decode inverts it given the original length.
func (c *ArithmeticCoder) Encode(data []byte) []byte {
	low, rng := uint32(0), ^uint32(0)
	var out []byte
	for _, s := range data {
		cum := c.cumBefore(s)
		r := rng / c.tot
		low += r * cum
		if low < r*cum { // carry
			for i := len(out) - 1; i >= 0; i-- {
				out[i]++
				if out[i] != 0 {
					break
				}
			}
		}
		rng = r * c.freq[s]
		for rng < acTop {
			out = append(out, byte(low>>24))
			low <<= 8
			rng <<= 8
		}
		c.update(s)
	}
	for i := 0; i < 4; i++ {
		out = append(out, byte(low>>24))
		low <<= 8
	}
	return out
}

// Decode reconstructs n symbols from an Encode output. The decoder must
// start from a model in the same state the encoder started from.
func (c *ArithmeticCoder) Decode(code []byte, n int) ([]byte, error) {
	read := func(i int) uint32 {
		if i < len(code) {
			return uint32(code[i])
		}
		return 0
	}
	var val uint32
	pos := 0
	for ; pos < 4; pos++ {
		val = val<<8 | read(pos)
	}
	low, rng := uint32(0), ^uint32(0)
	out := make([]byte, 0, n)
	for len(out) < n {
		r := rng / c.tot
		target := (val - low) / r
		if target >= c.tot {
			target = c.tot - 1
		}
		// Locate the symbol whose cumulative range covers target.
		var cum uint32
		var sym int
		for sym = 0; sym < 256; sym++ {
			if cum+c.freq[sym] > target {
				break
			}
			cum += c.freq[sym]
		}
		if sym == 256 {
			return nil, fmt.Errorf("apps: arithmetic decode desynchronized")
		}
		low += r * cum
		rng = r * c.freq[sym]
		for rng < acTop {
			val = val<<8 | read(pos)
			pos++
			low <<= 8
			rng <<= 8
		}
		out = append(out, byte(sym))
		c.update(byte(sym))
	}
	return out, nil
}
