// Package apps defines the six QoS-sensitive benchmark applications of
// Table II — Automatic Speech Recognition (ASR), Finance Quantitative
// Trading (FQT), Image Recognition (IR), Cloud Storage (CS), Online
// Matrix Factorization (MF), and WebP Transcoding (WT).
//
// Each application contributes two artifacts:
//
//   - an annotated OpenCL-style Program (the kernel DAG with parallel
//     pattern annotations) that the offline analyzer, DSE, and runtime
//     scheduler operate on, with per-kernel work sizes calibrated to the
//     paper's latency anchors (Fig. 1(e,f), 200 ms QoS bound); and
//   - a reference computational implementation built on internal/exec
//     (LSTM cells, Black-Scholes, GF(2^8) Reed-Solomon, arithmetic
//     coding, …), so the kernels the scheduler places are real, testable
//     computations rather than opaque cost tuples.
package apps

import "poly/internal/opencl"

// App couples a benchmark's annotated program with metadata.
type App struct {
	// Name is the short code used throughout the paper (ASR, FQT, …).
	Name string
	// Title is the full benchmark name from Table II.
	Title string
	// Program is the annotated kernel DAG.
	Program *opencl.Program
}

// All returns the six benchmarks in Table II order. Programs are built
// fresh on every call so callers may mutate them safely.
func All() []App {
	return []App{
		{Name: "ASR", Title: "Automatic Speech Recognition", Program: ASRProgram()},
		{Name: "FQT", Title: "Finance Quantitative Trading", Program: FQTProgram()},
		{Name: "IR", Title: "Image Recognition", Program: IRProgram()},
		{Name: "CS", Title: "Cloud Storage", Program: CSProgram()},
		{Name: "MF", Title: "Online Matrix Factorization", Program: MFProgram()},
		{Name: "WT", Title: "WebP Transcoding", Program: WTProgram()},
	}
}

// ByName returns the named benchmark or false.
func ByName(name string) (App, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// Names returns the six benchmark codes in Table II order.
func Names() []string {
	return []string{"ASR", "FQT", "IR", "CS", "MF", "WT"}
}
