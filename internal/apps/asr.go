package apps

import (
	"math"

	"poly/internal/exec"
	"poly/internal/opencl"
)

// asrSrc is the ASR service of the motivation study: a bidirectional LSTM
// acoustic model feeding a fully-connected output layer. The DAG follows
// Fig. 6 — two independent paths merging at K4:
//
//	k1_lstm_fwd ────────────────────────────┐
//	k2_lstm_bwd ──► k3_attention ──► k4_fc ─┘→ result
//
// K1/K2 come from Map patterns (the gate matvecs), K3 from Reduce
// (attention pooling), K4 is the FC layer (Table II: Map, Pipeline,
// Pack). Work sizes (hidden width, frame counts) are calibrated so the
// most energy-efficient designs land near the per-kernel latencies of
// Fig. 1(e,f): K1 ≈ 102/109 ms, K2 ≈ 57/50 ms, K3 ≈ 52/45 ms,
// K4 ≈ 78/75 ms on GPU/FPGA.
const asrSrc = `
program ASR
latency_bound 200

# K1: forward LSTM over the utterance (the long direction).
kernel k1_lstm_fwd
  repeat 1800
  const w f32[1024x768]
  in x f32[768]
  tiling t(x, size=[64 1 1] count=[12 1 1])
  map    gates(t w, func=mac ops=1536 elems=1024)
  reduce acc(gates, func=add assoc elems=1024)
  pipeline act(acc, funcs=[sigmoid:8 mul:1 tanh:8 mul:1])
  out act

# K2: backward LSTM over a decimated frame sequence.
kernel k2_lstm_bwd
  repeat 900
  const w f32[1024x768]
  in x f32[768]
  tiling t(x, size=[64 1 1] count=[12 1 1])
  map    gates(t w, func=mac ops=1536 elems=1024)
  reduce acc(gates, func=add assoc elems=1024)
  pipeline act(acc, funcs=[sigmoid:8 mul:1 tanh:8 mul:1])
  out act

# K3: attention pooling over the backward states.
kernel k3_attention
  repeat 900
  const w f32[1024x512]
  in h f32[1024]
  map    score(h w, func=mac ops=1024 elems=1024)
  reduce ctx(score, func=add assoc elems=512)
  map    norm(ctx, func=exp ops=8)
  out norm

# K4: fully-connected output layer over the merged features.
kernel k4_fc
  repeat 1800
  const w f32[1536x512]
  in h f32[1536]
  pack   p(h)
  map    proj(p w, func=mac ops=1024 elems=768)
  pipeline soft(proj, funcs=[exp:8 div:8])
  out soft

edge k1_lstm_fwd -> k4_fc bytes=8192
edge k2_lstm_bwd -> k3_attention bytes=4096
edge k3_attention -> k4_fc bytes=2048
`

// ASRProgram returns the annotated ASR service.
func ASRProgram() *opencl.Program { return opencl.MustParse(asrSrc) }

// LSTMCell is a reference long short-term memory cell: four gate matvecs
// plus the elementwise state update, matching the PPG of Fig. 4(a).
type LSTMCell struct {
	Hidden int
	// Wi, Wf, Wg, Wo are the (hidden × 2·hidden) gate weights over the
	// concatenated [x, h] vector.
	Wi, Wf, Wg, Wo *exec.Tensor
	// Bi, Bf, Bg, Bo are the gate biases.
	Bi, Bf, Bg, Bo *exec.Tensor
}

// NewLSTMCell builds a cell with deterministic small weights so tests are
// reproducible without a random dependency.
func NewLSTMCell(hidden int) *LSTMCell {
	mk := func(seed float64) *exec.Tensor {
		w := exec.NewTensor(hidden, 2*hidden)
		for i := range w.Data {
			// Small, sign-alternating weights keep activations in range.
			w.Data[i] = 0.05 * math.Sin(seed+float64(i)*0.7)
		}
		return w
	}
	bias := func(seed float64) *exec.Tensor {
		b := exec.NewTensor(hidden)
		for i := range b.Data {
			b.Data[i] = 0.01 * math.Cos(seed+float64(i))
		}
		return b
	}
	return &LSTMCell{
		Hidden: hidden,
		Wi:     mk(1), Wf: mk(2), Wg: mk(3), Wo: mk(4),
		Bi: bias(1), Bf: bias(2), Bg: bias(3), Bo: bias(4),
	}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Step advances the cell one frame: given input x and previous (h, c),
// it returns the next (h, c). Built from Map/Reduce/Pipeline executors.
func (l *LSTMCell) Step(cx exec.Ctx, x, h, c *exec.Tensor) (hNext, cNext *exec.Tensor) {
	if x.Len() != l.Hidden || h.Len() != l.Hidden || c.Len() != l.Hidden {
		panic("apps: LSTM step dimension mismatch")
	}
	xh := exec.NewTensor(2 * l.Hidden)
	copy(xh.Data[:l.Hidden], x.Data)
	copy(xh.Data[l.Hidden:], h.Data)

	gate := func(w, b *exec.Tensor, act func(float64) float64) *exec.Tensor {
		z := cx.MatVec(w, xh)
		cx.Zip(z, z, b, func(a, bv float64) float64 { return a + bv })
		out := exec.NewTensor(l.Hidden)
		cx.Map(out, z, act)
		return out
	}
	i := gate(l.Wi, l.Bi, sigmoid)
	f := gate(l.Wf, l.Bf, sigmoid)
	g := gate(l.Wg, l.Bg, math.Tanh)
	o := gate(l.Wo, l.Bo, sigmoid)

	cNext = exec.NewTensor(l.Hidden)
	cx.Zip(cNext, f, c, func(fv, cv float64) float64 { return fv * cv })
	ig := exec.NewTensor(l.Hidden)
	cx.Zip(ig, i, g, func(iv, gv float64) float64 { return iv * gv })
	cx.Zip(cNext, cNext, ig, func(a, b float64) float64 { return a + b })

	hNext = exec.NewTensor(l.Hidden)
	cx.Zip(hNext, o, cNext, func(ov, cv float64) float64 { return ov * math.Tanh(cv) })
	return hNext, cNext
}

// Forward runs the cell over a frame sequence and returns the final
// hidden state — the reference computation for the ASR K1/K2 kernels.
func (l *LSTMCell) Forward(cx exec.Ctx, frames []*exec.Tensor) *exec.Tensor {
	h := exec.NewTensor(l.Hidden)
	c := exec.NewTensor(l.Hidden)
	for _, x := range frames {
		h, c = l.Step(cx, x, h, c)
	}
	return h
}

// FullyConnected applies out = softmax(W·x) — the reference computation
// for the ASR K4 kernel.
func FullyConnected(cx exec.Ctx, w, x *exec.Tensor) *exec.Tensor {
	z := cx.MatVec(w, x)
	max := cx.Reduce(z, math.Inf(-1), math.Max)
	e := exec.NewTensor(z.Len())
	cx.Map(e, z, func(v float64) float64 { return math.Exp(v - max) })
	sum := cx.Reduce(e, 0, func(a, b float64) float64 { return a + b })
	out := exec.NewTensor(z.Len())
	cx.Map(out, e, func(v float64) float64 { return v / sum })
	return out
}
