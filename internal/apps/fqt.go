package apps

import (
	"math"

	"poly/internal/exec"
	"poly/internal/opencl"
)

// fqtSrc is the Finance Quantitative Trading service (Table II): a Monte
// Carlo option-pricing chain. The PRNG kernel generates Gaussian paths,
// Black-Scholes prices them, and a Reduce kernel aggregates the
// estimator. Section VI-B: the PRNG "requires large batch size to enable
// high throughput [on GPUs]" but "is naturally amenable to a customized
// pipeline on FPGAs" — expressed here as a deep Pipeline pattern.
const fqtSrc = `
program FQT
latency_bound 200

kernel prng
  repeat 250
  const tbl f32[4096]
  in seed f32[4096]
  map      state(seed tbl, func=xorshift ops=6 custom elems=262144)
  pipeline box(state, funcs=[log:8 sqrt:8 mul:1 mul:1])
  out box

kernel blackscholes
  repeat 250
  in z f32[262144]
  map      d1(z, func=mac ops=12 elems=262144)
  pipeline price(d1, funcs=[exp:8 mul:1 mac:2 exp:8 mul:1])
  out price

kernel reduce
  repeat 250
  in p f32[262144]
  reduce sum(p, func=add assoc elems=1024)
  pack   est(sum)
  out est

edge prng -> blackscholes bytes=1048576
edge blackscholes -> reduce bytes=1048576
`

// FQTProgram returns the annotated FQT service.
func FQTProgram() *opencl.Program { return opencl.MustParse(fqtSrc) }

// XorShift64 is the reference PRNG of the FQT prng kernel: a 64-bit
// xorshift* generator, deterministic per seed.
type XorShift64 struct{ state uint64 }

// NewXorShift64 seeds the generator; a zero seed is remapped (xorshift
// has a zero fixed point).
func NewXorShift64(seed uint64) *XorShift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &XorShift64{state: seed}
}

// Next returns the next raw 64-bit value.
func (x *XorShift64) Next() uint64 {
	s := x.state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.state = s
	return s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform sample in (0, 1).
func (x *XorShift64) Float64() float64 {
	return (float64(x.Next()>>11) + 0.5) / (1 << 53)
}

// NormalPair returns two independent standard Gaussians via Box-Muller —
// the "box" pipeline stage of the prng kernel.
func (x *XorShift64) NormalPair() (float64, float64) {
	u1, u2 := x.Float64(), x.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	return r * math.Cos(2*math.Pi*u2), r * math.Sin(2*math.Pi*u2)
}

// GaussianTensor fills a tensor with standard Gaussian samples.
func GaussianTensor(seed uint64, n int) *exec.Tensor {
	g := NewXorShift64(seed)
	t := exec.NewTensor(n)
	for i := 0; i < n; i += 2 {
		a, b := g.NormalPair()
		t.Data[i] = a
		if i+1 < n {
			t.Data[i+1] = b
		}
	}
	return t
}

// BSParams are Black-Scholes option parameters.
type BSParams struct {
	Spot, Strike, Rate, Vol, Tenor float64
}

// stdNormCDF is the standard normal CDF via erf.
func stdNormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// CallPrice returns the closed-form Black-Scholes European call price —
// the blackscholes kernel's per-element function.
func (p BSParams) CallPrice() float64 {
	if p.Tenor <= 0 || p.Vol <= 0 {
		return math.Max(0, p.Spot-p.Strike)
	}
	sv := p.Vol * math.Sqrt(p.Tenor)
	d1 := (math.Log(p.Spot/p.Strike) + (p.Rate+0.5*p.Vol*p.Vol)*p.Tenor) / sv
	d2 := d1 - sv
	return p.Spot*stdNormCDF(d1) - p.Strike*math.Exp(-p.Rate*p.Tenor)*stdNormCDF(d2)
}

// MonteCarloCall estimates the same price by simulating terminal spots
// with the provided Gaussian samples and averaging discounted payoffs —
// the full FQT chain (prng → blackscholes → reduce) in reference form.
func MonteCarloCall(cx exec.Ctx, p BSParams, z *exec.Tensor) float64 {
	payoff := exec.NewTensor(z.Len())
	drift := (p.Rate - 0.5*p.Vol*p.Vol) * p.Tenor
	sv := p.Vol * math.Sqrt(p.Tenor)
	cx.Map(payoff, z, func(g float64) float64 {
		st := p.Spot * math.Exp(drift+sv*g)
		return math.Max(0, st-p.Strike)
	})
	mean := cx.Reduce(payoff, 0, func(a, b float64) float64 { return a + b }) / float64(z.Len())
	return mean * math.Exp(-p.Rate*p.Tenor)
}
