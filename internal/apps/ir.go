package apps

import (
	"math"

	"poly/internal/exec"
	"poly/internal/opencl"
)

// irSrc is the Image Recognition service (Table II): an AlexNet-style
// convolutional network — convolution, pooling, and a fully-connected
// classifier. Section VI-B: IR favours the FPGA's customized pipeline at
// light load (no batching needed) but the FPGA saturates beyond ~60 %
// load, where the GPU's batched throughput takes over. The conv kernel is
// stencil/tiling dominated; FC is dense and batch-friendly.
const irSrc = `
program IR
latency_bound 200

kernel conv
  repeat 10
  const wts f32[64x3x11x11]
  in img f32[3x224x224]
  tiling  tile(img, size=[32 32 3] count=[7 7 1])
  gather  patch(tile, elems=150528)
  stencil feat(patch wts, func=conv ops=363 taps=121 elems=193600)
  map     relu(feat, func=max ops=1)
  pipeline bn(relu, funcs=[mul:1 add:1])
  scatter store(bn, elems=193600)
  out store

kernel pool
  repeat 12
  in feat f32[64x55x55]
  tiling  tile(feat, size=[8 8 1] count=[7 7 64])
  stencil mx(tile, func=max ops=3 taps=9 elems=48400)
  map     norm(mx, func=mul ops=2)
  out norm

kernel fc
  repeat 7
  const w f32[4096x9216]
  in feat f32[9216]
  pack    p(feat)
  tiling  t(p, size=[256 1 1] count=[36 1 1])
  map     proj(t w, func=mac ops=9216 elems=4096)
  pipeline soft(proj, funcs=[exp:8 div:8])
  out soft

edge conv -> pool bytes=774400
edge pool -> fc bytes=193600
`

// IRProgram returns the annotated IR service.
func IRProgram() *opencl.Program { return opencl.MustParse(irSrc) }

// Conv2D computes a valid-padding single-channel convolution of in
// (h×w) with kernel k (kh×kw), the reference computation of the conv
// kernel. Output is (h-kh+1)×(w-kw+1).
func Conv2D(cx exec.Ctx, in, k *exec.Tensor) *exec.Tensor {
	if len(in.Shape) != 2 || len(k.Shape) != 2 {
		panic("apps: conv2d requires 2-D tensors")
	}
	h, w := in.Shape[0], in.Shape[1]
	kh, kw := k.Shape[0], k.Shape[1]
	oh, ow := h-kh+1, w-kw+1
	if oh <= 0 || ow <= 0 {
		panic("apps: conv2d kernel larger than input")
	}
	out := exec.NewTensor(oh, ow)
	cx.ForEach(oh*ow, func(idx int) {
		y, x := idx/ow, idx%ow
		var acc float64
		for dy := 0; dy < kh; dy++ {
			for dx := 0; dx < kw; dx++ {
				acc += in.Data[(y+dy)*w+x+dx] * k.Data[dy*kw+dx]
			}
		}
		out.Data[idx] = acc
	})
	return out
}

// MaxPool2D downsamples in by non-overlapping s×s windows (h, w must be
// divisible by s), the pool kernel's reference computation.
func MaxPool2D(cx exec.Ctx, in *exec.Tensor, s int) *exec.Tensor {
	if len(in.Shape) != 2 {
		panic("apps: maxpool requires a 2-D tensor")
	}
	h, w := in.Shape[0], in.Shape[1]
	if s <= 0 || h%s != 0 || w%s != 0 {
		panic("apps: maxpool window must divide the input")
	}
	oh, ow := h/s, w/s
	out := exec.NewTensor(oh, ow)
	cx.ForEach(oh*ow, func(idx int) {
		y, x := idx/ow, idx%ow
		best := math.Inf(-1)
		for dy := 0; dy < s; dy++ {
			for dx := 0; dx < s; dx++ {
				if v := in.Data[(y*s+dy)*w+x*s+dx]; v > best {
					best = v
				}
			}
		}
		out.Data[idx] = best
	})
	return out
}

// ReLU applies max(0, x) elementwise.
func ReLU(cx exec.Ctx, in *exec.Tensor) *exec.Tensor {
	out := exec.NewTensor(in.Shape...)
	cx.Map(out, in, func(v float64) float64 { return math.Max(0, v) })
	return out
}

// Classify runs the reference IR chain on one image: convolution with a
// bank of filters, ReLU, pooling, then the shared FullyConnected softmax
// head. It returns the class scores.
func Classify(cx exec.Ctx, img *exec.Tensor, filters []*exec.Tensor, fcW *exec.Tensor, pool int) *exec.Tensor {
	var features []float64
	for _, f := range filters {
		conv := Conv2D(cx, img, f)
		act := ReLU(cx, conv)
		pooled := MaxPool2D(cx, act, pool)
		features = append(features, pooled.Data...)
	}
	feat := exec.FromSlice(features)
	if fcW.Shape[1] != feat.Len() {
		panic("apps: classifier width mismatch")
	}
	return FullyConnected(cx, fcW, feat)
}
