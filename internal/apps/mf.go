package apps

import (
	"fmt"

	"poly/internal/exec"
	"poly/internal/opencl"
)

// mfSrc is the Online Matrix Factorization service [17]: incremental
// SGD updates of user/item factor matrices as rating events stream in.
// The read_data kernel gathers the sparse rating batch (irregular
// access); the sgd_update kernel computes the dense factor updates.
const mfSrc = `
program MF
latency_bound 200

kernel read_data
  repeat 140
  in ratings f32[262144]
  gather  batch(ratings, irregular elems=262144)
  pack    packed(batch)
  tiling  t(packed, size=[128 1 1] count=[2048 1 1])
  out t

kernel sgd_update
  repeat 140
  const factors f32[512x1024]
  in batch f32[262144]
  gather  rows(batch factors, irregular elems=131072)
  map     grad(rows, func=mac ops=512 elems=131072)
  pipeline apply(grad, funcs=[mul:1 mac:2])
  tiling  wb(apply, size=[128 1 1] count=[1024 1 1])
  out wb

edge read_data -> sgd_update bytes=1048576
`

// MFProgram returns the annotated MF service.
func MFProgram() *opencl.Program { return opencl.MustParse(mfSrc) }

// Rating is one observed (user, item, value) triple.
type Rating struct {
	User, Item int
	Value      float64
}

// MFModel holds rank-R user and item factor matrices.
type MFModel struct {
	Rank  int
	Users *exec.Tensor // (numUsers × rank)
	Items *exec.Tensor // (numItems × rank)
}

// NewMFModel builds a deterministic small-valued model.
func NewMFModel(users, items, rank int) *MFModel {
	if users <= 0 || items <= 0 || rank <= 0 {
		panic("apps: non-positive MF geometry")
	}
	m := &MFModel{Rank: rank, Users: exec.NewTensor(users, rank), Items: exec.NewTensor(items, rank)}
	for i := range m.Users.Data {
		m.Users.Data[i] = 0.1 + 0.01*float64(i%7)
	}
	for i := range m.Items.Data {
		m.Items.Data[i] = 0.1 + 0.01*float64(i%5)
	}
	return m
}

// Predict returns the model's estimate for (user, item).
func (m *MFModel) Predict(user, item int) float64 {
	var dot float64
	for r := 0; r < m.Rank; r++ {
		dot += m.Users.At(user, r) * m.Items.At(item, r)
	}
	return dot
}

// SGDStep applies one stochastic-gradient update per rating with
// learning rate lr and L2 regularization reg — the reference computation
// of the sgd_update kernel. It returns the mean squared error over the
// batch before the update.
func (m *MFModel) SGDStep(batch []Rating, lr, reg float64) (float64, error) {
	if lr <= 0 {
		return 0, fmt.Errorf("apps: non-positive learning rate")
	}
	var sqErr float64
	for _, r := range batch {
		if r.User < 0 || r.User >= m.Users.Shape[0] || r.Item < 0 || r.Item >= m.Items.Shape[0] {
			return 0, fmt.Errorf("apps: rating (%d,%d) out of range", r.User, r.Item)
		}
		err := r.Value - m.Predict(r.User, r.Item)
		sqErr += err * err
		for k := 0; k < m.Rank; k++ {
			u := m.Users.At(r.User, k)
			v := m.Items.At(r.Item, k)
			m.Users.Set(u+lr*(err*v-reg*u), r.User, k)
			m.Items.Set(v+lr*(err*u-reg*v), r.Item, k)
		}
	}
	if len(batch) == 0 {
		return 0, nil
	}
	return sqErr / float64(len(batch)), nil
}

// Train runs epochs of SGD over the batch and returns the final MSE.
func (m *MFModel) Train(batch []Rating, lr, reg float64, epochs int) (float64, error) {
	var mse float64
	var err error
	for e := 0; e < epochs; e++ {
		mse, err = m.SGDStep(batch, lr, reg)
		if err != nil {
			return 0, err
		}
	}
	return mse, nil
}
