package apps

import (
	"fmt"

	"poly/internal/opencl"
)

// csSrc is the Cloud Storage service (Table II): OpenCL-based erasure
// coding [54]. A write path Reed-Solomon-encodes object stripes; the read
// path reconstructs from surviving shards. Both kernels are
// gather/scatter + custom-IP dominated, which restricts restructuring and
// rewards FPGA pipelines with burst memory access.
const csSrc = `
program CS
latency_bound 200

kernel rs_encode
  repeat 25
  const gf u8[65536]
  in data u8[1048576]
  gather  stripe(data, elems=1048576 elem=u8)
  tiling  shard(stripe, size=[256 1 1] count=[4096 1 1] elem=u8)
  map     parity(shard gf, func=gfmac ops=32 custom elems=1048576 elem=u8)
  pipeline xorfold(parity, funcs=[xor:1 xor:1])
  scatter out_shards(xorfold, elems=1310720 elem=u8)
  out out_shards

kernel rs_decode
  repeat 25
  const gf u8[65536]
  in shards u8[1310720]
  gather  survive(shards, irregular elems=1048576 elem=u8)
  tiling  group(survive, size=[256 1 1] count=[4096 1 1] elem=u8)
  map     solve(group gf, func=gfmac ops=64 custom elems=1048576 elem=u8)
  pipeline fold(solve, funcs=[xor:1 xor:1])
  scatter restore(fold, elems=1048576 elem=u8)
  out restore

edge rs_encode -> rs_decode bytes=1310720
`

// CSProgram returns the annotated CS service.
func CSProgram() *opencl.Program { return opencl.MustParse(csSrc) }

// GF256 is the Galois field GF(2^8) with the AES polynomial 0x11D,
// backing the Reed-Solomon codec below (the "custom IP" of the CS
// kernels is exactly these tables).
type GF256 struct {
	exp [512]byte
	log [256]byte
}

// NewGF256 builds the log/antilog tables.
func NewGF256() *GF256 {
	g := &GF256{}
	x := 1
	for i := 0; i < 255; i++ {
		g.exp[i] = byte(x)
		g.log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		g.exp[i] = g.exp[i-255]
	}
	return g
}

// Mul multiplies in the field.
func (g *GF256) Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return g.exp[int(g.log[a])+int(g.log[b])]
}

// Div divides a by b (b must be non-zero).
func (g *GF256) Div(a, b byte) byte {
	if b == 0 {
		panic("apps: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return g.exp[int(g.log[a])+255-int(g.log[b])]
}

// Inv returns the multiplicative inverse.
func (g *GF256) Inv(a byte) byte { return g.Div(1, a) }

// Exp returns the generator raised to n.
func (g *GF256) Exp(n int) byte { return g.exp[n%255] }

// RS is a systematic Reed-Solomon erasure code with k data shards and m
// parity shards over GF(2^8), built on a Vandermonde-derived encoding
// matrix. It tolerates any m shard erasures.
type RS struct {
	gf   *GF256
	K, M int
	// rows[i] is the encoding row for parity shard i (length K).
	rows [][]byte
}

// NewRS builds a code with k data and m parity shards. k+m must be ≤ 255
// and both positive.
func NewRS(k, m int) (*RS, error) {
	if k <= 0 || m <= 0 || k+m > 255 {
		return nil, fmt.Errorf("apps: invalid RS geometry k=%d m=%d", k, m)
	}
	gf := NewGF256()
	rs := &RS{gf: gf, K: k, M: m}
	// Parity row i evaluates the data polynomial at x = g^i; any K of the
	// K+M resulting shares determine the polynomial (Vandermonde
	// invertibility over distinct points).
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		x := gf.Exp(i + 1)
		p := byte(1)
		for j := 0; j < k; j++ {
			row[j] = p
			p = gf.Mul(p, x)
		}
		rs.rows = append(rs.rows, row)
	}
	return rs, nil
}

// Encode appends m parity shards to k equal-length data shards. The
// returned slice aliases the input data shards (systematic code).
func (rs *RS) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != rs.K {
		return nil, fmt.Errorf("apps: RS encode needs %d data shards, got %d", rs.K, len(data))
	}
	size := len(data[0])
	for _, d := range data {
		if len(d) != size {
			return nil, fmt.Errorf("apps: RS shards must be equal length")
		}
	}
	out := append([][]byte(nil), data...)
	for i := 0; i < rs.M; i++ {
		parity := make([]byte, size)
		row := rs.rows[i]
		for j := 0; j < rs.K; j++ {
			c := row[j]
			if c == 0 {
				continue
			}
			src := data[j]
			for b := 0; b < size; b++ {
				parity[b] ^= rs.gf.Mul(c, src[b])
			}
		}
		out = append(out, parity)
	}
	return out, nil
}

// Decode reconstructs the k data shards from any k surviving shards.
// shards has length k+m with nil entries marking erasures.
func (rs *RS) Decode(shards [][]byte) ([][]byte, error) {
	if len(shards) != rs.K+rs.M {
		return nil, fmt.Errorf("apps: RS decode needs %d shards, got %d", rs.K+rs.M, len(shards))
	}
	var present []int
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return nil, fmt.Errorf("apps: RS shards must be equal length")
		}
		present = append(present, i)
	}
	if len(present) < rs.K {
		return nil, fmt.Errorf("apps: unrecoverable: %d survivors < k=%d", len(present), rs.K)
	}
	present = present[:rs.K]

	// Build the K×K system mapping data words to the surviving shards.
	mat := make([][]byte, rs.K)
	rhs := make([][]byte, rs.K)
	for r, idx := range present {
		row := make([]byte, rs.K)
		if idx < rs.K {
			row[idx] = 1
		} else {
			copy(row, rs.rows[idx-rs.K])
		}
		mat[r] = row
		rhs[r] = append([]byte(nil), shards[idx]...)
	}
	// Gauss-Jordan elimination over GF(2^8).
	for col := 0; col < rs.K; col++ {
		pivot := -1
		for r := col; r < rs.K; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("apps: singular decode matrix")
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		inv := rs.gf.Inv(mat[col][col])
		for c := 0; c < rs.K; c++ {
			mat[col][c] = rs.gf.Mul(mat[col][c], inv)
		}
		for b := 0; b < size; b++ {
			rhs[col][b] = rs.gf.Mul(rhs[col][b], inv)
		}
		for r := 0; r < rs.K; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for c := 0; c < rs.K; c++ {
				mat[r][c] ^= rs.gf.Mul(f, mat[col][c])
			}
			for b := 0; b < size; b++ {
				rhs[r][b] ^= rs.gf.Mul(f, rhs[col][b])
			}
		}
	}
	return rhs, nil
}
