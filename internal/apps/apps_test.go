package apps

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"poly/internal/analysis"
	"poly/internal/exec"
	"poly/internal/pattern"
)

// TestAllProgramsParseAndValidate is the Table II structural check: six
// apps, each with its listed kernels, all analyzable.
func TestAllProgramsParseAndValidate(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("apps = %d, want 6", len(all))
	}
	wantKernels := map[string]int{
		"ASR": 4, // Fig. 6: K1..K4
		"FQT": 3, // PRNG, Black-Scholes, Reduce
		"IR":  3, // Conv, Pool, FC
		"CS":  2, // RS Encoder, RS Decoder
		"MF":  2, // Read Data, SGD update
		"WT":  3, // Intra-prediction, Prob counting, Arithmetic coding
	}
	for _, app := range all {
		if err := app.Program.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if got := len(app.Program.Kernels()); got != wantKernels[app.Name] {
			t.Errorf("%s: %d kernels, want %d", app.Name, got, wantKernels[app.Name])
		}
		if app.Program.LatencyBoundMS != 200 {
			t.Errorf("%s: bound %v, want the paper's 200 ms", app.Name, app.Program.LatencyBoundMS)
		}
		if _, err := analysis.AnalyzeProgram(app.Program, analysis.Options{}); err != nil {
			t.Fatalf("%s: analysis failed: %v", app.Name, err)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	if len(Names()) != 6 {
		t.Fatal("Names must list six benchmarks")
	}
	a, ok := ByName("ASR")
	if !ok || a.Name != "ASR" {
		t.Fatal("ByName(ASR) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName must reject unknown names")
	}
}

// TestASRPatternVocabulary checks Table II's pattern lists per app.
func TestPatternVocabulary(t *testing.T) {
	has := func(progName, kernel string, kinds ...pattern.Kind) {
		t.Helper()
		app, _ := ByName(progName)
		k := app.Program.Kernel(kernel)
		if k == nil {
			t.Fatalf("%s: kernel %q missing", progName, kernel)
		}
		present := map[pattern.Kind]bool{}
		for _, in := range k.Patterns.Instances() {
			present[in.Kind] = true
		}
		for _, kind := range kinds {
			if !present[kind] {
				t.Errorf("%s/%s: pattern %v missing", progName, kernel, kind)
			}
		}
	}
	has("ASR", "k1_lstm_fwd", pattern.Map, pattern.Reduce, pattern.Pipeline, pattern.Tiling)
	has("ASR", "k4_fc", pattern.Map, pattern.Pipeline, pattern.Pack)
	has("FQT", "prng", pattern.Map, pattern.Pipeline)
	has("FQT", "reduce", pattern.Reduce, pattern.Pack)
	has("IR", "conv", pattern.Gather, pattern.Map, pattern.Pipeline, pattern.Stencil, pattern.Tiling, pattern.Scatter)
	has("IR", "pool", pattern.Map, pattern.Stencil, pattern.Tiling)
	has("CS", "rs_encode", pattern.Gather, pattern.Map, pattern.Pipeline, pattern.Scatter, pattern.Tiling)
	has("MF", "read_data", pattern.Gather, pattern.Pack, pattern.Tiling)
	has("WT", "arith_code", pattern.Scatter, pattern.Map, pattern.Pipeline, pattern.Stencil)
}

func TestLSTMCellStepIsBoundedAndStateful(t *testing.T) {
	cell := NewLSTMCell(32)
	cx := exec.DefaultCtx
	x := exec.NewTensor(32)
	for i := range x.Data {
		x.Data[i] = math.Sin(float64(i))
	}
	h := exec.NewTensor(32)
	c := exec.NewTensor(32)
	h1, c1 := cell.Step(cx, x, h, c)
	h2, _ := cell.Step(cx, x, h1, c1)
	var moved bool
	for i := range h1.Data {
		if math.Abs(h1.Data[i]) > 1 {
			t.Fatalf("hidden state out of tanh range: %v", h1.Data[i])
		}
		if h1.Data[i] != h2.Data[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("state did not evolve across steps")
	}
	frames := []*exec.Tensor{x, x, x}
	if out := cell.Forward(cx, frames); out.Len() != 32 {
		t.Fatal("forward output wrong width")
	}
}

func TestFullyConnectedSoftmax(t *testing.T) {
	cx := exec.DefaultCtx
	w := exec.NewTensor(4, 3)
	for i := range w.Data {
		w.Data[i] = float64(i)
	}
	x := exec.FromSlice([]float64{0.1, 0.2, 0.3})
	out := FullyConnected(cx, w, x)
	var sum float64
	for _, v := range out.Data {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax out of range: %v", out.Data)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("softmax sums to %v", sum)
	}
	// Monotone logits → monotone probabilities.
	for i := 1; i < out.Len(); i++ {
		if out.Data[i] <= out.Data[i-1] {
			t.Fatal("softmax order violated")
		}
	}
}

func TestXorShiftStatistics(t *testing.T) {
	g := NewXorShift64(42)
	const n = 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Float64()
		if v <= 0 || v >= 1 {
			t.Fatalf("uniform sample %v outside (0,1)", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
	varc := sumSq/n - mean*mean
	if math.Abs(varc-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %v", varc)
	}
	if NewXorShift64(0).Next() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestGaussianTensorMoments(t *testing.T) {
	z := GaussianTensor(7, 200000)
	var sum, sumSq float64
	for _, v := range z.Data {
		sum += v
		sumSq += v * v
	}
	n := float64(z.Len())
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Fatalf("gaussian mean = %v", mean)
	}
	if sd := math.Sqrt(sumSq/n - mean*mean); math.Abs(sd-1) > 0.02 {
		t.Fatalf("gaussian stddev = %v", sd)
	}
}

func TestMonteCarloConvergesToBlackScholes(t *testing.T) {
	p := BSParams{Spot: 100, Strike: 105, Rate: 0.02, Vol: 0.25, Tenor: 1}
	closed := p.CallPrice()
	if closed <= 0 || closed >= p.Spot {
		t.Fatalf("closed-form price %v implausible", closed)
	}
	mc := MonteCarloCall(exec.DefaultCtx, p, GaussianTensor(11, 400000))
	if rel := math.Abs(mc-closed) / closed; rel > 0.02 {
		t.Fatalf("Monte Carlo %v vs closed form %v (rel err %v)", mc, closed, rel)
	}
	// Degenerate tenor returns intrinsic value.
	if (BSParams{Spot: 110, Strike: 100}).CallPrice() != 10 {
		t.Fatal("zero-tenor price must be intrinsic")
	}
}

func TestConv2DAndPooling(t *testing.T) {
	cx := exec.DefaultCtx
	in := exec.NewTensor(4, 4)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	k := exec.NewTensor(2, 2)
	k.Data = []float64{1, 0, 0, 1} // trace filter
	out := Conv2D(cx, in, k)
	if out.Shape[0] != 3 || out.Shape[1] != 3 {
		t.Fatalf("conv shape = %v", out.Shape)
	}
	if out.At(0, 0) != in.At(0, 0)+in.At(1, 1) {
		t.Fatalf("conv value = %v", out.At(0, 0))
	}
	p := MaxPool2D(cx, in, 2)
	if p.Shape[0] != 2 || p.At(0, 0) != 5 || p.At(1, 1) != 15 {
		t.Fatalf("pool = %+v", p)
	}
	r := ReLU(cx, exec.FromSlice([]float64{-1, 2}))
	if r.Data[0] != 0 || r.Data[1] != 2 {
		t.Fatal("relu wrong")
	}
}

func TestClassifyEndToEnd(t *testing.T) {
	cx := exec.DefaultCtx
	img := exec.NewTensor(10, 10)
	for i := range img.Data {
		img.Data[i] = float64(i%7) / 7
	}
	filters := []*exec.Tensor{exec.NewTensor(3, 3), exec.NewTensor(3, 3)}
	filters[0].Data[4] = 1 // identity tap
	for i := range filters[1].Data {
		filters[1].Data[i] = 1.0 / 9
	}
	// Each filter yields an 8×8 conv → 4×4 pool = 16 features; 2 filters = 32.
	fcW := exec.NewTensor(5, 32)
	for i := range fcW.Data {
		fcW.Data[i] = math.Sin(float64(i))
	}
	scores := Classify(cx, img, filters, fcW, 2)
	var sum float64
	for _, v := range scores.Data {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("class scores sum to %v", sum)
	}
}

func TestGF256FieldAxioms(t *testing.T) {
	gf := NewGF256()
	f := func(a, b, c byte) bool {
		// Commutativity and associativity of Mul, distributivity over XOR.
		if gf.Mul(a, b) != gf.Mul(b, a) {
			return false
		}
		if gf.Mul(a, gf.Mul(b, c)) != gf.Mul(gf.Mul(a, b), c) {
			return false
		}
		if gf.Mul(a, b^c) != gf.Mul(a, b)^gf.Mul(a, c) {
			return false
		}
		// Inverses.
		if a != 0 && gf.Mul(a, gf.Inv(a)) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	if gf.Mul(0, 7) != 0 || gf.Mul(1, 9) != 9 {
		t.Fatal("GF identity/zero wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero must panic")
		}
	}()
	gf.Div(3, 0)
}

func TestRSRoundTripUnderErasures(t *testing.T) {
	rs, err := NewRS(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 64)
		for j := range data[i] {
			data[i][j] = byte(i*31 + j*7)
		}
	}
	shards, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 9 {
		t.Fatalf("shards = %d", len(shards))
	}
	// Erase any 3 shards (here: two data + one parity).
	shards[1], shards[4], shards[7] = nil, nil, nil
	got, err := rs.Decode(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("shard %d not reconstructed", i)
		}
	}
}

func TestRSRandomErasureProperty(t *testing.T) {
	rs, err := NewRS(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, eraseA, eraseB uint8) bool {
		if len(payload) == 0 {
			payload = []byte{1}
		}
		size := (len(payload) + 3) / 4
		data := make([][]byte, 4)
		for i := range data {
			data[i] = make([]byte, size)
			for j := range data[i] {
				if idx := i*size + j; idx < len(payload) {
					data[i][j] = payload[idx]
				}
			}
		}
		shards, err := rs.Encode(data)
		if err != nil {
			return false
		}
		a, b := int(eraseA)%6, int(eraseB)%6
		shards[a] = nil
		shards[b] = nil
		got, err := rs.Decode(shards)
		if err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(got[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRSErrors(t *testing.T) {
	if _, err := NewRS(0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRS(200, 100); err == nil {
		t.Fatal("k+m>255 accepted")
	}
	rs, _ := NewRS(3, 2)
	if _, err := rs.Encode([][]byte{{1}}); err == nil {
		t.Fatal("wrong shard count accepted")
	}
	if _, err := rs.Encode([][]byte{{1}, {2, 3}, {4}}); err == nil {
		t.Fatal("ragged shards accepted")
	}
	shards, _ := rs.Encode([][]byte{{1}, {2}, {3}})
	shards[0], shards[1], shards[2] = nil, nil, nil
	if _, err := rs.Decode(shards); err == nil {
		t.Fatal("undecodable erasure pattern accepted")
	}
	if _, err := rs.Decode([][]byte{{1}}); err == nil {
		t.Fatal("wrong decode arity accepted")
	}
}

func TestMFTrainingReducesError(t *testing.T) {
	m := NewMFModel(20, 30, 8)
	g := NewXorShift64(5)
	var batch []Rating
	for i := 0; i < 200; i++ {
		batch = append(batch, Rating{
			User:  int(g.Next() % 20),
			Item:  int(g.Next() % 30),
			Value: 1 + 4*g.Float64(),
		})
	}
	first, err := m.SGDStep(batch, 0.02, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	last, err := m.Train(batch, 0.02, 0.001, 50)
	if err != nil {
		t.Fatal(err)
	}
	if last >= first*0.5 {
		t.Fatalf("SGD did not converge: first MSE %v, last %v", first, last)
	}
}

func TestMFErrors(t *testing.T) {
	m := NewMFModel(2, 2, 2)
	if _, err := m.SGDStep([]Rating{{User: 5, Item: 0}}, 0.1, 0); err == nil {
		t.Fatal("out-of-range rating accepted")
	}
	if _, err := m.SGDStep(nil, -1, 0); err == nil {
		t.Fatal("negative learning rate accepted")
	}
	if mse, err := m.SGDStep(nil, 0.1, 0); err != nil || mse != 0 {
		t.Fatal("empty batch should be a no-op")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry must panic")
		}
	}()
	NewMFModel(0, 1, 1)
}

func TestIntraPredictionReducesEnergy(t *testing.T) {
	cx := exec.DefaultCtx
	img := exec.NewTensor(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			img.Data[y*64+x] = 100 + 20*math.Sin(float64(y)/9) // smooth image
		}
	}
	resid := IntraPredictDC(cx, img, 8)
	var imgE, residE float64
	for i := range img.Data {
		imgE += img.Data[i] * img.Data[i]
		residE += resid.Data[i] * resid.Data[i]
	}
	if residE >= imgE/10 {
		t.Fatalf("prediction left too much energy: %v vs %v", residE, imgE)
	}
}

func TestCountProbabilities(t *testing.T) {
	p := CountProbabilities([]byte{0, 0, 1, 2})
	if p[0] != 0.5 || p[1] != 0.25 || p[2] != 0.25 || p[3] != 0 {
		t.Fatalf("probabilities = %v", p[:4])
	}
	if CountProbabilities(nil)[0] != 0 {
		t.Fatal("empty input must give zero histogram")
	}
}

func TestArithmeticCodingRoundTrip(t *testing.T) {
	msg := []byte("poly reproduces HPCA 2019: heterogeneous scheduling for QoS!")
	enc := NewArithmeticCoder().Encode(msg)
	got, err := NewArithmeticCoder().Decode(enc, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip failed:\n got %q\nwant %q", got, msg)
	}
}

func TestArithmeticCodingCompressesSkewedData(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 4000)
	for i := 0; i < 40; i++ {
		data[i*100] = byte(i)
	}
	enc := NewArithmeticCoder().Encode(data)
	if len(enc) >= len(data)/4 {
		t.Fatalf("no compression: %d -> %d bytes", len(data), len(enc))
	}
	got, err := NewArithmeticCoder().Decode(enc, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("skewed round trip failed: %v", err)
	}
}

func TestArithmeticCodingRandomProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 2000 {
			data = data[:2000]
		}
		enc := NewArithmeticCoder().Encode(data)
		got, err := NewArithmeticCoder().Decode(enc, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
