package opencl

import (
	"strings"
	"testing"

	"poly/internal/pattern"
)

const lstmSrc = `
# ASR-style two-kernel program
program asr
latency_bound 200

kernel lstm
  in  x f32[1024]
  in  w f32[1024x256]
  gather   g1(w)
  map      m1(x g1, func=mac ops=2 elems=1024)
  reduce   r1(m1, func=add assoc elems=256)
  map      m2(r1, func=sigmoid ops=4)
  pipeline p1(m2, funcs=[mul:1 add:1 tanh:4])
  out p1

kernel fc
  in  h f32[256]
  map  m1(h, func=mac ops=2)
  out  m1

edge lstm -> fc bytes=1024
`

func TestParseFullProgram(t *testing.T) {
	prog, err := Parse(lstmSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "asr" || prog.LatencyBoundMS != 200 {
		t.Fatalf("program header = %q/%v", prog.Name, prog.LatencyBoundMS)
	}
	if len(prog.Kernels()) != 2 {
		t.Fatalf("kernels = %d", len(prog.Kernels()))
	}
	lstm := prog.Kernel("lstm")
	if lstm == nil {
		t.Fatal("lstm kernel missing")
	}
	if lstm.Patterns.Len() != 5 {
		t.Fatalf("lstm has %d patterns, want 5", lstm.Patterns.Len())
	}
	m1 := lstm.Patterns.Node("m1")
	if m1 == nil || m1.Kind != pattern.Map || m1.Elems != 1024 {
		t.Fatalf("m1 = %+v", m1)
	}
	if len(m1.Funcs) != 1 || m1.Funcs[0].Name != "mac" || m1.Funcs[0].Ops != 2 {
		t.Fatalf("m1 funcs = %+v", m1.Funcs)
	}
	r1 := lstm.Patterns.Node("r1")
	if !r1.Funcs[0].Associative {
		t.Fatal("assoc flag lost")
	}
	p1 := lstm.Patterns.Node("p1")
	if p1.Kind != pattern.Pipeline || len(p1.Funcs) != 3 || p1.Funcs[2].Ops != 4 {
		t.Fatalf("p1 = %+v", p1)
	}
	// g1→m1 edge must exist with g1's output volume; x is a buffer, no edge.
	if got := len(lstm.Patterns.Preds("m1")); got != 1 {
		t.Fatalf("m1 preds = %d, want 1 (buffer deps are not PPG edges)", got)
	}
	// Element inheritance: m2 inherits 256 from r1.
	if m2 := lstm.Patterns.Node("m2"); m2.Elems != 256 {
		t.Fatalf("m2 elems = %d, want inherited 256", m2.Elems)
	}
	edges := prog.Edges()
	if len(edges) != 1 || edges[0].Bytes != 1024 || edges[0].From != "lstm" {
		t.Fatalf("edges = %+v", edges)
	}
}

func TestParseDefaultsAndInference(t *testing.T) {
	src := `
program p
kernel k1
  in x f32[64]
  map m(x, func=add ops=1)
kernel k2
  in y f32[32]
  map m(y, func=add ops=1)
edge k1 -> k2
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if prog.LatencyBoundMS != 200 {
		t.Fatalf("default latency bound = %v, want 200", prog.LatencyBoundMS)
	}
	k1 := prog.Kernel("k1")
	if len(k1.Outputs) != 1 || k1.Outputs[0] != "m" {
		t.Fatalf("default outputs = %v, want sink pattern", k1.Outputs)
	}
	// Default edge volume = producer OutputBytes (64 elems × 4 bytes).
	if prog.Edges()[0].Bytes != 256 {
		t.Fatalf("default edge bytes = %d, want 256", prog.Edges()[0].Bytes)
	}
}

func TestParseTilingAndStencil(t *testing.T) {
	src := `
program p
kernel k
  in img u8[64x64x3]
  tiling  t(img, size=[8 8 1] count=[8 8 3] elem=u8)
  stencil s(t, func=conv ops=9 taps=9)
  out s
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel("k")
	tl := k.Patterns.Node("t")
	if tl.TileSize != [3]int{8, 8, 1} || tl.TileCount != [3]int{8, 8, 3} {
		t.Fatalf("tile geometry = %v/%v", tl.TileSize, tl.TileCount)
	}
	if tl.ElemBytes != 1 {
		t.Fatalf("elem=u8 not applied: %d", tl.ElemBytes)
	}
	if tl.Elems != 64*64*3 {
		t.Fatalf("tiling elems = %d", tl.Elems)
	}
	s := k.Patterns.Node("s")
	if s.StencilTaps != 9 {
		t.Fatalf("taps = %d", s.StencilTaps)
	}
	if s.TotalOps() != int64(64*64*3)*9*9 {
		t.Fatalf("stencil ops = %d", s.TotalOps())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no program", "kernel k\n", "program statement must come first"},
		{"dup program", "program a\nprogram b\n", "duplicate program"},
		{"bad bound", "program a\nlatency_bound zero\n", "latency_bound"},
		{"in outside kernel", "program a\nin x f32[4]\n", "outside kernel"},
		{"bad buffer spec", "program a\nkernel k\nin x f32{4}\n", "f32[64x64]"},
		{"bad type", "program a\nkernel k\nin x f99[4]\n", "unknown data type"},
		{"bad dim", "program a\nkernel k\nin x f32[0]\n", "bad dimension"},
		{"unknown kind", "program a\nkernel k\nin x f32[4]\nfrobnicate f(x)\n", "unknown pattern kind"},
		{"unknown dep", "program a\nkernel k\nin x f32[4]\nmap m(zz, func=f ops=1)\n", "unknown name"},
		{"missing elems", "program a\nkernel k\nmap m(, func=f ops=1)\nout m\n", "needs elems="},
		{"unknown attr", "program a\nkernel k\nin x f32[4]\nmap m(x, func=f wat=1)\n", "unknown attribute"},
		{"unknown flag", "program a\nkernel k\nin x f32[4]\nmap m(x, func=f wat)\n", "unknown flag"},
		{"bad edge syntax", "program a\nkernel k\nin x f32[4]\nmap m(x, func=f)\nedge k k\n", "edge syntax"},
		{"edge to missing", "program a\nkernel k\nin x f32[4]\nmap m(x, func=f)\nedge k -> nope\n", "unknown kernel"},
		{"bad funcs", "program a\nkernel k\nin x f32[4]\npipeline p(x, funcs=bad)\n", "bracketed"},
		{"empty funcs", "program a\nkernel k\nin x f32[4]\npipeline p(x, funcs=[])\n", "empty"},
		{"bad triple", "program a\nkernel k\nin x f32[4]\ntiling t(x, size=[1 2 3 4])\n", "triple"},
		{"dup instance", "program a\nkernel k\nin x f32[4]\nmap m(x, func=f)\nmap m(x, func=f)\n", "duplicate"},
		{"no kernels", "program a\n", "no kernels"},
		{"empty src", "", "no program"},
		{"dup buffer", "program a\nkernel k\nin x f32[4]\nin x f32[4]\nmap m(x, func=f)\n", "duplicate buffer"},
		{"bad out", "program a\nkernel k\nin x f32[4]\nmap m(x, func=f)\nout nope\n", "not a pattern instance"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse accepted bad input")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Parse("program a\nkernel k\nin x f32[4]\nbogus b(x)\n")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error should name line 4: %v", err)
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic on bad source")
		}
	}()
	MustParse("nonsense")
}

func TestBufferGeometry(t *testing.T) {
	b := Buffer{Name: "w", Type: Float32, Dims: []int{64, 32}}
	if b.Elems() != 2048 || b.Bytes() != 8192 {
		t.Fatalf("elems/bytes = %d/%d", b.Elems(), b.Bytes())
	}
	if got := b.String(); got != "w f32[64x32]" {
		t.Fatalf("String = %q", got)
	}
	u := Buffer{Name: "img", Type: UInt8, Dims: []int{10}}
	if u.Bytes() != 10 {
		t.Fatalf("u8 bytes = %d", u.Bytes())
	}
}

func TestDataTypeRoundTrip(t *testing.T) {
	for _, d := range []DataType{Float32, Float64, Int32, UInt8} {
		got, err := ParseDataType(d.String())
		if err != nil || got != d {
			t.Fatalf("round trip %v: %v %v", d, got, err)
		}
		if d.Size() <= 0 {
			t.Fatalf("size of %v = %d", d, d.Size())
		}
	}
	if !strings.Contains(DataType(99).String(), "99") {
		t.Fatal("unknown type should format its number")
	}
}

func TestProgramTopoSortAndCycle(t *testing.T) {
	prog, err := Parse(lstmSrc)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := prog.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo) != 2 || topo[0] != "lstm" {
		t.Fatalf("topo = %v", topo)
	}
	if err := prog.Connect("fc", "lstm", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := prog.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestProgramAdjacency(t *testing.T) {
	prog := MustParse(lstmSrc)
	if len(prog.Succs("lstm")) != 1 || len(prog.Preds("fc")) != 1 {
		t.Fatal("kernel adjacency wrong")
	}
	if len(prog.Succs("fc")) != 0 || len(prog.Preds("lstm")) != 0 {
		t.Fatal("kernel adjacency wrong at ends")
	}
}

func TestProgramValidateRejectsBadPieces(t *testing.T) {
	p := NewProgram("", 200)
	if err := p.Validate(); err == nil {
		t.Fatal("empty name accepted")
	}
	p = NewProgram("x", 0)
	k := &Kernel{Name: "k", Patterns: pattern.NewGraph(), Outputs: []string{"m"}}
	in := &pattern.Instance{Name: "m", Kind: pattern.Map, Elems: 4, Funcs: []pattern.Func{{Name: "f", Ops: 1}}}
	if err := k.Patterns.Add(in); err != nil {
		t.Fatal(err)
	}
	if err := p.AddKernel(k); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err == nil {
		t.Fatal("non-positive latency bound accepted")
	}
	if err := p.Connect("k", "k", 4); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := p.AddKernel(k); err == nil {
		t.Fatal("duplicate kernel accepted")
	}
}

func TestKernelIOBytes(t *testing.T) {
	prog := MustParse(lstmSrc)
	lstm := prog.Kernel("lstm")
	wantIn := int64(1024*4 + 1024*256*4)
	if lstm.InputBytes() != wantIn {
		t.Fatalf("InputBytes = %d, want %d", lstm.InputBytes(), wantIn)
	}
	// Output p1 inherits 256 elems × 4 bytes.
	if lstm.OutputBytes() != 1024 {
		t.Fatalf("OutputBytes = %d, want 1024", lstm.OutputBytes())
	}
	if lstm.Input("x") == nil || lstm.Input("nope") != nil {
		t.Fatal("Input lookup wrong")
	}
}

func TestParseConstAndRepeat(t *testing.T) {
	src := `
program p
kernel k
  repeat 1500
  const w f32[1024x256]
  in    x f32[1024]
  map m(x w, func=mac ops=2)
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	k := prog.Kernel("k")
	if k.Invocations() != 1500 {
		t.Fatalf("repeat = %d", k.Invocations())
	}
	if k.ConstBytes() != 1024*256*4 {
		t.Fatalf("const bytes = %d", k.ConstBytes())
	}
	if k.RequestBytes() != 1024*4 {
		t.Fatalf("request bytes = %d", k.RequestBytes())
	}
	if !k.Input("w").Const || k.Input("x").Const {
		t.Fatal("const flags wrong")
	}
}

func TestParseRepeatErrors(t *testing.T) {
	for _, src := range []string{
		"program p\nrepeat 5\n",
		"program p\nkernel k\nrepeat 0\nin x f32[4]\nmap m(x, func=f)\n",
		"program p\nkernel k\nrepeat\nin x f32[4]\nmap m(x, func=f)\n",
	} {
		if _, err := Parse(src); err == nil {
			t.Fatalf("bad repeat accepted: %q", src)
		}
	}
}

func TestKernelDefaultInvocations(t *testing.T) {
	k := &Kernel{}
	if k.Invocations() != 1 {
		t.Fatalf("default invocations = %d", k.Invocations())
	}
}
