package opencl

import (
	"fmt"
	"strings"

	"poly/internal/pattern"
)

// DataType is an element type in a kernel buffer.
type DataType int

// Supported element types.
const (
	Float32 DataType = iota
	Float64
	Int32
	UInt8
)

var dataTypeNames = map[DataType]string{
	Float32: "f32",
	Float64: "f64",
	Int32:   "i32",
	UInt8:   "u8",
}

var dataTypeSizes = map[DataType]int{
	Float32: 4,
	Float64: 8,
	Int32:   4,
	UInt8:   1,
}

// String returns the annotation spelling of the type.
func (d DataType) String() string {
	if s, ok := dataTypeNames[d]; ok {
		return s
	}
	return fmt.Sprintf("DataType(%d)", int(d))
}

// Size returns the element size in bytes.
func (d DataType) Size() int { return dataTypeSizes[d] }

// ParseDataType converts an annotation spelling to a DataType.
func ParseDataType(s string) (DataType, error) {
	for d, name := range dataTypeNames {
		if strings.EqualFold(s, name) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("opencl: unknown data type %q", s)
}

// Buffer is a named input or output data collection of a kernel.
type Buffer struct {
	Name string
	Type DataType
	// Dims are the logical dimensions; element count is their product.
	Dims []int
	// Const marks request-invariant data (weights, coefficient tables,
	// Galois-field tables). Const buffers are fetched once per batch on
	// GPUs and pinned in on-chip memory on FPGAs, which is what makes
	// batching pay off on one platform and deep pipelines on the other.
	Const bool
}

// Elems returns the total element count.
func (b *Buffer) Elems() int {
	n := 1
	for _, d := range b.Dims {
		n *= d
	}
	return n
}

// Bytes returns the buffer footprint in bytes.
func (b *Buffer) Bytes() int64 {
	return int64(b.Elems()) * int64(b.Type.Size())
}

func (b *Buffer) String() string {
	dims := make([]string, len(b.Dims))
	for i, d := range b.Dims {
		dims[i] = fmt.Sprint(d)
	}
	return fmt.Sprintf("%s %s[%s]", b.Name, b.Type, strings.Join(dims, "x"))
}

// Kernel is one OpenCL kernel: a named PPG plus its interface buffers.
// The runtime scheduler treats kernels as the atomic unit of placement
// (Section V: nodes of the kernel graph G).
type Kernel struct {
	// Name is unique within a program.
	Name string
	// Patterns is the kernel's parallel pattern graph.
	Patterns *pattern.Graph
	// Inputs are the buffers read from global memory (host-visible).
	Inputs []Buffer
	// Outputs names the pattern instances whose results leave the kernel.
	Outputs []string
	// Repeat is how many times the kernel body executes per service
	// request (e.g. an LSTM cell runs once per frame per layer). Zero
	// means 1.
	Repeat int
}

// Invocations returns Repeat normalized to at least 1.
func (k *Kernel) Invocations() int {
	if k.Repeat < 1 {
		return 1
	}
	return k.Repeat
}

// InputBytes returns the bytes transferred host→device per invocation,
// including const data.
func (k *Kernel) InputBytes() int64 {
	var n int64
	for i := range k.Inputs {
		n += k.Inputs[i].Bytes()
	}
	return n
}

// ConstBytes returns the bytes of request-invariant input data.
func (k *Kernel) ConstBytes() int64 {
	var n int64
	for i := range k.Inputs {
		if k.Inputs[i].Const {
			n += k.Inputs[i].Bytes()
		}
	}
	return n
}

// RequestBytes returns the per-request (non-const) input bytes.
func (k *Kernel) RequestBytes() int64 { return k.InputBytes() - k.ConstBytes() }

// OutputBytes returns the bytes produced by the output patterns.
func (k *Kernel) OutputBytes() int64 {
	var n int64
	for _, name := range k.Outputs {
		if in := k.Patterns.Node(name); in != nil {
			n += in.OutputBytes()
		}
	}
	return n
}

// Input returns the named input buffer, or nil.
func (k *Kernel) Input(name string) *Buffer {
	for i := range k.Inputs {
		if k.Inputs[i].Name == name {
			return &k.Inputs[i]
		}
	}
	return nil
}

// Validate checks the kernel's structural invariants.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("opencl: kernel with empty name")
	}
	if k.Patterns == nil || k.Patterns.Len() == 0 {
		return fmt.Errorf("opencl: kernel %q has no patterns", k.Name)
	}
	if err := k.Patterns.Validate(); err != nil {
		return fmt.Errorf("opencl: kernel %q: %w", k.Name, err)
	}
	if k.Repeat < 0 {
		return fmt.Errorf("opencl: kernel %q has negative repeat", k.Name)
	}
	seen := map[string]bool{}
	for i := range k.Inputs {
		b := &k.Inputs[i]
		if b.Name == "" {
			return fmt.Errorf("opencl: kernel %q has an unnamed buffer", k.Name)
		}
		if seen[b.Name] {
			return fmt.Errorf("opencl: kernel %q: duplicate buffer %q", k.Name, b.Name)
		}
		seen[b.Name] = true
		if b.Elems() <= 0 {
			return fmt.Errorf("opencl: kernel %q: buffer %q has non-positive size", k.Name, b.Name)
		}
	}
	if len(k.Outputs) == 0 {
		return fmt.Errorf("opencl: kernel %q declares no outputs", k.Name)
	}
	for _, o := range k.Outputs {
		if k.Patterns.Node(o) == nil {
			return fmt.Errorf("opencl: kernel %q: output %q is not a pattern instance", k.Name, o)
		}
	}
	return nil
}

// KernelEdge is a host-level data dependency between kernels: the bytes
// move over PCIe unless producer and consumer land on the same device.
type KernelEdge struct {
	From, To string
	Bytes    int64
}

// Program is a whole interactive application: the kernel DAG the runtime
// scheduler (Section V) operates on.
type Program struct {
	Name string
	// LatencyBoundMS is the application's QoS tail-latency bound LB.
	LatencyBoundMS float64
	kernels        []*Kernel
	index          map[string]*Kernel
	edges          []KernelEdge
}

// NewProgram returns an empty program with the given name and latency
// bound in milliseconds.
func NewProgram(name string, latencyBoundMS float64) *Program {
	return &Program{
		Name:           name,
		LatencyBoundMS: latencyBoundMS,
		index:          make(map[string]*Kernel),
	}
}

// AddKernel appends a kernel; duplicate names are rejected.
func (p *Program) AddKernel(k *Kernel) error {
	if err := k.Validate(); err != nil {
		return err
	}
	if _, dup := p.index[k.Name]; dup {
		return fmt.Errorf("opencl: duplicate kernel %q in program %q", k.Name, p.Name)
	}
	p.kernels = append(p.kernels, k)
	p.index[k.Name] = k
	return nil
}

// Connect records a data dependency between two kernels.
func (p *Program) Connect(from, to string, bytes int64) error {
	if from == to {
		return fmt.Errorf("opencl: self dependency on kernel %q", from)
	}
	if _, ok := p.index[from]; !ok {
		return fmt.Errorf("opencl: unknown kernel %q in edge", from)
	}
	if _, ok := p.index[to]; !ok {
		return fmt.Errorf("opencl: unknown kernel %q in edge", to)
	}
	if bytes < 0 {
		return fmt.Errorf("opencl: negative edge volume %d on %s->%s", bytes, from, to)
	}
	p.edges = append(p.edges, KernelEdge{From: from, To: to, Bytes: bytes})
	return nil
}

// Kernels returns the kernels in declaration order.
func (p *Program) Kernels() []*Kernel {
	return append([]*Kernel(nil), p.kernels...)
}

// Kernel returns the named kernel, or nil.
func (p *Program) Kernel(name string) *Kernel { return p.index[name] }

// Edges returns the kernel-level data dependencies.
func (p *Program) Edges() []KernelEdge {
	return append([]KernelEdge(nil), p.edges...)
}

// Succs returns edges leaving the named kernel.
func (p *Program) Succs(name string) []KernelEdge {
	var out []KernelEdge
	for _, e := range p.edges {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// Preds returns edges entering the named kernel.
func (p *Program) Preds(name string) []KernelEdge {
	var out []KernelEdge
	for _, e := range p.edges {
		if e.To == name {
			out = append(out, e)
		}
	}
	return out
}

// TopoSort returns kernel names in dependency order, or a cycle error.
func (p *Program) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(p.kernels))
	for _, k := range p.kernels {
		indeg[k.Name] = 0
	}
	for _, e := range p.edges {
		indeg[e.To]++
	}
	var ready []string
	for _, k := range p.kernels {
		if indeg[k.Name] == 0 {
			ready = append(ready, k.Name)
		}
	}
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, e := range p.edges {
			if e.From != n {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(p.kernels) {
		return nil, fmt.Errorf("opencl: program %q has a kernel-level cycle", p.Name)
	}
	return out, nil
}

// Validate checks the whole program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("opencl: program with empty name")
	}
	if len(p.kernels) == 0 {
		return fmt.Errorf("opencl: program %q has no kernels", p.Name)
	}
	if p.LatencyBoundMS <= 0 {
		return fmt.Errorf("opencl: program %q has non-positive latency bound", p.Name)
	}
	for _, k := range p.kernels {
		if err := k.Validate(); err != nil {
			return err
		}
	}
	_, err := p.TopoSort()
	return err
}
