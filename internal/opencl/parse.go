package opencl

import (
	"fmt"
	"strconv"
	"strings"

	"poly/internal/pattern"
)

// Parse reads a program written in Poly's annotation language and returns
// its IR. The language is line-oriented:
//
//	# comment
//	program asr
//	latency_bound 200
//
//	kernel lstm
//	  in  x f32[1024]
//	  in  w f32[1024x256]
//	  gather   g1(w)
//	  map      m1(x g1, func=mac ops=2)
//	  reduce   r1(m1, func=add assoc)
//	  pipeline p1(r1, funcs=[mul:1 tanh:4])
//	  out p1
//
//	edge lstm -> fc bytes=4096
//
// Pattern statements are `<kind> <name>(<deps>, <attrs>)` where deps are
// space-separated buffer or instance names and attrs are `key=value`
// pairs or bare flags (assoc, custom, irregular). Instance element counts
// default to the first dependency's; `elems=N` overrides. Pipeline stages
// come from `funcs=[name:ops ...]`; Stencil takes `taps=N`; Tiling takes
// `size=[x y z]` and `count=[X Y Z]`.
func Parse(src string) (*Program, error) {
	p := &parser{}
	return p.parse(src)
}

// MustParse is Parse that panics on error; intended for the compiled-in
// application definitions, which are validated by tests.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	prog    *Program
	bound   float64
	name    string
	kernel  *kernelBuilder
	pending []pendingEdge
}

type pendingEdge struct {
	line     int
	from, to string
	bytes    int64 // -1 means "default to producer output bytes"
}

// kernelBuilder accumulates one kernel block before validation.
type kernelBuilder struct {
	line    int
	k       *Kernel
	elems   map[string]int // producer name (buffer or instance) → elems
	outSeen bool
}

func (p *parser) parse(src string) (*Program, error) {
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.statement(lineNo, fields, line); err != nil {
			return nil, err
		}
	}
	if err := p.finishKernel(); err != nil {
		return nil, err
	}
	if p.prog == nil {
		if p.name == "" {
			return nil, fmt.Errorf("opencl: parse: no program statement")
		}
		if err := p.ensureProgram(len(lines)); err != nil {
			return nil, err
		}
	}
	for _, e := range p.pending {
		bytes := e.bytes
		if bytes < 0 {
			from := p.prog.Kernel(e.from)
			if from == nil {
				return nil, fmt.Errorf("opencl: parse line %d: unknown kernel %q in edge", e.line, e.from)
			}
			bytes = from.OutputBytes()
		}
		if err := p.prog.Connect(e.from, e.to, bytes); err != nil {
			return nil, fmt.Errorf("opencl: parse line %d: %v", e.line, err)
		}
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

func (p *parser) statement(lineNo int, fields []string, line string) error {
	switch fields[0] {
	case "program":
		if len(fields) != 2 {
			return parseErr(lineNo, "program takes exactly one name")
		}
		if p.name != "" {
			return parseErr(lineNo, "duplicate program statement")
		}
		p.name = fields[1]
		return nil
	case "latency_bound":
		if len(fields) != 2 {
			return parseErr(lineNo, "latency_bound takes one value (ms)")
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(fields[1], "ms"), 64)
		if err != nil || v <= 0 {
			return parseErr(lineNo, "latency_bound must be a positive number of milliseconds")
		}
		p.bound = v
		return nil
	case "kernel":
		if len(fields) != 2 {
			return parseErr(lineNo, "kernel takes exactly one name")
		}
		if err := p.finishKernel(); err != nil {
			return err
		}
		if err := p.ensureProgram(lineNo); err != nil {
			return err
		}
		p.kernel = &kernelBuilder{
			line:  lineNo,
			k:     &Kernel{Name: fields[1], Patterns: pattern.NewGraph()},
			elems: make(map[string]int),
		}
		return nil
	case "in", "const":
		if p.kernel == nil {
			return parseErr(lineNo, fields[0]+" outside kernel block")
		}
		return p.kernel.input(lineNo, fields[1:], fields[0] == "const")
	case "repeat":
		if p.kernel == nil {
			return parseErr(lineNo, "repeat outside kernel block")
		}
		if len(fields) != 2 {
			return parseErr(lineNo, "repeat takes one positive integer")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 1 {
			return parseErr(lineNo, "repeat takes one positive integer")
		}
		p.kernel.k.Repeat = n
		return nil
	case "out":
		if p.kernel == nil {
			return parseErr(lineNo, "out outside kernel block")
		}
		if len(fields) < 2 {
			return parseErr(lineNo, "out requires at least one instance name")
		}
		p.kernel.k.Outputs = append(p.kernel.k.Outputs, fields[1:]...)
		p.kernel.outSeen = true
		return nil
	case "edge":
		if err := p.finishKernel(); err != nil {
			return err
		}
		if err := p.ensureProgram(lineNo); err != nil {
			return err
		}
		return p.edge(lineNo, fields[1:])
	default:
		if p.kernel == nil {
			return parseErr(lineNo, fmt.Sprintf("unexpected statement %q outside kernel block", fields[0]))
		}
		return p.kernel.instance(lineNo, line)
	}
}

func (p *parser) ensureProgram(lineNo int) error {
	if p.prog != nil {
		return nil
	}
	if p.name == "" {
		return parseErr(lineNo, "program statement must come first")
	}
	bound := p.bound
	if bound == 0 {
		bound = 200 // the paper's default QoS target
	}
	p.prog = NewProgram(p.name, bound)
	return nil
}

func (p *parser) finishKernel() error {
	if p.kernel == nil {
		return nil
	}
	kb := p.kernel
	p.kernel = nil
	if !kb.outSeen {
		// Default: every sink pattern is an output.
		kb.k.Outputs = kb.k.Patterns.Sinks()
	}
	if err := p.prog.AddKernel(kb.k); err != nil {
		return fmt.Errorf("opencl: parse line %d: %v", kb.line, err)
	}
	return nil
}

func (p *parser) edge(lineNo int, fields []string) error {
	// Syntax: edge A -> B [bytes=N]
	if len(fields) < 3 || fields[1] != "->" {
		return parseErr(lineNo, "edge syntax is: edge FROM -> TO [bytes=N]")
	}
	e := pendingEdge{line: lineNo, from: fields[0], to: fields[2], bytes: -1}
	for _, f := range fields[3:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k != "bytes" {
			return parseErr(lineNo, fmt.Sprintf("unknown edge attribute %q", f))
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return parseErr(lineNo, "bytes must be a non-negative integer")
		}
		e.bytes = n
	}
	p.pending = append(p.pending, e)
	return nil
}

func (kb *kernelBuilder) input(lineNo int, fields []string, isConst bool) error {
	// Syntax: in NAME TYPE[dim1xdim2...] — or const for weights.
	if len(fields) != 2 {
		return parseErr(lineNo, "in syntax is: in NAME TYPE[dims]")
	}
	name := fields[0]
	spec := fields[1]
	open := strings.IndexByte(spec, '[')
	if open < 0 || !strings.HasSuffix(spec, "]") {
		return parseErr(lineNo, fmt.Sprintf("buffer spec %q must look like f32[64x64]", spec))
	}
	dt, err := ParseDataType(spec[:open])
	if err != nil {
		return parseErr(lineNo, err.Error())
	}
	var dims []int
	for _, d := range strings.Split(spec[open+1:len(spec)-1], "x") {
		n, err := strconv.Atoi(d)
		if err != nil || n <= 0 {
			return parseErr(lineNo, fmt.Sprintf("bad dimension %q", d))
		}
		dims = append(dims, n)
	}
	b := Buffer{Name: name, Type: dt, Dims: dims, Const: isConst}
	kb.k.Inputs = append(kb.k.Inputs, b)
	kb.elems[name] = b.Elems()
	return nil
}

func (kb *kernelBuilder) instance(lineNo int, line string) error {
	// Syntax: KIND NAME(dep1 dep2 ..., key=val flag ...)
	line = strings.TrimSpace(line)
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return parseErr(lineNo, fmt.Sprintf("cannot parse pattern statement %q", line))
	}
	kind, err := pattern.ParseKind(line[:sp])
	if err != nil {
		return parseErr(lineNo, err.Error())
	}
	rest := strings.TrimSpace(line[sp:])
	open := strings.IndexByte(rest, '(')
	if open <= 0 || !strings.HasSuffix(rest, ")") {
		return parseErr(lineNo, fmt.Sprintf("pattern statement needs NAME(...): %q", line))
	}
	name := rest[:open]
	body := rest[open+1 : len(rest)-1]

	depPart, attrPart, _ := strings.Cut(body, ",")
	deps := strings.Fields(depPart)

	inst := &pattern.Instance{Name: name, Kind: kind, ElemBytes: 4}
	if kind == pattern.Stencil {
		inst.StencilTaps = 1
	}
	if err := kb.attrs(lineNo, inst, attrPart); err != nil {
		return err
	}

	for _, d := range deps {
		if _, ok := kb.elems[d]; !ok {
			return parseErr(lineNo, fmt.Sprintf("pattern %q depends on unknown name %q", name, d))
		}
	}

	// Element count defaults to the first dependency's.
	if inst.Elems == 0 {
		for _, d := range deps {
			if n, ok := kb.elems[d]; ok {
				inst.Elems = n
				break
			}
		}
	}
	if inst.Elems == 0 {
		return parseErr(lineNo, fmt.Sprintf("pattern %q needs elems= or a sized dependency", name))
	}
	if err := kb.k.Patterns.Add(inst); err != nil {
		return parseErr(lineNo, err.Error())
	}
	kb.elems[name] = inst.Elems

	for _, d := range deps {
		if kb.k.Input(d) != nil {
			continue // buffer read, not a PPG edge
		}
		prod := kb.k.Patterns.Node(d)
		if prod == nil {
			return parseErr(lineNo, fmt.Sprintf("pattern %q depends on unknown name %q", name, d))
		}
		if err := kb.k.Patterns.Connect(d, name, prod.OutputBytes()); err != nil {
			return parseErr(lineNo, err.Error())
		}
	}
	return nil
}

func (kb *kernelBuilder) attrs(lineNo int, inst *pattern.Instance, attrPart string) error {
	var fn pattern.Func
	fnSet := false
	for _, f := range splitAttrs(attrPart) {
		key, val, hasVal := strings.Cut(f, "=")
		switch key {
		case "assoc":
			fn.Associative = true
			fnSet = true
		case "custom":
			fn.Custom = true
			fnSet = true
		case "irregular":
			inst.Irregular = true
		case "func":
			fn.Name = val
			fnSet = true
		case "ops":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return parseErr(lineNo, "ops must be a non-negative integer")
			}
			fn.Ops = n
			fnSet = true
		case "elems":
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return parseErr(lineNo, "elems must be a positive integer")
			}
			inst.Elems = n
		case "elem":
			dt, err := ParseDataType(val)
			if err != nil {
				return parseErr(lineNo, err.Error())
			}
			inst.ElemBytes = dt.Size()
		case "taps":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return parseErr(lineNo, "taps must be a positive integer")
			}
			inst.StencilTaps = n
		case "funcs":
			stages, err := parseFuncList(val)
			if err != nil {
				return parseErr(lineNo, err.Error())
			}
			inst.Funcs = append(inst.Funcs, stages...)
		case "size":
			v, err := parseTriple(val)
			if err != nil {
				return parseErr(lineNo, err.Error())
			}
			inst.TileSize = v
		case "count":
			v, err := parseTriple(val)
			if err != nil {
				return parseErr(lineNo, err.Error())
			}
			inst.TileCount = v
		default:
			if !hasVal {
				return parseErr(lineNo, fmt.Sprintf("unknown flag %q", key))
			}
			return parseErr(lineNo, fmt.Sprintf("unknown attribute %q", key))
		}
	}
	if fnSet {
		if fn.Ops == 0 {
			fn.Ops = 1
		}
		inst.Funcs = append([]pattern.Func{fn}, inst.Funcs...)
	}
	return nil
}

// splitAttrs splits an attribute string on spaces, but keeps bracketed
// lists (funcs=[a:1 b:2], size=[4 4 1]) intact.
func splitAttrs(s string) []string {
	var out []string
	depth := 0
	start := -1
	for i, r := range s {
		switch {
		case r == '[':
			depth++
		case r == ']':
			depth--
		case (r == ' ' || r == '\t') && depth == 0:
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// parseFuncList parses "[name:ops name:ops ...]" into pipeline stages.
func parseFuncList(s string) ([]pattern.Func, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("funcs must be a bracketed list, got %q", s)
	}
	var out []pattern.Func
	for _, item := range strings.Fields(s[1 : len(s)-1]) {
		name, opsStr, hasOps := strings.Cut(item, ":")
		f := pattern.Func{Name: name, Ops: 1}
		if hasOps {
			n, err := strconv.Atoi(opsStr)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad ops in funcs item %q", item)
			}
			f.Ops = n
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("funcs list is empty")
	}
	return out, nil
}

// parseTriple parses "[x y z]" into a 3-vector; missing entries are 1.
func parseTriple(s string) ([3]int, error) {
	var v [3]int
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return v, fmt.Errorf("expected bracketed triple, got %q", s)
	}
	fields := strings.Fields(s[1 : len(s)-1])
	if len(fields) == 0 || len(fields) > 3 {
		return v, fmt.Errorf("triple must have 1..3 entries, got %q", s)
	}
	for i := range v {
		v[i] = 1
	}
	for i, f := range fields {
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return v, fmt.Errorf("bad triple entry %q", f)
		}
		v[i] = n
	}
	return v, nil
}

func parseErr(line int, msg string) error {
	return fmt.Errorf("opencl: parse line %d: %s", line, msg)
}
