// Package opencl models the host-visible structure of an OpenCL
// application the way Poly's offline analyzer consumes it: a program is a
// DAG of kernels, each kernel is a DAG of annotated parallel patterns (a
// PPG), and buffers describe the data the kernels exchange. Real Poly
// parses OpenCL C through LLVM Clang and recognizes the function-level
// pattern annotations of Table I; this package provides the equivalent
// front end for the simulated substrate — a compact annotation language
// (Parse) plus a programmatic builder, both producing the same IR.
//
// # Annotation-language reference
//
// A program is a line-oriented text document. `#` starts a comment;
// blank lines are ignored. Statements:
//
//	program NAME                     — required, first statement
//	latency_bound MS                 — QoS bound in milliseconds (default 200)
//
//	kernel NAME                      — opens a kernel block
//	  repeat N                       — kernel body executions per request
//	  in    NAME TYPE[DIMS]          — per-request input buffer
//	  const NAME TYPE[DIMS]          — request-invariant data (weights);
//	                                   fetched once per GPU batch, pinned
//	                                   in FPGA BRAM (streamed if oversized)
//	  KIND NAME(DEPS, ATTRS)         — a parallel-pattern instance
//	  out NAME [NAME...]             — kernel outputs (default: PPG sinks)
//
//	edge FROM -> TO [bytes=N]        — kernel-level data dependency
//	                                   (default volume: FROM's output bytes)
//
// TYPE is f32, f64, i32, or u8; DIMS is `d1` or `d1xd2[xd3...]`
// (e.g. `f32[1024x768]`, `u8[64x64x3]`).
//
// KIND is one of the nine parallel patterns: map, reduce, scan, stencil,
// pipeline, gather, scatter, tiling, pack.
//
// DEPS are space-separated names of kernel buffers (no PPG edge; a
// global-memory read) or earlier pattern instances (a PPG edge carrying
// the producer's output bytes).
//
// ATTRS are space-separated `key=value` pairs or bare flags:
//
//	func=NAME      operator mnemonic ("mac", "sigmoid", "rs_core", …)
//	ops=N          scalar operations per output element (temporal work:
//	               a 2048-long dot product is ops=2048 on one MAC unit)
//	elems=N        output element count (default: first dependency's)
//	elem=TYPE      element type override (sets the element byte size)
//	funcs=[a:N b:M ...]   pipeline stage functions with per-stage ops
//	taps=N         stencil neighbourhood size (len of Table I's `list`)
//	size=[x y z]   tiling tile size
//	count=[X Y Z]  tiling tile count
//	assoc          the operator is associative (tree reduce/scan legal)
//	custom         opaque IP-core/library operator: never restructured,
//	               GPU-hostile (divergence), FPGA-friendly (pipelined core)
//	irregular      data-dependent index stream (gather/scatter): defeats
//	               coalescing until the optimizer applies it
//
// Example (an LSTM-style kernel):
//
//	program asr
//	latency_bound 200
//
//	kernel lstm
//	  repeat 1800
//	  const w f32[1024x768]
//	  in x f32[768]
//	  tiling   t(x, size=[64 1 1] count=[12 1 1])
//	  map      gates(t w, func=mac ops=1536 elems=1024)
//	  reduce   acc(gates, func=add assoc elems=1024)
//	  pipeline act(acc, funcs=[sigmoid:8 mul:1 tanh:8 mul:1])
//	  out act
package opencl
