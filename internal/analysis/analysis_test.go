package analysis

import (
	"testing"

	"poly/internal/opencl"
	"poly/internal/pattern"
)

const lstmSrc = `
program asr
latency_bound 200

kernel lstm
  in  x f32[1024]
  in  w f32[1024x256]
  gather   g1(w)
  map      m1(x g1, func=mac ops=2 elems=1024)
  reduce   r1(m1, func=add assoc elems=256)
  map      m2(r1, func=sigmoid ops=4)
  pipeline p1(m2, funcs=[mul:1 add:1 tanh:4])
  out p1
`

func analyzeLSTM(t *testing.T) *Kernel {
	t.Helper()
	prog := opencl.MustParse(lstmSrc)
	ka, err := AnalyzeKernel(prog.Kernel("lstm"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ka
}

func TestAnalyzeKernelBasics(t *testing.T) {
	ka := analyzeLSTM(t)
	if len(ka.Infos) != 5 {
		t.Fatalf("infos = %d", len(ka.Infos))
	}
	if len(ka.Order) != 5 || ka.Order[len(ka.Order)-1] != "p1" {
		t.Fatalf("order = %v", ka.Order)
	}
	if ka.TotalOps <= 0 || ka.GlobalBytes <= 0 {
		t.Fatalf("totals: ops=%d bytes=%d", ka.TotalOps, ka.GlobalBytes)
	}
}

func TestDataParallelismSemantics(t *testing.T) {
	ka := analyzeLSTM(t)
	m1 := ka.Infos["m1"]
	if m1.DataParallelism != 1024 {
		t.Fatalf("map DP = %d, want 1024 (full element count)", m1.DataParallelism)
	}
	r1 := ka.Infos["r1"]
	if r1.DataParallelism != 128 {
		t.Fatalf("reduce DP = %d, want elems/2 = 128", r1.DataParallelism)
	}
	p1 := ka.Infos["p1"]
	if p1.DataParallelism != 256 {
		t.Fatalf("pipeline DP = %d, want element count 256", p1.DataParallelism)
	}
	if m1.ComputeParallelism < m1.DataParallelism {
		t.Fatalf("compute parallelism %d < data parallelism %d", m1.ComputeParallelism, m1.DataParallelism)
	}
}

func TestDataParallelismCap(t *testing.T) {
	prog := opencl.MustParse(`
program p
kernel k
  in x f32[100000]
  map m(x, func=f ops=1)
`)
	ka, err := AnalyzeKernel(prog.Kernel("k"), Options{MaxDataParallel: 512})
	if err != nil {
		t.Fatal(err)
	}
	if ka.Infos["m"].DataParallelism != 512 {
		t.Fatalf("DP cap not applied: %d", ka.Infos["m"].DataParallelism)
	}
}

func TestIrregularPenalty(t *testing.T) {
	prog := opencl.MustParse(`
program p
kernel k
  in x f32[1024]
  gather g(x, irregular)
  map m(g, func=f ops=1)
`)
	ka, err := AnalyzeKernel(prog.Kernel("k"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := ka.Infos["g"].DataParallelism; got != 256 {
		t.Fatalf("irregular gather DP = %d, want 1024/4", got)
	}
}

func TestScanSerialVsAssociative(t *testing.T) {
	prog := opencl.MustParse(`
program p
kernel k
  in x f32[64]
  scan s1(x, func=add)
  scan s2(x, func=add assoc)
`)
	ka, err := AnalyzeKernel(prog.Kernel("k"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ka.Infos["s1"].DataParallelism != 1 {
		t.Fatalf("non-associative scan DP = %d, want 1", ka.Infos["s1"].DataParallelism)
	}
	if ka.Infos["s2"].DataParallelism != 32 {
		t.Fatalf("associative scan DP = %d, want 32", ka.Infos["s2"].DataParallelism)
	}
}

func TestCommunicationAndFusion(t *testing.T) {
	ka := analyzeLSTM(t)
	if len(ka.Comms) != 4 {
		t.Fatalf("comms = %d, want 4 edges", len(ka.Comms))
	}
	var sum float64
	for _, c := range ka.Comms {
		if c.GlobalTraffic != 2*c.Edge.Bytes || c.OnChipTraffic != c.Edge.Bytes {
			t.Fatalf("traffic model wrong: %+v", c)
		}
		sum += c.Intensity
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("intensities sum to %v, want 1", sum)
	}
	if len(ka.Fusible) == 0 {
		t.Fatal("no fusion candidates on small intermediates")
	}
	for i := 1; i < len(ka.Fusible); i++ {
		if ka.Fusible[i].Saving > ka.Fusible[i-1].Saving {
			t.Fatal("fusion candidates not sorted by saving")
		}
	}
	for _, f := range ka.Fusible {
		if f.Saving != 2*f.BufferBytes {
			t.Fatalf("fusion saving %d != 2×buffer %d", f.Saving, f.BufferBytes)
		}
	}
}

func TestFusionRespectsCapacity(t *testing.T) {
	prog := opencl.MustParse(`
program p
kernel k
  in x f32[1048576]
  map m1(x, func=f ops=1)
  map m2(m1, func=g ops=1)
`)
	// m1→m2 carries 4 MiB; capacity of 1 KiB forbids fusion.
	ka, err := AnalyzeKernel(prog.Kernel("k"), Options{OnChipCapacityBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(ka.Fusible) != 0 {
		t.Fatalf("fusion allowed beyond capacity: %+v", ka.Fusible)
	}
}

func TestSourcePatternsChargeKernelInputs(t *testing.T) {
	ka := analyzeLSTM(t)
	g1 := ka.Infos["g1"]
	// g1 is a source: it must be charged the kernel input bytes.
	wantIn := int64(1024*4 + 1024*256*4)
	if g1.InBytes != wantIn {
		t.Fatalf("source InBytes = %d, want %d", g1.InBytes, wantIn)
	}
	if g1.ArithIntensity <= 0 {
		t.Fatal("arith intensity must be positive")
	}
}

func TestAnalyzeProgram(t *testing.T) {
	prog := opencl.MustParse(lstmSrc)
	pa, err := AnalyzeProgram(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pa.Kernels) != 1 || pa.Kernels["lstm"] == nil {
		t.Fatalf("program analysis kernels = %v", pa.Order)
	}
	if len(pa.Order) != 1 {
		t.Fatalf("order = %v", pa.Order)
	}
}

func TestAnalyzeRejectsInvalidKernel(t *testing.T) {
	k := &opencl.Kernel{Name: "bad", Patterns: pattern.NewGraph()}
	if _, err := AnalyzeKernel(k, Options{}); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}
