// Package analysis implements Poly's automatic pattern analysis
// (Section IV-A): given an annotated kernel, it lowers every pattern
// instance to a CDFG, characterizes its data- and compute-parallelism, and
// quantifies the communication intensity on every PPG edge under the two
// data-transfer strategies (off-chip global memory vs on-chip scratchpad).
// The result drives local and global optimization in internal/opt.
package analysis

import (
	"fmt"

	"poly/internal/cdfg"
	"poly/internal/opencl"
	"poly/internal/pattern"
)

// PatternInfo is the per-instance characterization.
type PatternInfo struct {
	Inst *pattern.Instance
	CDFG *cdfg.Graph
	// DataParallelism is the number of independent data elements the
	// pattern can process concurrently (capacity-limited, Section IV-A).
	DataParallelism int64
	// ComputeParallelism is the number of independent operator slots
	// (replication × intra-replica ILP).
	ComputeParallelism int64
	// InBytes/OutBytes are the pattern's external data footprints.
	InBytes, OutBytes int64
	// ArithIntensity is ops per byte moved — low values flag
	// memory-bound patterns whose optimization is bandwidth-side.
	ArithIntensity float64
}

// EdgeComm quantifies one PPG edge's communication under the two transfer
// strategies. Costs are in abstract byte-cycles; the platform models scale
// them by actual bandwidths.
type EdgeComm struct {
	Edge pattern.Edge
	// GlobalTraffic is the off-chip traffic if the intermediate round-trips
	// through global memory (write + read).
	GlobalTraffic int64
	// OnChipTraffic is the traffic if producer and consumer are fused and
	// the intermediate stays in scratchpad/BRAM (single pass).
	OnChipTraffic int64
	// Intensity is the fraction of the kernel's total internal traffic
	// carried by this edge — the "data communication intensity" of
	// Section IV-A used to rank fusion opportunities.
	Intensity float64
}

// FusionCandidate is an adjacent pattern pair whose intermediate fits in
// on-chip memory, making fusion legal (Section IV-B, global optimization).
type FusionCandidate struct {
	From, To string
	// BufferBytes is the on-chip capacity the fused intermediate needs.
	BufferBytes int64
	// Saving is the off-chip traffic eliminated by fusing.
	Saving int64
}

// Kernel is the full analysis result for one kernel.
type Kernel struct {
	Name string
	// Infos maps instance name → characterization.
	Infos map[string]*PatternInfo
	// Order is the PPG topological order.
	Order []string
	// Comms has one entry per PPG edge.
	Comms []EdgeComm
	// Fusible lists fusion candidates, highest saving first.
	Fusible []FusionCandidate
	// TotalOps is the kernel's total operator executions.
	TotalOps int64
	// GlobalBytes is the kernel's off-chip traffic with no fusion:
	// kernel inputs + outputs + a round trip per internal edge.
	GlobalBytes int64
	// ConstBytes is the request-invariant (weight) portion of the kernel
	// inputs; RequestBytes is the per-request remainder plus outputs.
	ConstBytes, RequestBytes int64
	// Repeat is how many times the kernel body runs per service request.
	Repeat int
}

// Options tunes the analysis.
type Options struct {
	// OnChipCapacityBytes bounds fusion candidates. Zero means the default
	// 4 MiB (a mid-range FPGA BRAM / GPU scratchpad budget).
	OnChipCapacityBytes int64
	// MaxDataParallel caps reported data parallelism (hardware never
	// instantiates more lanes than this). Zero means 4096.
	MaxDataParallel int64
}

func (o Options) withDefaults() Options {
	if o.OnChipCapacityBytes == 0 {
		o.OnChipCapacityBytes = 4 << 20
	}
	if o.MaxDataParallel == 0 {
		o.MaxDataParallel = 4096
	}
	return o
}

// AnalyzeKernel characterizes one kernel.
func AnalyzeKernel(k *opencl.Kernel, opts Options) (*Kernel, error) {
	opts = opts.withDefaults()
	if err := k.Validate(); err != nil {
		return nil, err
	}
	order, err := k.Patterns.TopoSort()
	if err != nil {
		return nil, err
	}
	out := &Kernel{
		Name:  k.Name,
		Infos: make(map[string]*PatternInfo, k.Patterns.Len()),
		Order: order,
	}

	for _, name := range order {
		in := k.Patterns.Node(name)
		g, err := cdfg.Build(in)
		if err != nil {
			return nil, fmt.Errorf("analysis: kernel %q: %w", k.Name, err)
		}
		info := &PatternInfo{Inst: in, CDFG: g}

		// Data parallelism: elements that are independent. Scan carries a
		// serial prefix dependence; Reduce admits a tree so its effective
		// parallelism halves level by level — characterize as elems/2.
		dp := int64(in.Elems)
		switch in.Kind {
		case pattern.Scan:
			dp = 1
			if len(in.Funcs) > 0 && in.Funcs[0].Associative {
				dp = int64(in.Elems) / 2 // Blelloch-style work-efficient scan
			}
		case pattern.Reduce:
			dp = int64(in.Elems) / 2
			if dp < 1 {
				dp = 1
			}
		case pattern.Pipeline:
			// Elements stream independently; whole pipelines replicate
			// across compute units, so element count bounds parallelism
			// (stage overlap is a timing property, not a width limit).
			dp = int64(in.Elems)
		}
		if in.Irregular {
			dp /= 4 // data-dependent indices serialize memory lanes
			if dp < 1 {
				dp = 1
			}
		}
		if dp > opts.MaxDataParallel {
			dp = opts.MaxDataParallel
		}
		info.DataParallelism = dp
		info.ComputeParallelism = g.ComputeParallelism()

		for _, e := range k.Patterns.Preds(name) {
			info.InBytes += e.Bytes
		}
		info.OutBytes = in.OutputBytes()
		moved := info.InBytes + info.OutBytes
		if moved > 0 {
			info.ArithIntensity = float64(in.TotalOps()) / float64(moved)
		}
		out.Infos[name] = info
		out.TotalOps += in.TotalOps()
	}

	// Kernel inputs feed source patterns from global memory.
	for _, name := range k.Patterns.Sources() {
		info := out.Infos[name]
		for i := range k.Inputs {
			info.InBytes += k.Inputs[i].Bytes()
		}
	}

	total := k.Patterns.TotalBytes()
	for _, e := range k.Patterns.Edges() {
		comm := EdgeComm{
			Edge:          e,
			GlobalTraffic: 2 * e.Bytes, // write then read back
			OnChipTraffic: e.Bytes,
		}
		if total > 0 {
			comm.Intensity = float64(e.Bytes) / float64(total)
		}
		out.Comms = append(out.Comms, comm)
		if e.Bytes <= opts.OnChipCapacityBytes {
			out.Fusible = append(out.Fusible, FusionCandidate{
				From:        e.From,
				To:          e.To,
				BufferBytes: e.Bytes,
				Saving:      2 * e.Bytes,
			})
		}
	}
	// Highest saving first; stable tie-break on names for determinism.
	for i := 1; i < len(out.Fusible); i++ {
		for j := i; j > 0; j-- {
			a, b := out.Fusible[j-1], out.Fusible[j]
			if b.Saving > a.Saving || (b.Saving == a.Saving && b.From < a.From) {
				out.Fusible[j-1], out.Fusible[j] = b, a
			} else {
				break
			}
		}
	}

	out.GlobalBytes = k.InputBytes() + k.OutputBytes() + 2*total
	out.ConstBytes = k.ConstBytes()
	out.RequestBytes = k.RequestBytes() + k.OutputBytes()
	out.Repeat = k.Invocations()
	return out, nil
}

// Program is the analysis of every kernel in a program.
type Program struct {
	Name    string
	Kernels map[string]*Kernel
	Order   []string
}

// AnalyzeProgram characterizes every kernel in a program.
func AnalyzeProgram(p *opencl.Program, opts Options) (*Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	order, err := p.TopoSort()
	if err != nil {
		return nil, err
	}
	out := &Program{Name: p.Name, Kernels: make(map[string]*Kernel), Order: order}
	for _, k := range p.Kernels() {
		ka, err := AnalyzeKernel(k, opts)
		if err != nil {
			return nil, err
		}
		out.Kernels[k.Name] = ka
	}
	return out, nil
}
