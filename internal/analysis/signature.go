package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// Signature returns a content hash of everything the optimizer
// (internal/opt) and the analytical models (internal/model) read from
// this kernel: the pattern instances and their lowered CDFGs, the
// parallelism/footprint characterization, the PPG order and edge
// communication, and the fusion candidates. Two kernels with equal
// signatures therefore enumerate and evaluate to identical design
// spaces on any given board, which is what lets internal/dse share one
// explored Space between applications and hardware settings that reuse
// a kernel or a board.
func (k *Kernel) Signature() string {
	h := sha256.New()
	fmt.Fprintf(h, "kernel %s repeat=%d ops=%d gbytes=%d cbytes=%d rbytes=%d\n",
		k.Name, k.Repeat, k.TotalOps, k.GlobalBytes, k.ConstBytes, k.RequestBytes)
	for _, name := range k.Order {
		writeInfo(h, k.Infos[name])
	}
	for _, c := range k.Comms {
		fmt.Fprintf(h, "edge %s->%s global=%d onchip=%d intensity=%g\n",
			c.Edge.From, c.Edge.To, c.GlobalTraffic, c.OnChipTraffic, c.Intensity)
	}
	for _, f := range k.Fusible {
		fmt.Fprintf(h, "fuse %s->%s buf=%d save=%d\n", f.From, f.To, f.BufferBytes, f.Saving)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeInfo serializes one pattern instance's characterization, CDFG
// included (node kinds, operator mnemonics, cycle counts, and edges all
// feed the latency/resource models).
func writeInfo(w io.Writer, info *PatternInfo) {
	in := info.Inst
	fmt.Fprintf(w, "inst %s kind=%s elems=%d ebytes=%d taps=%d tile=%v/%v irregular=%v\n",
		in.Name, in.Kind, in.Elems, in.ElemBytes, in.StencilTaps, in.TileSize, in.TileCount, in.Irregular)
	for _, f := range in.Funcs {
		fmt.Fprintf(w, "func %s ops=%d custom=%v assoc=%v\n", f.Name, f.Ops, f.Custom, f.Associative)
	}
	fmt.Fprintf(w, "par data=%d compute=%d in=%d out=%d ai=%g\n",
		info.DataParallelism, info.ComputeParallelism, info.InBytes, info.OutBytes, info.ArithIntensity)
	for _, n := range info.CDFG.Nodes() {
		fmt.Fprintf(w, "node %d %s %s %d ->%v\n", n.ID, n.Kind, n.Op, n.Cycles, info.CDFG.Succ(n.ID))
	}
}
