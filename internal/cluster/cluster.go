// Package cluster assembles Poly leaf nodes: a CPU host plus a set of GPU
// and FPGA boards provisioned under a node power cap (Section II-A).
//
// Three architectures are compared throughout the paper: Homo-GPU and
// Homo-FPGA spend the whole power budget on one accelerator family, while
// Heter-Poly splits it (50 %–50 % by default, other ratios in Fig. 13).
// Board counts follow Table III for the three hardware settings.
package cluster

import (
	"fmt"
	"math"

	"poly/internal/device"
	"poly/internal/sim"
)

// Architecture selects how the node spends its power budget.
type Architecture int

// The three system architectures of Section II-A.
const (
	HomoGPU Architecture = iota
	HomoFPGA
	HeterPoly
)

var archNames = [...]string{"Homo-GPU", "Homo-FPGA", "Heter-Poly"}

// String returns the paper's codename for the architecture.
func (a Architecture) String() string {
	if a < 0 || int(a) >= len(archNames) {
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
	return archNames[a]
}

// Setting is one hardware generation (Table III).
type Setting struct {
	Name string
	GPU  device.GPUSpec
	FPGA device.FPGASpec
}

// The three settings of Table III.
var (
	SettingI   = Setting{Name: "Setting-I", GPU: device.AMDW9100, FPGA: device.Xilinx7V3}
	SettingII  = Setting{Name: "Setting-II", GPU: device.NvidiaK20, FPGA: device.XilinxZCU102}
	SettingIII = Setting{Name: "Setting-III", GPU: device.NvidiaK20, FPGA: device.IntelArria10}
)

// Settings returns the three hardware settings in order.
func Settings() []Setting { return []Setting{SettingI, SettingII, SettingIII} }

// Config describes a node to provision.
type Config struct {
	Arch    Architecture
	Setting Setting
	// PowerCapW is the node accelerator power budget (500 W in the
	// motivation study, 1000 W in the scalability study).
	PowerCapW float64
	// GPUShare is the fraction of the budget spent on GPUs for HeterPoly
	// (0.5 if zero). Ignored for the homogeneous architectures.
	GPUShare float64
}

// Plan is the provisioning outcome: how many boards of each family fit.
type Plan struct {
	Config
	NumGPU, NumFPGA int
}

// Provision computes board counts under the power cap using each board's
// provisioning power (the budget the datacenter operator charges per
// slot). It reproduces Table III: e.g. Setting-I at 500 W yields
// Homo-GPU = 2×W9100, Homo-FPGA = 10×7V3, Heter-Poly = 1×W9100 + 5×7V3.
func Provision(cfg Config) (Plan, error) {
	if cfg.PowerCapW <= 0 {
		return Plan{}, fmt.Errorf("cluster: non-positive power cap %v", cfg.PowerCapW)
	}
	share := cfg.GPUShare
	if share == 0 {
		share = 0.5
	}
	if share < 0 || share > 1 {
		return Plan{}, fmt.Errorf("cluster: GPU share %v outside [0,1]", share)
	}
	p := Plan{Config: cfg}
	gpuBudget, fpgaBudget := 0.0, 0.0
	switch cfg.Arch {
	case HomoGPU:
		gpuBudget = cfg.PowerCapW
	case HomoFPGA:
		fpgaBudget = cfg.PowerCapW
	case HeterPoly:
		gpuBudget = cfg.PowerCapW * share
		fpgaBudget = cfg.PowerCapW - gpuBudget
	default:
		return Plan{}, fmt.Errorf("cluster: unknown architecture %d", int(cfg.Arch))
	}
	if cfg.Setting.GPU.ProvisionPowerW > 0 {
		p.NumGPU = int(math.Floor(gpuBudget / cfg.Setting.GPU.ProvisionPowerW))
	}
	if cfg.Setting.FPGA.ProvisionPowerW > 0 {
		p.NumFPGA = int(math.Floor(fpgaBudget / cfg.Setting.FPGA.ProvisionPowerW))
	}
	if p.NumGPU == 0 && p.NumFPGA == 0 {
		return Plan{}, fmt.Errorf("cluster: power cap %vW too small for any accelerator in %s",
			cfg.PowerCapW, cfg.Setting.Name)
	}
	return p, nil
}

// Node is a provisioned leaf node bound to a simulator.
type Node struct {
	Plan  Plan
	Sim   *sim.Simulator
	GPUs  []*device.GPUDevice
	FPGAs []*device.FPGADevice
	PCIe  device.PCIeSpec
}

// Build instantiates the node's boards on a simulator.
func Build(s *sim.Simulator, plan Plan) *Node {
	return BuildNamed(s, plan, "")
}

// BuildNamed is Build with every board name prefixed — how a multi-node
// fleet assembles N shards on one shared simulator without board-name
// collisions (shard i's boards become "n<i>/gpu0", "n<i>/fpga3", ...).
// An empty prefix reproduces Build exactly, so a 1-node fleet keeps the
// single-node board names and, with them, bit-identical plan-cache keys.
func BuildNamed(s *sim.Simulator, plan Plan, prefix string) *Node {
	n := &Node{Plan: plan, Sim: s, PCIe: device.DefaultPCIe}
	for i := 0; i < plan.NumGPU; i++ {
		n.GPUs = append(n.GPUs, device.NewGPU(s, fmt.Sprintf("%sgpu%d", prefix, i), plan.Setting.GPU))
	}
	for i := 0; i < plan.NumFPGA; i++ {
		n.FPGAs = append(n.FPGAs, device.NewFPGA(s, fmt.Sprintf("%sfpga%d", prefix, i), plan.Setting.FPGA))
	}
	return n
}

// ResourceCapacity is an allocatable resource envelope — of one board
// or of the whole node — in the units the telemetry resource gauges
// (poly_node_allocatable / poly_board_allocatable) export.
type ResourceCapacity struct {
	// ComputeSlots is how many boards can hold work concurrently.
	ComputeSlots float64
	// PowerW is the power budget: a board's peak draw, or the node's
	// provisioned cap.
	PowerW float64
	// FPGARegions is how many reconfigurable regions exist.
	FPGARegions float64
}

// Capacity returns the node's allocatable envelope: one compute slot
// per board, the provisioned power cap (falling back to aggregate peak
// draw if the plan carries no cap), and one region per FPGA.
func (n *Node) Capacity() ResourceCapacity {
	power := n.Plan.PowerCapW
	if power <= 0 {
		power = n.PeakPowerW()
	}
	return ResourceCapacity{
		ComputeSlots: float64(len(n.GPUs) + len(n.FPGAs)),
		PowerW:       power,
		FPGARegions:  float64(len(n.FPGAs)),
	}
}

// GPUBoardCapacity returns the per-board envelope of this node's GPUs.
func (n *Node) GPUBoardCapacity() ResourceCapacity {
	return ResourceCapacity{ComputeSlots: 1, PowerW: n.Plan.Setting.GPU.PeakPowerW}
}

// FPGABoardCapacity returns the per-board envelope of this node's FPGAs.
func (n *Node) FPGABoardCapacity() ResourceCapacity {
	return ResourceCapacity{ComputeSlots: 1, PowerW: n.Plan.Setting.FPGA.PeakPowerW, FPGARegions: 1}
}

// Accelerators returns every board as the common interface, GPUs first.
func (n *Node) Accelerators() []device.Accelerator {
	out := make([]device.Accelerator, 0, len(n.GPUs)+len(n.FPGAs))
	for _, g := range n.GPUs {
		out = append(out, g)
	}
	for _, f := range n.FPGAs {
		out = append(out, f)
	}
	return out
}

// PowerW returns the node's instantaneous accelerator power draw.
func (n *Node) PowerW() float64 {
	var w float64
	for _, a := range n.Accelerators() {
		w += a.PowerW()
	}
	return w
}

// EnergyMJ returns the node's accumulated accelerator energy.
func (n *Node) EnergyMJ() float64 {
	var e float64
	for _, a := range n.Accelerators() {
		e += a.EnergyMJ()
	}
	return e
}

// IdlePowerW returns the node's floor draw with every board idle at the
// nominal operating point.
func (n *Node) IdlePowerW() float64 {
	return float64(n.Plan.NumGPU)*n.Plan.Setting.GPU.IdlePowerW +
		float64(n.Plan.NumFPGA)*n.Plan.Setting.FPGA.IdlePowerW
}

// PeakPowerW returns the node's worst-case draw.
func (n *Node) PeakPowerW() float64 {
	return float64(n.Plan.NumGPU)*n.Plan.Setting.GPU.PeakPowerW +
		float64(n.Plan.NumFPGA)*n.Plan.Setting.FPGA.PeakPowerW
}

// CapexUSD returns the accelerator purchase cost, used by the TCO model.
func (n *Node) CapexUSD() float64 {
	return float64(n.Plan.NumGPU)*n.Plan.Setting.GPU.PriceUSD +
		float64(n.Plan.NumFPGA)*n.Plan.Setting.FPGA.PriceUSD
}
