package cluster

import (
	"testing"

	"poly/internal/sim"
)

// TestProvisionReproducesTableIII checks every row of Table III.
func TestProvisionReproducesTableIII(t *testing.T) {
	cases := []struct {
		setting  Setting
		arch     Architecture
		wantGPU  int
		wantFPGA int
	}{
		{SettingI, HomoGPU, 2, 0},
		{SettingI, HomoFPGA, 0, 10},
		{SettingI, HeterPoly, 1, 5},
		{SettingII, HomoGPU, 2, 0},
		{SettingII, HomoFPGA, 0, 16},
		{SettingII, HeterPoly, 1, 8},
		{SettingIII, HomoGPU, 2, 0},
		{SettingIII, HomoFPGA, 0, 8},
		{SettingIII, HeterPoly, 1, 4},
	}
	for _, c := range cases {
		p, err := Provision(Config{Arch: c.arch, Setting: c.setting, PowerCapW: 500})
		if err != nil {
			t.Fatalf("%s/%s: %v", c.setting.Name, c.arch, err)
		}
		if p.NumGPU != c.wantGPU || p.NumFPGA != c.wantFPGA {
			t.Errorf("%s/%s: got %dxGPU %dxFPGA, want %dxGPU %dxFPGA",
				c.setting.Name, c.arch, p.NumGPU, p.NumFPGA, c.wantGPU, c.wantFPGA)
		}
	}
}

// TestProvisionFig13Splits checks the 1000 W power-split sweep example
// from Section VI-D: an 80 %–20 % split in Setting-I yields 3 GPUs and
// 4 FPGAs.
func TestProvisionFig13Splits(t *testing.T) {
	p, err := Provision(Config{Arch: HeterPoly, Setting: SettingI, PowerCapW: 1000, GPUShare: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGPU != 3 || p.NumFPGA != 4 {
		t.Fatalf("80/20 split: got %dxGPU %dxFPGA, want 3/4", p.NumGPU, p.NumFPGA)
	}
}

func TestProvisionErrors(t *testing.T) {
	if _, err := Provision(Config{Arch: HomoGPU, Setting: SettingI, PowerCapW: 0}); err == nil {
		t.Fatal("zero cap accepted")
	}
	if _, err := Provision(Config{Arch: HomoGPU, Setting: SettingI, PowerCapW: 100}); err == nil {
		t.Fatal("cap below one board accepted")
	}
	if _, err := Provision(Config{Arch: Architecture(9), Setting: SettingI, PowerCapW: 500}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
	if _, err := Provision(Config{Arch: HeterPoly, Setting: SettingI, PowerCapW: 500, GPUShare: 1.5}); err == nil {
		t.Fatal("share > 1 accepted")
	}
}

func TestBuildNodeAndAggregates(t *testing.T) {
	p, err := Provision(Config{Arch: HeterPoly, Setting: SettingI, PowerCapW: 500})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New()
	n := Build(s, p)
	if len(n.GPUs) != 1 || len(n.FPGAs) != 5 {
		t.Fatalf("built %d GPUs, %d FPGAs", len(n.GPUs), len(n.FPGAs))
	}
	if len(n.Accelerators()) != 6 {
		t.Fatalf("accelerators = %d", len(n.Accelerators()))
	}
	// Idle draw = 1×42 + 5×8 = 82 W.
	if got := n.PowerW(); got != 82 {
		t.Fatalf("idle node power = %v, want 82", got)
	}
	if n.IdlePowerW() != 82 {
		t.Fatalf("IdlePowerW = %v", n.IdlePowerW())
	}
	if n.PeakPowerW() != 270+5*45 {
		t.Fatalf("PeakPowerW = %v", n.PeakPowerW())
	}
	if n.CapexUSD() != 4999+5*3200 {
		t.Fatalf("CapexUSD = %v", n.CapexUSD())
	}
	if n.EnergyMJ() != 0 {
		t.Fatalf("fresh node energy = %v", n.EnergyMJ())
	}
	// Idle energy accrues with time.
	s.At(1000, func() {})
	s.Run()
	if e := n.EnergyMJ(); e < 81000 || e > 83000 {
		t.Fatalf("idle energy after 1 s = %v mJ, want ≈82000", e)
	}
}

func TestArchitectureString(t *testing.T) {
	if HomoGPU.String() != "Homo-GPU" || HomoFPGA.String() != "Homo-FPGA" || HeterPoly.String() != "Heter-Poly" {
		t.Fatal("architecture names wrong")
	}
	if Architecture(7).String() == "" {
		t.Fatal("unknown arch must format")
	}
	if len(Settings()) != 3 {
		t.Fatal("Settings() must return the three settings")
	}
}
