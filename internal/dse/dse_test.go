package dse

import (
	"fmt"
	"testing"
	"testing/quick"

	"poly/internal/analysis"
	"poly/internal/device"
	"poly/internal/model"
	"poly/internal/opencl"
	"poly/internal/parallel"
)

const lstmSrc = `
program asr
kernel lstm
  repeat 1500
  const w f32[1024x1024]
  in x f32[1024]
  map      m1(x w, func=mac ops=2048 elems=1024)
  reduce   r1(m1, func=add assoc elems=1024)
  map      m2(r1, func=sigmoid ops=4)
  pipeline p1(m2, funcs=[mul:1 add:1 tanh:4])
  out p1
`

func analyzed(t *testing.T) *analysis.Kernel {
	t.Helper()
	prog := opencl.MustParse(lstmSrc)
	ka, err := analysis.AnalyzeKernel(prog.Kernel("lstm"), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ka
}

func TestExploreBothPlatforms(t *testing.T) {
	ka := analyzed(t)
	g, err := Explore(ka, device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Explore(ka, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Space{g, f} {
		if s.Enumerated < 16 {
			t.Fatalf("%s enumerated only %d designs", s.Board, s.Enumerated)
		}
		if len(s.Feasible) == 0 || len(s.Pareto) == 0 {
			t.Fatalf("%s: empty spaces", s.Board)
		}
		if len(s.Pareto) > len(s.Feasible) {
			t.Fatalf("%s: Pareto bigger than feasible set", s.Board)
		}
		for i := 1; i < len(s.Pareto); i++ {
			if s.Pareto[i].LatencyMS < s.Pareto[i-1].LatencyMS {
				t.Fatalf("%s: Pareto not latency-sorted", s.Board)
			}
		}
	}
	if len(f.Feasible) > f.Enumerated {
		t.Fatalf("FPGA feasible %d exceeds enumerated %d", len(f.Feasible), f.Enumerated)
	}
}

func TestExploreFiltersInfeasibleFPGAConfigs(t *testing.T) {
	// 5 MB of weights almost fills the 6.5 MB board; fused variants that
	// additionally buffer intermediates on-chip must be rejected.
	src := `
program p
kernel big
  const w f32[1310720]
  in x f32[262144]
  map m1(x w, func=mac ops=16 elems=262144)
  map m2(m1, func=add ops=1)
`
	prog := opencl.MustParse(src)
	ka, err := analysis.AnalyzeKernel(prog.Kernel("big"), analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Explore(ka, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Feasible) >= s.Enumerated {
		t.Fatalf("no config rejected (%d of %d)", len(s.Feasible), s.Enumerated)
	}
}

func TestParetoNoDominatedSurvives(t *testing.T) {
	ka := analyzed(t)
	for _, spec := range []any{device.AMDW9100, device.Xilinx7V3} {
		s, err := Explore(ka, spec)
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range s.Pareto {
			for j, b := range s.Pareto {
				if i == j {
					continue
				}
				if dominates(a, b) {
					t.Fatalf("%s: frontier point %d dominates frontier point %d", s.Board, i, j)
				}
			}
		}
		// Every feasible point is dominated by or equal to a frontier point.
		for _, cand := range s.Feasible {
			ok := false
			for _, f := range s.Pareto {
				if f == cand || dominates(f, cand) ||
					(f.LatencyMS == cand.LatencyMS && f.PowerW == cand.PowerW && f.ThroughputRPS == cand.ThroughputRPS) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("%s: feasible point %v not covered by frontier", s.Board, cand)
			}
		}
	}
}

func TestFrontierSelectors(t *testing.T) {
	ka := analyzed(t)
	s, err := Explore(ka, device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	minLat := s.MinLatency()
	maxEff := s.MaxEfficiency()
	maxThr := s.MaxThroughput()
	if minLat == nil || maxEff == nil || maxThr == nil {
		t.Fatal("selectors returned nil on non-empty frontier")
	}
	for _, im := range s.Pareto {
		if im.LatencyMS < minLat.LatencyMS {
			t.Fatal("MinLatency not minimal")
		}
		if im.EfficiencyRPSPerW() > maxEff.EfficiencyRPSPerW() {
			t.Fatal("MaxEfficiency not maximal")
		}
		if im.ThroughputRPS > maxThr.ThroughputRPS {
			t.Fatal("MaxThroughput not maximal")
		}
	}
	var empty Space
	if empty.MinLatency() != nil || empty.MaxEfficiency() != nil || empty.MaxThroughput() != nil {
		t.Fatal("selectors on empty space must return nil")
	}
}

func TestFrontierShowsLatencyPowerTradeoff(t *testing.T) {
	// Fig. 1(c): the frontier must contain genuinely different operating
	// points, not a single dominant design.
	ka := analyzed(t)
	for _, spec := range []any{device.AMDW9100, device.Xilinx7V3} {
		s, err := Explore(ka, spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Pareto) < 2 {
			t.Fatalf("%s: frontier has %d point(s); no trade-off exposed", s.Board, len(s.Pareto))
		}
	}
}

func TestExploreProgramAndLookup(t *testing.T) {
	prog := opencl.MustParse(lstmSrc)
	pa, err := analysis.AnalyzeProgram(prog, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := ExploreProgram(pa, device.AMDW9100, device.Xilinx7V3)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Space("lstm", device.GPU) == nil || ks.Space("lstm", device.FPGA) == nil {
		t.Fatal("program spaces missing")
	}
	if ks.Space("nope", device.GPU) != nil {
		t.Fatal("unknown kernel should return nil")
	}
}

func TestExploreRejectsUnknownSpec(t *testing.T) {
	ka := analyzed(t)
	if _, err := Explore(ka, "bogus"); err == nil {
		t.Fatal("unknown spec type accepted")
	}
}

// fingerprint renders a space's full contents: every feasible and
// frontier point with its config, in order.
func fingerprint(s *Space) string {
	out := fmt.Sprintf("%s/%s/%s enum=%d\n", s.Kernel, s.Board, s.Class, s.Enumerated)
	for _, im := range s.Feasible {
		out += "F " + im.String() + "\n"
	}
	for _, im := range s.Pareto {
		out += "P " + im.String() + "\n"
	}
	return out
}

func TestExploreProgramDeterministicAcrossPoolSizes(t *testing.T) {
	prog := opencl.MustParse(lstmSrc)
	pa, err := analysis.AnalyzeProgram(prog, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer parallel.SetWorkers(0)
	run := func(workers int) string {
		parallel.SetWorkers(workers)
		ResetCache() // force a cold exploration at this pool size
		ks, err := ExploreProgram(pa, device.AMDW9100, device.Xilinx7V3)
		if err != nil {
			t.Fatal(err)
		}
		var out string
		for _, name := range pa.Order {
			out += fingerprint(ks.GPU[name]) + fingerprint(ks.FPGA[name])
		}
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 8} {
		if par := run(w); par != serial {
			t.Fatalf("workers=%d exploration differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				w, serial, w, par)
		}
	}
}

func TestSpaceCacheSharesAcrossCalls(t *testing.T) {
	ka := analyzed(t)
	ResetCache()
	a, err := Explore(ka, device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Explore(ka, device.AMDW9100)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Explore of an identical (kernel, board) pair must hit the cache")
	}
	// A different board must not collide with the cached space.
	c, err := Explore(ka, device.NvidiaK20)
	if err != nil {
		t.Fatal(err)
	}
	if c == a || c.Board == a.Board {
		t.Fatal("different board hit the same cache entry")
	}
}

// Property: ParetoFilter invariants on synthetic points — no survivor is
// dominated, every input is covered, and the filter is idempotent.
func TestParetoFilterProperty(t *testing.T) {
	f := func(raw []struct{ L, P, T uint16 }) bool {
		if len(raw) == 0 {
			return true
		}
		var impls []*model.Impl
		for _, r := range raw {
			impls = append(impls, &model.Impl{
				LatencyMS:     float64(r.L%500) + 1,
				PowerW:        float64(r.P%300) + 1,
				ThroughputRPS: float64(r.T%1000) + 1,
			})
		}
		front := ParetoFilter(impls)
		if len(front) == 0 {
			return false
		}
		for i, a := range front {
			for j, b := range front {
				if i != j && dominates(a, b) {
					return false
				}
			}
		}
		for _, c := range impls {
			ok := false
			for _, fr := range front {
				if fr == c || dominates(fr, c) ||
					(fr.LatencyMS == c.LatencyMS && fr.PowerW == c.PowerW && fr.ThroughputRPS == c.ThroughputRPS) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		again := ParetoFilter(front)
		return len(again) == len(front)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
