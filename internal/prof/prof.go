// Package prof wires the standard pprof endpoints into the CLIs so perf
// work on the planner and simulator can be profile-driven: CPU and heap
// profiles to files, and an optional live net/http/pprof listener.
package prof

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile to be
// written to memPath; either may be empty. It returns a stop function the
// caller must invoke before exiting (defer-friendly), and an error if a
// profile file cannot be created or profiling cannot start.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
			}
		}
	}, nil
}

// Handle registers an extra handler on the mux Serve uses (the
// DefaultServeMux) — how cmd/polysim mounts the telemetry /metrics
// endpoint next to /debug/pprof. Call before Serve.
func Handle(pattern string, h http.Handler) { http.Handle(pattern, h) }

// Serve starts the net/http/pprof listener on addr (e.g. "localhost:6060")
// in a background goroutine; empty addr is a no-op. Interactive profiling
// of a live serve: `go tool pprof http://localhost:6060/debug/pprof/profile`.
func Serve(addr string) {
	if addr == "" {
		return
	}
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "prof: pprof listener:", err)
		}
	}()
}
