// Package trace provides the datacenter load traces of Section VI-C.
//
// The paper replays a 24-hour server-utilization trace from the public
// Google cluster data set (12.5k servers, May 2011) [56]. That data is
// not shipped here, so the package synthesizes traces with the published
// shape — a diurnal pattern with two daytime peaks, short bursts, and
// noise — and also loads externally supplied traces in the cluster-data
// CSV convention (timestamp_seconds,utilization).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"poly/internal/sim"
)

// Trace is a piecewise-constant utilization series: Util[i] holds during
// [i·StepMS, (i+1)·StepMS). Utilization is a fraction of the serving
// system's maximum QoS-compliant throughput.
type Trace struct {
	StepMS float64
	Util   []float64
}

// DurationMS returns the trace's total span.
func (t *Trace) DurationMS() float64 { return float64(len(t.Util)) * t.StepMS }

// At returns the utilization at time ms (clamped to the trace bounds).
func (t *Trace) At(ms float64) float64 {
	if len(t.Util) == 0 {
		return 0
	}
	i := int(ms / t.StepMS)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Util) {
		i = len(t.Util) - 1
	}
	return t.Util[i]
}

// Rate returns a sim-time rate function scaled to maxRPS, suitable for
// runtime.Workload.InjectRate.
func (t *Trace) Rate(maxRPS float64) func(sim.Time) float64 {
	return func(at sim.Time) float64 { return maxRPS * t.At(float64(at)) }
}

// Mean returns the average utilization.
func (t *Trace) Mean() float64 {
	if len(t.Util) == 0 {
		return 0
	}
	var s float64
	for _, u := range t.Util {
		s += u
	}
	return s / float64(len(t.Util))
}

// Peak returns the maximum utilization.
func (t *Trace) Peak() float64 {
	var m float64
	for _, u := range t.Util {
		if u > m {
			m = u
		}
	}
	return m
}

// Validate checks that every sample is a fraction in [0, 1].
func (t *Trace) Validate() error {
	if t.StepMS <= 0 {
		return fmt.Errorf("trace: non-positive step")
	}
	if len(t.Util) == 0 {
		return fmt.Errorf("trace: empty")
	}
	for i, u := range t.Util {
		if u < 0 || u > 1 {
			return fmt.Errorf("trace: sample %d = %v outside [0,1]", i, u)
		}
	}
	return nil
}

// SynthOptions shapes a synthetic diurnal trace.
type SynthOptions struct {
	// Hours is the trace length (24 if zero).
	Hours float64
	// StepMS is the sampling interval (60 000 — one minute — if zero).
	StepMS float64
	// Base is the overnight utilization floor (0.15 if zero).
	Base float64
	// Peak is the daytime ceiling (0.85 if zero).
	Peak float64
	// Burstiness adds load spikes: expected spikes per hour (2 if zero,
	// negative disables).
	Burstiness float64
	// Seed drives the noise and burst placement.
	Seed int64
}

// Synthesize builds a Google-cluster-shaped utilization trace: a diurnal
// base with morning and evening peaks, multiplicative noise, and
// short bursts (the Fig. 11 shape).
func Synthesize(o SynthOptions) *Trace {
	if o.Hours == 0 {
		o.Hours = 24
	}
	if o.StepMS == 0 {
		o.StepMS = 60_000
	}
	if o.Base == 0 {
		o.Base = 0.15
	}
	if o.Peak == 0 {
		o.Peak = 0.85
	}
	if o.Burstiness == 0 {
		o.Burstiness = 2
	}
	rng := sim.NewRNG(o.Seed)
	n := int(o.Hours * 3600_000 / o.StepMS)
	if n < 1 {
		n = 1
	}
	tr := &Trace{StepMS: o.StepMS, Util: make([]float64, n)}
	stepsPerHour := 3600_000 / o.StepMS
	for i := range tr.Util {
		hour := math.Mod(float64(i)/stepsPerHour, 24)
		// Two daytime humps (≈11:00 and ≈20:00) on a diurnal base.
		diurnal := 0.55*hump(hour, 11, 3.5) + 0.8*hump(hour, 20, 3.0)
		u := o.Base + (o.Peak-o.Base)*math.Min(1, diurnal)
		u *= 1 + 0.08*rng.Normal(0, 1) // measurement noise
		tr.Util[i] = clamp01(u)
	}
	// Bursts: short plateaus of elevated load.
	if o.Burstiness > 0 {
		expected := o.Burstiness * o.Hours
		for b := 0; b < int(expected); b++ {
			at := rng.Intn(n)
			width := 1 + rng.Intn(int(math.Max(1, stepsPerHour/6)))
			level := rng.Uniform(0.7, 1.0)
			for i := at; i < at+width && i < n; i++ {
				if level > tr.Util[i] {
					tr.Util[i] = level
				}
			}
		}
	}
	return tr
}

// hump is a smooth bell around centre with the given width (hours),
// wrapping across midnight.
func hump(hour, centre, width float64) float64 {
	d := math.Abs(hour - centre)
	if d > 12 {
		d = 24 - d
	}
	return math.Exp(-d * d / (2 * width * width))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Load reads a trace in the Google cluster-data CSV convention:
// `timestamp_seconds,utilization` per line, `#` comments allowed.
// Timestamps must be ascending and equally spaced.
func Load(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var times, utils []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want `timestamp,utilization`", line)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", line, err)
		}
		u, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad utilization: %v", line, err)
		}
		times = append(times, ts)
		utils = append(utils, u)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(times) < 2 {
		return nil, fmt.Errorf("trace: need at least two samples")
	}
	step := times[1] - times[0]
	if step <= 0 {
		return nil, fmt.Errorf("trace: non-ascending timestamps")
	}
	for i := 2; i < len(times); i++ {
		if math.Abs((times[i]-times[i-1])-step) > 1e-9*step {
			return nil, fmt.Errorf("trace: uneven sampling at line %d", i+1)
		}
	}
	tr := &Trace{StepMS: step * 1000, Util: utils}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
