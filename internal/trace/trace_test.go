package trace

import (
	"strings"
	"testing"
)

func TestSynthesizeDefaultShape(t *testing.T) {
	tr := Synthesize(SynthOptions{Seed: 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.DurationMS(); got != 24*3600_000 {
		t.Fatalf("duration = %v, want 24 h", got)
	}
	if len(tr.Util) != 24*60 {
		t.Fatalf("samples = %d, want 1440 minutes", len(tr.Util))
	}
	// Diurnal shape: daytime (10:00–21:00) mean well above the small
	// hours (02:00–05:00).
	day := meanBetween(tr, 10, 21)
	night := meanBetween(tr, 2, 5)
	if day < 1.5*night {
		t.Fatalf("no diurnal swing: day %v vs night %v", day, night)
	}
	if tr.Peak() <= day {
		t.Fatal("bursts should push the peak above the daytime mean")
	}
	if tr.Mean() < 0.1 || tr.Mean() > 0.9 {
		t.Fatalf("mean utilization = %v implausible", tr.Mean())
	}
}

func meanBetween(tr *Trace, fromHour, toHour float64) float64 {
	var s float64
	var n int
	for i, u := range tr.Util {
		h := float64(i) / 60
		if h >= fromHour && h < toHour {
			s += u
			n++
		}
	}
	return s / float64(n)
}

func TestSynthesizeDeterministicPerSeed(t *testing.T) {
	a := Synthesize(SynthOptions{Seed: 7})
	b := Synthesize(SynthOptions{Seed: 7})
	c := Synthesize(SynthOptions{Seed: 8})
	for i := range a.Util {
		if a.Util[i] != b.Util[i] {
			t.Fatal("same seed diverged")
		}
	}
	same := true
	for i := range a.Util {
		if a.Util[i] != c.Util[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestAtAndRate(t *testing.T) {
	tr := &Trace{StepMS: 1000, Util: []float64{0.1, 0.5, 0.9}}
	if tr.At(0) != 0.1 || tr.At(1500) != 0.5 || tr.At(99999) != 0.9 || tr.At(-5) != 0.1 {
		t.Fatal("At lookup/clamping wrong")
	}
	rate := tr.Rate(100)
	if rate(1500) != 50 {
		t.Fatalf("rate = %v, want 50", rate(1500))
	}
	var empty Trace
	if empty.At(0) != 0 || empty.Mean() != 0 || empty.Peak() != 0 {
		t.Fatal("empty trace must report zeros")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Trace{
		{StepMS: 0, Util: []float64{0.5}},
		{StepMS: 1000},
		{StepMS: 1000, Util: []float64{1.5}},
		{StepMS: 1000, Util: []float64{-0.1}},
	}
	for i, tr := range bad {
		if tr.Validate() == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestLoadCSV(t *testing.T) {
	src := `# google cluster-style trace
0, 0.20
300, 0.45
600, 0.80
900, 0.65
`
	tr, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tr.StepMS != 300_000 {
		t.Fatalf("step = %v, want 300 s", tr.StepMS)
	}
	if len(tr.Util) != 4 || tr.Util[2] != 0.8 {
		t.Fatalf("utils = %v", tr.Util)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"one sample":  "0,0.5\n",
		"bad fields":  "0;0.5\n300;0.6\n",
		"bad ts":      "x,0.5\n300,0.6\n",
		"bad util":    "0,x\n300,0.6\n",
		"range":       "0,0.5\n300,1.7\n",
		"descending":  "300,0.5\n0,0.6\n",
		"uneven step": "0,0.1\n300,0.2\n500,0.3\n",
	}
	for name, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
