// Package core assembles the Poly framework (Fig. 2): the offline kernel
// analysis pipeline (annotation → pattern analysis → local/global
// optimization → model-driven DSE) and the runtime side (provisioned
// heterogeneous node + two-step kernel scheduler + monitor loop).
//
// A Framework is the compiled form of one application: its analyzed
// kernels plus, per hardware setting, the Pareto design spaces of every
// kernel on that setting's GPU and FPGA boards. Frameworks are cheap to
// share: experiments across architectures reuse one compilation.
package core

import (
	"fmt"
	"sync"

	"poly/internal/analysis"
	"poly/internal/apps"
	"poly/internal/cluster"
	"poly/internal/device"
	"poly/internal/dse"
	"poly/internal/opencl"
	"poly/internal/runtime"
	"poly/internal/sched"
)

// Framework is a compiled Poly application.
type Framework struct {
	prog *opencl.Program
	pa   *analysis.Program

	mu     sync.Mutex
	spaces map[string]*dse.KernelSpaces // setting name → spaces
}

// Compile runs the offline kernel analysis for a program.
func Compile(prog *opencl.Program) (*Framework, error) {
	pa, err := analysis.AnalyzeProgram(prog, analysis.Options{})
	if err != nil {
		return nil, err
	}
	return &Framework{prog: prog, pa: pa, spaces: make(map[string]*dse.KernelSpaces)}, nil
}

// CompileSource parses annotation-language source and compiles it.
func CompileSource(src string) (*Framework, error) {
	prog, err := opencl.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog)
}

// Program returns the compiled program.
func (f *Framework) Program() *opencl.Program { return f.prog }

// Analysis returns the pattern-analysis results.
func (f *Framework) Analysis() *analysis.Program { return f.pa }

// Explore runs (or returns the cached) design-space exploration for one
// hardware setting.
func (f *Framework) Explore(setting cluster.Setting) (*dse.KernelSpaces, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ks, ok := f.spaces[setting.Name]; ok {
		return ks, nil
	}
	ks, err := dse.ExploreProgram(f.pa, setting.GPU, setting.FPGA)
	if err != nil {
		return nil, err
	}
	f.spaces[setting.Name] = ks
	return ks, nil
}

// Scheduler builds the Heter-Poly runtime scheduler for a setting.
func (f *Framework) Scheduler(setting cluster.Setting) (*sched.Scheduler, error) {
	ks, err := f.Explore(setting)
	if err != nil {
		return nil, err
	}
	return sched.New(f.prog, ks)
}

// Baseline builds a Homo-GPU or Homo-FPGA static planner for a setting.
func (f *Framework) Baseline(setting cluster.Setting, arch cluster.Architecture) (*sched.StaticPlanner, error) {
	ks, err := f.Explore(setting)
	if err != nil {
		return nil, err
	}
	switch arch {
	case cluster.HomoGPU:
		return sched.NewStatic(f.prog, ks, device.GPU, sched.StaticAuto)
	case cluster.HomoFPGA:
		return sched.NewStatic(f.prog, ks, device.FPGA, sched.StaticAuto)
	}
	return nil, fmt.Errorf("core: %v is not a static baseline architecture", arch)
}

// Bench builds the serving harness for one architecture on one setting,
// with the paper's default 500 W power cap.
func (f *Framework) Bench(arch cluster.Architecture, setting cluster.Setting) (runtime.Bench, error) {
	ks, err := f.Explore(setting)
	if err != nil {
		return runtime.Bench{}, err
	}
	return runtime.Bench{
		Arch:    arch,
		Setting: setting,
		Prog:    f.prog,
		Spaces:  ks,
	}, nil
}

// appCache shares compiled benchmarks between experiments.
var appCache sync.Map // name → *Framework

// App compiles (once) and returns one of the six Table II benchmarks.
func App(name string) (*Framework, error) {
	if v, ok := appCache.Load(name); ok {
		return v.(*Framework), nil
	}
	a, ok := apps.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown benchmark %q (have %v)", name, apps.Names())
	}
	fw, err := Compile(a.Program)
	if err != nil {
		return nil, err
	}
	actual, _ := appCache.LoadOrStore(name, fw)
	return actual.(*Framework), nil
}

// ResetExplorations drops every compiled application's cached design
// spaces, so the next Explore runs cold. Test/benchmark hook; pairs
// with dse.ResetCache, which holds the underlying per-kernel spaces.
func ResetExplorations() {
	appCache.Range(func(_, v any) bool {
		fw := v.(*Framework)
		fw.mu.Lock()
		fw.spaces = make(map[string]*dse.KernelSpaces)
		fw.mu.Unlock()
		return true
	})
}

// Apps compiles all six benchmarks in Table II order.
func Apps() ([]*Framework, error) {
	var out []*Framework
	for _, n := range apps.Names() {
		fw, err := App(n)
		if err != nil {
			return nil, err
		}
		out = append(out, fw)
	}
	return out, nil
}
