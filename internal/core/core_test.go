package core

import (
	"testing"

	"poly/internal/cluster"
)

func TestCompileSourceAndExplore(t *testing.T) {
	fw, err := CompileSource(`
program demo
kernel k
  repeat 100
  const w f32[256x256]
  in x f32[256]
  map m(x w, func=mac ops=512 elems=256)
  pipeline p(m, funcs=[sigmoid:8 mul:1])
`)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Program().Name != "demo" || fw.Analysis() == nil {
		t.Fatal("compiled artifacts missing")
	}
	ks, err := fw.Explore(cluster.SettingI)
	if err != nil {
		t.Fatal(err)
	}
	// Cached on second call.
	ks2, err := fw.Explore(cluster.SettingI)
	if err != nil {
		t.Fatal(err)
	}
	if ks != ks2 {
		t.Fatal("exploration not cached per setting")
	}
	if _, err := fw.Scheduler(cluster.SettingI); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Baseline(cluster.SettingI, cluster.HomoGPU); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Baseline(cluster.SettingI, cluster.HomoFPGA); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Baseline(cluster.SettingI, cluster.HeterPoly); err == nil {
		t.Fatal("HeterPoly must not build a static baseline")
	}
	b, err := fw.Bench(cluster.HeterPoly, cluster.SettingI)
	if err != nil {
		t.Fatal(err)
	}
	if b.Prog != fw.Program() || b.Spaces == nil {
		t.Fatal("bench wiring wrong")
	}
}

func TestCompileRejectsBadSource(t *testing.T) {
	if _, err := CompileSource("garbage"); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestAppCacheAndAll(t *testing.T) {
	a, err := App("ASR")
	if err != nil {
		t.Fatal(err)
	}
	b, err := App("ASR")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("App must cache compilations")
	}
	if _, err := App("NOPE"); err == nil {
		t.Fatal("unknown app accepted")
	}
	all, err := Apps()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("apps = %d", len(all))
	}
}

func TestEndToEndServeViaFramework(t *testing.T) {
	fw, err := App("FQT")
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []cluster.Architecture{cluster.HomoGPU, cluster.HomoFPGA, cluster.HeterPoly} {
		b, err := fw.Bench(arch, cluster.SettingI)
		if err != nil {
			t.Fatal(err)
		}
		res, err := b.ServeConstantLoad(2, 10000, 1)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.Completed == 0 || res.PlanErrors != 0 {
			t.Fatalf("%v: result %+v", arch, res)
		}
	}
}

func TestCompileRejectsBadAnalysis(t *testing.T) {
	// A program that parses but fails analysis (kernel-level cycle added
	// post-parse) must be rejected by Compile.
	fw, err := CompileSource(`
program ok
kernel a
  in x f32[4]
  map m(x, func=f)
kernel b
  in y f32[4]
  map m(y, func=f)
edge a -> b
`)
	if err != nil {
		t.Fatal(err)
	}
	prog := fw.Program()
	if err := prog.Connect("b", "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(prog); err == nil {
		t.Fatal("cyclic program accepted by Compile")
	}
	// Explore/Scheduler/Bench propagate exploration errors for programs
	// whose kernels cannot fit any device.
	huge, err := CompileSource(`
program huge
kernel k
  in x f32[4]
  map m(x, func=f ops=1)
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := huge.Scheduler(cluster.SettingI); err != nil {
		t.Fatalf("tiny kernel must schedule: %v", err)
	}
}
