package exp

import (
	"fmt"
	"strings"

	"poly/internal/apps"
	"poly/internal/cluster"
	"poly/internal/core"
	"poly/internal/device"
	"poly/internal/dse"
	"poly/internal/metrics"
	"poly/internal/parallel"
	"poly/internal/runtime"
	"poly/internal/sched"
)

// Experiment pacing: probe durations are long enough for stable p99s but
// short enough that the full suite runs in minutes.
const (
	probeDurationMS = 12000
	probeSeed       = 11
	searchCapRPS    = 512
)

// appNames lists the six Table II benchmarks in order.
func appNames() []string { return apps.Names() }

// benchFor builds the serving harness for (app, arch) on a setting.
func benchFor(app string, arch cluster.Architecture, setting cluster.Setting) (runtime.Bench, error) {
	fw, err := core.App(app)
	if err != nil {
		return runtime.Bench{}, err
	}
	return fw.Bench(arch, setting)
}

// maxRPSMemo shares per (app, arch, setting, cap, split) searches:
// several figures need the same maxima, and concurrent sweeps asking for
// the same key singleflight on one binary search instead of duplicating
// it. (This replaces an unsynchronized package-global map that the
// parallel harness would have raced on.)
var maxRPSMemo = parallel.NewMemo[float64]()

// ResetCaches clears the cross-experiment memo caches: the maxRPS search
// results, the process-wide design-space cache, and the per-application
// exploration cache. Test/benchmark hook — determinism and speedup
// comparisons use it to run each configuration cold instead of replaying
// the first run's cached values.
func ResetCaches() {
	maxRPSMemo.Reset()
	dse.ResetCache()
	core.ResetExplorations()
}

func maxRPS(app string, arch cluster.Architecture, setting cluster.Setting, capW, gpuShare float64) (float64, error) {
	key := fmt.Sprintf("%s|%v|%s|%v|%v", app, arch, setting.Name, capW, gpuShare)
	return maxRPSMemo.Do(key, func() (float64, error) {
		b, err := benchFor(app, arch, setting)
		if err != nil {
			return 0, err
		}
		b.PowerCapW = capW
		b.GPUShare = gpuShare
		return b.MaxThroughputRPS(searchCapRPS, probeDurationMS, probeSeed)
	})
}

// ---------------------------------------------------------------- fig1a

// TailLatencyResult is Fig. 1(a)/Fig. 7 data: p99 vs offered load.
type TailLatencyResult struct {
	id     string
	App    string
	Curves []Series
	// MaxRPS is the QoS-compliant maximum per architecture.
	MaxRPS map[string]float64
	Bound  float64
}

// ID implements Result.
func (r *TailLatencyResult) ID() string { return r.id }

// Render implements Result.
func (r *TailLatencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s tail latency vs offered load (bound %.0f ms)\n", r.id, r.App, r.Bound)
	for _, s := range r.Curves {
		fmt.Fprintf(&b, "  %-10s:", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, " %4.0frps→%5.0fms", s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	for _, k := range sortedKeys(r.MaxRPS) {
		fmt.Fprintf(&b, "  max QoS throughput %-10s = %.1f RPS\n", k, r.MaxRPS[k])
	}
	return b.String()
}

// tailLatency sweeps offered load for one app on Setting-I. The
// (architecture × load) grid fans out across the worker pool; cells are
// collected by index, so the assembled curves match a serial sweep.
func tailLatency(id, app string) (*TailLatencyResult, error) {
	res := &TailLatencyResult{id: id, App: app, MaxRPS: map[string]float64{}}
	// Load grid: fractions of the Poly max, the paper's x-axis convention.
	polyMax, err := maxRPS(app, cluster.HeterPoly, cluster.SettingI, 500, 0)
	if err != nil {
		return nil, err
	}
	fracs := []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0, 1.15}
	archs := Archs()
	type cell struct {
		rps, p99, bound float64
	}
	cells, err := parallel.Map(len(archs)*len(fracs), func(idx int) (cell, error) {
		arch, f := archs[idx/len(fracs)], fracs[idx%len(fracs)]
		b, err := benchFor(app, arch, cluster.SettingI)
		if err != nil {
			return cell{}, err
		}
		rps := f * polyMax
		r, err := b.ServeConstantLoad(rps, probeDurationMS, probeSeed)
		if err != nil {
			return cell{}, err
		}
		return cell{rps: rps, p99: r.P99MS, bound: b.Prog.LatencyBoundMS}, nil
	})
	if err != nil {
		return nil, err
	}
	maxes, err := parallel.Map(len(archs), func(i int) (float64, error) {
		return maxRPS(app, archs[i], cluster.SettingI, 500, 0)
	})
	if err != nil {
		return nil, err
	}
	for i, arch := range archs {
		s := Series{Name: arch.String()}
		for j := range fracs {
			c := cells[i*len(fracs)+j]
			s.X = append(s.X, c.rps)
			s.Y = append(s.Y, c.p99)
			res.Bound = c.bound
		}
		res.Curves = append(res.Curves, s)
		res.MaxRPS[arch.String()] = maxes[i]
	}
	return res, nil
}

// ------------------------------------------------------------ fig1b/9/10

// PowerScalingResult holds power-vs-load curves and EP per architecture
// (Fig. 1(b), Fig. 9, Fig. 10).
type PowerScalingResult struct {
	id     string
	Apps   []string
	Curves map[string][]Series // app → per-arch power curves (x = load frac)
	EP     map[string]map[string]float64
}

// ID implements Result.
func (r *PowerScalingResult) ID() string { return r.id }

// Render implements Result.
func (r *PowerScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — power scaling and energy proportionality\n", r.id)
	for _, app := range r.Apps {
		fmt.Fprintf(&b, "  %s:\n", app)
		for _, s := range r.Curves[app] {
			fmt.Fprintf(&b, "    %-10s:", s.Name)
			for i := range s.X {
				fmt.Fprintf(&b, " %3.0f%%→%4.0fW", 100*s.X[i], s.Y[i])
			}
			fmt.Fprintf(&b, "  EP=%.2f\n", r.EP[app][s.Name])
		}
	}
	// Averages across apps (the +23 %/+17 % headline of Fig. 10).
	avg := map[string]float64{}
	for _, app := range r.Apps {
		for arch, ep := range r.EP[app] {
			avg[arch] += ep / float64(len(r.Apps))
		}
	}
	for _, k := range sortedKeys(avg) {
		fmt.Fprintf(&b, "  mean EP %-10s = %.3f\n", k, avg[k])
	}
	if p, g, f := avg["Heter-Poly"], avg["Homo-GPU"], avg["Homo-FPGA"]; g > 0 && f > 0 {
		fmt.Fprintf(&b, "  Poly EP improvement: +%.0f%% vs Homo-GPU, +%.0f%% vs Homo-FPGA\n",
			100*(p-g), 100*(p-f))
	}
	return b.String()
}

// MeanEP returns the cross-app average EP for an architecture.
func (r *PowerScalingResult) MeanEP(arch string) float64 {
	var s float64
	for _, app := range r.Apps {
		s += r.EP[app][arch]
	}
	return s / float64(len(r.Apps))
}

// powerScaling measures node power at 10–100 % of each architecture's own
// maximum load and computes EP from the resulting curve. The
// (app × architecture) grid fans out across the worker pool; each cell's
// load sweep stays sequential, and the per-app curve lists are assembled
// in grid order so the result matches a serial run.
func powerScaling(id string, appNames []string) (*PowerScalingResult, error) {
	res := &PowerScalingResult{
		id:     id,
		Apps:   appNames,
		Curves: map[string][]Series{},
		EP:     map[string]map[string]float64{},
	}
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	archs := Archs()
	type cell struct {
		s  Series
		ep float64
	}
	cells, err := parallel.Map(len(appNames)*len(archs), func(idx int) (cell, error) {
		app, arch := appNames[idx/len(archs)], archs[idx%len(archs)]
		m, err := maxRPS(app, arch, cluster.SettingI, 500, 0)
		if err != nil {
			return cell{}, err
		}
		b, err := benchFor(app, arch, cluster.SettingI)
		if err != nil {
			return cell{}, err
		}
		s := Series{Name: arch.String()}
		for _, l := range loads {
			r, err := b.ServeConstantLoad(l*m, probeDurationMS, probeSeed)
			if err != nil {
				return cell{}, err
			}
			s.X = append(s.X, l)
			s.Y = append(s.Y, r.AvgPowerW)
		}
		ep, err := metrics.EnergyProportionality(metrics.PowerCurve{Loads: s.X, PowerW: s.Y})
		if err != nil {
			return cell{}, err
		}
		return cell{s: s, ep: ep}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, app := range appNames {
		res.EP[app] = map[string]float64{}
		for j, arch := range archs {
			c := cells[i*len(archs)+j]
			res.Curves[app] = append(res.Curves[app], c.s)
			res.EP[app][arch.String()] = c.ep
		}
	}
	return res, nil
}

// ---------------------------------------------------------------- fig1c

// ParetoResult is Fig. 1(c): the LSTM kernel's design space on both
// platforms — latency vs energy efficiency frontier points.
type ParetoResult struct {
	id       string
	Kernel   string
	GPU, FPG []ParetoPoint
}

// ParetoPoint is one frontier design.
type ParetoPoint struct {
	LatencyMS  float64
	EffRPSPerW float64
	PowerW     float64
	Config     string
}

// ID implements Result.
func (r *ParetoResult) ID() string { return r.id }

// Render implements Result.
func (r *ParetoResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s Pareto frontiers (latency vs energy efficiency)\n", r.id, r.Kernel)
	dump := func(name string, pts []ParetoPoint) {
		fmt.Fprintf(&b, "  %s (%d points):\n", name, len(pts))
		for _, p := range pts {
			fmt.Fprintf(&b, "    lat=%7.1fms eff=%6.3frps/W P=%5.1fW  %s\n",
				p.LatencyMS, p.EffRPSPerW, p.PowerW, p.Config)
		}
	}
	dump("GPU", r.GPU)
	dump("FPGA", r.FPG)
	return b.String()
}

func lstmPareto() (Result, error) {
	fw, err := core.App("ASR")
	if err != nil {
		return nil, err
	}
	ks, err := fw.Explore(cluster.SettingI)
	if err != nil {
		return nil, err
	}
	const kernel = "k1_lstm_fwd"
	res := &ParetoResult{id: "fig1c", Kernel: kernel}
	for _, im := range ks.GPU[kernel].Pareto {
		res.GPU = append(res.GPU, ParetoPoint{im.LatencyMS, im.EfficiencyRPSPerW(), im.PowerW, im.Config.String()})
	}
	for _, im := range ks.FPGA[kernel].Pareto {
		res.FPG = append(res.FPG, ParetoPoint{im.LatencyMS, im.EfficiencyRPSPerW(), im.PowerW, im.Config.String()})
	}
	return res, nil
}

// ---------------------------------------------------------------- fig1d

// EfficiencyResult is Fig. 1(d): delivered energy efficiency (RPS/W) as
// utilization varies — Poly adapts, the baselines are flat-footed.
type EfficiencyResult struct {
	id     string
	Curves []Series // x = load fraction, y = RPS/W
}

// ID implements Result.
func (r *EfficiencyResult) ID() string { return r.id }

// Render implements Result.
func (r *EfficiencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — ASR delivered efficiency vs utilization\n", r.id)
	for _, s := range r.Curves {
		fmt.Fprintf(&b, "  %-10s:", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, " %3.0f%%→%5.3f", 100*s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func efficiencyVsUtilization() (Result, error) {
	res := &EfficiencyResult{id: "fig1d"}
	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	archs := Archs()
	maxes, err := parallel.Map(len(archs), func(i int) (float64, error) {
		return maxRPS("ASR", archs[i], cluster.SettingI, 500, 0)
	})
	if err != nil {
		return nil, err
	}
	// One grid cell per (architecture, load) point, collected by index.
	effs, err := parallel.Map(len(archs)*len(loads), func(idx int) (float64, error) {
		arch, l := archs[idx/len(loads)], loads[idx%len(loads)]
		b, err := benchFor("ASR", arch, cluster.SettingI)
		if err != nil {
			return 0, err
		}
		r, err := b.ServeConstantLoad(l*maxes[idx/len(loads)], probeDurationMS, probeSeed)
		if err != nil {
			return 0, err
		}
		if r.AvgPowerW <= 0 {
			return 0, nil
		}
		return r.ThroughputRPS / r.AvgPowerW, nil
	})
	if err != nil {
		return nil, err
	}
	for i, arch := range archs {
		s := Series{Name: arch.String()}
		for j, l := range loads {
			s.X = append(s.X, l)
			s.Y = append(s.Y, effs[i*len(loads)+j])
		}
		res.Curves = append(res.Curves, s)
	}
	return res, nil
}

// --------------------------------------------------------------- fig1ef

// BreakdownResult is Fig. 1(e,f): per-kernel latency and energy of the
// most energy-efficient designs on each platform.
type BreakdownResult struct {
	id   string
	Rows []BreakdownRow
}

// BreakdownRow is one kernel's numbers.
type BreakdownRow struct {
	Kernel                   string
	GPULatencyMS, GPUEnerMJ  float64
	FPGALatencyMS, FPGAEnrMJ float64
}

// ID implements Result.
func (r *BreakdownResult) ID() string { return r.id }

// Render implements Result.
func (r *BreakdownResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — ASR per-kernel breakdown (most energy-efficient designs)\n", r.id)
	fmt.Fprintf(&b, "  %-16s %12s %12s %12s %12s\n", "kernel", "GPU ms", "GPU mJ", "FPGA ms", "FPGA mJ")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-16s %12.1f %12.0f %12.1f %12.0f\n",
			row.Kernel, row.GPULatencyMS, row.GPUEnerMJ, row.FPGALatencyMS, row.FPGAEnrMJ)
	}
	return b.String()
}

func kernelBreakdown() (Result, error) {
	fw, err := core.App("ASR")
	if err != nil {
		return nil, err
	}
	ks, err := fw.Explore(cluster.SettingI)
	if err != nil {
		return nil, err
	}
	res := &BreakdownResult{id: "fig1ef"}
	for _, k := range fw.Program().Kernels() {
		g := ks.GPU[k.Name].MaxEfficiency()
		f := ks.FPGA[k.Name].MaxEfficiency()
		res.Rows = append(res.Rows, BreakdownRow{
			Kernel:       k.Name,
			GPULatencyMS: g.LatencyMS, GPUEnerMJ: g.EnergyMJ,
			FPGALatencyMS: f.LatencyMS, FPGAEnrMJ: f.EnergyMJ,
		})
	}
	return res, nil
}

// --------------------------------------------------------------- table2

// DesignSpaceResult is Table II: per-kernel design-space sizes.
type DesignSpaceResult struct {
	id   string
	Rows []DesignSpaceRow
}

// DesignSpaceRow is one kernel's entry.
type DesignSpaceRow struct {
	App, Kernel string
	Patterns    []string
	GPUEnum     int
	GPUFeasible int
	GPUPareto   int
	FPGAEnum    int
	FPGAFeas    int
	FPGAPareto  int
}

// ID implements Result.
func (r *DesignSpaceResult) ID() string { return r.id }

// Render implements Result.
func (r *DesignSpaceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — per-kernel design spaces (enumerated/feasible/Pareto)\n", r.id)
	fmt.Fprintf(&b, "  %-4s %-16s %-42s %15s %15s\n", "app", "kernel", "patterns", "GPU", "FPGA")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4s %-16s %-42s %5d/%4d/%3d %5d/%4d/%3d\n",
			row.App, row.Kernel, strings.Join(row.Patterns, ","),
			row.GPUEnum, row.GPUFeasible, row.GPUPareto,
			row.FPGAEnum, row.FPGAFeas, row.FPGAPareto)
	}
	return b.String()
}

func designSpaces() (Result, error) {
	res := &DesignSpaceResult{id: "table2"}
	// Warm every app's design spaces concurrently (each exploration also
	// fans out internally); the row assembly below then runs on cache
	// hits, in Table II order.
	if err := parallel.ForEach(len(apps.Names()), func(i int) error {
		fw, err := core.App(apps.Names()[i])
		if err != nil {
			return err
		}
		_, err = fw.Explore(cluster.SettingI)
		return err
	}); err != nil {
		return nil, err
	}
	for _, name := range apps.Names() {
		fw, err := core.App(name)
		if err != nil {
			return nil, err
		}
		ks, err := fw.Explore(cluster.SettingI)
		if err != nil {
			return nil, err
		}
		for _, k := range fw.Program().Kernels() {
			var pats []string
			seen := map[string]bool{}
			for _, in := range k.Patterns.Instances() {
				if !seen[in.Kind.String()] {
					seen[in.Kind.String()] = true
					pats = append(pats, in.Kind.String())
				}
			}
			g, f := ks.GPU[k.Name], ks.FPGA[k.Name]
			res.Rows = append(res.Rows, DesignSpaceRow{
				App: name, Kernel: k.Name, Patterns: pats,
				GPUEnum: g.Enumerated, GPUFeasible: len(g.Feasible), GPUPareto: len(g.Pareto),
				FPGAEnum: f.Enumerated, FPGAFeas: len(f.Feasible), FPGAPareto: len(f.Pareto),
			})
		}
	}
	return res, nil
}

// ----------------------------------------------------------------- fig8

// ThroughputResult is Fig. 8: maximum QoS-compliant throughput per app
// and architecture, plus the normalized summary.
type ThroughputResult struct {
	id string
	// RPS[app][arch] is the absolute maximum.
	RPS map[string]map[string]float64
	// Normalized[app][arch] = RPS / max over archs for that app.
	Normalized map[string]map[string]float64
	// MeanNorm / GeoNorm summarize per architecture.
	MeanNorm, GeoNorm map[string]float64
}

// ID implements Result.
func (r *ThroughputResult) ID() string { return r.id }

// Render implements Result.
func (r *ThroughputResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — maximum QoS-compliant throughput (RPS, normalized %%)\n", r.id)
	archNames := []string{"Homo-GPU", "Homo-FPGA", "Heter-Poly"}
	fmt.Fprintf(&b, "  %-5s", "app")
	for _, a := range archNames {
		fmt.Fprintf(&b, " %18s", a)
	}
	b.WriteByte('\n')
	for _, app := range sortedKeys(r.RPS) {
		fmt.Fprintf(&b, "  %-5s", app)
		for _, a := range archNames {
			fmt.Fprintf(&b, " %8.1f (%4.0f%%)", r.RPS[app][a], 100*r.Normalized[app][a])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %-5s", "avg")
	for _, a := range archNames {
		fmt.Fprintf(&b, " %8s (%4.0f%%)", "", 100*r.MeanNorm[a])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  %-5s", "geo")
	for _, a := range archNames {
		fmt.Fprintf(&b, " %8s (%4.0f%%)", "", 100*r.GeoNorm[a])
	}
	b.WriteByte('\n')
	if p, g, f := r.MeanNorm["Heter-Poly"], r.MeanNorm["Homo-GPU"], r.MeanNorm["Homo-FPGA"]; g > 0 && f > 0 {
		fmt.Fprintf(&b, "  Poly throughput improvement: +%.0f%% vs Homo-GPU, +%.0f%% vs Homo-FPGA\n",
			100*(p/g-1), 100*(p/f-1))
	}
	return b.String()
}

// Improvement returns Poly's mean normalized gain over an architecture.
func (r *ThroughputResult) Improvement(over string) float64 {
	if r.MeanNorm[over] == 0 {
		return 0
	}
	return r.MeanNorm["Heter-Poly"]/r.MeanNorm[over] - 1
}

func maxThroughput() (Result, error) {
	res := &ThroughputResult{
		id:         "fig8",
		RPS:        map[string]map[string]float64{},
		Normalized: map[string]map[string]float64{},
		MeanNorm:   map[string]float64{},
		GeoNorm:    map[string]float64{},
	}
	// The 6 apps × 3 architectures maxRPS searches are independent: fan
	// them out, then run the normalization serially over the ordered grid.
	names, archs := apps.Names(), Archs()
	grid, err := parallel.Map(len(names)*len(archs), func(idx int) (float64, error) {
		return maxRPS(names[idx/len(archs)], archs[idx%len(archs)], cluster.SettingI, 500, 0)
	})
	if err != nil {
		return nil, err
	}
	perArchNorm := map[string][]float64{}
	for i, app := range names {
		res.RPS[app] = map[string]float64{}
		res.Normalized[app] = map[string]float64{}
		best := 0.0
		for j, arch := range archs {
			v := grid[i*len(archs)+j]
			res.RPS[app][arch.String()] = v
			if v > best {
				best = v
			}
		}
		for _, arch := range Archs() {
			n := 0.0
			if best > 0 {
				n = res.RPS[app][arch.String()] / best
			}
			res.Normalized[app][arch.String()] = n
			perArchNorm[arch.String()] = append(perArchNorm[arch.String()], n)
		}
	}
	for arch, ns := range perArchNorm {
		var sum float64
		for _, n := range ns {
			sum += n
		}
		res.MeanNorm[arch] = sum / float64(len(ns))
		res.GeoNorm[arch] = geomean(ns)
	}
	return res, nil
}

// ------------------------------------------------------------- fig6

// ScheduleResult is the Fig. 6 narrative: the two-step schedule of ASR.
type ScheduleResult struct {
	id                       string
	Step1, Final             []string
	MakespanMS               float64
	EnergyStep1, EnergyFinal float64
	Swaps                    int
}

// ID implements Result.
func (r *ScheduleResult) ID() string { return r.id }

// Render implements Result.
func (r *ScheduleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — ASR two-step schedule on an idle Setting-I node\n", r.id)
	fmt.Fprintf(&b, "  step 1 (latency opt, energy %.0f mJ):\n", r.EnergyStep1)
	for _, l := range r.Step1 {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	fmt.Fprintf(&b, "  step 2 (energy opt, %d swap(s), energy %.0f mJ, makespan %.1f ms):\n",
		r.Swaps, r.EnergyFinal, r.MakespanMS)
	for _, l := range r.Final {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	return b.String()
}

func scheduleASR() (Result, error) {
	fw, err := core.App("ASR")
	if err != nil {
		return nil, err
	}
	sc, err := fw.Scheduler(cluster.SettingI)
	if err != nil {
		return nil, err
	}
	sc.SetLoadHint(10)
	devs := []sched.DeviceState{
		{Name: "gpu0", Class: device.GPU, FreqScale: 1},
	}
	// Provisioned steady state: each FPGA board holds one kernel's
	// preferred bitstream (the governor's background provisioning).
	kernels := fw.Program().Kernels()
	for i := 0; i < 5; i++ {
		d := sched.DeviceState{
			Name:       fmt.Sprintf("fpga%d", i),
			Class:      device.FPGA,
			ReconfigMS: cluster.SettingI.FPGA.ReconfigMS,
			FreqScale:  1,
		}
		if i < len(kernels) {
			if im := sc.PreferredFPGAImpl(kernels[i].Name); im != nil {
				d.LoadedImpl = im.ID
			}
		}
		devs = append(devs, d)
	}
	// Step 1 only: a zero-slack bound disables the energy step.
	p1, err := sc.Schedule(devs, 1e-9)
	if err != nil {
		return nil, err
	}
	p2, err := sc.Schedule(devs, 0)
	if err != nil {
		return nil, err
	}
	res := &ScheduleResult{
		id:          "fig6",
		MakespanMS:  p2.MakespanMS,
		EnergyStep1: p1.EnergyMJ,
		EnergyFinal: p2.EnergyMJ,
		Swaps:       p2.EnergySwaps,
	}
	for _, a := range p1.Order() {
		res.Step1 = append(res.Step1, fmt.Sprintf("%-14s → %-5s on %-6s [%6.1f, %6.1f] %5.1fW",
			a.Kernel, a.Impl.Platform, a.Device, a.StartMS, a.EndMS, a.Impl.PowerW))
	}
	for _, a := range p2.Order() {
		res.Final = append(res.Final, fmt.Sprintf("%-14s → %-5s on %-6s [%6.1f, %6.1f] %5.1fW",
			a.Kernel, a.Impl.Platform, a.Device, a.StartMS, a.EndMS, a.Impl.PowerW))
	}
	return res, nil
}

// tailLatencyAll is Fig. 7: the per-app tail-latency sweeps. Apps run
// sequentially — each per-app sweep already fans its 24-cell grid plus
// maxRPS searches out across the pool — and Parts keeps Table II order.
func tailLatencyAll() (Result, error) {
	agg := &MultiResult{id: "fig7"}
	for _, app := range apps.Names() {
		r, err := tailLatency("fig7:"+app, app)
		if err != nil {
			return nil, err
		}
		agg.Parts = append(agg.Parts, r)
	}
	return agg, nil
}

// MultiResult aggregates sub-results (one per app).
type MultiResult struct {
	id    string
	Parts []Result
}

// ID implements Result.
func (r *MultiResult) ID() string { return r.id }

// Render implements Result.
func (r *MultiResult) Render() string {
	var b strings.Builder
	for _, p := range r.Parts {
		b.WriteString(p.Render())
	}
	return b.String()
}
