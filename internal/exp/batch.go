package exp

import (
	"fmt"
	"strings"

	"poly/internal/apps"
	"poly/internal/cluster"
	"poly/internal/parallel"
	"poly/internal/runtime"
)

// expBatchWaitMS is the staging max-wait the batching sweep enables —
// small against every app's latency bound, large against the sub-ms
// arrival gaps near each app's saturation point.
const expBatchWaitMS = 4

// BatchingRow is one application's batching-on/off comparison on
// Heter-Poly Setting-I: the QoS-compliant maximum with and without the
// admission batcher, plus operating-point launch and tail statistics
// measured at the unbatched maximum (the fig8 high-load point).
type BatchingRow struct {
	App string
	// MaxRPSOff/On are the fig8 search with the batcher off and on.
	MaxRPSOff, MaxRPSOn float64
	// LaunchPerReqOff/On is physical GPU launches per completed request
	// at the operating point; AmortOff/On is GPU kernel executions per
	// launch (the amortization factor batching exists to raise).
	LaunchPerReqOff, LaunchPerReqOn float64
	AmortOff, AmortOn               float64
	// P99Off/On and ViolOff/On are the operating-point tail.
	P99Off, P99On   float64
	ViolOff, ViolOn float64
	// Group statistics of the batched operating-point run.
	BatchGroups, MaxBatchSize int
	MeanHoldMS                float64
}

// BatchingResult is the fig8batch experiment: Fig. 8's throughput search
// repeated with the admission-side batcher on, demonstrating that
// cross-request launch sharing buys QoS-compliant throughput without
// spending the tail.
type BatchingResult struct {
	id   string
	Wait float64
	Rows []BatchingRow
}

// ID implements Result.
func (r *BatchingResult) ID() string { return r.id }

// MeanThroughputGain is the mean MaxRPSOn/MaxRPSOff ratio minus one.
func (r *BatchingResult) MeanThroughputGain() float64 {
	var sum float64
	n := 0
	for _, row := range r.Rows {
		if row.MaxRPSOff > 0 {
			sum += row.MaxRPSOn / row.MaxRPSOff
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum/float64(n) - 1
}

// Render implements Result.
func (r *BatchingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — admission batching on Heter-Poly (max wait %.0f ms)\n", r.id, r.Wait)
	fmt.Fprintf(&b, "  %-5s %9s %9s %7s | %11s %11s %9s %9s | %6s %4s %7s\n",
		"app", "maxRPS", "maxRPS+b", "gain", "launch/req", "launch/req+b", "amort", "amort+b", "groups", "max", "hold")
	for _, row := range r.Rows {
		gain := 0.0
		if row.MaxRPSOff > 0 {
			gain = row.MaxRPSOn/row.MaxRPSOff - 1
		}
		fmt.Fprintf(&b, "  %-5s %9.1f %9.1f %+6.1f%% | %11.3f %11.3f %9.2f %9.2f | %6d %4d %5.2fms\n",
			row.App, row.MaxRPSOff, row.MaxRPSOn, 100*gain,
			row.LaunchPerReqOff, row.LaunchPerReqOn, row.AmortOff, row.AmortOn,
			row.BatchGroups, row.MaxBatchSize, row.MeanHoldMS)
		fmt.Fprintf(&b, "  %-5s   p99 %6.1f→%6.1f ms, violations %5.3f→%5.3f at %.1f RPS\n",
			"", row.P99Off, row.P99On, row.ViolOff, row.ViolOn, row.MaxRPSOff)
	}
	fmt.Fprintf(&b, "  mean QoS-throughput gain with batching: %+.1f%%\n", 100*r.MeanThroughputGain())
	return b.String()
}

// maxRPSBatched is maxRPS for Heter-Poly with the admission batcher on,
// memoized under its own key (the batch wait is part of the signature).
func maxRPSBatched(app string, waitMS float64) (float64, error) {
	key := fmt.Sprintf("%s|Heter-Poly|%s|500|0|batchwait=%v", app, cluster.SettingI.Name, waitMS)
	return maxRPSMemo.Do(key, func() (float64, error) {
		b, err := benchFor(app, cluster.HeterPoly, cluster.SettingI)
		if err != nil {
			return 0, err
		}
		return b.MaxThroughputRPSWith(runtime.Options{BatchWaitMS: waitMS},
			searchCapRPS, probeDurationMS, probeSeed)
	})
}

// batchingSweep runs fig8batch: per app, the QoS-throughput search with
// batching off (shared with fig8 via the memo) and on, plus one
// operating-point pair of serving runs at the unbatched maximum to
// measure launch amortization and the tail with everything else equal.
func batchingSweep() (Result, error) {
	names := apps.Names()
	rows, err := parallel.Map(len(names), func(i int) (BatchingRow, error) {
		app := names[i]
		row := BatchingRow{App: app}
		off, err := maxRPS(app, cluster.HeterPoly, cluster.SettingI, 500, 0)
		if err != nil {
			return row, err
		}
		on, err := maxRPSBatched(app, expBatchWaitMS)
		if err != nil {
			return row, err
		}
		row.MaxRPSOff, row.MaxRPSOn = off, on
		if off <= 0 {
			return row, nil
		}
		b, err := benchFor(app, cluster.HeterPoly, cluster.SettingI)
		if err != nil {
			return row, err
		}
		rOff, err := b.ServeConstantLoadWith(runtime.Options{}, off, probeDurationMS, probeSeed)
		if err != nil {
			return row, err
		}
		rOn, err := b.ServeConstantLoadWith(runtime.Options{BatchWaitMS: expBatchWaitMS},
			off, probeDurationMS, probeSeed)
		if err != nil {
			return row, err
		}
		if rOff.Completed > 0 {
			row.LaunchPerReqOff = float64(rOff.GPULaunches) / float64(rOff.Completed)
		}
		if rOn.Completed > 0 {
			row.LaunchPerReqOn = float64(rOn.GPULaunches) / float64(rOn.Completed)
		}
		row.AmortOff, row.AmortOn = rOff.LaunchAmortization(), rOn.LaunchAmortization()
		row.P99Off, row.P99On = rOff.P99MS, rOn.P99MS
		row.ViolOff, row.ViolOn = rOff.ViolationRatio(), rOn.ViolationRatio()
		row.BatchGroups, row.MaxBatchSize = rOn.BatchGroups, rOn.MaxBatchSize
		row.MeanHoldMS = rOn.MeanHoldMS
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &BatchingResult{id: "fig8batch", Wait: expBatchWaitMS, Rows: rows}, nil
}
