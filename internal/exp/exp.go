// Package exp is the experiment harness: one entry point per table and
// figure of the paper's evaluation (Section VI plus the Fig. 1 motivation
// study), each returning typed rows/series and a text rendering that
// mirrors what the paper reports.
//
// Experiments are deterministic for a fixed seed and sized to run in
// seconds on a laptop; EXPERIMENTS.md records the paper-vs-measured
// comparison produced by cmd/polybench.
package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"poly/internal/cluster"
)

// Series is one named curve (e.g. an architecture's tail latency vs load).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Archs returns the three system architectures in paper order.
func Archs() []cluster.Architecture {
	return []cluster.Architecture{cluster.HomoGPU, cluster.HomoFPGA, cluster.HeterPoly}
}

// Result is a runnable experiment's outcome.
type Result interface {
	// ID is the figure/table identifier, e.g. "fig1a".
	ID() string
	// Render returns the text report.
	Render() string
}

// Runner executes one experiment.
type Runner func() (Result, error)

// registry maps experiment IDs to runners, in registration order.
var registry []struct {
	id     string
	title  string
	runner Runner
}

func register(id, title string, r Runner) {
	registry = append(registry, struct {
		id     string
		title  string
		runner Runner
	}{id, title, r})
}

func init() {
	// Registration follows the paper's presentation order.
	register("fig1a", "ASR tail latency vs load (motivation)", func() (Result, error) { return tailLatency("fig1a", "ASR") })
	register("fig1b", "ASR energy proportionality (motivation)", func() (Result, error) { return powerScaling("fig1b", []string{"ASR"}) })
	register("fig1c", "LSTM kernel Pareto frontiers", lstmPareto)
	register("fig1d", "efficiency vs utilization", efficiencyVsUtilization)
	register("fig1ef", "ASR per-kernel breakdown", kernelBreakdown)
	register("fig6", "ASR two-step schedule", scheduleASR)
	register("table2", "per-kernel design spaces", designSpaces)
	register("fig7", "tail latency, six apps", tailLatencyAll)
	register("fig8", "maximum QoS throughput", maxThroughput)
	register("fig8batch", "admission batching throughput sweep", batchingSweep)
	register("fig9", "power scaling, three apps", func() (Result, error) {
		return powerScaling("fig9", []string{"ASR", "FQT", "IR"})
	})
	register("fig10", "energy proportionality, six apps", func() (Result, error) {
		return powerScaling("fig10", appNames())
	})
	register("fig11", "24 h utilization trace", traceFigure)
	register("fig12", "trace replay power savings", traceReplay)
	register("qos", "trace replay QoS violations", qosViolations)
	register("fleet", "multi-node fleet diurnal replay, per routing policy", fleetReplay)
	register("fleetscale", "parallel fleet drain wall-clock, nodes × workers grid", fleetScale)
	register("accuracy", "analytical model vs device simulator", modelAccuracy)
	register("fig13", "architecture scalability (power splits)", archScalability)
	register("fig14", "cost efficiency (TCO)", costEfficiency)
}

// List returns the registered experiment IDs and titles, in order.
func List() [][2]string {
	out := make([][2]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, [2]string{e.id, e.title})
	}
	return out
}

// Run executes one experiment by ID.
func Run(id string) (Result, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner()
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (try one of %s)", id, strings.Join(ids(), ", "))
}

func ids() []string {
	var out []string
	for _, e := range registry {
		out = append(out, e.id)
	}
	return out
}

// RunAll executes every experiment in registration order, stopping on the
// first error.
func RunAll() ([]Result, error) {
	var out []Result
	for _, e := range registry {
		r, err := e.runner()
		if err != nil {
			return out, fmt.Errorf("exp: %s: %w", e.id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// geomean returns the geometric mean of positive values (0 if any value
// is non-positive).
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
