package exp

import (
	"fmt"
	"strings"

	"poly/internal/cluster"
	"poly/internal/core"
	"poly/internal/parallel"
	"poly/internal/runtime"
	"poly/internal/sim"
	"poly/internal/trace"
)

// Trace replay pacing: the 24-hour Google trace is replayed
// time-compressed (24 h of shape in 20 min of simulated time) so the full
// suite stays interactive. Utilization dynamics are preserved — only the
// wall-clock axis shrinks.
const (
	traceSeed       = 5
	traceCompressed = 1200_000.0 // ms of simulated time for the 24 h shape
)

// ------------------------------------------------------------- fig11

// TraceResult is Fig. 11: the synthesized 24 h utilization trace.
type TraceResult struct {
	id    string
	Trace *trace.Trace
}

// ID implements Result.
func (r *TraceResult) ID() string { return r.id }

// Render implements Result.
func (r *TraceResult) Render() string {
	var b strings.Builder
	tr := r.Trace
	fmt.Fprintf(&b, "fig11 — synthesized Google-cluster-style 24 h utilization trace\n")
	fmt.Fprintf(&b, "  samples=%d step=%.0fs mean=%.2f peak=%.2f\n",
		len(tr.Util), tr.StepMS/1000, tr.Mean(), tr.Peak())
	// Hourly means as a rough sparkline.
	fmt.Fprintf(&b, "  hourly: ")
	perHour := len(tr.Util) / 24
	for h := 0; h < 24; h++ {
		var s float64
		for i := 0; i < perHour; i++ {
			s += tr.Util[h*perHour+i]
		}
		fmt.Fprintf(&b, "%02d:%.2f ", h, s/float64(perHour))
	}
	b.WriteByte('\n')
	return b.String()
}

func traceFigure() (Result, error) {
	tr := Synth24h()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceResult{id: "fig11", Trace: tr}, nil
}

// Synth24h returns the canonical trace used by the trace experiments.
func Synth24h() *trace.Trace {
	return trace.Synthesize(trace.SynthOptions{Seed: traceSeed})
}

// ------------------------------------------------------- fig12 + QoS

// TraceReplayResult is Fig. 12 and the Section VI-C QoS discussion:
// power over the replayed trace and violation ratios, per architecture.
type TraceReplayResult struct {
	id string
	// Power[arch] is the sampled power series over the replay.
	Power map[string]sim.TimeSeries
	// AvgPowerW, EnergyMJ, ViolationRatio, P99 per architecture.
	AvgPowerW map[string]float64
	EnergyMJ  map[string]float64
	Violation map[string]float64
	P99       map[string]float64
	BoundMS   float64
}

// ID implements Result.
func (r *TraceReplayResult) ID() string { return r.id }

// Render implements Result.
func (r *TraceReplayResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — 24 h trace replay (time-compressed), ASR on Setting-I\n", r.id)
	for _, k := range sortedKeys(r.AvgPowerW) {
		fmt.Fprintf(&b, "  %-10s avg power %6.1f W  energy %8.0f J  p99 %6.1f ms  violations %5.2f%%\n",
			k, r.AvgPowerW[k], r.EnergyMJ[k]/1000, r.P99[k], 100*r.Violation[k])
	}
	if p, g, f := r.AvgPowerW["Heter-Poly"], r.AvgPowerW["Homo-GPU"], r.AvgPowerW["Homo-FPGA"]; p > 0 {
		fmt.Fprintf(&b, "  Poly power saving: %.0f%% vs Homo-GPU, %.0f%% vs Homo-FPGA\n",
			100*(1-p/g), 100*(1-p/f))
	}
	return b.String()
}

// PowerSaving returns Poly's average-power saving vs an architecture.
func (r *TraceReplayResult) PowerSaving(over string) float64 {
	if r.AvgPowerW[over] == 0 {
		return 0
	}
	return 1 - r.AvgPowerW["Heter-Poly"]/r.AvgPowerW[over]
}

func traceReplay() (Result, error) {
	tr := Synth24h()
	res := &TraceReplayResult{
		id:        "fig12",
		Power:     map[string]sim.TimeSeries{},
		AvgPowerW: map[string]float64{},
		EnergyMJ:  map[string]float64{},
		Violation: map[string]float64{},
		P99:       map[string]float64{},
	}
	// Load scale: the trace's utilization is a fraction of each system's
	// own maximum, mirroring the paper's "directly use the same
	// utilization value" for all three platforms — here scaled by the
	// Poly maximum so all three serve the identical request stream.
	polyMax, err := maxRPS("ASR", cluster.HeterPoly, cluster.SettingI, 500, 0)
	if err != nil {
		return nil, err
	}
	compress := tr.DurationMS() / traceCompressed
	// The three architecture replays are independent (each owns its
	// session, simulator, and workload RNG seeded identically): fan them
	// out and fill the keyed maps from the ordered results.
	archs := Archs()
	type replay struct {
		out   runtime.Result
		bound float64
	}
	outs, err := parallel.Map(len(archs), func(i int) (replay, error) {
		fw, err := core.App("ASR")
		if err != nil {
			return replay{}, err
		}
		b, err := fw.Bench(archs[i], cluster.SettingI)
		if err != nil {
			return replay{}, err
		}
		sv, _, err := b.NewSession(runtime.Options{WarmupMS: 10_000})
		if err != nil {
			return replay{}, err
		}
		w := runtime.NewWorkload(traceSeed)
		rate := func(at sim.Time) float64 {
			return 0.8 * polyMax * tr.At(float64(at)*compress)
		}
		w.InjectRate(sv, rate, sim.Time(traceCompressed), 5000)
		return replay{out: sv.Collect(), bound: fw.Program().LatencyBoundMS}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, arch := range archs {
		out := outs[i].out
		res.Power[arch.String()] = out.Power
		res.AvgPowerW[arch.String()] = out.AvgPowerW
		res.EnergyMJ[arch.String()] = out.EnergyMJ
		res.Violation[arch.String()] = out.ViolationRatio()
		res.P99[arch.String()] = out.P99MS
		res.BoundMS = outs[i].bound
	}
	return res, nil
}

// qosViolations reuses the replay and reports the QoS side (Section VI-C).
func qosViolations() (Result, error) {
	r, err := traceReplay()
	if err != nil {
		return nil, err
	}
	tr := r.(*TraceReplayResult)
	return &QoSResult{id: "qos", Violation: tr.Violation, P99: tr.P99, BoundMS: tr.BoundMS}, nil
}

// QoSResult is the violation-ratio table of Section VI-C.
type QoSResult struct {
	id        string
	Violation map[string]float64
	P99       map[string]float64
	BoundMS   float64
}

// ID implements Result.
func (r *QoSResult) ID() string { return r.id }

// Render implements Result.
func (r *QoSResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qos — violation ratios over the trace replay (bound %.0f ms)\n", r.BoundMS)
	for _, k := range sortedKeys(r.Violation) {
		fmt.Fprintf(&b, "  %-10s p99 %6.1f ms  violations %5.2f%%\n", k, r.P99[k], 100*r.Violation[k])
	}
	return b.String()
}
