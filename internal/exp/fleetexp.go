package exp

import (
	"fmt"
	"strings"

	"poly/internal/cluster"
	"poly/internal/fleet"
	"poly/internal/parallel"
	"poly/internal/runtime"
	"poly/internal/sim"
)

// fleetNodes is the sharded-cluster size of the fleet experiment: the
// smallest fleet where binpack, spread, and least-util visibly diverge.
const fleetNodes = 4

// FleetRow is one policy's outcome over the diurnal replay.
type FleetRow struct {
	Policy    string
	Injected  int
	Shed      int
	P99MS     float64
	Violation float64
	AvgPowerW float64
	EnergyMJ  float64
	// Shares is each node's fraction of placements — the imbalance the
	// policy produced under the identical arrival stream.
	Shares []float64
}

// FleetResult is the fleet experiment: the 24 h diurnal trace replayed
// through an N-node sharded cluster behind the router, once per policy.
type FleetResult struct {
	id      string
	Nodes   int
	BoundMS float64
	Rows    []FleetRow
}

// ID implements Result.
func (r *FleetResult) ID() string { return r.id }

// Render implements Result.
func (r *FleetResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet — 24 h diurnal replay on a %d-node Heter-Poly fleet, ASR on Setting-I (bound %.0f ms)\n",
		r.Nodes, r.BoundMS)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %6d injected  %4d shed  p99 %6.1f ms  violations %5.2f%%  avg %6.1f W  shares",
			row.Policy, row.Injected, row.Shed, row.P99MS, 100*row.Violation, row.AvgPowerW)
		for _, s := range row.Shares {
			fmt.Fprintf(&b, " %4.1f%%", 100*s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fleetReplay drives the Section VI-C trace through the multi-node
// router: the fleet serves N nodes' worth of the fig12 load, and each
// policy faces the identical arrival stream (same workload seed), so
// the rows differ only by placement decisions.
func fleetReplay() (Result, error) {
	tr := Synth24h()
	polyMax, err := maxRPS("ASR", cluster.HeterPoly, cluster.SettingI, 500, 0)
	if err != nil {
		return nil, err
	}
	compress := tr.DurationMS() / traceCompressed
	pols := fleet.Policies()
	outs, err := parallel.Map(len(pols), func(i int) (fleet.Result, error) {
		b, err := benchFor("ASR", cluster.HeterPoly, cluster.SettingI)
		if err != nil {
			return fleet.Result{}, err
		}
		f, err := fleet.New(b, fleet.Options{
			Nodes:   fleetNodes,
			Policy:  pols[i],
			Runtime: runtime.Options{WarmupMS: 10_000},
		})
		if err != nil {
			return fleet.Result{}, err
		}
		w := runtime.NewWorkload(traceSeed)
		rate := func(at sim.Time) float64 {
			return fleetNodes * 0.8 * polyMax * tr.At(float64(at)*compress)
		}
		w.InjectRate(f, rate, sim.Time(traceCompressed), 5000)
		return f.Collect(), nil
	})
	if err != nil {
		return nil, err
	}
	res := &FleetResult{id: "fleet", Nodes: fleetNodes}
	for _, out := range outs {
		row := FleetRow{
			Policy:    out.Policy,
			Injected:  out.Injected,
			Shed:      out.Shed,
			P99MS:     out.P99MS,
			Violation: out.ViolationRatio(),
			AvgPowerW: out.AvgPowerW,
			EnergyMJ:  out.EnergyMJ,
		}
		placed := out.Injected - out.Shed
		for _, nr := range out.PerNode {
			share := 0.0
			if placed > 0 {
				share = float64(nr.Placements) / float64(placed)
			}
			row.Shares = append(row.Shares, share)
		}
		res.BoundMS = out.BoundMS
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
