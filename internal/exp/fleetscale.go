package exp

import (
	"fmt"
	"strings"
	"time"

	"poly/internal/cluster"
	"poly/internal/fleet"
	"poly/internal/parallel"
	"poly/internal/runtime"
	"poly/internal/sim"
)

// FleetScaleRow is one (nodes, workers) cell of the scaling sweep.
type FleetScaleRow struct {
	Nodes   int
	Workers int
	// Sync is the mode the cell ran under ("serial" for the reference
	// column, "parallel" otherwise).
	Sync string
	// WallMS is the measured wall-clock of the serving run (median of
	// fleetScaleReps repetitions).
	WallMS float64
	// Speedup is the serial reference's WallMS over this cell's — how
	// much the epoch coordinator buys at this pool size.
	Speedup float64
	// Completed pins the simulated outcome so the sweep doubles as a
	// coarse cross-mode consistency check (all cells of a node count
	// must complete the same requests).
	Completed int
}

// FleetScaleResult is the fleetscale experiment: wall-clock of the
// parallel epoch coordinator across a nodes × workers grid, against the
// serial shared-clock reference per node count.
type FleetScaleResult struct {
	id   string
	Rows []FleetScaleRow
}

// ID implements Result.
func (r *FleetScaleResult) ID() string { return r.id }

// Render implements Result.
func (r *FleetScaleResult) Render() string {
	var b strings.Builder
	b.WriteString("fleetscale — wall-clock of the fleet drain, per-node simulators vs one shared clock, ASR on Setting-I\n")
	b.WriteString("  nodes  sync      workers  wall ms  speedup vs serial\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %5d  %-8s  %7d  %7.1f  %17.2f\n",
			row.Nodes, row.Sync, row.Workers, row.WallMS, row.Speedup)
	}
	b.WriteString("  (speedup needs physical cores; a single-core host serializes every cell)\n")
	return b.String()
}

// fleetScaleReps repeats each cell and keeps the median wall-clock, so
// one descheduled run does not distort the nightly artifact.
const fleetScaleReps = 3

// fleetScale measures the tentpole claim behind SyncParallel: with the
// router as the only cross-shard edge, per-node simulators advanced in
// conservative epochs should drain a fleet faster than one shared clock
// whenever cores are available — without changing a single result bit
// (TestFleetParallelBitIdentity holds the identity; this experiment
// records the wall-clock side).
func fleetScale() (Result, error) {
	const (
		perNodeRPS = 40.0
		durationMS = 20_000.0
	)
	defer parallel.SetWorkers(0)
	res := &FleetScaleResult{id: "fleetscale"}
	for _, nodes := range []int{1, 2, 4, 8} {
		b, err := benchFor("ASR", cluster.HeterPoly, cluster.SettingI)
		if err != nil {
			return nil, err
		}
		cell := func(mode fleet.SyncMode, workers int) (FleetScaleRow, error) {
			parallel.SetWorkers(workers)
			row := FleetScaleRow{Nodes: nodes, Workers: workers, Sync: mode.String()}
			var walls []float64
			for rep := 0; rep < fleetScaleReps; rep++ {
				f, err := fleet.New(b, fleet.Options{
					Nodes: nodes, Policy: fleet.LeastUtil, Sync: mode,
					Runtime: runtime.Options{WarmupMS: 2000},
				})
				if err != nil {
					return row, err
				}
				runtime.NewWorkload(1).InjectConstant(f, perNodeRPS*float64(nodes), 0, sim.Time(durationMS))
				start := time.Now()
				out := f.Collect()
				walls = append(walls, float64(time.Since(start).Microseconds())/1000)
				row.Completed = out.Completed
			}
			row.WallMS = median(walls)
			return row, nil
		}
		serial, err := cell(fleet.SyncSerial, 1)
		if err != nil {
			return nil, err
		}
		serial.Speedup = 1
		res.Rows = append(res.Rows, serial)
		for _, workers := range []int{1, 2, 4} {
			if workers > nodes {
				continue
			}
			row, err := cell(fleet.SyncParallel, workers)
			if err != nil {
				return nil, err
			}
			if row.Completed != serial.Completed {
				return nil, fmt.Errorf("fleetscale: %d nodes, %d workers completed %d, serial %d",
					nodes, workers, row.Completed, serial.Completed)
			}
			if row.WallMS > 0 {
				row.Speedup = serial.WallMS / row.WallMS
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// median returns the middle value of xs (mean of the two middles for
// even lengths). xs is small; sort by insertion.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
