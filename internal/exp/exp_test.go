package exp

import (
	"strings"
	"testing"

	"poly/internal/apps"
	"poly/internal/parallel"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig1c", "fig1d", "fig1ef", "fig6", "table2",
		"fig7", "fig8", "fig8batch", "fig9", "fig10", "fig11", "fig12",
		"qos", "accuracy", "fig13", "fig14",
	}
	have := map[string]bool{}
	for _, e := range List() {
		have[e[0]] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, err := Run("bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestLSTMParetoExperiment(t *testing.T) {
	r, err := Run("fig1c")
	if err != nil {
		t.Fatal(err)
	}
	p := r.(*ParetoResult)
	if len(p.GPU) < 2 || len(p.FPG) < 2 {
		t.Fatalf("frontiers too small: %d GPU, %d FPGA", len(p.GPU), len(p.FPG))
	}
	// The FPGA frontier must expose a real energy-vs-latency trade-off:
	// its fastest point draws meaningfully more power than its greenest.
	minP, maxP := p.FPG[0].PowerW, p.FPG[0].PowerW
	for _, pt := range p.FPG {
		if pt.PowerW < minP {
			minP = pt.PowerW
		}
		if pt.PowerW > maxP {
			maxP = pt.PowerW
		}
	}
	if maxP < 1.5*minP {
		t.Fatalf("FPGA frontier has no power spread: %.1f..%.1f W", minP, maxP)
	}
	if !strings.Contains(r.Render(), "Pareto") {
		t.Fatal("render missing")
	}
}

func TestKernelBreakdownExperiment(t *testing.T) {
	r, err := Run("fig1ef")
	if err != nil {
		t.Fatal(err)
	}
	b := r.(*BreakdownResult)
	if len(b.Rows) != 4 {
		t.Fatalf("ASR breakdown rows = %d, want 4 kernels", len(b.Rows))
	}
	var gpuTotal, fpgaTotal float64
	for _, row := range b.Rows {
		if row.GPULatencyMS <= 0 || row.FPGALatencyMS <= 0 || row.GPUEnerMJ <= 0 || row.FPGAEnrMJ <= 0 {
			t.Fatalf("implausible row: %+v", row)
		}
		gpuTotal += row.GPUEnerMJ
		fpgaTotal += row.FPGAEnrMJ
	}
	// Fig. 1(e)'s qualitative claim: over the whole request, the FPGA
	// designs are more energy-frugal than the GPU designs (individual
	// kernels may flip — batching makes the dense K1 cheap on the GPU).
	if fpgaTotal >= gpuTotal {
		t.Fatalf("FPGA total energy %.0f ≥ GPU total %.0f", fpgaTotal, gpuTotal)
	}
}

func TestScheduleExperiment(t *testing.T) {
	r, err := Run("fig6")
	if err != nil {
		t.Fatal(err)
	}
	s := r.(*ScheduleResult)
	if len(s.Step1) != 4 || len(s.Final) != 4 {
		t.Fatalf("schedule rows: %d/%d", len(s.Step1), len(s.Final))
	}
	if s.MakespanMS <= 0 || s.MakespanMS > 200 {
		t.Fatalf("final makespan %.1f outside (0,200]", s.MakespanMS)
	}
	// Step 2 must not increase energy.
	if s.EnergyFinal > s.EnergyStep1 {
		t.Fatalf("energy step raised energy: %.0f → %.0f", s.EnergyStep1, s.EnergyFinal)
	}
}

func TestDesignSpacesExperiment(t *testing.T) {
	r, err := Run("table2")
	if err != nil {
		t.Fatal(err)
	}
	d := r.(*DesignSpaceResult)
	// Table II: 15 kernels across the six applications... our apps total:
	// 4+3+3+2+2+3 = 17 kernels.
	if len(d.Rows) != 17 {
		t.Fatalf("rows = %d, want 17", len(d.Rows))
	}
	appsSeen := map[string]bool{}
	for _, row := range d.Rows {
		appsSeen[row.App] = true
		if row.GPUFeasible == 0 || row.FPGAFeas == 0 {
			t.Fatalf("%s/%s has an empty feasible space", row.App, row.Kernel)
		}
		if row.GPUPareto == 0 || row.FPGAPareto == 0 {
			t.Fatalf("%s/%s has an empty frontier", row.App, row.Kernel)
		}
		if len(row.Patterns) == 0 {
			t.Fatalf("%s/%s lists no patterns", row.App, row.Kernel)
		}
	}
	if len(appsSeen) != len(apps.Names()) {
		t.Fatalf("apps covered = %d, want %d", len(appsSeen), len(apps.Names()))
	}
}

func TestTraceExperiment(t *testing.T) {
	r, err := Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	tr := r.(*TraceResult)
	if tr.Trace.Mean() < 0.2 || tr.Trace.Mean() > 0.8 {
		t.Fatalf("trace mean %.2f implausible", tr.Trace.Mean())
	}
	if tr.Trace.Peak() < tr.Trace.Mean() {
		t.Fatal("peak below mean")
	}
}

func TestModelAccuracyExperiment(t *testing.T) {
	r, err := Run("accuracy")
	if err != nil {
		t.Fatal(err)
	}
	a := r.(*AccuracyResult)
	// 6 apps × (2..4 kernels) × 2 platforms.
	if len(a.Rows) < 20 {
		t.Fatalf("accuracy rows = %d", len(a.Rows))
	}
	// The paper claims ≤6 % model error; our device simulator perturbs
	// executions by at most ±5 %, and the harness must confirm the model
	// matches within that band.
	if a.MaxAbsErr > 0.06 {
		t.Fatalf("max model error %.1f%% exceeds the 6%% claim", 100*a.MaxAbsErr)
	}
	if a.MeanAbsErr <= 0 {
		t.Fatal("zero mean error is implausible with perturbation on")
	}
}

// renderAt runs one experiment cold (caches cleared) at a given pool
// size and returns its rendered text.
func renderAt(t *testing.T, id string, workers int) string {
	t.Helper()
	parallel.SetWorkers(workers)
	ResetCaches()
	r, err := Run(id)
	if err != nil {
		t.Fatalf("%s with workers=%d: %v", id, workers, err)
	}
	return r.Render()
}

// TestParallelSweepDeterminism is the engine's core guarantee: a sweep
// run on N workers renders bit-identically to the serial engine. fig1c
// exercises the DSE fan-out and Pareto merge; fig1a exercises the
// simulation harness (maxRPS searches plus the arch × load grid).
func TestParallelSweepDeterminism(t *testing.T) {
	defer func() {
		parallel.SetWorkers(0)
		ResetCaches()
	}()
	t.Run("fig1c", func(t *testing.T) {
		serial := renderAt(t, "fig1c", 1)
		for _, w := range []int{2, 8} {
			if par := renderAt(t, "fig1c", w); par != serial {
				t.Fatalf("fig1c render differs at workers=%d:\n--- serial ---\n%s--- workers=%d ---\n%s", w, serial, w, par)
			}
		}
	})
	t.Run("fig1a", func(t *testing.T) {
		if testing.Short() {
			t.Skip("fig1a sweep takes tens of seconds; skipped with -short")
		}
		serial := renderAt(t, "fig1a", 1)
		if par := renderAt(t, "fig1a", 4); par != serial {
			t.Fatalf("fig1a render differs at workers=4:\n--- serial ---\n%s--- workers=4 ---\n%s", serial, par)
		}
	})
}

func TestGeomeanAndHelpers(t *testing.T) {
	if g := geomean([]float64{1, 100}); g < 9.9 || g > 10.1 {
		t.Fatalf("geomean = %v", g)
	}
	if geomean(nil) != 0 || geomean([]float64{0, 1}) != 0 {
		t.Fatal("degenerate geomeans must be 0")
	}
	keys := sortedKeys(map[string]int{"b": 1, "a": 2})
	if keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("sortedKeys = %v", keys)
	}
	if len(Archs()) != 3 {
		t.Fatal("three architectures expected")
	}
}
