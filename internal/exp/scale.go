package exp

import (
	"fmt"
	"math"
	"strings"

	"poly/internal/apps"
	"poly/internal/cluster"
	"poly/internal/core"
	"poly/internal/device"
	"poly/internal/metrics"
	"poly/internal/parallel"
	"poly/internal/sim"
)

// ------------------------------------------------------------- fig13

// ScalabilityResult is Fig. 13: maximum ASR throughput as the GPU/FPGA
// power split varies from 0 % (Homo-FPGA) to 100 % (Homo-GPU) under a
// 1000 W cap, for each hardware setting.
type ScalabilityResult struct {
	id string
	// RPS[setting][i] is the max throughput at Splits[i] GPU share.
	Splits []float64
	RPS    map[string][]float64
}

// ID implements Result.
func (r *ScalabilityResult) ID() string { return r.id }

// Render implements Result.
func (r *ScalabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig13 — ASR max throughput vs GPU power share (1000 W cap)\n")
	for _, k := range sortedKeys(r.RPS) {
		fmt.Fprintf(&b, "  %-12s:", k)
		for i, s := range r.Splits {
			fmt.Fprintf(&b, " %3.0f%%→%6.1f", 100*s, r.RPS[k][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BestSplit returns the split with the highest throughput for a setting.
func (r *ScalabilityResult) BestSplit(setting string) (share, rps float64) {
	for i, v := range r.RPS[setting] {
		if v > rps {
			rps, share = v, r.Splits[i]
		}
	}
	return share, rps
}

func archScalability() (Result, error) {
	res := &ScalabilityResult{
		id:     "fig13",
		Splits: []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		RPS:    map[string][]float64{},
	}
	// Every (setting, split) point is an independent maxRPS search — the
	// heavyweight sweep of the suite. Fan the 18-cell grid out and
	// assemble rows by index.
	settings := cluster.Settings()
	grid, err := parallel.Map(len(settings)*len(res.Splits), func(idx int) (float64, error) {
		setting := settings[idx/len(res.Splits)]
		split := res.Splits[idx%len(res.Splits)]
		switch split {
		case 0:
			return maxRPS("ASR", cluster.HomoFPGA, setting, 1000, 0)
		case 1.0:
			return maxRPS("ASR", cluster.HomoGPU, setting, 1000, 0)
		default:
			return maxRPS("ASR", cluster.HeterPoly, setting, 1000, split)
		}
	})
	if err != nil {
		return nil, err
	}
	for i, setting := range settings {
		res.RPS[setting.Name] = grid[i*len(res.Splits) : (i+1)*len(res.Splits)]
	}
	return res, nil
}

// ------------------------------------------------------------- fig14

// CostEfficiencyResult is Fig. 14: max throughput per monthly TCO dollar,
// per architecture and setting.
type CostEfficiencyResult struct {
	id string
	// RPSPerUSD[setting][arch].
	RPSPerUSD map[string]map[string]float64
	// TCOUSD and MaxRPS hold the components for inspection.
	TCOUSD map[string]map[string]float64
	MaxRPS map[string]map[string]float64
}

// ID implements Result.
func (r *CostEfficiencyResult) ID() string { return r.id }

// Render implements Result.
func (r *CostEfficiencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig14 — cost efficiency (max RPS per monthly TCO dollar)\n")
	for _, setting := range sortedKeys(r.RPSPerUSD) {
		fmt.Fprintf(&b, "  %s:\n", setting)
		for _, arch := range sortedKeys(r.RPSPerUSD[setting]) {
			fmt.Fprintf(&b, "    %-10s maxRPS %6.1f  TCO $%7.0f/mo  → %6.4f RPS/$\n",
				arch, r.MaxRPS[setting][arch], r.TCOUSD[setting][arch], r.RPSPerUSD[setting][arch])
		}
	}
	return b.String()
}

func costEfficiency() (Result, error) {
	res := &CostEfficiencyResult{
		id:        "fig14",
		RPSPerUSD: map[string]map[string]float64{},
		TCOUSD:    map[string]map[string]float64{},
		MaxRPS:    map[string]map[string]float64{},
	}
	// One cell per (setting, architecture): maxRPS search, half-load power
	// probe, provisioning, and TCO math are all independent across cells.
	settings, archs := cluster.Settings(), Archs()
	type cell struct {
		ce, tco, m float64
	}
	grid, err := parallel.Map(len(settings)*len(archs), func(idx int) (cell, error) {
		setting, arch := settings[idx/len(archs)], archs[idx%len(archs)]
		m, err := maxRPS("ASR", arch, setting, 500, 0)
		if err != nil {
			return cell{}, err
		}
		// Average power at 50 % load drives the energy bill.
		b, err := benchFor("ASR", arch, setting)
		if err != nil {
			return cell{}, err
		}
		half, err := b.ServeConstantLoad(0.5*m, probeDurationMS, probeSeed)
		if err != nil {
			return cell{}, err
		}
		plan, err := cluster.Provision(cluster.Config{Arch: arch, Setting: setting, PowerCapW: 500})
		if err != nil {
			return cell{}, err
		}
		node := cluster.Build(sim.New(), plan)
		tcoParams := metrics.DefaultTCO(node.CapexUSD(), 500, half.AvgPowerW)
		ce, err := metrics.CostEfficiency(m, tcoParams)
		if err != nil {
			return cell{}, err
		}
		tco, err := tcoParams.MonthlyUSD()
		if err != nil {
			return cell{}, err
		}
		return cell{ce: ce, tco: tco, m: m}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, setting := range settings {
		res.RPSPerUSD[setting.Name] = map[string]float64{}
		res.TCOUSD[setting.Name] = map[string]float64{}
		res.MaxRPS[setting.Name] = map[string]float64{}
		for j, arch := range archs {
			c := grid[i*len(archs)+j]
			res.RPSPerUSD[setting.Name][arch.String()] = c.ce
			res.TCOUSD[setting.Name][arch.String()] = c.tco
			res.MaxRPS[setting.Name][arch.String()] = c.m
		}
	}
	return res, nil
}

// ----------------------------------------------------------- accuracy

// AccuracyResult is the Section VI-C model-validation claim: the
// analytical models' latency predictions against the event-level device
// simulator, per kernel and platform.
type AccuracyResult struct {
	id   string
	Rows []AccuracyRow
	// MeanAbsErr and MaxAbsErr summarize across rows.
	MeanAbsErr, MaxAbsErr float64
}

// AccuracyRow is one (kernel, platform) comparison.
type AccuracyRow struct {
	App, Kernel string
	Platform    string
	ModelMS     float64
	MeasuredMS  float64
	AbsErr      float64
}

// ID implements Result.
func (r *AccuracyResult) ID() string { return r.id }

// Render implements Result.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy — analytical model vs device simulator (single kernel runs)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4s %-16s %-4s model %8.2f ms  measured %8.2f ms  err %5.2f%%\n",
			row.App, row.Kernel, row.Platform, row.ModelMS, row.MeasuredMS, 100*row.AbsErr)
	}
	fmt.Fprintf(&b, "  mean abs err %.2f%%, max %.2f%% (paper: within 6%%)\n",
		100*r.MeanAbsErr, 100*r.MaxAbsErr)
	return b.String()
}

// modelAccuracy executes each kernel's fastest implementation once on a
// fresh board and compares the measured span with the model's prediction.
// Apps fan out across the worker pool (each probe owns its simulator);
// rows are merged in Table II order before the summary statistics.
func modelAccuracy() (Result, error) {
	res := &AccuracyResult{id: "accuracy"}
	names := apps.Names()
	perApp, err := parallel.Map(len(names), func(i int) ([]AccuracyRow, error) {
		name := names[i]
		fw, err := core.App(name)
		if err != nil {
			return nil, err
		}
		ks, err := fw.Explore(cluster.SettingI)
		if err != nil {
			return nil, err
		}
		var rows []AccuracyRow
		for _, k := range fw.Program().Kernels() {
			for _, class := range []device.Class{device.GPU, device.FPGA} {
				im := ks.Space(k.Name, class).MinLatency()
				s := sim.New()
				var doneAt sim.Time
				task := &device.Task{
					Kernel: k.Name, ImplID: im.Kernel + "/probe",
					LatencyMS: im.LatencyMS, IntervalMS: im.IntervalMS,
					Batch: 1, PowerW: im.PowerW,
					OnDone: func(at sim.Time) { doneAt = at },
				}
				var started sim.Time
				if class == device.GPU {
					device.NewGPU(s, "gpu0", cluster.SettingI.GPU).Submit(task)
				} else {
					f := device.NewFPGA(s, "fpga0", cluster.SettingI.FPGA)
					f.Preload(task.ImplID) // exclude the one-time bitstream load
					s.Run()
					started = s.Now()
					f.Submit(task)
				}
				s.Run()
				measured := float64(doneAt - started)
				rows = append(rows, AccuracyRow{
					App: name, Kernel: k.Name, Platform: class.String(),
					ModelMS: im.LatencyMS, MeasuredMS: measured,
					AbsErr: math.Abs(measured-im.LatencyMS) / im.LatencyMS,
				})
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range perApp {
		for _, row := range rows {
			res.Rows = append(res.Rows, row)
			res.MeanAbsErr += row.AbsErr
			if row.AbsErr > res.MaxAbsErr {
				res.MaxAbsErr = row.AbsErr
			}
		}
	}
	if len(res.Rows) > 0 {
		res.MeanAbsErr /= float64(len(res.Rows))
	}
	return res, nil
}
