package exp

import (
	"fmt"
	"math"
	"strings"

	"poly/internal/apps"
	"poly/internal/cluster"
	"poly/internal/core"
	"poly/internal/device"
	"poly/internal/metrics"
	"poly/internal/sim"
)

// ------------------------------------------------------------- fig13

// ScalabilityResult is Fig. 13: maximum ASR throughput as the GPU/FPGA
// power split varies from 0 % (Homo-FPGA) to 100 % (Homo-GPU) under a
// 1000 W cap, for each hardware setting.
type ScalabilityResult struct {
	id string
	// RPS[setting][i] is the max throughput at Splits[i] GPU share.
	Splits []float64
	RPS    map[string][]float64
}

// ID implements Result.
func (r *ScalabilityResult) ID() string { return r.id }

// Render implements Result.
func (r *ScalabilityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig13 — ASR max throughput vs GPU power share (1000 W cap)\n")
	for _, k := range sortedKeys(r.RPS) {
		fmt.Fprintf(&b, "  %-12s:", k)
		for i, s := range r.Splits {
			fmt.Fprintf(&b, " %3.0f%%→%6.1f", 100*s, r.RPS[k][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BestSplit returns the split with the highest throughput for a setting.
func (r *ScalabilityResult) BestSplit(setting string) (share, rps float64) {
	for i, v := range r.RPS[setting] {
		if v > rps {
			rps, share = v, r.Splits[i]
		}
	}
	return share, rps
}

func archScalability() (Result, error) {
	res := &ScalabilityResult{
		id:     "fig13",
		Splits: []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		RPS:    map[string][]float64{},
	}
	for _, setting := range cluster.Settings() {
		var row []float64
		for _, split := range res.Splits {
			var v float64
			var err error
			switch split {
			case 0:
				v, err = maxRPS("ASR", cluster.HomoFPGA, setting, 1000, 0)
			case 1.0:
				v, err = maxRPS("ASR", cluster.HomoGPU, setting, 1000, 0)
			default:
				v, err = maxRPS("ASR", cluster.HeterPoly, setting, 1000, split)
			}
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.RPS[setting.Name] = row
	}
	return res, nil
}

// ------------------------------------------------------------- fig14

// CostEfficiencyResult is Fig. 14: max throughput per monthly TCO dollar,
// per architecture and setting.
type CostEfficiencyResult struct {
	id string
	// RPSPerUSD[setting][arch].
	RPSPerUSD map[string]map[string]float64
	// TCOUSD and MaxRPS hold the components for inspection.
	TCOUSD map[string]map[string]float64
	MaxRPS map[string]map[string]float64
}

// ID implements Result.
func (r *CostEfficiencyResult) ID() string { return r.id }

// Render implements Result.
func (r *CostEfficiencyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fig14 — cost efficiency (max RPS per monthly TCO dollar)\n")
	for _, setting := range sortedKeys(r.RPSPerUSD) {
		fmt.Fprintf(&b, "  %s:\n", setting)
		for _, arch := range sortedKeys(r.RPSPerUSD[setting]) {
			fmt.Fprintf(&b, "    %-10s maxRPS %6.1f  TCO $%7.0f/mo  → %6.4f RPS/$\n",
				arch, r.MaxRPS[setting][arch], r.TCOUSD[setting][arch], r.RPSPerUSD[setting][arch])
		}
	}
	return b.String()
}

func costEfficiency() (Result, error) {
	res := &CostEfficiencyResult{
		id:        "fig14",
		RPSPerUSD: map[string]map[string]float64{},
		TCOUSD:    map[string]map[string]float64{},
		MaxRPS:    map[string]map[string]float64{},
	}
	for _, setting := range cluster.Settings() {
		res.RPSPerUSD[setting.Name] = map[string]float64{}
		res.TCOUSD[setting.Name] = map[string]float64{}
		res.MaxRPS[setting.Name] = map[string]float64{}
		for _, arch := range Archs() {
			m, err := maxRPS("ASR", arch, setting, 500, 0)
			if err != nil {
				return nil, err
			}
			// Average power at 50 % load drives the energy bill.
			b, err := benchFor("ASR", arch, setting)
			if err != nil {
				return nil, err
			}
			half, err := b.ServeConstantLoad(0.5*m, probeDurationMS, probeSeed)
			if err != nil {
				return nil, err
			}
			plan, err := cluster.Provision(cluster.Config{Arch: arch, Setting: setting, PowerCapW: 500})
			if err != nil {
				return nil, err
			}
			node := cluster.Build(sim.New(), plan)
			tcoParams := metrics.DefaultTCO(node.CapexUSD(), 500, half.AvgPowerW)
			ce, err := metrics.CostEfficiency(m, tcoParams)
			if err != nil {
				return nil, err
			}
			tco, err := tcoParams.MonthlyUSD()
			if err != nil {
				return nil, err
			}
			res.RPSPerUSD[setting.Name][arch.String()] = ce
			res.TCOUSD[setting.Name][arch.String()] = tco
			res.MaxRPS[setting.Name][arch.String()] = m
		}
	}
	return res, nil
}

// ----------------------------------------------------------- accuracy

// AccuracyResult is the Section VI-C model-validation claim: the
// analytical models' latency predictions against the event-level device
// simulator, per kernel and platform.
type AccuracyResult struct {
	id   string
	Rows []AccuracyRow
	// MeanAbsErr and MaxAbsErr summarize across rows.
	MeanAbsErr, MaxAbsErr float64
}

// AccuracyRow is one (kernel, platform) comparison.
type AccuracyRow struct {
	App, Kernel string
	Platform    string
	ModelMS     float64
	MeasuredMS  float64
	AbsErr      float64
}

// ID implements Result.
func (r *AccuracyResult) ID() string { return r.id }

// Render implements Result.
func (r *AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy — analytical model vs device simulator (single kernel runs)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-4s %-16s %-4s model %8.2f ms  measured %8.2f ms  err %5.2f%%\n",
			row.App, row.Kernel, row.Platform, row.ModelMS, row.MeasuredMS, 100*row.AbsErr)
	}
	fmt.Fprintf(&b, "  mean abs err %.2f%%, max %.2f%% (paper: within 6%%)\n",
		100*r.MeanAbsErr, 100*r.MaxAbsErr)
	return b.String()
}

// modelAccuracy executes each kernel's fastest implementation once on a
// fresh board and compares the measured span with the model's prediction.
func modelAccuracy() (Result, error) {
	res := &AccuracyResult{id: "accuracy"}
	for _, name := range apps.Names() {
		fw, err := core.App(name)
		if err != nil {
			return nil, err
		}
		ks, err := fw.Explore(cluster.SettingI)
		if err != nil {
			return nil, err
		}
		for _, k := range fw.Program().Kernels() {
			for _, class := range []device.Class{device.GPU, device.FPGA} {
				im := ks.Space(k.Name, class).MinLatency()
				s := sim.New()
				var doneAt sim.Time
				task := &device.Task{
					Kernel: k.Name, ImplID: im.Kernel + "/probe",
					LatencyMS: im.LatencyMS, IntervalMS: im.IntervalMS,
					Batch: 1, PowerW: im.PowerW,
					OnDone: func(at sim.Time) { doneAt = at },
				}
				var started sim.Time
				if class == device.GPU {
					device.NewGPU(s, "gpu0", cluster.SettingI.GPU).Submit(task)
				} else {
					f := device.NewFPGA(s, "fpga0", cluster.SettingI.FPGA)
					f.Preload(task.ImplID) // exclude the one-time bitstream load
					s.Run()
					started = s.Now()
					f.Submit(task)
				}
				s.Run()
				measured := float64(doneAt - started)
				err := math.Abs(measured-im.LatencyMS) / im.LatencyMS
				res.Rows = append(res.Rows, AccuracyRow{
					App: name, Kernel: k.Name, Platform: class.String(),
					ModelMS: im.LatencyMS, MeasuredMS: measured, AbsErr: err,
				})
				res.MeanAbsErr += err
				if err > res.MaxAbsErr {
					res.MaxAbsErr = err
				}
			}
		}
	}
	if len(res.Rows) > 0 {
		res.MeanAbsErr /= float64(len(res.Rows))
	}
	return res, nil
}
