package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergyProportionalityIdealIsOne(t *testing.T) {
	// A perfectly proportional system: P = 100·load.
	c := PowerCurve{
		Loads:  []float64{0, 0.25, 0.5, 0.75, 1},
		PowerW: []float64{0, 25, 50, 75, 100},
	}
	ep, err := EnergyProportionality(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ep-1) > 1e-12 {
		t.Fatalf("ideal EP = %v, want 1", ep)
	}
}

func TestEnergyProportionalityFlatIsZero(t *testing.T) {
	// A completely non-proportional system: constant power.
	// Area_actual = P, Area_ideal = P/2 → EP = 1 − (P − P/2)/(P/2) = 0.
	c := PowerCurve{Loads: []float64{0, 1}, PowerW: []float64{100, 100}}
	ep, err := EnergyProportionality(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ep) > 1e-12 {
		t.Fatalf("flat EP = %v, want 0", ep)
	}
}

func TestEnergyProportionalityOrdersIdleFloors(t *testing.T) {
	// Higher idle floor ⇒ lower EP (the Fig. 1(b) intuition).
	low := PowerCurve{Loads: []float64{0, 1}, PowerW: []float64{10, 100}}
	high := PowerCurve{Loads: []float64{0, 1}, PowerW: []float64{60, 100}}
	epLow, err := EnergyProportionality(low)
	if err != nil {
		t.Fatal(err)
	}
	epHigh, err := EnergyProportionality(high)
	if err != nil {
		t.Fatal(err)
	}
	if epLow <= epHigh {
		t.Fatalf("EP ordering wrong: low-idle %v vs high-idle %v", epLow, epHigh)
	}
	if epLow >= 1 {
		t.Fatalf("nonzero idle cannot reach EP 1: %v", epLow)
	}
}

func TestEnergyProportionalityClampsPartialCurves(t *testing.T) {
	// A curve measured from 10 % to 90 % load still evaluates.
	c := PowerCurve{Loads: []float64{0.1, 0.5, 0.9}, PowerW: []float64{40, 70, 95}}
	ep, err := EnergyProportionality(c)
	if err != nil {
		t.Fatal(err)
	}
	if ep <= 0 || ep >= 1 {
		t.Fatalf("EP = %v outside plausible range", ep)
	}
}

func TestEnergyProportionalityProperty(t *testing.T) {
	// EP ≤ 1 always, and adding idle power never raises EP.
	f := func(idle, peak uint16) bool {
		p := float64(peak%500) + 50
		i := math.Mod(float64(idle), p)
		c := PowerCurve{Loads: []float64{0, 1}, PowerW: []float64{i, p}}
		ep, err := EnergyProportionality(c)
		if err != nil {
			return false
		}
		if ep > 1+1e-12 {
			return false
		}
		c2 := PowerCurve{Loads: []float64{0, 1}, PowerW: []float64{i + 10, p}}
		ep2, err := EnergyProportionality(c2)
		if err != nil {
			return false
		}
		return ep2 <= ep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerCurveValidation(t *testing.T) {
	bad := []PowerCurve{
		{Loads: []float64{0}, PowerW: []float64{1}},
		{Loads: []float64{0, 1}, PowerW: []float64{1}},
		{Loads: []float64{0, 2}, PowerW: []float64{1, 2}},
		{Loads: []float64{0.5, 0.2}, PowerW: []float64{1, 2}},
		{Loads: []float64{0, 1}, PowerW: []float64{-1, 2}},
	}
	for i, c := range bad {
		if _, err := EnergyProportionality(c); err == nil {
			t.Errorf("case %d: bad curve accepted", i)
		}
	}
	zero := PowerCurve{Loads: []float64{0, 1}, PowerW: []float64{0, 0}}
	if _, err := EnergyProportionality(zero); err == nil {
		t.Error("zero-peak curve accepted")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Percentile(vals, 0) != 1 || Percentile(vals, 100) != 5 {
		t.Fatal("percentile endpoints wrong")
	}
	if Percentile(vals, 50) != 3 {
		t.Fatalf("median = %v", Percentile(vals, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestTCOModel(t *testing.T) {
	p := DefaultTCO(20999, 500, 300)
	tco, err := p.MonthlyUSD()
	if err != nil {
		t.Fatal(err)
	}
	// capex (2500+20999)/36 ≈ 653, dc 500·10/120 ≈ 42, energy
	// 0.3·1.1·730·0.067 ≈ 16 → ≈ 711.
	if tco < 600 || tco > 800 {
		t.Fatalf("monthly TCO = %v, want ≈711", tco)
	}
	// More power → more cost.
	p2 := DefaultTCO(20999, 500, 450)
	tco2, _ := p2.MonthlyUSD()
	if tco2 <= tco {
		t.Fatal("higher draw must cost more")
	}
}

func TestTCOValidation(t *testing.T) {
	p := DefaultTCO(1000, 500, 100)
	p.AmortizationMonths = 0
	if _, err := p.MonthlyUSD(); err == nil {
		t.Fatal("zero amortization accepted")
	}
	p = DefaultTCO(1000, 500, 100)
	p.PUE = 0.5
	if _, err := p.MonthlyUSD(); err == nil {
		t.Fatal("PUE < 1 accepted")
	}
	p = DefaultTCO(1000, 500, -5)
	if _, err := p.MonthlyUSD(); err == nil {
		t.Fatal("negative power accepted")
	}
}

func TestCostEfficiency(t *testing.T) {
	p := DefaultTCO(20999, 500, 300)
	ce, err := CostEfficiency(96, p)
	if err != nil {
		t.Fatal(err)
	}
	if ce <= 0 {
		t.Fatalf("cost efficiency = %v", ce)
	}
	// Same cost, higher throughput → better.
	ce2, _ := CostEfficiency(120, p)
	if ce2 <= ce {
		t.Fatal("throughput must raise cost efficiency")
	}
	if _, err := CostEfficiency(-1, p); err == nil {
		t.Fatal("negative throughput accepted")
	}
}

func TestViolationRatio(t *testing.T) {
	lats := []float64{100, 150, 250, 300}
	if got := ViolationRatio(lats, 200); got != 0.5 {
		t.Fatalf("ratio = %v", got)
	}
	if ViolationRatio(nil, 200) != 0 {
		t.Fatal("empty ratio must be 0")
	}
}
