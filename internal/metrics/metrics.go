// Package metrics implements the paper's evaluation metrics: energy
// proportionality (Eq. 1), QoS violation ratios, and the TCO-based cost
// efficiency of Section VI-E.
package metrics

import (
	"fmt"
	"sort"
)

// PowerCurve is a system's measured power draw as a function of load
// (fraction of maximum QoS-compliant throughput, in [0, 1]).
type PowerCurve struct {
	// Loads are the load levels, ascending, in [0, 1].
	Loads []float64
	// PowerW are the measured node powers at each level.
	PowerW []float64
}

// Validate checks curve invariants.
func (c *PowerCurve) Validate() error {
	if len(c.Loads) != len(c.PowerW) {
		return fmt.Errorf("metrics: %d loads vs %d powers", len(c.Loads), len(c.PowerW))
	}
	if len(c.Loads) < 2 {
		return fmt.Errorf("metrics: power curve needs at least two points")
	}
	for i, l := range c.Loads {
		if l < 0 || l > 1 {
			return fmt.Errorf("metrics: load %v outside [0,1]", l)
		}
		if i > 0 && l <= c.Loads[i-1] {
			return fmt.Errorf("metrics: loads must be strictly ascending")
		}
		if c.PowerW[i] < 0 {
			return fmt.Errorf("metrics: negative power %v", c.PowerW[i])
		}
	}
	return nil
}

// trapezoid integrates y over x.
func trapezoid(x, y []float64) float64 {
	var area float64
	for i := 1; i < len(x); i++ {
		area += (y[i] + y[i-1]) / 2 * (x[i] - x[i-1])
	}
	return area
}

// EnergyProportionality computes EP (Eq. 1):
//
//	EP = 1 − (Area_actual − Area_ideal) / Area_ideal
//
// where the ideal system's power is linearly proportional to throughput —
// zero at idle, the system's own full-load power at 100 % load — and
// areas are under the power-vs-load curves. EP = 1 for a perfectly
// proportional system; lower (possibly negative) for systems with high
// idle floors.
func EnergyProportionality(c PowerCurve) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	peak := c.PowerW[len(c.PowerW)-1]
	if peak <= 0 {
		return 0, fmt.Errorf("metrics: full-load power must be positive")
	}
	// Extend the measured curve to cover [0, 1] by clamping endpoints.
	loads := append([]float64(nil), c.Loads...)
	powers := append([]float64(nil), c.PowerW...)
	if loads[0] > 0 {
		loads = append([]float64{0}, loads...)
		powers = append([]float64{powers[0]}, powers...)
	}
	if last := loads[len(loads)-1]; last < 1 {
		loads = append(loads, 1)
		powers = append(powers, peak)
	}
	actual := trapezoid(loads, powers)
	ideal := peak / 2 // ∫0..1 peak·l dl
	return 1 - (actual-ideal)/ideal, nil
}

// Percentile returns the nearest-rank percentile of values (0–100).
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(float64(len(sorted)) * p / 100)
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TCOParams is the monthly total-cost-of-ownership model of [57] with the
// parameter values used by Sirius [4]: amortized server and accelerator
// capital, datacenter capital per provisioned watt, and the power bill
// under the facility PUE.
type TCOParams struct {
	// ServerCostUSD is the host server (CPU, DRAM, chassis) price.
	ServerCostUSD float64
	// AcceleratorCostUSD is the summed board price.
	AcceleratorCostUSD float64
	// AmortizationMonths spreads capital costs (36 months, [4]).
	AmortizationMonths float64
	// DatacenterCostPerWatt is facility capital per provisioned watt
	// ($10/W), amortized over DatacenterAmortMonths (120).
	DatacenterCostPerWatt float64
	DatacenterAmortMonths float64
	// ProvisionedPowerW is the power budget reserved for the node.
	ProvisionedPowerW float64
	// AvgPowerW is the measured average draw.
	AvgPowerW float64
	// PUE is the facility power-usage effectiveness (1.1).
	PUE float64
	// ElectricityUSDPerKWh is the energy price ($0.067/kWh).
	ElectricityUSDPerKWh float64
}

// DefaultTCO returns the Sirius-parameterized model for a node.
func DefaultTCO(acceleratorCostUSD, provisionedW, avgPowerW float64) TCOParams {
	return TCOParams{
		ServerCostUSD:         2500,
		AcceleratorCostUSD:    acceleratorCostUSD,
		AmortizationMonths:    36,
		DatacenterCostPerWatt: 10,
		DatacenterAmortMonths: 120,
		ProvisionedPowerW:     provisionedW,
		AvgPowerW:             avgPowerW,
		PUE:                   1.1,
		ElectricityUSDPerKWh:  0.067,
	}
}

// MonthlyUSD returns the node's monthly TCO.
func (p TCOParams) MonthlyUSD() (float64, error) {
	if p.AmortizationMonths <= 0 || p.DatacenterAmortMonths <= 0 {
		return 0, fmt.Errorf("metrics: non-positive amortization")
	}
	if p.PUE < 1 {
		return 0, fmt.Errorf("metrics: PUE below 1")
	}
	if p.AvgPowerW < 0 || p.ProvisionedPowerW < 0 {
		return 0, fmt.Errorf("metrics: negative power")
	}
	capex := (p.ServerCostUSD + p.AcceleratorCostUSD) / p.AmortizationMonths
	dc := p.DatacenterCostPerWatt * p.ProvisionedPowerW / p.DatacenterAmortMonths
	const hoursPerMonth = 730
	energy := p.AvgPowerW / 1000 * p.PUE * hoursPerMonth * p.ElectricityUSDPerKWh
	return capex + dc + energy, nil
}

// CostEfficiency is Section VI-E's metric: maximum QoS-compliant
// throughput divided by monthly TCO (RPS per dollar).
func CostEfficiency(maxRPS float64, p TCOParams) (float64, error) {
	if maxRPS < 0 {
		return 0, fmt.Errorf("metrics: negative throughput")
	}
	tco, err := p.MonthlyUSD()
	if err != nil {
		return 0, err
	}
	if tco <= 0 {
		return 0, fmt.Errorf("metrics: non-positive TCO")
	}
	return maxRPS / tco, nil
}

// ViolationRatio returns the fraction of latencies above boundMS.
func ViolationRatio(latencies []float64, boundMS float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	n := 0
	for _, l := range latencies {
		if l > boundMS {
			n++
		}
	}
	return float64(n) / float64(len(latencies))
}
