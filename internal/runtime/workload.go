package runtime

import (
	"fmt"
	"math"

	"poly/internal/cluster"
	"poly/internal/device"
	"poly/internal/dse"
	"poly/internal/opencl"
	"poly/internal/sched"
	"poly/internal/sim"
)

// Workload injects an arrival process into a server.
type Workload struct {
	rng *sim.RNG
}

// ArrivalTarget receives scheduled arrivals: a *Server directly, or a
// fleet router that places each arrival on a shard at fire time. Both
// consume the identical RNG draw sequence for a given workload, which is
// what makes the router's 1-node bit-transparency gate meaningful.
type ArrivalTarget interface {
	Inject(at sim.Time)
}

// NewWorkload builds a deterministic workload source.
func NewWorkload(seed int64) *Workload {
	return &Workload{rng: sim.NewRNG(seed)}
}

// InjectPoisson injects an open-loop Poisson arrival process at `rps`
// requests/second from `start` for `durationMS`, returning the number of
// arrivals. Poisson arrivals are the standard open-loop model for
// interactive services (Treadmill [38]).
func (w *Workload) InjectPoisson(tgt ArrivalTarget, rps float64, start, durationMS sim.Time) int {
	if rps <= 0 || durationMS <= 0 {
		return 0
	}
	meanGapMS := 1000 / rps
	n := 0
	for t := start + sim.Time(w.rng.Exp(meanGapMS)); t < start+durationMS; t += sim.Time(w.rng.Exp(meanGapMS)) {
		tgt.Inject(t)
		n++
	}
	return n
}

// InjectConstant injects arrivals at a fixed interval (the motivation
// study's "requests ... sent in a constant interval").
func (w *Workload) InjectConstant(tgt ArrivalTarget, rps float64, start, durationMS sim.Time) int {
	if rps <= 0 || durationMS <= 0 {
		return 0
	}
	gap := sim.Time(1000 / rps)
	n := 0
	for t := start + gap; t < start+durationMS; t += gap {
		tgt.Inject(t)
		n++
	}
	return n
}

// InjectRate injects a Poisson process whose rate is piecewise constant:
// rate(t) gives RPS for each stepMS-wide interval — the trace-replay
// driver of Section VI-C.
func (w *Workload) InjectRate(tgt ArrivalTarget, rate func(t sim.Time) float64, durationMS, stepMS sim.Time) int {
	if stepMS <= 0 || durationMS <= 0 {
		return 0
	}
	n := 0
	for t := sim.Time(0); t < durationMS; t += stepMS {
		n += w.InjectPoisson(tgt, rate(t), t, min(stepMS, durationMS-t))
	}
	return n
}

// Bench is a prebuilt (node architecture, planner) pairing for one
// application — everything needed to serve load and measure the outcome.
type Bench struct {
	Arch    cluster.Architecture
	Setting cluster.Setting
	Prog    *opencl.Program
	Spaces  *dse.KernelSpaces
	// PowerCapW defaults to the paper's 500 W.
	PowerCapW float64
	// GPUShare sets the Heter-Poly split (0 → 50 %).
	GPUShare float64
}

// NewSession provisions a fresh node + server for one run. Each session
// owns its own simulator, so repeated measurements are independent.
func (b Bench) NewSession(opts Options) (*Server, *cluster.Node, error) {
	return b.NewShardSession(sim.New(), "", opts)
}

// NewShardSession provisions one fleet shard: a node whose boards carry
// the given name prefix, built on a shared simulator, plus the server
// that drives it. NewSession is the single-node case (fresh simulator,
// empty prefix) — so a 1-node fleet and a direct session assemble the
// exact same node, planner, and server.
func (b Bench) NewShardSession(s *sim.Simulator, prefix string, opts Options) (*Server, *cluster.Node, error) {
	cap := b.PowerCapW
	if cap == 0 {
		cap = 500
	}
	plan, err := cluster.Provision(cluster.Config{
		Arch: b.Arch, Setting: b.Setting, PowerCapW: cap, GPUShare: b.GPUShare,
	})
	if err != nil {
		return nil, nil, err
	}
	node := cluster.BuildNamed(s, plan, prefix)

	var planner Planner
	switch b.Arch {
	case cluster.HeterPoly:
		planner, err = sched.New(b.Prog, b.Spaces)
	case cluster.HomoGPU:
		planner, err = sched.NewStatic(b.Prog, b.Spaces, device.GPU, sched.StaticAuto)
	case cluster.HomoFPGA:
		planner, err = sched.NewStatic(b.Prog, b.Spaces, device.FPGA, sched.StaticAuto)
	default:
		err = fmt.Errorf("runtime: unknown architecture %v", b.Arch)
	}
	if err != nil {
		return nil, nil, err
	}
	// Heter-Poly runs the full monitor/optimizer loop; the baselines are
	// static (Section VI-C).
	opts.Governor = b.Arch == cluster.HeterPoly
	sv, err := NewServer(node, b.Prog, planner, opts)
	if err != nil {
		return nil, nil, err
	}
	return sv, node, nil
}

// ServeConstantLoad runs a Poisson open-loop load at `rps` for
// durationMS and returns the summary. The first 20 % of the run (capped
// at 5 s) is warmup: bitstream loads and cold queues are excluded from
// the QoS statistics, as a load tester would.
func (b Bench) ServeConstantLoad(rps float64, durationMS float64, seed int64) (Result, error) {
	return b.ServeConstantLoadWith(Options{}, rps, durationMS, seed)
}

// ServeConstantLoadWith is ServeConstantLoad with explicit session
// options — how cmd/polysim attaches a telemetry sink or overrides the
// bound. A zero WarmupMS gets the same 20 %-capped-at-5 s default.
func (b Bench) ServeConstantLoadWith(opts Options, rps float64, durationMS float64, seed int64) (Result, error) {
	if opts.WarmupMS == 0 {
		warm := 0.2 * durationMS
		if warm > 5000 {
			warm = 5000
		}
		opts.WarmupMS = warm
	}
	sv, _, err := b.NewSession(opts)
	if err != nil {
		return Result{}, err
	}
	w := NewWorkload(seed)
	w.InjectPoisson(sv, rps, 0, sim.Time(durationMS))
	return sv.Collect(), nil
}

// MaxThroughputRPS binary-searches the highest arrival rate whose p99
// stays within the bound — the "maximum system throughput" metric of
// Fig. 1(a) and Fig. 8. The search brackets [1, hi] and refines to
// within ~2 %.
func (b Bench) MaxThroughputRPS(hi float64, durationMS float64, seed int64) (float64, error) {
	return b.MaxThroughputRPSWith(Options{}, hi, durationMS, seed)
}

// MaxThroughputRPSWith is MaxThroughputRPS with explicit session options
// — how the batching experiments search the QoS-compliant maximum with
// the admission batcher enabled.
func (b Bench) MaxThroughputRPSWith(opts Options, hi float64, durationMS float64, seed int64) (float64, error) {
	if hi <= 1 {
		hi = 256
	}
	probe := func(rps float64, s int64) (bool, error) {
		// Low-rate probes need enough post-warmup arrivals for the 1 %
		// criterion to be meaningful: stretch the duration so at least
		// ~300 requests are measured.
		dur := durationMS
		if need := 300.0 / rps * 1000; need > dur {
			dur = need
		}
		res, err := b.ServeConstantLoadWith(opts, rps, dur, s)
		if err != nil {
			return false, err
		}
		if res.Completed == 0 || res.Measured == 0 {
			return false, nil
		}
		// The QoS criterion is "the 99th percentile stays within the
		// bound", i.e. at most 1 % of requests violate it. Testing the
		// violation ratio directly is the same criterion with less
		// finite-sample noise than the p99 order statistic.
		return res.ViolationRatio() <= 0.01 && res.PlanErrors == 0, nil
	}
	meets := func(rps float64) (bool, error) {
		ok, err := probe(rps, seed)
		if err != nil || ok {
			return ok, err
		}
		// A marginal miss can be finite-sample noise (a handful of
		// requests around the 1 % threshold): confirm with an
		// independent arrival realization before declaring failure.
		return probe(rps, seed+1)
	}
	lo := 1.0
	ok, err := meets(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	// Grow hi until it fails (or the cap is hit).
	for {
		ok, err := meets(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1e5 {
			return lo, nil
		}
	}
	for hi-lo > math.Max(1, 0.02*lo) {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
