// Package runtime is Poly's serving loop: it connects a workload
// generator, the runtime kernel scheduler, and a simulated heterogeneous
// node (Fig. 2's system monitor → model → optimizer feedback cycle).
//
// Every arriving request is planned against the node's *current* device
// states — queue depths, resident FPGA bitstreams, DVFS points — so the
// allocation "is not fixed but determined by the Poly scheduler based on
// the latency constraint and system states" (Section VI-B). A periodic
// governor implements the power management the trace study describes:
// boosting clocks under load spikes and dropping GPUs to low-power DVFS
// states / loading low-power FPGA shells when the node idles.
package runtime

import (
	"fmt"
	"sort"
	"strings"

	"poly/internal/cluster"
	"poly/internal/device"
	"poly/internal/fault"
	"poly/internal/opencl"
	"poly/internal/sched"
	"poly/internal/sim"
	"poly/internal/telemetry"
)

// Planner plans one request over the node's devices. *sched.Scheduler
// (Heter-Poly) and *sched.StaticPlanner (the Homo-* baselines) both
// implement it.
type Planner interface {
	Schedule(devices []sched.DeviceState, boundMS float64) (*sched.Plan, error)
}

var (
	_ Planner = (*sched.Scheduler)(nil)
	_ Planner = (*sched.StaticPlanner)(nil)
)

// Options configures a server.
type Options struct {
	// BoundMS is the QoS tail-latency bound (program default if zero).
	BoundMS float64
	// GovernorPeriodMS is the monitor/optimizer cycle (500 ms if zero).
	GovernorPeriodMS float64
	// WarmupMS excludes an initial window from the latency statistics:
	// first-touch FPGA reconfigurations and cold caches are deployment
	// one-offs, not steady-state QoS. Energy/power accounting still
	// covers the whole run.
	WarmupMS float64
	// Governor enables dynamic power management. The Homo-* baselines run
	// with it off ("configured with static scheduling scheme", §VI-C).
	Governor bool
	// Telemetry, when non-nil, receives runtime events: per-request
	// spans, governor transitions, device activity, and power samples.
	// Nil disables the whole layer (the serving hot path then pays only
	// nil-checks).
	Telemetry telemetry.Sink
	// Faults, when non-nil and enabled, attaches a deterministic fault
	// injector to every board and arms the runtime's graceful-degradation
	// machinery (health monitor, retries, admission shedding). Nil or a
	// disabled config leaves the serving path bit-identical to a build
	// without the fault layer.
	Faults *fault.Config
	// BatchWaitMS, when positive, enables the admission-side
	// cross-request batcher (batcher.go): arriving requests are staged
	// into a group for up to this many milliseconds — budgeted down by
	// each request's remaining latency slack — and the group is planned
	// and submitted as one unit so same-kernel GPU work shares launches.
	// Zero (the default) disables staging entirely; the serving path is
	// then bit-identical to a build without the batcher.
	BatchWaitMS float64
	// BatchCap bounds the staged group size. Zero means the planner's
	// widest GPU batch capacity — holding more requests than any launch
	// can carry buys nothing. Ignored while BatchWaitMS is zero.
	BatchCap int
}

// defaultTelemetry, when set, is attached to every server built without
// an explicit Options.Telemetry — how polybench records a trace of the
// sessions its experiments construct internally. Set it once, before any
// session exists, and only with a serial worker pool (parallel sweeps
// would interleave their sessions' timelines in one recorder).
var defaultTelemetry telemetry.Sink

// SetDefaultTelemetry installs a process-wide fallback telemetry sink.
func SetDefaultTelemetry(s telemetry.Sink) { defaultTelemetry = s }

// HasDefaultTelemetry reports whether a process-wide fallback sink is
// installed. The parallel fleet coordinator checks it: one shared sink
// cannot absorb N concurrent shard timelines, so a fleet downgrades to
// serial synchronization while a default sink is recording.
func HasDefaultTelemetry() bool { return defaultTelemetry != nil }

// defaultRestoreSlack is the planning headroom the governor restores in
// calm windows (mirrors the scheduler's default).
const defaultRestoreSlack = 0.6

// Server drives one application on one node.
type Server struct {
	sim     *sim.Simulator
	node    *cluster.Node
	prog    *opencl.Program
	planner Planner
	opts    Options

	accels map[string]device.Accelerator

	latencies  sim.Sample
	windowLat  sim.Sample
	lastWindow sim.Sample
	powerTS    sim.TimeSeries
	arrivals   int
	completed  int
	measured   int
	violations int
	planErrors int
	inFlight   int

	windowArrivals  int
	calmWindows     int
	lowPowerMode    bool
	pendingArrivals int
	gpuTasks        int
	fpgaTasks       int
	// intended records the bitstream each FPGA board is committed to by
	// admitted (possibly not-yet-submitted) plans. Planning against the
	// intended residency instead of the instantaneous one prevents two
	// overlapping requests from claiming the same blank board for
	// different kernels and ping-ponging reconfigurations forever.
	intended map[string]string
	// devScratch is the reusable device-state snapshot buffer: admit
	// runs once per request, and both planners copy the slice before
	// retaining anything, so the snapshot never needs to survive a call.
	devScratch []sched.DeviceState

	// pi is the program interned to dense kernel indices (built once in
	// NewServer); reqFree/taskFree/propFree are the free lists the serving
	// loop recycles request, task, and edge-propagation objects through.
	// Recycling is safe because every object counts its outstanding
	// callbacks (request.refs) or is released exactly at its single
	// callback (tasks, edge props).
	pi       progIndex
	reqFree  []*request
	taskFree []*device.Task
	propFree []*edgeProp

	// tel is the telemetry sink (nil = disabled). govMode tracks the
	// governor's operating mode for transition events; lastCacheHits
	// lets admit turn the planner's cumulative cache counters into
	// per-plan hit/miss deltas.
	tel           telemetry.Sink
	govMode       string
	lastCacheHits int

	// injector is the fault layer (nil = faults disabled; every fault
	// path below is gated on it). health is the runtime's belief about
	// each board (see health.go); healthEpoch is the generation counter
	// that keys plan-cache invalidation on health transitions.
	injector    *fault.Injector
	health      map[string]*boardHealth
	healthEpoch uint64

	shed            int
	retries         int
	taskFailures    int
	failedRequests  int
	boardDownEvents int

	// Admission-batcher state (batcher.go). batching latches
	// Options.BatchWaitMS > 0 at construction; with it false every field
	// below stays zero and the serving path never touches them.
	batching      bool
	batchCap      int
	batchArrivals []sim.Time
	batchDeadline sim.Time
	batchGen      uint64
	timerFree     []*batchTimer
	// lastPlanMS is the most recent successful plan's makespan — the
	// batcher's service-time predictor for the slack-budget rule.
	// batchCoexec is the staging gate: true while the live plan mix
	// routes at least one kernel through a batched GPU implementation
	// (see planCoexecutable); arrivals bypass staging while it is false.
	lastPlanMS  float64
	batchCoexec bool

	batchGroups     int
	batchedRequests int
	batchDisbands   int
	batchHoldSumMS  float64
	maxBatchSize    int
}

// NewServer wires an application and planner onto a node.
func NewServer(node *cluster.Node, prog *opencl.Program, planner Planner, opts Options) (*Server, error) {
	if node == nil || prog == nil || planner == nil {
		return nil, fmt.Errorf("runtime: nil node, program, or planner")
	}
	if opts.BoundMS <= 0 {
		opts.BoundMS = prog.LatencyBoundMS
	}
	if opts.GovernorPeriodMS <= 0 {
		opts.GovernorPeriodMS = 500
	}
	if opts.Telemetry == nil {
		opts.Telemetry = defaultTelemetry
	}
	sv := &Server{
		sim:      node.Sim,
		node:     node,
		prog:     prog,
		planner:  planner,
		opts:     opts,
		accels:   make(map[string]device.Accelerator),
		intended: make(map[string]string),
		tel:      opts.Telemetry,
		govMode:  "nominal",
	}
	for _, a := range node.Accelerators() {
		sv.accels[a.Name()] = a
	}
	if len(sv.accels) == 0 {
		return nil, fmt.Errorf("runtime: node has no accelerators")
	}
	sv.buildProgIndex()
	if opts.BatchWaitMS > 0 {
		sv.batching = true
		// Optimistic until the first plan proves otherwise: the first
		// group's plan settles the gate.
		sv.batchCoexec = true
		sv.batchCap = opts.BatchCap
		if sv.batchCap <= 0 {
			sv.batchCap = defaultBatchCap
			if sc, ok := planner.(*sched.Scheduler); ok {
				sv.batchCap = sc.MaxGPUBatch()
			}
		}
	}
	if opts.Faults != nil && opts.Faults.Enabled() {
		boards := make([]string, 0, len(sv.accels))
		for _, g := range node.GPUs {
			boards = append(boards, g.Name())
		}
		for _, f := range node.FPGAs {
			boards = append(boards, f.Name())
		}
		sv.injector = fault.New(*opts.Faults, boards)
		sv.health = make(map[string]*boardHealth, len(boards))
		for _, b := range boards {
			sv.health[b] = &boardHealth{}
		}
		for _, g := range node.GPUs {
			g.SetFaultHook(sv.injector)
		}
		for _, f := range node.FPGAs {
			f.SetFaultHook(sv.injector)
		}
	}
	if sv.tel != nil {
		sv.tel.BeginSession(fmt.Sprintf("%s (bound %.0f ms)", prog.Name, opts.BoundMS))
		// Resource accounting: declare the node and per-board allocatable
		// envelopes, then attach the boards' transition observers and seed
		// the gauges with the current (idle) state.
		capN := node.Capacity()
		sv.tel.RegisterNodeResource(telemetry.ResComputeSlots, capN.ComputeSlots)
		sv.tel.RegisterNodeResource(telemetry.ResPowerW, capN.PowerW)
		sv.tel.RegisterNodeResource(telemetry.ResFPGARegions, capN.FPGARegions)
		capG := node.GPUBoardCapacity()
		for _, g := range node.GPUs {
			sv.tel.RegisterBoard(g.Name(), "GPU")
			sv.tel.RegisterBoardResource(g.Name(), telemetry.ResComputeSlots, capG.ComputeSlots)
			sv.tel.RegisterBoardResource(g.Name(), telemetry.ResPowerW, capG.PowerW)
			g.SetObserver(sv.tel)
			g.SetResourceObserver(sv.tel)
			sv.tel.PowerChanged(g.Name(), g.PowerW(), sv.sim.Now())
		}
		capF := node.FPGABoardCapacity()
		for _, f := range node.FPGAs {
			sv.tel.RegisterBoard(f.Name(), "FPGA")
			sv.tel.RegisterBoardResource(f.Name(), telemetry.ResComputeSlots, capF.ComputeSlots)
			sv.tel.RegisterBoardResource(f.Name(), telemetry.ResPowerW, capF.PowerW)
			sv.tel.RegisterBoardResource(f.Name(), telemetry.ResFPGARegions, capF.FPGARegions)
			f.SetObserver(sv.tel)
			f.SetResourceObserver(sv.tel)
			sv.tel.PowerChanged(f.Name(), f.PowerW(), sv.sim.Now())
			if l := f.Loaded(); l != "" {
				sv.tel.BitstreamResident(f.Name(), l, sv.sim.Now())
			}
		}
		sv.tel.PowerSample(sv.sim.Now(), node.PowerW())
	}
	sv.powerTS.Add(sv.sim.Now(), node.PowerW())
	if opts.Governor {
		sv.sim.AfterCall(sim.Duration(opts.GovernorPeriodMS), fireGovernorTick, sv)
	}
	return sv, nil
}

// progIndex is the program interned to dense kernel indices, built once
// per server so the per-request DAG bookkeeping is flat-slice arithmetic
// instead of string-keyed maps: predCount is the waiting-counter template
// each admit copies, sources lists the zero-predecessor kernels in
// declaration order, and succs carries each kernel's out-edges with the
// PCIe transfer cost precomputed from the edge's byte volume.
type progIndex struct {
	names     []string
	kidx      map[string]int32
	predCount []int32
	sources   []int32
	succs     [][]succEdge
}

// succEdge is one DAG out-edge in dense-index form.
type succEdge struct {
	to         int32
	transferMS float64
}

func (sv *Server) buildProgIndex() {
	ks := sv.prog.Kernels()
	pi := &sv.pi
	pi.names = make([]string, len(ks))
	pi.kidx = make(map[string]int32, len(ks))
	for i, k := range ks {
		pi.names[i] = k.Name
		pi.kidx[k.Name] = int32(i)
	}
	pi.predCount = make([]int32, len(ks))
	pi.succs = make([][]succEdge, len(ks))
	for i, k := range ks {
		pi.predCount[i] = int32(len(sv.prog.Preds(k.Name)))
		if pi.predCount[i] == 0 {
			pi.sources = append(pi.sources, int32(i))
		}
		for _, e := range sv.prog.Succs(k.Name) {
			pi.succs[i] = append(pi.succs[i], succEdge{
				to:         pi.kidx[e.To],
				transferMS: sv.node.PCIe.TransferMS(e.Bytes),
			})
		}
	}
}

// setGovernorMode tracks the governor's operating mode and emits a
// transition event (with its cause) when it changes.
func (sv *Server) setGovernorMode(to, cause string) {
	if sv.govMode == to {
		return
	}
	if sv.tel != nil {
		sv.tel.GovernorTransition(sv.sim.Now(), sv.govMode, to, cause)
	}
	sv.govMode = to
	// A mode transition changes the plan mix the staging gate was decided
	// under — let the next group re-decide it.
	sv.reprobeBatching()
}

// Bound returns the effective latency bound.
func (sv *Server) Bound() float64 { return sv.opts.BoundMS }

// InFlight returns the number of admitted, unfinished requests — a
// routing signal the fleet's placement policies read.
func (sv *Server) InFlight() int { return sv.inFlight }

// deviceStates snapshots the node for the scheduler (Eq. 4 inputs).
// The returned slice is scratch reused across admits.
func (sv *Server) deviceStates() []sched.DeviceState {
	now := sv.sim.Now()
	out := sv.devScratch[:0]
	for _, g := range sv.node.GPUs {
		// Down boards leave the EST tables entirely; suspect boards carry
		// a fixed availability penalty (see health.go). Both branches are
		// unreachable without an injector.
		h := sv.healthState(g.Name())
		if h == healthDown {
			continue
		}
		ds := sched.DeviceState{
			Name:      g.Name(),
			Class:     device.GPU,
			FreeAtMS:  float64(g.NextFreeAt() - now),
			FreqScale: g.FreqScale(),
		}
		if h == healthSuspect {
			ds.FreeAtMS += suspectPenaltyMS
		}
		out = append(out, ds)
	}
	for _, f := range sv.node.FPGAs {
		h := sv.healthState(f.Name())
		if h == healthDown {
			continue
		}
		loaded := sv.intended[f.Name()]
		if loaded == "" {
			loaded = f.Loaded()
		}
		ds := sched.DeviceState{
			Name:       f.Name(),
			Class:      device.FPGA,
			FreeAtMS:   float64(f.NextFreeAt() - now),
			LoadedImpl: loaded,
			ReconfigMS: sv.node.Plan.Setting.FPGA.ReconfigMS,
			FreqScale:  1,
		}
		if h == healthSuspect {
			ds.FreeAtMS += suspectPenaltyMS
		}
		out = append(out, ds)
	}
	sv.devScratch = out
	return out
}

// Inject schedules one request arrival at the given absolute time.
func (sv *Server) Inject(at sim.Time) {
	sv.pendingArrivals++
	sv.sim.AtCall(at, fireAdmit, sv)
}

// RouteArrival admits one arrival at the current simulator instant — the
// fleet router's handoff point. It is Inject(now) with the event already
// fired: the router's own arrival event picked this shard, so the admit
// path runs inline. Equivalent to the Inject path event-for-event, which
// is what keeps a 1-node fleet bit-identical to direct serving.
func (sv *Server) RouteArrival() {
	sv.pendingArrivals++
	fireAdmit(sv.sim.Now(), sv)
}

// BoardHealthCounts reports the runtime's current belief about its
// boards — the signal a fleet generalizes into node-level health. With
// no fault layer attached every board reads healthy.
func (sv *Server) BoardHealthCounts() (healthy, suspect, down int) {
	if sv.health == nil {
		return len(sv.accels), 0, 0
	}
	for _, h := range sv.health {
		switch h.state {
		case healthSuspect:
			suspect++
		case healthDown:
			down++
		default:
			healthy++
		}
	}
	return healthy, suspect, down
}

// fireAdmit routes an arrival: straight to admission, or — with the
// batcher enabled — into the staging stage. The disabled branch is the
// exact pre-batcher path, which is what keeps BatchWaitMS == 0
// bit-identical to a build without the batcher.
func fireAdmit(_ sim.Time, a any) {
	sv := a.(*Server)
	if sv.batching && sv.batchCoexec {
		sv.stage()
		return
	}
	sv.admit()
}

// request tracks one in-flight request's DAG progress. Requests are
// pooled: admit pulls one from the server's free list and maybeRelease
// returns it once the request is done AND refs — the count of scheduled
// callbacks (submitted tasks, in-flight edge propagations) that still
// hold the pointer — drains to zero. Stragglers from a dropped request
// therefore keep it out of the pool until they land.
type request struct {
	sv        *Server
	arrivedAt sim.Time
	plan      *sched.Plan
	// assign maps dense kernel index → effective assignment. Entries
	// start out aliasing the shared immutable plan and are repointed to
	// request-private Assignments on failure retries (the PlanView-style
	// rebase — the plan itself is never written).
	assign []*sched.Assignment
	// waiting counts unfinished predecessors per kernel index; admit
	// copies it from the progIndex template.
	waiting   []int32
	remaining int
	// windowMS is the per-kernel batching budget: the plan's remaining
	// latency slack split across its batched (GPU) stages, so waiting to
	// fill batches can never by itself break the bound.
	windowMS float64
	// span is the request's telemetry record (nil when disabled); ks is
	// the per-kernel span, indexed like assign.
	span *telemetry.Span
	ks   []*telemetry.KernelSpan
	// refs counts outstanding callbacks holding this request.
	refs int
	// retries counts kernel re-placements after task failures; done
	// latches completion so late callbacks from an already-dropped
	// request (tasks still draining on other boards) can't double-count.
	retries int
	done    bool
}

// edgeProp is the pooled argument for one DAG edge's delayed arrival at
// its successor kernel.
type edgeProp struct {
	r    *request
	succ int32
}

// poolChunk is how many request/task objects one free-list refill
// allocates at once. The pools only ever grow to the run's peak
// concurrency, so chunking turns that growth from one allocation per
// object into one per chunk without retaining more than a chunk's
// worth of slack.
const poolChunk = 64

func (sv *Server) acquireRequest() *request {
	if n := len(sv.reqFree); n > 0 {
		r := sv.reqFree[n-1]
		sv.reqFree = sv.reqFree[:n-1]
		return r
	}
	chunk := make([]request, poolChunk)
	for i := 1; i < poolChunk; i++ {
		sv.reqFree = append(sv.reqFree, &chunk[i])
	}
	return &chunk[0]
}

func (sv *Server) acquireTask() *device.Task {
	if n := len(sv.taskFree); n > 0 {
		t := sv.taskFree[n-1]
		sv.taskFree = sv.taskFree[:n-1]
		return t
	}
	chunk := make([]device.Task, poolChunk)
	for i := 1; i < poolChunk; i++ {
		sv.taskFree = append(sv.taskFree, &chunk[i])
	}
	return &chunk[0]
}

// releaseTask recycles a task whose single lifecycle callback has fired;
// the device layer never touches a task after done/fail.
func (sv *Server) releaseTask(t *device.Task) {
	*t = device.Task{}
	sv.taskFree = append(sv.taskFree, t)
}

func (sv *Server) acquireProp() *edgeProp {
	if n := len(sv.propFree); n > 0 {
		p := sv.propFree[n-1]
		sv.propFree = sv.propFree[:n-1]
		return p
	}
	chunk := make([]edgeProp, poolChunk)
	for i := 1; i < poolChunk; i++ {
		sv.propFree = append(sv.propFree, &chunk[i])
	}
	return &chunk[0]
}

// maybeRelease recycles the request once it is finished and no scheduled
// callback still references it. The sv==nil check makes it idempotent.
func (r *request) maybeRelease() {
	sv := r.sv
	if sv == nil || !r.done || r.refs != 0 {
		return
	}
	r.sv = nil
	r.plan = nil
	r.span = nil
	for i := range r.assign {
		r.assign[i] = nil
	}
	for i := range r.ks {
		r.ks[i] = nil
	}
	sv.reqFree = append(sv.reqFree, r)
}

// admit plans and launches a request at the current instant.
func (sv *Server) admit() {
	sv.pendingArrivals--
	sv.arrivals++
	sv.windowArrivals++
	if sv.lowPowerMode {
		// Wake on arrival: a request must not be served at the parked
		// operating point until the next governor tick.
		for _, g := range sv.node.GPUs {
			g.SetDVFS(1)
		}
		sv.lowPowerMode = false
		sv.setGovernorMode("nominal", "arrival_wake")
	}
	// Admission control under degradation: when boards are down or
	// suspect, feasible capacity may not meet the bound. Shedding the
	// request at admission is a fast rejection the client can retry
	// elsewhere; admitting it would turn one board's fault into tail
	// violations for the whole population (ISSUE: prefer rejection).
	degraded := sv.injector != nil && sv.degraded()
	plan, err := sv.planner.Schedule(sv.deviceStates(), sv.opts.BoundMS)
	if err != nil {
		if degraded {
			sv.shed++
			if sv.tel != nil {
				sv.tel.RequestShed(sv.sim.Now())
			}
			return
		}
		sv.planErrors++
		if sv.tel != nil {
			sv.tel.PlanError(sv.sim.Now())
		}
		return
	}
	if degraded && plan.MakespanMS > shedHeadroom*sv.opts.BoundMS {
		sv.shed++
		if sv.tel != nil {
			sv.tel.RequestShed(sv.sim.Now())
		}
		return
	}
	if sv.batching {
		// Arrivals reach admit() with batching on only while the staging
		// gate is closed; keep the hold-budget predictor fresh for when
		// a reprobe reopens it. (Single-request plans never move the
		// gate itself — see notePlan.)
		sv.notePlan(plan, 1)
	}
	var span *telemetry.Span
	if sv.tel != nil {
		hits, _ := sv.PlannerCacheStats()
		hit := hits > sv.lastCacheHits
		sv.lastCacheHits = hits
		sv.tel.PlanUpdate(hit, plan.EnergySwaps)
		span = sv.tel.StartSpan(sv.sim.Now(), sv.opts.BoundMS)
		span.CacheHit = hit
		span.PlanMakespanMS = plan.MakespanMS
		span.EnergySwaps = plan.EnergySwaps
	}
	// Batches form from the queue: arrivals during a running launch
	// coalesce into the next one, which self-balances with load. A fixed
	// accumulation window is kept tiny — just enough to merge
	// near-simultaneous arrivals without spending the latency budget.
	sv.startRequest(sv.sim.Now(), plan, span, admitWindowMS)
}

// startRequest builds the pooled request for an admitted plan and
// submits its source kernels — the shared tail of every admission path.
// arrivedAt is the request's true arrival instant (an admission-batched
// request's latency includes its staging hold); windowMS is the
// per-kernel in-queue accumulation window (for group members, only the
// part of admitWindowMS the staging hold left unspent — the two
// accumulation stages never wait the same budget twice).
func (sv *Server) startRequest(arrivedAt sim.Time, plan *sched.Plan, span *telemetry.Span, windowMS float64) {
	sv.inFlight++
	pi := &sv.pi
	nk := len(pi.names)
	r := sv.acquireRequest()
	r.sv = sv
	r.arrivedAt = arrivedAt
	r.plan = plan
	r.span = span
	r.remaining = len(plan.Assignments)
	r.refs = 0
	r.retries = 0
	r.done = false
	r.windowMS = windowMS
	if cap(r.assign) < nk {
		r.assign = make([]*sched.Assignment, nk)
		r.ks = make([]*telemetry.KernelSpan, nk)
	} else {
		// maybeRelease cleared the recycled slots.
		r.assign = r.assign[:nk]
		r.ks = r.ks[:nk]
	}
	r.waiting = append(r.waiting[:0], pi.predCount...)
	// One walk over the assignments in planned start order both indexes
	// them by kernel and records intended FPGA residency: when a plan
	// places two kernels on the same board, the later one's bitstream is
	// the residency the board ends up with. (plan.Assignments is a map —
	// ranging over it directly would make the winner random.)
	for _, a := range plan.Order() {
		r.assign[pi.kidx[a.Kernel]] = a
		if a.Impl.Platform == device.FPGA {
			sv.intended[a.Device] = a.Impl.ID
		}
	}
	// Submit sources in declaration order for determinism.
	for _, ki := range pi.sources {
		r.submit(ki)
	}
	r.maybeRelease()
}

// submit dispatches one kernel's task to its planned device. The task is
// pooled and carries the request as its Owner plus the per-task context
// (device, kernel index, predicted finish) the lifecycle callbacks need —
// no closures are allocated on this path.
func (r *request) submit(ki int32) {
	sv := r.sv
	a := r.assign[ki]
	accel := sv.accels[a.Device]
	if accel == nil {
		// The planner referenced an unknown device — drop the request
		// rather than corrupt accounting.
		sv.planErrors++
		if sv.tel != nil {
			sv.tel.PlanError(sv.sim.Now())
		}
		r.finishRequest(false)
		return
	}
	if accel.Class() == device.GPU {
		sv.gpuTasks++
	} else {
		sv.fpgaTasks++
	}
	t := sv.acquireTask()
	*t = device.Task{
		Kernel:         a.Kernel,
		ImplID:         a.Impl.ID,
		LatencyMS:      a.Impl.LatencyMS,
		IntervalMS:     a.Impl.IntervalMS,
		Batch:          a.Impl.Config.Batch,
		PowerW:         a.Impl.PowerW,
		Owner:          r,
		Device:         a.Device,
		KernelIdx:      ki,
		PredictedEndMS: a.EndMS,
	}
	if r.span != nil {
		r.ks[ki] = r.span.AddKernel(a.Kernel, a.Device, sched.ImplID(a.Impl), float64(sv.sim.Now()))
	}
	if t.Batch > 1 {
		t.WindowMS = r.windowMS
	}
	r.refs++
	accel.Submit(t)
}

// TaskStarted implements device.TaskOwner: telemetry splits queue time
// from service time per kernel.
func (r *request) TaskStarted(t *device.Task, at sim.Time) {
	if ks := r.ks[t.KernelIdx]; ks != nil {
		ks.StartMS = float64(at)
	}
}

// TaskDone implements device.TaskOwner: feed the fault monitor, stamp
// telemetry, recycle the task, then propagate DAG completion — the same
// order the per-task closure stack used.
func (r *request) TaskDone(t *device.Task, at sim.Time) {
	sv := r.sv
	if sv.injector != nil {
		sv.observeCompletion(t.Device, t.PredictedEndMS, float64(at-r.arrivedAt), at)
	}
	ki := t.KernelIdx
	if ks := r.ks[ki]; ks != nil {
		ks.EndMS = float64(at)
	}
	sv.releaseTask(t)
	r.refs--
	r.kernelDone(ki, at)
	r.maybeRelease()
}

// TaskFailed implements device.TaskOwner: the board lost this kernel.
func (r *request) TaskFailed(t *device.Task, at sim.Time) {
	ki, board := t.KernelIdx, t.Device
	r.sv.releaseTask(t)
	r.refs--
	r.kernelFailed(ki, board, at)
	r.maybeRelease()
}

// kernelDone propagates completion to the successors.
func (r *request) kernelDone(ki int32, at sim.Time) {
	sv := r.sv
	if r.done {
		return // request already dropped; stragglers don't propagate
	}
	pa := r.assign[ki]
	for i := range sv.pi.succs[ki] {
		e := &sv.pi.succs[ki][i]
		delay := sim.Duration(0)
		if ca := r.assign[e.to]; pa != nil && ca != nil && pa.Device != ca.Device {
			delay = sim.Duration(e.transferMS)
			if r.span != nil && delay > 0 {
				r.span.AddTransfer(float64(at), float64(at)+e.transferMS)
			}
		}
		p := sv.acquireProp()
		p.r, p.succ = r, e.to
		r.refs++
		sv.sim.AfterCall(delay, fireEdgeArrive, p)
	}
	r.remaining--
	if r.remaining == 0 {
		r.finishRequest(true)
	}
}

// fireEdgeArrive delivers one DAG edge at its successor after the PCIe
// transfer delay. Deliberately no done-check: edges scheduled before a
// request was dropped still decrement and may submit their successor,
// exactly as the closure-based path did.
func fireEdgeArrive(_ sim.Time, a any) {
	p := a.(*edgeProp)
	r, succ := p.r, p.succ
	p.r = nil
	sv := r.sv
	sv.propFree = append(sv.propFree, p)
	r.refs--
	r.waiting[succ]--
	if r.waiting[succ] == 0 {
		r.submit(succ)
	}
	r.maybeRelease()
}

// finishRequest records latency and QoS accounting.
func (r *request) finishRequest(ok bool) {
	sv := r.sv
	if r.done {
		return
	}
	r.done = true
	sv.inFlight--
	if !ok {
		if r.span != nil {
			r.span.Dropped = true
			sv.tel.FinishSpan(r.span, sv.sim.Now())
		}
		return
	}
	sv.completed++
	lat := float64(sv.sim.Now() - r.arrivedAt)
	measured := float64(r.arrivedAt) >= sv.opts.WarmupMS
	if measured {
		sv.latencies.Add(lat)
		sv.windowLat.Add(lat)
		sv.measured++
		if lat > sv.opts.BoundMS {
			sv.violations++
		}
	}
	if r.span != nil {
		// Warmup requests still produce spans (flagged unmeasured) so a
		// trace shows the cold start, but they stay out of the QoS
		// statistics exactly as they do in Result.
		r.span.LatencyMS = lat
		r.span.Measured = measured
		r.span.Violation = lat > sv.opts.BoundMS
		sv.tel.FinishSpan(r.span, sv.sim.Now())
	}
}

func fireGovernorTick(_ sim.Time, a any) { a.(*Server).governorTick() }

// governorTick is the monitor→model→optimizer cycle: it samples power,
// estimates the window load, and actuates DVFS / low-power shells.
func (sv *Server) governorTick() {
	if !sv.opts.Governor {
		return // switched off mid-run: stop rescheduling
	}
	sv.powerTS.Add(sv.sim.Now(), sv.node.PowerW())
	if sv.tel != nil {
		sv.tel.PowerSample(sv.sim.Now(), sv.node.PowerW())
	}

	var queued int
	for _, a := range sv.accels {
		queued += a.QueueLen()
	}
	switch {
	case queued == 0 && sv.inFlight == 0 && sv.windowArrivals == 0 && len(sv.batchArrivals) == 0:
		// (Staged admission-batch members count as load: parking the node
		// with a group mid-hold would serve the flush at low-power clocks.)
		// Node idle: drop GPUs to the deepest DVFS state and park FPGAs
		// in the low-power shell (§VI-C power-savings discussion).
		for _, g := range sv.node.GPUs {
			g.SetDVFS(2)
		}
		for _, f := range sv.node.FPGAs {
			f.EnterLowPower()
		}
		sv.lowPowerMode = true
		sv.setGovernorMode("lowpower", "idle")
	case queued > len(sv.accels) || sv.latencyPressure():
		cause := "latency_pressure"
		if queued > len(sv.accels) {
			cause = "queue_depth"
		}
		sv.setGovernorMode("boost", cause)
		// Queues building or the tail approaching the bound: full boost,
		// and tighten the scheduler's planning headroom (the optimizer
		// "make[s] an adjustment using the latest feedback", §VI-C).
		for _, g := range sv.node.GPUs {
			g.SetDVFS(0)
		}
		if sc, ok := sv.planner.(*sched.Scheduler); ok {
			sc.SetSlackFactor(0.4)
			sc.SetThroughputMode(true)
		}
		sv.calmWindows = 0
		sv.lowPowerMode = false
	case sv.lowPowerMode:
		// Load returned while parked: restore nominal operation.
		for _, g := range sv.node.GPUs {
			g.SetDVFS(0)
		}
		sv.lowPowerMode = false
		sv.setGovernorMode("nominal", "load_return")
	default:
		// After two consecutive calm windows, restore the default planning
		// headroom and drop the GPUs to the mid DVFS point — the scheduler
		// plans around the slower clock, and the saving is what separates
		// Poly's power curve from the baselines' (Fig. 9). The hysteresis
		// keeps bursts from oscillating the operating point.
		sv.calmWindows++
		if sv.calmWindows >= 2 {
			for _, g := range sv.node.GPUs {
				g.SetDVFS(1)
			}
			if sc, ok := sv.planner.(*sched.Scheduler); ok {
				sc.SetSlackFactor(defaultRestoreSlack)
				sc.SetThroughputMode(false)
			}
			sv.setGovernorMode("calm", "slack_restore")
		}
	}
	if sc, ok := sv.planner.(*sched.Scheduler); ok {
		// Feed the arrival-rate estimate into the scheduler's batch-fill
		// prediction (the system-model part of Fig. 2's feedback loop).
		sc.SetLoadHint(float64(sv.windowArrivals) / sv.opts.GovernorPeriodMS * 1000)
	}
	sv.windowArrivals = 0
	sv.lastWindow = sv.windowLat
	sv.windowLat = sim.Sample{}
	sv.provisionBitstreams()
	sv.sim.AfterCall(sim.Duration(sv.opts.GovernorPeriodMS), fireGovernorTick, sv)
}

// provisionBitstreams keeps every kernel's preferred FPGA implementation
// resident on some board, flashing idle blank boards in the background.
// A foreground reconfiguration costs 80 ms of a request's budget; a
// background one costs nothing, so the governor pre-positions bitstreams
// the way a datacenter operator pre-stages container images.
func (sv *Server) provisionBitstreams() {
	sc, ok := sv.planner.(*sched.Scheduler)
	if !ok || len(sv.node.FPGAs) == 0 {
		return
	}
	resident := map[string]bool{}
	for _, f := range sv.node.FPGAs {
		if f.Loaded() != "" {
			resident[f.Loaded()] = true
		}
		if id := sv.intended[f.Name()]; id != "" {
			resident[id] = true
		}
	}
	// Which kernels have no board at all? Prefer flashing blanks; when no
	// blanks remain, reclaim an idle board whose kernel is duplicated on
	// other boards (rebalancing, not eviction of sole capacity).
	kernelOf := func(id string) string {
		if im := sc.ImplByID(id); im != nil {
			return im.Kernel
		}
		return ""
	}
	boardKernels := map[string]int{}
	for _, f := range sv.node.FPGAs {
		id := sv.intended[f.Name()]
		if id == "" {
			id = f.Loaded()
		}
		if k := kernelOf(id); k != "" {
			boardKernels[k]++
		}
	}
	var missing []string
	for _, k := range sv.prog.Kernels() {
		im := sc.PreferredFPGAImpl(k.Name)
		if im == nil {
			continue
		}
		if id := im.ID; !resident[id] && boardKernels[k.Name] == 0 {
			missing = append(missing, id)
		}
	}
	for _, f := range sv.node.FPGAs {
		if len(missing) == 0 {
			break
		}
		if f.Loaded() == "" && f.Idle() && sv.intended[f.Name()] == "" {
			f.Preload(missing[0])
			sv.intended[f.Name()] = missing[0]
			missing = missing[1:]
		}
	}
	for _, f := range sv.node.FPGAs {
		if len(missing) == 0 {
			break
		}
		cur := sv.intended[f.Name()]
		if cur == "" {
			cur = f.Loaded()
		}
		if k := kernelOf(cur); k != "" && boardKernels[k] > 1 && f.Idle() {
			boardKernels[k]--
			f.Preload(missing[0])
			sv.intended[f.Name()] = missing[0]
			missing = missing[1:]
		}
	}
}

// FaultInjector returns the attached fault injector (nil when faults
// are disabled) — cmd/polysim prints its scenario summary from it.
func (sv *Server) FaultInjector() *fault.Injector { return sv.injector }

// LatencySamples returns the post-warmup request latencies observed so
// far, in insertion order (Percentile queries never reorder the sample).
// Cached-vs-uncached equivalence tests compare these bitwise.
func (sv *Server) LatencySamples() []float64 { return sv.latencies.Values() }

// PlannerCacheStats reports the planner's plan-cache hit/miss counters
// when the planner memoizes (both the dynamic scheduler and the static
// baselines do), or zeros otherwise.
func (sv *Server) PlannerCacheStats() (hits, misses int) {
	type cacheStats interface{ PlanCacheStats() (int, int) }
	if cs, ok := sv.planner.(cacheStats); ok {
		return cs.PlanCacheStats()
	}
	return 0, 0
}

// latencyPressure reports whether the previous monitoring window's tail
// is close to the bound. Using a window, not the run-cumulative sample,
// lets the governor relax again after a transient burst.
func (sv *Server) latencyPressure() bool {
	if sv.lastWindow.Count() < 10 {
		return false
	}
	return sv.lastWindow.Percentile(95) > 0.85*sv.opts.BoundMS
}

// BoardReconfigs is one FPGA board's bitstream-load count over a run.
type BoardReconfigs struct {
	Board string
	Count int
}

// Result summarizes one serving run.
type Result struct {
	Arrivals, Completed int
	// Measured counts post-warmup requests (the QoS population).
	Measured     int
	Violations   int
	PlanErrors   int
	P50MS, P99MS float64
	MeanMS       float64
	// BoundMS is the QoS bound the run was served against.
	BoundMS float64
	// EnergyMJ is the node's accelerator energy over the run.
	EnergyMJ float64
	// AvgPowerW is energy over wall-clock duration.
	AvgPowerW float64
	// DurationMS is the simulated span from start to drain.
	DurationMS float64
	// ThroughputRPS is completed requests per second of duration.
	ThroughputRPS float64
	// Power is the sampled node power series (governor cadence).
	Power sim.TimeSeries
	// GPUTasks/FPGATasks count kernel executions per accelerator family.
	GPUTasks, FPGATasks int
	// GPULaunches counts physical GPU launches over the run; the ratio
	// GPUTasks / GPULaunches is the launch-amortization factor the
	// admission batcher exists to raise (see LaunchAmortization).
	GPULaunches int
	// Reconfigs counts FPGA bitstream loads over the run.
	Reconfigs int
	// CacheHits/CacheMisses are the planner's plan-cache counters.
	CacheHits, CacheMisses int
	// BoardReconfigs breaks Reconfigs down per FPGA board, in node order.
	BoardReconfigs []BoardReconfigs
	// Fault-layer accounting (all zero when no injector is attached).
	// Shed counts requests rejected at admission under degraded health;
	// Retries kernel re-placements; TaskFailures tasks lost to boards;
	// FailedRequests requests dropped after exhausting retries or
	// surviving capacity; BoardDownEvents distinct down transitions.
	Shed            int
	Retries         int
	TaskFailures    int
	FailedRequests  int
	BoardDownEvents int
	// Admission-batcher accounting (all zero when batching is off).
	// BatchGroups counts flushed groups; BatchedRequests their members;
	// BatchDisbands groups dissolved by a board-health transition;
	// MeanHoldMS the mean staging hold per batched request; MaxBatchSize
	// the largest group observed.
	BatchGroups     int
	BatchedRequests int
	BatchDisbands   int
	MeanHoldMS      float64
	MaxBatchSize    int
}

// LaunchAmortization is GPU kernel executions per physical launch
// (1 = no sharing; 0 when the run launched nothing on a GPU).
func (r Result) LaunchAmortization() float64 {
	if r.GPULaunches == 0 {
		return 0
	}
	return float64(r.GPUTasks) / float64(r.GPULaunches)
}

// String renders the run as the multi-line report cmd/polysim prints:
// the QoS outcome first, then the planner and board diagnostics that
// explain it.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests  %d arrived, %d completed, %d measured (bound %.0f ms)\n",
		r.Arrivals, r.Completed, r.Measured, r.BoundMS)
	fmt.Fprintf(&b, "latency   p50 %.2f ms  p99 %.2f ms  mean %.2f ms  violations %d (%.2f%%)\n",
		r.P50MS, r.P99MS, r.MeanMS, r.Violations, 100*r.ViolationRatio())
	fmt.Fprintf(&b, "power     %.1f mJ over %.0f ms (avg %.2f W), %.1f req/s\n",
		r.EnergyMJ, r.DurationMS, r.AvgPowerW, r.ThroughputRPS)
	fmt.Fprintf(&b, "planner   %d cache hits, %d misses, %d plan errors; %d GPU tasks, %d FPGA tasks",
		r.CacheHits, r.CacheMisses, r.PlanErrors, r.GPUTasks, r.FPGATasks)
	if r.Reconfigs > 0 || len(r.BoardReconfigs) > 0 {
		boards := append([]BoardReconfigs(nil), r.BoardReconfigs...)
		sort.Slice(boards, func(i, j int) bool { return boards[i].Board < boards[j].Board })
		parts := make([]string, 0, len(boards))
		for _, br := range boards {
			parts = append(parts, fmt.Sprintf("%s=%d", br.Board, br.Count))
		}
		fmt.Fprintf(&b, "\nreconfigs %d total", r.Reconfigs)
		if len(parts) > 0 {
			fmt.Fprintf(&b, " (%s)", strings.Join(parts, ", "))
		}
	}
	if r.Shed+r.Retries+r.TaskFailures+r.FailedRequests+r.BoardDownEvents > 0 {
		fmt.Fprintf(&b, "\nfaults    %d shed, %d retries, %d task failures, %d failed requests, %d board-down events",
			r.Shed, r.Retries, r.TaskFailures, r.FailedRequests, r.BoardDownEvents)
	}
	if r.BatchGroups > 0 || r.BatchDisbands > 0 {
		fmt.Fprintf(&b, "\nbatching  %d groups (%d requests, max size %d, mean hold %.2f ms), %d disbands, %.2f tasks/launch",
			r.BatchGroups, r.BatchedRequests, r.MaxBatchSize, r.MeanHoldMS, r.BatchDisbands, r.LaunchAmortization())
	}
	return b.String()
}

// ViolationRatio is the fraction of measured requests over the bound.
func (r Result) ViolationRatio() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Measured)
}

// Collect drains the simulator and summarizes the run. It must be called
// once, after all arrivals are injected.
func (sv *Server) Collect() Result {
	// Drain: advance in governor-period steps until every injected
	// request has been admitted and completed. (Run-to-empty would never
	// terminate with the governor enabled — it reschedules itself
	// forever.)
	horizon := sv.sim.Now() + sim.Time(sv.opts.GovernorPeriodMS)
	for !sv.Drained() {
		sv.sim.RunUntil(horizon)
		horizon += sim.Time(sv.opts.GovernorPeriodMS)
	}
	// One more horizon flushes trailing bookkeeping events (device power
	// transitions). Never Run-to-empty: the governor reschedules itself
	// forever.
	sv.sim.RunUntil(horizon)
	return sv.Summarize()
}

// Drained reports whether every injected arrival has been admitted and
// completed — the serving loop's termination condition. A fleet drains
// all its shards on the shared clock before summarizing any of them.
func (sv *Server) Drained() bool {
	return sv.pendingArrivals == 0 && sv.inFlight == 0
}

// GovernorPeriodMS returns the monitor/optimizer cycle length — the
// horizon step a fleet's drain loop advances the shared clock by.
func (sv *Server) GovernorPeriodMS() float64 { return sv.opts.GovernorPeriodMS }

// Summarize builds the run summary at the current instant without
// driving the simulator. Collect = drain + Summarize; a fleet drains the
// shared clock itself and then summarizes each shard. Call it once.
func (sv *Server) Summarize() Result {
	start := sv.powerTS.Times[0]
	end := sv.sim.Now()
	sv.powerTS.Add(end, sv.node.PowerW())
	if sv.tel != nil {
		sv.tel.PowerSample(end, sv.node.PowerW())
	}

	res := Result{
		Arrivals:   sv.arrivals,
		Completed:  sv.completed,
		Measured:   sv.measured,
		Violations: sv.violations,
		GPUTasks:   sv.gpuTasks,
		FPGATasks:  sv.fpgaTasks,
		PlanErrors: sv.planErrors,
		P50MS:      sv.latencies.Percentile(50),
		P99MS:      sv.latencies.P99(),
		MeanMS:     sv.latencies.Mean(),
		BoundMS:    sv.opts.BoundMS,
		EnergyMJ:   sv.node.EnergyMJ(),
		DurationMS: float64(end - start),
		Power:      sv.powerTS,
	}
	res.CacheHits, res.CacheMisses = sv.PlannerCacheStats()
	for _, g := range sv.node.GPUs {
		l, _, _ := g.Launches()
		res.GPULaunches += l
	}
	res.BatchGroups = sv.batchGroups
	res.BatchedRequests = sv.batchedRequests
	res.BatchDisbands = sv.batchDisbands
	res.MaxBatchSize = sv.maxBatchSize
	if sv.batchedRequests > 0 {
		res.MeanHoldMS = sv.batchHoldSumMS / float64(sv.batchedRequests)
	}
	res.Shed = sv.shed
	res.Retries = sv.retries
	res.TaskFailures = sv.taskFailures
	res.FailedRequests = sv.failedRequests
	res.BoardDownEvents = sv.boardDownEvents
	for _, f := range sv.node.FPGAs {
		res.Reconfigs += f.Reconfigs()
		res.BoardReconfigs = append(res.BoardReconfigs, BoardReconfigs{Board: f.Name(), Count: f.Reconfigs()})
	}
	if res.DurationMS > 0 {
		res.AvgPowerW = res.EnergyMJ / res.DurationMS
		res.ThroughputRPS = float64(res.Completed) / res.DurationMS * 1000
	}
	return res
}
