package runtime

import (
	"fmt"
	"io"
	"math"
	"testing"

	"poly/internal/cluster"
	"poly/internal/parallel"
	"poly/internal/sim"
	"poly/internal/telemetry"
)

// TestServeTelemetryEquivalence replays the same Poisson trace through
// two identical sessions — telemetry attached vs disabled — and requires
// the runs to be indistinguishable: bit-identical latency samples, power
// series, task mix, and energy. Telemetry only observes inside existing
// callbacks and never schedules simulator events, so any divergence here
// means the observability layer perturbed the simulation it watches.
func TestServeTelemetryEquivalence(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 20000.0
		seed       = 7
	)
	warm := 0.2 * durationMS

	run := func(rec *telemetry.Recorder) (Result, []float64) {
		opts := Options{WarmupMS: warm}
		if rec != nil {
			opts.Telemetry = rec
		}
		sv := polySession(t, b, -1, opts)
		NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
		return sv.Collect(), sv.LatencySamples()
	}

	rec := telemetry.New()
	resT, latT := run(rec)
	resOff, latOff := run(nil)

	if resT.Arrivals != resOff.Arrivals || resT.Completed != resOff.Completed ||
		resT.Measured != resOff.Measured || resT.Violations != resOff.Violations ||
		resT.PlanErrors != resOff.PlanErrors {
		t.Fatalf("request accounting diverged:\n  telemetry: %+v\n  disabled:  %+v", resT, resOff)
	}
	if resT.GPUTasks != resOff.GPUTasks || resT.FPGATasks != resOff.FPGATasks ||
		resT.Reconfigs != resOff.Reconfigs {
		t.Fatalf("task mix diverged: GPU %d/%d, FPGA %d/%d, reconfigs %d/%d",
			resT.GPUTasks, resOff.GPUTasks, resT.FPGATasks, resOff.FPGATasks,
			resT.Reconfigs, resOff.Reconfigs)
	}
	if math.Float64bits(resT.EnergyMJ) != math.Float64bits(resOff.EnergyMJ) ||
		math.Float64bits(resT.DurationMS) != math.Float64bits(resOff.DurationMS) {
		t.Fatalf("energy accounting diverged: %.9f mJ / %.3f ms vs %.9f mJ / %.3f ms",
			resT.EnergyMJ, resT.DurationMS, resOff.EnergyMJ, resOff.DurationMS)
	}
	if len(latT) != len(latOff) {
		t.Fatalf("latency sample counts diverged: %d vs %d", len(latT), len(latOff))
	}
	for i := range latT {
		if math.Float64bits(latT[i]) != math.Float64bits(latOff[i]) {
			t.Fatalf("latency sample %d diverged: %v vs %v", i, latT[i], latOff[i])
		}
	}
	if resT.Power.Len() != resOff.Power.Len() {
		t.Fatalf("power series lengths diverged: %d vs %d", resT.Power.Len(), resOff.Power.Len())
	}
	for i := range resT.Power.Times {
		if resT.Power.Times[i] != resOff.Power.Times[i] ||
			math.Float64bits(resT.Power.Values[i]) != math.Float64bits(resOff.Power.Values[i]) {
			t.Fatalf("power series diverged at %d", i)
		}
	}

	// The recorder must have actually observed the run: one finished span
	// per completed request, and kernel activity on the boards.
	if got := rec.SpanTotal(); got != resT.Completed {
		t.Fatalf("recorder saw %d spans, run completed %d requests", got, resT.Completed)
	}
	launches := rec.Registry().Counter("poly_device_launches_total", "", "device", "gpu0").Value()
	if launches == 0 {
		t.Fatal("no GPU launches recorded")
	}
	if rec.TraceEventCount() == 0 {
		t.Fatal("trace buffer empty after a full serve")
	}

	// Resource accounting must mirror the node's declared envelope. The
	// ratio gauges are synced at scrape time, so flush one exposition
	// before reading.
	if err := rec.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	sv := polySession(t, b, -1, Options{})
	capN := sv.node.Capacity()
	reg := rec.Registry()
	for _, c := range []struct {
		resource string
		want     float64
	}{
		{telemetry.ResComputeSlots, capN.ComputeSlots},
		{telemetry.ResPowerW, capN.PowerW},
		{telemetry.ResFPGARegions, capN.FPGARegions},
	} {
		got := reg.Gauge("poly_node_allocatable", "", "resource", c.resource).Value()
		if got != c.want {
			t.Fatalf("poly_node_allocatable{resource=%q} = %v, want %v (node.Capacity)", c.resource, got, c.want)
		}
		ratio := reg.Gauge("poly_node_utilization_ratio", "", "resource", c.resource).Value()
		if ratio < 0 || ratio > 1 {
			t.Fatalf("poly_node_utilization_ratio{resource=%q} = %v, want within [0,1]", c.resource, ratio)
		}
	}

	// Every retained span satisfies the stage-sum invariant bit-exactly.
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("span ring empty after a full serve")
	}
	for _, sp := range spans {
		if sum := sp.Stages.SumMS(); math.Float64bits(sum) != math.Float64bits(sp.LatencyMS) {
			t.Fatalf("span %d: stage sum %v != latency %v (%+v)", sp.ID, sum, sp.LatencyMS, sp.Stages)
		}
	}
}

// TestServeStageInvariantAcrossWorkers replays the same sessions under
// worker pools of size 1 and 4, each with its own recorder, and checks
// the two stage-attribution promises at once: every retained span's
// breakdown sums to its latency bit-exactly, and the breakdowns
// themselves are bit-identical at any pool size — stage attribution is
// part of the deterministic outcome, not a best-effort annotation.
func TestServeStageInvariantAcrossWorkers(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 8000.0
		sessions   = 3
	)
	type spanRec struct {
		id      uint64
		latency float64
		stages  telemetry.StageBreakdown
	}
	runAll := func(workers int) [][]spanRec {
		out, err := parallel.MapN(workers, sessions, func(i int) ([]spanRec, error) {
			rec := telemetry.NewWithOptions(telemetry.Options{SpanRingCap: 1 << 16})
			sv, _, err := b.NewSession(Options{WarmupMS: 0.2 * durationMS, Telemetry: rec})
			if err != nil {
				return nil, err
			}
			NewWorkload(int64(10+i)).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
			sv.Collect()
			spans := rec.Spans()
			recs := make([]spanRec, 0, len(spans))
			for _, sp := range spans {
				if sum := sp.Stages.SumMS(); math.Float64bits(sum) != math.Float64bits(sp.LatencyMS) {
					return nil, fmt.Errorf("span %d: stage sum %v != latency %v (%+v)",
						sp.ID, sum, sp.LatencyMS, sp.Stages)
				}
				recs = append(recs, spanRec{id: sp.ID, latency: sp.LatencyMS, stages: sp.Stages})
			}
			return recs, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := runAll(1)
	pooled := runAll(4)
	for s := range serial {
		if len(serial[s]) == 0 {
			t.Fatalf("session %d retained no spans", s)
		}
		if len(serial[s]) != len(pooled[s]) {
			t.Fatalf("session %d: %d spans at workers=1, %d at workers=4", s, len(serial[s]), len(pooled[s]))
		}
		for i := range serial[s] {
			a, b := serial[s][i], pooled[s][i]
			if a.id != b.id || math.Float64bits(a.latency) != math.Float64bits(b.latency) {
				t.Fatalf("session %d span %d: identity diverged across pools", s, i)
			}
			for st := 0; st < telemetry.NumStages; st++ {
				if math.Float64bits(a.stages.Get(st)) != math.Float64bits(b.stages.Get(st)) {
					t.Fatalf("session %d span %d stage %s diverged: %v vs %v",
						s, i, telemetry.StageNames[st], a.stages.Get(st), b.stages.Get(st))
				}
			}
		}
	}
}

// TestTelemetryMetricsOnlyPoolSafety is the contract behind polybench
// -metrics-out: one MetricsOnly recorder shared by concurrently-running
// sessions must aggregate exactly — K identical sessions through one
// recorder land the same counters as K times one session. Runs under
// -race, so it also proves the sharing is data-race-free.
func TestTelemetryMetricsOnlyPoolSafety(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 30.0
		durationMS = 6000.0
		sessions   = 6
	)
	run := func(rec *telemetry.Recorder) error {
		sv, _, err := b.NewSession(Options{WarmupMS: 0.2 * durationMS, Telemetry: rec})
		if err != nil {
			return err
		}
		NewWorkload(5).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
		sv.Collect()
		return nil
	}

	solo := telemetry.NewWithOptions(telemetry.Options{MetricsOnly: true})
	if err := run(solo); err != nil {
		t.Fatal(err)
	}

	shared := telemetry.NewWithOptions(telemetry.Options{MetricsOnly: true})
	if _, err := parallel.MapN(4, sessions, func(int) (struct{}, error) {
		return struct{}{}, run(shared)
	}); err != nil {
		t.Fatal(err)
	}

	if got, want := shared.SpanTotal(), sessions*solo.SpanTotal(); got != want {
		t.Fatalf("shared recorder saw %d spans, want %d (%d sessions x %d)",
			got, want, sessions, solo.SpanTotal())
	}
	for _, c := range []struct {
		name   string
		labels []string
	}{
		{"poly_requests_total", []string{"outcome", "ok"}},
		{"poly_requests_total", []string{"outcome", "warmup"}},
		{"poly_device_launches_total", []string{"device", "gpu0"}},
		{"poly_plan_cache_misses_total", nil},
	} {
		got := shared.Registry().Counter(c.name, "", c.labels...).Value()
		want := float64(sessions) * solo.Registry().Counter(c.name, "", c.labels...).Value()
		if got != want {
			t.Fatalf("%s%v = %v under the pool, want %v", c.name, c.labels, got, want)
		}
	}
	if solo.Registry().Counter("poly_requests_total", "", "outcome", "ok").Value() == 0 {
		t.Fatal("baseline session completed nothing; the pool-safety test lost its teeth")
	}
}

// TestGovernorTransitionLatencyPressure drives the governor's boost path
// directly: a monitoring window whose p95 crowds the bound must flip the
// mode to boost with cause latency_pressure, and the transition must land
// in the registry and as a governor-track trace instant.
func TestGovernorTransitionLatencyPressure(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	rec := telemetry.New()
	sv := polySession(t, b, -1, Options{Telemetry: rec})

	// ≥10 samples in the last window, tail above 0.85×bound; one arrival
	// so the idle branch doesn't win.
	for i := 0; i < 12; i++ {
		sv.lastWindow.Add(0.95 * sv.Bound())
	}
	sv.windowArrivals = 1
	sv.governorTick()

	if got := rec.Registry().Counter("poly_governor_transitions_total", "",
		"from", "nominal", "to", "boost", "cause", "latency_pressure").Value(); got != 1 {
		t.Fatalf("boost/latency_pressure transitions = %v, want 1", got)
	}

	// Next tick with nothing in flight: idle parks the node in lowpower.
	sv.windowArrivals = 0
	sv.governorTick()
	if got := rec.Registry().Counter("poly_governor_transitions_total", "",
		"from", "boost", "to", "lowpower", "cause", "idle").Value(); got != 1 {
		t.Fatalf("lowpower/idle transitions = %v, want 1", got)
	}

	// An arrival while parked wakes the node immediately.
	sv.Inject(sv.sim.Now() + 1)
	sv.sim.RunUntil(sv.sim.Now() + 2)
	if got := rec.Registry().Counter("poly_governor_transitions_total", "",
		"from", "lowpower", "to", "nominal", "cause", "arrival_wake").Value(); got != 1 {
		t.Fatalf("nominal/arrival_wake transitions = %v, want 1", got)
	}
}

// TestServeSpanLifecycle serves a short run against an impossibly tight
// bound and checks the span records: every completed request yields a
// span whose kernels carry ordered queue/start/end stamps, and the
// violation flags agree with the server's own QoS accounting.
func TestServeSpanLifecycle(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	rec := telemetry.NewWithOptions(telemetry.Options{SpanRingCap: 4096})
	sv := polySession(t, b, -1, Options{BoundMS: 1, Telemetry: rec})
	NewWorkload(3).InjectPoisson(sv, 10, 0, 3000)
	res := sv.Collect()
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	spans := rec.Spans()
	if len(spans) != res.Completed {
		t.Fatalf("ring holds %d spans, want %d", len(spans), res.Completed)
	}
	violations := 0
	for _, sp := range spans {
		if len(sp.Kernels) == 0 {
			t.Fatalf("span %d has no kernels", sp.ID)
		}
		for _, k := range sp.Kernels {
			if k.Device == "" || k.ImplID == "" {
				t.Fatalf("span %d kernel %q missing placement (%q, %q)", sp.ID, k.Kernel, k.Device, k.ImplID)
			}
			if k.StartMS < k.QueuedMS || k.EndMS < k.StartMS {
				t.Fatalf("span %d kernel %q stamps out of order: queued %v start %v end %v",
					sp.ID, k.Kernel, k.QueuedMS, k.StartMS, k.EndMS)
			}
		}
		if sp.AdmitWaitMS() < 0 {
			t.Fatalf("span %d negative admit wait", sp.ID)
		}
		if sp.Measured && sp.Violation {
			violations++
		}
	}
	if violations != res.Violations {
		t.Fatalf("span violations = %d, server counted %d", violations, res.Violations)
	}
	if res.Violations == 0 {
		t.Fatal("a 1 ms bound should violate; the test lost its teeth")
	}
}

// BenchmarkServeTelemetryOn is BenchmarkServeSteadyState with a
// recorder attached — compare the two to see what observing costs; CI
// gates the ratio at 1.10× (cmd/benchgate -ratio). The recorder lives
// outside the loop: its lifetime is the process, not the session, which
// is exactly how polysim and polybench hold one — per-iteration metric
// registration would measure setup, not observation. (The disabled-sink
// overhead is the delta between BenchmarkServeSteadyState before and
// after this package existed: nil-checks only.)
func BenchmarkServeTelemetryOn(b *testing.B) {
	bench := benches(b, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 5000.0
	)
	rec := telemetry.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := polySession(b, bench, -1, Options{WarmupMS: 1000, Telemetry: rec})
		NewWorkload(1).InjectConstant(sv, rps, 0, sim.Time(durationMS))
		res := sv.Collect()
		if res.PlanErrors != 0 {
			b.Fatalf("%d plan errors", res.PlanErrors)
		}
	}
}
