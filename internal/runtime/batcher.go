package runtime

// The admission-side cross-request batcher: a staging stage between
// arrival and planning that holds compatible requests so same-kernel GPU
// work lands in one launch and the scheduler sees the group as one load
// unit (PySchedCL-style clustering of concurrent data-parallel kernels,
// moved in front of the planner).
//
// Compatibility key: a server serves exactly one application, so every
// request shares one kernel DAG and one shape signature — the staging key
// is the program itself and one open group suffices. (A multi-program
// node would key groups per (kernel DAG, shape signature); the stage,
// budget, and flush logic below are unchanged by that generalization.)
//
// Hold budget: a staged request has spent none of its latency budget yet,
// and the last plan's makespan predicts how much serving will need, so
// the request can afford to wait about bound − makespan. The batcher
// spends at most batchSlackShare of that headroom — the rest stays
// reserved for queueing jitter, exactly like the planner's own slack
// factor — and never more than Options.BatchWaitMS. The group flushes at
// the EARLIEST deadline any member carries, so one tight request bounds
// the whole group's hold and batching can spend slack but never violate
// the bound by itself.
//
// Determinism: staging runs inside the single-threaded simulator — the
// group, its flush instant, and the submission order are pure functions
// of the arrival trace, so results are bit-identical at any
// internal/parallel pool size. Flush timers are generation-checked: a
// timer armed for a group that already flushed (cap reached, or a
// tighter deadline's timer fired first) is inert, so expiry racing group
// completion cannot double-flush.

import (
	"poly/internal/device"
	"poly/internal/sched"
	"poly/internal/sim"
	"poly/internal/telemetry"
)

const (
	// batchSlackShare is the fraction of a request's predicted remaining
	// latency slack the staging hold may spend.
	batchSlackShare = 0.5
	// defaultBatchCap bounds group sizes when the planner does not expose
	// a GPU batch capacity (the static baselines).
	defaultBatchCap = 8
	// admitWindowMS is the per-kernel in-queue accumulation window every
	// individually-admitted request carries (see admit). A staged request
	// spends this window in the staging hold instead: a flushed member
	// keeps only the unspent remainder, so the two accumulation stages
	// compose without ever waiting the same budget twice.
	admitWindowMS = 2.0
)

// planCoexecutable reports whether the plan routes any kernel through a
// batched GPU implementation — the only placements where staged members
// actually share launches. An application whose plans pick batch-1
// implementations everywhere (e.g. sequential-heavy kernels whose wide
// GPU variants lose on latency) gains nothing from staging: the group
// would hold, then serialize member-by-member anyway. The batcher gates
// itself on the live plan mix, so such loads admit straight through and
// staging resumes the moment the plan mix turns co-executable again.
func planCoexecutable(p *sched.Plan) bool {
	for _, a := range p.Assignments {
		if a.Impl != nil && a.Impl.Platform == device.GPU && a.Impl.Config.Batch >= 2 {
			return true
		}
	}
	return false
}

// notePlan records a successful plan's staging-relevant facts: the
// makespan that prices the next hold budget, and — for genuine group
// plans only — whether the mix can co-execute (the staging gate read by
// fireAdmit). Single-request plans must not move the gate: their pricing
// carries no group-fill guarantee, so a batch-1 mix there says nothing
// about what a group would get. The gate reopens optimistically on
// governor-mode and board-health transitions (reprobeBatching): those
// are the events that change the plan mix, and one probe group settles
// it again. Only called on paths that exist because batching is on.
func (sv *Server) notePlan(p *sched.Plan, groupN int) {
	sv.lastPlanMS = p.MakespanMS
	if groupN >= 2 {
		sv.batchCoexec = planCoexecutable(p)
	}
}

// reprobeBatching reopens the staging gate so the next group's plan can
// re-decide co-executability under the new operating point. No-op (and
// unreachable effect) with batching off.
func (sv *Server) reprobeBatching() {
	if sv.batching {
		sv.batchCoexec = true
	}
}

// batchTimer is the pooled argument for a group's max-wait flush event.
// gen pins the timer to the group generation it was armed for.
type batchTimer struct {
	sv  *Server
	gen uint64
}

func (sv *Server) acquireBatchTimer() *batchTimer {
	if n := len(sv.timerFree); n > 0 {
		bt := sv.timerFree[n-1]
		sv.timerFree = sv.timerFree[:n-1]
		return bt
	}
	return &batchTimer{}
}

func fireBatchTimer(_ sim.Time, a any) {
	bt := a.(*batchTimer)
	sv, gen := bt.sv, bt.gen
	bt.sv = nil
	sv.timerFree = append(sv.timerFree, bt)
	if gen != sv.batchGen {
		return // that group already flushed or disbanded
	}
	sv.flushBatch("maxwait")
}

// stage holds one arriving request in the open admission group instead of
// admitting it immediately. Arrival-side accounting — the arrival counts
// the governor's load estimate reads, and the low-power wake — happens
// here at the true arrival instant; planning and submission happen at
// flush. The request stays in pendingArrivals while staged, so Collect's
// drain loop keeps driving the simulator until the group lands.
func (sv *Server) stage() {
	sv.arrivals++
	sv.windowArrivals++
	if sv.lowPowerMode {
		for _, g := range sv.node.GPUs {
			g.SetDVFS(1)
		}
		sv.lowPowerMode = false
		sv.setGovernorMode("nominal", "arrival_wake")
	}
	now := sv.sim.Now()
	first := len(sv.batchArrivals) == 0
	sv.batchArrivals = append(sv.batchArrivals, now)
	if len(sv.batchArrivals) >= sv.batchCap {
		sv.flushBatch("full")
		return
	}
	deadline := now + sim.Time(sv.holdBudgetMS())
	if first || deadline < sv.batchDeadline {
		// Each member may tighten the group's deadline but never extend
		// it. Stale timers for the looser deadline stay scheduled and die
		// on the generation check.
		sv.batchDeadline = deadline
		bt := sv.acquireBatchTimer()
		bt.sv, bt.gen = sv, sv.batchGen
		sv.sim.AtCall(deadline, fireBatchTimer, bt)
	}
}

// holdBudgetMS is the slack-budget rule (see the package comment above):
// min(BatchWaitMS, batchSlackShare × max(0, bound − last plan makespan)).
// Before any plan exists lastPlanMS is zero and the full shared bound
// applies.
func (sv *Server) holdBudgetMS() float64 {
	slackMS := sv.opts.BoundMS - sv.lastPlanMS
	if slackMS < 0 {
		slackMS = 0
	}
	budget := batchSlackShare * slackMS
	if budget > sv.opts.BatchWaitMS {
		budget = sv.opts.BatchWaitMS
	}
	return budget
}

// flushBatch plans the open group as one unit and submits every member at
// the current instant. The members share one sealed plan — safe because
// plans are immutable and retries rebase into request-private slots — and
// submit back-to-back, so their same-kernel GPU tasks coalesce into
// shared launches with no further in-queue accumulation (windowMS 0).
func (sv *Server) flushBatch(reason string) {
	n := len(sv.batchArrivals)
	if n == 0 {
		return
	}
	sv.batchGen++
	arr := sv.batchArrivals[:n]
	// Reset the open group BEFORE submitting: a member's submission can
	// fail a board and re-enter the batcher through the health
	// transition's disband hook, which must see no open group.
	sv.batchArrivals = sv.batchArrivals[:0]
	now := sv.sim.Now()

	// One plan for the whole group, with the group size fed to the
	// scheduler: batched GPU variants are guaranteed n requests per
	// launch, so the plan prices launch sharing as certainty instead of a
	// load-estimate gamble. The hint is reset immediately — it is part of
	// the plan-cache key, and single-request admissions must not alias
	// group plans.
	sc, _ := sv.planner.(*sched.Scheduler)
	if sc != nil {
		sc.SetBatchSize(n)
	}
	degraded := sv.injector != nil && sv.degraded()
	plan, err := sv.planner.Schedule(sv.deviceStates(), sv.opts.BoundMS)
	if sc != nil {
		sc.SetBatchSize(1)
	}
	if err != nil {
		// The whole group fails planning: account every member exactly as
		// an individual admission would.
		for range arr {
			sv.pendingArrivals--
			if degraded {
				sv.shed++
				if sv.tel != nil {
					sv.tel.RequestShed(now)
				}
				continue
			}
			sv.planErrors++
			if sv.tel != nil {
				sv.tel.PlanError(now)
			}
		}
		return
	}
	if degraded && plan.MakespanMS > shedHeadroom*sv.opts.BoundMS {
		for range arr {
			sv.pendingArrivals--
			sv.shed++
			if sv.tel != nil {
				sv.tel.RequestShed(now)
			}
		}
		return
	}
	sv.notePlan(plan, n)

	var holdSumMS float64
	for _, at := range arr {
		holdSumMS += float64(now - at)
	}
	sv.batchGroups++
	sv.batchedRequests += n
	sv.batchHoldSumMS += holdSumMS
	if n > sv.maxBatchSize {
		sv.maxBatchSize = n
	}
	var hit bool
	if sv.tel != nil {
		hits, _ := sv.PlannerCacheStats()
		hit = hits > sv.lastCacheHits
		sv.lastCacheHits = hits
		sv.tel.PlanUpdate(hit, plan.EnergySwaps)
		sv.tel.BatchFlush(now, n, holdSumMS/float64(n), reason)
	}
	for _, at := range arr {
		sv.pendingArrivals--
		hold := float64(now - at)
		win := admitWindowMS - hold
		if win < 0 {
			win = 0
		}
		var span *telemetry.Span
		if sv.tel != nil {
			span = sv.tel.StartSpan(at, sv.opts.BoundMS)
			span.CacheHit = hit
			span.PlanMakespanMS = plan.MakespanMS
			span.EnergySwaps = plan.EnergySwaps
			span.Batched = true
			span.BatchSize = n
			span.HoldMS = hold
		}
		sv.startRequest(at, plan, span, win)
	}
}

// disbandBatch dissolves the open group without group planning: each
// member is admitted individually at the current instant — against
// whatever the device and health view now is — with its original arrival
// time preserved. Called on every board-health transition; a no-op when
// no group is open (including always when batching is off).
func (sv *Server) disbandBatch() {
	n := len(sv.batchArrivals)
	if n == 0 {
		return
	}
	sv.batchGen++
	sv.batchDisbands++
	arr := sv.batchArrivals[:n]
	sv.batchArrivals = sv.batchArrivals[:0]
	now := sv.sim.Now()
	if sv.tel != nil {
		var holdSumMS float64
		for _, at := range arr {
			holdSumMS += float64(now - at)
		}
		sv.tel.BatchFlush(now, n, holdSumMS/float64(n), "disband")
	}
	for _, at := range arr {
		sv.admitHeld(at)
	}
}

// admitHeld admits one former group member individually: admit() minus
// the arrival-side accounting stage() already performed, with the
// request's true arrival instant preserved so its latency includes the
// time it was staged.
func (sv *Server) admitHeld(arrivedAt sim.Time) {
	sv.pendingArrivals--
	degraded := sv.injector != nil && sv.degraded()
	plan, err := sv.planner.Schedule(sv.deviceStates(), sv.opts.BoundMS)
	if err != nil {
		if degraded {
			sv.shed++
			if sv.tel != nil {
				sv.tel.RequestShed(sv.sim.Now())
			}
			return
		}
		sv.planErrors++
		if sv.tel != nil {
			sv.tel.PlanError(sv.sim.Now())
		}
		return
	}
	if degraded && plan.MakespanMS > shedHeadroom*sv.opts.BoundMS {
		sv.shed++
		if sv.tel != nil {
			sv.tel.RequestShed(sv.sim.Now())
		}
		return
	}
	sv.notePlan(plan, 1)
	var span *telemetry.Span
	if sv.tel != nil {
		hits, _ := sv.PlannerCacheStats()
		hit := hits > sv.lastCacheHits
		sv.lastCacheHits = hits
		sv.tel.PlanUpdate(hit, plan.EnergySwaps)
		span = sv.tel.StartSpan(arrivedAt, sv.opts.BoundMS)
		span.CacheHit = hit
		span.PlanMakespanMS = plan.MakespanMS
		span.EnergySwaps = plan.EnergySwaps
		span.HoldMS = float64(sv.sim.Now() - arrivedAt)
	}
	sv.startRequest(arrivedAt, plan, span, admitWindowMS)
}
