package runtime

import (
	"testing"

	"poly/internal/analysis"
	"poly/internal/apps"
	"poly/internal/cluster"
	"poly/internal/dse"
	"poly/internal/opencl"
	"poly/internal/sched"
	"poly/internal/sim"
)

// benches builds the three architectures for one app on Setting-I.
func benches(t testing.TB, appName string) map[cluster.Architecture]Bench {
	t.Helper()
	app, ok := apps.ByName(appName)
	if !ok {
		t.Fatalf("unknown app %s", appName)
	}
	pa, err := analysis.AnalyzeProgram(app.Program, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ks, err := dse.ExploreProgram(pa, cluster.SettingI.GPU, cluster.SettingI.FPGA)
	if err != nil {
		t.Fatal(err)
	}
	out := map[cluster.Architecture]Bench{}
	for _, arch := range []cluster.Architecture{cluster.HomoGPU, cluster.HomoFPGA, cluster.HeterPoly} {
		out[arch] = Bench{Arch: arch, Setting: cluster.SettingI, Prog: app.Program, Spaces: ks}
	}
	return out
}

func TestServeASRLowLoadMeetsQoS(t *testing.T) {
	for arch, b := range benches(t, "ASR") {
		res, err := b.ServeConstantLoad(2, 20000, 1)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if res.Completed == 0 || res.Completed != res.Arrivals {
			t.Fatalf("%v: completed %d of %d", arch, res.Completed, res.Arrivals)
		}
		if res.PlanErrors != 0 {
			t.Fatalf("%v: %d plan errors", arch, res.PlanErrors)
		}
		if res.P99MS > b.Prog.LatencyBoundMS {
			t.Fatalf("%v: p99 %.1f ms violates the 200 ms bound at 2 RPS", arch, res.P99MS)
		}
		if res.EnergyMJ <= 0 || res.AvgPowerW <= 0 {
			t.Fatalf("%v: energy accounting broken: %+v", arch, res)
		}
		node, _ := cluster.Provision(cluster.Config{Arch: arch, Setting: cluster.SettingI, PowerCapW: 500})
		peak := float64(node.NumGPU)*cluster.SettingI.GPU.PeakPowerW + float64(node.NumFPGA)*cluster.SettingI.FPGA.PeakPowerW
		if res.AvgPowerW > peak {
			t.Fatalf("%v: avg power %.1f exceeds node peak %.1f", arch, res.AvgPowerW, peak)
		}
	}
}

func TestOverloadViolatesQoS(t *testing.T) {
	b := benches(t, "ASR")[cluster.HomoGPU]
	res, err := b.ServeConstantLoad(500, 5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.P99MS <= b.Prog.LatencyBoundMS {
		t.Fatalf("500 RPS should overload 2 GPUs: p99 = %.1f ms", res.P99MS)
	}
	if res.ViolationRatio() == 0 {
		t.Fatal("overload must produce violations")
	}
}

func TestServeDeterministicForSeed(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	a, err := b.ServeConstantLoad(5, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.ServeConstantLoad(5, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.P99MS != c.P99MS || a.Completed != c.Completed || a.EnergyMJ != c.EnergyMJ {
		t.Fatalf("same seed diverged: %+v vs %+v", a, c)
	}
	d, err := b.ServeConstantLoad(5, 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if d.P99MS == a.P99MS && d.MeanMS == a.MeanMS {
		t.Fatal("different seeds should perturb the run")
	}
}

func TestGovernorSavesIdleEnergy(t *testing.T) {
	// Two Heter-Poly sessions: one serves a short burst then idles long;
	// with the governor the idle tail must be cheaper than the node's
	// nominal idle power would cost.
	b := benches(t, "ASR")[cluster.HeterPoly]
	sv, node, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(3)
	w.InjectPoisson(sv, 5, 0, 5000)
	// Idle tail: advance the sim far beyond the last arrival.
	sv.Inject(60000) // lone request keeps Collect honest at the horizon
	res := sv.Collect()
	if res.Completed == 0 {
		t.Fatal("no requests completed")
	}
	nominalIdle := node.IdlePowerW()
	// Instantaneous power at the end of the long idle stretch must be
	// below nominal idle (DVFS floor + FPGA low-power shells).
	var sawLowPower bool
	for i, p := range res.Power.Values {
		if res.Power.Times[i] > 20000 && res.Power.Times[i] < 59000 && p < nominalIdle {
			sawLowPower = true
		}
	}
	if !sawLowPower {
		t.Fatalf("governor never dropped below nominal idle %.1f W", nominalIdle)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	sv, _, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorkload(1)
	n := w.InjectPoisson(sv, 100, 0, 10000)
	if n < 800 || n > 1200 {
		t.Fatalf("poisson injected %d arrivals at 100 RPS × 10 s", n)
	}
	if w.InjectPoisson(sv, 0, 0, 1000) != 0 || w.InjectPoisson(sv, 5, 0, 0) != 0 {
		t.Fatal("degenerate poisson args must inject nothing")
	}

	sv2, _, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := NewWorkload(1).InjectConstant(sv2, 50, 0, 2000); n != 99 {
		t.Fatalf("constant injected %d, want 99", n)
	}

	sv3, _, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	n3 := NewWorkload(2).InjectRate(sv3, func(t sim.Time) float64 {
		if t < 5000 {
			return 100
		}
		return 10
	}, 10000, 1000)
	if n3 < 400 || n3 > 700 {
		t.Fatalf("rate-driven injected %d", n3)
	}
	if NewWorkload(2).InjectRate(sv3, func(sim.Time) float64 { return 1 }, 0, 100) != 0 {
		t.Fatal("zero duration must inject nothing")
	}
}

func TestMaxThroughputCompetitive(t *testing.T) {
	// Fig. 1(a)/Fig. 8 reproduce in *shape*: all three systems sustain
	// QoS-compliant load in the same tens-of-RPS band, and Heter-Poly is
	// competitive with both homogeneous designs despite owning only half
	// of each accelerator pool. (The paper's Poly additionally beats both
	// on absolute max RPS; in this reproduction its decisive win is
	// energy proportionality at matched QoS — see the fig1b/fig10
	// experiments — while max throughput lands within ~20 % of the best
	// baseline. EXPERIMENTS.md discusses the divergence.)
	bs := benches(t, "ASR")
	rps := map[cluster.Architecture]float64{}
	for arch, b := range bs {
		v, err := b.MaxThroughputRPS(64, 8000, 11)
		if err != nil {
			t.Fatalf("%v: %v", arch, err)
		}
		if v <= 0 {
			t.Fatalf("%v: no sustainable throughput", arch)
		}
		rps[arch] = v
	}
	t.Logf("max RPS: GPU=%.1f FPGA=%.1f Poly=%.1f",
		rps[cluster.HomoGPU], rps[cluster.HomoFPGA], rps[cluster.HeterPoly])
	best := rps[cluster.HomoGPU]
	if rps[cluster.HomoFPGA] > best {
		best = rps[cluster.HomoFPGA]
	}
	if rps[cluster.HeterPoly] < 0.75*best {
		t.Fatalf("Heter-Poly (half of each pool) fell behind the best baseline by >25%%: %v", rps)
	}
}

func TestEnergyProportionalityOrdering(t *testing.T) {
	// The paper's central claim: Poly improves energy proportionality
	// over both baselines without sacrificing QoS. Measure the power
	// curve at 25/50/75/100 % of each system's own maximum and compare
	// EP (Eq. 1 is computed by internal/metrics; here a coarse proxy —
	// the average power as a fraction of full-load power, lower is more
	// proportional — keeps this test fast).
	bs := benches(t, "ASR")
	frac := map[cluster.Architecture]float64{}
	for arch, b := range bs {
		m, err := b.MaxThroughputRPS(64, 8000, 11)
		if err != nil {
			t.Fatal(err)
		}
		var sum, peak float64
		for _, l := range []float64{0.25, 0.5, 0.75, 1.0} {
			r, err := b.ServeConstantLoad(l*m, 10000, 11)
			if err != nil {
				t.Fatal(err)
			}
			sum += r.AvgPowerW
			peak = r.AvgPowerW
		}
		frac[arch] = sum / 4 / peak
	}
	t.Logf("mean/peak power: GPU=%.2f FPGA=%.2f Poly=%.2f",
		frac[cluster.HomoGPU], frac[cluster.HomoFPGA], frac[cluster.HeterPoly])
	if frac[cluster.HeterPoly] >= frac[cluster.HomoGPU] {
		t.Fatalf("Poly must be more proportional than Homo-GPU: %v", frac)
	}
	if frac[cluster.HeterPoly] >= 1.1*frac[cluster.HomoFPGA] {
		t.Fatalf("Poly must at least match Homo-FPGA's proportionality: %v", frac)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(nil, nil, nil, Options{}); err == nil {
		t.Fatal("nil arguments accepted")
	}
	app, _ := apps.ByName("ASR")
	pa, _ := analysis.AnalyzeProgram(app.Program, analysis.Options{})
	ks, _ := dse.ExploreProgram(pa, cluster.SettingI.GPU, cluster.SettingI.FPGA)
	planner, err := sched.New(app.Program, ks)
	if err != nil {
		t.Fatal(err)
	}
	empty := &cluster.Node{Sim: sim.New()}
	if _, err := NewServer(empty, app.Program, planner, Options{}); err == nil {
		t.Fatal("node without accelerators accepted")
	}
}

func TestBenchRejectsUnknownArch(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	b.Arch = cluster.Architecture(9)
	if _, _, err := b.NewSession(Options{}); err == nil {
		t.Fatal("unknown architecture accepted")
	}
}

var _ = opencl.Program{} // keep the import for the Bench field's type
