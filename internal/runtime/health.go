package runtime

import (
	"poly/internal/device"
	"poly/internal/sched"
	"poly/internal/sim"
)

// Board health: the graceful-degradation half of fault injection. The
// runtime never reads the injector's ground truth — it infers board
// state the way a real serving node must, from failed tasks and from
// completions that deviate from the plan's prediction. Everything here
// is inert when no injector is attached: the health map is nil, no
// hooks are installed, and the serving path is bit-identical to a
// fault-free build (TestServeFaultsDisabledEquivalence).
//
// The state machine per board:
//
//	healthy --task failure--> down --backoff expires--> suspect
//	healthy --2 deviating completions--> suspect
//	suspect --5 clean completions--> healthy
//	suspect/down boards re-failing escalate the backoff exponentially
//
// Down boards are excluded from the scheduler's EST tables entirely;
// suspect boards stay schedulable but carry a fixed availability
// penalty, so the planner prefers proven-healthy capacity without
// starving a recovering board of the probe traffic it needs to clear
// probation. Every transition bumps the health epoch, which prefixes
// both planners' plan-cache keys — stale plans die with the epoch
// instead of needing an explicit flush.
const (
	healthHealthy = iota
	healthSuspect
	healthDown
)

const (
	// maxKernelRetries bounds re-placements per request before it is
	// dropped — unbounded retries under a correlated failure would melt
	// the survivors.
	maxKernelRetries = 3
	// backoffBaseMS/backoffCapMS shape the exponential probe backoff for
	// a failing board: 250, 500, 1000, ... capped at 8 s. A flapping
	// board is probed geometrically less often.
	backoffBaseMS = 250.0
	backoffCapMS  = 8000.0
	// suspectPenaltyMS is added to a suspect board's availability in the
	// scheduler's view. A fixed quantum (not a ratio) keeps the plan-
	// cache key space small while the penalty is in force.
	suspectPenaltyMS = 30.0
	// deviationFactor/deviationAbsMS gate the mispredict monitor: a
	// completion counts as deviating only when it lands beyond 3x the
	// plan's prediction AND more than 25 ms late in absolute terms. Both
	// thresholds sit far above the simulator's baseline service-time
	// perturbation and DVFS ratio effects, so fault-free runs never trip.
	deviationFactor = 3.0
	deviationAbsMS  = 25.0
	// deviationTrip consecutive deviations mark a board suspect;
	// probationRuns clean completions restore it.
	deviationTrip = 2
	probationRuns = 5
	// shedHeadroom discounts the bound during degraded admission: a
	// degraded node's EST tables underestimate real queueing (lost
	// capacity, retry traffic), so plans predicted to land in the top
	// 10 % of the budget are shed rather than risked as tail violations.
	shedHeadroom = 0.9
)

// boardHealth is the runtime's belief about one board.
type boardHealth struct {
	state int
	// failStreak counts down-transitions since the last full recovery;
	// it drives the exponential backoff.
	failStreak int
	// deviations / cleanRuns feed the mispredict monitor's hysteresis.
	deviations int
	cleanRuns  int
}

func healthName(s int) string {
	switch s {
	case healthSuspect:
		return "suspect"
	case healthDown:
		return "down"
	default:
		return "healthy"
	}
}

// healthState returns the board's current state (healthy when no
// injector — the map is only populated with faults enabled).
func (sv *Server) healthState(board string) int {
	if h := sv.health[board]; h != nil {
		return h.state
	}
	return healthHealthy
}

// degraded reports whether any board is currently non-healthy — the
// gate for admission shedding.
func (sv *Server) degraded() bool {
	for _, h := range sv.health {
		if h.state != healthHealthy {
			return true
		}
	}
	return false
}

// bumpEpoch advances the board-health generation and pushes it into the
// planner's plan-cache key, invalidating every memoized plan.
func (sv *Server) bumpEpoch() {
	sv.healthEpoch++
	if p, ok := sv.planner.(interface{ SetHealthEpoch(uint64) }); ok {
		p.SetHealthEpoch(sv.healthEpoch)
	}
}

// setHealth transitions one board's state, bumping the epoch and
// emitting telemetry.
func (sv *Server) setHealth(board string, to int, at sim.Time) {
	h := sv.health[board]
	if h == nil || h.state == to {
		return
	}
	from := h.state
	h.state = to
	sv.bumpEpoch()
	if sv.tel != nil {
		sv.tel.BoardHealthChanged(board, healthName(from), healthName(to), at)
	}
	// An admission group staged under the old health view must not submit
	// as one unit onto a changed board set: dissolve it, admitting each
	// member individually against the new epoch (no-op with no open group).
	sv.disbandBatch()
	// The surviving board set changes what a group plan can co-execute;
	// reopen the staging gate and let the next group re-decide.
	sv.reprobeBatching()
}

// markBoardFailed records a task loss on a board: the board goes down,
// leaves the EST tables, and a probe is scheduled after an exponential
// backoff. When the backoff expires the board re-enters planning as
// suspect (probation); if it fails again the streak doubles the next
// backoff — flapping boards are probed geometrically less often.
func (sv *Server) markBoardFailed(board string, at sim.Time) {
	h := sv.health[board]
	if h == nil || h.state == healthDown {
		return // already known-down; one episode, one transition
	}
	h.failStreak++
	h.deviations = 0
	h.cleanRuns = 0
	sv.boardDownEvents++
	sv.setHealth(board, healthDown, at)
	backoff := backoffBaseMS * float64(int(1)<<min(h.failStreak-1, 5))
	if backoff > backoffCapMS {
		backoff = backoffCapMS
	}
	sv.sim.After(sim.Duration(backoff), func() {
		if h.state == healthDown {
			h.cleanRuns = 0
			sv.setHealth(board, healthSuspect, sv.sim.Now())
		}
	})
}

// observeCompletion is the monitor half of Fig. 2's feedback loop
// applied to faults: it compares each kernel's observed end-to-end
// progress against the plan's prediction. Sustained deviation marks the
// board suspect; sustained accuracy clears probation.
func (sv *Server) observeCompletion(board string, predictedMS, observedMS float64, at sim.Time) {
	h := sv.health[board]
	if h == nil || h.state == healthDown {
		return
	}
	if observedMS > deviationFactor*predictedMS && observedMS-predictedMS > deviationAbsMS {
		h.deviations++
		h.cleanRuns = 0
		if h.deviations >= deviationTrip && h.state == healthHealthy {
			sv.setHealth(board, healthSuspect, at)
		}
		return
	}
	if h.deviations > 0 {
		h.deviations--
	}
	h.cleanRuns++
	if h.state == healthSuspect && h.cleanRuns >= probationRuns {
		h.failStreak = 0
		sv.setHealth(board, healthHealthy, at)
	}
}

// kernelFailed is a task's TaskFailed path: the board just lost this
// kernel. Mark the board, then either re-place the kernel on surviving
// capacity or — once the retry budget is spent or no device can host
// it — drop the request. The re-placement is written to the request's
// own assign slot, never the shared immutable plan.
func (r *request) kernelFailed(ki int32, board string, at sim.Time) {
	sv := r.sv
	if r.done {
		return
	}
	sv.taskFailures++
	sv.markBoardFailed(board, at)
	drop := func() {
		sv.failedRequests++
		r.finishRequest(false)
	}
	if r.retries >= maxKernelRetries {
		drop()
		return
	}
	r.retries++
	sv.retries++
	if r.span != nil {
		r.span.Retries = r.retries
	}
	kernel := sv.pi.names[ki]
	if sv.tel != nil {
		sv.tel.TaskRetry(board, kernel, at)
	}
	p, ok := sv.planner.(interface {
		PlaceKernel(kernel string, devices []sched.DeviceState) (*sched.Assignment, error)
	})
	if !ok {
		drop()
		return
	}
	a, err := p.PlaceKernel(kernel, sv.deviceStates())
	if err != nil {
		drop()
		return
	}
	r.assign[ki] = a
	if a.Impl.Platform == device.FPGA {
		sv.intended[a.Device] = a.Impl.ID
	}
	r.submit(ki)
	// submit just swapped in a fresh kernel record for the retry attempt;
	// tag it so stage attribution can carve the failure→restart window
	// out as retry time.
	if r.span != nil {
		if ks := r.ks[ki]; ks != nil {
			ks.Retried = true
			ks.RetryFromMS = float64(at)
		}
	}
}
