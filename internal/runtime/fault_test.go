package runtime

import (
	"fmt"
	"math"
	"testing"

	"poly/internal/cluster"
	"poly/internal/fault"
	"poly/internal/parallel"
	"poly/internal/sim"
)

// sameServe asserts two runs of the same trace are bit-identical:
// request accounting, fault counters, energy, latency samples, and the
// power series. The fault layer's transparency and determinism tests
// both reduce to this comparison.
func sameServe(t *testing.T, label string, a, b Result, latA, latB []float64) {
	t.Helper()
	if a.Arrivals != b.Arrivals || a.Completed != b.Completed ||
		a.Measured != b.Measured || a.Violations != b.Violations ||
		a.PlanErrors != b.PlanErrors {
		t.Fatalf("%s: request accounting diverged:\n  a: %+v\n  b: %+v", label, a, b)
	}
	if a.Shed != b.Shed || a.Retries != b.Retries || a.TaskFailures != b.TaskFailures ||
		a.FailedRequests != b.FailedRequests || a.BoardDownEvents != b.BoardDownEvents {
		t.Fatalf("%s: fault accounting diverged: shed %d/%d retries %d/%d failures %d/%d dropped %d/%d down %d/%d",
			label, a.Shed, b.Shed, a.Retries, b.Retries, a.TaskFailures, b.TaskFailures,
			a.FailedRequests, b.FailedRequests, a.BoardDownEvents, b.BoardDownEvents)
	}
	if a.GPUTasks != b.GPUTasks || a.FPGATasks != b.FPGATasks || a.Reconfigs != b.Reconfigs {
		t.Fatalf("%s: task mix diverged: GPU %d/%d, FPGA %d/%d, reconfigs %d/%d",
			label, a.GPUTasks, b.GPUTasks, a.FPGATasks, b.FPGATasks, a.Reconfigs, b.Reconfigs)
	}
	if math.Float64bits(a.EnergyMJ) != math.Float64bits(b.EnergyMJ) ||
		math.Float64bits(a.DurationMS) != math.Float64bits(b.DurationMS) {
		t.Fatalf("%s: energy accounting diverged: %.9f mJ / %.3f ms vs %.9f mJ / %.3f ms",
			label, a.EnergyMJ, a.DurationMS, b.EnergyMJ, b.DurationMS)
	}
	if len(latA) != len(latB) {
		t.Fatalf("%s: latency sample counts diverged: %d vs %d", label, len(latA), len(latB))
	}
	for i := range latA {
		if math.Float64bits(latA[i]) != math.Float64bits(latB[i]) {
			t.Fatalf("%s: latency sample %d diverged: %v vs %v", label, i, latA[i], latB[i])
		}
	}
	if a.Power.Len() != b.Power.Len() {
		t.Fatalf("%s: power series lengths diverged: %d vs %d", label, a.Power.Len(), b.Power.Len())
	}
	for i := range a.Power.Times {
		if a.Power.Times[i] != b.Power.Times[i] ||
			math.Float64bits(a.Power.Values[i]) != math.Float64bits(b.Power.Values[i]) {
			t.Fatalf("%s: power series diverged at %d", label, i)
		}
	}
}

// TestServeFaultsDisabledEquivalence replays one Poisson trace through
// three sessions — no fault config, a zero-rate config, and an armed
// injector whose script only targets a nonexistent board — and requires
// all three to be bit-identical. The third session exercises every hook
// (OnFail wiring, ExecScale calls, the deviation monitor, health-gated
// admission) with the injector returning neutral answers, so any
// perturbation the fault layer leaks into a fault-free run fails here.
func TestServeFaultsDisabledEquivalence(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 20000.0
		seed       = 7
	)
	warm := 0.2 * durationMS

	run := func(cfg *fault.Config) (Result, []float64) {
		sv := polySession(t, b, -1, Options{WarmupMS: warm, Faults: cfg})
		NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
		return sv.Collect(), sv.LatencySamples()
	}

	resOff, latOff := run(nil)
	resZero, latZero := run(&fault.Config{Seed: seed})
	resInert, latInert := run(&fault.Config{Seed: seed, Script: []fault.Window{
		{Board: "no-such-board", Kind: fault.Failure, Start: 0, End: sim.Time(durationMS)},
	}})

	sameServe(t, "zero-rate config vs disabled", resZero, resOff, latZero, latOff)
	sameServe(t, "inert armed injector vs disabled", resInert, resOff, latInert, latOff)
	if resInert.Shed+resInert.Retries+resInert.TaskFailures+resInert.FailedRequests+resInert.BoardDownEvents != 0 {
		t.Fatalf("inert injector produced fault accounting: %+v", resInert)
	}
}

// TestServeUnderBoardFailure stages a full gpu0 outage mid-run at 40 RPS
// and requires graceful degradation: the monitor must notice the board
// (down transitions observed), lost kernels must be re-placed on the
// survivors, the accounting must balance (every arrival is completed,
// shed, dropped, or a plan error — never lost), and the tail of the
// admitted population must still meet the QoS criterion (at most 1 %
// violations, the same test MaxThroughputRPS applies).
func TestServeUnderBoardFailure(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 20000.0
		seed       = 7
	)
	cfg := &fault.Config{Seed: seed, Script: []fault.Window{
		{Board: "gpu0", Kind: fault.Failure, Start: 6000, End: 10000},
	}}
	sv := polySession(t, b, -1, Options{WarmupMS: 0.2 * durationMS, Faults: cfg})
	NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
	res := sv.Collect()

	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.TaskFailures == 0 || res.Retries == 0 {
		t.Fatalf("outage left no trace: %d task failures, %d retries", res.TaskFailures, res.Retries)
	}
	if res.BoardDownEvents == 0 {
		t.Fatal("monitor never marked the failed board down")
	}
	if got := res.Arrivals - res.Completed - res.Shed - res.FailedRequests - res.PlanErrors; got != 0 {
		t.Fatalf("accounting leak: %d arrivals unaccounted for (%+v)", got, res)
	}
	if ratio := res.ViolationRatio(); ratio > 0.01 {
		t.Fatalf("admitted tail broke the bound: violation ratio %.4f (p99 %.2f ms, bound %.0f ms)",
			ratio, res.P99MS, res.BoundMS)
	}
}

// TestServeFaultDeterminismAcrossPools runs the same three chaos-preset
// sessions under worker pools of size 1 and 4 and requires bit-identical
// results. Fault plans are pregenerated per board from the scenario seed
// and each session owns its own simulator, so pool scheduling order must
// never leak into a run's outcome.
func TestServeFaultDeterminismAcrossPools(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 12000.0
		sessions   = 3
	)

	type outcome struct {
		res Result
		lat []float64
	}
	runAll := func(workers int) []outcome {
		out, err := parallel.MapN(workers, sessions, func(i int) (outcome, error) {
			cfg, err := fault.Preset("chaos", 11+int64(i))
			if err != nil {
				return outcome{}, err
			}
			sv, _, err := b.NewSession(Options{WarmupMS: 0.2 * durationMS, Faults: &cfg})
			if err != nil {
				return outcome{}, err
			}
			NewWorkload(int64(100+i)).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
			return outcome{res: sv.Collect(), lat: sv.LatencySamples()}, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}

	serial := runAll(1)
	pooled := runAll(4)
	sawFaults := false
	for i := range serial {
		sameServe(t, fmt.Sprintf("session %d workers 1 vs 4", i),
			serial[i].res, pooled[i].res, serial[i].lat, pooled[i].lat)
		if r := serial[i].res; r.TaskFailures+r.Retries+r.Shed+r.BoardDownEvents > 0 {
			sawFaults = true
		}
	}
	if !sawFaults {
		t.Fatal("chaos preset perturbed nothing; the determinism test lost its teeth")
	}
}
