package runtime

import (
	"testing"

	"poly/internal/cluster"
	"poly/internal/sched"
)

// Ablations: knock out one design choice at a time and verify the claim
// that motivated it. These double as the "which mechanism buys what"
// record for DESIGN.md §6.

// ablationSession serves 25 RPS of ASR on a Heter-Poly node for 20 s and
// returns the result, after applying mutate to the fresh server.
func ablationSession(t *testing.T, mutate func(*Server)) Result {
	t.Helper()
	b := benches(t, "ASR")[cluster.HeterPoly]
	sv, _, err := b.NewSession(Options{WarmupMS: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(sv)
	}
	w := NewWorkload(9)
	w.InjectPoisson(sv, 25, 0, 20000)
	return sv.Collect()
}

// TestAblationEnergyStep: the per-plan effect of Step 2 is covered in
// internal/sched (loose bounds reduce planned energy, never violate the
// bound). At the node level this ablation pins the scheduler in
// throughput mode (energy step muted, occupancy-weighted placement) and
// verifies the serving system stays correct and QoS-compliant in both
// regimes — the two operating points the governor switches between.
func TestAblationEnergyStep(t *testing.T) {
	base := ablationSession(t, nil)
	pinned := ablationSession(t, func(sv *Server) {
		sc := sv.planner.(*sched.Scheduler)
		sc.SetThroughputMode(true)
		sc.SetSlackFactor(0.1)
		sv.opts.Governor = false // freeze the mode for the whole run
	})
	t.Logf("avg power: adaptive %.1f W, pinned throughput mode %.1f W", base.AvgPowerW, pinned.AvgPowerW)
	for name, r := range map[string]Result{"adaptive": base, "pinned": pinned} {
		if r.PlanErrors != 0 || r.Completed != r.Arrivals {
			t.Fatalf("%s: broken serving: %+v", name, r)
		}
	}
	if base.ViolationRatio() > 0.02 {
		t.Fatalf("adaptive mode violates QoS: %.2f%%", 100*base.ViolationRatio())
	}
	// The headline: the adaptive energy machinery (Step 2 + governor)
	// halves mid-load power relative to the pinned throughput regime.
	if base.AvgPowerW >= 0.8*pinned.AvgPowerW {
		t.Fatalf("adaptive mode saved too little: %.1f vs %.1f W", base.AvgPowerW, pinned.AvgPowerW)
	}
}

// TestAblationGovernor: with the governor disabled the node never parks
// idle boards, so a bursty low-load pattern costs more energy.
func TestAblationGovernor(t *testing.T) {
	run := func(governor bool) Result {
		b := benches(t, "ASR")[cluster.HeterPoly]
		sv, _, err := b.NewSession(Options{WarmupMS: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if !governor {
			sv.opts.Governor = false // first tick sees the flag and stops
		}
		w := NewWorkload(4)
		// One short burst, then a long idle tail.
		w.InjectPoisson(sv, 20, 0, 4000)
		sv.Inject(40000)
		return sv.Collect()
	}
	with := run(true)
	without := run(false)
	t.Logf("energy: governor on %.0f J, off %.0f J", with.EnergyMJ/1000, without.EnergyMJ/1000)
	if with.EnergyMJ >= without.EnergyMJ {
		t.Fatalf("governor saved nothing: %.0f vs %.0f mJ", with.EnergyMJ, without.EnergyMJ)
	}
}

// TestAblationProvisioning: without background bitstream provisioning,
// requests pay foreground reconfigurations and the tail inflates at the
// start of the run.
func TestAblationProvisioning(t *testing.T) {
	// The governor drives provisioning, so compare Poly's cold-start p99
	// against a run whose boards were pre-provisioned by a warmup burst.
	b := benches(t, "ASR")[cluster.HeterPoly]

	cold, err := b.ServeConstantLoad(25, 8000, 13) // includes cold start in warmup
	if err != nil {
		t.Fatal(err)
	}
	// Long run: cold-start effects amortized and provisioning complete.
	warm, err := b.ServeConstantLoad(25, 30000, 13)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("p99: short-horizon %.1f ms, long-horizon %.1f ms", cold.P99MS, warm.P99MS)
	if warm.P99MS > b.Prog.LatencyBoundMS {
		t.Fatalf("steady-state p99 %.1f violates the bound", warm.P99MS)
	}
}
