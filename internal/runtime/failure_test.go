package runtime

import (
	"testing"

	"poly/internal/cluster"
	"poly/internal/sim"
)

// Failure-injection coverage promised in DESIGN.md §7.

// TestPowerCapTooSmall: a cap below any board's provisioning power fails
// at provisioning, not at serving.
func TestPowerCapTooSmall(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	b.PowerCapW = 10
	if _, _, err := b.NewSession(Options{}); err == nil {
		t.Fatal("10 W cap provisioned accelerators")
	}
}

// TestBurstIntoColdNode: a burst that arrives before any bitstream is
// resident must still complete every request (paying reconfigurations),
// with zero plan errors.
func TestBurstIntoColdNode(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	sv, _, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		sv.Inject(sim.Time(i)) // 30 requests in 30 ms into a cold node
	}
	res := sv.Collect()
	if res.Completed != 30 || res.PlanErrors != 0 {
		t.Fatalf("cold burst mishandled: %+v", res)
	}
}

// TestLoneFPGAReconfigurationChurn: a single-board FPGA node serving a
// multi-kernel app must serialize through reconfigurations without
// deadlock or lost requests.
func TestLoneFPGAReconfigurationChurn(t *testing.T) {
	b := benches(t, "ASR")[cluster.HomoFPGA]
	b.PowerCapW = 55 // exactly one 7V3
	sv, node, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(node.FPGAs) != 1 {
		t.Fatalf("expected a single board, got %d", len(node.FPGAs))
	}
	w := NewWorkload(2)
	w.InjectPoisson(sv, 1, 0, 10000)
	res := sv.Collect()
	if res.Completed != res.Arrivals || res.PlanErrors != 0 {
		t.Fatalf("lone-board serving lost requests: %+v", res)
	}
	if res.Reconfigs == 0 {
		t.Fatal("a 4-kernel DAG on one board must reconfigure")
	}
}

// TestZeroLoadSession: collecting a session with no arrivals must not
// hang or divide by zero.
func TestZeroLoadSession(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	sv, _, err := b.NewSession(Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := sv.Collect()
	if res.Completed != 0 || res.ThroughputRPS != 0 {
		t.Fatalf("empty session result: %+v", res)
	}
}
