package runtime

import (
	"fmt"
	"testing"

	"poly/internal/cluster"
	"poly/internal/fault"
	"poly/internal/parallel"
	"poly/internal/sim"
)

// TestServeBatchingDisabledEquivalence replays one Poisson trace through
// three sessions — the plain options, an explicit BatchWaitMS of zero,
// and a zero wait with a nonzero BatchCap — and requires all three to be
// bit-identical. BatchWaitMS == 0 must mean the staging stage does not
// exist, not that it exists with a zero hold: the whole disabled option
// surface has to be transparent.
func TestServeBatchingDisabledEquivalence(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 20000.0
		seed       = 7
	)
	warm := 0.2 * durationMS

	run := func(opts Options) (Result, []float64) {
		opts.WarmupMS = warm
		sv := polySession(t, b, -1, opts)
		NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
		return sv.Collect(), sv.LatencySamples()
	}

	resOff, latOff := run(Options{})
	resZero, latZero := run(Options{BatchWaitMS: 0})
	resCap, latCap := run(Options{BatchWaitMS: 0, BatchCap: 64})

	sameServe(t, "explicit zero wait vs default", resZero, resOff, latZero, latOff)
	sameServe(t, "zero wait with cap vs default", resCap, resOff, latCap, latOff)
	if resCap.BatchGroups+resCap.BatchedRequests+resCap.BatchDisbands != 0 {
		t.Fatalf("disabled batcher recorded batch accounting: %+v", resCap)
	}
	if resCap.GPULaunches == 0 && resCap.GPUTasks > 0 {
		t.Fatal("launch counter not wired: GPU tasks ran but zero launches recorded")
	}
}

// TestServeBatchedFormation drives a Poisson load near the QoS knee —
// where bursts put consecutive arrivals inside the staging window but
// the node is not yet oversubscribed — and requires the batcher to
// actually form multi-request groups, and for those groups to pay off:
// more GPU kernel executions per physical launch, and a tail still
// inside the 1% QoS violation target, with the request accounting
// balancing. (Raw launch counts are not comparable across the two runs:
// guaranteed group fill makes batched GPU variants cheaper, so the
// planner legitimately shifts more work onto the GPU.)
func TestServeBatchedFormation(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 80.0
		durationMS = 8000.0
	)
	run := func(opts Options) Result {
		opts.WarmupMS = 1600
		sv := polySession(t, b, -1, opts)
		NewWorkload(1).InjectPoisson(sv, rps, 0, durationMS)
		return sv.Collect()
	}

	off := run(Options{})
	on := run(Options{BatchWaitMS: 4})

	if on.BatchGroups == 0 || on.MaxBatchSize < 2 {
		t.Fatalf("no groups formed: %d groups, max size %d", on.BatchGroups, on.MaxBatchSize)
	}
	if on.BatchedRequests <= on.BatchGroups {
		t.Fatalf("no multi-request groups: %d requests over %d groups",
			on.BatchedRequests, on.BatchGroups)
	}
	if on.MeanHoldMS <= 0 || on.MeanHoldMS > 4 {
		t.Fatalf("mean hold %.3f ms outside (0, BatchWaitMS]", on.MeanHoldMS)
	}
	if off.BatchGroups != 0 || off.GPULaunches == 0 {
		t.Fatalf("baseline run malformed: %+v", off)
	}
	if on.LaunchAmortization() <= off.LaunchAmortization() {
		t.Fatalf("amortization did not improve: %.3f on vs %.3f off",
			on.LaunchAmortization(), off.LaunchAmortization())
	}
	if limit := max(off.ViolationRatio(), 0.01); on.ViolationRatio() > limit {
		t.Fatalf("batching broke the tail: violation ratio %.4f on vs %.4f off (limit %.4f)",
			on.ViolationRatio(), off.ViolationRatio(), limit)
	}
	for _, r := range []Result{off, on} {
		if got := r.Arrivals - r.Completed - r.Shed - r.FailedRequests - r.PlanErrors; got != 0 {
			t.Fatalf("accounting leak: %d arrivals unaccounted for (%+v)", got, r)
		}
	}
}

// TestServeBatchedDeterminism requires a batched run to be a pure
// function of the arrival trace: the same seed twice must be
// bit-identical, and so must the same set of sessions executed under
// worker pools of size 1 and 4 — staging runs inside each session's own
// single-threaded simulator, so pool scheduling must never show through.
func TestServeBatchedDeterminism(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 300.0
		durationMS = 6000.0
		sessions   = 3
	)
	opts := Options{WarmupMS: 1000, BatchWaitMS: 4}

	type outcome struct {
		res Result
		lat []float64
	}
	one := func(seed int64) outcome {
		sv := polySession(t, b, -1, opts)
		NewWorkload(seed).InjectPoisson(sv, rps, 0, durationMS)
		return outcome{res: sv.Collect(), lat: sv.LatencySamples()}
	}

	a, c := one(11), one(11)
	sameServe(t, "same seed twice", a.res, c.res, a.lat, c.lat)
	if a.res.BatchGroups != c.res.BatchGroups || a.res.BatchedRequests != c.res.BatchedRequests ||
		a.res.MaxBatchSize != c.res.MaxBatchSize || a.res.GPULaunches != c.res.GPULaunches {
		t.Fatalf("batch accounting diverged:\n  a: %+v\n  b: %+v", a.res, c.res)
	}
	if a.res.BatchGroups == 0 {
		t.Fatal("determinism test formed no groups; it lost its teeth")
	}

	runAll := func(workers int) []outcome {
		out, err := parallel.MapN(workers, sessions, func(i int) (outcome, error) {
			return one(int64(100 + i)), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := runAll(1)
	pooled := runAll(4)
	for i := range serial {
		sameServe(t, fmt.Sprintf("session %d workers 1 vs 4", i),
			serial[i].res, pooled[i].res, serial[i].lat, pooled[i].lat)
		if serial[i].res.GPULaunches != pooled[i].res.GPULaunches {
			t.Fatalf("session %d launch counts diverged: %d vs %d",
				i, serial[i].res.GPULaunches, pooled[i].res.GPULaunches)
		}
	}
}

// TestBatchDisbandPaths is the table of ways an open group can dissolve
// or fail mid-hold. Every row requires the one invariant the batcher must
// never break: each arrival ends exactly one way (completed, shed,
// dropped, or a plan error) — a staged request is never lost.
func TestBatchDisbandPaths(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	cases := []struct {
		name       string
		rps        float64
		durationMS float64
		opts       Options
		faults     []fault.Window
		check      func(t *testing.T, res Result)
	}{
		{
			// A gpu0 outage lands while groups are continuously open: the
			// failure's health transition must disband the in-flight group
			// (members re-admitted individually) and the run must still
			// degrade gracefully.
			name: "board failure mid-hold",
			rps:  300, durationMS: 12000,
			opts:   Options{BatchWaitMS: 4},
			faults: []fault.Window{{Board: "gpu0", Kind: fault.Failure, Start: 4000, End: 7000}},
			check: func(t *testing.T, res Result) {
				if res.BatchDisbands == 0 {
					t.Fatal("health transition never disbanded an open group")
				}
				if res.BoardDownEvents == 0 || res.TaskFailures == 0 {
					t.Fatalf("outage left no trace: %+v", res)
				}
				if res.Completed == 0 {
					t.Fatal("nothing completed")
				}
			},
		},
		{
			// Degradation window with a recovering board: suspect/healthy
			// probation transitions keep disbanding groups; batching must
			// compose with shedding (each shed member accounted once).
			name: "degraded admission during hold",
			rps:  300, durationMS: 12000,
			opts:   Options{BatchWaitMS: 4},
			faults: []fault.Window{{Board: "gpu0", Kind: fault.Failure, Start: 3000, End: 4000}},
			check: func(t *testing.T, res Result) {
				if res.BatchDisbands == 0 {
					t.Fatal("no disbands observed")
				}
				if res.BatchGroups == 0 {
					t.Fatal("batching never resumed after the episode")
				}
			},
		},
		{
			// Max-wait expiry racing a cap-full flush at the same instant:
			// the generation check must make whichever event runs second
			// inert. Two arrivals, the second landing exactly on the first's
			// staging deadline with a cap of two.
			name: "maxwait expiry racing full flush",
			rps:  0, durationMS: 0, // manual injection below
			opts: Options{BatchWaitMS: 5, BatchCap: 2},
			check: func(t *testing.T, res Result) {
				if res.Arrivals != 2 || res.Completed != 2 {
					t.Fatalf("want 2 arrivals completed, got %+v", res)
				}
				if res.BatchedRequests != 2 {
					t.Fatalf("double-flush or lost member: %d batched requests, want 2",
						res.BatchedRequests)
				}
				if res.BatchGroups < 1 || res.BatchGroups > 2 {
					t.Fatalf("implausible group count %d", res.BatchGroups)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := tc.opts
			opts.WarmupMS = 1000
			if tc.faults != nil {
				opts.Faults = &fault.Config{Seed: 7, Script: tc.faults}
			}
			sv := polySession(t, b, -1, opts)
			if tc.rps > 0 {
				NewWorkload(7).InjectPoisson(sv, tc.rps, 0, sim.Time(tc.durationMS))
			} else {
				// The racing row: deadline of the first arrival is t+5 (the
				// bound's slack floor is far above BatchWaitMS), and the
				// second arrival fills the cap at exactly that instant.
				sv.Inject(10)
				sv.Inject(15)
			}
			res := sv.Collect()
			if got := res.Arrivals - res.Completed - res.Shed - res.FailedRequests - res.PlanErrors; got != 0 {
				t.Fatalf("accounting leak: %d arrivals unaccounted for (%+v)", got, res)
			}
			tc.check(t, res)
		})
	}
}
