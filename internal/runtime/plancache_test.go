package runtime

import (
	"math"
	"testing"

	"poly/internal/cluster"
	"poly/internal/sched"
	"poly/internal/sim"
)

// polySession builds a Heter-Poly serving session whose scheduler has the
// given plan-cache capacity (< 0 keeps the default). NewSession hides the
// planner, so equivalence tests wire the server by hand.
func polySession(tb testing.TB, b Bench, cacheCap int, opts Options) *Server {
	tb.Helper()
	plan, err := cluster.Provision(cluster.Config{
		Arch: cluster.HeterPoly, Setting: b.Setting, PowerCapW: 500,
	})
	if err != nil {
		tb.Fatal(err)
	}
	node := cluster.Build(sim.New(), plan)
	pl, err := sched.New(b.Prog, b.Spaces)
	if err != nil {
		tb.Fatal(err)
	}
	if cacheCap >= 0 {
		pl.SetPlanCacheCapacity(cacheCap)
	}
	opts.Governor = true
	sv, err := NewServer(node, b.Prog, pl, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return sv
}

// TestServeCachedMatchesUncached replays the same Poisson trace through
// two identical sessions — plan cache on vs off — and requires the runs to
// be indistinguishable: bit-identical latency samples, power series, task
// mix, reconfiguration count, and energy. This is the end-to-end form of
// the memoization soundness contract: if any cached plan differed from
// cold planning, the event-driven simulation would diverge and some series
// below would split.
func TestServeCachedMatchesUncached(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 20000.0
		seed       = 7
	)
	warm := 0.2 * durationMS

	run := func(cacheCap int) (Result, []float64, int, int) {
		sv := polySession(t, b, cacheCap, Options{WarmupMS: warm})
		NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
		res := sv.Collect()
		h, m := sv.PlannerCacheStats()
		return res, sv.LatencySamples(), h, m
	}

	resC, latC, hits, misses := run(-1) // default cache
	resU, latU, hu, mu := run(0)        // disabled
	if hu != 0 || mu != 0 {
		t.Fatalf("uncached session recorded cache traffic: hits=%d misses=%d", hu, mu)
	}

	if resC.Arrivals != resU.Arrivals || resC.Completed != resU.Completed ||
		resC.Measured != resU.Measured || resC.Violations != resU.Violations ||
		resC.PlanErrors != resU.PlanErrors {
		t.Fatalf("request accounting diverged:\n  cached:   %+v\n  uncached: %+v", resC, resU)
	}
	if resC.GPUTasks != resU.GPUTasks || resC.FPGATasks != resU.FPGATasks ||
		resC.Reconfigs != resU.Reconfigs {
		t.Fatalf("task mix diverged: GPU %d/%d, FPGA %d/%d, reconfigs %d/%d",
			resC.GPUTasks, resU.GPUTasks, resC.FPGATasks, resU.FPGATasks,
			resC.Reconfigs, resU.Reconfigs)
	}
	if math.Float64bits(resC.EnergyMJ) != math.Float64bits(resU.EnergyMJ) ||
		math.Float64bits(resC.DurationMS) != math.Float64bits(resU.DurationMS) {
		t.Fatalf("energy accounting diverged: %.9f mJ / %.3f ms vs %.9f mJ / %.3f ms",
			resC.EnergyMJ, resC.DurationMS, resU.EnergyMJ, resU.DurationMS)
	}

	if len(latC) != len(latU) {
		t.Fatalf("latency sample counts diverged: %d vs %d", len(latC), len(latU))
	}
	// Samples stay in insertion order (Percentile never reorders them),
	// so the same trace yields the same sequence; compare bitwise.
	for i := range latC {
		if math.Float64bits(latC[i]) != math.Float64bits(latU[i]) {
			t.Fatalf("latency sample %d diverged: %v vs %v", i, latC[i], latU[i])
		}
	}

	if resC.Power.Len() != resU.Power.Len() {
		t.Fatalf("power series lengths diverged: %d vs %d", resC.Power.Len(), resU.Power.Len())
	}
	for i := range resC.Power.Times {
		if resC.Power.Times[i] != resU.Power.Times[i] ||
			math.Float64bits(resC.Power.Values[i]) != math.Float64bits(resU.Power.Values[i]) {
			t.Fatalf("power series diverged at %d: (%v, %v) vs (%v, %v)", i,
				resC.Power.Times[i], resC.Power.Values[i],
				resU.Power.Times[i], resU.Power.Values[i])
		}
	}

	// The trace must actually exercise the cache. (A Poisson process
	// presents continuously-valued backlogs, so hits come only from the
	// recurring idle/light signatures — the >50 % steady-state hit-rate
	// requirement is asserted under constant-interval load, where the
	// admission-time state genuinely recurs; see TestServeConstantLoadHitRate.)
	if hits == 0 {
		t.Fatalf("cached session never hit (hits=%d misses=%d)", hits, misses)
	}
}

// TestServeConstantLoadHitRate checks the cache earns its keep on the
// workload it targets: a steady constant-interval load, where after warmup
// the node presents a recurring admission-time signature. The paper's
// motivation study drives exactly this shape ("requests ... sent in a
// constant interval").
func TestServeConstantLoadHitRate(t *testing.T) {
	b := benches(t, "ASR")[cluster.HeterPoly]
	sv := polySession(t, b, -1, Options{WarmupMS: 4000})
	NewWorkload(1).InjectConstant(sv, 40, 0, 20000)
	res := sv.Collect()
	if res.PlanErrors != 0 {
		t.Fatalf("%d plan errors", res.PlanErrors)
	}
	hits, misses := sv.PlannerCacheStats()
	if hits+misses == 0 {
		t.Fatal("nothing planned")
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.5 {
		t.Fatalf("steady-state hit rate %.2f below 0.5 (hits=%d misses=%d)", rate, hits, misses)
	}
}

// BenchmarkServeSteadyState measures one whole constant-load serving run —
// admission, planning, device simulation, and drain — which is the
// composite the plan cache exists to speed up. hitRate reports the plan
// cache's share of planning calls served from memory.
func BenchmarkServeSteadyState(b *testing.B) {
	bench := benches(b, "ASR")[cluster.HeterPoly]
	const (
		rps        = 40.0
		durationMS = 5000.0
	)
	var hits, misses int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := polySession(b, bench, -1, Options{WarmupMS: 1000})
		NewWorkload(1).InjectConstant(sv, rps, 0, sim.Time(durationMS))
		res := sv.Collect()
		if res.PlanErrors != 0 {
			b.Fatalf("%d plan errors", res.PlanErrors)
		}
		hits, misses = sv.PlannerCacheStats()
	}
	b.StopTimer()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hitRate")
	}
}

// BenchmarkServeBatchedHighLoad is BenchmarkServeHighLoad with the
// admission batcher on: the same 5× saturation load, now flowing through
// the staging stage (group formation, flush timers, group planning). It
// gates the batcher's own overhead — the staged path must not cost more
// than the launch sharing it buys. amort reports GPU kernel executions
// per physical launch.
func BenchmarkServeBatchedHighLoad(b *testing.B) {
	bench := benches(b, "ASR")[cluster.HeterPoly]
	const (
		rps        = 200.0
		durationMS = 5000.0
	)
	var last Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := polySession(b, bench, -1, Options{WarmupMS: 1000, BatchWaitMS: 4})
		NewWorkload(1).InjectConstant(sv, rps, 0, sim.Time(durationMS))
		last = sv.Collect()
		if last.PlanErrors != 0 {
			b.Fatalf("%d plan errors", last.PlanErrors)
		}
	}
	b.StopTimer()
	if last.GPULaunches > 0 {
		b.ReportMetric(last.LaunchAmortization(), "amort")
	}
}

// BenchmarkServeHighLoad is the saturation companion to SteadyState: 5×
// the arrival rate, so queues stay deep, GPU batches fill, and the
// admission-time device signature varies far more (lower cache hit rate,
// more cold planning). It gates the cold-path planner and the event core
// under backlog, where the steady-state benchmark mostly gates the cache.
func BenchmarkServeHighLoad(b *testing.B) {
	bench := benches(b, "ASR")[cluster.HeterPoly]
	const (
		rps        = 200.0
		durationMS = 5000.0
	)
	var hits, misses int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv := polySession(b, bench, -1, Options{WarmupMS: 1000})
		NewWorkload(1).InjectConstant(sv, rps, 0, sim.Time(durationMS))
		res := sv.Collect()
		if res.PlanErrors != 0 {
			b.Fatalf("%d plan errors", res.PlanErrors)
		}
		hits, misses = sv.PlannerCacheStats()
	}
	b.StopTimer()
	if hits+misses > 0 {
		b.ReportMetric(float64(hits)/float64(hits+misses), "hitRate")
	}
}
