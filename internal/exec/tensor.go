// Package exec provides functional executors for Poly's nine parallel
// patterns over host tensors. The device simulators decide *when* a
// kernel finishes and at what power; this package is what the kernel
// *computes* — the applications in internal/apps build their reference
// implementations (LSTM cells, Black-Scholes, Reed-Solomon, arithmetic
// coding, …) out of these executors, so correctness is testable
// end-to-end.
//
// Executors follow OpenCL's execution model loosely: work is split into
// work-groups processed concurrently (Ctx.WorkGroup, Ctx.Parallel), and
// each work-item applies the elemental function.
package exec

import (
	"fmt"
	"sync"
)

// Tensor is a dense row-major float64 collection with a logical shape.
type Tensor struct {
	Data  []float64
	Shape []int
}

// NewTensor allocates a zero tensor with the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("exec: non-positive dimension %d", d))
		}
		n *= d
	}
	return &Tensor{Data: make([]float64, n), Shape: append([]int(nil), shape...)}
}

// FromSlice wraps data in a 1-D tensor (no copy).
func FromSlice(data []float64) *Tensor {
	return &Tensor{Data: data, Shape: []int{len(data)}}
}

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// At reads the element at the given indices.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set writes the element at the given indices.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("exec: %d indices for %d-D tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("exec: index %d out of range [0,%d)", x, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Data: make([]float64, len(t.Data)), Shape: append([]int(nil), t.Shape...)}
	copy(c.Data, t.Data)
	return c
}

// Ctx configures executor behaviour.
type Ctx struct {
	// WorkGroup is the chunk size work is split into (256 if zero).
	WorkGroup int
	// Parallel runs work-groups on separate goroutines.
	Parallel bool
}

// DefaultCtx runs sequentially with 256-wide work-groups.
var DefaultCtx = Ctx{WorkGroup: 256}

func (c Ctx) workGroup() int {
	if c.WorkGroup <= 0 {
		return 256
	}
	return c.WorkGroup
}

// ForEach runs fn(i) for every i in [0, n), split into work-groups and
// parallelized per the context — the raw NDRange primitive the named
// patterns are built on, exported for application kernels with custom
// index math (convolution windows, coding contexts).
func (c Ctx) ForEach(n int, fn func(i int)) { c.forEach(n, fn) }

// forEach runs fn(i) for i in [0, n), split into work-groups.
func (c Ctx) forEach(n int, fn func(i int)) {
	wg := c.workGroup()
	if !c.Parallel {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var group sync.WaitGroup
	for start := 0; start < n; start += wg {
		end := start + wg
		if end > n {
			end = n
		}
		group.Add(1)
		go func(lo, hi int) {
			defer group.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(start, end)
	}
	group.Wait()
}
