package exec

import (
	"math"
	"testing"
	"testing/quick"
)

func seq(n int) *Tensor {
	t := NewTensor(n)
	for i := range t.Data {
		t.Data[i] = float64(i)
	}
	return t
}

func TestTensorBasics(t *testing.T) {
	m := NewTensor(3, 4)
	if m.Len() != 12 {
		t.Fatalf("len = %d", m.Len())
	}
	m.Set(7, 2, 3)
	if m.At(2, 3) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	c := m.Clone()
	c.Set(9, 0, 0)
	if m.At(0, 0) == 9 {
		t.Fatal("clone shares storage")
	}
	s := FromSlice([]float64{1, 2, 3})
	if s.Len() != 3 || s.At(1) != 2 {
		t.Fatal("FromSlice wrong")
	}
}

func TestTensorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero dim":  func() { NewTensor(0) },
		"bad arity": func() { NewTensor(2, 2).At(1) },
		"bad index": func() { NewTensor(2, 2).At(2, 0) },
		"neg index": func() { NewTensor(2).At(-1) },
		"map len":   func() { DefaultCtx.Map(NewTensor(2), NewTensor(3), func(x float64) float64 { return x }) },
		"zip len": func() {
			DefaultCtx.Zip(NewTensor(2), NewTensor(2), NewTensor(3), func(a, b float64) float64 { return a })
		},
		"scan len":    func() { DefaultCtx.Scan(NewTensor(2), NewTensor(3), func(a, b float64) float64 { return a }) },
		"gather len":  func() { DefaultCtx.Gather(NewTensor(2), NewTensor(4), []int{0}) },
		"scatter len": func() { DefaultCtx.Scatter(NewTensor(4), NewTensor(2), []int{0}) },
		"scatter oob": func() { DefaultCtx.Scatter(NewTensor(2), NewTensor(2), []int{0, 5}) },
		"scatter dup": func() { DefaultCtx.Scatter(NewTensor(4), NewTensor(2), []int{1, 1}) },
		"pack none":   func() { DefaultCtx.Pack() },
		"pack len":    func() { DefaultCtx.Pack(NewTensor(2), NewTensor(3)) },
		"tile 1d":     func() { DefaultCtx.Tile(NewTensor(4), 2, 2) },
		"tile size":   func() { DefaultCtx.Tile(NewTensor(2, 2), 0, 2) },
		"matvec":      func() { DefaultCtx.MatVec(NewTensor(2, 3), NewTensor(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMapAndZip(t *testing.T) {
	in := seq(1000)
	out := NewTensor(1000)
	DefaultCtx.Map(out, in, func(x float64) float64 { return 2 * x })
	for i, v := range out.Data {
		if v != 2*float64(i) {
			t.Fatalf("map[%d] = %v", i, v)
		}
	}
	z := NewTensor(1000)
	DefaultCtx.Zip(z, in, out, func(a, b float64) float64 { return b - a })
	for i, v := range z.Data {
		if v != float64(i) {
			t.Fatalf("zip[%d] = %v", i, v)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	in := seq(10000)
	seqOut, parOut := NewTensor(10000), NewTensor(10000)
	Ctx{WorkGroup: 128}.Map(seqOut, in, math.Sqrt)
	Ctx{WorkGroup: 128, Parallel: true}.Map(parOut, in, math.Sqrt)
	for i := range seqOut.Data {
		if seqOut.Data[i] != parOut.Data[i] {
			t.Fatalf("parallel map diverged at %d", i)
		}
	}
}

func TestReduceMatchesSerial(t *testing.T) {
	in := seq(1537) // not a multiple of the work-group size
	got := Ctx{WorkGroup: 64}.Reduce(in, 0, func(a, x float64) float64 { return a + x })
	want := 1536.0 * 1537 / 2
	if got != want {
		t.Fatalf("reduce = %v, want %v", got, want)
	}
	max := Ctx{WorkGroup: 32}.Reduce(in, math.Inf(-1), math.Max)
	if max != 1536 {
		t.Fatalf("max = %v", max)
	}
	empty := DefaultCtx.Reduce(NewTensor(1), 5, func(a, x float64) float64 { return a + x })
	if empty != 5 {
		t.Fatalf("reduce singleton-zero = %v", empty)
	}
}

func TestScanPrefixSums(t *testing.T) {
	in := FromSlice([]float64{1, 2, 3, 4})
	out := NewTensor(4)
	DefaultCtx.Scan(out, in, func(a, x float64) float64 { return a + x })
	want := []float64{1, 3, 6, 10}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("scan = %v", out.Data)
		}
	}
}

func TestStencil1DAveragesWithClamp(t *testing.T) {
	in := FromSlice([]float64{1, 2, 3, 4, 5})
	out := NewTensor(5)
	DefaultCtx.Stencil1D(out, in, 1, func(w []float64) float64 {
		return (w[0] + w[1] + w[2]) / 3
	})
	// Border clamps: out[0] = (1+1+2)/3.
	if math.Abs(out.Data[0]-4.0/3) > 1e-12 || out.Data[2] != 3 {
		t.Fatalf("stencil = %v", out.Data)
	}
}

func TestStencil2DIdentityAndBlur(t *testing.T) {
	in := NewTensor(4, 4)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	id := NewTensor(4, 4)
	DefaultCtx.Stencil2D(id, in, 1, func(w []float64) float64 { return w[4] })
	for i := range in.Data {
		if id.Data[i] != in.Data[i] {
			t.Fatal("centre-tap stencil must be identity")
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	in := seq(8)
	idx := []int{7, 6, 5, 4, 3, 2, 1, 0}
	g := NewTensor(8)
	DefaultCtx.Gather(g, in, idx)
	if g.Data[0] != 7 || g.Data[7] != 0 {
		t.Fatalf("gather = %v", g.Data)
	}
	s := NewTensor(8)
	DefaultCtx.Scatter(s, g, idx)
	for i := range s.Data {
		if s.Data[i] != in.Data[i] {
			t.Fatalf("scatter∘gather not identity: %v", s.Data)
		}
	}
}

func TestGatherScatterPermutationProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw)
		if n == 0 {
			return true
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		// Fisher-Yates keyed by raw.
		for i := n - 1; i > 0; i-- {
			j := int(raw[i]) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		in := seq(n)
		g, s := NewTensor(n), NewTensor(n)
		DefaultCtx.Gather(g, in, perm)
		DefaultCtx.Scatter(s, g, perm)
		for i := range s.Data {
			if s.Data[i] != in.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineChains(t *testing.T) {
	doubler := func(in *Tensor) *Tensor {
		out := NewTensor(in.Len())
		DefaultCtx.Map(out, in, func(x float64) float64 { return 2 * x })
		return out
	}
	got := DefaultCtx.Pipeline(seq(4), doubler, doubler, doubler)
	if got.Data[3] != 24 {
		t.Fatalf("pipeline = %v", got.Data)
	}
}

func TestTileUntileRoundTrip(t *testing.T) {
	in := NewTensor(5, 7)
	for i := range in.Data {
		in.Data[i] = float64(i)
	}
	tiles := DefaultCtx.Tile(in, 2, 3)
	if len(tiles) != 3*3 {
		t.Fatalf("tiles = %d, want 9", len(tiles))
	}
	back := DefaultCtx.Untile(tiles, 5, 7, 2, 3)
	for i := range in.Data {
		if back.Data[i] != in.Data[i] {
			t.Fatal("tile/untile not identity")
		}
	}
}

func TestPackInterleaves(t *testing.T) {
	a := FromSlice([]float64{1, 2})
	b := FromSlice([]float64{10, 20})
	p := DefaultCtx.Pack(a, b)
	want := []float64{1, 10, 2, 20}
	for i := range want {
		if p.Data[i] != want[i] {
			t.Fatalf("pack = %v", p.Data)
		}
	}
}

func TestMatVec(t *testing.T) {
	m := NewTensor(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	v := FromSlice([]float64{1, 1, 1})
	out := DefaultCtx.MatVec(m, v)
	if out.Data[0] != 6 || out.Data[1] != 15 {
		t.Fatalf("matvec = %v", out.Data)
	}
	par := Ctx{Parallel: true, WorkGroup: 1}.MatVec(m, v)
	if par.Data[0] != 6 || par.Data[1] != 15 {
		t.Fatal("parallel matvec diverged")
	}
}

func TestCtxDefaults(t *testing.T) {
	if (Ctx{}).workGroup() != 256 {
		t.Fatal("default work-group must be 256")
	}
}
