package exec

import "fmt"

// Map applies f to every element of in, writing to out. The two tensors
// must have the same length (shapes may differ).
func (c Ctx) Map(out, in *Tensor, f func(float64) float64) {
	if out.Len() != in.Len() {
		panic(fmt.Sprintf("exec: map length mismatch %d vs %d", out.Len(), in.Len()))
	}
	c.forEach(in.Len(), func(i int) {
		out.Data[i] = f(in.Data[i])
	})
}

// Zip applies a binary elemental function pairwise: out[i] = f(a[i], b[i]).
func (c Ctx) Zip(out, a, b *Tensor, f func(x, y float64) float64) {
	if a.Len() != b.Len() || out.Len() != a.Len() {
		panic("exec: zip length mismatch")
	}
	c.forEach(a.Len(), func(i int) {
		out.Data[i] = f(a.Data[i], b.Data[i])
	})
}

// Reduce combines every element of in into one value with the associative
// combiner f, starting from init. Work-groups reduce locally first, then
// the partials combine serially — the tree/serial structure of Table I.
func (c Ctx) Reduce(in *Tensor, init float64, f func(acc, x float64) float64) float64 {
	wg := c.workGroup()
	n := in.Len()
	var partials []float64
	for start := 0; start < n; start += wg {
		end := start + wg
		if end > n {
			end = n
		}
		acc := init
		for i := start; i < end; i++ {
			acc = f(acc, in.Data[i])
		}
		partials = append(partials, acc)
	}
	if len(partials) == 0 {
		return init
	}
	// Combining partials with f assumes associativity and that init is
	// f's identity; all Table I combiners (add, mul, max) qualify.
	acc := partials[0]
	for _, p := range partials[1:] {
		acc = f(acc, p)
	}
	return acc
}

// Scan writes the inclusive prefix combination of in to out.
func (c Ctx) Scan(out, in *Tensor, f func(acc, x float64) float64) {
	if out.Len() != in.Len() {
		panic("exec: scan length mismatch")
	}
	if in.Len() == 0 {
		return
	}
	acc := in.Data[0]
	out.Data[0] = acc
	for i := 1; i < in.Len(); i++ {
		acc = f(acc, in.Data[i])
		out.Data[i] = acc
	}
}

// Stencil1D applies a sliding window: out[i] = f(window centred at i).
// Borders clamp to the edge elements, the common image convention.
func (c Ctx) Stencil1D(out, in *Tensor, radius int, f func(window []float64) float64) {
	if out.Len() != in.Len() {
		panic("exec: stencil length mismatch")
	}
	n := in.Len()
	c.forEach(n, func(i int) {
		window := make([]float64, 2*radius+1)
		for o := -radius; o <= radius; o++ {
			j := i + o
			if j < 0 {
				j = 0
			}
			if j >= n {
				j = n - 1
			}
			window[o+radius] = in.Data[j]
		}
		out.Data[i] = f(window)
	})
}

// Stencil2D applies an r×r neighbourhood function over a 2-D tensor with
// clamped borders.
func (c Ctx) Stencil2D(out, in *Tensor, radius int, f func(window []float64) float64) {
	if len(in.Shape) != 2 || len(out.Shape) != 2 {
		panic("exec: stencil2d requires 2-D tensors")
	}
	h, w := in.Shape[0], in.Shape[1]
	if out.Shape[0] != h || out.Shape[1] != w {
		panic("exec: stencil2d shape mismatch")
	}
	side := 2*radius + 1
	c.forEach(h*w, func(idx int) {
		y, x := idx/w, idx%w
		window := make([]float64, side*side)
		k := 0
		for dy := -radius; dy <= radius; dy++ {
			for dx := -radius; dx <= radius; dx++ {
				yy, xx := clamp(y+dy, h), clamp(x+dx, w)
				window[k] = in.Data[yy*w+xx]
				k++
			}
		}
		out.Data[idx] = f(window)
	})
}

func clamp(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// Gather reads out[i] = in[idx[i]]. Indices must be in range.
func (c Ctx) Gather(out, in *Tensor, idx []int) {
	if out.Len() != len(idx) {
		panic("exec: gather length mismatch")
	}
	c.forEach(len(idx), func(i int) {
		out.Data[i] = in.Data[idx[i]]
	})
}

// Scatter writes out[idx[i]] = in[i]. Duplicate indices are a programming
// error the executor rejects, matching OpenCL's undefined behaviour with
// a loud failure instead of silent nondeterminism.
func (c Ctx) Scatter(out, in *Tensor, idx []int) {
	if in.Len() != len(idx) {
		panic("exec: scatter length mismatch")
	}
	seen := make(map[int]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= out.Len() {
			panic(fmt.Sprintf("exec: scatter index %d out of range", j))
		}
		if seen[j] {
			panic(fmt.Sprintf("exec: scatter collision on index %d", j))
		}
		seen[j] = true
	}
	c.forEach(len(idx), func(i int) {
		out.Data[idx[i]] = in.Data[i]
	})
}

// Pipeline chains stage functions, each consuming the previous stage's
// output tensor.
func (c Ctx) Pipeline(in *Tensor, stages ...func(*Tensor) *Tensor) *Tensor {
	cur := in
	for _, stage := range stages {
		cur = stage(cur)
	}
	return cur
}

// Tile decomposes a 2-D tensor into th×tw tiles (row-major tile order).
// Partial tiles at the borders are zero-padded.
func (c Ctx) Tile(in *Tensor, th, tw int) []*Tensor {
	if len(in.Shape) != 2 {
		panic("exec: tile requires a 2-D tensor")
	}
	if th <= 0 || tw <= 0 {
		panic("exec: non-positive tile size")
	}
	h, w := in.Shape[0], in.Shape[1]
	var tiles []*Tensor
	for y := 0; y < h; y += th {
		for x := 0; x < w; x += tw {
			t := NewTensor(th, tw)
			for dy := 0; dy < th && y+dy < h; dy++ {
				for dx := 0; dx < tw && x+dx < w; dx++ {
					t.Data[dy*tw+dx] = in.Data[(y+dy)*w+x+dx]
				}
			}
			tiles = append(tiles, t)
		}
	}
	return tiles
}

// Untile reassembles Tile's output into an h×w tensor, discarding padding.
func (c Ctx) Untile(tiles []*Tensor, h, w, th, tw int) *Tensor {
	out := NewTensor(h, w)
	cols := (w + tw - 1) / tw
	for ti, t := range tiles {
		y0, x0 := (ti/cols)*th, (ti%cols)*tw
		for dy := 0; dy < th && y0+dy < h; dy++ {
			for dx := 0; dx < tw && x0+dx < w; dx++ {
				out.Data[(y0+dy)*w+x0+dx] = t.Data[dy*tw+dx]
			}
		}
	}
	return out
}

// Pack interleaves multiple tensors element-wise into one (AoS layout),
// the Pack pattern used by the FC and coding kernels of Table II.
func (c Ctx) Pack(ins ...*Tensor) *Tensor {
	if len(ins) == 0 {
		panic("exec: pack of nothing")
	}
	n := ins[0].Len()
	for _, t := range ins {
		if t.Len() != n {
			panic("exec: pack length mismatch")
		}
	}
	out := NewTensor(n * len(ins))
	c.forEach(n, func(i int) {
		for j, t := range ins {
			out.Data[i*len(ins)+j] = t.Data[i]
		}
	})
	return out
}

// MatVec computes out = M·v for an (r×c) matrix tensor — the Map+Reduce
// composition at the heart of the LSTM and FC kernels.
func (c Ctx) MatVec(m, v *Tensor) *Tensor {
	if len(m.Shape) != 2 || m.Shape[1] != v.Len() {
		panic("exec: matvec shape mismatch")
	}
	r, cols := m.Shape[0], m.Shape[1]
	out := NewTensor(r)
	c.forEach(r, func(i int) {
		var acc float64
		row := m.Data[i*cols : (i+1)*cols]
		for j, x := range v.Data {
			acc += row[j] * x
		}
		out.Data[i] = acc
	})
	return out
}
