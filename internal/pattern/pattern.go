// Package pattern defines Poly's parallel-pattern vocabulary and the
// parallel pattern graph (PPG).
//
// The paper (Section IV-A, Table I) abstracts OpenCL kernels as
// compositions of nine patterns: Map, Reduce, Scan, Stencil, Pipeline,
// Gather, Scatter, Tiling, and Pack. A kernel is a DAG of pattern
// instances — the PPG — whose edges carry the data volumes exchanged
// between patterns. The PPG is the unit the optimizer (internal/opt) and
// the analytical models (internal/model) work on.
package pattern

import (
	"fmt"
	"strings"
)

// Kind identifies one of the nine parallel patterns.
type Kind int

// The nine parallel patterns of Table I (plus Pack, which Table II uses
// for layout-conversion stages).
const (
	Map Kind = iota
	Reduce
	Scan
	Stencil
	Pipeline
	Gather
	Scatter
	Tiling
	Pack
	numKinds
)

var kindNames = [...]string{
	Map:      "map",
	Reduce:   "reduce",
	Scan:     "scan",
	Stencil:  "stencil",
	Pipeline: "pipeline",
	Gather:   "gather",
	Scatter:  "scatter",
	Tiling:   "tiling",
	Pack:     "pack",
}

// String returns the lower-case pattern name used in annotations.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Valid reports whether k names one of the nine patterns.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// ParseKind converts an annotation keyword to a Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if strings.EqualFold(s, name) {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("pattern: unknown pattern kind %q", s)
}

// Kinds returns all nine pattern kinds, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// DataParallel reports whether the pattern exposes element-wise data
// parallelism (Section IV-A: Gather, Map, Reduce, Scatter estimate
// data-parallelism from the buffer capacity; Stencil and Scan do too, with
// neighbourhood/prefix constraints).
func (k Kind) DataParallel() bool {
	switch k {
	case Map, Reduce, Scan, Stencil, Gather, Scatter, Tiling, Pack:
		return true
	}
	return false
}

// MemoryBound reports whether the pattern is dominated by data movement
// rather than arithmetic (Gather/Scatter/Pack move data; Tiling
// re-shapes it).
func (k Kind) MemoryBound() bool {
	switch k {
	case Gather, Scatter, Tiling, Pack:
		return true
	}
	return false
}

// Func describes the operator function a pattern applies: either a simple
// arithmetic combinator or a customized IP/library call (Section IV-A:
// "operators could be as simple as multiplication, addition, and sigmoid
// ... or highly customized and optimized libraries").
type Func struct {
	// Name identifies the operator (e.g. "mac", "sigmoid", "rs_encode").
	Name string
	// Ops is the number of scalar arithmetic operations per element.
	Ops int
	// Custom marks an opaque IP-core/library operator; custom operators
	// are not fused or restructured, only placed.
	Custom bool
	// Associative marks combiners that admit tree-shaped Reduce/Scan.
	Associative bool
}

// Instance is one pattern occurrence inside a kernel.
type Instance struct {
	// Name is the unique (within a kernel) instance name, e.g. "m1".
	Name string
	// Kind is the pattern kind.
	Kind Kind
	// Elems is the number of output data elements the pattern produces.
	Elems int
	// ElemBytes is the size of one element (4 for float32).
	ElemBytes int
	// Funcs are the operator functions. Map/Reduce/Scan/Stencil use one;
	// Pipeline chains several; Gather/Scatter/Tiling/Pack may have none.
	Funcs []Func
	// StencilTaps is the neighbourhood size for Stencil (len(list) in the
	// paper's Stencil(inputs, func, list) annotation).
	StencilTaps int
	// TileSize and TileCount describe Tiling's [x,y,z] and [X,Y,Z].
	TileSize  [3]int
	TileCount [3]int
	// Irregular marks data-dependent index streams (Gather/Scatter with
	// non-affine lists), which defeats coalescing until optimized.
	Irregular bool
}

// TotalOps returns the scalar operation count for one execution of the
// pattern over all elements.
func (in *Instance) TotalOps() int64 {
	var perElem int64
	for _, f := range in.Funcs {
		perElem += int64(f.Ops)
	}
	if perElem == 0 {
		perElem = 1 // pure data movement still costs one access slot
	}
	n := int64(in.Elems)
	if in.Kind == Stencil && in.StencilTaps > 1 {
		perElem *= int64(in.StencilTaps)
	}
	return n * perElem
}

// OutputBytes returns the bytes the pattern writes.
func (in *Instance) OutputBytes() int64 {
	eb := in.ElemBytes
	if eb == 0 {
		eb = 4
	}
	return int64(in.Elems) * int64(eb)
}

// HasCustomFunc reports whether any operator is an opaque IP core.
func (in *Instance) HasCustomFunc() bool {
	for _, f := range in.Funcs {
		if f.Custom {
			return true
		}
	}
	return false
}

func (in *Instance) String() string {
	return fmt.Sprintf("%s:%s[%d]", in.Kind, in.Name, in.Elems)
}

// Validate checks structural invariants of a single instance.
func (in *Instance) Validate() error {
	if in.Name == "" {
		return fmt.Errorf("pattern: instance has empty name")
	}
	if !in.Kind.Valid() {
		return fmt.Errorf("pattern %s: invalid kind", in.Name)
	}
	if in.Elems <= 0 {
		return fmt.Errorf("pattern %s: element count must be positive, got %d", in.Name, in.Elems)
	}
	if in.ElemBytes < 0 {
		return fmt.Errorf("pattern %s: negative element size", in.Name)
	}
	switch in.Kind {
	case Map, Reduce, Scan:
		if len(in.Funcs) == 0 {
			return fmt.Errorf("pattern %s: %s requires an operator function", in.Name, in.Kind)
		}
	case Pipeline:
		if len(in.Funcs) < 2 {
			return fmt.Errorf("pattern %s: pipeline requires at least two stage functions, got %d", in.Name, len(in.Funcs))
		}
	case Stencil:
		if in.StencilTaps < 1 {
			return fmt.Errorf("pattern %s: stencil requires a non-empty neighbour list", in.Name)
		}
	case Tiling:
		for i := 0; i < 3; i++ {
			if in.TileSize[i] < 0 || in.TileCount[i] < 0 {
				return fmt.Errorf("pattern %s: negative tile geometry", in.Name)
			}
		}
	}
	return nil
}
