package pattern

import (
	"fmt"
	"sort"
)

// Edge is a data dependency between two pattern instances in a PPG. Bytes
// is the volume transferred from producer to consumer; the analysis layer
// uses it to estimate communication intensity under different transfer
// strategies (off-chip global memory vs on-chip scratchpad).
type Edge struct {
	From, To string
	Bytes    int64
}

// Graph is a parallel pattern graph: a DAG of pattern instances with
// data-dependency edges (Section III: "each node is a parallel pattern and
// every edge represents the data dependency between the patterns").
type Graph struct {
	nodes map[string]*Instance
	order []string // insertion order, for deterministic iteration
	out   map[string][]Edge
	in    map[string][]Edge
}

// NewGraph returns an empty PPG.
func NewGraph() *Graph {
	return &Graph{
		nodes: make(map[string]*Instance),
		out:   make(map[string][]Edge),
		in:    make(map[string][]Edge),
	}
}

// Add inserts a pattern instance. Duplicate names are rejected.
func (g *Graph) Add(in *Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if _, dup := g.nodes[in.Name]; dup {
		return fmt.Errorf("pattern: duplicate instance name %q", in.Name)
	}
	g.nodes[in.Name] = in
	g.order = append(g.order, in.Name)
	return nil
}

// Connect adds a data-dependency edge carrying the given byte volume.
// Both endpoints must exist and self-edges are rejected.
func (g *Graph) Connect(from, to string, bytes int64) error {
	if from == to {
		return fmt.Errorf("pattern: self edge on %q", from)
	}
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("pattern: edge source %q not in graph", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("pattern: edge target %q not in graph", to)
	}
	if bytes < 0 {
		return fmt.Errorf("pattern: negative edge volume %d on %s->%s", bytes, from, to)
	}
	e := Edge{From: from, To: to, Bytes: bytes}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return nil
}

// Node returns the named instance, or nil.
func (g *Graph) Node(name string) *Instance { return g.nodes[name] }

// Len returns the number of pattern instances.
func (g *Graph) Len() int { return len(g.order) }

// Names returns instance names in insertion order.
func (g *Graph) Names() []string {
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

// Instances returns the instances in insertion order.
func (g *Graph) Instances() []*Instance {
	out := make([]*Instance, 0, len(g.order))
	for _, n := range g.order {
		out = append(out, g.nodes[n])
	}
	return out
}

// Succs returns the outgoing edges of a node.
func (g *Graph) Succs(name string) []Edge { return g.out[name] }

// Preds returns the incoming edges of a node.
func (g *Graph) Preds(name string) []Edge { return g.in[name] }

// Edges returns every edge, ordered by (source insertion order, then
// target name) for determinism.
func (g *Graph) Edges() []Edge {
	var all []Edge
	for _, n := range g.order {
		es := append([]Edge(nil), g.out[n]...)
		sort.Slice(es, func(i, j int) bool { return es[i].To < es[j].To })
		all = append(all, es...)
	}
	return all
}

// Sources returns nodes with no predecessors, in insertion order.
func (g *Graph) Sources() []string {
	var out []string
	for _, n := range g.order {
		if len(g.in[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Sinks returns nodes with no successors, in insertion order.
func (g *Graph) Sinks() []string {
	var out []string
	for _, n := range g.order {
		if len(g.out[n]) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// TopoSort returns the instance names in a topological order, or an error
// naming a node on a cycle. The sort is deterministic: among ready nodes,
// insertion order wins (Kahn's algorithm over ordered lists).
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for _, n := range g.order {
		indeg[n] = len(g.in[n])
	}
	var ready []string
	for _, n := range g.order {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, n)
		for _, e := range g.out[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	if len(out) != len(g.nodes) {
		for _, n := range g.order {
			if indeg[n] > 0 {
				return nil, fmt.Errorf("pattern: cycle through %q", n)
			}
		}
	}
	return out, nil
}

// Validate checks the graph is a non-empty DAG.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("pattern: empty graph")
	}
	_, err := g.TopoSort()
	return err
}

// TotalBytes returns the sum of all edge volumes — the kernel's internal
// communication footprint if every intermediate goes through global memory.
func (g *Graph) TotalBytes() int64 {
	var total int64
	for _, n := range g.order {
		for _, e := range g.out[n] {
			total += e.Bytes
		}
	}
	return total
}

// CriticalPathOps returns the largest sum of per-instance TotalOps along
// any source→sink path: a platform-independent lower bound on serial work.
func (g *Graph) CriticalPathOps() int64 {
	topo, err := g.TopoSort()
	if err != nil {
		return 0
	}
	best := make(map[string]int64, len(topo))
	var max int64
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		var succBest int64
		for _, e := range g.out[n] {
			if best[e.To] > succBest {
				succBest = best[e.To]
			}
		}
		best[n] = g.nodes[n].TotalOps() + succBest
		if best[n] > max {
			max = best[n]
		}
	}
	return max
}

// Clone returns a deep copy of the graph. Instances are copied by value,
// so mutating the clone's instances leaves the original untouched.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	for _, n := range g.order {
		cp := *g.nodes[n]
		cp.Funcs = append([]Func(nil), g.nodes[n].Funcs...)
		if err := c.Add(&cp); err != nil {
			panic("pattern: clone of valid graph failed: " + err.Error())
		}
	}
	for _, n := range g.order {
		for _, e := range g.out[n] {
			if err := c.Connect(e.From, e.To, e.Bytes); err != nil {
				panic("pattern: clone of valid graph failed: " + err.Error())
			}
		}
	}
	return c
}
