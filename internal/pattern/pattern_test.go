package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %v", k, got)
		}
	}
}

func TestParseKindCaseInsensitive(t *testing.T) {
	k, err := ParseKind("MAP")
	if err != nil || k != Map {
		t.Fatalf("ParseKind(MAP) = %v, %v", k, err)
	}
	if _, err := ParseKind("unknown"); err == nil {
		t.Fatal("ParseKind must reject unknown names")
	}
}

func TestKindClassification(t *testing.T) {
	if !Map.DataParallel() || Pipeline.DataParallel() {
		t.Fatal("data-parallel classification wrong")
	}
	if !Gather.MemoryBound() || Map.MemoryBound() {
		t.Fatal("memory-bound classification wrong")
	}
	if Kind(99).Valid() || Kind(-1).Valid() {
		t.Fatal("out-of-range kinds must be invalid")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("invalid kind should format its number")
	}
}

func mapInst(name string, elems int) *Instance {
	return &Instance{
		Name: name, Kind: Map, Elems: elems, ElemBytes: 4,
		Funcs: []Func{{Name: "mac", Ops: 2}},
	}
}

func TestInstanceValidate(t *testing.T) {
	cases := []struct {
		name string
		in   Instance
		ok   bool
	}{
		{"valid map", *mapInst("m", 8), true},
		{"empty name", Instance{Kind: Map, Elems: 1, Funcs: []Func{{Ops: 1}}}, false},
		{"zero elems", Instance{Name: "x", Kind: Map, Elems: 0, Funcs: []Func{{Ops: 1}}}, false},
		{"map without func", Instance{Name: "x", Kind: Map, Elems: 4}, false},
		{"pipeline one stage", Instance{Name: "p", Kind: Pipeline, Elems: 4, Funcs: []Func{{Ops: 1}}}, false},
		{"pipeline two stages", Instance{Name: "p", Kind: Pipeline, Elems: 4, Funcs: []Func{{Ops: 1}, {Ops: 1}}}, true},
		{"stencil no taps", Instance{Name: "s", Kind: Stencil, Elems: 4, Funcs: []Func{{Ops: 1}}}, false},
		{"stencil ok", Instance{Name: "s", Kind: Stencil, Elems: 4, StencilTaps: 9, Funcs: []Func{{Ops: 1}}}, true},
		{"gather no func ok", Instance{Name: "g", Kind: Gather, Elems: 4}, true},
		{"negative tile", Instance{Name: "t", Kind: Tiling, Elems: 4, TileSize: [3]int{-1, 0, 0}}, false},
		{"invalid kind", Instance{Name: "x", Kind: Kind(42), Elems: 1}, false},
		{"negative elem bytes", Instance{Name: "x", Kind: Gather, Elems: 1, ElemBytes: -2}, false},
	}
	for _, c := range cases {
		err := c.in.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestInstanceTotalOps(t *testing.T) {
	m := mapInst("m", 100) // 2 ops × 100 elems
	if got := m.TotalOps(); got != 200 {
		t.Fatalf("map ops = %d, want 200", got)
	}
	s := &Instance{Name: "s", Kind: Stencil, Elems: 10, StencilTaps: 9, Funcs: []Func{{Ops: 2}}}
	if got := s.TotalOps(); got != 180 {
		t.Fatalf("stencil ops = %d, want 180 (9 taps × 2 ops × 10)", got)
	}
	g := &Instance{Name: "g", Kind: Gather, Elems: 50}
	if got := g.TotalOps(); got != 50 {
		t.Fatalf("pure-movement ops = %d, want 50 (one slot per element)", got)
	}
}

func TestInstanceOutputBytes(t *testing.T) {
	in := &Instance{Name: "x", Kind: Gather, Elems: 10, ElemBytes: 8}
	if in.OutputBytes() != 80 {
		t.Fatalf("OutputBytes = %d", in.OutputBytes())
	}
	in.ElemBytes = 0 // default float32
	if in.OutputBytes() != 40 {
		t.Fatalf("default elem size OutputBytes = %d", in.OutputBytes())
	}
}

func TestHasCustomFunc(t *testing.T) {
	in := mapInst("m", 4)
	if in.HasCustomFunc() {
		t.Fatal("mac is not custom")
	}
	in.Funcs = append(in.Funcs, Func{Name: "rs_core", Custom: true})
	if !in.HasCustomFunc() {
		t.Fatal("custom func not detected")
	}
}

// diamond builds a 4-node diamond PPG: a → b, a → c, b → d, c → d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.Add(mapInst(n, 16)); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []struct{ f, to string }{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		if err := g.Connect(e.f, e.to, 64); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := diamond(t)
	if g.Len() != 4 {
		t.Fatalf("len = %d", g.Len())
	}
	if got := g.Sources(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("sinks = %v", got)
	}
	if len(g.Succs("a")) != 2 || len(g.Preds("d")) != 2 {
		t.Fatal("edge adjacency wrong")
	}
	if g.TotalBytes() != 256 {
		t.Fatalf("total bytes = %d", g.TotalBytes())
	}
	if len(g.Edges()) != 4 {
		t.Fatalf("edges = %v", g.Edges())
	}
	if g.Node("a") == nil || g.Node("zz") != nil {
		t.Fatal("Node lookup wrong")
	}
}

func TestGraphRejectsBadInput(t *testing.T) {
	g := NewGraph()
	if err := g.Add(mapInst("a", 4)); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(mapInst("a", 4)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := g.Connect("a", "a", 1); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := g.Connect("a", "missing", 1); err == nil {
		t.Fatal("edge to missing node accepted")
	}
	if err := g.Connect("missing", "a", 1); err == nil {
		t.Fatal("edge from missing node accepted")
	}
	if err := g.Add(mapInst("b", 4)); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("a", "b", -5); err == nil {
		t.Fatal("negative volume accepted")
	}
	if err := g.Add(&Instance{Name: "bad", Kind: Map, Elems: 0}); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

func TestTopoSortOrder(t *testing.T) {
	g := diamond(t)
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range topo {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("topo order violates edge %s->%s: %v", e.From, e.To, topo)
		}
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := NewGraph()
	for _, n := range []string{"a", "b"} {
		if err := g.Add(mapInst(n, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Connect("a", "b", 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("b", "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoSort(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate must reject cyclic graph")
	}
}

func TestValidateEmptyGraph(t *testing.T) {
	if err := NewGraph().Validate(); err == nil {
		t.Fatal("empty graph must be invalid")
	}
}

func TestCriticalPathOps(t *testing.T) {
	g := diamond(t) // each node: 2 ops × 16 elems = 32; path a→b→d = 96
	if got := g.CriticalPathOps(); got != 96 {
		t.Fatalf("critical path ops = %d, want 96", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.Node("a").Elems = 999
	c.Node("a").Funcs[0].Ops = 77
	if g.Node("a").Elems == 999 || g.Node("a").Funcs[0].Ops == 77 {
		t.Fatal("clone shares state with original")
	}
	if c.Len() != g.Len() || len(c.Edges()) != len(g.Edges()) {
		t.Fatal("clone shape differs")
	}
}

// Property: for random DAGs (edges only forward in insertion order), the
// topo sort succeeds and respects every edge.
func TestTopoSortPropertyRandomDAG(t *testing.T) {
	f := func(adj [][2]uint8, n uint8) bool {
		size := int(n%12) + 2
		g := NewGraph()
		names := make([]string, size)
		for i := 0; i < size; i++ {
			names[i] = string(rune('a' + i))
			if err := g.Add(mapInst(names[i], 4)); err != nil {
				return false
			}
		}
		seen := map[[2]int]bool{}
		for _, e := range adj {
			u, v := int(e[0])%size, int(e[1])%size
			if u >= v || seen[[2]int{u, v}] {
				continue
			}
			seen[[2]int{u, v}] = true
			if err := g.Connect(names[u], names[v], 8); err != nil {
				return false
			}
		}
		topo, err := g.TopoSort()
		if err != nil || len(topo) != size {
			return false
		}
		pos := map[string]int{}
		for i, nm := range topo {
			pos[nm] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
