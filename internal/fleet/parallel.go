package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"poly/internal/parallel"
	"poly/internal/sim"
)

// SyncMode selects how a fleet's shard clocks are synchronized.
type SyncMode int

const (
	// SyncParallel (the default) gives each shard its own simulator and
	// advances them concurrently in conservative epochs: shards run in
	// parallel up to the next routed arrival, the router places that
	// arrival with every clock stopped, and the cycle repeats. Results
	// are bit-identical to SyncSerial.
	SyncParallel SyncMode = iota
	// SyncSerial runs every shard on one shared simulator clock — the
	// single-threaded reference semantics.
	SyncSerial
)

var syncNames = [...]string{"parallel", "serial"}

// String returns the mode's CLI name.
func (m SyncMode) String() string {
	if m < 0 || int(m) >= len(syncNames) {
		return fmt.Sprintf("SyncMode(%d)", int(m))
	}
	return syncNames[m]
}

// ParseSyncMode maps a CLI name to a SyncMode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(s) {
	case "parallel", "par":
		return SyncParallel, nil
	case "serial", "shared":
		return SyncSerial, nil
	}
	return 0, fmt.Errorf("fleet: unknown sync mode %q (want parallel or serial)", s)
}

// drainParallel is the parallel-mode drain loop: the conservative epoch
// coordinator. The router is the only cross-shard edge and every
// arrival time is known before Collect, so the lookahead rule is exact:
// between two consecutive routed arrivals, every shard's events are
// independent and the shards may run concurrently.
//
// Bit-identity with the shared clock hinges on event ordering at the
// arrival instant itself. On a shared simulator the routing event was
// scheduled at injection time — before the run — so at its firing time t
// it precedes every event the run schedules at t (larger sequence
// numbers) but follows pre-run events at t (smaller ones, e.g. the
// construction-scheduled first governor tick). The coordinator
// reproduces that interleaving with a per-shard sequence barrier: marks
// snapshot each shard's next sequence number before any event fires, so
// RunUntilBarrier(t, mark) fires exactly the events that would have
// preceded the routing event at t, the router then places the arrival
// (injection order among equal times — the shared clock's FIFO rule),
// and the epoch after the barrier releases the run-scheduled events at
// t. The drain loop then replays Server.Collect's governor-period
// horizon sequence per shard, so final clocks and power-sample times
// also match bit-exactly.
func (f *Fleet) drainParallel(period sim.Time) {
	marks := make([]uint64, len(f.shards))
	for i, sh := range f.shards {
		marks[i] = sh.sim.SeqMark()
	}
	// Stable: equal-time arrivals keep injection order, which is the
	// sequence order their routing events would have had.
	sort.SliceStable(f.arrivals, func(i, j int) bool { return f.arrivals[i] < f.arrivals[j] })
	r := newEpochRunner(f.shards, marks)
	defer r.stop()
	horizon := f.shards[0].sim.Now() + period
	for !f.drained() {
		f.advanceTo(r, horizon)
		horizon += period
	}
	f.advanceTo(r, horizon)
}

// advanceTo drives every shard to horizon h: for each arrival time t <=
// h, barrier-advance all shards to t, route the arrivals at t in
// injection order, then (once no arrival remains before h) advance all
// shards fully to h.
func (f *Fleet) advanceTo(r *epochRunner, h sim.Time) {
	for f.cursor < len(f.arrivals) && f.arrivals[f.cursor] <= h {
		t := f.arrivals[f.cursor]
		r.advance(t, true)
		for f.cursor < len(f.arrivals) && f.arrivals[f.cursor] == t {
			f.routeOne()
			f.cursor++
		}
	}
	r.advance(h, false)
}

// epochCmd is one lock-step round: advance to deadline, either through
// the sequence barrier (arrival epoch) or fully (horizon epoch).
type epochCmd struct {
	deadline sim.Time
	barrier  bool
}

// epochRunner advances all shards one epoch at a time on persistent
// worker goroutines. Worker w owns shards w, w+W, w+2W, ... for the
// whole drain, so each shard's events always run on the same goroutine;
// the channel send/receive and WaitGroup around every round give the
// coordinator↔worker happens-before edges the race detector checks.
// With one worker (single-core, or a 1-node fleet) rounds run inline on
// the caller — no goroutines, no synchronization cost.
type epochRunner struct {
	shards  []*shard
	marks   []uint64
	workers int
	cmds    []chan epochCmd
	wg      sync.WaitGroup
}

func newEpochRunner(shards []*shard, marks []uint64) *epochRunner {
	r := &epochRunner{shards: shards, marks: marks, workers: parallel.Workers()}
	if r.workers > len(shards) {
		r.workers = len(shards)
	}
	if r.workers <= 1 {
		r.workers = 1
		return r
	}
	r.cmds = make([]chan epochCmd, r.workers)
	for w := range r.cmds {
		r.cmds[w] = make(chan epochCmd, 1)
		go r.loop(w)
	}
	return r
}

// loop is one worker: each command advances the worker's strided share
// of the shards, then signals the round's WaitGroup.
func (r *epochRunner) loop(w int) {
	for c := range r.cmds[w] {
		for i := w; i < len(r.shards); i += r.workers {
			r.runOne(i, c)
		}
		r.wg.Done()
	}
}

// runOne advances shard i through one epoch.
func (r *epochRunner) runOne(i int, c epochCmd) {
	s := r.shards[i].sim
	if c.barrier {
		s.RunUntilBarrier(c.deadline, r.marks[i])
	} else {
		s.RunUntil(c.deadline)
	}
}

// eligible reports whether shard i has any event to fire in this epoch
// (as opposed to just a clock to bump).
func (r *epochRunner) eligible(i int, c epochCmd) bool {
	at, seq, ok := r.shards[i].sim.NextEvent()
	if !ok || at > c.deadline {
		return false
	}
	if at == c.deadline && c.barrier {
		return seq < r.marks[i]
	}
	return true
}

// advance runs one lock-step round over every shard. Rounds where at
// most one shard has eligible work skip the worker handoff entirely —
// the common case between arrivals at low load, where fan-out latency
// would dominate the O(1) clock bumps.
func (r *epochRunner) advance(deadline sim.Time, barrier bool) {
	c := epochCmd{deadline: deadline, barrier: barrier}
	if r.workers > 1 {
		busy := 0
		for i := range r.shards {
			if r.eligible(i, c) {
				if busy++; busy > 1 {
					break
				}
			}
		}
		if busy > 1 {
			r.wg.Add(r.workers)
			for _, ch := range r.cmds {
				ch <- c
			}
			r.wg.Wait()
			return
		}
	}
	for i := range r.shards {
		r.runOne(i, c)
	}
}

// stop shuts the worker goroutines down after the drain.
func (r *epochRunner) stop() {
	for _, ch := range r.cmds {
		close(ch)
	}
}
