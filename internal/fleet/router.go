package fleet

import (
	"fmt"
	"strings"
)

// Policy selects how the router places an arrival on a node. All three
// policies read the same per-node allocated/allocatable/utilization
// signals the telemetry resource gauges export (the
// kube-binpacking-exporter shape), so a policy is a pure function of the
// fleet's live state and the placement sequence is a deterministic
// function of the arrival trace.
type Policy int

const (
	// Binpack packs work onto the fewest nodes: among nodes that still
	// have a free compute slot, the most-utilized one wins, so the fleet
	// concentrates load and leaves whole nodes idle for the governor to
	// park (and, next, for the autoscaler to release). When every node is
	// saturated it degrades to least-utilization overflow.
	Binpack Policy = iota
	// Spread rotates placements round-robin across eligible nodes —
	// the latency-first policy: every node's queues stay shallow and a
	// single node's fault blast radius is minimized.
	Spread
	// LeastUtil places each arrival on the node with the lowest
	// backlog-per-slot utilization ratio, weighing skewed node capacities
	// the way the paper's cluster-level dispatcher weighs heterogeneous
	// back-ends: a double-capacity node absorbs double the load before it
	// looks equally busy.
	LeastUtil
)

var policyNames = [...]string{"binpack", "spread", "least-util"}

// String returns the policy's CLI name.
func (p Policy) String() string {
	if p < 0 || int(p) >= len(policyNames) {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return policyNames[p]
}

// Policies returns all routing policies in declaration order.
func Policies() []Policy { return []Policy{Binpack, Spread, LeastUtil} }

// ParsePolicy maps a CLI name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(s) {
	case "binpack", "pack":
		return Binpack, nil
	case "spread", "roundrobin", "rr":
		return Spread, nil
	case "least-util", "leastutil", "least-utilization":
		return LeastUtil, nil
	}
	return 0, fmt.Errorf("fleet: unknown policy %q (want binpack, spread, or least-util)", s)
}

// Signals is one node's routing view in the allocated/allocatable shape
// of the poly_node_* resource gauges: compute-slot occupancy plus the
// queue backlog and request in-flight count that break ties between
// equally-occupied nodes.
type Signals struct {
	// SlotsAllocated counts boards with work queued or running;
	// SlotsAllocatable is the node's board count.
	SlotsAllocated, SlotsAllocatable float64
	// Backlog is the total queued+running task count across boards — the
	// utilization numerator (tasks per allocatable slot), which keeps
	// discriminating after every slot is busy.
	Backlog int
	// InFlight counts admitted, unfinished requests on the shard.
	InFlight int
}

// Utilization is the node's backlog per allocatable compute slot — the
// ratio the LeastUtil policy minimizes and Binpack maximizes subject to
// a free slot. Mirrors poly_node_utilization_ratio{resource=
// "compute_slots"} with queue depth folded in so saturated nodes stay
// comparable.
func (s Signals) Utilization() float64 {
	if s.SlotsAllocatable == 0 {
		return 0
	}
	return float64(s.Backlog) / s.SlotsAllocatable
}

// HasFreeSlot reports whether some board is idle — binpack's headroom
// criterion.
func (s Signals) HasFreeSlot() bool { return s.SlotsAllocated < s.SlotsAllocatable }

// signals snapshots one shard's routing view. Pure reads: QueueLen and
// the in-flight counter never mutate device or server state, so probing
// a node cannot perturb the run it routes into.
func (sh *shard) signals() Signals {
	var s Signals
	s.SlotsAllocatable = float64(len(sh.node.GPUs) + len(sh.node.FPGAs))
	for _, a := range sh.node.Accelerators() {
		q := a.QueueLen()
		s.Backlog += q
		if q > 0 {
			s.SlotsAllocated++
		}
	}
	s.InFlight = sh.srv.InFlight()
	return s
}

// NodeHealth is the fleet's belief about one node — the per-board
// healthy/suspect/down machine generalized upward. Draining is an
// operator (or autoscaler) intent, not an inferred state.
type NodeHealth int

const (
	// NodeHealthy: every board the shard knows is healthy.
	NodeHealthy NodeHealth = iota
	// NodeSuspect: at least one board is suspect or down, but serving
	// capacity remains. The router deprioritizes but does not exclude it
	// — the same probe-traffic rationale as board probation.
	NodeSuspect
	// NodeDown: no healthy or suspect board remains; the node cannot
	// serve. The router excludes it and rebalances arrivals elsewhere.
	NodeDown
	// NodeDraining: operator-drained; no new placements, in-flight work
	// completes. The node-count actuator drains from the top.
	NodeDraining
)

var healthNames = [...]string{"healthy", "suspect", "down", "draining"}

// String returns the state name.
func (h NodeHealth) String() string {
	if h < 0 || int(h) >= len(healthNames) {
		return fmt.Sprintf("NodeHealth(%d)", int(h))
	}
	return healthNames[h]
}

// health infers the shard's current node-level state from its server's
// board beliefs. Draining wins over inference: a drained node reports
// draining even while its boards are fine.
func (sh *shard) health() NodeHealth {
	if sh.draining {
		return NodeDraining
	}
	healthy, suspect, down := sh.srv.BoardHealthCounts()
	switch {
	case healthy == 0 && suspect == 0:
		return NodeDown
	case down > 0 || suspect > 0:
		return NodeSuspect
	default:
		return NodeHealthy
	}
}

// pick chooses the shard for one arrival, or nil to shed it at the
// fleet. Candidates partition by health — healthy nodes first, suspect
// nodes only when no healthy node exists, down/draining never — and the
// policy decides within the partition. Runs entirely on pure reads
// inside the single-threaded simulator, so placement is deterministic.
func (f *Fleet) pick() *shard {
	healthyC := f.scratch[:0]
	var suspectC []candidate
	for _, sh := range f.shards {
		st := sh.health()
		f.noteHealth(sh, st)
		switch st {
		case NodeHealthy:
			healthyC = append(healthyC, candidate{sh: sh, sig: sh.signals()})
		case NodeSuspect:
			suspectC = append(suspectC, candidate{sh: sh, sig: sh.signals()})
		}
	}
	f.scratch = healthyC[:0]
	cands := healthyC
	if len(cands) == 0 {
		cands = suspectC
	}
	if len(cands) == 0 {
		return nil
	}
	switch f.policy {
	case Spread:
		sh := cands[f.rr%len(cands)].sh
		f.rr++
		return sh
	case LeastUtil:
		return leastUtilized(cands).sh
	default: // Binpack
		best := -1
		for i := range cands {
			if !cands[i].sig.HasFreeSlot() {
				continue
			}
			if best < 0 || cands[i].sig.Utilization() > cands[best].sig.Utilization() {
				best = i
			}
		}
		if best >= 0 {
			return cands[best].sh
		}
		// Every candidate is slot-saturated: overflow to the least
		// utilized so the backlog spreads instead of piling on one node.
		return leastUtilized(cands).sh
	}
}

// candidate pairs a shard with its snapshot for one routing decision.
type candidate struct {
	sh  *shard
	sig Signals
}

// leastUtilized returns the candidate with the lowest utilization,
// breaking ties by in-flight count and then by node index (slice order).
func leastUtilized(cands []candidate) candidate {
	best := cands[0]
	for _, c := range cands[1:] {
		bu, cu := best.sig.Utilization(), c.sig.Utilization()
		if cu < bu || (cu == bu && c.sig.InFlight < best.sig.InFlight) {
			best = c
		}
	}
	return best
}

// noteHealth tracks per-shard state transitions the router observes:
// a transition into NodeDown counts once per episode (the drain/
// rebalance event), mirroring the board-level BoardDownEvents counter.
func (f *Fleet) noteHealth(sh *shard, st NodeHealth) {
	if st == sh.lastHealth {
		return
	}
	if st == NodeDown {
		f.nodeDownEvents++
	}
	sh.lastHealth = st
}
