// Package fleet shards Poly across N leaf nodes behind a top-level
// router — the paper's datacenter story (Section VI-C) lifted from one
// node to a cluster. Each shard is a full cluster.Node + runtime.Server
// pair (its own boards, planner, plan cache, governor, and health
// machinery), and a Router admits every arrival by placing it on a node
// using pluggable policies fed by the same per-node
// allocated/allocatable/utilization signals the telemetry resource
// gauges export.
//
// Two synchronization modes drive the shards (Options.Sync). SyncSerial
// runs every shard on ONE shared simulator clock — the reference
// semantics. SyncParallel (the default) gives each shard its own
// simulator and runs them concurrently on the internal/parallel worker
// pool, lock-stepped by a conservative epoch coordinator: the router is
// the only cross-shard edge, every arrival time is known at injection,
// so shards can safely advance in parallel up to the next routed
// arrival, stop on a (time, sequence) barrier, and let the router place
// that arrival serially before the next epoch (see parallel.go).
//
// Determinism: in both modes placements, per-node outcomes, and the
// aggregate are pure functions of the arrival trace — bit-identical
// across modes and at any internal/parallel pool size, enforced by
// TestFleetParallelBitIdentity. Router bit-transparency: a 1-node fleet
// assembles the identical node (empty board-name prefix) and fires the
// identical event sequence as a direct runtime.Server session, enforced
// by TestFleetRouterBitTransparency the same way the telemetry, fault,
// and batching layers are gated.
//
// Node count is an actuator: SetTargetNodes drains shards from the top
// so a trace-driven autoscaler can scale the serving fleet against load
// (the ROADMAP's energy-proportionality item), with drained nodes
// completing in-flight work before the governor parks them.
package fleet

import (
	"fmt"
	"strings"

	"poly/internal/cluster"
	"poly/internal/runtime"
	"poly/internal/sim"
	"poly/internal/telemetry"
)

// Options configures a fleet.
type Options struct {
	// Nodes is the shard count (1 if zero).
	Nodes int
	// Sync selects how shard clocks are driven: SyncParallel (zero
	// value) runs per-shard simulators concurrently under the epoch
	// coordinator; SyncSerial runs all shards on one shared clock.
	Sync SyncMode
	// Policy is the router's placement policy (Binpack if zero).
	Policy Policy
	// NodeCapsW optionally skews per-node power caps (and with them
	// board counts): entry i overrides the bench's cap for shard i. A
	// zero entry keeps the bench default. Len may be shorter than Nodes.
	NodeCapsW []float64
	// Runtime is the per-shard server configuration. Runtime.Telemetry
	// must be nil — a single sink cannot hold N nodes' gauges; set
	// WithTelemetry to give every shard its own recorder instead.
	Runtime runtime.Options
	// WithTelemetry attaches a dedicated telemetry.Recorder to every
	// shard (reachable via Recorder), plus a fleet-level rollup
	// (Rollup) aggregating the per-node resource gauges.
	WithTelemetry bool
}

// shard is one leaf node and its server, plus the router's view of it.
type shard struct {
	idx  int
	name string
	// sim is the clock the shard's events run on: the fleet's shared
	// simulator in serial mode, the shard's own in parallel mode.
	sim  *sim.Simulator
	node *cluster.Node
	srv  *runtime.Server
	rec  *telemetry.Recorder

	draining   bool
	lastHealth NodeHealth
}

// Fleet owns N shards and routes arrivals onto them. It implements
// runtime.ArrivalTarget, so the same Workload generators that drive a
// single server drive a fleet.
type Fleet struct {
	mode SyncMode
	// sim is the shared clock in serial mode; nil in parallel mode,
	// where each shard owns its simulator.
	sim    *sim.Simulator
	shards []*shard
	policy Policy

	// arrivals collects injected arrival times in parallel mode; the
	// coordinator stable-sorts them at Collect (preserving injection
	// order among equal times, matching the shared clock's FIFO rule)
	// and routes them epoch by epoch. cursor is the next unrouted index.
	arrivals []sim.Time
	cursor   int

	// rr is the spread policy's round-robin cursor.
	rr int
	// scratch is the router's reusable candidate buffer.
	scratch []candidate

	// pending counts injected arrivals whose routing event has not
	// fired yet; the drain loop runs while any shard or this counter is
	// non-empty.
	pending        int
	injected       int
	shed           int
	nodeDownEvents int
	placements     []int

	rollup *telemetry.FleetRollup
}

// New provisions a fleet of opts.Nodes shards of the given bench — on
// one fresh shared simulator in serial mode, on a fresh simulator per
// shard in parallel mode. With Nodes == 1 the shard is assembled exactly
// like a direct session (empty board-name prefix), which the router
// bit-transparency gate relies on.
func New(b runtime.Bench, opts Options) (*Fleet, error) {
	n := opts.Nodes
	if n <= 0 {
		n = 1
	}
	if opts.Runtime.Telemetry != nil {
		return nil, fmt.Errorf("fleet: Runtime.Telemetry must be nil (use WithTelemetry for per-shard recorders)")
	}
	mode := opts.Sync
	if mode == SyncParallel && runtime.HasDefaultTelemetry() {
		// A process-wide fallback sink would be shared by every shard;
		// it cannot absorb concurrent timelines, so fall back to the
		// shared clock. Semantics are unchanged (the modes are
		// bit-identical); only wall-clock parallelism is lost.
		mode = SyncSerial
	}
	f := &Fleet{
		mode:       mode,
		policy:     opts.Policy,
		placements: make([]int, n),
	}
	if mode == SyncSerial {
		f.sim = sim.New()
	}
	if opts.WithTelemetry {
		f.rollup = telemetry.NewFleetRollup()
	}
	for i := 0; i < n; i++ {
		prefix := ""
		if n > 1 {
			prefix = fmt.Sprintf("n%d/", i)
		}
		bi := b
		if i < len(opts.NodeCapsW) && opts.NodeCapsW[i] > 0 {
			bi.PowerCapW = opts.NodeCapsW[i]
		}
		ro := opts.Runtime
		sh := &shard{idx: i, name: fmt.Sprintf("n%d", i), sim: f.sim}
		if sh.sim == nil {
			sh.sim = sim.New()
		}
		if opts.WithTelemetry {
			sh.rec = telemetry.New()
			ro.Telemetry = sh.rec
		}
		srv, node, err := bi.NewShardSession(sh.sim, prefix, ro)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		sh.node, sh.srv = node, srv
		f.shards = append(f.shards, sh)
		if f.rollup != nil {
			f.rollup.AddNode(sh.name, sh.rec)
		}
	}
	return f, nil
}

// Nodes returns the shard count.
func (f *Fleet) Nodes() int { return len(f.shards) }

// Sync returns the fleet's synchronization mode (after any construction-
// time downgrade to serial).
func (f *Fleet) Sync() SyncMode { return f.mode }

// Sim returns the shared simulator clock in serial mode; nil in parallel
// mode, where each shard owns its clock.
func (f *Fleet) Sim() *sim.Simulator { return f.sim }

// Server returns shard i's server (panics on a bad index, like a slice).
func (f *Fleet) Server(i int) *runtime.Server { return f.shards[i].srv }

// Node returns shard i's provisioned node.
func (f *Fleet) Node(i int) *cluster.Node { return f.shards[i].node }

// Recorder returns shard i's telemetry recorder (nil without
// WithTelemetry).
func (f *Fleet) Recorder(i int) *telemetry.Recorder { return f.shards[i].rec }

// Rollup returns the fleet-level telemetry rollup (nil without
// WithTelemetry). SyncHealth has been applied as of the last Collect.
func (f *Fleet) Rollup() *telemetry.FleetRollup { return f.rollup }

// NodeHealthState returns the router's current belief about shard i.
func (f *Fleet) NodeHealthState(i int) NodeHealth { return f.shards[i].health() }

// DrainNode stops new placements on shard i; in-flight and already-
// placed work completes normally. Idempotent.
func (f *Fleet) DrainNode(i int) { f.shards[i].draining = true }

// UndrainNode returns a drained shard to the placement pool.
func (f *Fleet) UndrainNode(i int) { f.shards[i].draining = false }

// SetTargetNodes is the node-count actuator: shards below n are
// undrained, shards at or above n are drained. An autoscaler calls this
// against the live load; the router rebalances future arrivals onto the
// surviving shards immediately.
func (f *Fleet) SetTargetNodes(n int) {
	for i, sh := range f.shards {
		sh.draining = i >= n
	}
}

// ActiveNodes counts shards currently accepting placements.
func (f *Fleet) ActiveNodes() int {
	n := 0
	for _, sh := range f.shards {
		if !sh.draining {
			n++
		}
	}
	return n
}

// Inject schedules one arrival at the given absolute time; the routing
// decision is deferred to the arrival instant so it reads the fleet's
// live state. In serial mode the router rides the shared clock as an
// event; in parallel mode the time is recorded for the epoch
// coordinator, which routes it between epochs. Implements
// runtime.ArrivalTarget.
func (f *Fleet) Inject(at sim.Time) {
	f.pending++
	if f.mode == SyncSerial {
		f.sim.AtCall(at, fireRoute, f)
		return
	}
	f.arrivals = append(f.arrivals, at)
}

// fireRoute is one arrival's routing event on the serial shared clock.
func fireRoute(_ sim.Time, a any) {
	a.(*Fleet).routeOne()
}

// routeOne routes a single arrival at the current instant: pick a node
// by policy and health, hand the arrival to its server, or shed it at
// the fleet when no node is eligible (the fast-rejection rationale of
// admission shedding, lifted to the cluster). In parallel mode the
// coordinator calls it with every shard's clock stopped at the arrival
// time, so the policy reads the same signals it would on a shared
// clock.
func (f *Fleet) routeOne() {
	f.pending--
	f.injected++
	sh := f.pick()
	if sh == nil {
		f.shed++
		return
	}
	f.placements[sh.idx]++
	sh.srv.RouteArrival()
}

// drained reports whether every arrival has been routed and every shard
// has admitted and completed its share.
func (f *Fleet) drained() bool {
	if f.pending > 0 {
		return false
	}
	for _, sh := range f.shards {
		if !sh.srv.Drained() {
			return false
		}
	}
	return true
}

// NodeResult is one shard's outcome with its fleet-level attribution.
type NodeResult struct {
	Name string
	// Placements counts arrivals the router placed on this node (==
	// the node's Result.Arrivals; kept separate so the invariant is
	// checkable from the outside).
	Placements int
	// Health is the router's belief at collection time.
	Health NodeHealth
	runtime.Result
}

// Result summarizes one fleet serving run.
type Result struct {
	Nodes  int
	Policy string
	// Injected counts arrivals offered to the router; Shed those with
	// no eligible node. Injected == sum(PerNode Placements) + Shed.
	Injected int
	Shed     int
	// NodeDownEvents counts router-observed node-down transitions.
	NodeDownEvents int
	PerNode        []NodeResult

	// Aggregate QoS over every shard (the fleet-level SLO view).
	Arrivals, Completed, Measured int
	Violations, PlanErrors        int
	P50MS, P99MS, MeanMS          float64
	BoundMS                       float64
	EnergyMJ, AvgPowerW           float64
	DurationMS, ThroughputRPS     float64
	FleetShedTotal                int // fleet-level + per-node admission sheds
}

// ViolationRatio is the fraction of measured requests over the bound.
func (r Result) ViolationRatio() float64 {
	if r.Measured == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Measured)
}

// String renders the fleet report: the aggregate first, then one line
// per node with its placement share and health.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet     %d nodes, policy %s: %d injected, %d placed, %d shed, %d node-down events\n",
		r.Nodes, r.Policy, r.Injected, r.Injected-r.Shed, r.Shed, r.NodeDownEvents)
	fmt.Fprintf(&b, "aggregate %d completed, %d measured; p50 %.2f ms p99 %.2f ms, violations %d (%.2f%%); %.1f mJ (avg %.1f W), %.1f req/s",
		r.Completed, r.Measured, r.P50MS, r.P99MS, r.Violations, 100*r.ViolationRatio(),
		r.EnergyMJ, r.AvgPowerW, r.ThroughputRPS)
	for _, nr := range r.PerNode {
		share := 0.0
		if placed := r.Injected - r.Shed; placed > 0 {
			share = float64(nr.Placements) / float64(placed)
		}
		fmt.Fprintf(&b, "\n  %-4s %-8s %5d placed (%4.1f%%)  p99 %7.2f ms  viol %5.2f%%  %6.1f W  %d GPU / %d FPGA tasks",
			nr.Name, nr.Health, nr.Placements, 100*share, nr.P99MS,
			100*nr.ViolationRatio(), nr.AvgPowerW, nr.GPUTasks, nr.FPGATasks)
	}
	return b.String()
}

// Collect drains the fleet until every shard is idle, then summarizes
// each shard and the aggregate. Call once, after all arrivals are
// injected. The drain loop advances in governor-period steps exactly
// like Server.Collect — for a 1-node fleet it reduces to the identical
// RunUntil sequence, which the bit-transparency gate checks. In
// parallel mode the epoch coordinator reproduces the same sequence per
// shard (see drainParallel), so results are bit-identical across modes.
func (f *Fleet) Collect() Result {
	period := sim.Time(f.shards[0].srv.GovernorPeriodMS())
	if f.mode == SyncSerial {
		horizon := f.sim.Now() + period
		for !f.drained() {
			f.sim.RunUntil(horizon)
			horizon += period
		}
		f.sim.RunUntil(horizon)
	} else {
		f.drainParallel(period)
	}

	res := Result{
		Nodes:          len(f.shards),
		Policy:         f.policy.String(),
		Injected:       f.injected,
		Shed:           f.shed,
		NodeDownEvents: f.nodeDownEvents,
		FleetShedTotal: f.shed,
	}
	var lat sim.Sample
	for i, sh := range f.shards {
		nr := NodeResult{
			Name:       sh.name,
			Placements: f.placements[i],
			Health:     sh.health(),
			Result:     sh.srv.Summarize(),
		}
		res.PerNode = append(res.PerNode, nr)
		res.Arrivals += nr.Arrivals
		res.Completed += nr.Completed
		res.Measured += nr.Measured
		res.Violations += nr.Violations
		res.PlanErrors += nr.PlanErrors
		res.EnergyMJ += nr.EnergyMJ
		res.FleetShedTotal += nr.Shed
		res.BoundMS = nr.BoundMS
		if nr.DurationMS > res.DurationMS {
			res.DurationMS = nr.DurationMS
		}
		for _, v := range sh.srv.LatencySamples() {
			lat.Add(v)
		}
	}
	res.P50MS = lat.Percentile(50)
	res.P99MS = lat.P99()
	res.MeanMS = lat.Mean()
	if res.DurationMS > 0 {
		res.AvgPowerW = res.EnergyMJ / res.DurationMS
		res.ThroughputRPS = float64(res.Completed) / res.DurationMS * 1000
	}
	if f.rollup != nil {
		for _, sh := range f.shards {
			f.rollup.SetNodeHealth(sh.name, sh.health().String())
		}
	}
	return res
}

// LatencySamples returns every shard's post-warmup latencies
// concatenated in node order — the bitwise-comparison surface the
// determinism gates use.
func (f *Fleet) LatencySamples() []float64 {
	var out []float64
	for _, sh := range f.shards {
		out = append(out, sh.srv.LatencySamples()...)
	}
	return out
}
