package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"poly/internal/fault"
	"poly/internal/parallel"
	"poly/internal/runtime"
	"poly/internal/sim"
)

// sameFleetRun fails unless two fleet outcomes are bitwise identical:
// router accounting, per-node placements and outcomes, aggregate
// percentiles and energy, and every latency sample in node order. This
// is the comparison surface the parallel-coordinator gates use.
func sameFleetRun(t *testing.T, what string, a, b Result, latA, latB []float64) {
	t.Helper()
	if a.Injected != b.Injected || a.Shed != b.Shed || a.NodeDownEvents != b.NodeDownEvents {
		t.Fatalf("%s: router accounting diverged: injected %d/%d, shed %d/%d, down %d/%d",
			what, a.Injected, b.Injected, a.Shed, b.Shed, a.NodeDownEvents, b.NodeDownEvents)
	}
	if len(a.PerNode) != len(b.PerNode) {
		t.Fatalf("%s: node counts diverged: %d vs %d", what, len(a.PerNode), len(b.PerNode))
	}
	for n := range a.PerNode {
		na, nb := a.PerNode[n], b.PerNode[n]
		if na.Placements != nb.Placements {
			t.Fatalf("%s: node %d placements diverged: %d vs %d", what, n, na.Placements, nb.Placements)
		}
		if na.Health != nb.Health {
			t.Fatalf("%s: node %d health diverged: %v vs %v", what, n, na.Health, nb.Health)
		}
		sameRun(t, what+" node "+na.Name, na.Result, nb.Result, nil, nil)
	}
	for _, f := range [][2]float64{
		{a.P50MS, b.P50MS}, {a.P99MS, b.P99MS}, {a.MeanMS, b.MeanMS},
		{a.EnergyMJ, b.EnergyMJ}, {a.DurationMS, b.DurationMS},
	} {
		if math.Float64bits(f[0]) != math.Float64bits(f[1]) {
			t.Fatalf("%s: aggregate diverged: %v vs %v", what, f[0], f[1])
		}
	}
	if len(latA) != len(latB) {
		t.Fatalf("%s: latency sample counts diverged: %d vs %d", what, len(latA), len(latB))
	}
	for i := range latA {
		if math.Float64bits(latA[i]) != math.Float64bits(latB[i]) {
			t.Fatalf("%s: latency sample %d diverged: %v vs %v", what, i, latA[i], latB[i])
		}
	}
}

// TestFleetParallelBitIdentity is the parallel coordinator's equivalence
// gate: for every policy × node count × fault setting, a fleet run under
// the epoch coordinator — at worker-pool sizes 1 and 4 — must be
// bit-identical to the serial shared-clock reference. This is the
// contract that lets SyncParallel be the default: parallelism is a pure
// wall-clock optimization, invisible in every result bit.
func TestFleetParallelBitIdentity(t *testing.T) {
	b := asrBench(t)
	const (
		rps        = 100.0
		durationMS = 5000.0
		seed       = 13
	)
	t.Cleanup(func() { parallel.SetWorkers(0) })

	run := func(t *testing.T, nodes int, pol Policy, mode SyncMode, faults bool) (Result, []float64) {
		t.Helper()
		ro := runtime.Options{WarmupMS: 0.2 * durationMS}
		if faults {
			board := "gpu0"
			if nodes > 1 {
				board = "n1/gpu0"
			}
			ro.Faults = &fault.Config{Seed: seed, Script: []fault.Window{
				{Board: board, Kind: fault.Failure, Start: 2000, End: 1e9},
			}}
		}
		f, err := New(b, Options{Nodes: nodes, Policy: pol, Sync: mode, Runtime: ro})
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Sync(); got != mode {
			t.Fatalf("Sync() = %v, want %v", got, mode)
		}
		runtime.NewWorkload(seed).InjectPoisson(f, rps, 0, sim.Time(durationMS))
		res := f.Collect()
		fleetAccounting(t, res)
		return res, f.LatencySamples()
	}

	for _, nodes := range []int{1, 2, 4} {
		for _, pol := range Policies() {
			for _, faults := range []bool{false, true} {
				name := fmt.Sprintf("%dn-%s", nodes, pol)
				if faults {
					name += "-faults"
				}
				what := name
				t.Run(name, func(t *testing.T) {
					parallel.SetWorkers(0)
					serial, serialLat := run(t, nodes, pol, SyncSerial, faults)
					if serial.Completed == 0 {
						t.Fatal("serial reference completed nothing; the gate has no teeth")
					}
					for _, workers := range []int{1, 4} {
						parallel.SetWorkers(workers)
						par, parLat := run(t, nodes, pol, SyncParallel, faults)
						sameFleetRun(t, what, serial, par, serialLat, parLat)
					}
				})
			}
		}
	}
}

// TestFleetEpochBoundaryArrivals is the property test for the
// coordinator's trickiest interleavings: arrival times that land exactly
// on epoch boundaries — governor-period multiples, where the sequence
// barrier must order routing between the shard's pre-run governor tick
// and its run-scheduled events at the same instant — plus duplicate
// times and out-of-order injection (exercising the stable sort's
// injection-order tie rule). Randomized over several seeds; every trace
// must be bit-identical across sync modes.
func TestFleetEpochBoundaryArrivals(t *testing.T) {
	b := asrBench(t)
	t.Cleanup(func() { parallel.SetWorkers(0) })

	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		// Half the arrivals sit exactly on 500 ms governor edges
		// (duplicates likely), the rest at arbitrary instants; the whole
		// trace is injected in shuffled order.
		const n = 200
		times := make([]sim.Time, 0, n)
		for i := 0; i < n/2; i++ {
			times = append(times, sim.Time(500*(1+rng.Intn(8))))
		}
		for i := n / 2; i < n; i++ {
			times = append(times, sim.Time(rng.Float64()*4000))
		}
		rng.Shuffle(len(times), func(i, j int) { times[i], times[j] = times[j], times[i] })

		run := func(mode SyncMode, workers int) (Result, []float64) {
			t.Helper()
			parallel.SetWorkers(workers)
			f, err := New(b, Options{Nodes: 4, Policy: LeastUtil, Sync: mode,
				Runtime: runtime.Options{WarmupMS: 500}})
			if err != nil {
				t.Fatal(err)
			}
			for _, at := range times {
				f.Inject(at)
			}
			res := f.Collect()
			fleetAccounting(t, res)
			return res, f.LatencySamples()
		}
		serial, serialLat := run(SyncSerial, 0)
		if serial.Completed == 0 {
			t.Fatal("serial reference completed nothing")
		}
		for _, workers := range []int{1, 4} {
			par, parLat := run(SyncParallel, workers)
			sameFleetRun(t, "epoch-boundary", serial, par, serialLat, parLat)
		}
	}
}
