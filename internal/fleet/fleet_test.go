package fleet

import (
	"math"
	"strings"
	"testing"

	"poly/internal/cluster"
	"poly/internal/core"
	"poly/internal/fault"
	"poly/internal/parallel"
	"poly/internal/runtime"
	"poly/internal/sim"
)

// asrBench builds the Heter-Poly ASR harness every fleet test shards.
func asrBench(tb testing.TB) runtime.Bench {
	tb.Helper()
	fw, err := core.App("ASR")
	if err != nil {
		tb.Fatal(err)
	}
	b, err := fw.Bench(cluster.HeterPoly, cluster.SettingI)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// sameRun fails unless two single-node outcomes are bitwise identical:
// counts, task mix, energy, every latency sample, and the full power
// series. This is the comparison surface all equivalence gates share.
func sameRun(t *testing.T, what string, a, b runtime.Result, latA, latB []float64) {
	t.Helper()
	if a.Arrivals != b.Arrivals || a.Completed != b.Completed ||
		a.Measured != b.Measured || a.Violations != b.Violations ||
		a.PlanErrors != b.PlanErrors || a.Shed != b.Shed {
		t.Fatalf("%s: request accounting diverged:\n  a: %+v\n  b: %+v", what, a, b)
	}
	if a.GPUTasks != b.GPUTasks || a.FPGATasks != b.FPGATasks || a.Reconfigs != b.Reconfigs {
		t.Fatalf("%s: task mix diverged: GPU %d/%d, FPGA %d/%d, reconfigs %d/%d",
			what, a.GPUTasks, b.GPUTasks, a.FPGATasks, b.FPGATasks, a.Reconfigs, b.Reconfigs)
	}
	if math.Float64bits(a.EnergyMJ) != math.Float64bits(b.EnergyMJ) ||
		math.Float64bits(a.DurationMS) != math.Float64bits(b.DurationMS) {
		t.Fatalf("%s: energy accounting diverged: %.9f mJ / %.3f ms vs %.9f mJ / %.3f ms",
			what, a.EnergyMJ, a.DurationMS, b.EnergyMJ, b.DurationMS)
	}
	if len(latA) != len(latB) {
		t.Fatalf("%s: latency sample counts diverged: %d vs %d", what, len(latA), len(latB))
	}
	for i := range latA {
		if math.Float64bits(latA[i]) != math.Float64bits(latB[i]) {
			t.Fatalf("%s: latency sample %d diverged: %v vs %v", what, i, latA[i], latB[i])
		}
	}
	if a.Power.Len() != b.Power.Len() {
		t.Fatalf("%s: power series lengths diverged: %d vs %d", what, a.Power.Len(), b.Power.Len())
	}
	for i := range a.Power.Times {
		if a.Power.Times[i] != b.Power.Times[i] ||
			math.Float64bits(a.Power.Values[i]) != math.Float64bits(b.Power.Values[i]) {
			t.Fatalf("%s: power series diverged at %d", what, i)
		}
	}
}

// TestFleetRouterBitTransparency: a 1-node fleet behind the router must
// be indistinguishable from a direct runtime.Server session — same node
// assembly (empty board-name prefix), same event sequence, bit-identical
// outcome — under every policy, since a singleton candidate set leaves a
// policy nothing to decide. This is the fleet layer's equivalence gate,
// the same contract the telemetry, fault, and batching layers carry.
func TestFleetRouterBitTransparency(t *testing.T) {
	b := asrBench(t)
	const (
		rps        = 40.0
		durationMS = 20000.0
		seed       = 7
	)
	ropts := runtime.Options{WarmupMS: 0.2 * durationMS}

	sv, _, err := b.NewSession(ropts)
	if err != nil {
		t.Fatal(err)
	}
	runtime.NewWorkload(seed).InjectPoisson(sv, rps, 0, sim.Time(durationMS))
	direct := sv.Collect()
	directLat := sv.LatencySamples()
	if direct.Completed == 0 {
		t.Fatal("direct session completed nothing; the gate has no teeth")
	}

	for _, pol := range Policies() {
		f, err := New(b, Options{Nodes: 1, Policy: pol, Runtime: ropts})
		if err != nil {
			t.Fatal(err)
		}
		runtime.NewWorkload(seed).InjectPoisson(f, rps, 0, sim.Time(durationMS))
		res := f.Collect()
		if res.Shed != 0 {
			t.Fatalf("policy %v: router shed %d on a healthy singleton", pol, res.Shed)
		}
		if res.Injected != direct.Arrivals {
			t.Fatalf("policy %v: router saw %d arrivals, direct saw %d", pol, res.Injected, direct.Arrivals)
		}
		sameRun(t, "router("+pol.String()+") vs direct", res.PerNode[0].Result, direct,
			f.LatencySamples(), directLat)
		// The aggregate view must equal the single node's view bit-for-bit.
		if math.Float64bits(res.P99MS) != math.Float64bits(direct.P99MS) ||
			math.Float64bits(res.EnergyMJ) != math.Float64bits(direct.EnergyMJ) {
			t.Fatalf("policy %v: aggregate diverged from the singleton node", pol)
		}
	}
}

// TestFleetDeterminismAcrossWorkers: a fleet session is single-threaded
// on its own simulator, so a sweep of fleet runs must produce
// bit-identical results whether the sweep runs serially or on a 4-wide
// worker pool — placements, per-node outcomes, and latency samples.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	b := asrBench(t)
	const (
		rps        = 120.0
		durationMS = 10000.0
		sessions   = 3
	)
	type outcome struct {
		res Result
		lat []float64
	}
	runAll := func(workers int) []outcome {
		out, err := parallel.MapN(workers, sessions, func(i int) (outcome, error) {
			f, err := New(b, Options{Nodes: 4, Policy: LeastUtil,
				Runtime: runtime.Options{WarmupMS: 0.2 * durationMS}})
			if err != nil {
				return outcome{}, err
			}
			runtime.NewWorkload(int64(20+i)).InjectPoisson(f, rps, 0, sim.Time(durationMS))
			return outcome{res: f.Collect(), lat: f.LatencySamples()}, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := runAll(1)
	pooled := runAll(4)
	for s := range serial {
		a, b := serial[s], pooled[s]
		if a.res.Injected == 0 || a.res.Completed == 0 {
			t.Fatalf("session %d served nothing", s)
		}
		for n := range a.res.PerNode {
			na, nb := a.res.PerNode[n], b.res.PerNode[n]
			if na.Placements != nb.Placements {
				t.Fatalf("session %d node %d: placements %d at workers=1, %d at workers=4",
					s, n, na.Placements, nb.Placements)
			}
			if na.Completed != nb.Completed ||
				math.Float64bits(na.EnergyMJ) != math.Float64bits(nb.EnergyMJ) {
				t.Fatalf("session %d node %d: outcome diverged across pools", s, n)
			}
		}
		if len(a.lat) != len(b.lat) {
			t.Fatalf("session %d: latency counts diverged: %d vs %d", s, len(a.lat), len(b.lat))
		}
		for i := range a.lat {
			if math.Float64bits(a.lat[i]) != math.Float64bits(b.lat[i]) {
				t.Fatalf("session %d: latency sample %d diverged", s, i)
			}
		}
	}
}

// fleetAccounting checks the conservation law every fleet run must obey:
// each offered arrival is placed or shed at the router; each placed
// arrival reaches exactly its node's admission; and each admitted
// request ends as completed, shed, a plan error, or a failed request —
// nothing is lost in routing.
func fleetAccounting(t *testing.T, res Result) {
	t.Helper()
	placed := 0
	for _, nr := range res.PerNode {
		placed += nr.Placements
		if nr.Placements != nr.Arrivals {
			t.Fatalf("node %s: %d placements but %d admitted arrivals", nr.Name, nr.Placements, nr.Arrivals)
		}
		if got := nr.Completed + nr.Shed + nr.PlanErrors + nr.FailedRequests; got != nr.Arrivals {
			t.Fatalf("node %s: %d admitted != %d completed + %d shed + %d plan errors + %d failed",
				nr.Name, nr.Arrivals, nr.Completed, nr.Shed, nr.PlanErrors, nr.FailedRequests)
		}
	}
	if placed+res.Shed != res.Injected {
		t.Fatalf("fleet: %d injected != %d placed + %d shed", res.Injected, placed, res.Shed)
	}
}

// TestFleetPolicies drives scenarios where the three policies provably
// differ: uniform nodes (spread balances, binpack concentrates), skewed
// node capacities (least-util loads the big node proportionally), a
// drained node (never placed on), and a suspect node (deprioritized
// while healthy capacity exists).
func TestFleetPolicies(t *testing.T) {
	b := asrBench(t)
	const (
		rps        = 120.0
		durationMS = 10000.0
		seed       = 9
	)
	run := func(opts Options, mutate func(*Fleet)) Result {
		t.Helper()
		opts.Runtime.WarmupMS = 0.2 * durationMS
		f, err := New(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(f)
		}
		runtime.NewWorkload(seed).InjectPoisson(f, rps, 0, sim.Time(durationMS))
		res := f.Collect()
		fleetAccounting(t, res)
		return res
	}
	placements := func(res Result) []int {
		out := make([]int, len(res.PerNode))
		for i, nr := range res.PerNode {
			out[i] = nr.Placements
		}
		return out
	}

	t.Run("uniform", func(t *testing.T) {
		spread := run(Options{Nodes: 4, Policy: Spread}, nil)
		pack := run(Options{Nodes: 4, Policy: Binpack}, nil)
		lu := run(Options{Nodes: 4, Policy: LeastUtil}, nil)

		// Spread rotates: equal nodes end within one placement of each other.
		ps := placements(spread)
		min, max := ps[0], ps[0]
		for _, p := range ps[1:] {
			if p < min {
				min = p
			}
			if p > max {
				max = p
			}
		}
		if max-min > 1 {
			t.Fatalf("spread placements not balanced: %v", ps)
		}
		// Binpack concentrates: its busiest node carries strictly more than
		// spread's busiest, and its emptiest strictly less.
		pp := placements(pack)
		packMax, packMin := pp[0], pp[0]
		for _, p := range pp[1:] {
			if p > packMax {
				packMax = p
			}
			if p < packMin {
				packMin = p
			}
		}
		if packMax <= max || packMin >= min {
			t.Fatalf("binpack did not concentrate: binpack %v vs spread %v", pp, ps)
		}
		// All three produce different placement vectors on the same trace.
		pl := placements(lu)
		same := func(a, b []int) bool {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if same(ps, pp) || same(ps, pl) {
			t.Fatalf("policies indistinguishable: spread %v, binpack %v, least-util %v", ps, pp, pl)
		}
		// No routing losses on a healthy uniform fleet.
		if spread.Shed+pack.Shed+lu.Shed != 0 {
			t.Fatalf("healthy fleet shed requests: %d/%d/%d", spread.Shed, pack.Shed, lu.Shed)
		}
	})

	t.Run("skewed-capacity", func(t *testing.T) {
		// Node 0 gets double the power cap → double the boards. Least-util
		// weighs backlog per slot, so the big node must absorb strictly more
		// than any small node; spread ignores capacity and stays ±1.
		opts := Options{Nodes: 3, Policy: LeastUtil, NodeCapsW: []float64{1000, 500, 500}}
		lu := run(opts, nil)
		pl := placements(lu)
		if pl[0] <= pl[1] || pl[0] <= pl[2] {
			t.Fatalf("least-util ignored the double-capacity node: %v", pl)
		}
		opts.Policy = Spread
		sp := run(opts, nil)
		ps := placements(sp)
		for i := 1; i < len(ps); i++ {
			if d := ps[0] - ps[i]; d < -1 || d > 1 {
				t.Fatalf("spread should ignore capacity skew: %v", ps)
			}
		}
	})

	t.Run("drained-node", func(t *testing.T) {
		res := run(Options{Nodes: 3, Policy: Spread}, func(f *Fleet) {
			f.DrainNode(1)
			if f.ActiveNodes() != 2 {
				t.Fatalf("ActiveNodes = %d after draining 1 of 3", f.ActiveNodes())
			}
		})
		if got := res.PerNode[1].Placements; got != 0 {
			t.Fatalf("drained node received %d placements", got)
		}
		if res.PerNode[1].Health != NodeDraining {
			t.Fatalf("drained node reports %v", res.PerNode[1].Health)
		}
		if res.Shed != 0 {
			t.Fatalf("%d shed with two healthy nodes available", res.Shed)
		}
	})

	t.Run("suspect-node", func(t *testing.T) {
		// One of node 1's boards fails mid-run and never recovers. The first
		// task lost on it marks the board down, the node turns suspect, and
		// the router stops placing there while healthy nodes exist — so the
		// suspect node ends with strictly fewer placements than any healthy
		// node, where plain spread would have kept them within one.
		cfg := &fault.Config{Seed: seed, Script: []fault.Window{
			{Board: "n1/gpu0", Kind: fault.Failure, Start: 2000, End: 1e9},
		}}
		res := run(Options{Nodes: 3, Policy: Spread, Runtime: runtime.Options{Faults: cfg}}, nil)
		if res.PerNode[1].Health != NodeSuspect {
			t.Fatalf("faulted node reports %v, want suspect", res.PerNode[1].Health)
		}
		for _, i := range []int{0, 2} {
			if res.PerNode[1].Placements >= res.PerNode[i].Placements {
				t.Fatalf("suspect node kept pace with healthy node %d: %d vs %d",
					i, res.PerNode[1].Placements, res.PerNode[i].Placements)
			}
		}
	})
}

// TestFleetNodeDownRebalance scripts every board of one node to fail and
// stay failed: the router must observe the node-down transition, shift
// all subsequent placements to the survivors, and keep the accounting
// conservation law intact — every injected arrival is still placed or
// shed, and every placed arrival completes, sheds, or fails.
func TestFleetNodeDownRebalance(t *testing.T) {
	b := asrBench(t)
	const (
		rps        = 120.0
		durationMS = 16000.0
		seed       = 11
	)
	// Node 1's full board set under the default 500 W Heter-Poly plan.
	script := []fault.Window{{Board: "n1/gpu0", Kind: fault.Failure, Start: 3000, End: 1e9}}
	plan, err := cluster.Provision(cluster.Config{Arch: b.Arch, Setting: b.Setting, PowerCapW: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plan.NumFPGA; i++ {
		script = append(script, fault.Window{
			Board: "n1/fpga" + string(rune('0'+i)), Kind: fault.Failure, Start: 3000, End: 1e9,
		})
	}
	cfg := &fault.Config{Seed: seed, Script: script}

	f, err := New(b, Options{Nodes: 3, Policy: Spread,
		Runtime: runtime.Options{WarmupMS: 0.2 * durationMS, Faults: cfg}})
	if err != nil {
		t.Fatal(err)
	}
	runtime.NewWorkload(seed).InjectPoisson(f, rps, 0, sim.Time(durationMS))
	res := f.Collect()

	fleetAccounting(t, res)
	if res.NodeDownEvents == 0 {
		t.Fatalf("router never observed the node-down transition: %s", res)
	}
	down := res.PerNode[1]
	if down.TaskFailures == 0 {
		t.Fatal("scripted failures never fired; the test lost its teeth")
	}
	// Rebalance: the survivors carried the load the dead node dropped.
	if down.Placements >= res.PerNode[0].Placements || down.Placements >= res.PerNode[2].Placements {
		t.Fatalf("dead node kept receiving placements: %v / %v / %v",
			res.PerNode[0].Placements, down.Placements, res.PerNode[2].Placements)
	}
	if res.PerNode[0].Completed == 0 || res.PerNode[2].Completed == 0 {
		t.Fatal("surviving nodes completed nothing")
	}
}

// TestFleetTargetNodesActuator: SetTargetNodes is the autoscaler's
// actuator — shrinking the target drains the top shards (zero new
// placements), growing it restores them, and draining every node makes
// the router shed rather than wedge.
func TestFleetTargetNodesActuator(t *testing.T) {
	b := asrBench(t)
	f, err := New(b, Options{Nodes: 4, Policy: Spread, Runtime: runtime.Options{WarmupMS: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	f.SetTargetNodes(2)
	if f.ActiveNodes() != 2 {
		t.Fatalf("ActiveNodes = %d, want 2", f.ActiveNodes())
	}
	runtime.NewWorkload(3).InjectPoisson(f, 60, 0, 6000)
	res := f.Collect()
	fleetAccounting(t, res)
	if res.PerNode[2].Placements != 0 || res.PerNode[3].Placements != 0 {
		t.Fatalf("drained shards received placements: %v", res.PerNode)
	}
	if res.PerNode[0].Placements == 0 || res.PerNode[1].Placements == 0 {
		t.Fatalf("active shards received nothing: %v", res.PerNode)
	}
	f.SetTargetNodes(4)
	if f.ActiveNodes() != 4 {
		t.Fatalf("ActiveNodes = %d after scale-up, want 4", f.ActiveNodes())
	}

	// A fully-drained fleet sheds instead of wedging the drain loop.
	f2, err := New(b, Options{Nodes: 2, Policy: Binpack, Runtime: runtime.Options{WarmupMS: 0}})
	if err != nil {
		t.Fatal(err)
	}
	f2.SetTargetNodes(0)
	runtime.NewWorkload(4).InjectConstant(f2, 10, 0, 1000)
	res2 := f2.Collect()
	if res2.Shed != res2.Injected || res2.Injected == 0 {
		t.Fatalf("fully-drained fleet: %d injected, %d shed", res2.Injected, res2.Shed)
	}
}

// TestFleetTelemetryRollup: per-shard recorders stay independent while
// the rollup aggregates them into poly_fleet_* gauges whose allocatable
// sums match the nodes' declared envelopes, and node-health gauges track
// the router's belief.
func TestFleetTelemetryRollup(t *testing.T) {
	b := asrBench(t)
	f, err := New(b, Options{Nodes: 2, Policy: Spread, WithTelemetry: true,
		Runtime: runtime.Options{WarmupMS: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	runtime.NewWorkload(5).InjectPoisson(f, 60, 0, 6000)
	res := f.Collect()
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	for i := 0; i < f.Nodes(); i++ {
		if f.Recorder(i) == nil {
			t.Fatalf("shard %d has no recorder", i)
		}
		if got := f.Recorder(i).SpanTotal(); got != res.PerNode[i].Completed {
			t.Fatalf("shard %d recorder saw %d spans, node completed %d",
				i, got, res.PerNode[i].Completed)
		}
	}

	var buf strings.Builder
	if err := f.Rollup().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	reg := f.Rollup().Registry()
	if got := reg.Gauge("poly_fleet_nodes", "").Value(); got != 2 {
		t.Fatalf("poly_fleet_nodes = %v, want 2", got)
	}
	wantSlots := f.Node(0).Capacity().ComputeSlots + f.Node(1).Capacity().ComputeSlots
	if got := reg.Gauge("poly_fleet_allocatable", "", "resource", "compute_slots").Value(); got != wantSlots {
		t.Fatalf("poly_fleet_allocatable{compute_slots} = %v, want %v", got, wantSlots)
	}
	for _, node := range []string{"n0", "n1"} {
		if got := reg.Gauge("poly_fleet_node_health", "", "node", node, "state", "healthy").Value(); got != 1 {
			t.Fatalf("node %s not marked healthy in the rollup", node)
		}
	}
	for _, want := range []string{"poly_fleet_nodes", "poly_fleet_allocatable", "poly_fleet_node_health"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %s:\n%s", want, out)
		}
	}

	// Health updates flow through: drain n1 and re-collect the gauges.
	f.Rollup().SetNodeHealth("n1", "draining")
	if got := reg.Gauge("poly_fleet_node_health", "", "node", "n1", "state", "draining").Value(); got != 1 {
		t.Fatal("draining state not set")
	}
	if got := reg.Gauge("poly_fleet_node_health", "", "node", "n1", "state", "healthy").Value(); got != 0 {
		t.Fatal("healthy state not cleared")
	}

	// A shared Sink across shards is a configuration error, not a silent
	// corruption.
	if _, err := New(b, Options{Nodes: 2, Runtime: runtime.Options{Telemetry: f.Recorder(0)}}); err == nil {
		t.Fatal("New accepted a shared Runtime.Telemetry sink")
	}
}

// TestPolicyParsing covers the CLI surface: every policy round-trips
// through its String name, aliases resolve, junk is rejected.
func TestPolicyParsing(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	for alias, want := range map[string]Policy{
		"pack": Binpack, "rr": Spread, "roundrobin": Spread, "least-utilization": LeastUtil,
	} {
		got, err := ParsePolicy(alias)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", alias, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("ParsePolicy accepted junk")
	}
}

// TestLeastUtilizedTieBreaks pins the selection order: utilization
// first, in-flight second, slice order last — the determinism contract
// placement reproducibility rests on.
func TestLeastUtilizedTieBreaks(t *testing.T) {
	mk := func(backlog, slots, inflight int) candidate {
		return candidate{sig: Signals{
			Backlog: backlog, SlotsAllocatable: float64(slots), InFlight: inflight,
		}}
	}
	a, b, c := mk(4, 4, 3), mk(2, 4, 3), mk(2, 4, 2)
	if got := leastUtilized([]candidate{a, b, c}); got != c {
		t.Fatalf("want lowest in-flight among utilization ties, got %+v", got.sig)
	}
	// Pure tie: first in slice order wins.
	d := mk(2, 4, 2)
	if got := leastUtilized([]candidate{c, d}); got != c {
		t.Fatal("tie must keep slice order")
	}
	if got := leastUtilized([]candidate{d, c}); got != d {
		t.Fatal("tie must keep slice order (reversed)")
	}
	// Capacity skew: same backlog, more slots → less utilized.
	big := mk(4, 8, 9)
	if got := leastUtilized([]candidate{a, big}); got != big {
		t.Fatal("backlog-per-slot must weigh capacity")
	}
}

// BenchmarkFleetServe is the fleet-path cost benchmark CI gates: a
// 4-node fleet behind the least-util router serving the same per-node
// rate as BenchmarkServeSteadyState. The delta against 4× the steady-
// state cost is what routing and multi-shard assembly add. Pinned to
// the serial shared clock so the number keeps meaning "fleet layer
// overhead"; BenchmarkFleetServeParallel measures the same run under
// the epoch coordinator.
func BenchmarkFleetServe(b *testing.B) {
	benchmarkFleetServe(b, SyncSerial)
}

// BenchmarkFleetServeParallel is BenchmarkFleetServe under the default
// parallel sync mode: per-shard simulators advanced concurrently by the
// epoch coordinator. CI's bench gate asserts its ns/op does not exceed
// the serial benchmark's (the multi-core speedup claim); on a
// single-core runner it degrades to the serial path plus coordinator
// bookkeeping.
func BenchmarkFleetServeParallel(b *testing.B) {
	benchmarkFleetServe(b, SyncParallel)
}

func benchmarkFleetServe(b *testing.B, mode SyncMode) {
	bench := asrBench(b)
	const (
		rps        = 160.0
		durationMS = 5000.0
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(bench, Options{Nodes: 4, Policy: LeastUtil, Sync: mode,
			Runtime: runtime.Options{WarmupMS: 1000}})
		if err != nil {
			b.Fatal(err)
		}
		runtime.NewWorkload(1).InjectConstant(f, rps, 0, sim.Time(durationMS))
		res := f.Collect()
		if res.PlanErrors != 0 || res.Shed != 0 {
			b.Fatalf("%d plan errors, %d shed", res.PlanErrors, res.Shed)
		}
	}
}
