package fault

import (
	"math"
	"testing"

	"poly/internal/sim"
)

var testBoards = []string{"gpu0", "fpga0", "fpga1", "fpga2"}

// TestZeroConfigIsTransparent: an injector built from the zero config must
// answer every query as if it did not exist — scale exactly 1, never down,
// never aborting. The runtime's zero-rate equivalence test rests on this.
func TestZeroConfigIsTransparent(t *testing.T) {
	in := New(Config{Seed: 42}, testBoards)
	for _, b := range testBoards {
		for _, at := range []sim.Time{0, 1, 999.5, 50_000, 500_000} {
			if s := in.ExecScale(b, "k|board|cfg", at); s != 1 {
				t.Fatalf("ExecScale(%s, %v) = %v, want exactly 1", b, at, s)
			}
			if in.BoardDown(b, at) {
				t.Fatalf("BoardDown(%s, %v) on zero config", b, at)
			}
			if in.ReconfigAborts(b, "impl", at) {
				t.Fatalf("ReconfigAborts(%s) on zero config", b)
			}
			if got := in.DownUntil(b, at); got != at {
				t.Fatalf("DownUntil(%s, %v) = %v, want %v", b, at, got, at)
			}
		}
	}
	if in.Config().Enabled() {
		t.Fatal("zero config reports Enabled")
	}
}

// TestDeterministicPlan: two injectors from the same config must carry
// bit-identical fault timelines and answer queries identically, and the
// plan must not depend on board listing order.
func TestDeterministicPlan(t *testing.T) {
	cfg := Config{Seed: 7, SlowdownRatePerSec: 0.1, SlowdownFactor: 5,
		FailureRatePerSec: 0.05, MispredictAmp: 0.2, ReconfigAbortProb: 0.4}
	a := New(cfg, testBoards)
	reversed := []string{"fpga2", "fpga1", "fpga0", "gpu0"}
	b := New(cfg, reversed)
	for _, board := range testBoards {
		wa, wb := a.Windows(board), b.Windows(board)
		if len(wa) != len(wb) {
			t.Fatalf("%s: window counts %d vs %d", board, len(wa), len(wb))
		}
		if len(wa) == 0 {
			t.Fatalf("%s: rates above zero generated no windows", board)
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("%s window %d: %+v vs %+v", board, i, wa[i], wb[i])
			}
		}
		for at := sim.Time(0); at < 20_000; at += 37 {
			sa := a.ExecScale(board, "impl-x", at)
			sb := b.ExecScale(board, "impl-x", at)
			if math.Float64bits(sa) != math.Float64bits(sb) {
				t.Fatalf("%s @%v: scale %v vs %v", board, at, sa, sb)
			}
			if a.BoardDown(board, at) != b.BoardDown(board, at) {
				t.Fatalf("%s @%v: down disagree", board, at)
			}
		}
		// The abort sequence is stateful per board but deterministic.
		for i := 0; i < 50; i++ {
			if a.ReconfigAborts(board, "impl-x", 0) != b.ReconfigAborts(board, "impl-x", 0) {
				t.Fatalf("%s: abort draw %d diverged", board, i)
			}
		}
	}
}

// TestScriptedWindows: scripted windows land on the right board with the
// right span, and DownUntil reports the window end.
func TestScriptedWindows(t *testing.T) {
	cfg := Config{Seed: 1, Script: []Window{
		{Board: "gpu0", Kind: Failure, Start: 5000, End: 9000},
		{Board: "fpga1", Kind: Slowdown, Start: 2000, End: 4000, Factor: 6},
	}}
	in := New(cfg, testBoards)
	if !in.BoardDown("gpu0", 5000) || !in.BoardDown("gpu0", 8999) {
		t.Fatal("gpu0 not down inside its scripted window")
	}
	if in.BoardDown("gpu0", 4999) || in.BoardDown("gpu0", 9000) {
		t.Fatal("gpu0 down outside its scripted window")
	}
	if got := in.DownUntil("gpu0", 6000); got != 9000 {
		t.Fatalf("DownUntil = %v, want 9000", got)
	}
	if s := in.ExecScale("fpga1", "impl", 3000); s != 6 {
		t.Fatalf("scripted slowdown scale = %v, want 6", s)
	}
	if s := in.ExecScale("fpga1", "impl", 4500); s != 1 {
		t.Fatalf("scale outside window = %v, want 1", s)
	}
	if in.BoardDown("fpga1", 3000) {
		t.Fatal("slowdown window reported as failure")
	}
}

// TestMispredictNoiseBounded: the misprediction scale stays in
// [1-amp, 1+amp] and actually varies across instants and impls.
func TestMispredictNoiseBounded(t *testing.T) {
	const amp = 0.25
	in := New(Config{Seed: 3, MispredictAmp: amp}, testBoards)
	seen := map[float64]bool{}
	for at := sim.Time(0); at < 1000; at++ {
		s := in.ExecScale("gpu0", "k|b|c", at)
		if s < 1-amp || s > 1+amp {
			t.Fatalf("scale %v outside [%v, %v]", s, 1-amp, 1+amp)
		}
		seen[s] = true
	}
	if len(seen) < 100 {
		t.Fatalf("noise nearly constant: %d distinct values over 1000 ms", len(seen))
	}
}

// TestReconfigAbortRate: the abort draw hits roughly the configured
// probability over many attempts.
func TestReconfigAbortRate(t *testing.T) {
	in := New(Config{Seed: 9, ReconfigAbortProb: 0.3}, testBoards)
	aborts := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if in.ReconfigAborts("fpga0", "impl", 0) {
			aborts++
		}
	}
	got := float64(aborts) / n
	if got < 0.25 || got > 0.35 {
		t.Fatalf("abort rate %.3f, want ≈0.30", got)
	}
}

// TestPresets: every documented preset parses; unknown names error.
func TestPresets(t *testing.T) {
	for _, name := range []string{"off", "none", "", "slowdowns", "boardfail", "reconfig", "mispredict", "chaos"} {
		if _, err := Preset(name, 1); err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
	}
	if _, err := Preset("nope", 1); err == nil {
		t.Fatal("unknown preset accepted")
	}
	c, _ := Preset("chaos", 5)
	if !c.Enabled() || c.Seed != 5 {
		t.Fatalf("chaos preset: %+v", c)
	}
	if c, _ := Preset("off", 5); c.Enabled() {
		t.Fatal("off preset enabled")
	}
}
