// Package fault is Poly's deterministic fault-injection layer: it
// perturbs the simulated cluster the way real datacenter hardware
// misbehaves — boards transiently slow down, boards fail outright and
// later come back, FPGA bitstream loads abort, and the analytical model's
// latency predictions drift from what the "hardware" delivers.
//
// Everything is precomputed from a seed at construction time: each
// board's fault windows are generated once, so every query is a pure
// function of (board, time) and a run with a given fault seed is
// bit-identical at any POLY_WORKERS pool size. The injector implements
// device.FaultHook structurally; a nil hook (faults disabled) costs the
// devices only nil-checks and leaves serving bit-identical to a build
// without this package.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"poly/internal/sim"
)

// Kind distinguishes the fault classes an injected window can carry.
type Kind int

const (
	// Slowdown inflates the board's service times by Factor for the span.
	Slowdown Kind = iota
	// Failure takes the board fully down: new submissions are rejected
	// and queued work is flushed; in-flight executions drain.
	Failure
)

// String names the fault kind for scenario listings.
func (k Kind) String() string {
	switch k {
	case Slowdown:
		return "slowdown"
	case Failure:
		return "failure"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Window is one scripted or generated fault span on one board.
type Window struct {
	Board string
	Kind  Kind
	Start sim.Time
	End   sim.Time
	// Factor is the service-time multiplier for Slowdown windows
	// (ignored for Failure).
	Factor float64
}

// Config describes one fault scenario. The zero value injects nothing:
// an injector built from it is behaviorally identical to no injector at
// all, which the runtime's equivalence tests enforce.
type Config struct {
	// Seed drives every random choice; runs with equal seeds and configs
	// produce bit-identical fault plans.
	Seed int64
	// HorizonMS bounds fault generation (default 120 s of simulated time).
	// Scripted windows may extend past it.
	HorizonMS float64

	// SlowdownRatePerSec is the expected transient-slowdown windows per
	// board-second; SlowdownFactor multiplies service times inside a
	// window (default 4) and SlowdownMeanMS is the mean window length
	// (default 800 ms).
	SlowdownRatePerSec float64
	SlowdownFactor     float64
	SlowdownMeanMS     float64

	// FailureRatePerSec is the expected full-board failures per
	// board-second; FailureMeanMS is the mean outage before the board
	// works again (default 2000 ms).
	FailureRatePerSec float64
	FailureMeanMS     float64

	// ReconfigAbortProb is the probability an FPGA bitstream load aborts:
	// the reconfiguration penalty is paid but the bitstream ends up not
	// resident.
	ReconfigAbortProb float64

	// MispredictAmp widens the gap between the analytical model's
	// predicted latency and the delivered one: each execution is scaled
	// by a deterministic factor in [1-amp, 1+amp] on top of the device's
	// built-in calibration noise.
	MispredictAmp float64

	// Script lists explicit fault windows merged with the generated ones
	// — how tests stage exact failure timelines.
	Script []Window
}

// Enabled reports whether the config can ever perturb a run.
func (c Config) Enabled() bool {
	return c.SlowdownRatePerSec > 0 || c.FailureRatePerSec > 0 ||
		c.ReconfigAbortProb > 0 || c.MispredictAmp > 0 || len(c.Script) > 0
}

// Preset returns a named scenario for the CLI: off, slowdowns, boardfail,
// reconfig, mispredict, or chaos.
func Preset(name string, seed int64) (Config, error) {
	c := Config{Seed: seed}
	switch strings.ToLower(name) {
	case "", "off", "none":
	case "slowdowns":
		c.SlowdownRatePerSec = 0.05
		c.SlowdownFactor = 4
		c.SlowdownMeanMS = 800
	case "boardfail":
		c.FailureRatePerSec = 0.02
		c.FailureMeanMS = 2500
	case "reconfig":
		c.ReconfigAbortProb = 0.3
	case "mispredict":
		c.MispredictAmp = 0.3
	case "chaos":
		c.SlowdownRatePerSec = 0.04
		c.SlowdownFactor = 4
		c.SlowdownMeanMS = 600
		c.FailureRatePerSec = 0.015
		c.FailureMeanMS = 2000
		c.ReconfigAbortProb = 0.2
		c.MispredictAmp = 0.15
	default:
		return Config{}, fmt.Errorf("fault: unknown preset %q (want off, slowdowns, boardfail, reconfig, mispredict, or chaos)", name)
	}
	return c, nil
}

// boardFaults is one board's precomputed fault timeline.
type boardFaults struct {
	slow []Window // sorted by Start
	down []Window // sorted by Start
	// salt folds the board name into per-execution hash draws.
	salt uint64
	// reconfigSeq counts bitstream-load attempts on the board; each
	// attempt consumes one deterministic abort draw. Sessions are
	// single-threaded, so the sequence is reproducible.
	reconfigSeq uint64
}

// Injector holds a scenario's precomputed fault plan for one node.
// It is bound to one session (one simulator) and, like the devices it
// perturbs, is not safe for concurrent use across sessions.
type Injector struct {
	cfg    Config
	boards map[string]*boardFaults
}

// New precomputes the fault plan for the named boards. Generation is
// per-board (seed ⊕ board-name hash), so the plan does not depend on the
// order boards are listed in.
func New(cfg Config, boards []string) *Injector {
	if cfg.HorizonMS <= 0 {
		cfg.HorizonMS = 120_000
	}
	if cfg.SlowdownFactor <= 0 {
		cfg.SlowdownFactor = 4
	}
	if cfg.SlowdownMeanMS <= 0 {
		cfg.SlowdownMeanMS = 800
	}
	if cfg.FailureMeanMS <= 0 {
		cfg.FailureMeanMS = 2000
	}
	in := &Injector{cfg: cfg, boards: make(map[string]*boardFaults, len(boards))}
	for _, name := range boards {
		bf := &boardFaults{salt: hash64(name)}
		rng := sim.NewRNG(cfg.Seed ^ int64(bf.salt))
		bf.slow = genWindows(rng, name, Slowdown, cfg.SlowdownRatePerSec,
			cfg.SlowdownMeanMS, cfg.SlowdownFactor, cfg.HorizonMS)
		bf.down = genWindows(rng, name, Failure, cfg.FailureRatePerSec,
			cfg.FailureMeanMS, 0, cfg.HorizonMS)
		in.boards[name] = bf
	}
	for _, w := range cfg.Script {
		bf := in.boards[w.Board]
		if bf == nil || w.End <= w.Start {
			continue
		}
		switch w.Kind {
		case Slowdown:
			if w.Factor <= 0 {
				w.Factor = cfg.SlowdownFactor
			}
			bf.slow = insertSorted(bf.slow, w)
		case Failure:
			bf.down = insertSorted(bf.down, w)
		}
	}
	return in
}

// genWindows draws a Poisson process of fault windows over the horizon.
func genWindows(rng *sim.RNG, board string, kind Kind, ratePerSec, meanMS, factor, horizonMS float64) []Window {
	if ratePerSec <= 0 {
		return nil
	}
	meanGapMS := 1000 / ratePerSec
	var out []Window
	for t := rng.Exp(meanGapMS); t < horizonMS; t += rng.Exp(meanGapMS) {
		d := rng.Exp(meanMS)
		if d < 1 {
			d = 1
		}
		out = append(out, Window{Board: board, Kind: kind, Factor: factor,
			Start: sim.Time(t), End: sim.Time(t + d)})
	}
	return out
}

// insertSorted keeps the window slice ordered by Start.
func insertSorted(ws []Window, w Window) []Window {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].Start > w.Start })
	ws = append(ws, Window{})
	copy(ws[i+1:], ws[i:])
	ws[i] = w
	return ws
}

// covering returns the window containing at, or nil. Windows may overlap;
// the one with the latest end wins so merged outages extend correctly.
func covering(ws []Window, at sim.Time) *Window {
	var hit *Window
	for i := range ws {
		w := &ws[i]
		if w.Start > at {
			break
		}
		if at < w.End && (hit == nil || w.End > hit.End) {
			hit = w
		}
	}
	return hit
}

// hash64 is FNV-1a over a string.
func hash64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is splitmix64: a statistically strong avalanche of one draw index.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 { return float64(mix(x)>>11) / (1 << 53) }

// ExecScale returns the multiplier applied to one execution's duration on
// a board: the transient-slowdown factor when the instant falls in a
// slowdown window, times the model-misprediction noise for the
// implementation. Returns exactly 1 when nothing applies, so disabled
// scenarios are bit-transparent.
func (in *Injector) ExecScale(board, implID string, at sim.Time) float64 {
	bf := in.boards[board]
	if bf == nil {
		return 1
	}
	scale := 1.0
	if w := covering(bf.slow, at); w != nil {
		scale = w.Factor
	}
	if amp := in.cfg.MispredictAmp; amp > 0 {
		// A pure function of (seed, board, impl, ms-quantized instant):
		// reproducible regardless of query order.
		d := uint64(in.cfg.Seed) ^ bf.salt ^ hash64(implID) ^ uint64(int64(at))
		scale *= 1 + amp*(2*unit(d)-1)
	}
	return scale
}

// BoardDown reports whether the board is inside a failure window.
func (in *Injector) BoardDown(board string, at sim.Time) bool {
	bf := in.boards[board]
	if bf == nil {
		return false
	}
	return covering(bf.down, at) != nil
}

// DownUntil returns the end of the failure window covering at, or at
// itself when the board is up — the earliest instant the hardware could
// serve again (the runtime's backoff may wait longer).
func (in *Injector) DownUntil(board string, at sim.Time) sim.Time {
	bf := in.boards[board]
	if bf == nil {
		return at
	}
	if w := covering(bf.down, at); w != nil {
		return w.End
	}
	return at
}

// ReconfigAborts decides whether one bitstream-load attempt fails. Each
// call consumes one deterministic draw from the board's attempt sequence.
func (in *Injector) ReconfigAborts(board, implID string, at sim.Time) bool {
	p := in.cfg.ReconfigAbortProb
	if p <= 0 {
		return false
	}
	bf := in.boards[board]
	if bf == nil {
		return false
	}
	bf.reconfigSeq++
	d := uint64(in.cfg.Seed) ^ bf.salt ^ hash64(implID) ^ (bf.reconfigSeq * 0x2545f4914f6cdd1d)
	return unit(d) < p
}

// Config returns the scenario the injector was built from.
func (in *Injector) Config() Config { return in.cfg }

// Windows returns a board's fault timeline (slowdowns then failures,
// each sorted by start) for scenario listings and tests.
func (in *Injector) Windows(board string) []Window {
	bf := in.boards[board]
	if bf == nil {
		return nil
	}
	out := make([]Window, 0, len(bf.slow)+len(bf.down))
	out = append(out, bf.slow...)
	out = append(out, bf.down...)
	return out
}

// Summary renders the scenario for CLI output: per-board window counts
// and the global knobs that are on.
func (in *Injector) Summary() string {
	var b strings.Builder
	var knobs []string
	c := in.cfg
	if c.SlowdownRatePerSec > 0 {
		knobs = append(knobs, fmt.Sprintf("slowdowns %.3g/s ×%.1f", c.SlowdownRatePerSec, c.SlowdownFactor))
	}
	if c.FailureRatePerSec > 0 {
		knobs = append(knobs, fmt.Sprintf("failures %.3g/s ~%.0f ms", c.FailureRatePerSec, c.FailureMeanMS))
	}
	if c.ReconfigAbortProb > 0 {
		knobs = append(knobs, fmt.Sprintf("reconfig aborts %.0f%%", 100*c.ReconfigAbortProb))
	}
	if c.MispredictAmp > 0 {
		knobs = append(knobs, fmt.Sprintf("mispredict ±%.0f%%", 100*c.MispredictAmp))
	}
	if len(c.Script) > 0 {
		knobs = append(knobs, fmt.Sprintf("%d scripted windows", len(c.Script)))
	}
	if len(knobs) == 0 {
		return "faults: none"
	}
	fmt.Fprintf(&b, "faults: %s (seed %d)", strings.Join(knobs, ", "), c.Seed)
	names := make([]string, 0, len(in.boards))
	for n := range in.boards {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		bf := in.boards[n]
		if len(bf.slow) == 0 && len(bf.down) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n  %s: %d slowdown, %d failure windows", n, len(bf.slow), len(bf.down))
	}
	return b.String()
}
