package sim

import (
	"math"
	"sort"
	"testing"
)

// sortedPercentile is the reference nearest-rank definition the
// bucket-localized implementation must match exactly: sort a copy, take
// the ceil(p/100*n)-th value.
func sortedPercentile(values []float64, p float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// TestSamplePercentileMatchesSortReference pins the bucket-localized
// selection to the full-sort nearest-rank reference, bit for bit, across
// value ranges that land inside, between, and beyond the histogram
// bounds — including exact bucket boundaries and duplicates.
func TestSamplePercentileMatchesSortReference(t *testing.T) {
	rng := NewRNG(42)
	gens := map[string]func() float64{
		"uniform-wide":  func() float64 { return rng.Float64() * 6000 },
		"uniform-tight": func() float64 { return rng.Float64() * 3 },
		"exp":           func() float64 { return rng.Exp(40) },
		"boundary":      func() float64 { return HistogramBoundsMS[int(rng.Float64()*float64(len(HistogramBoundsMS)))] },
	}
	ps := []float64{0, 1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100}
	for name, gen := range gens {
		for _, n := range []int{1, 2, 7, 100, 1000} {
			var s Sample
			raw := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				v := gen()
				raw = append(raw, v)
				s.Add(v)
			}
			for _, p := range ps {
				got, want := s.Percentile(p), sortedPercentile(raw, p)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s n=%d: P%v = %v, want %v", name, n, p, got, want)
				}
			}
			// Percentile queries must never reorder the sample.
			vals := s.Values()
			for i, v := range raw {
				if math.Float64bits(vals[i]) != math.Float64bits(v) {
					t.Fatalf("%s n=%d: Values()[%d] = %v, want insertion-order %v", name, n, i, vals[i], v)
				}
			}
		}
	}
}

// TestSampleBucketCounts checks the incremental histogram: counts sum to
// the sample size, boundary values land in the `le` bucket (value ==
// bound counts toward that bound, Prometheus semantics), and Reset
// clears the counts.
func TestSampleBucketCounts(t *testing.T) {
	if BucketIndex(HistogramBoundsMS[0]) != 0 {
		t.Fatalf("value at first bound must land in bucket 0, got %d", BucketIndex(HistogramBoundsMS[0]))
	}
	last := HistogramBoundsMS[len(HistogramBoundsMS)-1]
	if BucketIndex(last+1) != NumHistogramBuckets-1 {
		t.Fatalf("value beyond last bound must land in overflow bucket %d, got %d",
			NumHistogramBuckets-1, BucketIndex(last+1))
	}

	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(float64(i) * 11.3)
	}
	total := 0
	for _, c := range s.BucketCounts() {
		total += c
	}
	if total != s.Count() {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count())
	}
	s.Reset()
	for _, c := range s.BucketCounts() {
		if c != 0 {
			t.Fatal("Reset must zero bucket counts")
		}
	}
}
