package sim

import (
	"container/heap"
	"fmt"
	"testing"
)

// ---------------------------------------------------------------------------
// Reference oracle: the pre-arena event core, verbatim container/heap
// implementation with per-event allocations. The arena rewrite must fire
// the exact same callbacks in the exact same order.
// ---------------------------------------------------------------------------

type oracleEvent struct {
	at     Time
	seq    uint64
	index  int
	action func()
}

type oracleQueue []*oracleEvent

func (q oracleQueue) Len() int { return len(q) }

func (q oracleQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q oracleQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *oracleQueue) Push(x any) {
	e := x.(*oracleEvent)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *oracleQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type oracleSim struct {
	now    Time
	seq    uint64
	queue  oracleQueue
	fired  uint64
	halted bool
}

func (s *oracleSim) At(at Time, action func()) *oracleEvent {
	if at < s.now {
		at = s.now
	}
	e := &oracleEvent{at: at, seq: s.seq, action: action}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

func (s *oracleSim) Cancel(e *oracleEvent) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
	e.action = nil
	return true
}

func (s *oracleSim) Halt() { s.halted = true }

func (s *oracleSim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*oracleEvent)
	s.now = e.at
	s.fired++
	action := e.action
	e.action = nil
	action()
	return true
}

func (s *oracleSim) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

func (s *oracleSim) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// ---------------------------------------------------------------------------
// Scripted dual-drive: a deterministic PRNG generates an op script that is
// replayed against both cores. Each scheduled event logs its ID and firing
// time, schedules children (sometimes in the past, exercising the clamp),
// cancels a random live event, or halts the running loop.
// ---------------------------------------------------------------------------

type arenaScriptOp struct {
	kind     int  // 0: schedule root, 1: cancel k-th live, 2: run, 3: runUntil, 4: step
	at       Time // schedule time / runUntil deadline
	children int  // events the callback schedules, at at+childDelta[i]
	deltas   [3]Time
	cancelK  int
	halt     bool // callback halts the simulator
}

func genArenaScript(rng *RNG, n int) []arenaScriptOp {
	ops := make([]arenaScriptOp, 0, n)
	for i := 0; i < n; i++ {
		var op arenaScriptOp
		switch r := rng.Float64(); {
		case r < 0.55:
			op.kind = 0
			op.at = Time(rng.Uniform(0, 500))
			op.children = int(rng.Uniform(0, 3.5))
			for j := range op.deltas {
				// Negative deltas exercise the past-clamp path.
				op.deltas[j] = Time(rng.Uniform(-40, 120))
			}
			op.halt = rng.Float64() < 0.05
		case r < 0.7:
			op.kind = 1
			op.cancelK = int(rng.Uniform(0, 16))
		case r < 0.8:
			op.kind = 2
		case r < 0.95:
			op.kind = 3
			op.at = Time(rng.Uniform(0, 600))
		default:
			op.kind = 4
		}
		ops = append(ops, op)
	}
	return ops
}

// arenaDriver replays a script against one of the two cores through a
// minimal schedule/cancel/run facade, recording the firing log.
type arenaDriver struct {
	log      []string
	nextID   int
	schedule func(at Time, action func()) (cancel func() bool)
	run      func()
	runUntil func(Time)
	step     func() bool
	halt     func()
	now      func() Time
	pending  func() int
	fired    func() uint64
	// live holds cancel funcs for events believed pending, in issue order.
	live []func() bool
}

func (d *arenaDriver) fire(id int, op arenaScriptOp) {
	d.log = append(d.log, fmt.Sprintf("%d@%v", id, d.now()))
	for c := 0; c < op.children; c++ {
		childAt := d.now() + op.deltas[c]
		cid := d.nextID
		d.nextID++
		childOp := arenaScriptOp{} // children are leaves
		d.live = append(d.live, d.schedule(childAt, func() { d.fire(cid, childOp) }))
	}
	if op.halt {
		d.halt()
	}
}

func (d *arenaDriver) apply(op arenaScriptOp) {
	switch op.kind {
	case 0:
		id := d.nextID
		d.nextID++
		d.live = append(d.live, d.schedule(op.at, func() { d.fire(id, op) }))
	case 1:
		if len(d.live) > 0 {
			k := op.cancelK % len(d.live)
			ok := d.live[k]()
			d.log = append(d.log, fmt.Sprintf("cancel#%d=%v", k, ok))
			d.live = append(d.live[:k], d.live[k+1:]...)
		}
	case 2:
		d.run()
	case 3:
		d.runUntil(op.at)
	case 4:
		d.log = append(d.log, fmt.Sprintf("step=%v", d.step()))
	}
}

func TestArenaMatchesHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		script := genArenaScript(NewRNG(seed), 400)

		arena := New()
		da := &arenaDriver{
			schedule: func(at Time, action func()) func() bool {
				h := arena.At(at, action)
				return func() bool { return arena.Cancel(h) }
			},
			run:      arena.Run,
			runUntil: arena.RunUntil,
			step:     arena.Step,
			halt:     arena.Halt,
			now:      arena.Now,
			pending:  arena.Pending,
			fired:    arena.Fired,
		}

		oracle := &oracleSim{}
		do := &arenaDriver{
			schedule: func(at Time, action func()) func() bool {
				e := oracle.At(at, action)
				return func() bool { return oracle.Cancel(e) }
			},
			run:      oracle.Run,
			runUntil: oracle.RunUntil,
			step:     oracle.Step,
			halt:     oracle.Halt,
			now:      func() Time { return oracle.now },
			pending:  func() int { return len(oracle.queue) },
			fired:    func() uint64 { return oracle.fired },
		}

		for i, op := range script {
			da.apply(op)
			do.apply(op)
			if da.now() != do.now() {
				t.Fatalf("seed %d op %d: clock %v vs oracle %v", seed, i, da.now(), do.now())
			}
			if da.pending() != do.pending() {
				t.Fatalf("seed %d op %d: pending %d vs oracle %d", seed, i, da.pending(), do.pending())
			}
			if da.fired() != do.fired() {
				t.Fatalf("seed %d op %d: fired %d vs oracle %d", seed, i, da.fired(), do.fired())
			}
		}
		// Drain both (re-entering after any mid-drain Halt) and compare
		// the complete firing logs.
		for da.pending() > 0 {
			da.run()
		}
		for do.pending() > 0 {
			do.run()
		}
		if len(da.log) != len(do.log) {
			t.Fatalf("seed %d: log length %d vs oracle %d", seed, len(da.log), len(do.log))
		}
		for i := range da.log {
			if da.log[i] != do.log[i] {
				t.Fatalf("seed %d: log[%d] = %q vs oracle %q", seed, i, da.log[i], do.log[i])
			}
		}
		if da.pending() != 0 || do.pending() != 0 {
			t.Fatalf("seed %d: drained pending %d/%d, want 0", seed, da.pending(), do.pending())
		}
	}
}

func TestArenaAtCallMatchesAt(t *testing.T) {
	// AtCall must interleave with At in strict (time, seq) order.
	s := New()
	var got []int
	type tag struct{ id int }
	s.At(10, func() { got = append(got, 1) })
	s.AtCall(10, func(_ Time, a any) { got = append(got, a.(*tag).id) }, &tag{id: 2})
	s.AtCall(5, func(_ Time, a any) { got = append(got, a.(*tag).id) }, &tag{id: 0})
	s.At(10, func() { got = append(got, 3) })
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed At/AtCall order: %v", got)
		}
	}
}

func BenchmarkArenaScheduleFire(b *testing.B) {
	s := New()
	var sink int
	fn := func(Time, any) { sink++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AtCall(s.Now()+1, fn, nil)
		s.Step()
	}
	_ = sink
}
