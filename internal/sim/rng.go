package sim

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source with the distribution helpers the
// workload generators need. It wraps math/rand with a fixed seed so every
// experiment is reproducible run-to-run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exp returns an exponential sample with the given mean. A non-positive
// mean returns 0, which lets callers express "no gap" arrival processes.
func (g *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Normal returns a Gaussian sample with the given mean and stddev.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// LogNormal returns a log-normal sample parameterized by the mean and
// stddev of the underlying normal. Service-time distributions in
// interactive services are commonly log-normal-tailed.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Pareto returns a bounded Pareto sample with minimum xm and shape alpha.
// Used for heavy-tailed request-size injection in stress tests.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
