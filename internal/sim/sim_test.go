package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimulatorFiresInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired out of order: %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("fired = %d, want 3", s.Fired())
	}
}

func TestSimulatorTieBreakIsFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := New()
	var at Time
	s.At(100, func() {
		s.After(50, func() { at = s.Now() })
	})
	s.Run()
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := New()
	var at Time
	s.At(100, func() {
		s.At(10, func() { at = s.Now() })
	})
	s.Run()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", at)
	}
}

func TestNegativeAfterClampsToZeroDelay(t *testing.T) {
	s := New()
	var at Time
	s.At(42, func() {
		s.After(-5, func() { at = s.Now() })
	})
	s.Run()
	if at != 42 {
		t.Fatalf("negative delay fired at %v, want 42", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	h := s.At(10, func() { fired = true })
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Fatal("second Cancel should return false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelZeroAndFired(t *testing.T) {
	s := New()
	if s.Cancel(Handle{}) {
		t.Fatal("Cancel of the zero Handle must return false")
	}
	if (Handle{}).Valid() {
		t.Fatal("zero Handle must be invalid")
	}
	h := s.At(1, func() {})
	if !h.Valid() {
		t.Fatal("issued Handle must be valid")
	}
	s.Run()
	if s.Cancel(h) {
		t.Fatal("Cancel after firing must return false")
	}
}

func TestCancelStaleHandleAfterSlotReuse(t *testing.T) {
	// A fired event's slot is recycled for the next scheduled event; the
	// old Handle must not cancel the new occupant.
	s := New()
	h1 := s.At(1, func() {})
	s.Run()
	fired := false
	h2 := s.At(2, func() { fired = true })
	if s.Cancel(h1) {
		t.Fatal("stale Handle cancelled a recycled slot")
	}
	s.Run()
	if !fired {
		t.Fatal("event in recycled slot did not fire")
	}
	if s.Cancel(h2) {
		t.Fatal("Cancel after firing must return false")
	}
}

func TestAtCallPassesFiringTimeAndArg(t *testing.T) {
	s := New()
	type box struct{ n int }
	b := &box{}
	var at Time
	s.AtCall(7, func(now Time, arg any) {
		at = now
		arg.(*box).n++
	}, b)
	s.AfterCall(3, func(now Time, arg any) { arg.(*box).n += 10 }, b)
	s.Run()
	if at != 7 || b.n != 11 {
		t.Fatalf("AtCall/AfterCall: at=%v n=%d, want 7/11", at, b.n)
	}
}

func TestAtCallCancelAndNegativeAfterCall(t *testing.T) {
	s := New()
	n := 0
	h := s.AtCall(5, func(Time, any) { n++ }, nil)
	if !s.Cancel(h) {
		t.Fatal("Cancel of pending AtCall event must succeed")
	}
	var at Time
	s.At(42, func() {
		s.AfterCall(-5, func(now Time, _ any) { at = now }, nil)
	})
	s.Run()
	if n != 0 {
		t.Fatal("cancelled AtCall event fired")
	}
	if at != 42 {
		t.Fatalf("negative AfterCall delay fired at %v, want 42", at)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %v, want advanced to deadline 25", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("resume run fired %v, want all 4", fired)
	}
}

func TestRunUntilBarrierSplitsByMark(t *testing.T) {
	s := New()
	var fired []int
	s.At(10, func() { fired = append(fired, 1) }) // before the barrier time
	s.At(20, func() { fired = append(fired, 2) }) // at barrier time, pre-mark
	mark := s.SeqMark()
	s.At(20, func() { fired = append(fired, 3) }) // at barrier time, post-mark
	s.At(30, func() { fired = append(fired, 4) }) // past the barrier

	s.RunUntilBarrier(20, mark)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("barrier fired %v, want pre-mark events 1 and 2 only", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("clock = %v, want advanced to barrier time 20", s.Now())
	}
	if at, seq, ok := s.NextEvent(); !ok || at != 20 || seq < mark {
		t.Fatalf("NextEvent = (%v, %d, %v), want the held post-mark event at 20", at, seq, ok)
	}
	// A post-barrier advance releases the held event in FIFO order.
	s.RunUntil(30)
	if len(fired) != 4 || fired[2] != 3 || fired[3] != 4 {
		t.Fatalf("resume fired %v, want 1 2 3 4", fired)
	}
}

func TestRunUntilBarrierEmptyAdvancesClock(t *testing.T) {
	s := New()
	s.RunUntilBarrier(15, s.SeqMark())
	if s.Now() != 15 {
		t.Fatalf("clock = %v, want 15", s.Now())
	}
	if _, _, ok := s.NextEvent(); ok {
		t.Fatal("NextEvent on an empty queue reported an event")
	}
}

func TestHaltStopsRun(t *testing.T) {
	s := New()
	n := 0
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {
			n++
			if n == 2 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 2 {
		t.Fatalf("ran %d events after Halt, want 2", n)
	}
	if s.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", s.Pending())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue must return false")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	g := NewRNG(1)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("exp mean = %.3f, want ≈5", mean)
	}
	if g.Exp(0) != 0 || g.Exp(-1) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestRNGUniformRange(t *testing.T) {
	g := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("uniform sample %v outside [3,9)", v)
		}
	}
}

func TestRNGParetoBound(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("pareto sample %v below xm=2", v)
		}
	}
}

func TestSampleBasicStats(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 50}, {99, 99}, {100, 100}, {1, 1},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if s.P99() != 99 {
		t.Fatalf("P99 = %v", s.P99())
	}
}

func TestSampleEmptyAndReset(t *testing.T) {
	var s Sample
	if s.Percentile(99) != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty sample must report zeros")
	}
	s.Add(3)
	s.Reset()
	if s.Count() != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("Reset must clear all state")
	}
}

func TestSamplePercentileProperty(t *testing.T) {
	// Percentile must be monotone in p and bounded by min/max.
	f := func(raw []float64, p1, p2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := s.Percentile(p1), s.Percentile(p2)
		return lo <= hi && lo >= s.Min() && hi <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesIntegral(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 10)   // 10 for 100ms → 1000
	ts.Add(100, 20) // 20 for 50ms → 1000
	ts.Add(150, 0)
	if got := ts.Integral(); math.Abs(got-2000) > 1e-9 {
		t.Fatalf("integral = %v, want 2000", got)
	}
	if got := ts.MeanValue(); math.Abs(got-2000.0/150) > 1e-9 {
		t.Fatalf("mean value = %v", got)
	}
}

func TestTimeSeriesClampsBackwardTime(t *testing.T) {
	var ts TimeSeries
	ts.Add(10, 1)
	ts.Add(5, 2) // out of order: clamps to t=10
	if ts.Times[1] != 10 {
		t.Fatalf("backward time not clamped: %v", ts.Times)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	var ts TimeSeries
	if ts.Integral() != 0 || ts.MeanValue() != 0 || ts.Len() != 0 {
		t.Fatal("empty series must report zeros")
	}
}
