// Package sim provides a deterministic discrete-event simulation core used
// by the device, runtime, and experiment layers of Poly.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// fire in (time, insertion-order) order, so runs are fully deterministic
// for a fixed seed and schedule. Time is measured in milliseconds, the
// natural unit of the paper's latency bounds (e.g. a 200 ms p99 target).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, in milliseconds since simulation start.
type Time float64

// Duration is a span of virtual time in milliseconds.
type Duration = Time

// String formats the time as milliseconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)) }

// Event is a scheduled callback. The callback runs exactly once, at the
// event's firing time, with the simulator clock already advanced.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index; -1 once fired or cancelled
	action func()
}

// Time reports when the event fires (or fired).
func (e *Event) Time() Time { return e.at }

// eventQueue is a min-heap ordered by (time, sequence number).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator is a single-threaded discrete-event simulator. The zero value
// is not usable; construct with New.
type Simulator struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// New returns a simulator with the clock at zero and an empty event queue.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules action to run at absolute time at. Scheduling in the past
// (before Now) clamps to Now: the event fires next, without rewinding the
// clock. The returned Event may be passed to Cancel.
func (s *Simulator) At(at Time, action func()) *Event {
	if at < s.now {
		at = s.now
	}
	e := &Event{at: at, seq: s.seq, action: action}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules action to run d milliseconds from now. Negative delays
// clamp to zero.
func (s *Simulator) After(d Duration, action func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, action)
}

// Cancel removes a scheduled event. Cancelling an event that already fired
// or was already cancelled is a no-op and returns false.
func (s *Simulator) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&s.queue, e.index)
	e.index = -1
	e.action = nil
	return true
}

// Halt stops the current Run/RunUntil after the in-flight event completes.
// Remaining events stay queued.
func (s *Simulator) Halt() { s.halted = true }

// Step fires the single earliest event, advancing the clock to it. It
// returns false if the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	s.fired++
	action := e.action
	e.action = nil
	action()
	return true
}

// Run fires events until the queue is empty or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil fires events with firing time ≤ deadline, then advances the
// clock to deadline (if it is ahead of the last event). Events scheduled
// after deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}
