// Package sim provides a deterministic discrete-event simulation core used
// by the device, runtime, and experiment layers of Poly.
//
// A Simulator owns a virtual clock and a priority queue of events. Events
// fire in (time, insertion-order) order, so runs are fully deterministic
// for a fixed seed and schedule. Time is measured in milliseconds, the
// natural unit of the paper's latency bounds (e.g. a 200 ms p99 target).
//
// Events live in a simulator-owned arena: scheduling reuses slots from a
// free list instead of allocating, and the queue is a flat 4-ary indexed
// heap over slot indices. Callers refer to scheduled events through
// generation-counted Handles, so Cancel on an event that already fired
// (and whose slot was recycled) is a safe no-op.
package sim

import "fmt"

// Time is a point in virtual time, in milliseconds since simulation start.
type Time float64

// Duration is a span of virtual time in milliseconds.
type Duration = Time

// String formats the time as milliseconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fms", float64(t)) }

// Handle identifies a scheduled event. The zero Handle is invalid. A
// Handle stays distinguishable from later events that reuse the same
// arena slot: each slot carries a generation counter that is bumped when
// the slot is recycled, so Cancel with a stale Handle returns false.
type Handle struct {
	idx int32
	gen uint32
}

// Valid reports whether the handle was ever issued by a simulator. It
// does not imply the event is still pending; use Cancel's return value
// for that.
func (h Handle) Valid() bool { return h.gen != 0 }

// eventSlot is one arena entry. A slot is either pending (heapIdx >= 0)
// or on the free list (heapIdx < 0, nextFree links the list).
type eventSlot struct {
	at       Time
	seq      uint64
	gen      uint32
	heapIdx  int32
	nextFree int32
	// Exactly one of fn or action is set while pending. fn+arg is the
	// closure-free form: hot callers pass a top-level function and a
	// long-lived argument so scheduling captures nothing.
	fn     func(Time, any)
	arg    any
	action func()
}

// Simulator is a single-threaded discrete-event simulator. The zero value
// is not usable; construct with New.
type Simulator struct {
	now    Time
	seq    uint64
	slots  []eventSlot
	free   int32 // head of the free-slot list; -1 when empty
	heap   []int32
	fired  uint64
	halted bool
}

// New returns a simulator with the clock at zero and an empty event queue.
func New() *Simulator {
	return &Simulator{free: -1}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events still scheduled.
func (s *Simulator) Pending() int { return len(s.heap) }

// schedule claims an arena slot for an event at the (past-clamped) time
// and pushes it on the heap. The caller fills in the callback fields.
func (s *Simulator) schedule(at Time) (int32, Handle) {
	if at < s.now {
		at = s.now
	}
	var idx int32
	if s.free >= 0 {
		idx = s.free
		s.free = s.slots[idx].nextFree
	} else {
		s.slots = append(s.slots, eventSlot{gen: 1})
		idx = int32(len(s.slots) - 1)
	}
	e := &s.slots[idx]
	e.at = at
	e.seq = s.seq
	s.seq++
	s.heapPush(idx)
	return idx, Handle{idx: idx, gen: e.gen}
}

// release recycles a slot (fired or cancelled) onto the free list. The
// generation bump invalidates any outstanding Handles to it.
func (s *Simulator) release(idx int32) {
	e := &s.slots[idx]
	e.gen++
	e.heapIdx = -1
	e.fn = nil
	e.arg = nil
	e.action = nil
	e.nextFree = s.free
	s.free = idx
}

// At schedules action to run at absolute time at. Scheduling in the past
// (before Now) clamps to Now: the event fires next, without rewinding the
// clock. The returned Handle may be passed to Cancel.
func (s *Simulator) At(at Time, action func()) Handle {
	idx, h := s.schedule(at)
	s.slots[idx].action = action
	return h
}

// After schedules action to run d milliseconds from now. Negative delays
// clamp to zero.
func (s *Simulator) After(d Duration, action func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, action)
}

// AtCall schedules fn(firingTime, arg) at absolute time at, with the same
// past-clamp rule as At. It is the allocation-free form of At: passing a
// top-level function and a long-lived argument schedules without
// capturing, so the hot serving path creates no closure garbage.
func (s *Simulator) AtCall(at Time, fn func(Time, any), arg any) Handle {
	idx, h := s.schedule(at)
	e := &s.slots[idx]
	e.fn = fn
	e.arg = arg
	return h
}

// AfterCall schedules fn(firingTime, arg) d milliseconds from now.
// Negative delays clamp to zero.
func (s *Simulator) AfterCall(d Duration, fn func(Time, any), arg any) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtCall(s.now+d, fn, arg)
}

// Cancel removes a scheduled event. Cancelling an event that already
// fired, was already cancelled, or whose Handle is zero is a no-op and
// returns false — the slot generation check makes stale Handles inert
// even after the slot has been reused by a later event.
func (s *Simulator) Cancel(h Handle) bool {
	if h.gen == 0 || int(h.idx) >= len(s.slots) {
		return false
	}
	e := &s.slots[h.idx]
	if e.gen != h.gen || e.heapIdx < 0 {
		return false
	}
	s.heapRemove(e.heapIdx)
	s.release(h.idx)
	return true
}

// Halt stops the current Run/RunUntil after the in-flight event completes.
// Remaining events stay queued.
func (s *Simulator) Halt() { s.halted = true }

// Step fires the single earliest event, advancing the clock to it. It
// returns false if the queue is empty. The event's slot is recycled
// before the callback runs, so callbacks that schedule new events reuse
// it immediately.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	idx := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.slots[s.heap[0]].heapIdx = 0
	s.heap = s.heap[:n]
	if n > 1 {
		s.siftDown(0)
	}
	e := &s.slots[idx]
	s.now = e.at
	s.fired++
	fn, arg, action := e.fn, e.arg, e.action
	s.release(idx)
	if fn != nil {
		fn(s.now, arg)
	} else if action != nil {
		action()
	}
	return true
}

// Run fires events until the queue is empty or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil fires events with firing time ≤ deadline, then advances the
// clock to deadline (if it is ahead of the last event). Events scheduled
// after deadline remain queued.
func (s *Simulator) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.heap) > 0 && s.slots[s.heap[0]].at <= deadline {
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// NextEvent returns the firing time and sequence number of the earliest
// pending event, or ok == false when the queue is empty. The parallel
// fleet coordinator peeks between epochs to skip dispatching rounds in
// which a shard has nothing eligible to fire.
func (s *Simulator) NextEvent() (at Time, seq uint64, ok bool) {
	if len(s.heap) == 0 {
		return 0, 0, false
	}
	e := &s.slots[s.heap[0]]
	return e.at, e.seq, true
}

// SeqMark returns the sequence number the next scheduled event will be
// assigned. Events already scheduled all have seq below the mark; events
// scheduled after the call all have seq at or above it. A conservative
// parallel coordinator snapshots the mark at run start to tell
// construction-time events apart from run-scheduled ones when both land
// on the same instant (see RunUntilBarrier).
func (s *Simulator) SeqMark() uint64 { return s.seq }

// RunUntilBarrier fires events strictly before deadline, plus events at
// exactly deadline whose sequence number is below mark, then advances
// the clock to deadline. It is the epoch-step primitive of the parallel
// fleet coordinator: with mark taken at run start (SeqMark), the events
// fired are exactly those that preceded a barrier event at (deadline,
// mark) in a shared-simulator run — pre-run events at the deadline fire,
// run-scheduled ones hold until after the barrier's owner (e.g. a
// routing decision) has run. Events at the deadline with seq >= mark
// stay queued and fire on the next advance past the deadline.
func (s *Simulator) RunUntilBarrier(deadline Time, mark uint64) {
	s.halted = false
	for !s.halted && len(s.heap) > 0 {
		e := &s.slots[s.heap[0]]
		if e.at > deadline || (e.at == deadline && e.seq >= mark) {
			break
		}
		s.Step()
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
}

// less orders pending events by (time, sequence number): strict FIFO
// among same-time events, independent of heap shape.
func (s *Simulator) less(a, b int32) bool {
	ea, eb := &s.slots[a], &s.slots[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// The heap is 4-ary: children of i are 4i+1..4i+4. Wider nodes mean a
// shallower tree — fewer cache-missing levels per sift for the large
// queues a loaded serving simulation builds up.

func (s *Simulator) heapPush(idx int32) {
	s.heap = append(s.heap, idx)
	s.slots[idx].heapIdx = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
}

// siftUp restores the heap property above position i, returning the
// element's final position.
func (s *Simulator) siftUp(i int) int {
	h := s.heap
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		s.slots[h[i]].heapIdx = int32(i)
		s.slots[h[p]].heapIdx = int32(p)
		i = p
	}
	return i
}

// siftDown restores the heap property below position i, returning the
// element's final position.
func (s *Simulator) siftDown(i int) int {
	h := s.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			return i
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(h[c], h[best]) {
				best = c
			}
		}
		if !s.less(h[best], h[i]) {
			return i
		}
		h[i], h[best] = h[best], h[i]
		s.slots[h[i]].heapIdx = int32(i)
		s.slots[h[best]].heapIdx = int32(best)
		i = best
	}
}

// heapRemove deletes the element at heap position pos (used by Cancel;
// Step pops the root inline).
func (s *Simulator) heapRemove(pos int32) {
	h := s.heap
	n := len(h) - 1
	removed := h[pos]
	if int(pos) != n {
		h[pos] = h[n]
		s.slots[h[pos]].heapIdx = pos
	}
	s.heap = h[:n]
	if int(pos) < n {
		if s.siftDown(int(pos)) == int(pos) {
			s.siftUp(int(pos))
		}
	}
	s.slots[removed].heapIdx = -1
}
