package sim

import (
	"math"
	"sort"
)

// Sample accumulates scalar observations and answers summary queries:
// count, mean, variance (Welford), min/max, and exact percentiles.
// It keeps every observation, which is fine at experiment scale (at most a
// few million request latencies per run).
type Sample struct {
	values []float64
	sorted bool
	mean   float64
	m2     float64
	min    float64
	max    float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if len(s.values) == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.values = append(s.values, v)
	s.sorted = false
	// Welford's online update keeps mean/variance numerically stable.
	delta := v - s.mean
	s.mean += delta / float64(len(s.values))
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Values exposes the underlying observations as a read-only view. The
// order is insertion order until a Percentile query sorts the slice in
// place; callers comparing two samples for equality should drive both
// through the same query sequence first (or sort copies themselves).
func (s *Sample) Values() []float64 { return s.values }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the population variance, or 0 with <2 observations.
func (s *Sample) Variance() float64 {
	if len(s.values) < 2 {
		return 0
	}
	return s.m2 / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method on the sorted observations. Tail-latency SLOs are
// conventionally reported this way (e.g. p99). Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1]
}

// P99 is shorthand for Percentile(99), the paper's QoS metric.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// Reset discards all observations.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	s.sorted = false
	s.mean, s.m2, s.min, s.max = 0, 0, 0, 0
}

// TimeSeries records (time, value) points, e.g. instantaneous node power
// over a served trace, and integrates them.
type TimeSeries struct {
	Times  []Time
	Values []float64
}

// Add appends one point. Times must be non-decreasing; out-of-order points
// are clamped to the last recorded time so integration stays well-defined.
func (ts *TimeSeries) Add(t Time, v float64) {
	if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
		t = ts.Times[n-1]
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Integral returns the time integral of the series using step
// interpolation (each value holds until the next point). For a power
// series in watts with time in ms, the result is milliwatt-ms; callers
// convert units. An empty or single-point series integrates to 0.
func (ts *TimeSeries) Integral() float64 {
	var total float64
	for i := 1; i < len(ts.Times); i++ {
		dt := float64(ts.Times[i] - ts.Times[i-1])
		total += ts.Values[i-1] * dt
	}
	return total
}

// MeanValue returns the time-weighted mean value, or 0 when the series
// spans zero time.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.Times) < 2 {
		return 0
	}
	span := float64(ts.Times[len(ts.Times)-1] - ts.Times[0])
	if span == 0 {
		return 0
	}
	return ts.Integral() / span
}
