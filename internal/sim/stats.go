package sim

import (
	"math"
	"sort"
)

// HistogramBoundsMS is the shared fixed-bucket layout for latency-shaped
// observations, in milliseconds: bucket i covers (bounds[i-1], bounds[i]],
// bucket 0 additionally absorbs everything ≤ its bound (including
// negatives), and one overflow bucket sits past the last bound. Sample
// uses it to localize percentile queries, and the telemetry histograms
// reuse the exact same layout so a Prometheus `le` series and a Sample
// bucket always mean the same interval.
var HistogramBoundsMS = []float64{
	1, 2, 5, 10, 15, 20, 30, 40, 50, 75,
	100, 150, 200, 300, 400, 500, 750, 1000, 1500, 2000, 5000,
}

// NumHistogramBuckets is len(HistogramBoundsMS) + 1 (the overflow bucket).
var NumHistogramBuckets = len(HistogramBoundsMS) + 1

// BucketIndex maps an observation to its bucket in HistogramBoundsMS:
// the smallest i with v ≤ bounds[i], or len(bounds) when v exceeds every
// bound. The mapping is monotone in v, which is what lets Sample answer
// exact order statistics from bucket counts.
func BucketIndex(v float64) int {
	return sort.SearchFloat64s(HistogramBoundsMS, v)
}

// Sample accumulates scalar observations and answers summary queries:
// count, mean, variance (Welford), min/max, and exact percentiles.
// It keeps every observation plus an incrementally-maintained fixed-bucket
// histogram (HistogramBoundsMS): a percentile query walks the bucket
// counts to the bucket holding the target rank and order-selects within
// just that bucket's members, so no query ever sorts the whole sample —
// and the observation slice is never reordered.
type Sample struct {
	values  []float64
	counts  []int // per-bucket tallies, len NumHistogramBuckets once used
	scratch []float64
	mean    float64
	m2      float64
	min     float64
	max     float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if len(s.values) == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.values = append(s.values, v)
	if s.counts == nil {
		s.counts = make([]int, NumHistogramBuckets)
	}
	s.counts[BucketIndex(v)]++
	// Welford's online update keeps mean/variance numerically stable.
	delta := v - s.mean
	s.mean += delta / float64(len(s.values))
	s.m2 += delta * (v - s.mean)
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Values exposes the underlying observations as a read-only view, in
// insertion order (queries never reorder the slice).
func (s *Sample) Values() []float64 { return s.values }

// BucketCounts exposes the incremental histogram tallies over
// HistogramBoundsMS (nil before the first observation). The returned
// slice is a read-only view.
func (s *Sample) BucketCounts() []int { return s.counts }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// Variance returns the population variance, or 0 with <2 observations.
func (s *Sample) Variance() float64 {
	if len(s.values) < 2 {
		return 0
	}
	return s.m2 / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method — exactly the value a full sort would produce.
// Tail-latency SLOs are conventionally reported this way (e.g. p99).
// Empty samples return 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	// Walk the bucket counts to the bucket holding the rank-th smallest
	// observation; cum counts the observations in buckets strictly below.
	cum, bucket := 0, 0
	for i, c := range s.counts {
		if cum+c >= rank {
			bucket = i
			break
		}
		cum += c
	}
	// Bucketing is monotone, so the rank-th smallest overall is the
	// (rank−cum)-th smallest within the bucket: gather its members and
	// order-select among just those.
	members := s.scratch[:0]
	for _, v := range s.values {
		if BucketIndex(v) == bucket {
			members = append(members, v)
		}
	}
	s.scratch = members
	sort.Float64s(members)
	return members[rank-cum-1]
}

// P99 is shorthand for Percentile(99), the paper's QoS metric.
func (s *Sample) P99() float64 { return s.Percentile(99) }

// Reset discards all observations.
func (s *Sample) Reset() {
	s.values = s.values[:0]
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.mean, s.m2, s.min, s.max = 0, 0, 0, 0
}

// TimeSeries records (time, value) points, e.g. instantaneous node power
// over a served trace, and integrates them.
type TimeSeries struct {
	Times  []Time
	Values []float64
}

// Add appends one point. Times must be non-decreasing; out-of-order points
// are clamped to the last recorded time so integration stays well-defined.
func (ts *TimeSeries) Add(t Time, v float64) {
	if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
		t = ts.Times[n-1]
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Integral returns the time integral of the series using step
// interpolation (each value holds until the next point). For a power
// series in watts with time in ms, the result is milliwatt-ms; callers
// convert units. An empty or single-point series integrates to 0.
func (ts *TimeSeries) Integral() float64 {
	var total float64
	for i := 1; i < len(ts.Times); i++ {
		dt := float64(ts.Times[i] - ts.Times[i-1])
		total += ts.Values[i-1] * dt
	}
	return total
}

// MeanValue returns the time-weighted mean value, or 0 when the series
// spans zero time.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.Times) < 2 {
		return 0
	}
	span := float64(ts.Times[len(ts.Times)-1] - ts.Times[0])
	if span == 0 {
		return 0
	}
	return ts.Integral() / span
}
