// Benchmark harness: one testing.B entry per table/figure of the paper's
// evaluation. Each benchmark regenerates its experiment through the same
// harness cmd/polybench uses and reports the headline numbers as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The heavyweight sweeps (fig7, fig13)
// take a couple of minutes each; everything is deterministic.
package poly_test

import (
	"runtime"
	"testing"
	"time"

	"poly"
	"poly/internal/cluster"
	"poly/internal/dse"
	"poly/internal/exp"
)

// runExperiment executes one experiment per benchmark iteration and
// returns the last result for metric extraction.
func runExperiment(b *testing.B, id string) exp.Result {
	b.Helper()
	var res exp.Result
	for i := 0; i < b.N; i++ {
		r, err := poly.RunExperiment(id)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

func BenchmarkFig1aTailLatencyASR(b *testing.B) {
	r := runExperiment(b, "fig1a").(*exp.TailLatencyResult)
	b.ReportMetric(r.MaxRPS["Homo-GPU"], "maxRPS-GPU")
	b.ReportMetric(r.MaxRPS["Homo-FPGA"], "maxRPS-FPGA")
	b.ReportMetric(r.MaxRPS["Heter-Poly"], "maxRPS-Poly")
}

func BenchmarkFig1bEnergyProportionalityASR(b *testing.B) {
	r := runExperiment(b, "fig1b").(*exp.PowerScalingResult)
	b.ReportMetric(r.MeanEP("Homo-GPU"), "EP-GPU")
	b.ReportMetric(r.MeanEP("Homo-FPGA"), "EP-FPGA")
	b.ReportMetric(r.MeanEP("Heter-Poly"), "EP-Poly")
}

func BenchmarkFig1cLSTMPareto(b *testing.B) {
	r := runExperiment(b, "fig1c").(*exp.ParetoResult)
	b.ReportMetric(float64(len(r.GPU)), "gpuFrontier")
	b.ReportMetric(float64(len(r.FPG)), "fpgaFrontier")
}

func BenchmarkFig1dEfficiencyVsUtilization(b *testing.B) {
	r := runExperiment(b, "fig1d").(*exp.EfficiencyResult)
	// Poly's efficiency gain from 20 % to 100 % utilization.
	for _, s := range r.Curves {
		if s.Name == "Heter-Poly" && len(s.Y) > 0 && s.Y[0] > 0 {
			b.ReportMetric(s.Y[len(s.Y)-1]/s.Y[0], "polyEffGain")
		}
	}
}

func BenchmarkFig1efKernelBreakdown(b *testing.B) {
	r := runExperiment(b, "fig1ef").(*exp.BreakdownResult)
	b.ReportMetric(float64(len(r.Rows)), "kernels")
}

func BenchmarkFig6SchedulingASR(b *testing.B) {
	r := runExperiment(b, "fig6").(*exp.ScheduleResult)
	b.ReportMetric(r.MakespanMS, "makespanMS")
	b.ReportMetric(float64(r.Swaps), "energySwaps")
	b.ReportMetric(r.EnergyStep1-r.EnergyFinal, "energySavedMJ")
}

func BenchmarkTable2DesignSpaces(b *testing.B) {
	r := runExperiment(b, "table2").(*exp.DesignSpaceResult)
	b.ReportMetric(float64(len(r.Rows)), "kernels")
}

func BenchmarkFig7TailLatency(b *testing.B) {
	r := runExperiment(b, "fig7").(*exp.MultiResult)
	b.ReportMetric(float64(len(r.Parts)), "apps")
}

func BenchmarkFig8MaxThroughput(b *testing.B) {
	r := runExperiment(b, "fig8").(*exp.ThroughputResult)
	b.ReportMetric(r.MeanNorm["Heter-Poly"], "normPoly")
	b.ReportMetric(r.MeanNorm["Homo-GPU"], "normGPU")
	b.ReportMetric(r.MeanNorm["Homo-FPGA"], "normFPGA")
}

func BenchmarkFig9PowerScaling(b *testing.B) {
	r := runExperiment(b, "fig9").(*exp.PowerScalingResult)
	b.ReportMetric(r.MeanEP("Heter-Poly"), "EP-Poly")
}

func BenchmarkFig10EnergyProportionality(b *testing.B) {
	r := runExperiment(b, "fig10").(*exp.PowerScalingResult)
	b.ReportMetric(r.MeanEP("Heter-Poly")-r.MeanEP("Homo-GPU"), "EPgainVsGPU")
	b.ReportMetric(r.MeanEP("Heter-Poly")-r.MeanEP("Homo-FPGA"), "EPgainVsFPGA")
}

func BenchmarkFig11Trace(b *testing.B) {
	r := runExperiment(b, "fig11").(*exp.TraceResult)
	b.ReportMetric(r.Trace.Mean(), "meanUtil")
	b.ReportMetric(r.Trace.Peak(), "peakUtil")
}

func BenchmarkFig12TracePowerSavings(b *testing.B) {
	r := runExperiment(b, "fig12").(*exp.TraceReplayResult)
	b.ReportMetric(100*r.PowerSaving("Homo-GPU"), "savingVsGPU%")
	b.ReportMetric(100*r.PowerSaving("Homo-FPGA"), "savingVsFPGA%")
}

func BenchmarkQoSViolations(b *testing.B) {
	r := runExperiment(b, "qos").(*exp.QoSResult)
	b.ReportMetric(100*r.Violation["Heter-Poly"], "polyViol%")
}

func BenchmarkModelAccuracy(b *testing.B) {
	r := runExperiment(b, "accuracy").(*exp.AccuracyResult)
	b.ReportMetric(100*r.MeanAbsErr, "meanErr%")
	b.ReportMetric(100*r.MaxAbsErr, "maxErr%")
}

func BenchmarkFig13ArchScalability(b *testing.B) {
	r := runExperiment(b, "fig13").(*exp.ScalabilityResult)
	share, rps := r.BestSplit("Setting-I")
	b.ReportMetric(100*share, "bestGPUshare%")
	b.ReportMetric(rps, "bestRPS")
}

func BenchmarkFig14CostEfficiency(b *testing.B) {
	r := runExperiment(b, "fig14").(*exp.CostEfficiencyResult)
	b.ReportMetric(r.RPSPerUSD["Setting-I"]["Heter-Poly"], "polyRPSperUSD")
}

// ---------------------------------------------------- parallel engine

// BenchmarkExploreProgram measures the design-space exploration of the
// six apps on Setting-I, cold, at the full pool size, and reports the
// serial wall-clock and speedup as custom metrics so BENCH_*.json
// captures the perf trajectory. On a single-core runner the speedup
// metric sits near 1.0 by construction.
func BenchmarkExploreProgram(b *testing.B) {
	defer poly.SetWorkers(0)
	explore := func(workers int) time.Duration {
		poly.SetWorkers(workers)
		exp.ResetCaches() // cold: no memoized spaces
		start := time.Now()
		for _, name := range []string{"ASR", "FQT", "IR", "CS", "MF", "WT"} {
			fw, err := poly.Benchmark(name)
			if err != nil {
				b.Fatal(err)
			}
			pa := fw.Analysis()
			if _, err := dse.ExploreProgram(pa, cluster.SettingI.GPU, cluster.SettingI.FPGA); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	serial := explore(1)
	b.ResetTimer()
	var par time.Duration
	for i := 0; i < b.N; i++ {
		par += explore(runtime.NumCPU())
	}
	b.StopTimer()
	avg := par / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()*1000, "serialMS")
	b.ReportMetric(avg.Seconds()*1000, "parallelMS")
	b.ReportMetric(serial.Seconds()/avg.Seconds(), "speedup")
}

// BenchmarkSweepParallel measures the heavyweight fig13 sweep (18
// independent maxRPS binary searches) cold at the full pool size vs the
// serial engine, reporting both wall-clocks and the speedup. This is
// the headline number of the parallel harness: expect ≥ 2× on any
// multi-core runner (1.0× on a single core).
func BenchmarkSweepParallel(b *testing.B) {
	defer poly.SetWorkers(0)
	sweep := func(workers int) time.Duration {
		poly.SetWorkers(workers)
		exp.ResetCaches() // cold: re-run every maxRPS search
		start := time.Now()
		if _, err := poly.RunExperiment("fig13"); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	serial := sweep(1)
	b.ResetTimer()
	var par time.Duration
	for i := 0; i < b.N; i++ {
		par += sweep(runtime.NumCPU())
	}
	b.StopTimer()
	avg := par / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()*1000, "serialMS")
	b.ReportMetric(avg.Seconds()*1000, "parallelMS")
	b.ReportMetric(serial.Seconds()/avg.Seconds(), "speedup")
}
