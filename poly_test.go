package poly_test

import (
	"strings"
	"testing"

	"poly"
)

func TestPublicQuickstartFlow(t *testing.T) {
	fw, err := poly.Benchmark("ASR")
	if err != nil {
		t.Fatal(err)
	}
	bench, err := poly.NewBench(fw, poly.HeterPoly, poly.SettingI())
	if err != nil {
		t.Fatal(err)
	}
	res, err := bench.ServeConstantLoad(5, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.P99MS <= 0 || res.AvgPowerW <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestPublicCompile(t *testing.T) {
	fw, err := poly.Compile(`
program demo
kernel k
  repeat 50
  const w f32[512x512]
  in x f32[512]
  map m(x w, func=mac ops=1024 elems=512)
  pipeline act(m, funcs=[sigmoid:8 mul:1])
`)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Program().Name != "demo" {
		t.Fatal("wrong program")
	}
	if _, err := poly.Compile("not a program"); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := poly.Benchmark("nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPublicSettings(t *testing.T) {
	if poly.SettingI().Name != "Setting-I" ||
		poly.SettingII().Name != "Setting-II" ||
		poly.SettingIII().Name != "Setting-III" {
		t.Fatal("setting wiring wrong")
	}
}

func TestPublicTrace(t *testing.T) {
	tr := poly.SynthesizeTrace(3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.DurationMS() != 24*3600_000 {
		t.Fatal("trace must span 24 h")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	exps := poly.Experiments()
	if len(exps) < 15 {
		t.Fatalf("experiment registry too small: %d", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e[0]] = true
	}
	for _, want := range []string{"fig1a", "fig1b", "fig1c", "fig6", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "qos", "accuracy"} {
		if !ids[want] {
			t.Fatalf("experiment %q missing from registry", want)
		}
	}
	if _, err := poly.RunExperiment("nonsense"); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatal("unknown experiment must be rejected with a helpful error")
	}
}

func TestPublicRunCheapExperiment(t *testing.T) {
	r, err := poly.RunExperiment("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "fig11" || r.Render() == "" {
		t.Fatal("experiment result malformed")
	}
}
