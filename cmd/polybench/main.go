// Command polybench regenerates the paper's tables and figures.
//
// Usage:
//
//	polybench -list           # enumerate experiments
//	polybench -run fig8       # run one experiment
//	polybench -run all        # run the full suite (several minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"poly/internal/exp"
	"poly/internal/parallel"
	"poly/internal/prof"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text")
	workers := flag.Int("workers", 0,
		"worker-pool size for sweeps and DSE (0 = POLY_WORKERS or NumCPU, 1 = serial engine; output is identical at any size)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	parallel.SetWorkers(*workers)
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polybench:", err)
		os.Exit(1)
	}
	defer stopProf()

	emit := func(r exp.Result) {
		if *asJSON {
			enc, err := json.MarshalIndent(map[string]any{"id": r.ID(), "result": r}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "polybench:", err)
				os.Exit(1)
			}
			fmt.Println(string(enc))
			return
		}
		fmt.Println(r.Render())
	}

	switch {
	case *list:
		for _, e := range exp.List() {
			fmt.Printf("  %-10s %s\n", e[0], e[1])
		}
	case *run == "all":
		start := time.Now()
		n := 0
		for _, e := range exp.List() {
			t0 := time.Now()
			r, err := exp.Run(e[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: %s: %v\n", e[0], err)
				os.Exit(1)
			}
			emit(r)
			if !*asJSON {
				fmt.Printf("  (%s in %s)\n\n", e[0], time.Since(t0).Round(time.Millisecond))
			}
			n++
		}
		fmt.Printf("completed %d experiments in %s\n", n, time.Since(start).Round(time.Second))
	case *run != "":
		start := time.Now()
		r, err := exp.Run(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polybench:", err)
			os.Exit(1)
		}
		emit(r)
		if !*asJSON {
			fmt.Printf("(%s)\n", time.Since(start).Round(time.Millisecond))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
