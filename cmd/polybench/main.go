// Command polybench regenerates the paper's tables and figures.
//
// Usage:
//
//	polybench -list           # enumerate experiments
//	polybench -run fig8       # run one experiment
//	polybench -run fig8batch  # admission-batching on/off throughput sweep
//	polybench -run all        # run the full suite (several minutes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"poly/internal/exp"
	"poly/internal/parallel"
	"poly/internal/prof"
	"poly/internal/runtime"
	"poly/internal/telemetry"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	asJSON := flag.Bool("json", false, "emit results as JSON instead of text")
	workers := flag.Int("workers", 0,
		"worker-pool size for sweeps and DSE (0 = POLY_WORKERS or NumCPU, 1 = serial engine; output is identical at any size)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	traceOut := flag.String("trace-out", "", "write a Perfetto/Chrome trace JSON of every session the experiment runs (forces -workers 1)")
	metricsOut := flag.String("metrics-out", "", "write the aggregated Prometheus metrics of every session the experiment runs (pool-safe: works at any -workers)")
	flag.Parse()
	parallel.SetWorkers(*workers)
	var rec *telemetry.Recorder
	switch {
	case *traceOut != "":
		// Experiments build their sessions internally, so tracing goes
		// through the process-wide default sink — and must run serial, or
		// parallel sweeps would interleave their timelines in one recorder.
		// (Metric recording itself is pool-safe; it is the per-session
		// Perfetto tracks that cannot share a buffer across workers.)
		fmt.Fprintln(os.Stderr,
			"polybench: -trace-out forces a serial worker pool (POLY_WORKERS ignored); drop -trace-out for parallel sweeps")
		parallel.SetWorkers(1)
		rec = telemetry.New()
		runtime.SetDefaultTelemetry(rec)
	case *metricsOut != "":
		// Metrics-only recording is safe under the parallel pool: counters
		// and histograms accumulate correctly from any worker, and no
		// per-session trace state exists to interleave.
		rec = telemetry.NewWithOptions(telemetry.Options{MetricsOnly: true})
		runtime.SetDefaultTelemetry(rec)
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polybench:", err)
		os.Exit(1)
	}
	defer stopProf()

	emit := func(r exp.Result) {
		if *asJSON {
			enc, err := json.MarshalIndent(map[string]any{"id": r.ID(), "result": r}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "polybench:", err)
				os.Exit(1)
			}
			fmt.Println(string(enc))
			return
		}
		fmt.Println(r.Render())
	}

	switch {
	case *list:
		for _, e := range exp.List() {
			fmt.Printf("  %-10s %s\n", e[0], e[1])
		}
	case *run == "all":
		start := time.Now()
		n := 0
		for _, e := range exp.List() {
			t0 := time.Now()
			r, err := exp.Run(e[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: %s: %v\n", e[0], err)
				os.Exit(1)
			}
			emit(r)
			if !*asJSON {
				fmt.Printf("  (%s in %s)\n\n", e[0], time.Since(t0).Round(time.Millisecond))
			}
			n++
		}
		fmt.Printf("completed %d experiments in %s\n", n, time.Since(start).Round(time.Second))
	case *run != "":
		start := time.Now()
		r, err := exp.Run(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "polybench:", err)
			os.Exit(1)
		}
		emit(r)
		if !*asJSON {
			fmt.Printf("(%s)\n", time.Since(start).Round(time.Millisecond))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, rec.WriteTrace); err != nil {
			fmt.Fprintln(os.Stderr, "polybench:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events -> %s (load at https://ui.perfetto.dev)\n",
			rec.TraceEventCount(), *traceOut)
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, rec.WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, "polybench:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics: %d spans recorded -> %s (Prometheus text)\n",
			rec.SpanTotal(), *metricsOut)
	}
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
