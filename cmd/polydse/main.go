// Command polydse runs Poly's offline analysis and design-space
// exploration for one application and dumps the per-kernel results:
// pattern structure, space sizes, and the Pareto frontier extremes on
// both platforms.
//
// Usage:
//
//	polydse -app ASR [-setting I|II|III] [-frontier]
//	polydse -src program.poly
package main

import (
	"flag"
	"fmt"
	"os"

	"poly/internal/cluster"
	"poly/internal/core"
	"poly/internal/device"
	"poly/internal/parallel"
)

func main() {
	app := flag.String("app", "", "built-in benchmark name (ASR, FQT, IR, CS, MF, WT)")
	src := flag.String("src", "", "path to an annotation-language source file")
	settingName := flag.String("setting", "I", "hardware setting: I, II, or III")
	frontier := flag.Bool("frontier", false, "dump full Pareto frontiers")
	workers := flag.Int("workers", 0,
		"worker-pool size for the exploration (0 = POLY_WORKERS or NumCPU, 1 = serial engine; output is identical at any size)")
	flag.Parse()
	parallel.SetWorkers(*workers)

	setting, err := pickSetting(*settingName)
	if err != nil {
		fail(err)
	}
	fw, err := load(*app, *src)
	if err != nil {
		fail(err)
	}
	ks, err := fw.Explore(setting)
	if err != nil {
		fail(err)
	}

	prog := fw.Program()
	fmt.Printf("program %s — %d kernel(s), %.0f ms bound, %s\n",
		prog.Name, len(prog.Kernels()), prog.LatencyBoundMS, setting.Name)
	for _, k := range prog.Kernels() {
		fmt.Printf("\nkernel %s (repeat ×%d, %d pattern(s))\n", k.Name, k.Invocations(), k.Patterns.Len())
		for _, class := range []device.Class{device.GPU, device.FPGA} {
			sp := ks.Space(k.Name, class)
			fast, eff, thr := sp.MinLatency(), sp.MaxEfficiency(), sp.MaxThroughput()
			fmt.Printf("  %-4s %4d enumerated, %4d feasible, %3d Pareto\n",
				class, sp.Enumerated, len(sp.Feasible), len(sp.Pareto))
			fmt.Printf("       fastest  %8.2f ms %6.1f W  [%s]\n", fast.LatencyMS, fast.PowerW, fast.Config)
			fmt.Printf("       greenest %8.2f ms %6.1f W  [%s]\n", eff.LatencyMS, eff.PowerW, eff.Config)
			fmt.Printf("       widest   %8.1f rps %6.1f W  [%s]\n", thr.ThroughputRPS, thr.PowerW, thr.Config)
			if *frontier {
				for _, im := range sp.Pareto {
					fmt.Printf("       · %8.2fms %6.1fW %8.1frps  %s\n",
						im.LatencyMS, im.PowerW, im.ThroughputRPS, im.Config)
				}
			}
		}
	}
}

func pickSetting(name string) (cluster.Setting, error) {
	switch name {
	case "I", "i", "1":
		return cluster.SettingI, nil
	case "II", "ii", "2":
		return cluster.SettingII, nil
	case "III", "iii", "3":
		return cluster.SettingIII, nil
	}
	return cluster.Setting{}, fmt.Errorf("unknown setting %q", name)
}

func load(app, src string) (*core.Framework, error) {
	switch {
	case app != "" && src != "":
		return nil, fmt.Errorf("pass either -app or -src, not both")
	case app != "":
		return core.App(app)
	case src != "":
		text, err := os.ReadFile(src)
		if err != nil {
			return nil, err
		}
		return core.CompileSource(string(text))
	}
	return nil, fmt.Errorf("pass -app NAME or -src FILE")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polydse:", err)
	os.Exit(1)
}
