// Command polysim serves one workload on one node architecture and
// prints the QoS and power outcome.
//
// Usage:
//
//	polysim -app ASR -arch heter -rps 50 -duration 20s
//	polysim -app FQT -arch gpu -trace          # 24 h trace replay (compressed)
//	polysim -app ASR -arch heter -rps 120 -batch-wait 4   # admission batching on
//	polysim -app ASR -nodes 4 -rps 160         # 4-node fleet behind the router
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"poly"
	"poly/internal/fault"
	"poly/internal/fleet"
	"poly/internal/prof"
	"poly/internal/runtime"
	"poly/internal/sim"
	"poly/internal/telemetry"
)

func main() {
	app := flag.String("app", "ASR", "benchmark name (ASR, FQT, IR, CS, MF, WT)")
	archName := flag.String("arch", "heter", "architecture: gpu, fpga, or heter")
	rps := flag.Float64("rps", 40, "offered load in requests/second")
	duration := flag.Duration("duration", 20*time.Second, "simulated serving span")
	seed := flag.Int64("seed", 1, "workload seed")
	useTrace := flag.Bool("trace", false, "replay the 24 h utilization trace (compressed to 10 min) instead of constant load")
	setting := flag.String("setting", "I", "hardware setting: I, II, or III")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof (and /metrics with -telemetry) on this address (e.g. localhost:6060)")
	useTelemetry := flag.Bool("telemetry", false, "record runtime telemetry (metrics + spans)")
	traceOut := flag.String("trace-out", "", "write a Perfetto/Chrome trace JSON of the run to this file (implies -telemetry)")
	flightOut := flag.String("flight-out", "", "write the QoS flight recorder to this file as Perfetto/Chrome trace JSON (implies -telemetry): the frozen pre-incident window if a violation or board-down trigger fired, else the live tail")
	faults := flag.String("faults", "", "fault scenario: off, slowdowns, boardfail, reconfig, mispredict, or chaos")
	faultSeed := flag.Int64("fault-seed", 1, "fault scenario seed (same seed, same fault plan)")
	batchWait := flag.Float64("batch-wait", 0, "admission-batch staging max wait in ms (0 = batching off)")
	batchCap := flag.Int("batch", 0, "admission-batch group size cap (0 = planner's widest GPU batch; needs -batch-wait)")
	nodes := flag.Int("nodes", 1, "fleet size: shard the cluster into N nodes behind the router (1 = direct single-node path)")
	fleetPolicy := flag.String("fleet-policy", "binpack", "fleet routing policy: binpack, spread, or least-util (needs -nodes > 1)")
	fleetSync := flag.String("fleet-sync", "parallel", "fleet shard synchronization: parallel (per-node simulators, epoch-stepped) or serial (one shared clock); results are bit-identical")
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer stopProf()
	var rec *telemetry.Recorder
	if *nodes <= 1 && (*useTelemetry || *traceOut != "" || *flightOut != "") {
		rec = telemetry.New()
		prof.Handle("/metrics", rec.MetricsHandler())
		if *pprofAddr != "" {
			fmt.Printf("telemetry: http://%s/metrics (Prometheus text)\n", *pprofAddr)
		}
	}
	prof.Serve(*pprofAddr)

	arch, err := pickArch(*archName)
	if err != nil {
		fail(err)
	}
	st, err := pickSetting(*setting)
	if err != nil {
		fail(err)
	}
	fw, err := poly.Benchmark(*app)
	if err != nil {
		fail(err)
	}
	bench, err := poly.NewBench(fw, arch, st)
	if err != nil {
		fail(err)
	}

	var telSink telemetry.Sink
	if rec != nil {
		telSink = rec
	}
	faultCfg, err := fault.Preset(*faults, *faultSeed)
	if err != nil {
		fail(err)
	}
	var faultsOpt *fault.Config
	if faultCfg.Enabled() {
		faultsOpt = &faultCfg
	}
	if *nodes > 1 {
		serveFleet(bench, fleetConfig{
			nodes: *nodes, policyName: *fleetPolicy, syncName: *fleetSync,
			app: *app, setting: st.Name,
			rps: *rps, durationMS: float64(duration.Milliseconds()),
			seed: *seed, useTrace: *useTrace,
			telemetry: *useTelemetry, pprofAddr: *pprofAddr,
			traceOut: *traceOut, flightOut: *flightOut,
			opts: runtime.Options{Faults: faultsOpt, BatchWaitMS: *batchWait, BatchCap: *batchCap},
		})
		return
	}

	var res poly.Result
	var inj *fault.Injector
	if *useTrace {
		tr := poly.SynthesizeTrace(*seed)
		const compressedMS = 600_000.0
		compress := tr.DurationMS() / compressedMS
		sv, _, err := bench.NewSession(runtime.Options{WarmupMS: 5_000, Telemetry: telSink, Faults: faultsOpt,
			BatchWaitMS: *batchWait, BatchCap: *batchCap})
		if err != nil {
			fail(err)
		}
		w := runtime.NewWorkload(*seed)
		w.InjectRate(sv, func(at sim.Time) float64 {
			return *rps * tr.At(float64(at)*compress)
		}, compressedMS, 5_000)
		res = sv.Collect()
		inj = sv.FaultInjector()
	} else {
		durationMS := float64(duration.Milliseconds())
		warm := 0.2 * durationMS
		if warm > 5000 {
			warm = 5000
		}
		sv, _, err := bench.NewSession(runtime.Options{WarmupMS: warm, Telemetry: telSink, Faults: faultsOpt,
			BatchWaitMS: *batchWait, BatchCap: *batchCap})
		if err != nil {
			fail(err)
		}
		runtime.NewWorkload(*seed).InjectPoisson(sv, *rps, 0, sim.Time(durationMS))
		res = sv.Collect()
		inj = sv.FaultInjector()
	}

	fmt.Printf("%s on %s (%s):\n", *app, arch, st.Name)
	if inj != nil {
		fmt.Println(indent(inj.Summary(), "  "))
	}
	fmt.Println(indent(res.String(), "  "))
	if *traceOut != "" {
		if err := writeTraceFile(rec, *traceOut); err != nil {
			fail(err)
		}
		fmt.Printf("trace: %d events -> %s (load at https://ui.perfetto.dev)\n",
			rec.TraceEventCount(), *traceOut)
		if d := rec.TraceDropped(); d > 0 {
			fmt.Printf("trace: %d events dropped over the buffer cap\n", d)
		}
	}
	if *flightOut != "" {
		if err := writeFlightFile(rec, *flightOut); err != nil {
			fail(err)
		}
		if cause, atMS, ok := rec.FlightTriggered(); ok {
			fmt.Printf("flight: triggered by %s at %.1f ms -> %s (load at https://ui.perfetto.dev)\n",
				cause, atMS, *flightOut)
		} else {
			fmt.Printf("flight: no trigger fired; wrote live tail -> %s (load at https://ui.perfetto.dev)\n",
				*flightOut)
		}
	}
}

// fleetConfig carries the CLI surface of the multi-node path.
type fleetConfig struct {
	nodes      int
	policyName string
	syncName   string
	app        string
	setting    string
	rps        float64
	durationMS float64
	seed       int64
	useTrace   bool
	telemetry  bool
	pprofAddr  string
	traceOut   string
	flightOut  string
	opts       runtime.Options
}

// serveFleet is the -nodes N path: the same workload drivers as the
// single-node path, but arrivals go through the fleet router and the
// report covers every shard plus the aggregate.
func serveFleet(bench poly.Bench, cfg fleetConfig) {
	if cfg.traceOut != "" || cfg.flightOut != "" {
		fail(fmt.Errorf("-trace-out/-flight-out record one session; use -nodes 1"))
	}
	pol, err := fleet.ParsePolicy(cfg.policyName)
	if err != nil {
		fail(err)
	}
	syncMode, err := fleet.ParseSyncMode(cfg.syncName)
	if err != nil {
		fail(err)
	}
	ropts := cfg.opts
	if cfg.useTrace {
		ropts.WarmupMS = 5_000
	} else {
		ropts.WarmupMS = 0.2 * cfg.durationMS
		if ropts.WarmupMS > 5000 {
			ropts.WarmupMS = 5000
		}
	}
	f, err := fleet.New(bench, fleet.Options{
		Nodes: cfg.nodes, Policy: pol, Sync: syncMode,
		Runtime: ropts, WithTelemetry: cfg.telemetry,
	})
	if err != nil {
		fail(err)
	}
	if cfg.telemetry {
		prof.Handle("/metrics", f.Rollup().MetricsHandler())
		if cfg.pprofAddr != "" {
			fmt.Printf("telemetry: http://%s/metrics (fleet rollup, Prometheus text)\n", cfg.pprofAddr)
		}
	}
	w := runtime.NewWorkload(cfg.seed)
	if cfg.useTrace {
		tr := poly.SynthesizeTrace(cfg.seed)
		const compressedMS = 600_000.0
		compress := tr.DurationMS() / compressedMS
		w.InjectRate(f, func(at sim.Time) float64 {
			return cfg.rps * tr.At(float64(at)*compress)
		}, compressedMS, 5_000)
	} else {
		w.InjectPoisson(f, cfg.rps, 0, sim.Time(cfg.durationMS))
	}
	res := f.Collect()
	fmt.Printf("%s on %d-node %s fleet (%s, %s sync):\n", cfg.app, cfg.nodes, bench.Arch, cfg.setting, f.Sync())
	fmt.Println(indent(res.String(), "  "))
}

func writeFlightFile(rec *telemetry.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteFlight(f)
}

func writeTraceFile(rec *telemetry.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteTrace(f)
}

func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

func pickArch(s string) (poly.Architecture, error) {
	switch s {
	case "gpu":
		return poly.HomoGPU, nil
	case "fpga":
		return poly.HomoFPGA, nil
	case "heter", "poly":
		return poly.HeterPoly, nil
	}
	return 0, fmt.Errorf("unknown architecture %q (want gpu, fpga, or heter)", s)
}

func pickSetting(s string) (poly.Setting, error) {
	switch s {
	case "I", "1":
		return poly.SettingI(), nil
	case "II", "2":
		return poly.SettingII(), nil
	case "III", "3":
		return poly.SettingIII(), nil
	}
	return poly.Setting{}, fmt.Errorf("unknown setting %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polysim:", err)
	os.Exit(1)
}
