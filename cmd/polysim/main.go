// Command polysim serves one workload on one node architecture and
// prints the QoS and power outcome.
//
// Usage:
//
//	polysim -app ASR -arch heter -rps 50 -duration 20s
//	polysim -app FQT -arch gpu -trace          # 24 h trace replay (compressed)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"poly"
	"poly/internal/prof"
	"poly/internal/runtime"
	"poly/internal/sim"
)

func main() {
	app := flag.String("app", "ASR", "benchmark name (ASR, FQT, IR, CS, MF, WT)")
	archName := flag.String("arch", "heter", "architecture: gpu, fpga, or heter")
	rps := flag.Float64("rps", 40, "offered load in requests/second")
	duration := flag.Duration("duration", 20*time.Second, "simulated serving span")
	seed := flag.Int64("seed", 1, "workload seed")
	useTrace := flag.Bool("trace", false, "replay the 24 h utilization trace (compressed to 10 min) instead of constant load")
	setting := flag.String("setting", "I", "hardware setting: I, II, or III")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer stopProf()
	prof.Serve(*pprofAddr)

	arch, err := pickArch(*archName)
	if err != nil {
		fail(err)
	}
	st, err := pickSetting(*setting)
	if err != nil {
		fail(err)
	}
	fw, err := poly.Benchmark(*app)
	if err != nil {
		fail(err)
	}
	bench, err := poly.NewBench(fw, arch, st)
	if err != nil {
		fail(err)
	}

	var res poly.Result
	if *useTrace {
		tr := poly.SynthesizeTrace(*seed)
		const compressedMS = 600_000.0
		compress := tr.DurationMS() / compressedMS
		sv, _, err := bench.NewSession(runtime.Options{WarmupMS: 5_000})
		if err != nil {
			fail(err)
		}
		w := runtime.NewWorkload(*seed)
		w.InjectRate(sv, func(at sim.Time) float64 {
			return *rps * tr.At(float64(at)*compress)
		}, compressedMS, 5_000)
		res = sv.Collect()
	} else {
		res, err = bench.ServeConstantLoad(*rps, float64(duration.Milliseconds()), *seed)
		if err != nil {
			fail(err)
		}
	}

	fmt.Printf("%s on %s (%s):\n", *app, arch, st.Name)
	fmt.Printf("  served      %d requests over %.1f s\n", res.Completed, res.DurationMS/1000)
	fmt.Printf("  latency     p50 %.1f ms, p99 %.1f ms (bound %.0f ms)\n",
		res.P50MS, res.P99MS, fw.Program().LatencyBoundMS)
	fmt.Printf("  violations  %.2f%%\n", 100*res.ViolationRatio())
	fmt.Printf("  power       %.1f W average, %.0f J total\n", res.AvgPowerW, res.EnergyMJ/1000)
	fmt.Printf("  placement   %d GPU tasks, %d FPGA tasks, %d reconfigurations\n",
		res.GPUTasks, res.FPGATasks, res.Reconfigs)
}

func pickArch(s string) (poly.Architecture, error) {
	switch s {
	case "gpu":
		return poly.HomoGPU, nil
	case "fpga":
		return poly.HomoFPGA, nil
	case "heter", "poly":
		return poly.HeterPoly, nil
	}
	return 0, fmt.Errorf("unknown architecture %q (want gpu, fpga, or heter)", s)
}

func pickSetting(s string) (poly.Setting, error) {
	switch s {
	case "I", "1":
		return poly.SettingI(), nil
	case "II", "2":
		return poly.SettingII(), nil
	case "III", "3":
		return poly.SettingIII(), nil
	}
	return poly.Setting{}, fmt.Errorf("unknown setting %q", s)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "polysim:", err)
	os.Exit(1)
}
