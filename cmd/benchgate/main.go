// Command benchgate is the CI benchmark-regression gate: it parses
// `go test -bench` output, compares each benchmark's best ns/op and
// allocs/op against a checked-in baseline, and exits nonzero when any
// metric regresses beyond the threshold.
//
// Usage:
//
//	go test -bench 'Schedule$|Serve(SteadyState|HighLoad|BatchedHighLoad|TelemetryOn)$' -benchmem -count 6 \
//	    ./internal/sched ./internal/runtime | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json bench.txt
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json -update bench.txt
//
// Beyond the absolute baseline, -ratio asserts a relative bound between
// two benchmarks measured in the *same* input — immune to runner speed:
//
//	go run ./cmd/benchgate -ratio 'BenchmarkServeTelemetryOn/BenchmarkServeSteadyState<=1.10' bench.txt
//
// Parsing rules: the trailing -N GOMAXPROCS suffix is stripped from
// benchmark names so baselines transfer across machine shapes, and with
// -count > 1 the minimum across runs is kept — the minimum is the
// least-noisy estimator of a benchmark's true cost on shared CI runners.
// Time regressions are judged on ns/op with a relative threshold
// (default 20 %); allocs/op and B/op are exact in Go benchmarks, so they
// use the same threshold but typically fail on any real regression.
// (B/op catches allocation-count-neutral regressions — fewer but much
// larger allocations — that allocs/op alone would wave through.)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's baseline record.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Baseline is the checked-in BENCH_BASELINE.json shape.
type Baseline struct {
	// Note documents how to refresh the file.
	Note       string           `json:"note,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline JSON path")
	threshold := flag.Float64("threshold", 0.20, "allowed relative regression (0.20 = +20%)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
	ratios := flag.String("ratio", "", "comma-separated ns/op ratio assertions between benchmarks in this input, e.g. 'BenchmarkA/BenchmarkB<=1.10'")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fail(err)
	}
	if len(current) == 0 {
		fail(fmt.Errorf("no benchmark lines found in input"))
	}
	if *ratios != "" {
		if err := checkRatios(*ratios, current); err != nil {
			fail(err)
		}
	}

	if *update {
		b := Baseline{
			Note:       "refresh: go test -bench 'Schedule$|Serve(SteadyState|HighLoad|BatchedHighLoad|TelemetryOn)$|FleetServe(Parallel)?$' -benchmem -count 6 -run '^$' ./internal/sched ./internal/runtime ./internal/fleet | go run ./cmd/benchgate -update",
			Benchmarks: current,
		}
		out, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fail(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fail(fmt.Errorf("%s: %w", *baselinePath, err))
	}

	names := make([]string, 0, len(current))
	for n := range current {
		names = append(names, n)
	}
	sort.Strings(names)

	regressed := false
	for _, name := range names {
		cur := current[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW   %-50s %12.0f ns/op %8.0f allocs/op (no baseline; add with -update)\n",
				name, cur.NsPerOp, cur.AllocsPerOp)
			continue
		}
		nsBad := cur.NsPerOp > ref.NsPerOp*(1+*threshold)
		allocBad := cur.AllocsPerOp > ref.AllocsPerOp*(1+*threshold)
		// Old baselines without bytes_per_op (zero) don't gate B/op until
		// the next -update refresh.
		byteBad := ref.BytesPerOp > 0 && cur.BytesPerOp > ref.BytesPerOp*(1+*threshold)
		status := "ok   "
		if nsBad || allocBad || byteBad {
			status = "FAIL "
			regressed = true
		}
		fmt.Printf("%s %-50s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %8.0f -> %8.0f (%+6.1f%%)  B/op %10.0f -> %10.0f (%+6.1f%%)\n",
			status, name,
			ref.NsPerOp, cur.NsPerOp, delta(ref.NsPerOp, cur.NsPerOp),
			ref.AllocsPerOp, cur.AllocsPerOp, delta(ref.AllocsPerOp, cur.AllocsPerOp),
			ref.BytesPerOp, cur.BytesPerOp, delta(ref.BytesPerOp, cur.BytesPerOp))
	}
	for name := range base.Benchmarks {
		if _, ok := current[name]; !ok {
			fmt.Printf("GONE  %-50s in baseline but not in input\n", name)
		}
	}
	if regressed {
		fmt.Printf("benchgate: regression beyond +%.0f%% — if intentional, refresh %s (see its note)\n",
			100**threshold, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("benchgate: all benchmarks within threshold")
}

// checkRatios evaluates 'Num/Den<=limit' assertions against the best
// ns/op of two benchmarks from the same run. Both sides share the
// machine and the noise of one invocation, so the bound holds (or
// fails) for the workload's real relative cost, not for runner speed.
func checkRatios(spec string, current map[string]Entry) error {
	for _, assert := range strings.Split(spec, ",") {
		assert = strings.TrimSpace(assert)
		if assert == "" {
			continue
		}
		names, limitStr, ok := strings.Cut(assert, "<=")
		if !ok {
			return fmt.Errorf("ratio %q: want 'Num/Den<=limit'", assert)
		}
		num, den, ok := strings.Cut(strings.TrimSpace(names), "/")
		if !ok {
			return fmt.Errorf("ratio %q: want 'Num/Den<=limit'", assert)
		}
		limit, err := strconv.ParseFloat(strings.TrimSpace(limitStr), 64)
		if err != nil || limit <= 0 {
			return fmt.Errorf("ratio %q: bad limit %q", assert, limitStr)
		}
		ne, ok := current[num]
		if !ok {
			return fmt.Errorf("ratio %q: %s not found in input", assert, num)
		}
		de, ok := current[den]
		if !ok {
			return fmt.Errorf("ratio %q: %s not found in input", assert, den)
		}
		if de.NsPerOp <= 0 {
			return fmt.Errorf("ratio %q: %s has non-positive ns/op", assert, den)
		}
		got := ne.NsPerOp / de.NsPerOp
		if got > limit {
			return fmt.Errorf("ratio %s/%s = %.3f exceeds limit %.3f (%.0f vs %.0f ns/op)",
				num, den, got, limit, ne.NsPerOp, de.NsPerOp)
		}
		fmt.Printf("ok    ratio %s/%s = %.3f <= %.3f\n", num, den, got, limit)
	}
	return nil
}

func delta(ref, cur float64) float64 {
	if ref == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (cur - ref) / ref
}

// parseBench extracts per-benchmark best ns/op and allocs/op from
// `go test -bench` output.
func parseBench(r io.Reader) (map[string]Entry, error) {
	out := make(map[string]Entry)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		ns := math.NaN()
		allocs := math.NaN()
		bytes := math.NaN()
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				ns = v
			case "allocs/op":
				allocs = v
			case "B/op":
				bytes = v
			}
		}
		if math.IsNaN(ns) {
			continue
		}
		if math.IsNaN(allocs) {
			allocs = 0
		}
		if math.IsNaN(bytes) {
			bytes = 0
		}
		e, seen := out[name]
		if !seen || ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		if !seen || allocs < e.AllocsPerOp {
			e.AllocsPerOp = allocs
		}
		if !seen || bytes < e.BytesPerOp {
			e.BytesPerOp = bytes
		}
		out[name] = e
	}
	return out, sc.Err()
}

// stripProcs removes the trailing -N GOMAXPROCS suffix Go appends to
// benchmark names (BenchmarkSchedule/ASR-8 → BenchmarkSchedule/ASR).
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
